// Command experiments regenerates every experiment table of
// EXPERIMENTS.md (E1–E17), the reproduction of the paper's theorem-level
// claims plus the oracle engine checks. -quick runs the reduced sweeps
// used in tests; the default runs the full sweeps recorded in
// EXPERIMENTS.md (several minutes).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/harness"
)

func main() {
	var (
		quick = flag.Bool("quick", false, "reduced sweeps (seconds instead of minutes)")
		seed  = flag.Int64("seed", 1, "workload seed")
		only  = flag.String("only", "", "comma-separated experiment ids (e.g. E1,E11)")
	)
	flag.Parse()
	cfg := harness.Config{Quick: *quick, Seed: *seed}

	runners := []struct {
		id  string
		run func(harness.Config) *harness.Table
	}{
		{"E1", harness.E1HopsetSize}, {"E2", harness.E2Stretch},
		{"E3", harness.E3Work}, {"E4", harness.E4SSSP},
		{"E5", harness.E5Depth}, {"E6", harness.E6Phases},
		{"E7", harness.E7Stars}, {"E8", harness.E8PathReport},
		{"E9", harness.E9KleinSairam}, {"E10", harness.E10Derand},
		{"E11", harness.E11HopReduction}, {"E12", harness.E12Speedup},
		{"E13", harness.E13Radii}, {"E14", harness.E14Ledger},
		{"E15", harness.E15WeightModes}, {"E16", harness.E16BetaSensitivity},
		{"E17", harness.E17Oracle},
	}
	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}
	start := time.Now()
	failures := 0
	for _, r := range runners {
		if len(want) > 0 && !want[r.id] {
			continue
		}
		t := r.run(cfg)
		t.Fprint(os.Stdout)
		for _, row := range t.Rows {
			for _, cell := range row {
				if cell == "FAIL" {
					failures++
				}
			}
		}
	}
	fmt.Printf("done in %v; %d failing rows\n", time.Since(start).Round(time.Millisecond), failures)
	if failures > 0 {
		os.Exit(1)
	}
}
