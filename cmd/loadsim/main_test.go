package main

import (
	"testing"
	"time"
)

// TestSummarizeExactPercentiles pins the order statistics on a known
// distribution: 99 fast samples and 1 slow one.
func TestSummarizeExactPercentiles(t *testing.T) {
	us := make([]int64, 0, 100)
	for i := 0; i < 99; i++ {
		us = append(us, 100)
	}
	us = append(us, 50_000)
	s := summarize(us)
	if s.Count != 100 || s.P50Us != 100 || s.P90Us != 100 || s.MaxUs != 50_000 {
		t.Fatalf("summary = %+v", s)
	}
	if s.P999Us != 50_000 {
		t.Fatalf("p999 = %d, want the tail sample", s.P999Us)
	}
	if s.MeanUs < 590 || s.MeanUs > 610 {
		t.Fatalf("mean = %.1f, want ≈599", s.MeanUs)
	}
}

// TestWorkloadDeterminism: the same seed replays the same stream — the
// property that makes pre/post -compare runs see identical workloads.
func TestWorkloadDeterminism(t *testing.T) {
	cfg := simConfig{profile: "mixed", rate: 100, n: 1000, graphs: 3,
		zipfS: 1.2, pathFrac: 0.15, matrixFrac: 0.05, seed: 7}
	a, b := newWorkload(cfg), newWorkload(cfg)
	for i := 0; i < 2000; i++ {
		ja, jb := a.next(), b.next()
		if ja != jb {
			t.Fatalf("job %d diverged: %+v vs %+v", i, ja, jb)
		}
		da, db := a.interarrival(), b.interarrival()
		if da != db {
			t.Fatalf("interarrival %d diverged: %v vs %v", i, da, db)
		}
	}
}

// TestWorkloadZipfSkew: with s=1.2 the most popular source must dominate
// a uniform pick by a wide margin.
func TestWorkloadZipfSkew(t *testing.T) {
	cfg := simConfig{rate: 100, n: 4096, graphs: 1, zipfS: 1.2, seed: 1}
	w := newWorkload(cfg)
	counts := map[int32]int{}
	const draws = 20000
	for i := 0; i < draws; i++ {
		counts[w.source()]++
	}
	if top := counts[0]; top < draws/20 {
		t.Fatalf("top source drew %d of %d, want heavy skew (uniform would be ~%d)", top, draws, draws/4096)
	}
	// Uniform profile (zipfS = 0) must not skew.
	w = newWorkload(simConfig{rate: 100, n: 4096, graphs: 1, seed: 1})
	counts = map[int32]int{}
	for i := 0; i < draws; i++ {
		counts[w.source()]++
	}
	for s, c := range counts {
		if c > draws/100 {
			t.Fatalf("uniform source %d drew %d of %d", s, c, draws)
		}
	}
}

// TestMatrixBlockInRange: expanded matrix ids stay inside [0, n).
func TestMatrixBlockInRange(t *testing.T) {
	s, tv := matrixBlock(job{src: 1020, dst: 1023}, 1024)
	if len(s) != 8 || len(tv) != 8 {
		t.Fatalf("block sizes %d×%d", len(s), len(tv))
	}
	for _, v := range append(append([]int32{}, s...), tv...) {
		if v < 0 || v >= 1024 {
			t.Fatalf("id %d out of range", v)
		}
	}
}

// TestInterarrivalMean: Poisson inter-arrivals must average 1/rate.
func TestInterarrivalMean(t *testing.T) {
	cfg := simConfig{rate: 1000, n: 10, graphs: 1, seed: 3}
	w := newWorkload(cfg)
	var sum time.Duration
	const draws = 50000
	for i := 0; i < draws; i++ {
		sum += w.interarrival()
	}
	mean := sum / draws
	if mean < 900*time.Microsecond || mean > 1100*time.Microsecond {
		t.Fatalf("mean interarrival %v, want ≈1ms", mean)
	}
}
