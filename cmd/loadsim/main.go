// Command loadsim is the serve-path workload replayer: it drives an
// in-process oracle.Registry (or a live serve instance over HTTP)
// with an open-loop arrival process — Poisson or bursty inter-arrivals,
// Zipf-skewed source popularity, hot-graph imbalance, reload storms,
// eviction pressure — and reports the latency distribution clients
// would actually see: per-route p50/p90/p99/p999 over raw samples
// (response time = queue wait + service time), queue depth, cache hit
// rates, stale-served and rejected counts.
//
//	loadsim -profile zipf-hot -duration 10s -rate 2000
//	loadsim -profile reload-storm -rate 1000
//	loadsim -profile eviction -graphs 3
//	loadsim -profile failover -hedge 2ms
//	loadsim -profile zipf-hot -compare -out BENCH_loadsim.json
//	loadsim -url http://localhost:8080 -graph default -rate 500
//
// Profiles:
//
//	zipf-hot      one graph, Zipf(1.2)-skewed sources, pure /dist — the
//	              steady-state point-lookup workload the hot-pair cache
//	              is built for
//	uniform       one graph, uniform sources — the cache-hostile floor
//	mixed         Zipf sources, 80/15/5 dist/path/matrix, bursty
//	              arrivals — a production-shaped blend
//	reload-storm  zipf-hot plus a hot reload every -reload-every — the
//	              stale-while-revalidate stress
//	eviction      several graphs under a memory budget sized for fewer —
//	              availability under eviction pressure
//	failover      the distributed serving path: the graph is partitioned
//	              into shards, two local worker HTTP servers each serve
//	              every shard, and a shard.Router scatter-gathers across
//	              them with hedging; one worker is hard-killed mid-run.
//	              The report's "remote" block (hedges, hedge wins,
//	              failovers, per-endpoint latency) plus a zero error
//	              count is the degraded-but-correct evidence
//
// -compare runs the chosen profile twice on identical fresh registries —
// once without the hot-pair cache ("pre"), once with it ("post") — and
// reports the dist p99 improvement factor. That same-process ratio is
// what cmd/benchgate gates (portable across machines, unlike raw
// wall-clock).
//
// The workload stream is seeded and fully deterministic; timings are
// not. All latencies are microseconds.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/graphio"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/oracle"
	"repro/oracle/audit"
	"repro/shard"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadsim: ")
	var (
		profile     = flag.String("profile", "zipf-hot", "workload profile: zipf-hot | uniform | mixed | reload-storm | eviction | failover")
		duration    = flag.Duration("duration", 10*time.Second, "load duration per run")
		rate        = flag.Float64("rate", 500, "mean arrival rate, queries/s (open loop)")
		warmup      = flag.Duration("warmup", 2*time.Second, "initial window whose samples are discarded (cold caches and build-up are not steady state)")
		clients     = flag.Int("clients", 8, "concurrent service workers (server-side concurrency model)")
		n           = flag.Int("n", 4096, "vertices of the generated graph(s)")
		m           = flag.Int("m", 16384, "edges of the generated graph(s)")
		eps         = flag.Float64("eps", 0.25, "stretch target ε")
		cache       = flag.Int("cache", 64, "engine distance-row LRU capacity")
		hot         = flag.Int("hot-cache", 4096, "registry hot-pair cache capacity (0 = off; -compare overrides per run)")
		zipfS       = flag.Float64("zipf-s", 1.2, "Zipf skew of source popularity")
		graphs      = flag.Int("graphs", 3, "graph count (eviction profile)")
		reload      = flag.Duration("reload-every", 400*time.Millisecond, "hot-reload interval (reload-storm profile)")
		hedge       = flag.Duration("hedge", 2*time.Millisecond, "failover profile: hedge a second replica after this delay (0 = adaptive p99-derived)")
		seed        = flag.Int64("seed", 1, "workload and graph seed")
		compare     = flag.Bool("compare", false, "run pre (no hot cache) and post (hot cache) on fresh registries and report the improvement factor")
		url         = flag.String("url", "", "drive a live serve instance at this base URL instead of an in-process registry")
		graphN      = flag.String("graph", "default", "graph name to query (HTTP target)")
		out         = flag.String("out", "", "write the JSON report here (default stdout)")
		auditFr     = flag.Float64("audit-sample", 0, "fraction of served answers shadow-audited against exact Dijkstra during the run (in-process registry targets only; 0 = off). Any violation fails the run")
		auditCmp    = flag.Bool("audit-compare", false, "run baseline (audit off) and audited (-audit-sample, default 0.01) on fresh registries and report the dist p99 overhead ratio")
		auditTrials = flag.Int("audit-trials", 3, "trial pairs for -audit-compare; the gated ratio is median baseline p99 / median audited p99")
	)
	flag.Parse()

	cfg := simConfig{
		profile: *profile, duration: *duration, rate: *rate, clients: *clients,
		warmup: *warmup,
		n:      *n, m: *m, eps: *eps, cache: *cache, hotCache: *hot, zipfS: *zipfS,
		graphs: 1, reloadEvery: 0, seed: *seed,
		auditRate: *auditFr,
	}
	if cfg.warmup >= cfg.duration {
		cfg.warmup = cfg.duration / 5
	}
	switch *profile {
	case "zipf-hot":
	case "uniform":
		cfg.zipfS = 0
	case "mixed":
		cfg.pathFrac, cfg.matrixFrac = 0.15, 0.05
		cfg.bursty = true
	case "reload-storm":
		cfg.reloadEvery = *reload
	case "eviction":
		cfg.graphs = *graphs
	case "failover":
		cfg.pathFrac, cfg.matrixFrac = 0.10, 0.05
	default:
		log.Fatalf("unknown profile %q", *profile)
	}

	var report any
	switch {
	case cfg.profile == "failover":
		if *url != "" || *compare {
			log.Fatal("the failover profile runs its own router and workers; -url/-compare do not apply")
		}
		if cfg.auditRate > 0 || *auditCmp {
			log.Fatal("shadow auditing applies to in-process registry targets; the failover profile drives a router directly")
		}
		res, err := runFailover(cfg, *hedge)
		if err != nil {
			log.Fatal(err)
		}
		report = res
	case *url != "":
		if cfg.auditRate > 0 || *auditCmp {
			log.Fatal("-audit-sample/-audit-compare apply to in-process registry targets, not -url (run serve with -audit-sample instead)")
		}
		res, err := runHTTP(cfg, *url, *graphN)
		if err != nil {
			log.Fatal(err)
		}
		report = res
	case *auditCmp:
		// Audit-overhead comparison: the same workload with the shadow
		// auditor off and on. The p99 ratio is what cmd/benchgate gates —
		// sampling must not leak into the serve path's tail. One
		// off/on pair is useless for gating: identical back-to-back runs
		// of an open-loop generator see their p99 swing severalfold, so
		// the gate compares median p99 over several trials, alternating
		// which side runs first to cancel heap/GC carry-over.
		base := cfg
		base.auditRate = 0
		aud := cfg
		if aud.auditRate <= 0 {
			aud.auditRate = 0.01
		}
		if *auditTrials < 1 {
			log.Fatal("-audit-trials must be >= 1")
		}
		var (
			basePs, audPs   []int64
			baseRes, audRes *Result
			viol            int64
		)
		for i := 0; i < *auditTrials; i++ {
			run := func(c simConfig, label string) *Result {
				log.Printf("audit-compare trial %d/%d: %s run (%s)", i+1, *auditTrials, label, cfg.profile)
				runtime.GC()
				res, err := runInProcess(c)
				if err != nil {
					log.Fatal(err)
				}
				return res
			}
			if i%2 == 0 {
				baseRes = run(base, "baseline")
				audRes = run(aud, "audited")
			} else {
				audRes = run(aud, "audited")
				baseRes = run(base, "baseline")
			}
			basePs = append(basePs, baseRes.Routes["dist"].P99Us)
			audPs = append(audPs, audRes.Routes["dist"].P99Us)
			if audRes.Audit != nil {
				viol += audRes.Audit.Violations
			}
		}
		report = auditCompareReport{
			Profile:        cfg.profile,
			SampleRate:     aud.auditRate,
			Trials:         *auditTrials,
			Baseline:       baseRes,
			Audited:        audRes,
			BaselineP99sUs: basePs,
			AuditedP99sUs:  audPs,
			AuditP99Ratio:  ratio(medianInt64(basePs), medianInt64(audPs)),
			Violations:     viol,
		}
	case *compare:
		pre := cfg
		pre.hotCache = 0
		post := cfg
		if post.hotCache <= 0 {
			post.hotCache = 4096
		}
		log.Printf("compare: pre run (%s, hot-pair cache off)", cfg.profile)
		preRes, err := runInProcess(pre)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("compare: post run (%s, hot-pair cache %d)", cfg.profile, post.hotCache)
		postRes, err := runInProcess(post)
		if err != nil {
			log.Fatal(err)
		}
		report = compareReport{
			Profile: cfg.profile,
			Pre:     preRes,
			Post:    postRes,
			DistP99Improvement: ratio(
				preRes.Routes["dist"].P99Us,
				postRes.Routes["dist"].P99Us),
			DistP50Improvement: ratio(
				preRes.Routes["dist"].P50Us,
				postRes.Routes["dist"].P50Us),
		}
	default:
		res, err := runInProcess(cfg)
		if err != nil {
			log.Fatal(err)
		}
		report = res
	}

	enc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
	} else {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("report written to %s", *out)
	}
	// A shadow-audit violation is a correctness failure, not a performance
	// number: the report is written (so the evidence survives) and then
	// the run fails.
	if v := reportViolations(report); v > 0 {
		log.Fatalf("FAIL: %d stretch-audit violations (see the report's audit block)", v)
	}
}

// reportViolations extracts the audit violation count from any report
// shape main can produce.
func reportViolations(report any) int64 {
	switch r := report.(type) {
	case *Result:
		if r.Audit != nil {
			return r.Audit.Violations
		}
	case compareReport:
		var v int64
		for _, res := range []*Result{r.Pre, r.Post} {
			if res != nil && res.Audit != nil {
				v += res.Audit.Violations
			}
		}
		return v
	case auditCompareReport:
		return r.Violations
	}
	return 0
}

func ratio(pre, post int64) float64 {
	if post <= 0 || pre <= 0 {
		return 0
	}
	return float64(pre) / float64(post)
}

// simConfig is one fully-resolved run.
type simConfig struct {
	profile              string
	duration             time.Duration
	warmup               time.Duration
	rate                 float64
	clients              int
	n, m                 int
	eps                  float64
	cache, hotCache      int
	zipfS                float64
	graphs               int
	reloadEvery          time.Duration
	seed                 int64
	pathFrac, matrixFrac float64
	bursty               bool
	// auditRate is the shadow-audit sampling fraction (in-process runs).
	auditRate float64
	// observe, when set, sees every completed request — the runner hooks
	// it into its SLO engine.
	observe func(j job, lat time.Duration, stale bool, err error)
}

// job is one scheduled arrival. at is the scheduled arrival instant —
// latency is measured from it, so time spent queued behind a saturated
// worker pool counts, exactly as a client would experience it.
type job struct {
	at       time.Time
	op       int // 0 dist, 1 path, 2 matrix
	g        int
	src, dst int32
}

const (
	opDist = iota
	opPath
	opMatrix
)

var opNames = [...]string{"dist", "path", "matrix"}

// workload generates the deterministic arrival stream for cfg.
type workload struct {
	rng   *rand.Rand
	zipf  *rand.Zipf
	gZipf *rand.Zipf
	cfg   simConfig
}

func newWorkload(cfg simConfig) *workload {
	rng := rand.New(rand.NewSource(cfg.seed))
	w := &workload{rng: rng, cfg: cfg}
	if cfg.zipfS > 1 {
		w.zipf = rand.NewZipf(rng, cfg.zipfS, 1, uint64(cfg.n-1))
	}
	if cfg.graphs > 1 {
		// Hot-shard imbalance: graph popularity is itself Zipf-skewed.
		w.gZipf = rand.NewZipf(rng, 1.4, 1, uint64(cfg.graphs-1))
	}
	return w
}

func (w *workload) source() int32 {
	if w.zipf != nil {
		return int32(w.zipf.Uint64())
	}
	return int32(w.rng.Intn(w.cfg.n))
}

func (w *workload) graph() int {
	if w.gZipf != nil {
		return int(w.gZipf.Uint64())
	}
	return 0
}

func (w *workload) next() job {
	j := job{g: w.graph(), src: w.source(), dst: int32(w.rng.Intn(w.cfg.n))}
	r := w.rng.Float64()
	switch {
	case r < w.cfg.matrixFrac:
		j.op = opMatrix
	case r < w.cfg.matrixFrac+w.cfg.pathFrac:
		j.op = opPath
	}
	return j
}

// interarrival returns the wait before the next arrival. Poisson by
// default; bursty alternates 200ms of 4× rate with 300ms of silence
// (the generator folds the silence into the first wait of each burst).
func (w *workload) interarrival() time.Duration {
	r := w.cfg.rate
	if w.cfg.bursty {
		r *= 4 // within-burst rate; burst windows are cut by the generator
	}
	return time.Duration(w.rng.ExpFloat64() / r * float64(time.Second))
}

// target abstracts where queries land: the in-process registry or a
// live HTTP server. stale reports a stale-while-revalidate answer;
// unavailable a not-ready graph (503-class); rejected an admission 429.
// ctx carries the per-request trace span: the HTTP target propagates it
// as a traceparent header, so the report's slowest trace IDs are
// queryable at the server's /trace/{id}.
type target interface {
	dist(ctx context.Context, g int, source int32) (stale, unavailable, rejected bool, err error)
	path(ctx context.Context, g int, u, v int32) (unavailable bool, err error)
	matrix(ctx context.Context, g int, s, t []int32) (unavailable bool, err error)
}

// RouteStats is the latency summary of one route, from raw samples —
// exact order statistics, not histogram buckets.
type RouteStats struct {
	Count  int64   `json:"count"`
	MeanUs float64 `json:"mean_us"`
	P50Us  int64   `json:"p50_us"`
	P90Us  int64   `json:"p90_us"`
	P99Us  int64   `json:"p99_us"`
	P999Us int64   `json:"p999_us"`
	MaxUs  int64   `json:"max_us"`
}

// Result is one run's report.
type Result struct {
	Profile    string  `json:"profile"`
	DurationS  float64 `json:"duration_s"`
	WarmupS    float64 `json:"warmup_s"`
	TargetRate float64 `json:"target_rate_qps"`
	HotCache   int     `json:"hot_cache"`
	EngineLRU  int     `json:"engine_lru"`
	N          int     `json:"n"`
	Graphs     int     `json:"graphs,omitempty"`

	Arrivals int64 `json:"arrivals"`
	// Measured counts the post-warmup samples the route stats are built
	// from; warmup arrivals execute but are not recorded.
	Measured    int64 `json:"measured"`
	Errors      int64 `json:"errors"`
	Unavailable int64 `json:"unavailable"`
	Rejected    int64 `json:"rejected"`
	StaleServed int64 `json:"stale_served"`

	Routes map[string]RouteStats `json:"routes"`

	QueueMaxDepth  int     `json:"queue_max_depth"`
	QueueMeanDepth float64 `json:"queue_mean_depth"`

	HotPair      *oracle.HotPairStats `json:"hot_pair,omitempty"`
	CacheHitRate float64              `json:"engine_cache_hit_rate,omitempty"`
	Reloads      int64                `json:"reloads,omitempty"`
	Evictions    int64                `json:"evictions,omitempty"`

	// Shadow-audit evidence (in-process runs with -audit-sample): the
	// auditor's counters — observed stretch per graph/route included —
	// and the SLO engine's per-graph burn-rate verdicts at run end.
	AuditSampleRate float64           `json:"audit_sample_rate,omitempty"`
	Audit           *audit.Stats      `json:"audit,omitempty"`
	SLO             []obs.GraphStatus `json:"slo,omitempty"`

	// failover profile: the router's hedging/failover counters and
	// per-endpoint latency, plus which worker was killed mid-run.
	Remote       *oracle.RemoteStats `json:"remote,omitempty"`
	KilledWorker string              `json:"killed_worker,omitempty"`

	// SlowestTraces are the trace IDs of the slowest post-warmup requests
	// (up to 20), worst first — the handles for digging into the tail.
	// Against a live serve instance (-url) each ID is queryable at
	// GET {url}/trace/{id}.
	SlowestTraces []SlowTrace `json:"slowest_traces,omitempty"`
}

// SlowTrace links one slow request's latency to its trace ID.
type SlowTrace struct {
	Route     string `json:"route"`
	LatencyUs int64  `json:"latency_us"`
	TraceID   string `json:"trace_id"`
}

type compareReport struct {
	Profile            string  `json:"profile"`
	Pre                *Result `json:"pre"`
	Post               *Result `json:"post"`
	DistP99Improvement float64 `json:"dist_p99_improvement"`
	DistP50Improvement float64 `json:"dist_p50_improvement"`
}

// auditCompareReport is the -audit-compare output: the same workload with
// the shadow auditor off (baseline) and on (audited). AuditP99Ratio is
// baseline dist p99 over audited dist p99 — ≈1 when sampling stays off
// the serve path's tail, below 1 when auditing costs tail latency. This
// is the number cmd/benchgate gates. A single back-to-back pair is far
// too noisy to gate (open-loop p99 swings severalfold between identical
// runs), so the ratio is median-of-trials with the run order alternated
// each trial; the per-trial p99s are kept for forensics.
type auditCompareReport struct {
	Profile        string  `json:"profile"`
	SampleRate     float64 `json:"audit_sample_rate"`
	Trials         int     `json:"trials"`
	Baseline       *Result `json:"baseline"`
	Audited        *Result `json:"audited"`
	BaselineP99sUs []int64 `json:"baseline_p99s_us"`
	AuditedP99sUs  []int64 `json:"audited_p99s_us"`
	AuditP99Ratio  float64 `json:"audit_p99_ratio"`
	Violations     int64   `json:"violations"`
}

// medianInt64 returns the median of a non-empty slice (sorted copy).
func medianInt64(xs []int64) int64 {
	s := append([]int64(nil), xs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}

// drive replays cfg's workload against tgt and collects the report.
// reloadFn (optional) is invoked every cfg.reloadEvery during the run.
func drive(cfg simConfig, tgt target, reloadFn func()) *Result {
	w := newWorkload(cfg)
	queue := make(chan job, 65536)
	res := &Result{
		Profile: cfg.profile, DurationS: cfg.duration.Seconds(),
		WarmupS:    cfg.warmup.Seconds(),
		TargetRate: cfg.rate, HotCache: cfg.hotCache, EngineLRU: cfg.cache,
		N: cfg.n, Routes: map[string]RouteStats{},
	}
	if cfg.graphs > 1 {
		res.Graphs = cfg.graphs
	}

	var (
		errors      atomic.Int64
		unavailable atomic.Int64
		rejected    atomic.Int64
		stale       atomic.Int64
	)
	// Warmup cutoff: arrivals scheduled before it are executed (they
	// load the system and warm the caches) but excluded from the stats —
	// cold-start build-up is not the steady state the gates compare.
	cutoff := time.Now().Add(cfg.warmup)

	// Per-worker sample slices: lock-free during the run, merged after.
	samples := make([][3][]int64, cfg.clients)
	slows := make([][]SlowTrace, cfg.clients)
	// Each request gets a root span from a local tracer: the ID is minted
	// here, flows to HTTP targets as a traceparent header, and the
	// slowest ones surface in the report. No logger — a replayer sampling
	// its own spans into its log would just be noise.
	tr := obs.NewTracer("loadsim", obs.TracerOptions{RingSize: 64})
	var wg sync.WaitGroup
	for c := 0; c < cfg.clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for j := range queue {
				var (
					isStale, isUnavail, isRej bool
					err                       error
				)
				var sp obs.Span
				tr.StartRoot(&sp, opNames[j.op], obs.Traceparent{})
				sp.Route = opNames[j.op]
				ctx := obs.ContextWith(context.Background(), &sp)
				switch j.op {
				case opDist:
					isStale, isUnavail, isRej, err = tgt.dist(ctx, j.g, j.src)
				case opPath:
					isUnavail, err = tgt.path(ctx, j.g, j.src, j.dst)
				case opMatrix:
					s, t := matrixBlock(j, cfg.n)
					isUnavail, err = tgt.matrix(ctx, j.g, s, t)
				}
				sp.SetError(err)
				sp.End()
				lat := time.Since(j.at)
				if cfg.observe != nil {
					cfg.observe(j, lat, isStale, err)
				}
				switch {
				case isRej:
					rejected.Add(1)
				case isUnavail:
					unavailable.Add(1)
				case err != nil:
					errors.Add(1)
				default:
					if isStale {
						stale.Add(1)
					}
					if j.at.After(cutoff) {
						samples[c][j.op] = append(samples[c][j.op], lat.Microseconds())
						slows[c] = append(slows[c], SlowTrace{
							Route: opNames[j.op], LatencyUs: lat.Microseconds(),
							TraceID: sp.Trace.String(),
						})
					}
				}
			}
		}(c)
	}

	// Queue-depth sampler.
	stopSample := make(chan struct{})
	var depthMax, depthSum, depthCnt int64
	var sampleWG sync.WaitGroup
	sampleWG.Add(1)
	go func() {
		defer sampleWG.Done()
		t := time.NewTicker(50 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-stopSample:
				return
			case <-t.C:
				d := int64(len(queue))
				if d > depthMax {
					depthMax = d
				}
				depthSum += d
				depthCnt++
			}
		}
	}()

	// Reload storm.
	stopReload := make(chan struct{})
	var reloadWG sync.WaitGroup
	if reloadFn != nil && cfg.reloadEvery > 0 {
		reloadWG.Add(1)
		go func() {
			defer reloadWG.Done()
			t := time.NewTicker(cfg.reloadEvery)
			defer t.Stop()
			for {
				select {
				case <-stopReload:
					return
				case <-t.C:
					reloadFn()
					res.Reloads++
				}
			}
		}()
	}

	// Open-loop generator: arrivals are stamped with their scheduled
	// instant, so queue wait behind saturated workers is charged to the
	// response time — the open-loop discipline that makes tail latency
	// honest (closed-loop generators self-throttle and hide it).
	deadline := time.Now().Add(cfg.duration)
	next := time.Now()
	burstEnd := next.Add(200 * time.Millisecond)
	for next.Before(deadline) {
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		j := w.next()
		j.at = next
		queue <- j
		res.Arrivals++
		next = next.Add(w.interarrival())
		if cfg.bursty && next.After(burstEnd) {
			next = burstEnd.Add(300 * time.Millisecond) // silence window
			burstEnd = next.Add(200 * time.Millisecond)
		}
	}
	close(queue)
	wg.Wait()
	close(stopSample)
	sampleWG.Wait()
	if reloadFn != nil && cfg.reloadEvery > 0 {
		close(stopReload)
		reloadWG.Wait()
	}

	for op := range opNames {
		var all []int64
		for c := range samples {
			all = append(all, samples[c][op]...)
		}
		if len(all) == 0 {
			continue
		}
		res.Routes[opNames[op]] = summarize(all)
		res.Measured += int64(len(all))
	}
	var allSlow []SlowTrace
	for c := range slows {
		allSlow = append(allSlow, slows[c]...)
	}
	sort.Slice(allSlow, func(i, j int) bool { return allSlow[i].LatencyUs > allSlow[j].LatencyUs })
	if len(allSlow) > 20 {
		allSlow = allSlow[:20]
	}
	res.SlowestTraces = allSlow
	res.Errors = errors.Load()
	res.Unavailable = unavailable.Load()
	res.Rejected = rejected.Load()
	res.StaleServed = stale.Load()
	res.QueueMaxDepth = int(depthMax)
	if depthCnt > 0 {
		res.QueueMeanDepth = float64(depthSum) / float64(depthCnt)
	}
	return res
}

// matrixBlock derives a deterministic 8×8 id block from the job's seeds
// (workload generation must stay on the generator's single rng; workers
// only expand what the job already pins).
func matrixBlock(j job, n int) ([]int32, []int32) {
	s := make([]int32, 8)
	t := make([]int32, 8)
	for i := range s {
		s[i] = (j.src + int32(i)) % int32(n)
		t[i] = (j.dst + int32(i)) % int32(n)
	}
	return s, t
}

func summarize(us []int64) RouteStats {
	sort.Slice(us, func(i, j int) bool { return us[i] < us[j] })
	var sum int64
	for _, v := range us {
		sum += v
	}
	pct := func(q float64) int64 {
		idx := int(q*float64(len(us))+0.5) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(us) {
			idx = len(us) - 1
		}
		return us[idx]
	}
	return RouteStats{
		Count:  int64(len(us)),
		MeanUs: float64(sum) / float64(len(us)),
		P50Us:  pct(0.50),
		P90Us:  pct(0.90),
		P99Us:  pct(0.99),
		P999Us: pct(0.999),
		MaxUs:  us[len(us)-1],
	}
}

// ---- in-process target ----

type registryTarget struct {
	reg   *oracle.Registry
	names []string
}

func (t *registryTarget) dist(ctx context.Context, g int, source int32) (stale, unavailable, rejected bool, err error) {
	res, err := t.reg.DistSWRContext(ctx, t.names[g], source)
	if err != nil {
		if errors.Is(err, oracle.ErrGraphNotReady) {
			return false, true, false, nil
		}
		return false, false, false, err
	}
	return res.Stale, false, false, nil
}

func (t *registryTarget) path(_ context.Context, g int, u, v int32) (bool, error) {
	_, _, err := t.reg.Path(t.names[g], u, v)
	if err != nil {
		if errors.Is(err, oracle.ErrGraphNotReady) {
			return true, nil
		}
		return false, err
	}
	return false, nil
}

func (t *registryTarget) matrix(_ context.Context, g int, s, tv []int32) (bool, error) {
	_, err := t.reg.Matrix(t.names[g], s, tv)
	if err != nil {
		if errors.Is(err, oracle.ErrGraphNotReady) {
			return true, nil
		}
		return false, err
	}
	return false, nil
}

// runInProcess builds cfg.graphs engines in a fresh registry and drives
// the workload at them.
func runInProcess(cfg simConfig) (*Result, error) {
	needPaths := cfg.pathFrac > 0
	rcfg := oracle.RegistryConfig{
		HotPairCache:  cfg.hotCache,
		EngineOptions: []oracle.Option{oracle.WithDistCache(cfg.cache)},
	}

	// Shadow auditing: the registry samples served answers into the
	// auditor, which recomputes them exactly on the engine version that
	// answered (the same plumbing cmd/serve uses). Every verdict feeds a
	// run-local SLO engine, and its status lands in the report — so one
	// loadsim run demonstrates the full correctness-observability loop
	// against a seeded, deterministic workload.
	var (
		auditor *audit.Auditor
		slo     *obs.SLO
	)
	if cfg.auditRate > 0 {
		quiet := slog.New(slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelError}))
		slo = obs.NewSLO(obs.DefaultObjective(), quiet)
		auditor = audit.New(audit.Config{
			SampleRate: cfg.auditRate,
			Workers:    2,
			Logger:     quiet,
			OnResult:   func(res audit.Result) { slo.ObserveAudit(res.Graph, res.Violation != "") },
		})
		defer auditor.Close()
		rcfg.Audit = auditor
	}
	if cfg.graphs > 1 {
		// Eviction pressure: budget for roughly 1.5 of the N identical
		// engines, measured off a probe build.
		probe, err := buildProbe(cfg, needPaths)
		if err != nil {
			return nil, err
		}
		rcfg.MemoryBudget = probe.MemoryBytes() * 3 / 2
	}
	reg := oracle.NewRegistry(rcfg)
	defer reg.Close()

	names := make([]string, cfg.graphs)
	for i := range names {
		names[i] = fmt.Sprintf("g%d", i)
		g := graph.Gnm(cfg.n, cfg.m, graph.UniformWeights(1, 8), cfg.seed+int64(i))
		opts := []oracle.Option{oracle.WithEpsilon(cfg.eps)}
		if needPaths {
			opts = append(opts, oracle.WithPathReporting())
		}
		if err := reg.Add(names[i], oracle.GraphSource(g, opts...)); err != nil {
			return nil, err
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	for _, name := range names {
		if err := reg.WaitReady(ctx, name); err != nil {
			return nil, fmt.Errorf("build %s: %w", name, err)
		}
	}

	tgt := &registryTarget{reg: reg, names: names}
	var reloadFn func()
	if cfg.reloadEvery > 0 {
		reloadFn = func() { reg.Reload(names[0]) }
	}
	if slo != nil {
		cfg.observe = func(j job, lat time.Duration, stale bool, err error) {
			status := 200
			if err != nil {
				status = 500
			}
			slo.ObserveRequest(names[j.g], status, lat, stale)
		}
	}
	res := drive(cfg, tgt, reloadFn)

	st := reg.Stats()
	res.HotPair = st.HotPair
	res.Evictions = st.Evictions
	if es, err := reg.EngineStats(names[0]); err == nil {
		if tot := es.DistCache.Hits + es.DistCache.Misses; tot > 0 {
			res.CacheHitRate = float64(es.DistCache.Hits) / float64(tot)
		}
	}
	if auditor != nil {
		// Let queued audits finish before snapshotting, so the report's
		// violation count covers every sampled answer of the run.
		deadline := time.Now().Add(30 * time.Second)
		for auditor.Stats().Pending > 0 && time.Now().Before(deadline) {
			time.Sleep(10 * time.Millisecond)
		}
		ast := auditor.Stats()
		res.AuditSampleRate = cfg.auditRate
		res.Audit = &ast
		res.SLO = slo.Status()
	}
	return res, nil
}

func buildProbe(cfg simConfig, paths bool) (*oracle.Engine, error) {
	g := graph.Gnm(cfg.n, cfg.m, graph.UniformWeights(1, 8), cfg.seed)
	opts := []oracle.Option{oracle.WithEpsilon(cfg.eps)}
	if paths {
		opts = append(opts, oracle.WithPathReporting())
	}
	return oracle.New(g, opts...)
}

// ---- failover target (distributed serving path) ----

// routerTarget drives a shard.Router directly: the router does the
// scatter-gather, hedging, and failover; any error it surfaces (after
// exhausting replicas) counts as a client-visible failure.
type routerTarget struct {
	r *shard.Router
}

func (t *routerTarget) dist(ctx context.Context, _ int, source int32) (stale, unavailable, rejected bool, err error) {
	_, err = t.r.DistContext(ctx, source)
	return false, false, false, err
}

func (t *routerTarget) path(ctx context.Context, _ int, u, v int32) (bool, error) {
	_, _, err := t.r.PathContext(ctx, u, v)
	return false, err
}

func (t *routerTarget) matrix(ctx context.Context, _ int, s, tv []int32) (bool, error) {
	_, err := t.r.MatrixContext(ctx, s, tv)
	return false, err
}

// simWorker is one in-process stand-in for a cmd/shardserve process: a
// registry serving every shard of the manifest behind a real HTTP
// listener. kill() severs it the hard way — open connections reset,
// listener closed — so in-flight routed requests see transport errors,
// not graceful drains.
type simWorker struct {
	srv *httptest.Server
	reg *oracle.Registry
}

func startWorker(man *graphio.ShardManifest, dir string, engOpts []oracle.Option, cache int) *simWorker {
	reg := oracle.NewRegistry(oracle.RegistryConfig{
		EngineOptions: []oracle.Option{oracle.WithDistCache(cache)},
	})
	for i := 0; i < man.K; i++ {
		i := i
		name := fmt.Sprintf("%s.shard%d", man.Name, i)
		src := func(ctx context.Context, opts ...oracle.Option) (oracle.Backend, error) {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			sg, err := man.LoadShard(dir, i)
			if err != nil {
				return nil, err
			}
			return oracle.New(sg.G, append(append([]oracle.Option{}, opts...), engOpts...)...)
		}
		if err := reg.Add(name, src); err != nil {
			reg.Close()
			log.Fatal(err)
		}
	}
	return &simWorker{srv: httptest.NewServer(oracle.NewRegistryHandler(reg)), reg: reg}
}

func (w *simWorker) kill() {
	w.srv.CloseClientConnections()
	w.srv.Close()
}

func (w *simWorker) stop() {
	w.srv.Close() // idempotent after kill()
	w.reg.Close()
}

// runFailover partitions the generated graph, brings up two replica
// workers each serving all shards, routes the workload through a hedging
// shard.Router, and hard-kills one worker halfway through the run. Every
// query must still be answered (Errors == 0) — the failovers show up in
// the remote counters instead.
func runFailover(cfg simConfig, hedge time.Duration) (*Result, error) {
	dir, err := os.MkdirTemp("", "loadsim-failover-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	const k = 3
	g := graph.Gnm(cfg.n, cfg.m, graph.UniformWeights(1, 8), cfg.seed)
	manPath, err := graphio.WriteShards(dir, "sim", partition.Partition(g, k))
	if err != nil {
		return nil, err
	}
	man, err := graphio.LoadShardManifest(manPath)
	if err != nil {
		return nil, err
	}

	scfg := shard.Config{EpsilonLocal: cfg.eps, PathReporting: cfg.pathFrac > 0}
	engOpts := shard.WorkerEngineOptions(scfg)
	workers := [2]*simWorker{
		startWorker(man, dir, engOpts, cfg.cache),
		startWorker(man, dir, engOpts, cfg.cache),
	}
	defer workers[0].stop()
	defer workers[1].stop()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	pl := shard.UniformPlacement(man.Name, man.K, []string{workers[0].srv.URL, workers[1].srv.URL})
	router, err := shard.NewRouter(ctx, man, pl, shard.RouterConfig{
		Config:     scfg,
		HedgeDelay: hedge,
	}, oracle.WithDistCache(cfg.cache))
	if err != nil {
		return nil, err
	}
	defer router.Close()

	// Hard-kill one replica halfway through: routed queries in flight to
	// it fail over; the prober marks it out until the run ends.
	killed := workers[0].srv.URL
	timer := time.AfterFunc(cfg.duration/2, func() {
		log.Printf("failover: killing worker %s", killed)
		workers[0].kill()
	})
	defer timer.Stop()

	res := drive(cfg, &routerTarget{r: router}, nil)
	res.KilledWorker = killed
	if st := router.Stats(); st.Sharded != nil {
		res.Remote = st.Sharded.Remote
	}
	return res, nil
}

// ---- HTTP target ----

type httpTarget struct {
	base, graph string
	client      *http.Client
}

func (t *httpTarget) do(ctx context.Context, req *http.Request) (unavail, rejected bool, err error) {
	// Propagate the run's trace: the server records its half of the span
	// tree under the same trace ID the report prints.
	if sp := obs.FromContext(ctx); sp.Active() {
		req.Header.Set("traceparent", sp.Traceparent())
	}
	resp, err := t.client.Do(req)
	if err != nil {
		return false, false, err
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted:
		return false, false, nil
	case resp.StatusCode == http.StatusTooManyRequests:
		return false, true, nil
	case resp.StatusCode == http.StatusServiceUnavailable:
		return true, false, nil
	default:
		return false, false, fmt.Errorf("status %s", resp.Status)
	}
}

func (t *httpTarget) dist(ctx context.Context, _ int, source int32) (stale, unavailable, rejected bool, err error) {
	u := fmt.Sprintf("%s/graphs/%s/dist?source=%d", t.base, t.graph, source)
	req, err := http.NewRequest(http.MethodGet, u, nil)
	if err != nil {
		return false, false, false, err
	}
	unavailable, rejected, err = t.do(ctx, req)
	return false, unavailable, rejected, err
}

func (t *httpTarget) path(ctx context.Context, _ int, u, v int32) (bool, error) {
	url := fmt.Sprintf("%s/graphs/%s/path?from=%d&to=%d", t.base, t.graph, u, v)
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return false, err
	}
	unavail, _, err := t.do(ctx, req)
	return unavail, err
}

func (t *httpTarget) matrix(ctx context.Context, _ int, s, tv []int32) (bool, error) {
	body, err := json.Marshal(map[string]any{"sources": s, "targets": tv})
	if err != nil {
		return false, err
	}
	u := fmt.Sprintf("%s/graphs/%s/matrix", t.base, t.graph)
	req, err := http.NewRequest(http.MethodPost, u, bytes.NewReader(body))
	if err != nil {
		return false, err
	}
	req.Header.Set("Content-Type", "application/json")
	unavail, _, err := t.do(ctx, req)
	return unavail, err
}

func runHTTP(cfg simConfig, base, graph string) (*Result, error) {
	tgt := &httpTarget{base: base, graph: graph, client: &http.Client{Timeout: 30 * time.Second}}
	// Probe readiness once so a cold server doesn't drown the report in
	// 503s.
	if _, _, _, err := tgt.dist(context.Background(), 0, 0); err != nil {
		return nil, fmt.Errorf("probe %s: %w", base, err)
	}
	return drive(cfg, tgt, nil), nil
}
