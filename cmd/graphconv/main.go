// Command graphconv converts and inspects graph datasets across every
// format the graphio layer speaks — the offline half of the ingestion
// pipeline: turn a downloaded DIMACS road network, SNAP edge list, or
// METIS partition input into a .csrg container once, then serve it with
// cmd/serve -graph-dir at mmap speed forever.
//
//	graphconv -in USA-road-d.NY.gr -out ny.csrg      # parse once, serve fast
//	graphconv -in web-Google.txt.gz -out web.csrg    # gzipped SNAP edge list
//	graphconv -in ny.csrg                            # inspect: header, sections, stats
//	graphconv -in a.metis -out a.gr                  # METIS → DIMACS
//	graphconv -in ny.gr -out ny.csrg -partition 4    # ny.shard<i>.csrg + ny.shards.json
//
// The output format follows the -out extension (override with -to). With
// no -out, graphconv prints the detected format and graph statistics —
// for .csrg files including the section table and checksum verification.
//
// With -partition K (or -shard-target-bytes) the graph is split by the
// deterministic edge-cut partitioner into K shard containers plus a
// manifest next to -out; cmd/serve -graph-dir picks the set up as one
// sharded graph whose engines never hold the whole graph at once.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/graphio"
	"repro/internal/graph"
	"repro/internal/partition"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("graphconv: ")
	var (
		in      = flag.String("in", "", "input graph file (required)")
		out     = flag.String("out", "", "output file; format chosen by extension (empty: inspect only)")
		from    = flag.String("from", "", "override input format: legacy|dimacs|edgelist|metis|csrg")
		to      = flag.String("to", "", "override output format (default: by -out extension)")
		workers = flag.Int("workers", 0, "parser chunk workers (0 = auto); output is identical for every value")
		partK   = flag.Int("partition", 0, "write a sharded container set with K shards (<out base>.shard<i>.csrg + manifest)")
		partTgt = flag.Int64("shard-target-bytes", 0, "derive the shard count from a per-shard engine memory target")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}

	opts := []graphio.Option{graphio.WithWorkers(*workers)}
	if *from != "" {
		f := graphio.ParseFormat(*from)
		if f == graphio.FormatUnknown {
			log.Fatalf("unknown -from format %q", *from)
		}
		opts = append(opts, graphio.WithFormat(f))
	}
	start := time.Now()
	g, format, err := graphio.LoadFile(*in, opts...)
	if err != nil {
		log.Fatal(err)
	}
	loadTime := time.Since(start)

	fmt.Printf("%s: %s format, n=%d m=%d arcs=%d, loaded in %v\n",
		*in, format, g.N, g.M(), g.Arcs(), loadTime.Round(time.Microsecond))
	printStats(g)

	if *partK > 0 || *partTgt > 0 {
		if *out == "" {
			log.Fatal("-partition/-shard-target-bytes need -out (the base path for the shard files)")
		}
		writeShards(g, *out, *partK, *partTgt)
		return
	}

	if *out == "" {
		return
	}
	start = time.Now()
	outFormat := graphio.FormatUnknown
	if *to != "" {
		if outFormat = graphio.ParseFormat(*to); outFormat == graphio.FormatUnknown {
			log.Fatalf("unknown -to format %q", *to)
		}
	}
	if err := graphio.EncodeFileAs(*out, g, outFormat); err != nil {
		log.Fatal(err)
	}
	st, err := os.Stat(*out)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d bytes) in %v\n", *out, st.Size(), time.Since(start).Round(time.Microsecond))
}

// writeShards runs the deterministic partitioner and persists the sharded
// container set next to out (whose .csrg extension, if any, is stripped to
// form the set name).
func writeShards(g *graph.Graph, out string, k int, target int64) {
	if k <= 0 {
		k = partition.KForTarget(g.N, g.M(), target)
	}
	start := time.Now()
	res := partition.Partition(g, k)
	fmt.Printf("partitioned into %d shards in %v: %d boundary vertices, %d cut edges (%.2f%% of m), %d propagation rounds\n",
		res.K, time.Since(start).Round(time.Microsecond), len(res.Boundary), len(res.CutEdges),
		100*float64(len(res.CutEdges))/float64(g.M()), res.Rounds)
	for i, sh := range res.Shards {
		fmt.Printf("  shard %d: n=%d m=%d boundary=%d\n", i, sh.G.N, sh.G.M(), len(sh.Boundary))
	}
	dir := filepath.Dir(out)
	name := strings.TrimSuffix(filepath.Base(out), ".csrg")
	start = time.Now()
	manifest, err := graphio.WriteShards(dir, name, res)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (+%d shard containers) in %v\n",
		manifest, res.K, time.Since(start).Round(time.Microsecond))
}

// printStats summarizes the loaded graph: degree distribution, weight
// range, and the aspect-ratio bound the multi-scale schedule depends on.
func printStats(g *graph.Graph) {
	if g.M() == 0 {
		fmt.Println("  (no edges)")
		return
	}
	minDeg, maxDeg := math.MaxInt, 0
	for v := 0; v < g.N; v++ {
		d := g.Degree(int32(v))
		if d < minDeg {
			minDeg = d
		}
		if d > maxDeg {
			maxDeg = d
		}
	}
	minW, maxW := math.Inf(1), math.Inf(-1)
	for _, e := range g.Edges {
		if e.W < minW {
			minW = e.W
		}
		if e.W > maxW {
			maxW = e.W
		}
	}
	fmt.Printf("  degree: min %d avg %.2f max %d | weights: [%g, %g] | aspect≤%.3g\n",
		minDeg, float64(g.Arcs())/float64(g.N), maxDeg, minW, maxW, g.AspectRatioUpperBound())
}
