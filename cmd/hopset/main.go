// Command hopset builds a deterministic (1+ε, β)-hopset through the oracle
// engine and prints its statistics: size per scale and kind, the parameter
// schedule, the per-phase ledger, and PRAM depth/work accounting.
//
// Usage:
//
//	hopset [flags]            # generate a graph
//	hopset -in road.gr        # or read one (any graphio format, auto-detected)
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"

	"repro/graphio"
	"repro/internal/graph"
	"repro/internal/hopset"
	"repro/internal/pram"
	"repro/oracle"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hopset: ")
	var (
		in      = flag.String("in", "", "input graph file, any supported format (empty: generate)")
		gen     = flag.String("gen", "gnm", "generator: gnm|grid|path|powerlaw|geometric")
		n       = flag.Int("n", 1024, "vertices (generated graphs)")
		m       = flag.Int("m", 4096, "edges (gnm)")
		seed    = flag.Int64("seed", 1, "generator seed")
		eps     = flag.Float64("eps", 0.25, "stretch target ε")
		kappa   = flag.Int("kappa", 3, "size exponent κ (n^{1+1/κ})")
		rho     = flag.Float64("rho", 1.0/3, "work exponent ρ")
		beta    = flag.Int("beta", 0, "effective β hop cap (0 = auto)")
		strict  = flag.Bool("strict", false, "paper's closed-form edge weights")
		paths   = flag.Bool("paths", false, "record memory paths (§4)")
		verbose = flag.Bool("v", false, "print the per-phase ledger")
		outG    = flag.String("out-graph", "", "write the (normalized) graph to this file (format by extension: .csrg/.gr/.metis/…)")
		outH    = flag.String("out-hopset", "", "write the hopset to this file (verify with cmd/verify)")
		outS    = flag.String("out-snapshot", "", "write an engine snapshot (serve with cmd/serve -snapshot)")
		snapDir = flag.String("snapshot-dir", "", "write the snapshot into this registry directory as <name>.snap")
		name    = flag.String("name", "", "graph name inside -snapshot-dir (default: the generator name)")
	)
	flag.Parse()

	g, err := loadOrGen(*in, *gen, *n, *m, *seed)
	if err != nil {
		log.Fatal(err)
	}
	tr := pram.New()
	opts := []oracle.Option{
		oracle.WithEpsilon(*eps), oracle.WithKappa(*kappa), oracle.WithRho(*rho),
		oracle.WithEffectiveBeta(*beta), oracle.WithTracker(tr),
	}
	if *paths {
		opts = append(opts, oracle.WithPathReporting())
	}
	if *strict {
		opts = append(opts, oracle.WithStrictWeights())
	}
	eng, err := oracle.New(g, opts...)
	if err != nil {
		log.Fatal(err)
	}
	h := eng.Hopset()

	fmt.Printf("graph: n=%d m=%d aspect≤%.3g\n", g.N, g.M(), g.AspectRatioUpperBound())
	s := h.Sched
	fmt.Printf("schedule: β=%d (theoretical %.3g) hopBudget=%d scales=[%d,%d] ℓ=%d deg=%v\n",
		s.Beta, s.TheoreticalBeta, s.HopBudget(), s.K0, s.Lambda, s.Ell, s.Deg)
	fmt.Printf("epsilon: target=%g perScale=%.4g perPhase=%.4g accumulated=%.4g\n",
		*eps, s.EpsScale, s.EpsPhase, h.EpsFinal)
	fmt.Printf("size: %d edges (bound %.0f = ⌈logΛ⌉·n^{1+1/κ})\n",
		h.Size(), float64(s.Lambda+1)*hopset.SizeBound(g.N, *kappa))
	kinds := h.KindCounts()
	fmt.Printf("kinds: super=%d interconnect=%d\n",
		kinds[hopset.Superclustering], kinds[hopset.Interconnection])
	scales := h.ScaleSizes()
	var ks []int
	for k := range scales {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	for _, k := range ks {
		fmt.Printf("  scale %2d: %6d edges\n", k, scales[k])
	}
	if *paths {
		fmt.Printf("memory paths: max length %d (σ)\n", h.MaxMemoryPathLen())
	}
	fmt.Printf("pram: %v\n", tr.Snapshot())
	if *outG != "" {
		if err := graphio.EncodeFile(*outG, h.G); err != nil {
			log.Fatal(err)
		}
	}
	if *outH != "" {
		if err := writeFile(*outH, func(f io.Writer) error { return hopset.Encode(f, h) }); err != nil {
			log.Fatal(err)
		}
	}
	if *outS != "" {
		if err := writeFile(*outS, eng.SaveSnapshot); err != nil {
			log.Fatal(err)
		}
	}
	if *snapDir != "" {
		// Target a named slot in a cmd/serve -snapshot-dir registry
		// directory: serve picks the graph up by file name, and
		// POST /graphs/<name>/reload hot-swaps it after a rewrite.
		if err := os.MkdirAll(*snapDir, 0o755); err != nil {
			log.Fatal(err)
		}
		slot := *name
		if slot == "" {
			slot = *gen
		}
		path := filepath.Join(*snapDir, slot+".snap")
		if err := writeFile(path, eng.SaveSnapshot); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("snapshot: %s (serve -snapshot-dir %s; reload with POST /graphs/%s/reload)\n",
			path, *snapDir, slot)
	}
	if *verbose {
		fmt.Println("phase ledger:")
		for _, st := range h.Stats {
			fmt.Printf("  k=%2d i=%d |P|=%5d deg=%4d pop=%5d rul=%4d super=%5d retired=%5d sc=%5d ic=%6d rad=%.3g\n",
				st.Scale, st.Phase, st.Clusters, st.Deg, st.Popular, st.Ruling,
				st.Superclustered, st.Retired, st.SCEdges, st.ICEdges, st.MaxRad)
		}
	}
}

func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func loadOrGen(in, gen string, n, m int, seed int64) (*graph.Graph, error) {
	if in != "" {
		g, format, err := graphio.LoadFile(in)
		if err != nil {
			return nil, err
		}
		log.Printf("loaded %s (%s format)", in, format)
		return g, nil
	}
	switch gen {
	case "gnm":
		return graph.Gnm(n, m, graph.UniformWeights(1, 8), seed), nil
	case "grid":
		side := 1
		for side*side < n {
			side++
		}
		return graph.Grid(side, side, graph.UniformWeights(1, 4), seed), nil
	case "path":
		return graph.Path(n, graph.UnitWeights(), seed), nil
	case "powerlaw":
		return graph.PowerLaw(n, 3, graph.UnitWeights(), seed), nil
	case "geometric":
		return graph.Geometric(n, 0.08, seed), nil
	default:
		return nil, fmt.Errorf("unknown generator %q", gen)
	}
}
