package main

import (
	"strings"
	"testing"
)

func TestCompare(t *testing.T) {
	base := doc{
		Kernel: []kernelRow{
			{Workload: "grid-block", ArcReduction: 6.8},
			{Workload: "gnm-spread", ArcReduction: 35.0},
		},
		HopsetBuild: []buildRow{{Family: "grid-2304", BuildSpeedup: 1.6}},
	}
	t.Run("within tolerance passes", func(t *testing.T) {
		cur := doc{
			Kernel: []kernelRow{
				{Workload: "grid-block", ArcReduction: 6.0}, // -12%, inside 15%
				{Workload: "gnm-spread", ArcReduction: 36.0},
			},
			HopsetBuild: []buildRow{{Family: "grid-2304", BuildSpeedup: 1.5}},
		}
		if fails := compare(cur, base, 0.15); len(fails) != 0 {
			t.Fatalf("unexpected failures: %v", fails)
		}
	})
	t.Run("arc reduction regression fails", func(t *testing.T) {
		cur := doc{
			Kernel: []kernelRow{
				{Workload: "grid-block", ArcReduction: 4.0}, // -41%
				{Workload: "gnm-spread", ArcReduction: 35.0},
			},
			HopsetBuild: []buildRow{{Family: "grid-2304", BuildSpeedup: 1.6}},
		}
		fails := compare(cur, base, 0.15)
		if len(fails) != 1 || !strings.Contains(fails[0], "grid-block") {
			t.Fatalf("failures = %v, want one grid-block arc_reduction failure", fails)
		}
	})
	t.Run("build speedup regression fails", func(t *testing.T) {
		cur := doc{
			Kernel: []kernelRow{
				{Workload: "grid-block", ArcReduction: 6.8},
				{Workload: "gnm-spread", ArcReduction: 35.0},
			},
			HopsetBuild: []buildRow{{Family: "grid-2304", BuildSpeedup: 1.0}}, // -37%
		}
		fails := compare(cur, base, 0.15)
		if len(fails) != 1 || !strings.Contains(fails[0], "build_speedup") {
			t.Fatalf("failures = %v, want one build_speedup failure", fails)
		}
	})
	t.Run("missing workload fails", func(t *testing.T) {
		cur := doc{
			Kernel:      []kernelRow{{Workload: "grid-block", ArcReduction: 6.8}},
			HopsetBuild: []buildRow{{Family: "grid-2304", BuildSpeedup: 1.6}},
		}
		fails := compare(cur, base, 0.15)
		if len(fails) != 1 || !strings.Contains(fails[0], "gnm-spread") {
			t.Fatalf("failures = %v, want one missing-workload failure", fails)
		}
	})
}

func TestCompareLoadsim(t *testing.T) {
	base := loadsimDoc{Profile: "zipf-hot", DistP99Improvement: 1.5}
	t.Run("above floor passes", func(t *testing.T) {
		if fails := compareLoadsim(loadsimDoc{Profile: "zipf-hot", DistP99Improvement: 6.2}, base, 0.15); len(fails) != 0 {
			t.Fatalf("unexpected failures: %v", fails)
		}
	})
	t.Run("within tolerance passes", func(t *testing.T) {
		// floor = 1.5 * 0.85 = 1.275
		if fails := compareLoadsim(loadsimDoc{Profile: "zipf-hot", DistP99Improvement: 1.3}, base, 0.15); len(fails) != 0 {
			t.Fatalf("unexpected failures: %v", fails)
		}
	})
	t.Run("regression fails", func(t *testing.T) {
		fails := compareLoadsim(loadsimDoc{Profile: "zipf-hot", DistP99Improvement: 1.1}, base, 0.15)
		if len(fails) != 1 || !strings.Contains(fails[0], "dist_p99_improvement") {
			t.Fatalf("failures = %v, want one improvement-factor failure", fails)
		}
	})
	t.Run("missing metric fails", func(t *testing.T) {
		fails := compareLoadsim(loadsimDoc{Profile: "zipf-hot"}, base, 0.15)
		if len(fails) != 1 || !strings.Contains(fails[0], "missing") {
			t.Fatalf("failures = %v, want one missing-metric failure", fails)
		}
	})
	t.Run("empty baseline gates nothing", func(t *testing.T) {
		if fails := compareLoadsim(loadsimDoc{}, loadsimDoc{}, 0.15); len(fails) != 0 {
			t.Fatalf("unexpected failures: %v", fails)
		}
	})
}
