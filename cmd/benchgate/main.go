// Command benchgate is the CI trajectory gate for the batch benchmarks
// (ROADMAP item 5): it compares a freshly measured BENCH_batch.json
// against the committed baseline and exits non-zero when the batched
// kernel or the batched hopset build regressed beyond the tolerance.
//
//	benchgate -current BENCH_batch.json -baseline bench/BENCH_batch.baseline.json
//
// What is gated, and why these metrics:
//
//   - kernel[].arc_reduction — scanned arcs are deterministic counters,
//     identical on every machine, so any drop at all is a real kernel
//     regression; the tolerance only absorbs intentional re-baselining
//     slack.
//   - hopset_build[].build_speedup — the batched build wall-clock,
//     expressed as the record-path/lane-path ratio measured in the same
//     process on the same machine, so the number is portable across CI
//     hosts. A ratio drop beyond the tolerance means the batched build
//     got slower relative to the code it replaced: the build fails.
//
// Raw wall-clock milliseconds and the serve-layer QPS numbers are
// reported in the artifact but not gated — they track machine speed, not
// code, and would flake across runners.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type kernelRow struct {
	Workload     string  `json:"workload"`
	ArcReduction float64 `json:"arc_reduction"`
	WallSpeedup  float64 `json:"wall_speedup"`
}

type buildRow struct {
	Family       string  `json:"family"`
	BuildSpeedup float64 `json:"build_speedup"`
}

type doc struct {
	Kernel      []kernelRow `json:"kernel"`
	HopsetBuild []buildRow  `json:"hopset_build"`
}

func load(path string) (doc, error) {
	var d doc
	data, err := os.ReadFile(path)
	if err != nil {
		return d, err
	}
	if err := json.Unmarshal(data, &d); err != nil {
		return d, fmt.Errorf("%s: %w", path, err)
	}
	return d, nil
}

// gate checks cur >= base*(1-tol) and returns a failure line, or "" when
// the metric holds.
func gate(what string, cur, base, tol float64) string {
	floor := base * (1 - tol)
	if cur >= floor {
		return ""
	}
	return fmt.Sprintf("FAIL %-40s %.3f < %.3f (baseline %.3f, tolerance %.0f%%)",
		what, cur, floor, base, tol*100)
}

// compare evaluates every gated baseline metric against the current run
// and returns the failures. A baseline row missing from the current run
// fails too: silently dropping a workload would hide a regression.
func compare(cur, base doc, tol float64) []string {
	var failures []string
	kernels := map[string]kernelRow{}
	for _, r := range cur.Kernel {
		kernels[r.Workload] = r
	}
	for _, b := range base.Kernel {
		c, ok := kernels[b.Workload]
		if !ok {
			failures = append(failures, fmt.Sprintf("FAIL kernel workload %q missing from current run", b.Workload))
			continue
		}
		if f := gate("kernel/"+b.Workload+" arc_reduction", c.ArcReduction, b.ArcReduction, tol); f != "" {
			failures = append(failures, f)
		}
	}
	builds := map[string]buildRow{}
	for _, r := range cur.HopsetBuild {
		builds[r.Family] = r
	}
	for _, b := range base.HopsetBuild {
		c, ok := builds[b.Family]
		if !ok {
			failures = append(failures, fmt.Sprintf("FAIL hopset_build family %q missing from current run", b.Family))
			continue
		}
		if f := gate("hopset_build/"+b.Family+" build_speedup", c.BuildSpeedup, b.BuildSpeedup, tol); f != "" {
			failures = append(failures, f)
		}
	}
	return failures
}

func main() {
	var (
		current  = flag.String("current", "BENCH_batch.json", "freshly measured batch benchmark JSON")
		baseline = flag.String("baseline", "bench/BENCH_batch.baseline.json", "committed baseline JSON")
		tol      = flag.Float64("tolerance", 0.15, "allowed fractional regression before failing")
	)
	flag.Parse()
	cur, err := load(*current)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	base, err := load(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	for _, r := range cur.Kernel {
		fmt.Printf("kernel/%-12s arc_reduction=%.2f wall_speedup=%.2f\n", r.Workload, r.ArcReduction, r.WallSpeedup)
	}
	for _, r := range cur.HopsetBuild {
		fmt.Printf("hopset_build/%-12s build_speedup=%.2f\n", r.Family, r.BuildSpeedup)
	}
	failures := compare(cur, base, *tol)
	for _, f := range failures {
		fmt.Println(f)
	}
	if len(failures) > 0 {
		fmt.Printf("benchgate: %d regression(s) beyond %.0f%% tolerance\n", len(failures), *tol*100)
		os.Exit(1)
	}
	fmt.Println("benchgate: all gated metrics within tolerance")
}
