// Command benchgate is the CI trajectory gate for the batch benchmarks
// (ROADMAP item 5): it compares a freshly measured BENCH_batch.json
// against the committed baseline and exits non-zero when the batched
// kernel or the batched hopset build regressed beyond the tolerance.
//
//	benchgate -current BENCH_batch.json -baseline bench/BENCH_batch.baseline.json
//
// What is gated, and why these metrics:
//
//   - kernel[].arc_reduction — scanned arcs are deterministic counters,
//     identical on every machine, so any drop at all is a real kernel
//     regression; the tolerance only absorbs intentional re-baselining
//     slack.
//   - hopset_build[].build_speedup — the batched build wall-clock,
//     expressed as the record-path/lane-path ratio measured in the same
//     process on the same machine, so the number is portable across CI
//     hosts. A ratio drop beyond the tolerance means the batched build
//     got slower relative to the code it replaced: the build fails.
//
// With -loadsim-current/-loadsim-baseline the serve-path tail-latency
// comparison is gated too:
//
//   - dist_p99_improvement — the hot-pair-cache p99 improvement factor a
//     loadsim -compare run measures (pre p99 / post p99, both runs in
//     the same process on the same machine, so the ratio is portable).
//     Falling below the baseline floor beyond the tolerance means the
//     serve-path optimizations stopped paying for themselves.
//
// With -audit-current/-audit-baseline the shadow-audit overhead
// comparison (a loadsim -audit-compare report) is gated too:
//
//   - audit_p99_ratio — no-audit dist p99 divided by the audited dist
//     p99 at the sampled rate, both sides measured back-to-back in the
//     same process. A ratio of 1 means auditing is free at the tail;
//     falling below the committed floor beyond the (tighter, -audit-
//     tolerance) slack means background audits started stealing tail
//     latency from the query path.
//   - violations — any non-zero stretch-violation count in the audited
//     run fails outright, tolerance or not: the audit smoke doubles as
//     a correctness check.
//
// Raw wall-clock milliseconds and the serve-layer QPS numbers are
// reported in the artifact but not gated — they track machine speed, not
// code, and would flake across runners.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type kernelRow struct {
	Workload     string  `json:"workload"`
	ArcReduction float64 `json:"arc_reduction"`
	WallSpeedup  float64 `json:"wall_speedup"`
}

type buildRow struct {
	Family       string  `json:"family"`
	BuildSpeedup float64 `json:"build_speedup"`
}

type doc struct {
	Kernel      []kernelRow `json:"kernel"`
	HopsetBuild []buildRow  `json:"hopset_build"`
}

// loadsimDoc is the slice of a loadsim -compare report (or its committed
// baseline floor) that benchgate gates.
type loadsimDoc struct {
	Profile            string  `json:"profile"`
	DistP99Improvement float64 `json:"dist_p99_improvement"`
}

func loadLoadsim(path string) (loadsimDoc, error) {
	var d loadsimDoc
	data, err := os.ReadFile(path)
	if err != nil {
		return d, err
	}
	if err := json.Unmarshal(data, &d); err != nil {
		return d, fmt.Errorf("%s: %w", path, err)
	}
	return d, nil
}

// compareLoadsim gates the tail-latency improvement factor. A current
// report without the metric (e.g. a non-compare loadsim run) fails:
// gating nothing silently would hide a regression.
func compareLoadsim(cur, base loadsimDoc, tol float64) []string {
	var failures []string
	if base.DistP99Improvement <= 0 {
		return failures // baseline gates nothing
	}
	if cur.DistP99Improvement <= 0 {
		return append(failures, "FAIL loadsim dist_p99_improvement missing from current run (need a -compare report)")
	}
	if f := gate("loadsim/"+cur.Profile+" dist_p99_improvement",
		cur.DistP99Improvement, base.DistP99Improvement, tol); f != "" {
		failures = append(failures, f)
	}
	return failures
}

// auditDoc is the slice of a loadsim -audit-compare report (or its
// committed baseline floor) that benchgate gates.
type auditDoc struct {
	Profile       string  `json:"profile"`
	AuditP99Ratio float64 `json:"audit_p99_ratio"`
	Violations    int64   `json:"violations"`
}

func loadAudit(path string) (auditDoc, error) {
	var d auditDoc
	data, err := os.ReadFile(path)
	if err != nil {
		return d, err
	}
	if err := json.Unmarshal(data, &d); err != nil {
		return d, fmt.Errorf("%s: %w", path, err)
	}
	return d, nil
}

// compareAudit gates the shadow-audit overhead ratio and fails outright
// on any observed stretch violation. A current report without the ratio
// (e.g. a non-audit-compare loadsim run) fails: gating nothing silently
// would hide a regression.
func compareAudit(cur, base auditDoc, tol float64) []string {
	var failures []string
	if cur.Violations > 0 {
		failures = append(failures, fmt.Sprintf(
			"FAIL audit/%s saw %d stretch-audit violation(s) — correctness, not tolerance",
			cur.Profile, cur.Violations))
	}
	if base.AuditP99Ratio <= 0 {
		return failures // baseline gates no overhead floor
	}
	if cur.AuditP99Ratio <= 0 {
		return append(failures, "FAIL audit audit_p99_ratio missing from current run (need an -audit-compare report)")
	}
	if f := gate("audit/"+cur.Profile+" audit_p99_ratio",
		cur.AuditP99Ratio, base.AuditP99Ratio, tol); f != "" {
		failures = append(failures, f)
	}
	return failures
}

func load(path string) (doc, error) {
	var d doc
	data, err := os.ReadFile(path)
	if err != nil {
		return d, err
	}
	if err := json.Unmarshal(data, &d); err != nil {
		return d, fmt.Errorf("%s: %w", path, err)
	}
	return d, nil
}

// gate checks cur >= base*(1-tol) and returns a failure line, or "" when
// the metric holds.
func gate(what string, cur, base, tol float64) string {
	floor := base * (1 - tol)
	if cur >= floor {
		return ""
	}
	return fmt.Sprintf("FAIL %-40s %.3f < %.3f (baseline %.3f, tolerance %.0f%%)",
		what, cur, floor, base, tol*100)
}

// compare evaluates every gated baseline metric against the current run
// and returns the failures. A baseline row missing from the current run
// fails too: silently dropping a workload would hide a regression.
func compare(cur, base doc, tol float64) []string {
	var failures []string
	kernels := map[string]kernelRow{}
	for _, r := range cur.Kernel {
		kernels[r.Workload] = r
	}
	for _, b := range base.Kernel {
		c, ok := kernels[b.Workload]
		if !ok {
			failures = append(failures, fmt.Sprintf("FAIL kernel workload %q missing from current run", b.Workload))
			continue
		}
		if f := gate("kernel/"+b.Workload+" arc_reduction", c.ArcReduction, b.ArcReduction, tol); f != "" {
			failures = append(failures, f)
		}
	}
	builds := map[string]buildRow{}
	for _, r := range cur.HopsetBuild {
		builds[r.Family] = r
	}
	for _, b := range base.HopsetBuild {
		c, ok := builds[b.Family]
		if !ok {
			failures = append(failures, fmt.Sprintf("FAIL hopset_build family %q missing from current run", b.Family))
			continue
		}
		if f := gate("hopset_build/"+b.Family+" build_speedup", c.BuildSpeedup, b.BuildSpeedup, tol); f != "" {
			failures = append(failures, f)
		}
	}
	return failures
}

func main() {
	var (
		current   = flag.String("current", "", "freshly measured batch benchmark JSON")
		baseline  = flag.String("baseline", "", "committed batch baseline JSON")
		lsCurrent = flag.String("loadsim-current", "", "freshly measured loadsim -compare JSON")
		lsBase    = flag.String("loadsim-baseline", "", "committed loadsim baseline JSON")
		auCurrent = flag.String("audit-current", "", "freshly measured loadsim -audit-compare JSON")
		auBase    = flag.String("audit-baseline", "", "committed audit-overhead baseline JSON")
		tol       = flag.Float64("tolerance", 0.15, "allowed fractional regression before failing")
		auTol     = flag.Float64("audit-tolerance", 0.05, "allowed fractional audit_p99_ratio regression before failing")
	)
	flag.Parse()
	if *current == "" && *lsCurrent == "" && *auCurrent == "" {
		// Bare invocation keeps the original batch-gate default.
		*current, *baseline = "BENCH_batch.json", "bench/BENCH_batch.baseline.json"
	}
	var failures []string
	if *current != "" {
		if *baseline == "" {
			*baseline = "bench/BENCH_batch.baseline.json"
		}
		cur, err := load(*current)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
		base, err := load(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
		for _, r := range cur.Kernel {
			fmt.Printf("kernel/%-12s arc_reduction=%.2f wall_speedup=%.2f\n", r.Workload, r.ArcReduction, r.WallSpeedup)
		}
		for _, r := range cur.HopsetBuild {
			fmt.Printf("hopset_build/%-12s build_speedup=%.2f\n", r.Family, r.BuildSpeedup)
		}
		failures = append(failures, compare(cur, base, *tol)...)
	}
	if *lsCurrent != "" {
		if *lsBase == "" {
			*lsBase = "bench/BENCH_loadsim.baseline.json"
		}
		cur, err := loadLoadsim(*lsCurrent)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
		base, err := loadLoadsim(*lsBase)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
		fmt.Printf("loadsim/%-12s dist_p99_improvement=%.2f (floor %.2f)\n",
			cur.Profile, cur.DistP99Improvement, base.DistP99Improvement)
		failures = append(failures, compareLoadsim(cur, base, *tol)...)
	}
	if *auCurrent != "" {
		if *auBase == "" {
			*auBase = "bench/BENCH_audit.baseline.json"
		}
		cur, err := loadAudit(*auCurrent)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
		base, err := loadAudit(*auBase)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
		fmt.Printf("audit/%-14s audit_p99_ratio=%.2f (floor %.2f) violations=%d\n",
			cur.Profile, cur.AuditP99Ratio, base.AuditP99Ratio, cur.Violations)
		failures = append(failures, compareAudit(cur, base, *auTol)...)
	}
	for _, f := range failures {
		fmt.Println(f)
	}
	if len(failures) > 0 {
		fmt.Printf("benchgate: %d regression(s) beyond %.0f%% tolerance\n", len(failures), *tol*100)
		os.Exit(1)
	}
	fmt.Println("benchgate: all gated metrics within tolerance")
}
