// Command sssp computes deterministic (1+ε)-approximate single-source
// shortest paths (Theorem 3.8) through the oracle engine and compares them
// against exact Dijkstra: it prints the measured stretch distribution, the
// hop budget used, and — with -spt — extracts and validates a
// (1+ε)-shortest-path tree (§4). With -snapshot-dir it queries a named
// engine from a registry snapshot directory (the cmd/serve -snapshot-dir
// layout) instead of building one.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"
	"runtime/pprof"

	"repro/graphio"
	"repro/internal/exact"
	"repro/internal/graph"
	"repro/internal/pram"
	"repro/oracle"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sssp: ")
	var (
		in      = flag.String("in", "", "input graph file, any supported format (empty: generate gnm)")
		n       = flag.Int("n", 1024, "vertices (generated)")
		m       = flag.Int("m", 4096, "edges (generated)")
		seed    = flag.Int64("seed", 1, "generator seed")
		src     = flag.Int("source", 0, "source vertex")
		eps     = flag.Float64("eps", 0.25, "stretch target ε")
		ks      = flag.Bool("ks", false, "Klein–Sairam weight reduction (wide weights)")
		spt     = flag.Bool("spt", false, "also extract a (1+ε)-SPT (§4)")
		nsrc    = flag.Int("sources", 1, "number of sources (aMSSD)")
		prof    = flag.String("cpuprofile", "", "write a CPU profile of build+queries to this file")
		snapDir = flag.String("snapshot-dir", "", "load the engine from <snapshot-dir>/<graph>.snap instead of building")
		gname   = flag.String("graph", "default", "graph name inside -snapshot-dir")
	)
	flag.Parse()

	// fatal stops the CPU profile (a no-op when none is running) before
	// exiting, so error paths never leave a truncated profile behind.
	fatal := func(v ...any) {
		pprof.StopCPUProfile()
		log.Fatal(v...)
	}
	if *prof != "" {
		f, err := os.Create(*prof)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	tr := pram.New()

	if *snapDir != "" {
		path := filepath.Join(*snapDir, *gname+".snap")
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		eng, err := oracle.LoadSnapshot(f, oracle.WithTracker(tr))
		f.Close()
		if err != nil {
			fatal(err)
		}
		h := eng.Hopset()
		fmt.Printf("graph %q from %s: n=%d m=%d | hopset: %d edges\n",
			*gname, path, h.G.N, h.G.M(), h.Size())
		// The snapshot's stored graph is normalized; engine answers are in
		// input units, so the Dijkstra reference must be rescaled to match.
		queryAndReport(eng, h.G, h.ScaleFactor, *src, *nsrc, *eps, *spt, tr, fatal)
		return
	}

	var g *graph.Graph
	if *in != "" {
		var derr error
		g, _, derr = graphio.LoadFile(*in)
		if derr != nil {
			fatal(derr)
		}
	} else {
		wf := graph.UniformWeights(1, 8)
		if *ks {
			wf = graph.GeometricScaleWeights(16)
		}
		g = graph.Gnm(*n, *m, wf, *seed)
	}

	opts := []oracle.Option{oracle.WithEpsilon(*eps), oracle.WithTracker(tr)}
	if *spt {
		opts = append(opts, oracle.WithPathReporting())
	}
	if *ks {
		opts = append(opts, oracle.WithWeightReduction())
	}
	eng, err := oracle.New(g, opts...)
	if err != nil {
		fatal(err)
	}
	build := tr.Snapshot()
	fmt.Printf("graph: n=%d m=%d | hopset: %d edges | build %v\n",
		g.N, g.M(), eng.Hopset().Size(), build)
	queryAndReport(eng, g, 1, *src, *nsrc, *eps, *spt, tr, fatal)
}

// queryAndReport runs the aMSSD queries and prints stretch and accounting.
// refScale converts the Dijkstra reference on g into the engine's output
// units (1 when g is the input graph, ScaleFactor for normalized snapshot
// graphs).
func queryAndReport(eng *oracle.Engine, g *graph.Graph, refScale float64, src, nsrc int, eps float64, spt bool, tr *pram.Tracker, fatal func(...any)) {
	sources := make([]int32, nsrc)
	for i := range sources {
		sources[i] = int32((src + i*g.N/nsrc) % g.N)
	}
	rows, err := eng.MultiSource(sources)
	if err != nil {
		fatal(err)
	}
	for i, s := range sources {
		ref, _ := exact.DijkstraGraph(g, s)
		reportStretch(fmt.Sprintf("source %d", s), rows[i], ref, refScale, eps)
	}
	fmt.Printf("query budget: %d rounds | pram after queries: %v\n",
		eng.HopBudget(), tr.Snapshot())
	rs := eng.Stats().Relax
	fmt.Printf("relax engine: %d explorations, %d arcs scanned (%.0f/query), rounds %d dense / %d sparse\n",
		rs.Explorations, rs.ScannedArcs, rs.ArcsPerExploration, rs.DenseRounds, rs.SparseRounds)

	if spt {
		tree, err := eng.Tree(sources[0])
		if err != nil {
			fatal(err)
		}
		edges := 0
		for v := range tree.Parent {
			if tree.Parent[v] >= 0 {
				edges++
			}
		}
		fmt.Printf("SPT: %d tree edges (all in E)\n", edges)
		ref, _ := exact.DijkstraGraph(g, sources[0])
		reportStretch("SPT", tree.Dist, ref, refScale, eps)
	}
}

func reportStretch(label string, got, ref []float64, refScale, eps float64) {
	worst, sum, cnt := 1.0, 0.0, 0
	for v := range got {
		if math.IsInf(ref[v], 1) || ref[v] == 0 {
			continue
		}
		r := got[v] / (ref[v] * refScale)
		if r > worst {
			worst = r
		}
		sum += r
		cnt++
	}
	status := "ok"
	if worst > 1+eps+1e-9 {
		status = "VIOLATION"
	}
	fmt.Printf("%s: max stretch %.5f, mean %.5f over %d vertices (target %.3f) %s\n",
		label, worst, sum/math.Max(1, float64(cnt)), cnt, 1+eps, status)
}
