// Command shardserve is the worker half of distributed shard serving: it
// loads some (or all) shards of a `<name>.shards.json` manifest written
// by graphconv -partition and serves each shard's subgraph as an ordinary
// registry graph named `<name>.shard<i>`, behind the same HTTP surface as
// cmd/serve. A router process (serve -route-manifest) scatter-gathers
// queries across a fleet of these workers; any worker serving a shard is
// a replica of it, because engine builds are deterministic — two workers
// given the same shard file and flags answer bit-identically.
//
//	shardserve -manifest data/usa.shards.json -addr :8081            # all shards
//	shardserve -manifest data/usa.shards.json -shards 0,2 -addr :8082
//
// The engine flags (-eps, -kappa, -paths) MUST match the router's: routed
// answers reuse the workers' per-shard arithmetic verbatim, so flag
// parity is the bit-identity contract (see shard.WorkerEngineOptions).
//
// Routes are oracle.NewRegistryHandler's; the aggregate /healthz is the
// router's per-endpoint health probe (200 once every local shard serves).
// -max-inflight applies the same weighted admission gate as serve.
// SIGINT/SIGTERM drain gracefully.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/graphio"
	"repro/internal/admission"
	"repro/internal/obs"
	"repro/oracle"
	"repro/shard"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("shardserve: ")
	var (
		addr     = flag.String("addr", ":8081", "listen address")
		manifest = flag.String("manifest", "", "shard manifest (<name>.shards.json; required)")
		shards   = flag.String("shards", "", "comma-separated shard IDs to serve (empty: all shards in the manifest)")
		eps      = flag.Float64("eps", 0.25, "per-shard engine stretch ε_local (must match the router's)")
		kappa    = flag.Int("kappa", 0, "κ override for shard engines (0 = oracle default; must match the router's)")
		paths    = flag.Bool("paths", true, "record memory paths (enables routed /path; must match the router's)")
		cache    = flag.Int("cache", 256, "distance-vector LRU capacity per engine")
		workers  = flag.Int("build-workers", 0, "bound on concurrent background builds (0 = auto)")
		inflight = flag.Int("max-inflight", 0, "admission limit on in-flight query cost units (0 = unlimited)")
		drain    = flag.Duration("drain", 15*time.Second, "graceful-shutdown drain bound")
		dbgAddr  = flag.String("debug-addr", "", "separate listen address for /debug/pprof and /debug/vars (empty = off)")
	)
	flag.Parse()
	if *manifest == "" {
		log.Fatal("-manifest is required")
	}

	man, err := graphio.LoadShardManifest(*manifest)
	if err != nil {
		log.Fatal(err)
	}
	ids, err := shardIDs(*shards, man.K)
	if err != nil {
		log.Fatal(err)
	}

	cfg := shard.Config{EpsilonLocal: *eps, Kappa: *kappa, PathReporting: *paths}
	engOpts := shard.WorkerEngineOptions(cfg)

	reg := oracle.NewRegistry(oracle.RegistryConfig{
		BuildWorkers:  *workers,
		EngineOptions: []oracle.Option{oracle.WithDistCache(*cache)},
	})
	defer reg.Close()

	dir := filepath.Dir(*manifest)
	for _, i := range ids {
		name := fmt.Sprintf("%s.shard%d", man.Name, i)
		// The shard file is re-read on every build (initial or reload), so
		// a rewritten shard set hot-swaps like any other registry graph.
		src := func(i int) oracle.EngineSource {
			return func(ctx context.Context, opts ...oracle.Option) (oracle.Backend, error) {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				sg, err := man.LoadShard(dir, i)
				if err != nil {
					return nil, err
				}
				return oracle.New(sg.G, append(append([]oracle.Option{}, opts...), engOpts...)...)
			}
		}(i)
		if err := reg.Add(name, src); err != nil {
			log.Fatal(err)
		}
		go func(name string, i int) {
			start := time.Now()
			if err := reg.WaitReady(context.Background(), name); err != nil {
				log.Printf("shard %d (%q) failed: %v", i, name, err)
				return
			}
			gi, err := reg.Info(name)
			if err != nil {
				return
			}
			log.Printf("shard %d ready as %q in %v: n=%d hopset=%d edges, ~%d MiB",
				i, name, time.Since(start).Round(time.Millisecond),
				gi.N, gi.HopsetEdges, gi.MemoryBytes>>20)
		}(name, i)
	}

	// Observability stack, mirroring cmd/serve: obs middleware outermost
	// (even 429s are counted and traced), admission just inside. The
	// worker's tracer records its half of every cross-process trace; the
	// router's /trace/{id} collects it via /trace/{id}?local=1.
	lim := admission.New(*inflight)
	tr := obs.NewTracer("shardserve", obs.TracerOptions{Logger: slog.Default()})
	httpm := obs.NewHTTPMetrics()
	prom := obs.NewRegistry()
	prom.Register(oracle.MetricsCollector(reg))
	prom.Register(httpm.Collect)
	prom.Register(obs.TracerCollector(tr))
	prom.Register(lim.Collect)
	if *dbgAddr != "" {
		da, err := obs.ListenDebug(*dbgAddr)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("debug listening on %s (/debug/pprof, /debug/vars)", da)
	}
	mux := http.NewServeMux()
	mux.Handle("/", oracle.NewRegistryHandler(reg))
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(struct {
			oracle.RegistryStats
			Admission admission.Stats `json:"admission"`
		}{reg.Stats(), lim.Stats()})
	})
	mux.Handle("/metrics", prom.Handler())
	mux.Handle("/trace/", obs.TraceHandler(tr, nil, nil))

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: obs.Middleware(tr, httpm, admission.Middleware(mux, lim))}
	log.Printf("worker listening on %s: %d/%d shards of %q (ε=%v κ=%d paths=%v)",
		ln.Addr(), len(ids), man.K, man.Name, *eps, *kappa, *paths)
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := runServer(ctx, srv, ln, reg, *drain); err != nil {
		log.Fatal(err)
	}
	log.Printf("shut down cleanly")
}

// runServer serves on ln until ctx is canceled, then drains gracefully —
// the same shutdown discipline as cmd/serve.
func runServer(ctx context.Context, srv *http.Server, ln net.Listener, reg *oracle.Registry, drain time.Duration) error {
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Printf("signal received, draining (up to %v)", drain)
	sctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	err := srv.Shutdown(sctx)
	reg.Close()
	if errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("drain deadline exceeded after %v", drain)
	}
	return err
}

// shardIDs parses -shards ("0,2,5") against the manifest's K; empty means
// every shard.
func shardIDs(s string, k int) ([]int, error) {
	if s == "" {
		ids := make([]int, k)
		for i := range ids {
			ids[i] = i
		}
		return ids, nil
	}
	var ids []int
	seen := make(map[int]bool)
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		i, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("-shards: %w", err)
		}
		if i < 0 || i >= k {
			return nil, fmt.Errorf("-shards: shard %d not in [0,%d)", i, k)
		}
		if seen[i] {
			continue
		}
		seen[i] = true
		ids = append(ids, i)
	}
	if len(ids) == 0 {
		return nil, errors.New("-shards: no shard IDs")
	}
	return ids, nil
}
