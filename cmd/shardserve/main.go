// Command shardserve is the worker half of distributed shard serving: it
// loads some (or all) shards of a `<name>.shards.json` manifest written
// by graphconv -partition and serves each shard's subgraph as an ordinary
// registry graph named `<name>.shard<i>`, behind the same HTTP surface as
// cmd/serve. A router process (serve -route-manifest) scatter-gathers
// queries across a fleet of these workers; any worker serving a shard is
// a replica of it, because engine builds are deterministic — two workers
// given the same shard file and flags answer bit-identically.
//
//	shardserve -manifest data/usa.shards.json -addr :8081            # all shards
//	shardserve -manifest data/usa.shards.json -shards 0,2 -addr :8082
//
// The engine flags (-eps, -kappa, -paths) MUST match the router's: routed
// answers reuse the workers' per-shard arithmetic verbatim, so flag
// parity is the bit-identity contract (see shard.WorkerEngineOptions).
//
// Routes are oracle.NewRegistryHandler's; the aggregate /healthz is the
// router's per-endpoint health probe (200 once every local shard serves).
// -max-inflight applies the same weighted admission gate as serve.
// SIGINT/SIGTERM drain gracefully.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/graphio"
	"repro/internal/admission"
	"repro/internal/obs"
	"repro/oracle"
	"repro/oracle/audit"
	"repro/shard"
)

// fatal logs a structured error event and exits — the slog replacement
// for log.Fatal at startup.
func fatal(msg string, err error) {
	if err != nil {
		slog.Error(msg, slog.String("error", err.Error()))
	} else {
		slog.Error(msg)
	}
	os.Exit(1)
}

func main() {
	var (
		addr     = flag.String("addr", ":8081", "listen address")
		manifest = flag.String("manifest", "", "shard manifest (<name>.shards.json; required)")
		shards   = flag.String("shards", "", "comma-separated shard IDs to serve (empty: all shards in the manifest)")
		eps      = flag.Float64("eps", 0.25, "per-shard engine stretch ε_local (must match the router's)")
		kappa    = flag.Int("kappa", 0, "κ override for shard engines (0 = oracle default; must match the router's)")
		paths    = flag.Bool("paths", true, "record memory paths (enables routed /path; must match the router's)")
		cache    = flag.Int("cache", 256, "distance-vector LRU capacity per engine")
		workers  = flag.Int("build-workers", 0, "bound on concurrent background builds (0 = auto)")
		inflight = flag.Int("max-inflight", 0, "admission limit on in-flight query cost units (0 = unlimited)")
		drain    = flag.Duration("drain", 15*time.Second, "graceful-shutdown drain bound")
		dbgAddr  = flag.String("debug-addr", "", "separate listen address for /debug/pprof and /debug/vars (empty = off)")
		logLevel = flag.String("log-level", "info", "log verbosity: debug, info, warn, error")
		logFmt   = flag.String("log-format", "json", "log output format: json (structured events) or text")
		auditFr  = flag.Float64("audit-sample", 0.01, "fraction of served answers shadow-audited against exact Dijkstra in the background (0 = off, 1 = every answer)")
		auditWk  = flag.Int("audit-workers", 2, "background audit worker pool size")
		sloLat   = flag.Duration("slo-latency", 250*time.Millisecond, "SLO latency target: queries slower than this consume the latency error budget")
	)
	flag.Parse()

	logger, err := obs.SetupLogger("shardserve", *logLevel, *logFmt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "shardserve:", err)
		os.Exit(2)
	}
	if *manifest == "" {
		fatal("-manifest is required", nil)
	}

	man, err := graphio.LoadShardManifest(*manifest)
	if err != nil {
		fatal("load shard manifest", err)
	}
	ids, err := shardIDs(*shards, man.K)
	if err != nil {
		fatal("parse -shards", err)
	}

	cfg := shard.Config{EpsilonLocal: *eps, Kappa: *kappa, PathReporting: *paths}
	engOpts := shard.WorkerEngineOptions(cfg)

	// Correctness observability, mirroring cmd/serve: per-shard answers
	// are sampled into the shadow auditor and every verdict feeds the
	// worker's own SLO engine (each shard graph is its own SLO subject).
	obj := obs.DefaultObjective()
	obj.LatencyTarget = *sloLat
	slo := obs.NewSLO(obj, logger)
	auditor := audit.New(audit.Config{
		SampleRate: *auditFr,
		Workers:    *auditWk,
		Logger:     logger,
		OnResult:   func(res audit.Result) { slo.ObserveAudit(res.Graph, res.Violation != "") },
	})
	defer auditor.Close()

	reg := oracle.NewRegistry(oracle.RegistryConfig{
		BuildWorkers:  *workers,
		Audit:         auditor,
		EngineOptions: []oracle.Option{oracle.WithDistCache(*cache)},
	})
	defer reg.Close()

	dir := filepath.Dir(*manifest)
	for _, i := range ids {
		name := fmt.Sprintf("%s.shard%d", man.Name, i)
		// The shard file is re-read on every build (initial or reload), so
		// a rewritten shard set hot-swaps like any other registry graph.
		src := func(i int) oracle.EngineSource {
			return func(ctx context.Context, opts ...oracle.Option) (oracle.Backend, error) {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				sg, err := man.LoadShard(dir, i)
				if err != nil {
					return nil, err
				}
				return oracle.New(sg.G, append(append([]oracle.Option{}, opts...), engOpts...)...)
			}
		}(i)
		if err := reg.Add(name, src); err != nil {
			fatal("register shard", err)
		}
		go func(name string, i int) {
			start := time.Now()
			if err := reg.WaitReady(context.Background(), name); err != nil {
				slog.Error("shard build failed",
					slog.Int("shard", i), slog.String("graph", name),
					slog.String("error", err.Error()))
				return
			}
			gi, err := reg.Info(name)
			if err != nil {
				return
			}
			slog.Info("shard ready",
				slog.Int("shard", i), slog.String("graph", name),
				slog.Duration("build", time.Since(start).Round(time.Millisecond)),
				slog.Int("n", gi.N), slog.Int("hopset_edges", gi.HopsetEdges),
				slog.Int64("memory_mib", gi.MemoryBytes>>20))
		}(name, i)
	}

	// Observability stack, mirroring cmd/serve: obs middleware outermost
	// (even 429s are counted and traced), admission just inside. The
	// worker's tracer records its half of every cross-process trace; the
	// router's /trace/{id} collects it via /trace/{id}?local=1.
	lim := admission.New(*inflight)
	tr := obs.NewTracer("shardserve", obs.TracerOptions{Logger: logger})
	httpm := obs.NewHTTPMetrics()
	prom := obs.NewRegistry()
	prom.Register(oracle.MetricsCollector(reg))
	prom.Register(httpm.Collect)
	prom.Register(obs.TracerCollector(tr))
	prom.Register(lim.Collect)
	prom.Register(auditor.Collect)
	prom.Register(slo.Collect)
	if *dbgAddr != "" {
		da, err := obs.ListenDebug(*dbgAddr)
		if err != nil {
			fatal("debug listener", err)
		}
		slog.Info("debug listening", slog.String("addr", da))
	}
	mux := http.NewServeMux()
	mux.Handle("/", oracle.NewRegistryHandler(reg))
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(struct {
			oracle.RegistryStats
			Admission admission.Stats `json:"admission"`
			Audit     audit.Stats     `json:"audit"`
		}{reg.Stats(), lim.Stats(), auditor.Stats()})
	})
	mux.Handle("/metrics", prom.Handler())
	mux.Handle("/trace/", obs.TraceHandler(tr, nil, nil))
	mux.Handle("/slo", slo.Handler())

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal("listen", err)
	}
	srv := &http.Server{Handler: obs.Middleware(tr, httpm, slo, admission.Middleware(mux, lim))}
	slog.Info("worker listening",
		slog.String("addr", ln.Addr().String()),
		slog.Int("shards", len(ids)), slog.Int("manifest_shards", man.K),
		slog.String("graph", man.Name),
		slog.Float64("eps", *eps), slog.Int("kappa", *kappa), slog.Bool("paths", *paths))
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := runServer(ctx, srv, ln, reg, *drain); err != nil {
		fatal("server", err)
	}
	slog.Info("shut down cleanly")
}

// runServer serves on ln until ctx is canceled, then drains gracefully —
// the same shutdown discipline as cmd/serve.
func runServer(ctx context.Context, srv *http.Server, ln net.Listener, reg *oracle.Registry, drain time.Duration) error {
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	slog.Info("signal received, draining", slog.Duration("bound", drain))
	sctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	err := srv.Shutdown(sctx)
	reg.Close()
	if errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("drain deadline exceeded after %v", drain)
	}
	return err
}

// shardIDs parses -shards ("0,2,5") against the manifest's K; empty means
// every shard.
func shardIDs(s string, k int) ([]int, error) {
	if s == "" {
		ids := make([]int, k)
		for i := range ids {
			ids[i] = i
		}
		return ids, nil
	}
	var ids []int
	seen := make(map[int]bool)
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		i, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("-shards: %w", err)
		}
		if i < 0 || i >= k {
			return nil, fmt.Errorf("-shards: shard %d not in [0,%d)", i, k)
		}
		if seen[i] {
			continue
		}
		seen[i] = true
		ids = append(ids, i)
	}
	if len(ids) == 0 {
		return nil, errors.New("-shards: no shard IDs")
	}
	return ids, nil
}
