package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/graphio"
	"repro/internal/partition"
	"repro/internal/testkit"
	"repro/oracle"
	"repro/shard"
)

// TestServeShardedGraphDir wires the sharded half of -graph-dir: a
// manifest written by graphconv -partition is registered as one graph,
// reports its shard count through /graphs/{name}, and answers
// /graphs/{name}/dist byte-identically to a shard.Open oracle over the
// same container set. A same-name .csrg decoy must be shadowed by the
// manifest.
func TestServeShardedGraphDir(t *testing.T) {
	dir := t.TempDir()
	g := testkit.Grid(196, 4)
	res := partition.Partition(g, 3)
	manPath, err := graphio.WriteShards(dir, "grid", res)
	if err != nil {
		t.Fatal(err)
	}
	// Decoy under the same logical name: the manifest must win.
	if err := graphio.EncodeFile(dir+"/grid.csrg", testkit.Path(30)); err != nil {
		t.Fatal(err)
	}

	reg := oracle.NewRegistry(oracle.RegistryConfig{})
	defer reg.Close()
	names, err := addGraphDir(reg, dir, 0.25, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The logical graph registers once, from the manifest; the per-shard
	// containers must not appear as standalone graphs.
	if len(names) != 1 || names[0] != "grid" {
		t.Fatalf("names = %v, want exactly [grid]", names)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := reg.WaitReady(ctx, "grid"); err != nil {
		t.Fatal(err)
	}

	want, err := shard.Open(context.Background(), manPath,
		shard.Config{EpsilonLocal: 0.25, PathReporting: true})
	if err != nil {
		t.Fatal(err)
	}
	wantDist, err := want.Dist(0)
	if err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(newMux(reg))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/graphs/grid/dist?source=0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("dist status %d", resp.StatusCode)
	}
	var out struct {
		Dist []*float64 `json:"dist"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Dist) != g.N {
		t.Fatalf("%d dists, want %d (manifest must shadow the decoy .csrg)", len(out.Dist), g.N)
	}
	for v, d := range out.Dist {
		if d == nil || *d != wantDist[v] {
			t.Fatalf("dist[%d] = %v, want %v", v, d, wantDist[v])
		}
	}

	gi, err := reg.Info("grid")
	if err != nil {
		t.Fatal(err)
	}
	if gi.Shards != 3 {
		t.Fatalf("Info.Shards = %d, want 3", gi.Shards)
	}

	// The many-to-many endpoint works on the sharded backend (K=3) and
	// every entry equals the corresponding per-pair answer.
	sources := []int32{0, 97, 195}
	targets := []int32{195, 0, 98}
	body, _ := json.Marshal(map[string]any{"sources": sources, "targets": targets})
	mresp, err := http.Post(srv.URL+"/graphs/grid/matrix", "application/json",
		bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("matrix status %d", mresp.StatusCode)
	}
	var mout struct {
		Matrix [][]*float64 `json:"matrix"`
	}
	if err := json.NewDecoder(mresp.Body).Decode(&mout); err != nil {
		t.Fatal(err)
	}
	if len(mout.Matrix) != len(sources) {
		t.Fatalf("matrix has %d rows, want %d", len(mout.Matrix), len(sources))
	}
	for i, s := range sources {
		for j, tv := range targets {
			wd, err := want.DistTo(s, tv)
			if err != nil {
				t.Fatal(err)
			}
			got := mout.Matrix[i][j]
			if got == nil || *got != wd {
				t.Fatalf("sharded matrix[%d][%d] (s=%d t=%d) = %v, want %v", i, j, s, tv, got, wd)
			}
		}
	}
}

// TestAdmissionLimiter drives the -max-inflight semaphore: with limit 1
// and one query parked inside the handler, a second query gets 429 +
// Retry-After immediately, while status routes pass untouched; after the
// first query finishes, capacity frees up again.
func TestAdmissionLimiter(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	inner := http.NewServeMux()
	inner.HandleFunc("/graphs/g/dist", func(w http.ResponseWriter, r *http.Request) {
		once.Do(func() {
			close(entered)
			<-release
		})
		w.Write([]byte("ok"))
	})
	inner.HandleFunc("/graphs", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("listing"))
	})
	srv := httptest.NewServer(withAdmission(inner, 1))
	defer srv.Close()

	firstDone := make(chan error, 1)
	go func() {
		resp, err := http.Get(srv.URL + "/graphs/g/dist?source=0")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				err = fmt.Errorf("status %s", resp.Status)
			}
		}
		firstDone <- err
	}()
	<-entered

	// Saturated: the next query is refused with 429 + Retry-After.
	resp, err := http.Get(srv.URL + "/graphs/g/dist?source=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated query: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	// Status routes are never limited.
	resp, err = http.Get(srv.URL + "/graphs")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("listing under saturation: %d", resp.StatusCode)
	}

	close(release)
	if err := <-firstDone; err != nil {
		t.Fatalf("parked query: %v", err)
	}
	// Capacity freed: queries flow again.
	resp, err = http.Get(srv.URL + "/graphs/g/dist?source=2")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after release: %d", resp.StatusCode)
	}
}

// TestIsQueryRoute pins the limiter's route classification, including the
// graph-named-"dist" corner: status routes are never limited.
func TestIsQueryRoute(t *testing.T) {
	for p, want := range map[string]bool{
		"/dist":                true,
		"/path":                true,
		"/graphs/ny/dist":      true,
		"/graphs/ny/path":      true,
		"/graphs/ny/matrix":    true,
		"/graphs":              false,
		"/graphs/dist":         false, // a graph literally named "dist"
		"/graphs/path":         false,
		"/graphs/matrix":       false, // a graph literally named "matrix"
		"/graphs/ny/stats":     false,
		"/graphs/ny/ready":     false,
		"/healthz":             false,
		"/graphs/ny/dist/deep": false,
	} {
		if got := isQueryRoute(p); got != want {
			t.Errorf("isQueryRoute(%q) = %v, want %v", p, got, want)
		}
	}
}

// TestRequestCostMatrix pins the admission pricing: a point query is 1
// unit, an S×T matrix is S·T units — and pricing must peek the body
// without consuming it (the handler still needs to decode it).
func TestRequestCostMatrix(t *testing.T) {
	if got := requestCost(httptest.NewRequest("GET", "/graphs/g/dist?source=0", nil)); got != 1 {
		t.Fatalf("dist cost = %d, want 1", got)
	}
	body := `{"sources":[1,2,3],"targets":[4,5,6,7]}`
	req := httptest.NewRequest("POST", "/graphs/g/matrix", bytes.NewBufferString(body))
	if got := requestCost(req); got != 12 {
		t.Fatalf("matrix cost = %d, want 12 (3×4)", got)
	}
	restored := new(bytes.Buffer)
	if _, err := restored.ReadFrom(req.Body); err != nil {
		t.Fatal(err)
	}
	if restored.String() != body {
		t.Fatalf("body not restored after pricing: %q", restored.String())
	}
	// Garbage bodies price at 1 — the handler rejects them with a 400.
	if got := requestCost(httptest.NewRequest("POST", "/graphs/g/matrix", bytes.NewBufferString("not json"))); got != 1 {
		t.Fatalf("garbage matrix cost = %d, want 1", got)
	}
	// Empty source/target lists never price at 0.
	if got := requestCost(httptest.NewRequest("POST", "/graphs/g/matrix", bytes.NewBufferString(`{"sources":[],"targets":[]}`))); got != 1 {
		t.Fatalf("empty matrix cost = %d, want 1", got)
	}
}
