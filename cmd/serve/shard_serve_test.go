package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/graphio"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/testkit"
	"repro/oracle"
	"repro/shard"
)

// TestServeShardedGraphDir wires the sharded half of -graph-dir: a
// manifest written by graphconv -partition is registered as one graph,
// reports its shard count through /graphs/{name}, and answers
// /graphs/{name}/dist byte-identically to a shard.Open oracle over the
// same container set. A same-name .csrg decoy must be shadowed by the
// manifest.
func TestServeShardedGraphDir(t *testing.T) {
	dir := t.TempDir()
	g := testkit.Grid(196, 4)
	res := partition.Partition(g, 3)
	manPath, err := graphio.WriteShards(dir, "grid", res)
	if err != nil {
		t.Fatal(err)
	}
	// Decoy under the same logical name: the manifest must win.
	if err := graphio.EncodeFile(dir+"/grid.csrg", testkit.Path(30)); err != nil {
		t.Fatal(err)
	}

	reg := oracle.NewRegistry(oracle.RegistryConfig{})
	defer reg.Close()
	names, err := addGraphDir(reg, dir, 0.25, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The logical graph registers once, from the manifest; the per-shard
	// containers must not appear as standalone graphs.
	if len(names) != 1 || names[0] != "grid" {
		t.Fatalf("names = %v, want exactly [grid]", names)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := reg.WaitReady(ctx, "grid"); err != nil {
		t.Fatal(err)
	}

	want, err := shard.Open(context.Background(), manPath,
		shard.Config{EpsilonLocal: 0.25, PathReporting: true})
	if err != nil {
		t.Fatal(err)
	}
	wantDist, err := want.Dist(0)
	if err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(newMux(reg, nil, obs.NewRegistry(), obs.NewTracer("serve", obs.TracerOptions{}), obs.NewSLO(obs.DefaultObjective(), nil), nil, nil))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/graphs/grid/dist?source=0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("dist status %d", resp.StatusCode)
	}
	var out struct {
		Dist []*float64 `json:"dist"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Dist) != g.N {
		t.Fatalf("%d dists, want %d (manifest must shadow the decoy .csrg)", len(out.Dist), g.N)
	}
	for v, d := range out.Dist {
		if d == nil || *d != wantDist[v] {
			t.Fatalf("dist[%d] = %v, want %v", v, d, wantDist[v])
		}
	}

	gi, err := reg.Info("grid")
	if err != nil {
		t.Fatal(err)
	}
	if gi.Shards != 3 {
		t.Fatalf("Info.Shards = %d, want 3", gi.Shards)
	}

	// The many-to-many endpoint works on the sharded backend (K=3) and
	// every entry equals the corresponding per-pair answer.
	sources := []int32{0, 97, 195}
	targets := []int32{195, 0, 98}
	body, _ := json.Marshal(map[string]any{"sources": sources, "targets": targets})
	mresp, err := http.Post(srv.URL+"/graphs/grid/matrix", "application/json",
		bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("matrix status %d", mresp.StatusCode)
	}
	var mout struct {
		Matrix [][]*float64 `json:"matrix"`
	}
	if err := json.NewDecoder(mresp.Body).Decode(&mout); err != nil {
		t.Fatal(err)
	}
	if len(mout.Matrix) != len(sources) {
		t.Fatalf("matrix has %d rows, want %d", len(mout.Matrix), len(sources))
	}
	for i, s := range sources {
		for j, tv := range targets {
			wd, err := want.DistTo(s, tv)
			if err != nil {
				t.Fatal(err)
			}
			got := mout.Matrix[i][j]
			if got == nil || *got != wd {
				t.Fatalf("sharded matrix[%d][%d] (s=%d t=%d) = %v, want %v", i, j, s, tv, got, wd)
			}
		}
	}
}
