package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/oracle"
)

// TestServeDistEndToEnd wires the same pipeline as main() — generate a
// graph, build the engine, mount the handler — and answers a /dist
// request over real HTTP.
func TestServeDistEndToEnd(t *testing.T) {
	g := graph.Gnm(256, 1024, graph.UniformWeights(1, 8), 1)
	eng, err := oracle.New(g, append(buildOpts(0.25, true), oracle.WithDistCache(64))...)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(oracle.NewHandler(eng))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/dist?source=0&target=255")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out struct {
		Source int32    `json:"source"`
		Target int32    `json:"target"`
		Dist   *float64 `json:"dist"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Source != 0 || out.Target != 255 {
		t.Errorf("echoed vertices %d→%d", out.Source, out.Target)
	}
	if out.Dist == nil || *out.Dist <= 0 {
		t.Errorf("dist = %v, want a positive finite distance", out.Dist)
	}
}

// TestServeSnapshotDirMultiGraph wires the -snapshot-dir path of main():
// two named snapshots load onto the registry in the background, each graph
// reports its own readiness, and the legacy /dist route redirects to the
// default graph's registry route.
func TestServeSnapshotDirMultiGraph(t *testing.T) {
	dir := t.TempDir()
	for _, c := range []struct {
		name string
		seed int64
	}{{"default", 4}, {"metro", 9}} {
		g := graph.Gnm(120, 480, graph.UniformWeights(1, 8), c.seed)
		eng, err := oracle.New(g, buildOpts(0.25, false)...)
		if err != nil {
			t.Fatal(err)
		}
		f, err := os.Create(filepath.Join(dir, c.name+".snap"))
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.SaveSnapshot(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}

	reg := oracle.NewRegistry(oracle.RegistryConfig{})
	defer reg.Close()
	names, err := addSnapshotDir(reg, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 {
		t.Fatalf("loaded %v", names)
	}
	for _, name := range names {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		if err := reg.WaitReady(ctx, name); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		cancel()
	}

	rh := oracle.NewRegistryHandler(reg)
	mux := http.NewServeMux()
	mux.Handle("/graphs", rh)
	mux.Handle("/graphs/", rh)
	mux.HandleFunc("/dist", redirectDefault)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	for _, name := range names {
		resp, err := http.Get(srv.URL + "/graphs/" + name + "/ready")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s readiness: %d", name, resp.StatusCode)
		}
	}

	// The legacy route follows the redirect onto the default graph.
	resp, err := http.Get(srv.URL + "/dist?source=0&target=119")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("legacy /dist: %d", resp.StatusCode)
	}
	var out struct {
		Graph string   `json:"graph"`
		Dist  *float64 `json:"dist"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Graph != "default" || out.Dist == nil || *out.Dist <= 0 {
		t.Fatalf("legacy payload: %+v", out)
	}
}

// TestServeSnapshotRestart exercises the -save-snapshot → -snapshot
// restart path: the revived engine answers identically over HTTP.
func TestServeSnapshotRestart(t *testing.T) {
	g := graph.Gnm(200, 800, graph.UniformWeights(1, 8), 2)
	eng, err := oracle.New(g, buildOpts(0.25, false)...)
	if err != nil {
		t.Fatal(err)
	}
	snap := filepath.Join(t.TempDir(), "oracle.snap")
	f, err := os.Create(snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.SaveSnapshot(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	rf, err := os.Open(snap)
	if err != nil {
		t.Fatal(err)
	}
	revived, err := oracle.LoadSnapshot(rf)
	rf.Close()
	if err != nil {
		t.Fatal(err)
	}
	want, err := eng.DistTo(0, 199)
	if err != nil {
		t.Fatal(err)
	}
	got, err := revived.DistTo(0, 199)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("revived DistTo = %v, want %v", got, want)
	}
}
