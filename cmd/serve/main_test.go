package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/graph"
	"repro/oracle"
)

// TestServeDistEndToEnd wires the same pipeline as main() — generate a
// graph, build the engine, mount the handler — and answers a /dist
// request over real HTTP.
func TestServeDistEndToEnd(t *testing.T) {
	g := graph.Gnm(256, 1024, graph.UniformWeights(1, 8), 1)
	eng, err := oracle.New(g, append(buildOpts(0.25, true), oracle.WithDistCache(64))...)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(oracle.NewHandler(eng))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/dist?source=0&target=255")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out struct {
		Source int32    `json:"source"`
		Target int32    `json:"target"`
		Dist   *float64 `json:"dist"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Source != 0 || out.Target != 255 {
		t.Errorf("echoed vertices %d→%d", out.Source, out.Target)
	}
	if out.Dist == nil || *out.Dist <= 0 {
		t.Errorf("dist = %v, want a positive finite distance", out.Dist)
	}
}

// TestServeSnapshotRestart exercises the -save-snapshot → -snapshot
// restart path: the revived engine answers identically over HTTP.
func TestServeSnapshotRestart(t *testing.T) {
	g := graph.Gnm(200, 800, graph.UniformWeights(1, 8), 2)
	eng, err := oracle.New(g, buildOpts(0.25, false)...)
	if err != nil {
		t.Fatal(err)
	}
	snap := filepath.Join(t.TempDir(), "oracle.snap")
	f, err := os.Create(snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.SaveSnapshot(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	rf, err := os.Open(snap)
	if err != nil {
		t.Fatal(err)
	}
	revived, err := oracle.LoadSnapshot(rf)
	rf.Close()
	if err != nil {
		t.Fatal(err)
	}
	want, err := eng.DistTo(0, 199)
	if err != nil {
		t.Fatal(err)
	}
	got, err := revived.DistTo(0, 199)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("revived DistTo = %v, want %v", got, want)
	}
}
