package main

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/graphio"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/oracle"
)

// TestServeGraphDirEndToEnd wires the -graph-dir path of main(): a
// directory holding one DIMACS .gr file and one .csrg container becomes
// two named graphs, each answering /graphs/{name}/dist with exactly the
// answers an engine built directly from the same graph gives, and
// /healthz reports the registry aggregate status.
func TestServeGraphDirEndToEnd(t *testing.T) {
	dir := t.TempDir()
	gRoad := graph.Grid(12, 12, graph.UniformWeights(1, 4), 3)
	gWeb := graph.Gnm(200, 700, graph.UniformWeights(1, 8), 5)
	if err := graphio.EncodeFile(filepath.Join(dir, "road.gr"), gRoad); err != nil {
		t.Fatal(err)
	}
	if err := graphio.EncodeFile(filepath.Join(dir, "web.csrg"), gWeb); err != nil {
		t.Fatal(err)
	}
	// A different graph under the same base name: the .csrg container must
	// shadow it (the convert-once workflow leaves both files around).
	gDecoy := graph.Path(50, graph.UnitWeights(), 1)
	if err := graphio.EncodeFile(filepath.Join(dir, "web.el"), gDecoy); err != nil {
		t.Fatal(err)
	}
	// Clutter that must be skipped.
	os.WriteFile(filepath.Join(dir, "README.md"), []byte("not a graph"), 0o644)

	reg := oracle.NewRegistry(oracle.RegistryConfig{})
	defer reg.Close()
	names, err := addGraphDir(reg, dir, 0.25, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "road" || names[1] != "web" {
		t.Fatalf("names = %v", names)
	}

	srv := httptest.NewServer(newMux(reg, nil, obs.NewRegistry(), obs.NewTracer("serve", obs.TracerOptions{}), obs.NewSLO(obs.DefaultObjective(), nil), nil, nil))
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	for _, name := range names {
		if err := reg.WaitReady(ctx, name); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}

	for _, c := range []struct {
		name string
		g    *graph.Graph
	}{{"road", gRoad}, {"web", gWeb}} {
		want, err := oracle.New(c.g, buildOpts(0.25, false)...)
		if err != nil {
			t.Fatal(err)
		}
		wantDist, err := want.Dist(0)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Get(srv.URL + "/graphs/" + c.name + "/dist?source=0")
		if err != nil {
			t.Fatal(err)
		}
		var out struct {
			Graph string     `json:"graph"`
			Dist  []*float64 `json:"dist"`
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", c.name, resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if out.Graph != c.name || len(out.Dist) != c.g.N {
			t.Fatalf("%s: graph %q, %d dists", c.name, out.Graph, len(out.Dist))
		}
		for v, d := range out.Dist {
			if d == nil || *d != wantDist[v] {
				t.Fatalf("%s: dist[%d] = %v, want %v (file-served answers must match direct build)",
					c.name, v, d, wantDist[v])
			}
		}
	}

	// /healthz: aggregate status, ok once graphs serve.
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	var hz struct {
		Status   string               `json:"status"`
		Registry oracle.RegistryStats `json:"registry"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	if hz.Status != "ok" || hz.Registry.Ready != 2 {
		t.Fatalf("healthz = %+v", hz)
	}
}

// TestHealthzStarting: /healthz holds 503/"starting" until a graph is
// ready, then flips to 200/"ok".
func TestHealthzStarting(t *testing.T) {
	reg := oracle.NewRegistry(oracle.RegistryConfig{})
	defer reg.Close()
	release := make(chan struct{})
	err := reg.Add("slow", func(ctx context.Context, opts ...oracle.Option) (oracle.Backend, error) {
		<-release
		return oracle.NewFromEdges(2, []oracle.Edge{{U: 0, V: 1, W: 1}}, opts...)
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(newMux(reg, nil, obs.NewRegistry(), obs.NewTracer("serve", obs.TracerOptions{}), obs.NewSLO(obs.DefaultObjective(), nil), nil, nil))
	defer srv.Close()

	get := func() (int, string) {
		resp, err := http.Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var hz struct {
			Status string `json:"status"`
		}
		json.NewDecoder(resp.Body).Decode(&hz)
		return resp.StatusCode, hz.Status
	}
	if code, status := get(); code != http.StatusServiceUnavailable || status != "starting" {
		t.Fatalf("before ready: %d %q", code, status)
	}
	close(release)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := reg.WaitReady(ctx, "slow"); err != nil {
		t.Fatal(err)
	}
	if code, status := get(); code != http.StatusOK || status != "ok" {
		t.Fatalf("after ready: %d %q", code, status)
	}
}

// TestRunServerGracefulShutdown: canceling the signal context stops the
// listener, drains the in-flight request to completion, and closes the
// registry.
func TestRunServerGracefulShutdown(t *testing.T) {
	reg := oracle.NewRegistry(oracle.RegistryConfig{})
	inFlight := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("/slow", func(w http.ResponseWriter, r *http.Request) {
		close(inFlight)
		time.Sleep(250 * time.Millisecond)
		w.Write([]byte("done"))
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	srvErr := make(chan error, 1)
	go func() {
		srvErr <- runServer(ctx, &http.Server{Handler: mux}, ln, reg, 5*time.Second)
	}()

	reqDone := make(chan int, 1)
	go func() {
		resp, err := http.Get("http://" + ln.Addr().String() + "/slow")
		if err != nil {
			reqDone <- -1
			return
		}
		resp.Body.Close()
		reqDone <- resp.StatusCode
	}()
	<-inFlight
	cancel() // the "signal"

	select {
	case code := <-reqDone:
		if code != http.StatusOK {
			t.Fatalf("in-flight request got %d, want 200 (it must drain, not be cut)", code)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight request never finished")
	}
	select {
	case err := <-srvErr:
		if err != nil {
			t.Fatalf("runServer: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("runServer never returned")
	}
	if _, err := http.Get("http://" + ln.Addr().String() + "/healthz"); err == nil {
		t.Fatal("listener still accepting after shutdown")
	}
}

func TestGraphName(t *testing.T) {
	cases := map[string]string{
		"road.gr":          "road",
		"web.csrg":         "web",
		"snap.el.gz":       "snap",
		"USA-road-d.NY.gr": "USA-road-d.NY",
	}
	for in, want := range cases {
		if got := graphName(in); got != want {
			t.Errorf("graphName(%q) = %q, want %q", in, got, want)
		}
	}
}
