// Command serve runs the distance-oracle engine as an HTTP/JSON service —
// the build-once / query-many deployment the hopset construction is made
// for: one deterministic build, then concurrent approximate-distance and
// path queries over GET /dist, /path, /stats and /healthz.
//
//	serve -n 4096 -m 16384 -eps 0.25 -addr :8080
//	serve -in graph.txt -paths -batch 2ms
//	serve -snapshot oracle.snap            # skip the build entirely
//
// With -save-snapshot the freshly built engine is persisted first, so the
// next start can use -snapshot and come up without rebuilding.
package main

import (
	"flag"
	"log"
	"net/http"
	"os"
	"time"

	"repro/internal/graph"
	"repro/oracle"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("serve: ")
	var (
		addr  = flag.String("addr", ":8080", "listen address")
		in    = flag.String("in", "", "input graph file (empty: generate gnm)")
		n     = flag.Int("n", 4096, "vertices (generated)")
		m     = flag.Int("m", 16384, "edges (generated)")
		seed  = flag.Int64("seed", 1, "generator seed")
		eps   = flag.Float64("eps", 0.25, "stretch target ε")
		paths = flag.Bool("paths", true, "record memory paths (enables /path)")
		cache = flag.Int("cache", 256, "distance-vector LRU capacity")
		batch = flag.Duration("batch", 0, "dist-query coalescing window (0 = off)")
		snap  = flag.String("snapshot", "", "load a SaveSnapshot file instead of building")
		save  = flag.String("save-snapshot", "", "persist the built engine to this file")
	)
	flag.Parse()

	serveOpts := []oracle.Option{
		oracle.WithDistCache(*cache),
		oracle.WithBatchWindow(*batch),
	}

	var eng *oracle.Engine
	start := time.Now()
	switch {
	case *snap != "":
		f, err := os.Open(*snap)
		if err != nil {
			log.Fatal(err)
		}
		eng, err = oracle.LoadSnapshot(f, serveOpts...)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("loaded snapshot %s in %v", *snap, time.Since(start).Round(time.Millisecond))
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		opts := append(buildOpts(*eps, *paths), serveOpts...)
		eng, err = oracle.LoadGraph(f, opts...)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	default:
		g := graph.Gnm(*n, *m, graph.UniformWeights(1, 8), *seed)
		var err error
		eng, err = oracle.New(g, append(buildOpts(*eps, *paths), serveOpts...)...)
		if err != nil {
			log.Fatal(err)
		}
	}
	h := eng.Hopset()
	log.Printf("engine ready in %v: n=%d m=%d hopset=%d edges, query budget %d rounds",
		time.Since(start).Round(time.Millisecond), h.G.N, h.G.M(), h.Size(), eng.HopBudget())

	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			log.Fatal(err)
		}
		if err := eng.SaveSnapshot(f); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		log.Printf("snapshot written to %s", *save)
	}

	log.Printf("listening on %s (GET /dist /path /stats /healthz)", *addr)
	log.Fatal(http.ListenAndServe(*addr, oracle.NewHandler(eng)))
}

func buildOpts(eps float64, paths bool) []oracle.Option {
	opts := []oracle.Option{oracle.WithEpsilon(eps)}
	if paths {
		opts = append(opts, oracle.WithPathReporting())
	}
	return opts
}
