// Command serve runs the multi-graph distance-oracle registry as an
// HTTP/JSON service — the build-once / query-many deployment the hopset
// construction is made for, scaled to many resident graphs: engines build
// in the background off the request path, each graph exposes its own
// readiness, and POST /graphs/{name}/reload hot-swaps a rebuilt or
// re-snapshotted engine with zero downtime (in-flight queries drain on the
// old version's refcount).
//
//	serve -n 4096 -m 16384 -eps 0.25 -addr :8080     # one generated graph, "default"
//	serve -in USA-road-d.NY.gr -paths                # one graph from any graphio format
//	serve -snapshot oracle.snap                      # revive "default" from a snapshot
//	serve -snapshot-dir snapshots/                   # every snapshots/<name>.snap, by name
//	serve -graph-dir datasets/                       # every raw graph file, built in background
//	serve -route-manifest data/ny.shards.json \
//	      -shard-peers http://w1:8081,http://w2:8081 # route shards to worker processes
//
// -graph-dir registers every supported dataset file (DIMACS .gr, edge
// lists, METIS, legacy text, .csrg — each optionally .gz) under its base
// name; engines build in the background and the file is re-read on every
// POST /graphs/{name}/reload.
//
// -route-manifest serves one sharded graph whose per-shard engines live
// in cmd/shardserve worker processes: queries scatter-gather over the
// placement (-placement file, or -shard-peers replicating every shard on
// every peer) with health-probe failover and hedged requests (-hedge
// fixes the delay; default derives it from each endpoint's p99). The
// engine flags (-eps, -kappa via worker, -paths) must match the workers'
// — that flag parity is the bit-identity contract. Reload re-reads both
// manifest and placement.
//
// Routes (see oracle.NewRegistryHandler):
//
//	GET  /graphs                    all graphs + aggregate stats
//	GET  /graphs/{name}/ready       per-graph readiness (200/503)
//	GET  /graphs/{name}/dist?source=S[&target=T]
//	GET  /graphs/{name}/path?from=U&to=V
//	POST /graphs/{name}/matrix      many-to-many S×T distance matrix
//	POST /graphs/{name}/multi       one dist row per source
//	POST /graphs/{name}/nearest     per-vertex distance to nearest source
//	GET  /graphs/{name}/tree?source=S
//	GET  /graphs/{name}/stats
//	POST /graphs/{name}/reload      rebuild + hot swap
//	GET  /healthz                   registry aggregate status (503 until a graph serves)
//
// The legacy single-graph routes /dist and /path redirect to the
// "default" graph. With -save-snapshot the built default engine is
// persisted once ready, so the next start can come up via -snapshot (or
// -snapshot-dir) without rebuilding.
//
// SIGINT/SIGTERM shut down gracefully: the listener stops accepting,
// in-flight HTTP requests drain (bounded by -drain), and the registry
// closes — canceling background builds and retiring engines.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/graphio"
	"repro/internal/admission"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/oracle"
	"repro/oracle/audit"
	"repro/shard"
)

// fatal logs a structured error event and exits — the slog replacement
// for log.Fatal at startup.
func fatal(msg string, err error) {
	if err != nil {
		slog.Error(msg, slog.String("error", err.Error()))
	} else {
		slog.Error(msg)
	}
	os.Exit(1)
}

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		in       = flag.String("in", "", "input graph file, any supported format (empty: generate gnm)")
		n        = flag.Int("n", 4096, "vertices (generated)")
		m        = flag.Int("m", 16384, "edges (generated)")
		seed     = flag.Int64("seed", 1, "generator seed")
		eps      = flag.Float64("eps", 0.25, "stretch target ε")
		paths    = flag.Bool("paths", true, "record memory paths (enables /path)")
		cache    = flag.Int("cache", 256, "distance-vector LRU capacity")
		batch    = flag.Duration("batch", 0, "dist-query coalescing window (0 = off)")
		snap     = flag.String("snapshot", "", "snapshot file for the \"default\" graph")
		snapDir  = flag.String("snapshot-dir", "", "serve every <name>.snap in this directory by name")
		graphDir = flag.String("graph-dir", "", "serve every supported raw graph file in this directory by name")
		save     = flag.String("save-snapshot", "", "persist the built default engine to this file once ready")
		workers  = flag.Int("build-workers", 0, "bound on concurrent background builds (0 = auto)")
		budget   = flag.Int64("mem-budget", 0, "memory budget in bytes for resident engines (0 = unlimited)")
		drain    = flag.Duration("drain", 15*time.Second, "graceful-shutdown drain bound for in-flight requests")
		inflight = flag.Int("max-inflight", 0, "admission limit on in-flight query cost units (a /matrix costs sources×targets); excess gets 429 + Retry-After (0 = unlimited)")
		hotCache = flag.Int("hot-cache", 4096, "registry hot-pair result cache capacity in rows; /dist serves stale rows across hot reloads while the new engine warms (0 = off)")
		shardTgt = flag.Int64("shard-target-bytes", 0, "serve graphs sharded, with the shard count derived from this per-shard engine memory target (0 = monolithic)")
		routeMan = flag.String("route-manifest", "", "shard manifest (<name>.shards.json) to serve as a distributed scatter-gather router: per-shard engines live in shardserve workers named by -placement or -shard-peers; no shard payloads load locally")
		peers    = flag.String("shard-peers", "", "comma-separated shardserve worker base URLs for -route-manifest; every shard is placed on every peer (replicas)")
		placeFl  = flag.String("placement", "", "JSON placement file mapping each shard of -route-manifest to its replica endpoints (overrides -shard-peers)")
		hedge    = flag.Duration("hedge", 0, "fixed hedge delay before a routed query is retried on a second replica (0 = adaptive, per-endpoint p99)")
		dbgAddr  = flag.String("debug-addr", "", "separate listen address for /debug/pprof and /debug/vars (empty = off)")
		logLevel = flag.String("log-level", "info", "log verbosity: debug, info, warn, error")
		logFmt   = flag.String("log-format", "json", "log output format: json (structured events) or text")
		auditFr  = flag.Float64("audit-sample", 0.01, "fraction of served answers shadow-audited against exact Dijkstra in the background (0 = off, 1 = every answer)")
		auditWk  = flag.Int("audit-workers", 2, "background audit worker pool size")
		sloLat   = flag.Duration("slo-latency", 250*time.Millisecond, "SLO latency target: queries slower than this consume the latency error budget")
	)
	flag.Parse()

	logger, err := obs.SetupLogger("serve", *logLevel, *logFmt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(2)
	}

	// Correctness observability: the SLO burn-rate engine watches every
	// query-route response (via the obs middleware) and every shadow-audit
	// verdict; the auditor samples served answers and recomputes them
	// exactly on the engine version that produced them.
	obj := obs.DefaultObjective()
	obj.LatencyTarget = *sloLat
	slo := obs.NewSLO(obj, logger)
	auditor := audit.New(audit.Config{
		SampleRate: *auditFr,
		Workers:    *auditWk,
		Logger:     logger,
		OnResult:   func(res audit.Result) { slo.ObserveAudit(res.Graph, res.Violation != "") },
	})
	defer auditor.Close()

	reg := oracle.NewRegistry(oracle.RegistryConfig{
		BuildWorkers: *workers,
		MemoryBudget: *budget,
		HotPairCache: *hotCache,
		Audit:        auditor,
		EngineOptions: []oracle.Option{
			oracle.WithDistCache(*cache),
			oracle.WithBatchWindow(*batch),
		},
	})
	defer reg.Close()

	var names []string
	add := func(name string, src oracle.EngineSource) {
		if err := reg.Add(name, src); err != nil {
			fatal("registering graph", err)
		}
		names = append(names, name)
	}

	if *snapDir != "" {
		loaded, err := addSnapshotDir(reg, *snapDir)
		if err != nil {
			fatal("loading snapshot directory", err)
		}
		names = append(names, loaded...)
	}
	if *graphDir != "" {
		loaded, err := addGraphDir(reg, *graphDir, *eps, *paths, *shardTgt)
		if err != nil {
			fatal("loading graph directory", err)
		}
		names = append(names, loaded...)
	}
	var tracePeers []string
	if *routeMan != "" {
		peerList := splitPeers(*peers)
		if *placeFl == "" && len(peerList) == 0 {
			fatal("-route-manifest needs -placement or -shard-peers", nil)
		}
		tracePeers = workerEndpoints(*placeFl, peerList)
		man, err := graphio.LoadShardManifest(*routeMan)
		if err != nil {
			fatal("loading shard manifest", err)
		}
		rcfg := shard.RouterConfig{
			Config:     shardConfig(*eps, *paths, 0),
			HedgeDelay: *hedge,
		}
		add(man.Name, shard.RouterSource(*routeMan, *placeFl, peerList, rcfg))
		slog.Info("routing sharded graph",
			slog.String("graph", man.Name),
			slog.Int("shards", man.K),
			slog.String("placement", routeDesc(*placeFl, peerList)))
	}

	// defaultSource picks the backend shape for an in-memory graph: one
	// monolithic engine, or — under -shard-target-bytes — a sharded
	// oracle whose K is derived from the target.
	defaultSource := func(g *graph.Graph) oracle.EngineSource {
		if *shardTgt > 0 {
			return shard.Source(g, shardConfig(*eps, *paths, *shardTgt))
		}
		return oracle.GraphSource(g, buildOpts(*eps, *paths)...)
	}

	switch {
	case *snap != "":
		add("default", oracle.SnapshotSource(*snap))
	case *in != "":
		// Eager load: a missing or malformed -in file aborts startup
		// (fail-fast), while the hopset build still runs in the background.
		g, format, err := graphio.LoadFile(*in)
		if err != nil {
			fatal("loading input graph", err)
		}
		slog.Info("graph loaded",
			slog.String("file", *in), slog.String("format", format.String()),
			slog.Int("n", g.N), slog.Int("m", g.M()))
		add("default", defaultSource(g))
	case *snapDir == "" && *graphDir == "" && *routeMan == "":
		g := graph.Gnm(*n, *m, graph.UniformWeights(1, 8), *seed)
		add("default", defaultSource(g))
	}

	// Builds run off the request path: serve immediately, log readiness as
	// each graph lands, and persist the default engine once it is up.
	for _, name := range names {
		go func(name string) {
			start := time.Now()
			if err := reg.WaitReady(context.Background(), name); err != nil {
				slog.Error("graph build failed",
					slog.String("graph", name), slog.String("error", err.Error()))
				return
			}
			gi, err := reg.Info(name)
			if err != nil {
				return
			}
			slog.Info("graph ready",
				slog.String("graph", name),
				slog.Duration("build", time.Since(start).Round(time.Millisecond)),
				slog.Int("n", gi.N),
				slog.Int("hopset_edges", gi.HopsetEdges),
				slog.Int64("memory_mib", gi.MemoryBytes>>20))
			if name == "default" && *save != "" {
				if err := saveSnapshot(reg, *save); err != nil {
					slog.Error("save-snapshot failed", slog.String("error", err.Error()))
				} else {
					slog.Info("snapshot written", slog.String("file", *save))
				}
			}
		}(name)
	}

	// Observability stack: tracer + Prometheus registry + HTTP metrics.
	// The obs middleware is outermost so even 429-refused requests are
	// counted and traced; the admission gate sits just inside it.
	lim := admission.New(*inflight)
	tr := obs.NewTracer("serve", obs.TracerOptions{Logger: logger})
	httpm := obs.NewHTTPMetrics()
	prom := obs.NewRegistry()
	prom.Register(oracle.MetricsCollector(reg))
	prom.Register(httpm.Collect)
	prom.Register(obs.TracerCollector(tr))
	prom.Register(lim.Collect)
	prom.Register(auditor.Collect)
	prom.Register(slo.Collect)
	if *dbgAddr != "" {
		da, err := obs.ListenDebug(*dbgAddr)
		if err != nil {
			fatal("debug listener", err)
		}
		slog.Info("debug listening", slog.String("addr", da))
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal("listen", err)
	}
	srv := &http.Server{Handler: obs.Middleware(tr, httpm, slo, admission.Middleware(newMux(reg, lim, prom, tr, slo, auditor, tracePeers), lim))}
	slog.Info("listening",
		slog.String("addr", ln.Addr().String()),
		slog.Int("graphs", len(names)),
		slog.Float64("audit_sample", *auditFr))
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := runServer(ctx, srv, ln, reg, *drain); err != nil {
		fatal("server", err)
	}
	slog.Info("shut down cleanly")
}

// newMux mounts the registry handler, the observability endpoints
// (/metrics, /slo, /trace/{id}), and the legacy single-graph routes.
func newMux(reg *oracle.Registry, lim *admission.Limiter, prom *obs.Registry, tr *obs.Tracer, slo *obs.SLO, auditor *audit.Auditor, tracePeers []string) http.Handler {
	rh := oracle.NewRegistryHandler(reg)
	mux := http.NewServeMux()
	mux.Handle("/graphs", rh)
	mux.Handle("/graphs/", rh)
	mux.Handle("/healthz", rh)
	mux.Handle("/stats", rh)
	// GET /stats is overridden with the merged registry + admission view;
	// other methods still fall through to the registry handler.
	mux.HandleFunc("GET /stats", statsHandler(reg, lim, auditor))
	mux.Handle("/metrics", prom.Handler())
	mux.Handle("/slo", slo.Handler())
	// When routing shards to worker processes, /trace/{id} fans out to
	// every worker and merges their spans into one cross-process tree.
	var peersFn func() []string
	if len(tracePeers) > 0 {
		peersFn = func() []string { return tracePeers }
	}
	mux.Handle("/trace/", obs.TraceHandler(tr, nil, peersFn))
	// Legacy single-graph routes target the default graph.
	mux.HandleFunc("/dist", redirectDefault)
	mux.HandleFunc("/path", redirectDefault)
	return mux
}

// statsResponse merges the registry's aggregate stats with the admission
// limiter's and the shadow auditor's — the JSON twin of what /metrics
// exports, so the two surfaces read from the same snapshots and cannot
// drift.
type statsResponse struct {
	oracle.RegistryStats
	Admission admission.Stats `json:"admission"`
	Audit     *audit.Stats    `json:"audit,omitempty"`
}

// statsHandler serves the merged GET /stats.
func statsHandler(reg *oracle.Registry, lim *admission.Limiter, auditor *audit.Auditor) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		resp := statsResponse{RegistryStats: reg.Stats(), Admission: lim.Stats()}
		if auditor != nil {
			st := auditor.Stats()
			resp.Audit = &st
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(resp)
	}
}

// workerEndpoints lists the distinct worker base URLs /trace/{id} fans
// out to when assembling a cross-process trace: every replica endpoint
// of the placement, or the -shard-peers list.
func workerEndpoints(placement string, peers []string) []string {
	if placement == "" {
		return peers
	}
	pl, err := shard.LoadPlacement(placement)
	if err != nil {
		// NewRouter will surface the same error as a build failure; the
		// trace endpoint just has no peers to ask until then.
		return nil
	}
	seen := make(map[string]bool)
	var out []string
	for _, sp := range pl.Shards {
		for _, rep := range sp.Replicas {
			if !seen[rep] {
				seen[rep] = true
				out = append(out, rep)
			}
		}
	}
	return out
}

// runServer serves on ln until ctx is canceled (SIGINT/SIGTERM in main),
// then shuts down gracefully: stop accepting, drain in-flight requests
// for up to drain, close the registry (cancels builds, retires engines
// once in-flight queries release their handles).
func runServer(ctx context.Context, srv *http.Server, ln net.Listener, reg *oracle.Registry, drain time.Duration) error {
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err // listener died before any signal
	case <-ctx.Done():
	}
	slog.Info("signal received, draining", slog.Duration("bound", drain))
	sctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	err := srv.Shutdown(sctx)
	reg.Close()
	if errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("drain deadline exceeded after %v", drain)
	}
	return err
}

// addSnapshotDir registers every <name>.snap in dir on the registry under
// its file name and returns the names. Builds (snapshot loads) run in the
// background; callers follow readiness per graph.
func addSnapshotDir(reg *oracle.Registry, dir string) ([]string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "*.snap"))
	if err != nil {
		return nil, err
	}
	if len(matches) == 0 {
		return nil, fmt.Errorf("no *.snap files in %s", dir)
	}
	var names []string
	for _, path := range matches {
		name := strings.TrimSuffix(filepath.Base(path), ".snap")
		if err := reg.Add(name, oracle.SnapshotSource(path)); err != nil {
			return nil, err
		}
		names = append(names, name)
	}
	return names, nil
}

// addGraphDir registers every supported dataset in dir under its base
// name (extensions stripped, including .gz): raw graph files in any
// graphio format, plus `<name>.shards.json` sharded container sets
// written by graphconv -partition. Raw graphs build through
// oracle.FileSource (or shard.FileSource when shardTarget > 0, which
// partitions them in memory); manifests always open sharded. Collision
// precedence for one name: sharded manifest > .csrg container > first
// file lexicographically, each shadow logged. Registration runs in
// sorted name order, so build scheduling, logs, and the /graphs listing
// are deterministic across runs (map iteration order used to leak here).
func addGraphDir(reg *oracle.Registry, dir string, eps float64, paths bool, shardTarget int64) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, ent := range entries {
		if ent.IsDir() {
			continue
		}
		// Shard containers (<name>.shard<i>.csrg) belong to their
		// manifest; registering them individually would duplicate every
		// shard as a standalone graph.
		if shardContainerRE.MatchString(ent.Name()) {
			continue
		}
		if graphio.SupportedPath(ent.Name()) || graphio.IsShardManifestPath(ent.Name()) {
			files = append(files, ent.Name())
		}
	}
	sort.Strings(files)
	chosen := map[string]string{} // name → file
	for _, file := range files {
		name := graphName(file)
		prev, dup := chosen[name]
		switch {
		case !dup:
			chosen[name] = file
		case graphio.IsShardManifestPath(file) && !graphio.IsShardManifestPath(prev):
			slog.Info("graph-dir shadowing", slog.String("chosen", file), slog.String("shadowed", prev), slog.String("reason", "sharded manifest preferred"))
			chosen[name] = file
		case graphio.IsShardManifestPath(prev):
			slog.Info("graph-dir skipping file", slog.String("file", file), slog.String("name", name), slog.String("taken_by", prev))
		case graphio.FormatForPath(file) == graphio.FormatCSRG &&
			graphio.FormatForPath(prev) != graphio.FormatCSRG:
			slog.Info("graph-dir shadowing", slog.String("chosen", file), slog.String("shadowed", prev), slog.String("reason", "container preferred"))
			chosen[name] = file
		default:
			slog.Info("graph-dir skipping file", slog.String("file", file), slog.String("name", name), slog.String("taken_by", prev))
		}
	}
	names := make([]string, 0, len(chosen))
	for name := range chosen {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		file := chosen[name]
		path := filepath.Join(dir, file)
		var src oracle.EngineSource
		switch {
		case graphio.IsShardManifestPath(file), shardTarget > 0:
			src = shard.FileSource(path, shardConfig(eps, paths, shardTarget))
		default:
			src = oracle.FileSource(path, buildOpts(eps, paths)...)
		}
		if err := reg.Add(name, src); err != nil {
			return nil, fmt.Errorf("register %s: %w", file, err)
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no supported graph files in %s", dir)
	}
	return names, nil
}

// shardContainerRE matches per-shard container files written by
// graphio.WriteShards.
var shardContainerRE = regexp.MustCompile(`\.shard\d+\.csrg$`)

// graphName strips the format extensions off a dataset file name
// (including the sharded-manifest suffix).
func graphName(base string) string {
	if graphio.IsShardManifestPath(base) {
		return graphio.ShardManifestName(base)
	}
	base = strings.TrimSuffix(base, ".gz")
	return strings.TrimSuffix(base, filepath.Ext(base))
}

// splitPeers parses the comma-separated -shard-peers list.
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// routeDesc renders the placement choice for the startup log line.
func routeDesc(placement string, peers []string) string {
	if placement != "" {
		return placement
	}
	return fmt.Sprintf("%d peers, every shard on every peer", len(peers))
}

// shardConfig maps the serve flags onto a shard build configuration.
func shardConfig(eps float64, paths bool, targetBytes int64) shard.Config {
	return shard.Config{
		TargetBytes:   targetBytes,
		EpsilonLocal:  eps,
		PathReporting: paths,
	}
}

// redirectDefault maps the legacy /dist and /path routes onto the default
// graph's registry routes, preserving the query string.
func redirectDefault(w http.ResponseWriter, r *http.Request) {
	target := "/graphs/default" + r.URL.Path
	if r.URL.RawQuery != "" {
		target += "?" + r.URL.RawQuery
	}
	http.Redirect(w, r, target, http.StatusTemporaryRedirect)
}

// saveSnapshot persists the current default engine through a refcounted
// handle, so a concurrent reload cannot swap it mid-write.
func saveSnapshot(reg *oracle.Registry, path string) error {
	h, err := reg.Acquire("default")
	if err != nil {
		return err
	}
	defer h.Release()
	eng, ok := h.Engine().(*oracle.Engine)
	if !ok {
		return errors.New("default graph is not a snapshottable monolithic engine")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := eng.SaveSnapshot(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func buildOpts(eps float64, paths bool) []oracle.Option {
	opts := []oracle.Option{oracle.WithEpsilon(eps)}
	if paths {
		opts = append(opts, oracle.WithPathReporting())
	}
	return opts
}
