// Command verify validates a hopset artifact against its graph: structural
// checks, the no-shortcut invariant (Lemmas 2.3/2.9), size ledgers
// (eqs. 9/10/24), and the (1+ε) stretch guarantee (Theorem 3.8) — all
// against independently computed ground truth. It accepts a graph+hopset
// pair, an oracle engine snapshot, or — with no input files — builds a
// fresh engine and verifies its hopset (a self-test).
//
//	verify -graph road.gr -hopset h.txt -eps 0.25   # graph in any graphio format
//	verify -snapshot oracle.snap -eps 0.25
//	verify -n 1024 -m 4096 -eps 0.25
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/graphio"
	"repro/internal/graph"
	"repro/internal/hopset"
	"repro/internal/verify"
	"repro/oracle"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("verify: ")
	var (
		graphFile  = flag.String("graph", "", "graph file (any supported format)")
		hopsetFile = flag.String("hopset", "", "hopset file (text format)")
		snapFile   = flag.String("snapshot", "", "oracle engine snapshot (from cmd/serve or cmd/hopset)")
		n          = flag.Int("n", 512, "vertices for the self-test graph")
		m          = flag.Int("m", 2048, "edges for the self-test graph")
		seed       = flag.Int64("seed", 1, "self-test seed")
		eps        = flag.Float64("eps", 0.25, "stretch target ε to verify")
	)
	flag.Parse()

	var h *hopset.Hopset
	switch {
	case *snapFile != "":
		f, err := os.Open(*snapFile)
		if err != nil {
			log.Fatal(err)
		}
		eng, err := oracle.LoadSnapshot(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		h = eng.Hopset()
		fmt.Printf("loaded snapshot: graph n=%d m=%d, hopset %d edges\n", h.G.N, h.G.M(), h.Size())
	case *graphFile != "" && *hopsetFile != "":
		g, _, err := graphio.LoadFile(*graphFile)
		if err != nil {
			log.Fatal(err)
		}
		ng, _ := g.Normalized()
		hf, err := os.Open(*hopsetFile)
		if err != nil {
			log.Fatal(err)
		}
		h, err = hopset.Decode(hf, ng)
		hf.Close()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("loaded: graph n=%d m=%d, hopset %d edges\n", g.N, g.M(), h.Size())
	case *graphFile == "" && *hopsetFile == "":
		g := graph.Gnm(*n, *m, graph.UniformWeights(1, 8), *seed)
		eng, err := oracle.New(g, oracle.WithEpsilon(*eps))
		if err != nil {
			log.Fatal(err)
		}
		h = eng.Hopset()
		fmt.Printf("self-test: built hopset with %d edges for n=%d m=%d\n", h.Size(), g.N, g.M())
	default:
		log.Fatal("provide both -graph and -hopset, or neither (or -snapshot)")
	}

	rep, err := verify.All(h, *eps)
	if err != nil {
		fmt.Printf("FAIL: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("ok: %d facts checked, worst stretch %.6f ≤ %.6f\n", rep.Checked, rep.Worst, 1+*eps)
}
