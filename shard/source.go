package shard

import (
	"context"
	"fmt"
	"path/filepath"

	"repro/graphio"
	"repro/internal/graph"
	"repro/oracle"
)

// Open assembles a sharded oracle from a `<name>.shards.json` manifest
// written by graphio.WriteShards (cmd/graphconv -partition): each shard
// container is opened zero-copy where the platform allows, one engine is
// built per shard, and the boundary overlay is reconstructed from the
// manifest's cut edges — the whole graph is never materialized in one
// place. cfg.K and cfg.TargetBytes are ignored; the manifest fixes the
// partition.
func Open(ctx context.Context, manifestPath string, cfg Config, opts ...oracle.Option) (*Oracle, error) {
	man, err := graphio.LoadShardManifest(manifestPath)
	if err != nil {
		return nil, err
	}
	dir := filepath.Dir(manifestPath)
	pieces := make([]piece, man.K)
	for i := range man.Shards {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sg, err := man.LoadShard(dir, i)
		if err != nil {
			return nil, err
		}
		pieces[i] = piece{g: sg.G, vertices: sg.Vertices}
	}
	part := man.Part()
	localID := make([]int32, man.N)
	for _, p := range pieces {
		for l, gv := range p.vertices {
			localID[gv] = int32(l)
		}
	}
	cut := make([]graph.Edge, len(man.CutEdges))
	for i, e := range man.CutEdges {
		cut[i] = graph.Edge{U: e.U, V: e.V, W: e.W}
	}
	return assemble(ctx, cfg, man.N, part, localID, pieces, cut, opts...)
}

// Source is the registry integration for a retained graph: every build
// (initial or reload) re-partitions g and rebuilds the sharded oracle.
// One registry build-pool slot covers the whole sharded build; shard
// engines parallelize inside it per cfg.BuildParallel.
func Source(g *graph.Graph, cfg Config) oracle.EngineSource {
	return func(ctx context.Context, opts ...oracle.Option) (oracle.Backend, error) {
		return Build(ctx, g, cfg, opts...)
	}
}

// FileSource is the registry integration for on-disk datasets, the
// sharded counterpart of oracle.FileSource: the path is re-read on every
// reload. A `*.shards.json` manifest opens the prebuilt sharded container
// set; any other supported graphio format is loaded whole and partitioned
// in memory per cfg (K, or TargetBytes).
func FileSource(path string, cfg Config) oracle.EngineSource {
	return func(ctx context.Context, opts ...oracle.Option) (oracle.Backend, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if graphio.IsShardManifestPath(path) {
			return Open(ctx, path, cfg, opts...)
		}
		g, _, err := graphio.LoadFile(path)
		if err != nil {
			return nil, fmt.Errorf("shard: %w", err)
		}
		return Build(ctx, g, cfg, opts...)
	}
}
