package shard

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/oracle"
)

// Path returns a concrete u–v path in the original graph together with
// its exact length, stitched across shard seams: a source-shard tree
// path to the best boundary exit, the overlay path between boundary
// vertices (cut edges emitted verbatim, intra-shard overlay hops expanded
// through that shard's tree), and a destination-shard tree path. A nil
// path with +Inf length means v is unreachable. Requires a
// Config.PathReporting build.
//
// The boundary pair is chosen as the deterministic lexicographic argmin
// of (routed value, exit vertex, entry vertex) over the distance proxies,
// and the same-shard local path wins ties against routing out and back.
func (o *Oracle) Path(u, v int32) ([]int32, float64, error) {
	return o.PathContext(context.Background(), u, v)
}

// PathContext is Path with a request context: cancellation and the
// active trace span flow into remote legs (it implements
// oracle.ContextBackend together with DistContext).
func (o *Oracle) PathContext(ctx context.Context, u, v int32) ([]int32, float64, error) {
	start := time.Now()
	p, length, err := o.path(ctx, u, v)
	o.latPath.Observe(time.Since(start))
	return p, length, err
}

func (o *Oracle) path(ctx context.Context, u, v int32) ([]int32, float64, error) {
	if err := o.checkVertex(u); err != nil {
		return nil, 0, err
	}
	if err := o.checkVertex(v); err != nil {
		return nil, 0, err
	}
	if !o.pathReporting {
		return nil, 0, oracle.ErrNeedPathReporting
	}
	o.pathQueries.Add(1)

	su, sv := o.part[u], o.part[v]
	lu, lv := o.localID[u], o.localID[v]

	localLen := math.Inf(1)
	if su == sv {
		path, length, err := o.shards[su].eng.Path(ctx, lu, lv)
		if err != nil {
			return nil, 0, err
		}
		if path != nil {
			localLen = length
			// Routing out of the shard and back only wins when the
			// overlay proxy is strictly better; ties keep the local path.
			best, b1, b2, err := o.bestCrossing(ctx, u, v)
			if err != nil {
				return nil, 0, err
			}
			if !(best < localLen) {
				o.localOnly.Add(1)
				return o.globalize(su, path), length, nil
			}
			return o.stitch(ctx, u, v, b1, b2)
		}
	}
	best, b1, b2, err := o.bestCrossing(ctx, u, v)
	if err != nil {
		return nil, 0, err
	}
	if math.IsInf(best, 1) {
		return nil, math.Inf(1), nil
	}
	return o.stitch(ctx, u, v, b1, b2)
}

// bestCrossing returns the lexicographic argmin boundary pair (exit b1 in
// u's shard, entry b2 in v's shard, both global IDs) of the routed
// distance proxy, or +Inf when no finite crossing exists.
//
// It deliberately uses the full per-pair overlay rows (one MultiSource
// over the source shard's boundary) rather than the Dist router's single
// offset-seeded exploration: the joint exploration collapses the min over
// b1 and cannot say which exit realized it, and recovering the pair in
// two stages would cost another (1+ε_overlay) in the provable path bound.
// The rows land in the overlay engine's LRU, so repeated Path queries out
// of the same shard amortize to cache lookups.
func (o *Oracle) bestCrossing(ctx context.Context, u, v int32) (float64, int32, int32, error) {
	inf := math.Inf(1)
	src, dst := &o.shards[o.part[u]], &o.shards[o.part[v]]
	if o.overlay == nil || len(src.boundaryLocal) == 0 || len(dst.boundaryLocal) == 0 {
		return inf, -1, -1, nil
	}
	du, err := src.eng.Dist(ctx, o.localID[u])
	if err != nil {
		return 0, 0, 0, err
	}
	// Undirected graph: the v→b₂ vector doubles as b₂→v.
	dv, err := dst.eng.Dist(ctx, o.localID[v])
	if err != nil {
		return 0, 0, 0, err
	}
	rows, err := o.overlay.MultiSource(src.boundaryOv)
	if err != nil {
		return 0, 0, 0, err
	}
	best, b1, b2 := inf, int32(-1), int32(-1)
	for i, bl := range src.boundaryLocal {
		c1 := du[bl]
		if math.IsInf(c1, 1) {
			continue
		}
		row := rows[i]
		for j, bl2 := range dst.boundaryLocal {
			c2 := dv[bl2]
			if math.IsInf(c2, 1) {
				continue
			}
			if total := c1 + row[dst.boundaryOv[j]] + c2; total < best {
				best, b1, b2 = total, o.boundary[src.boundaryOv[i]], o.boundary[dst.boundaryOv[j]]
			}
		}
	}
	return best, b1, b2, nil
}

// stitch materializes the routed u→b1→…→b2→v path and returns it with its
// exact summed length.
func (o *Oracle) stitch(ctx context.Context, u, v, b1, b2 int32) ([]int32, float64, error) {
	su := o.part[u]
	seg, length, err := o.shards[su].eng.Path(ctx, o.localID[u], o.localID[b1])
	if err != nil {
		return nil, 0, err
	}
	if seg == nil {
		return nil, 0, fmt.Errorf("shard: chosen exit %d unreachable from %d in shard %d", b1, u, su)
	}
	out := o.globalize(su, seg)

	ovPath, _, err := o.overlay.Path(o.ovIDOf(b1), o.ovIDOf(b2))
	if err != nil {
		return nil, 0, err
	}
	if ovPath == nil {
		return nil, 0, fmt.Errorf("shard: overlay lost the %d→%d crossing", b1, b2)
	}
	for i := 1; i < len(ovPath); i++ {
		x, y := o.boundary[ovPath[i-1]], o.boundary[ovPath[i]]
		if sx := o.part[x]; sx == o.part[y] {
			sub, subLen, err := o.shards[sx].eng.Path(ctx, o.localID[x], o.localID[y])
			if err != nil {
				return nil, 0, err
			}
			if sub == nil {
				return nil, 0, fmt.Errorf("shard: overlay hop %d→%d not realizable in shard %d", x, y, sx)
			}
			out = append(out, o.globalize(sx, sub)[1:]...)
			length += subLen
			continue
		}
		w, ok := o.cutW[cutKey(x, y)]
		if !ok {
			return nil, 0, fmt.Errorf("shard: overlay hop %d→%d is not a cut edge", x, y)
		}
		out = append(out, y)
		length += w
	}

	sv := o.part[v]
	tail, tailLen, err := o.shards[sv].eng.Path(ctx, o.localID[b2], o.localID[v])
	if err != nil {
		return nil, 0, err
	}
	if tail == nil {
		return nil, 0, fmt.Errorf("shard: target %d unreachable from entry %d in shard %d", v, b2, sv)
	}
	out = append(out, o.globalize(sv, tail)[1:]...)
	length += tailLen
	o.routed.Add(1)
	return out, length, nil
}

// ovIDOf maps a global boundary vertex to its overlay ID by binary search
// over the ascending boundary list.
func (o *Oracle) ovIDOf(gv int32) int32 {
	lo, hi := 0, len(o.boundary)
	for lo < hi {
		mid := (lo + hi) / 2
		if o.boundary[mid] < gv {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return int32(lo)
}

// globalize maps a shard-local vertex path to global IDs.
func (o *Oracle) globalize(s int32, path []int32) []int32 {
	out := make([]int32, len(path))
	for i, l := range path {
		out[i] = o.shards[s].vertices[l]
	}
	return out
}
