package shard

import (
	"context"
	"fmt"
	"net/http"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/graphio"
	"repro/internal/graph"
	"repro/internal/lru"
	"repro/oracle"
)

// RouterConfig shapes a distributed scatter-gather router.
type RouterConfig struct {
	// Config carries the epsilons, kappa, path reporting, and cache sizes.
	// EpsilonLocal, Kappa, and PathReporting MUST match the flags the
	// shard workers were started with: the router's composed answer reuses
	// the workers' per-shard arithmetic, so bit-identity with an
	// in-process Oracle holds exactly when both sides build the same
	// engines. (K and TargetBytes are ignored; the manifest fixes the
	// partition.)
	Config

	// HedgeDelay is a fixed delay before the second replica is tried.
	// 0 derives it per primary endpoint from its observed p99 latency
	// (50ms until enough samples accumulate), clamped to [2ms, 1s].
	HedgeDelay time.Duration
	// ProbeInterval is the per-endpoint /healthz cadence (default 250ms).
	ProbeInterval time.Duration
	// ReadyTimeout bounds how long NewRouter waits for every shard to
	// have at least one replica serving before building the overlay
	// (default 2m; the build context can cancel earlier).
	ReadyTimeout time.Duration
	// Client issues query requests (nil: 60s-timeout default). Probes use
	// their own short-timeout client regardless.
	Client *http.Client
	// ManifestDir is the directory holding the manifest's shard payload
	// files. When set, shadow audits (oracle.AuditableBackend) can load
	// shard subgraphs lazily to reconstruct the logical graph for exact
	// recomputation — the only router code path that reads shard
	// payloads, taken off the serve path and only when auditing samples.
	// Empty leaves AuditGraph unsupported on the router. RouterSource
	// fills it from the manifest path automatically.
	ManifestDir string
}

func (cfg *RouterConfig) fill() {
	cfg.Config.fill()
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 250 * time.Millisecond
	}
	if cfg.ReadyTimeout <= 0 {
		cfg.ReadyTimeout = 2 * time.Minute
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 60 * time.Second}
	}
}

// Router serves one logical sharded graph whose per-shard engines live in
// other processes (cmd/shardserve workers), scatter-gathering every query
// over HTTP. It embeds the in-process Oracle and reuses its routing,
// stitching, and caching verbatim — only the per-shard legs go remote,
// through hedged replica sets — so answers are bit-identical to a local
// shard.Oracle over the same manifest (same epsilons, same worker build
// flags; engines are deterministic and float64 survives JSON exactly).
//
// The boundary overlay is built locally at construction time from the
// manifest's cut edges plus boundary-pair distances fetched from the
// workers — the shard graphs themselves are never loaded into the router
// process.
//
// Router implements oracle.Backend (and MatrixBackend), so the registry
// serves it like any other graph: background builds, hot reload,
// eviction — the whole Handle lifecycle is unchanged, which is the point
// of RemoteBackend living under Backend.
type Router struct {
	*Oracle

	cfg       RouterConfig
	endpoints map[string]*endpoint // by base URL, shared across shards
	sets      []*replicaSet
	counters  remoteCounters

	probeCtx    context.Context
	probeCancel context.CancelFunc
	probeClient *http.Client
	probeWG     sync.WaitGroup
	closeOnce   sync.Once
}

// NewRouter assembles a distributed router over a shard manifest and a
// placement map. It needs only the manifest's metadata (partition shape,
// vertex maps, cut edges) — no shard payload files — plus reachable
// workers: construction waits (up to cfg.ReadyTimeout, or ctx) for every
// shard to have one serving replica, then fetches the boundary-pair rows
// that seed the local overlay engine. Engine options in opts are
// forwarded to the overlay build (the registry's build context wins).
//
// Close the router when done serving; RouterSource does this on reload.
func NewRouter(ctx context.Context, man *graphio.ShardManifest, pl *Placement, cfg RouterConfig, opts ...oracle.Option) (*Router, error) {
	cfg.fill()
	if err := pl.validate(man.K); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}

	o := &Oracle{
		n: man.N, k: man.K,
		part:          man.Part(),
		epsLocal:      cfg.EpsilonLocal,
		epsOverlay:    cfg.EpsilonOverlay,
		pathReporting: cfg.PathReporting,
		shards:        make([]shardState, man.K),
	}
	o.localID = make([]int32, man.N)
	for i := range man.Shards {
		for l, gv := range man.Shards[i].Vertices {
			o.localID[gv] = int32(l)
		}
	}
	if cfg.DistCache > 0 {
		o.distCache = lru.New[[]float64](cfg.DistCache)
	}
	if cfg.ManifestDir != "" {
		dir := cfg.ManifestDir
		o.loadShard = func(i int) (*graph.Graph, error) {
			sg, err := man.LoadShard(dir, i)
			if err != nil {
				return nil, err
			}
			return sg.G, nil
		}
	}

	r := &Router{
		Oracle:      o,
		cfg:         cfg,
		endpoints:   make(map[string]*endpoint),
		probeClient: &http.Client{Timeout: 2 * time.Second},
	}
	r.probeCtx, r.probeCancel = context.WithCancel(context.Background())

	for i := range o.shards {
		sp := pl.Shards[i]
		rs := &replicaSet{
			shard:      i,
			counters:   &r.counters,
			hedgeAfter: r.hedgeAfter,
			ctx:        r.probeCtx,
		}
		for _, u := range sp.Replicas {
			ep, ok := r.endpoints[u]
			if !ok {
				ep = &endpoint{url: u}
				r.endpoints[u] = ep
			}
			rs.replicas = append(rs.replicas, replica{
				ep: ep,
				be: oracle.NewRemoteBackend(u, pl.ShardName(i), cfg.Client),
			})
		}
		r.sets = append(r.sets, rs)
		o.shards[i] = shardState{eng: rs, vertices: man.Shards[i].Vertices}
	}

	// Seed health synchronously so the first queries have an ordering,
	// then keep probing in the background.
	for _, ep := range r.endpoints {
		probeEndpoint(ctx, r.probeClient, ep)
	}
	r.startProbes()

	if err := r.waitReady(ctx); err != nil {
		r.Close()
		return nil, err
	}

	cut := make([]graph.Edge, len(man.CutEdges))
	for i, e := range man.CutEdges {
		cut[i] = graph.Edge{U: e.U, V: e.V, W: e.W}
	}
	// buildOverlay pulls each shard's boundary-pair rows through the
	// replica set (one remote MultiSource per shard) and builds the
	// overlay engine locally — the same code path, and therefore the same
	// overlay bits, as the in-process assemble.
	if err := o.buildOverlay(ctx, cut, engineOpts(cfg.EpsilonOverlay, cfg.Config, ctx, opts)); err != nil {
		r.Close()
		return nil, err
	}
	o.memBytes = o.estimateMemory()
	return r, nil
}

// waitReady blocks until every shard has at least one replica serving its
// graph (workers may still be building engines when the router starts).
func (r *Router) waitReady(ctx context.Context) error {
	ctx, cancel := context.WithTimeout(ctx, r.cfg.ReadyTimeout)
	defer cancel()
	for i, rs := range r.sets {
		for !rs.ready(ctx) {
			select {
			case <-ctx.Done():
				return fmt.Errorf("shard: waiting for shard %d replicas: %w", i, ctx.Err())
			case <-time.After(200 * time.Millisecond):
			}
		}
	}
	return nil
}

// startProbes launches one health-probe loop per distinct endpoint.
func (r *Router) startProbes() {
	for _, ep := range r.endpoints {
		r.probeWG.Add(1)
		go func(ep *endpoint) {
			defer r.probeWG.Done()
			t := time.NewTicker(r.cfg.ProbeInterval)
			defer t.Stop()
			for {
				select {
				case <-r.probeCtx.Done():
					return
				case <-t.C:
					probeEndpoint(r.probeCtx, r.probeClient, ep)
				}
			}
		}(ep)
	}
}

// hedgeAfter is the replicaSets' hedge-delay policy: fixed when
// configured, else the primary endpoint's observed p99 (so hedges fire
// exactly for tail-straggler requests), defaulting to 50ms until enough
// samples accumulate and clamped to [2ms, 1s].
func (r *Router) hedgeAfter(ep *endpoint) time.Duration {
	if r.cfg.HedgeDelay > 0 {
		return r.cfg.HedgeDelay
	}
	snap := ep.lat.Snapshot()
	if snap.Count < 16 {
		return 50 * time.Millisecond
	}
	d := time.Duration(snap.P99Us) * time.Microsecond
	switch {
	case d < 2*time.Millisecond:
		d = 2 * time.Millisecond
	case d > time.Second:
		d = time.Second
	}
	return d
}

// Stats implements oracle.Backend: the embedded Oracle's router-level
// view plus the Remote section (per-endpoint health, traffic, latency,
// and the hedging/failover counters).
func (r *Router) Stats() oracle.Stats {
	st := r.Oracle.Stats()
	urls := make([]string, 0, len(r.endpoints))
	for u := range r.endpoints {
		urls = append(urls, u)
	}
	sort.Strings(urls)
	remote := &oracle.RemoteStats{
		Hedges:    r.counters.hedges.Load(),
		HedgeWins: r.counters.hedgeWins.Load(),
		Failovers: r.counters.failovers.Load(),
	}
	for _, u := range urls {
		remote.Endpoints = append(remote.Endpoints, r.endpoints[u].stats())
	}
	st.Sharded.Remote = remote
	return st
}

// Close stops the health probes and cancels in-flight hedged calls. The
// embedded Oracle state stays readable (Stats, Describe); queries after
// Close fail with canceled contexts.
func (r *Router) Close() {
	r.closeOnce.Do(func() {
		r.probeCancel()
		r.probeWG.Wait()
	})
}

// RouterSource is the registry integration for a routed graph: every
// build (initial or reload) re-reads the manifest and placement files,
// assembles a fresh Router, and closes the previous one once the swap
// lands — probes never pile up across hot reloads. placementPath may name
// a JSON placement file; or pass peers to place every shard on every peer
// (the -shard-peers shape). Exactly one of the two must be set.
func RouterSource(manifestPath, placementPath string, peers []string, cfg RouterConfig) oracle.EngineSource {
	var mu sync.Mutex
	var prev *Router
	return func(ctx context.Context, opts ...oracle.Option) (oracle.Backend, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		man, err := graphio.LoadShardManifest(manifestPath)
		if err != nil {
			return nil, err
		}
		if cfg.ManifestDir == "" {
			cfg.ManifestDir = filepath.Dir(manifestPath)
		}
		var pl *Placement
		switch {
		case placementPath != "":
			if pl, err = LoadPlacement(placementPath); err != nil {
				return nil, err
			}
		case len(peers) > 0:
			pl = UniformPlacement(man.Name, man.K, peers)
		default:
			return nil, fmt.Errorf("shard: router needs a placement file or peer list")
		}
		rt, err := NewRouter(ctx, man, pl, cfg, opts...)
		if err != nil {
			return nil, err
		}
		mu.Lock()
		old := prev
		prev = rt
		mu.Unlock()
		if old != nil {
			old.Close()
		}
		return rt, nil
	}
}

var (
	_ oracle.Backend       = (*Router)(nil)
	_ oracle.MatrixBackend = (*Router)(nil)
)
