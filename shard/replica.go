package shard

import (
	"context"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/hist"
	"repro/internal/obs"
	"repro/oracle"
)

// endpoint is one worker base URL as the router sees it, shared across
// every shard placed on it: one health state, one traffic counter pair,
// one latency histogram (the hedge-delay signal) per process, not per
// shard.
type endpoint struct {
	url     string
	healthy atomic.Bool

	requests atomic.Int64
	errs     atomic.Int64
	lat      hist.Histogram
}

func (ep *endpoint) stats() oracle.EndpointStats {
	return oracle.EndpointStats{
		URL:      ep.url,
		Healthy:  ep.healthy.Load(),
		Requests: ep.requests.Load(),
		Errors:   ep.errs.Load(),
		Latency:  ep.lat.Snapshot(),
	}
}

// replica is one shard's client on one endpoint.
type replica struct {
	ep *endpoint
	be *oracle.RemoteBackend
}

// remoteCounters is the router-wide hedging/failover accounting shared by
// every replicaSet.
type remoteCounters struct {
	hedges    atomic.Int64
	hedgeWins atomic.Int64
	failovers atomic.Int64
}

// replicaSet is one shard's leg engine over its replica endpoints. It
// implements legEngine by scattering each call with hedging and failover:
//
//   - the first healthy replica (placement order) gets the request;
//   - if no answer lands within the hedge delay — a percentile of that
//     endpoint's observed latency — the same request is fired at the next
//     replica; the first success wins and the loser's context is
//     canceled;
//   - a transient failure (transport error, 5xx) fails over to the next
//     replica and, when transport-level, marks the endpoint unhealthy
//     until a probe revives it; a typed answer (400/404/501 — identical
//     on every replica by determinism) returns immediately.
//
// Correctness never depends on which replica answers: workers build the
// same shard deterministically and float64 survives the wire exactly.
type replicaSet struct {
	shard    int
	replicas []replica
	counters *remoteCounters

	// hedgeAfter returns the current hedge delay for a primary endpoint;
	// ctx gates in-flight calls (canceled when the router closes).
	hedgeAfter func(*endpoint) time.Duration
	ctx        context.Context
}

// ordered returns the replicas in dispatch order: healthy ones first in
// placement order, then unhealthy ones (last resort — a probe may lag a
// recovery, and a marked-down endpoint still beats returning an error
// without trying).
func (rs *replicaSet) ordered() []replica {
	out := make([]replica, 0, len(rs.replicas))
	for _, r := range rs.replicas {
		if r.ep.healthy.Load() {
			out = append(out, r)
		}
	}
	for _, r := range rs.replicas {
		if !r.ep.healthy.Load() {
			out = append(out, r)
		}
	}
	return out
}

// hedged scatters do over the replica set: primary first, a hedge after
// the delay, failover on transient errors. Returns the first successful
// answer, the first typed (definitive) error, or — when every replica
// fails transiently — the last transient error.
//
// qctx is the caller's request context: it carries cancellation and the
// active trace span down into each attempt. The router's own lifetime
// (rs.ctx) still cancels in-flight attempts when the router closes, via
// an AfterFunc bridge, so Close semantics are unchanged for callers that
// pass context.Background().
//
// When a span rides in qctx, every attempt records a child span tagged
// with the shard, endpoint, and hedge flag, and an outcome: "ok" for a
// returned answer (the winner, or a late duplicate), "cancelled" when a
// sibling answered first and this attempt's context was torn down, or
// "error" for a failed attempt. A hedged trace therefore shows the
// winner and the cancelled loser side by side.
func hedged[T any](qctx context.Context, rs *replicaSet, name string, do func(context.Context, *oracle.RemoteBackend) (T, error)) (T, error) {
	var zero T
	order := rs.ordered()
	if len(order) == 0 {
		return zero, fmt.Errorf("%w: shard %d has no replicas", oracle.ErrRemote, rs.shard)
	}
	ctx, cancel := context.WithCancel(qctx)
	defer cancel()
	stop := context.AfterFunc(rs.ctx, cancel)
	defer stop()

	type outcome struct {
		val   T
		err   error
		rep   replica
		hedge bool
	}
	results := make(chan outcome, len(order))
	launch := func(rep replica, hedge bool) {
		go func() {
			var sp obs.Span
			attemptCtx := ctx
			if obs.StartChild(&sp, ctx, name) {
				sp.Shard = int32(rs.shard)
				sp.Endpoint = rep.ep.url
				sp.Hedge = hedge
				attemptCtx = obs.ContextWith(ctx, &sp)
			}
			start := time.Now()
			v, err := do(attemptCtx, rep.be)
			rep.ep.lat.Observe(time.Since(start))
			rep.ep.requests.Add(1)
			switch {
			case err == nil:
				sp.Outcome = "ok"
			case ctx.Err() != nil:
				sp.Outcome = "cancelled"
			default:
				sp.Outcome = "error"
				sp.SetError(err)
				rep.ep.errs.Add(1)
			}
			sp.End()
			results <- outcome{v, err, rep, hedge}
		}()
	}

	launch(order[0], false)
	next, inflight := 1, 1

	// The hedge timer only runs while exactly the primary is in flight;
	// failover supersedes it (the follow-up request is already out).
	var hedgeC <-chan time.Time
	var timer *time.Timer
	if next < len(order) {
		timer = time.NewTimer(rs.hedgeAfter(order[0].ep))
		defer timer.Stop()
		hedgeC = timer.C
	}

	var lastErr error
	for inflight > 0 {
		select {
		case <-hedgeC:
			hedgeC = nil
			// Hedge only against a healthy replica: racing a request at an
			// endpoint already marked down just burns a connection and
			// pollutes its latency signal. It stays in the order as a
			// failover last resort.
			for h := next; h < len(order); h++ {
				if !order[h].ep.healthy.Load() {
					continue
				}
				order[next], order[h] = order[h], order[next]
				rs.counters.hedges.Add(1)
				launch(order[next], true)
				next++
				inflight++
				break
			}
		case out := <-results:
			inflight--
			if out.err == nil {
				if out.hedge {
					rs.counters.hedgeWins.Add(1)
				}
				return out.val, nil
			}
			if rs.ctx.Err() != nil {
				return zero, out.err // router closed; don't spin up more
			}
			if ctx.Err() != nil {
				continue // canceled because a sibling already answered
			}
			if !oracle.IsRemoteTransient(out.err) {
				// Typed answer: every replica would say the same thing.
				return zero, out.err
			}
			lastErr = out.err
			if isTransportError(out.err) {
				// The process is gone or unreachable; stop routing to it
				// until the health probe sees it again.
				out.rep.ep.healthy.Store(false)
			}
			if next < len(order) {
				rs.counters.failovers.Add(1)
				hedgeC = nil
				launch(order[next], false)
				next++
				inflight++
			}
		}
	}
	return zero, lastErr
}

func isTransportError(err error) bool {
	var re *oracle.RemoteError
	return asRemoteError(err, &re) && re.Status == 0
}

func asRemoteError(err error, target **oracle.RemoteError) bool {
	for err != nil {
		if re, ok := err.(*oracle.RemoteError); ok {
			*target = re
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// Dist implements legEngine.
func (rs *replicaSet) Dist(qctx context.Context, source int32) ([]float64, error) {
	return hedged(qctx, rs, "remote dist", func(ctx context.Context, be *oracle.RemoteBackend) ([]float64, error) {
		return be.DistContext(ctx, source)
	})
}

// MultiSource implements legEngine.
func (rs *replicaSet) MultiSource(qctx context.Context, sources []int32) ([][]float64, error) {
	return hedged(qctx, rs, "remote multi", func(ctx context.Context, be *oracle.RemoteBackend) ([][]float64, error) {
		return be.MultiSourceContext(ctx, sources)
	})
}

// Nearest implements legEngine.
func (rs *replicaSet) Nearest(qctx context.Context, sources []int32) ([]float64, error) {
	return hedged(qctx, rs, "remote nearest", func(ctx context.Context, be *oracle.RemoteBackend) ([]float64, error) {
		return be.NearestContext(ctx, sources)
	})
}

// NearestWithOffsets implements legEngine — the router's offset-seeded
// continuation into this shard, served by POST /nearest with offsets.
func (rs *replicaSet) NearestWithOffsets(qctx context.Context, sources []int32, offsets []float64) ([]float64, error) {
	return hedged(qctx, rs, "remote nearest", func(ctx context.Context, be *oracle.RemoteBackend) ([]float64, error) {
		return be.NearestWithOffsetsContext(ctx, sources, offsets)
	})
}

// Path implements legEngine.
func (rs *replicaSet) Path(qctx context.Context, u, v int32) ([]int32, float64, error) {
	type pv struct {
		path   []int32
		length float64
	}
	res, err := hedged(qctx, rs, "remote path", func(ctx context.Context, be *oracle.RemoteBackend) (pv, error) {
		p, l, err := be.PathContext(ctx, u, v)
		return pv{p, l}, err
	})
	return res.path, res.length, err
}

// MemoryBytes implements legEngine: the remote engine's estimate (cached
// GraphInfo; 0 while unreachable). The router's MemoryBytes therefore
// reports what the worker fleet holds, not local footprint — eviction of
// a routed graph drops clients, never worker engines.
func (rs *replicaSet) MemoryBytes() int64 {
	for _, r := range rs.ordered() {
		if b := r.be.MemoryBytes(); b > 0 {
			return b
		}
	}
	return 0
}

// Describe implements legEngine from the first answering replica.
func (rs *replicaSet) Describe() oracle.BackendInfo {
	for _, r := range rs.ordered() {
		if info := r.be.Describe(); info.HopsetEdges > 0 {
			return info
		}
	}
	return oracle.BackendInfo{}
}

// Stats implements legEngine. It deliberately returns zero Stats: worker
// engine counters are the workers' own (scraped from their /stats), and
// fetching N remote snapshots per status poll would put monitoring on the
// query path. The router's per-endpoint view lives in ShardStats.Remote.
func (rs *replicaSet) Stats() oracle.Stats { return oracle.Stats{} }

// ready reports whether at least one replica serves the shard graph.
func (rs *replicaSet) ready(ctx context.Context) bool {
	for _, r := range rs.replicas {
		if ok, err := r.be.Ready(ctx); err == nil && ok {
			return true
		}
	}
	return false
}

var _ legEngine = (*replicaSet)(nil)

// probe refreshes one endpoint's health from GET /healthz. 200 marks it
// healthy; 503 "starting" (graphs still building) and transport failures
// mark it down. A dedicated client keeps probe timeouts independent of
// query timeouts.
func probeEndpoint(ctx context.Context, client *http.Client, ep *endpoint) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ep.url+"/healthz", nil)
	if err != nil {
		ep.healthy.Store(false)
		return
	}
	resp, err := client.Do(req)
	if err != nil {
		ep.healthy.Store(false)
		return
	}
	resp.Body.Close()
	ep.healthy.Store(resp.StatusCode == http.StatusOK)
}
