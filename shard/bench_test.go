package shard

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/testkit"
	"repro/oracle"
)

// BenchmarkShardedVsMonolithic compares one monolithic engine against the
// sharded oracle at K ∈ {2, 4} on the testkit grid/gnm pair: build
// wall-clock, resident memory, and cold + warm single-source query time.
// With BENCH_SHARD_JSON=<path> the measurements land in a JSON file that
// CI uploads as the BENCH_shard artifact. The memory column is the number
// sharding exists for: per-shard resident size (the eviction granularity
// a registry budget sees during builds) shrinks with K even when the
// summed total does not.
func BenchmarkShardedVsMonolithic(b *testing.B) {
	type measurement struct {
		Graph        string  `json:"graph"`
		Backend      string  `json:"backend"`
		N            int     `json:"n"`
		M            int     `json:"m"`
		BuildMS      float64 `json:"build_ms"`
		MemoryBytes  int64   `json:"memory_bytes"`
		LargestShard int64   `json:"largest_shard_bytes"`
		Boundary     int     `json:"boundary_vertices"`
		ColdDistMS   float64 `json:"cold_dist_ms"`
		WarmDistMS   float64 `json:"warm_dist_ms"`
	}
	// Keyed by sub-benchmark: the framework re-invokes each closure with
	// escalating b.N while calibrating, so a plain append would emit
	// duplicate rows; the map keeps only the final (largest-b.N) run.
	results := map[string]measurement{}
	var order []string

	// Grid is the favorable case (boundary ~ K·√n); gnm is the adversary
	// (an expander's cut is a constant fraction of m, so the overlay is
	// dense and the boundary MultiSource dominates the build). The gnm
	// instance is kept small for exactly that reason — the measurement is
	// the point: sharding pays on low-conductance graphs.
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"grid", testkit.Grid(4096, 17)},
		{"gnm", testkit.Gnm(512, 18)},
	}
	backends := []struct {
		name string
		k    int
	}{
		{"monolithic", 0},
		{"sharded-k2", 2},
		{"sharded-k4", 4},
	}
	for _, gc := range graphs {
		for _, bk := range backends {
			key := gc.name + "/" + bk.name
			order = append(order, key)
			b.Run(key, func(b *testing.B) {
				var m measurement
				m.Graph, m.Backend, m.N, m.M = gc.name, bk.name, gc.g.N, gc.g.M()
				for i := 0; i < b.N; i++ {
					start := time.Now()
					var backend oracle.Backend
					if bk.k == 0 {
						eng, err := oracle.New(gc.g, oracle.WithEpsilon(0.25))
						if err != nil {
							b.Fatal(err)
						}
						m.MemoryBytes = eng.MemoryBytes()
						m.LargestShard = eng.MemoryBytes()
						backend = eng
					} else {
						o, err := Build(context.Background(), gc.g, Config{K: bk.k, EpsilonLocal: 0.25})
						if err != nil {
							b.Fatal(err)
						}
						m.MemoryBytes = o.MemoryBytes()
						for _, sh := range o.shards {
							if mb := sh.eng.MemoryBytes(); mb > m.LargestShard {
								m.LargestShard = mb
							}
						}
						m.Boundary = len(o.boundary)
						backend = o
					}
					m.BuildMS = float64(time.Since(start).Nanoseconds()) / 1e6

					start = time.Now()
					if _, err := backend.Dist(1); err != nil {
						b.Fatal(err)
					}
					m.ColdDistMS = float64(time.Since(start).Nanoseconds()) / 1e6
					start = time.Now()
					if _, err := backend.Dist(1); err != nil {
						b.Fatal(err)
					}
					m.WarmDistMS = float64(time.Since(start).Nanoseconds()) / 1e6
				}
				results[key] = m
			})
		}
	}
	if path := os.Getenv("BENCH_SHARD_JSON"); path != "" && len(results) > 0 {
		var out []measurement
		for _, key := range order {
			if m, ok := results[key]; ok {
				out = append(out, m)
			}
		}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			b.Fatal(err)
		}
		fmt.Printf("# wrote %s\n", path)
	}
}
