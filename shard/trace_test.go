package shard

import (
	"context"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestHedgeSpansWinnerAndCancelledLoser pins the tracing contract of the
// hedged scatter-gather path deterministically: a straggling primary
// (fixed 300ms delay) is raced by a hedge to a fast secondary after a
// fixed 5ms delay, and the trace must contain one attempt span per
// replica — the winner with outcome "ok" and Hedge set, the loser with
// outcome "cancelled" once the winner's return tears down its context.
// The loser's span is recorded asynchronously (its goroutine observes
// cancellation only after the winning call returns), so the ring is
// polled rather than read once.
func TestHedgeSpansWinnerAndCancelledLoser(t *testing.T) {
	slow := stubWorker(t, 300*time.Millisecond, []float64{0, 1})
	defer slow.Close()
	fast := stubWorker(t, 0, []float64{0, 2})
	defer fast.Close()

	tr := obs.NewTracer("serve", obs.TracerOptions{})
	var root obs.Span
	tr.StartRoot(&root, "GET dist", obs.Traceparent{})
	ctx := obs.ContextWith(context.Background(), &root)

	rs := newTestSet(5*time.Millisecond, slow.URL, fast.URL)
	got, err := rs.Dist(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got[1] != 2 {
		t.Fatalf("dist[1] = %v, want the hedge replica's 2", got[1])
	}
	root.End()

	find := func() (winner, loser *obs.SpanData) {
		for _, sd := range tr.Collect(root.Trace) {
			if sd.Name != "remote dist" {
				continue
			}
			sd := sd
			switch sd.Outcome {
			case "ok":
				winner = &sd
			case "cancelled":
				loser = &sd
			}
		}
		return winner, loser
	}
	var winner, loser *obs.SpanData
	deadline := time.Now().Add(10 * time.Second)
	for {
		if winner, loser = find(); winner != nil && loser != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("attempt spans never recorded: winner=%v loser=%v (of %d spans)",
				winner, loser, len(tr.Collect(root.Trace)))
		}
		time.Sleep(10 * time.Millisecond)
	}

	if !winner.Hedge {
		t.Errorf("winner span not marked as the hedge attempt: %+v", winner)
	}
	if winner.Endpoint != fast.URL {
		t.Errorf("winner endpoint = %q, want the fast replica %q", winner.Endpoint, fast.URL)
	}
	if winner.ParentID != root.ID.String() {
		t.Errorf("winner parent = %q, want the request root %q", winner.ParentID, root.ID.String())
	}
	if loser.Hedge {
		t.Errorf("cancelled primary marked as a hedge: %+v", loser)
	}
	if loser.Endpoint != slow.URL {
		t.Errorf("loser endpoint = %q, want the slow replica %q", loser.Endpoint, slow.URL)
	}
	// A cancelled attempt is not a failure: no error is recorded (the
	// endpoint error counter stays untouched too).
	if loser.Err != "" {
		t.Errorf("cancelled attempt recorded error %q, want none", loser.Err)
	}
}

// TestHedgeSpansInertWithoutTrace: the same hedge race with a plain
// context records nothing and still answers — tracing is strictly
// opt-in per request.
func TestHedgeSpansInertWithoutTrace(t *testing.T) {
	slow := stubWorker(t, 300*time.Millisecond, []float64{0, 1})
	defer slow.Close()
	fast := stubWorker(t, 0, []float64{0, 2})
	defer fast.Close()

	rs := newTestSet(5*time.Millisecond, slow.URL, fast.URL)
	got, err := rs.Dist(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got[1] != 2 {
		t.Fatalf("dist[1] = %v, want 2", got[1])
	}
}
