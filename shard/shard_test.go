package shard

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"

	"repro/graphio"
	"repro/internal/exact"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/testkit"
	"repro/oracle"
)

const (
	epsLocal   = 0.25
	epsOverlay = 0.25
)

func composedBound() float64 { return (1 + epsLocal) * (1 + epsOverlay) * (1 + epsLocal) }

// pathBound is the worst-case stretch of a stitched Path: one extra
// (1+ε_overlay)(1+ε_local) on top of the Dist bound from expanding
// overlay hops through per-shard trees (see package doc).
func pathBound() float64 { return composedBound() * (1 + epsOverlay) * (1 + epsLocal) }

func buildSharded(t *testing.T, g *graph.Graph, k int) *Oracle {
	t.Helper()
	o, err := Build(context.Background(), g, Config{
		K: k, EpsilonLocal: epsLocal, EpsilonOverlay: epsOverlay, PathReporting: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return o
}

// TestK1MatchesMonolithic pins the exact-match contract: a K = 1 sharded
// oracle answers bit-identically to the monolithic engine over the same
// graph, for dist vectors and paths alike.
func TestK1MatchesMonolithic(t *testing.T) {
	for _, ng := range testkit.Mix(120, 5) {
		mono, err := oracle.New(ng.G, oracle.WithEpsilon(epsLocal), oracle.WithPathReporting())
		if err != nil {
			t.Fatal(err)
		}
		sh := buildSharded(t, ng.G, 1)
		if sh.Describe().Shards != 1 {
			t.Fatalf("%s: K=1 built %d shards", ng.Name, sh.Describe().Shards)
		}
		for _, src := range []int32{0, int32(ng.G.N / 2)} {
			want, err := mono.Dist(src)
			if err != nil {
				t.Fatal(err)
			}
			got, err := sh.Dist(src)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s src %d: K=1 dist vector differs from monolithic", ng.Name, src)
			}
		}
		u, v := int32(0), int32(ng.G.N-1)
		wp, wl, err := mono.Path(u, v)
		if err != nil {
			t.Fatal(err)
		}
		gp, gl, err := sh.Path(u, v)
		if err != nil {
			t.Fatal(err)
		}
		if gl != wl || !reflect.DeepEqual(gp, wp) {
			t.Fatalf("%s: K=1 path differs from monolithic (%v/%v vs %v/%v)", ng.Name, gp, gl, wp, wl)
		}
	}
}

// TestRoutedStretch checks the composed end-to-end guarantee against
// exact Dijkstra on every testkit family, for K in {2, 4}: no undershoot
// (answers are realizable path lengths) and stretch within
// (1+εl)(1+εo)(1+εl).
func TestRoutedStretch(t *testing.T) {
	bound := composedBound()
	for _, ng := range testkit.Mix(150, 11) {
		for _, k := range []int{2, 4} {
			o := buildSharded(t, ng.G, k)
			for _, src := range []int32{0, int32(ng.G.N - 1)} {
				got, err := o.Dist(src)
				if err != nil {
					t.Fatal(err)
				}
				want, _ := exact.DijkstraGraph(ng.G, src)
				for v := 0; v < ng.G.N; v++ {
					if math.IsInf(want[v], 1) {
						if !math.IsInf(got[v], 1) {
							t.Fatalf("%s K=%d src %d: vertex %d reported reachable", ng.Name, k, src, v)
						}
						continue
					}
					if got[v] < want[v]-1e-9*math.Max(1, want[v]) {
						t.Fatalf("%s K=%d src %d v %d: undershoot %v < %v", ng.Name, k, src, v, got[v], want[v])
					}
					if want[v] > 0 && got[v] > bound*want[v]+1e-9 {
						t.Fatalf("%s K=%d src %d v %d: stretch %v > %v", ng.Name, k, src, v, got[v]/want[v], bound)
					}
				}
			}
		}
	}
}

// TestStitchedPaths validates stitched Path answers: every consecutive
// pair is an edge of the original graph, the reported length is the exact
// sum of edge weights, endpoints match, and the length is within the
// documented path bound of exact.
func TestStitchedPaths(t *testing.T) {
	for _, ng := range []testkit.NamedGraph{
		{Name: "grid", G: testkit.Grid(196, 3)},
		{Name: "gnm", G: testkit.Gnm(160, 8)},
		{Name: "community", G: testkit.Community(160, 4)},
	} {
		for _, k := range []int{2, 4} {
			o := buildSharded(t, ng.G, k)
			exactD, _ := exact.DijkstraGraph(ng.G, 0)
			for _, v := range []int32{1, int32(ng.G.N / 2), int32(ng.G.N - 1)} {
				path, length, err := o.Path(0, v)
				if err != nil {
					t.Fatal(err)
				}
				if math.IsInf(exactD[v], 1) {
					if path != nil {
						t.Fatalf("%s K=%d: path to unreachable %d", ng.Name, k, v)
					}
					continue
				}
				if path == nil || path[0] != 0 || path[len(path)-1] != v {
					t.Fatalf("%s K=%d: bad endpoints %v", ng.Name, k, path)
				}
				var sum float64
				for i := 1; i < len(path); i++ {
					w, ok := ng.G.HasEdge(path[i-1], path[i])
					if !ok {
						t.Fatalf("%s K=%d: (%d,%d) is not an edge of G", ng.Name, k, path[i-1], path[i])
					}
					sum += w
				}
				if math.Abs(sum-length) > 1e-6*math.Max(1, sum) {
					t.Fatalf("%s K=%d: reported length %v, path sums to %v", ng.Name, k, length, sum)
				}
				if length > pathBound()*exactD[v]+1e-9 {
					t.Fatalf("%s K=%d v %d: path stretch %v > %v", ng.Name, k, v, length/exactD[v], pathBound())
				}
			}
		}
	}
}

// TestDisconnectedShards exercises a graph whose components end up in
// different shards: no overlay, cross-component distances stay +Inf, and
// within-component answers are still served.
func TestDisconnectedShards(t *testing.T) {
	var edges []graph.Edge
	for v := int32(0); v < 9; v++ {
		edges = append(edges, graph.E(v, v+1, 1))
	}
	for v := int32(10); v < 19; v++ {
		edges = append(edges, graph.E(v, v+1, 2))
	}
	g := graph.MustFromEdges(20, edges)
	o := buildSharded(t, g, 2)
	d, err := o.Dist(0)
	if err != nil {
		t.Fatal(err)
	}
	if d[9] != 9 {
		t.Fatalf("within-component dist = %v, want 9", d[9])
	}
	if !math.IsInf(d[15], 1) {
		t.Fatalf("cross-component dist = %v, want +Inf", d[15])
	}
	if p, l, err := o.Path(0, 15); err != nil || p != nil || !math.IsInf(l, 1) {
		t.Fatalf("cross-component path = (%v, %v, %v)", p, l, err)
	}
}

// TestOpenMatchesBuild writes a sharded container set and checks that the
// oracle opened from the manifest answers bit-identically to the one
// built in memory from the same graph — the offline/online paths may not
// diverge.
func TestOpenMatchesBuild(t *testing.T) {
	g := testkit.Grid(225, 9)
	res := partition.Partition(g, 4)
	dir := t.TempDir()
	manPath, err := graphio.WriteShards(dir, "grid", res)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{K: 4, EpsilonLocal: epsLocal, EpsilonOverlay: epsOverlay, PathReporting: true}
	built, err := Build(context.Background(), g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	opened, err := Open(context.Background(), manPath, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range []int32{0, 100, 224} {
		want, err := built.Dist(src)
		if err != nil {
			t.Fatal(err)
		}
		got, err := opened.Dist(src)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("src %d: opened oracle differs from built oracle", src)
		}
	}
	wp, wl, err := built.Path(3, 221)
	if err != nil {
		t.Fatal(err)
	}
	gp, gl, err := opened.Path(3, 221)
	if err != nil {
		t.Fatal(err)
	}
	if gl != wl || !reflect.DeepEqual(gp, wp) {
		t.Fatal("opened oracle path differs from built oracle")
	}
}

// TestBackendSurface covers the Backend odds and ends: stats shape,
// unsupported Tree, vertex validation, MemoryBytes.
func TestBackendSurface(t *testing.T) {
	g := testkit.Gnm(140, 2)
	o := buildSharded(t, g, 3)
	if _, err := o.Dist(-1); !errors.Is(err, oracle.ErrVertexOutOfRange) {
		t.Fatalf("Dist(-1): %v", err)
	}
	if _, err := o.Tree(0); !errors.Is(err, oracle.ErrUnsupported) {
		t.Fatalf("Tree: %v", err)
	}
	if _, err := o.MultiSource(nil); !errors.Is(err, oracle.ErrNeedSources) {
		t.Fatalf("MultiSource(nil): %v", err)
	}
	if _, err := o.Dist(0); err != nil {
		t.Fatal(err)
	}
	if _, err := o.Dist(0); err != nil { // cache hit path
		t.Fatal(err)
	}
	st := o.Stats()
	if st.Sharded == nil || st.Sharded.Shards != 3 {
		t.Fatalf("Sharded stats: %+v", st.Sharded)
	}
	wantBound := composedBound()
	if math.Abs(st.Sharded.StretchBound-wantBound) > 1e-12 {
		t.Fatalf("StretchBound %v, want %v", st.Sharded.StretchBound, wantBound)
	}
	if st.DistQueries != 2 { // Dist(-1) not counted; two Dist(0) are
		t.Fatalf("DistQueries = %d, want 2", st.DistQueries)
	}
	if st.Sharded.RoutedQueries+st.Sharded.LocalQueries == 0 {
		t.Fatal("router counted no queries")
	}
	if o.MemoryBytes() <= 0 || o.N() != g.N {
		t.Fatalf("MemoryBytes=%d N=%d", o.MemoryBytes(), o.N())
	}
	// Nearest agrees with the elementwise min of routed vectors.
	rows, err := o.MultiSource([]int32{0, 70})
	if err != nil {
		t.Fatal(err)
	}
	near, err := o.Nearest([]int32{0, 70})
	if err != nil {
		t.Fatal(err)
	}
	for v := range near {
		if want := math.Min(rows[0][v], rows[1][v]); near[v] != want {
			t.Fatalf("Nearest[%d] = %v, want %v", v, near[v], want)
		}
	}
}

// TestShardedMatrixMatchesDistTo pins the sharded many-to-many surface:
// Matrix on a K=3 oracle equals per-pair DistTo bit for bit (each distinct
// source routed once through the router cache), counts as one matrix
// query, and rejects bad inputs with the shared typed errors.
func TestShardedMatrixMatchesDistTo(t *testing.T) {
	g := testkit.Grid(196, 11)
	o := buildSharded(t, g, 3)
	sources := []int32{0, 98, 0, 195} // duplicate source: router cache path
	targets := []int32{195, 1, 99}
	mat, err := o.Matrix(sources, targets)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range sources {
		for j, tv := range targets {
			want, err := o.DistTo(s, tv)
			if err != nil {
				t.Fatal(err)
			}
			if mat[i][j] != want {
				t.Fatalf("matrix[%d][%d] (s=%d t=%d) = %v, want DistTo %v", i, j, s, tv, mat[i][j], want)
			}
		}
	}
	if st := o.Stats(); st.MatrixQueries != 1 {
		t.Fatalf("MatrixQueries = %d, want 1", st.MatrixQueries)
	}
	if _, err := o.Matrix(nil, targets); !errors.Is(err, oracle.ErrNeedSources) {
		t.Fatalf("Matrix(nil, targets): %v", err)
	}
	if _, err := o.Matrix(sources, []int32{int32(g.N)}); !errors.Is(err, oracle.ErrVertexOutOfRange) {
		t.Fatalf("Matrix bad target: %v", err)
	}
	// The registry's Matrix path reaches the sharded backend through the
	// MatrixBackend assertion.
	r := oracle.NewRegistry(oracle.RegistryConfig{})
	defer r.Close()
	if err := r.AddReady("grid", o); err != nil {
		t.Fatal(err)
	}
	if err := r.WaitReady(context.Background(), "grid"); err != nil {
		t.Fatal(err)
	}
	viaReg, err := r.Matrix("grid", sources, targets)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(viaReg, mat) {
		t.Fatal("registry Matrix differs from direct sharded Matrix")
	}
}

// TestRegistryServesSharded registers a sharded source on the registry
// and checks the shared Handle lifecycle: readiness, queries, Info shape
// (Shards set), and hot reload producing identical answers.
func TestRegistryServesSharded(t *testing.T) {
	g := testkit.Grid(196, 6)
	r := oracle.NewRegistry(oracle.RegistryConfig{})
	defer r.Close()
	cfg := Config{K: 4, EpsilonLocal: epsLocal, EpsilonOverlay: epsOverlay, PathReporting: true}
	if err := r.Add("grid", Source(g, cfg)); err != nil {
		t.Fatal(err)
	}
	if err := r.WaitReady(context.Background(), "grid"); err != nil {
		t.Fatal(err)
	}
	gi, err := r.Info("grid")
	if err != nil {
		t.Fatal(err)
	}
	if gi.Shards != 4 || gi.N != g.N || gi.HopsetEdges == 0 {
		t.Fatalf("Info: %+v", gi)
	}
	before, err := r.Dist("grid", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Reload("grid"); err != nil {
		t.Fatal(err)
	}
	if err := r.WaitReady(context.Background(), "grid"); err != nil {
		t.Fatal(err)
	}
	after, err := r.Dist("grid", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before, after) {
		t.Fatal("reload changed deterministic answers")
	}
	if _, _, err := r.Path("grid", 0, 195); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Tree("grid", 0); !errors.Is(err, oracle.ErrUnsupported) {
		t.Fatalf("registry Tree on sharded: %v", err)
	}
}
