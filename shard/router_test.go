package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/graphio"
	"repro/internal/partition"
	"repro/internal/testkit"
	"repro/oracle"
)

// ---- placement ----

func TestUniformPlacement(t *testing.T) {
	peers := []string{"http://a:1", "http://b:2"}
	pl := UniformPlacement("usa", 3, peers)
	if err := pl.validate(3); err != nil {
		t.Fatal(err)
	}
	if pl.Graph != "usa" {
		t.Fatalf("graph = %q", pl.Graph)
	}
	for i, sp := range pl.Shards {
		if len(sp.Replicas) != len(peers) {
			t.Fatalf("shard %d has %d replicas, want %d", i, len(sp.Replicas), len(peers))
		}
		// Primary rotates with the shard ID so the fleet shares load.
		if want := peers[i%len(peers)]; sp.Replicas[0] != want {
			t.Fatalf("shard %d primary = %q, want %q", i, sp.Replicas[0], want)
		}
		if want := fmt.Sprintf("usa.shard%d", i); pl.ShardName(i) != want {
			t.Fatalf("ShardName(%d) = %q, want %q", i, pl.ShardName(i), want)
		}
	}
}

func TestPlacementValidate(t *testing.T) {
	good := UniformPlacement("g", 2, []string{"http://a:1"})
	if err := good.validate(2); err != nil {
		t.Fatal(err)
	}
	if err := good.validate(3); err == nil {
		t.Fatal("shard-count mismatch not rejected")
	}
	noReplicas := &Placement{Graph: "g", Shards: []ShardPlacement{{}, {Replicas: []string{"http://a:1"}}}}
	if err := noReplicas.validate(2); err == nil {
		t.Fatal("empty replica list not rejected")
	}
	badScheme := &Placement{Graph: "g", Shards: []ShardPlacement{{Replicas: []string{"ftp://a:1"}}}}
	if err := badScheme.validate(1); err == nil {
		t.Fatal("non-http endpoint not rejected")
	}
}

func TestLoadPlacement(t *testing.T) {
	pl := UniformPlacement("grid", 2, []string{"http://a:1", "http://b:2"})
	pl.Shards[1].Name = "custom.name"
	raw, err := json.MarshalIndent(pl, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "placement.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadPlacement(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, pl) {
		t.Fatalf("LoadPlacement = %+v, want %+v", got, pl)
	}
	if got.ShardName(1) != "custom.name" {
		t.Fatalf("explicit shard name lost: %q", got.ShardName(1))
	}
}

// ---- replicaSet hedging and failover (stub workers) ----

// stubWorker answers /graphs/{g}/dist with a fixed row after an optional
// delay — just enough of the worker surface for replicaSet unit tests.
func stubWorker(t *testing.T, delay time.Duration, dist []float64) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	})
	mux.HandleFunc("GET /graphs/{name}/dist", func(w http.ResponseWriter, r *http.Request) {
		if delay > 0 {
			select {
			case <-time.After(delay):
			case <-r.Context().Done():
				return
			}
		}
		json.NewEncoder(w).Encode(map[string]any{"dist": dist})
	})
	return httptest.NewServer(mux)
}

func newTestSet(hedge time.Duration, urls ...string) *replicaSet {
	rs := &replicaSet{
		shard:      0,
		counters:   &remoteCounters{},
		hedgeAfter: func(*endpoint) time.Duration { return hedge },
		ctx:        context.Background(),
	}
	for _, u := range urls {
		ep := &endpoint{url: u}
		ep.healthy.Store(true)
		rs.replicas = append(rs.replicas, replica{ep: ep, be: oracle.NewRemoteBackend(u, "g", nil)})
	}
	return rs
}

// TestReplicaSetHedgeWin: a straggling primary is raced by a hedge after
// the delay, and the faster secondary's answer wins. The stub replicas
// deliberately disagree so the winner is observable (real replicas are
// bit-identical by determinism).
func TestReplicaSetHedgeWin(t *testing.T) {
	slow := stubWorker(t, 300*time.Millisecond, []float64{0, 1})
	defer slow.Close()
	fast := stubWorker(t, 0, []float64{0, 2})
	defer fast.Close()

	rs := newTestSet(5*time.Millisecond, slow.URL, fast.URL)
	got, err := rs.Dist(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got[1] != 2 {
		t.Fatalf("dist[1] = %v, want the hedge replica's 2", got[1])
	}
	if h := rs.counters.hedges.Load(); h != 1 {
		t.Fatalf("hedges = %d, want 1", h)
	}
	if w := rs.counters.hedgeWins.Load(); w != 1 {
		t.Fatalf("hedgeWins = %d, want 1", w)
	}
}

// TestReplicaSetFailover: a dead primary (connection refused) fails over
// to the secondary before the hedge timer would fire, and the endpoint is
// marked unhealthy so later calls skip it.
func TestReplicaSetFailover(t *testing.T) {
	dead := stubWorker(t, 0, nil)
	deadURL := dead.URL
	dead.Close()
	alive := stubWorker(t, 0, []float64{0, 7})
	defer alive.Close()

	rs := newTestSet(time.Minute, deadURL, alive.URL)
	got, err := rs.Dist(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got[1] != 7 {
		t.Fatalf("dist[1] = %v, want 7 via failover", got[1])
	}
	if f := rs.counters.failovers.Load(); f != 1 {
		t.Fatalf("failovers = %d, want 1", f)
	}
	if rs.replicas[0].ep.healthy.Load() {
		t.Fatal("dead endpoint still marked healthy")
	}
	// Next call routes straight to the healthy replica: no more failovers.
	if _, err := rs.Dist(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	if f := rs.counters.failovers.Load(); f != 1 {
		t.Fatalf("failovers after reroute = %d, want still 1", f)
	}
}

// TestReplicaSetTypedErrorIsDefinitive: a typed 400 from the primary is
// the deterministic answer every replica would give — it must return
// immediately, with no failover and no traffic to the secondary.
func TestReplicaSetTypedErrorIsDefinitive(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /graphs/{name}/dist", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(map[string]string{
			"error": "oracle: vertex out of range", "code": "vertex_out_of_range",
		})
	})
	typed := httptest.NewServer(mux)
	defer typed.Close()
	second := stubWorker(t, 0, []float64{0})
	defer second.Close()

	rs := newTestSet(time.Minute, typed.URL, second.URL)
	_, err := rs.Dist(context.Background(), 99)
	if !errors.Is(err, oracle.ErrVertexOutOfRange) {
		t.Fatalf("err = %v, want ErrVertexOutOfRange", err)
	}
	if f := rs.counters.failovers.Load(); f != 0 {
		t.Fatalf("typed error caused %d failovers", f)
	}
	if reqs := rs.replicas[1].ep.requests.Load(); reqs != 0 {
		t.Fatalf("secondary saw %d requests for a definitive answer", reqs)
	}
}

// TestReplicaSetHedgeSkipsUnhealthy: the hedge timer must not race a
// request at an endpoint already marked down — it stays reserved for
// last-resort failover.
func TestReplicaSetHedgeSkipsUnhealthy(t *testing.T) {
	slow := stubWorker(t, 100*time.Millisecond, []float64{0, 1})
	defer slow.Close()
	down := stubWorker(t, 0, []float64{0, 9})
	defer down.Close()

	rs := newTestSet(5*time.Millisecond, slow.URL, down.URL)
	rs.replicas[1].ep.healthy.Store(false)
	got, err := rs.Dist(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got[1] != 1 {
		t.Fatalf("dist[1] = %v, want the healthy primary's 1", got[1])
	}
	if h := rs.counters.hedges.Load(); h != 0 {
		t.Fatalf("hedged %d times at an unhealthy endpoint", h)
	}
	if reqs := rs.replicas[1].ep.requests.Load(); reqs != 0 {
		t.Fatalf("unhealthy endpoint saw %d hedge requests", reqs)
	}
}

// ---- router end to end (in-process workers) ----

// testWorker is an in-process stand-in for one cmd/shardserve process.
type testWorker struct {
	srv *httptest.Server
	reg *oracle.Registry
}

func startTestWorker(t *testing.T, man *graphio.ShardManifest, dir string, cfg Config) *testWorker {
	t.Helper()
	engOpts := WorkerEngineOptions(cfg)
	reg := oracle.NewRegistry(oracle.RegistryConfig{})
	for i := 0; i < man.K; i++ {
		i := i
		name := fmt.Sprintf("%s.shard%d", man.Name, i)
		src := func(ctx context.Context, opts ...oracle.Option) (oracle.Backend, error) {
			sg, err := man.LoadShard(dir, i)
			if err != nil {
				return nil, err
			}
			return oracle.New(sg.G, append(append([]oracle.Option{}, opts...), engOpts...)...)
		}
		if err := reg.Add(name, src); err != nil {
			t.Fatal(err)
		}
	}
	w := &testWorker{srv: httptest.NewServer(oracle.NewRegistryHandler(reg)), reg: reg}
	t.Cleanup(func() {
		w.srv.Close()
		w.reg.Close()
	})
	return w
}

// kill severs the worker abruptly: open connections reset, port closed —
// the crash the failover path exists for.
func (w *testWorker) kill() {
	w.srv.CloseClientConnections()
	w.srv.Close()
}

// TestRouterMatchesInProcess is the distributed-equivalence claim: a
// Router over two replica workers answers dist, path, and matrix queries
// bit-identically to an in-process shard.Oracle opened from the same
// manifest with the same flags. Then one worker is hard-killed and the
// same equivalence must keep holding through failover, with the dead
// endpoint marked out and zero query errors.
func TestRouterMatchesInProcess(t *testing.T) {
	dir := t.TempDir()
	g := testkit.Grid(196, 4)
	manPath, err := graphio.WriteShards(dir, "grid", partition.Partition(g, 3))
	if err != nil {
		t.Fatal(err)
	}
	man, err := graphio.LoadShardManifest(manPath)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{EpsilonLocal: 0.3, PathReporting: true}

	want, err := Open(context.Background(), manPath, cfg)
	if err != nil {
		t.Fatal(err)
	}

	w0 := startTestWorker(t, man, dir, cfg)
	w1 := startTestWorker(t, man, dir, cfg)
	pl := UniformPlacement(man.Name, man.K, []string{w0.srv.URL, w1.srv.URL})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	router, err := NewRouter(ctx, man, pl, RouterConfig{
		Config: cfg,
		// Generous fixed hedge: post-kill traffic exercises the failover
		// path (connection refused), not the hedge race.
		HedgeDelay:    500 * time.Millisecond,
		ProbeInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()

	check := func(sources []int32) {
		t.Helper()
		for _, src := range sources {
			wd, err := want.Dist(src)
			if err != nil {
				t.Fatal(err)
			}
			gd, err := router.Dist(src)
			if err != nil {
				t.Fatalf("routed dist(%d): %v", src, err)
			}
			if !reflect.DeepEqual(gd, wd) {
				t.Fatalf("routed dist(%d) differs from in-process oracle", src)
			}
			wp, wl, err := want.Path(src, int32(g.N-1-int(src)))
			if err != nil {
				t.Fatal(err)
			}
			gp, gl, err := router.Path(src, int32(g.N-1-int(src)))
			if err != nil {
				t.Fatalf("routed path(%d): %v", src, err)
			}
			if gl != wl || !reflect.DeepEqual(gp, wp) {
				t.Fatalf("routed path(%d) differs: (%v, %v) vs (%v, %v)", src, gp, gl, wp, wl)
			}
		}
		wm, err := want.Matrix(sources, sources)
		if err != nil {
			t.Fatal(err)
		}
		gm, err := router.Matrix(sources, sources)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gm, wm) {
			t.Fatal("routed matrix differs from in-process oracle")
		}
	}

	// Both workers alive.
	check([]int32{0, 65, 130, 195})
	if gi := router.Describe(); gi.Shards != 3 {
		t.Fatalf("Describe().Shards = %d, want 3", gi.Shards)
	}

	// Hard-kill one worker. Fresh sources bypass the router's dist cache,
	// so every leg goes back to the wire and must fail over cleanly.
	w0.kill()
	check([]int32{7, 42, 101, 177})

	st := router.Stats()
	if st.Sharded == nil || st.Sharded.Remote == nil {
		t.Fatal("router stats missing the remote section")
	}
	var deadSeen, aliveSeen bool
	for _, ep := range st.Sharded.Remote.Endpoints {
		switch ep.URL {
		case w0.srv.URL:
			deadSeen = true
			if ep.Healthy {
				t.Fatal("killed endpoint still reported healthy")
			}
		case w1.srv.URL:
			aliveSeen = true
			if !ep.Healthy {
				t.Fatal("surviving endpoint reported unhealthy")
			}
		}
	}
	if !deadSeen || !aliveSeen {
		t.Fatalf("endpoint stats incomplete: %+v", st.Sharded.Remote.Endpoints)
	}
	if st.Sharded.Remote.Failovers == 0 {
		t.Fatal("kill produced no failovers")
	}
}

// TestRouterRecovery: a worker that comes back (same address) is revived
// by the health probes and serves again — the failover is not sticky.
func TestRouterRecovery(t *testing.T) {
	dead := &endpoint{url: "http://127.0.0.1:1"} // nothing listens on port 1
	probeEndpoint(context.Background(), &http.Client{Timeout: time.Second}, dead)
	if dead.healthy.Load() {
		t.Fatal("unreachable endpoint probed healthy")
	}
	alive := stubWorker(t, 0, []float64{0})
	defer alive.Close()
	ep := &endpoint{url: alive.URL}
	probeEndpoint(context.Background(), &http.Client{Timeout: time.Second}, ep)
	if !ep.healthy.Load() {
		t.Fatal("serving endpoint probed unhealthy")
	}
	// A 503 /healthz (graphs still building) is down, then recovery flips
	// it back up.
	var ready bool
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if !ready {
			http.Error(w, "starting", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte("ok"))
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()
	ep2 := &endpoint{url: srv.URL}
	probeEndpoint(context.Background(), &http.Client{Timeout: time.Second}, ep2)
	if ep2.healthy.Load() {
		t.Fatal("starting endpoint probed healthy")
	}
	ready = true
	probeEndpoint(context.Background(), &http.Client{Timeout: time.Second}, ep2)
	if !ep2.healthy.Load() {
		t.Fatal("recovered endpoint not revived by probe")
	}
}
