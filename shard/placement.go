package shard

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// Placement assigns every shard of one logical graph to one or more
// replica endpoints — worker processes (cmd/shardserve) each serving that
// shard's subgraph as an ordinary registry graph. The router scatters a
// query's per-shard legs across these endpoints with hedging and
// failover; any replica of a shard answers bit-identically (engines are
// deterministic and the wire preserves float64 exactly), so replica
// choice is a latency decision, never a correctness one.
type Placement struct {
	// Graph is the logical graph name; shard i defaults to remote graph
	// name "<Graph>.shard<i>" (cmd/shardserve's naming) unless the entry
	// overrides it.
	Graph string `json:"graph"`
	// Shards is one entry per shard, indexed by shard ID.
	Shards []ShardPlacement `json:"shards"`
}

// ShardPlacement places one shard on its replica endpoints.
type ShardPlacement struct {
	// Name is the remote graph name serving this shard; "" means the
	// default "<graph>.shard<i>".
	Name string `json:"name,omitempty"`
	// Replicas are endpoint base URLs (scheme://host:port), in preference
	// order: the first healthy one is the primary, the rest are hedge and
	// failover targets.
	Replicas []string `json:"replicas"`
}

// ShardName returns the remote graph name of shard i.
func (p *Placement) ShardName(i int) string {
	if p.Shards[i].Name != "" {
		return p.Shards[i].Name
	}
	return fmt.Sprintf("%s.shard%d", p.Graph, i)
}

// validate checks the placement covers exactly k shards, each with at
// least one replica.
func (p *Placement) validate(k int) error {
	if len(p.Shards) != k {
		return fmt.Errorf("shard: placement has %d shards, manifest has %d", len(p.Shards), k)
	}
	for i, sp := range p.Shards {
		if len(sp.Replicas) == 0 {
			return fmt.Errorf("shard: placement shard %d has no replicas", i)
		}
		for _, u := range sp.Replicas {
			if !strings.HasPrefix(u, "http://") && !strings.HasPrefix(u, "https://") {
				return fmt.Errorf("shard: placement shard %d: replica %q is not an http(s) URL", i, u)
			}
		}
	}
	return nil
}

// LoadPlacement reads a placement map from a JSON file.
func LoadPlacement(path string) (*Placement, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("shard: placement: %w", err)
	}
	var p Placement
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("shard: placement %s: %w", path, err)
	}
	return &p, nil
}

// UniformPlacement places every shard on every peer — the -shard-peers
// deployment shape, where each worker serves all K shard graphs and the
// router treats the whole peer set as replicas of each. Peer order is the
// per-shard preference order, rotated by shard ID so load spreads across
// peers instead of hammering the first one.
func UniformPlacement(graph string, k int, peers []string) *Placement {
	p := &Placement{Graph: graph, Shards: make([]ShardPlacement, k)}
	for i := range p.Shards {
		reps := make([]string, len(peers))
		for j := range peers {
			reps[j] = peers[(i+j)%len(peers)]
		}
		p.Shards[i] = ShardPlacement{Replicas: reps}
	}
	return p
}
