// Package shard serves one logical graph as K vertex-disjoint shards
// stitched through a boundary overlay — the first architecture layer that
// decouples servable graph size from a single engine's memory footprint.
//
// A shard.Oracle is built in three deterministic steps:
//
//  1. internal/partition splits the graph into K BFS-grown regions with
//     bit-identical tie-breaking (K explicit, or derived from a per-shard
//     memory target);
//  2. one oracle.Engine is built per shard subgraph on a bounded build
//     pool, then a compact overlay graph is laid over the boundary
//     vertices: every cut edge keeps its exact weight, and every
//     boundary pair inside one shard gets an edge weighted by the
//     shard-local (1+ε_local) distance (one Engine.MultiSource call per
//     shard); the overlay gets its own engine at ε_overlay;
//  3. queries route source-shard → overlay → destination-shards using
//     offset-seeded explorations (Engine.NearestWithOffsets), so a
//     search enters each shard with the cost already paid to reach its
//     boundary.
//
// End-to-end stretch composes multiplicatively —
//
//	(1+ε_local) · (1+ε_overlay) · (1+ε_local)
//
// (source leg, overlay, destination leg) — and is surfaced in
// Stats().Sharded.StretchBound. Stitched Path answers expand overlay hops
// through per-shard trees, which costs one more (1+ε_overlay)(1+ε_local)
// factor in the worst case; the returned length is always the exact
// length of the concrete returned path.
//
// Every answer is deterministic: the partitioner, every engine build, the
// overlay construction, and the router's fixed-order merges are all
// worker-count independent, and a K=1 Oracle answers bit-identically to
// the monolithic engine over the same graph.
//
// shard.Oracle implements oracle.Backend, so the Registry (and therefore
// cmd/serve's HTTP API) serves sharded and monolithic graphs through the
// same Handle lifecycle: background builds, hot reload, eviction.
package shard

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/hist"
	"repro/internal/lru"
	"repro/internal/par"
	"repro/internal/partition"
	"repro/oracle"
)

// pruneLimit bounds the per-shard boundary size the O(B³) overlay
// dominated-pair prune is applied to; larger boundaries keep the complete
// pair set (and such shards — expanders — are poor sharding inputs to
// begin with).
const pruneLimit = 512

// Config shapes a sharded build. The zero value builds a single shard at
// the oracle defaults.
type Config struct {
	// K is the explicit shard count. 0 derives it from TargetBytes via
	// partition.KForTarget; if that is also 0, K = 1.
	K int
	// TargetBytes is the per-shard engine memory target used when K = 0.
	TargetBytes int64
	// EpsilonLocal is the per-shard engine stretch (default 0.25);
	// EpsilonOverlay the overlay engine's (default: EpsilonLocal).
	EpsilonLocal   float64
	EpsilonOverlay float64
	// Kappa overrides κ for every engine built (0 = the oracle default).
	// Shard subgraphs have smaller diameters than the whole graph, so a
	// larger κ — smaller hopsets, larger hopbound — is usually the right
	// trade once memory is the reason to shard at all.
	Kappa int
	// PathReporting enables stitched Path queries (every shard engine and
	// the overlay engine record memory paths).
	PathReporting bool
	// BuildParallel bounds how many shard engines build at once inside
	// one Build call (each build parallelizes internally on the
	// internal/par pool). 0 = max(1, par.Workers()/2) — the same
	// oversubscription discipline as the registry's build pool, which a
	// sharded build occupies exactly one slot of.
	BuildParallel int
	// DistCache is the router's per-source LRU capacity for assembled
	// global distance vectors (0 = 128; negative disables).
	DistCache int
}

func (cfg *Config) fill() {
	if cfg.EpsilonLocal <= 0 {
		cfg.EpsilonLocal = 0.25
	}
	if cfg.EpsilonOverlay <= 0 {
		cfg.EpsilonOverlay = cfg.EpsilonLocal
	}
	if cfg.BuildParallel <= 0 {
		cfg.BuildParallel = par.Workers() / 2
		if cfg.BuildParallel < 1 {
			cfg.BuildParallel = 1
		}
	}
	if cfg.DistCache == 0 {
		cfg.DistCache = 128
	}
}

// legEngine is the per-shard query surface the router stitches over: the
// exact method set the routing, overlay-construction, and path-stitching
// code uses on one shard. *oracle.Engine satisfies it in-process; a
// replicaSet (hedged RemoteBackends over one shard's worker endpoints)
// satisfies it across processes. Every method is deterministic on both
// sides — the same bits come back whether the leg ran locally or over the
// wire — which is what makes the distributed router's answers
// bit-identical to the in-process Oracle's.
type legEngine interface {
	Dist(ctx context.Context, source int32) ([]float64, error)
	MultiSource(ctx context.Context, sources []int32) ([][]float64, error)
	Nearest(ctx context.Context, sources []int32) ([]float64, error)
	NearestWithOffsets(ctx context.Context, sources []int32, offsets []float64) ([]float64, error)
	Path(ctx context.Context, u, v int32) ([]int32, float64, error)
	MemoryBytes() int64
	Describe() oracle.BackendInfo
	Stats() oracle.Stats
}

// localLeg adapts the context-free monolithic engine to the legEngine
// surface. The context is deliberately dropped: a local leg is pure CPU
// with no cancellation points, and keeping *oracle.Engine context-free
// keeps its warm path allocation-free. Remote legs (replicaSet) are
// where the context carries cancellation and trace propagation.
type localLeg struct{ *oracle.Engine }

func (l localLeg) Dist(_ context.Context, source int32) ([]float64, error) {
	return l.Engine.Dist(source)
}

func (l localLeg) MultiSource(_ context.Context, sources []int32) ([][]float64, error) {
	return l.Engine.MultiSource(sources)
}

func (l localLeg) Nearest(_ context.Context, sources []int32) ([]float64, error) {
	return l.Engine.Nearest(sources)
}

func (l localLeg) NearestWithOffsets(_ context.Context, sources []int32, offsets []float64) ([]float64, error) {
	return l.Engine.NearestWithOffsets(sources, offsets)
}

func (l localLeg) Path(_ context.Context, u, v int32) ([]int32, float64, error) {
	return l.Engine.Path(u, v)
}

// shardState is one resident shard: its engine (local or remote) and the
// local↔global and local↔overlay index maps the router stitches with.
type shardState struct {
	eng      legEngine
	vertices []int32 // local -> global, ascending
	// boundaryLocal / boundaryOv are parallel: boundary vertex j of this
	// shard has local ID boundaryLocal[j] and overlay ID boundaryOv[j].
	boundaryLocal []int32
	boundaryOv    []int32
}

// Oracle is a sharded distance oracle implementing oracle.Backend.
type Oracle struct {
	n, k    int
	part    []int32 // global vertex -> shard
	localID []int32 // global vertex -> local ID within its shard

	shards   []shardState
	boundary []int32        // overlay ID -> global vertex, ascending
	overlay  *oracle.Engine // nil when there are no cut edges
	cutW     map[int64]float64

	epsLocal, epsOverlay float64
	pathReporting        bool
	overlayEdges         int
	memBytes             int64

	// distCache holds assembled global distance vectors per source (the
	// shared internal/lru; nil = disabled).
	distCache *lru.Cache[[]float64]

	// loadShard lazily loads one shard's subgraph when the shard engines
	// are remote (set by NewRouter when a manifest directory is
	// configured); nil otherwise. Used only by AuditGraph.
	loadShard func(i int) (*graph.Graph, error)
	// Audit-graph reconstruction is done at most once per oracle (the
	// backend is immutable, so the logical graph is too).
	auditOnce sync.Once
	auditG    *graph.Graph
	auditErr  error

	// overlayFaultBits is a test-only fault injector: when non-zero it
	// holds the Float64bits of a multiplicative corruption applied to the
	// overlay leg of every routed Dist — the knob integration tests use
	// to prove the shadow auditor catches a corrupted overlay weight.
	// Never set in production paths.
	overlayFaultBits atomic.Uint64

	distQueries    atomic.Int64
	multiQueries   atomic.Int64
	nearestQueries atomic.Int64
	pathQueries    atomic.Int64
	matrixQueries  atomic.Int64
	routed         atomic.Int64
	localOnly      atomic.Int64

	// Router-level latency histograms: the latency clients of the
	// sharded backend actually see (per-shard engine histograms would
	// count internal plumbing legs, not end-to-end routed queries).
	latDist    hist.Histogram
	latMulti   hist.Histogram
	latMatrix  hist.Histogram
	latNearest hist.Histogram
	latPath    hist.Histogram
}

// Build partitions g into cfg-many shards and assembles the sharded
// oracle. Extra engine options (registry serving options, build context,
// progress) are forwarded to every engine build, after the config-derived
// ones, so a registry's cancellation always wins.
func Build(ctx context.Context, g *graph.Graph, cfg Config, opts ...oracle.Option) (*Oracle, error) {
	cfg.fill()
	k := cfg.K
	if k <= 0 {
		k = partition.KForTarget(g.N, g.M(), cfg.TargetBytes)
	}
	res := partition.Partition(g, k)
	pieces := make([]piece, len(res.Shards))
	for i, sh := range res.Shards {
		pieces[i] = piece{g: sh.G, vertices: sh.Vertices}
	}
	return assemble(ctx, cfg, res.N, res.Part, res.LocalID, pieces, res.CutEdges, opts...)
}

// piece is one shard subgraph plus its vertex map, however it was
// obtained (fresh partition or manifest load).
type piece struct {
	g        *graph.Graph
	vertices []int32
}

// assemble builds the shard engines, the overlay, and the router state.
func assemble(ctx context.Context, cfg Config, n int, part, localID []int32, pieces []piece, cut []graph.Edge, opts ...oracle.Option) (*Oracle, error) {
	cfg.fill()
	o := &Oracle{
		n: n, k: len(pieces),
		part: part, localID: localID,
		epsLocal: cfg.EpsilonLocal, epsOverlay: cfg.EpsilonOverlay,
		pathReporting: cfg.PathReporting,
		shards:        make([]shardState, len(pieces)),
	}
	if cfg.DistCache > 0 {
		o.distCache = lru.New[[]float64](cfg.DistCache)
	}

	localOpts := engineOpts(cfg.EpsilonLocal, cfg, ctx, opts)
	if err := o.buildEngines(pieces, cfg.BuildParallel, localOpts); err != nil {
		return nil, err
	}

	if err := o.buildOverlay(ctx, cut, engineOpts(cfg.EpsilonOverlay, cfg, ctx, opts)); err != nil {
		return nil, err
	}

	o.memBytes = o.estimateMemory()
	return o, nil
}

// WorkerEngineOptions returns the engine options a shardserve worker must
// build its per-shard engines with to answer bit-identically to the shard
// engines an in-process Oracle (or a Router's reference) would build from
// cfg: same ε_local, same κ, same path reporting. Routed answers reuse
// the workers' arithmetic verbatim, so this flag parity is exactly the
// bit-identity contract between a Router and its workers.
func WorkerEngineOptions(cfg Config) []oracle.Option {
	cfg.fill()
	return engineOpts(cfg.EpsilonLocal, cfg, nil, nil)
}

func engineOpts(eps float64, cfg Config, ctx context.Context, extra []oracle.Option) []oracle.Option {
	opts := []oracle.Option{oracle.WithEpsilon(eps)}
	if cfg.PathReporting {
		opts = append(opts, oracle.WithPathReporting())
	}
	if cfg.Kappa > 0 {
		opts = append(opts, oracle.WithKappa(cfg.Kappa))
	}
	if ctx != nil {
		opts = append(opts, oracle.WithBuildContext(ctx))
	}
	return append(opts, extra...)
}

// buildEngines builds one engine per shard, at most parallel at a time.
// Build errors cancel nothing else (engines are independent); the first
// error in shard order is returned, so failures are deterministic too.
func (o *Oracle) buildEngines(pieces []piece, parallel int, opts []oracle.Option) error {
	sem := make(chan struct{}, parallel)
	errs := make([]error, len(pieces))
	var wg sync.WaitGroup
	for i := range pieces {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			eng, err := oracle.New(pieces[i].g, opts...)
			if err != nil {
				errs[i] = fmt.Errorf("shard: building shard %d (n=%d): %w", i, pieces[i].g.N, err)
				return
			}
			o.shards[i] = shardState{eng: localLeg{eng}, vertices: pieces[i].vertices}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// buildOverlay lays the boundary overlay: cut edges verbatim plus, per
// shard, one edge per boundary pair weighted by the shard-local (1+ε)
// distance (skipping locally disconnected pairs), then builds the overlay
// engine. With no cut edges the overlay is nil and every query is
// shard-local.
func (o *Oracle) buildOverlay(ctx context.Context, cut []graph.Edge, opts []oracle.Option) error {
	if len(cut) == 0 {
		return nil
	}
	isBoundary := make(map[int32]bool, 2*len(cut))
	o.cutW = make(map[int64]float64, len(cut))
	for _, e := range cut {
		isBoundary[e.U] = true
		isBoundary[e.V] = true
		key := cutKey(e.U, e.V)
		if w, ok := o.cutW[key]; !ok || e.W < w {
			o.cutW[key] = e.W
		}
	}
	ovID := make(map[int32]int32, len(isBoundary))
	for v := int32(0); int(v) < o.n; v++ {
		if isBoundary[v] {
			ovID[v] = int32(len(o.boundary))
			o.boundary = append(o.boundary, v)
		}
	}
	for s := range o.shards {
		sh := &o.shards[s]
		for _, gv := range o.boundary {
			if o.part[gv] == int32(s) {
				sh.boundaryLocal = append(sh.boundaryLocal, o.localID[gv])
				sh.boundaryOv = append(sh.boundaryOv, ovID[gv])
			}
		}
	}

	var edges []graph.Edge
	for _, e := range cut {
		edges = append(edges, graph.Edge{U: ovID[e.U], V: ovID[e.V], W: e.W})
	}
	// Boundary-pair edges, one MultiSource per shard. Row order is the
	// ascending boundary order, so edge emission is deterministic. Pairs
	// dominated by a two-hop alternative through a third boundary vertex
	// are pruned: a dropped (i,j) always has a replacement path of
	// strictly shorter kept edges (positive weights force w_ic, w_cj <
	// w_ij at the drop), so overlay distances never grow past the
	// dropped weight and the composed stretch bound is untouched. On
	// geometry-like shards this collapses the quadratic pair set to a
	// near-linear skeleton; above pruneLimit boundary vertices the O(B³)
	// scan would dominate the build, so the complete pair set is kept.
	for s := range o.shards {
		sh := &o.shards[s]
		b := len(sh.boundaryLocal)
		if b < 2 {
			continue
		}
		rows, err := sh.eng.MultiSource(ctx, sh.boundaryLocal)
		if err != nil {
			return fmt.Errorf("shard: boundary distances of shard %d: %w", s, err)
		}
		// Canonical orientation: rows are independent per-source
		// approximations and not symmetric, so every lookup — the prune
		// check AND the emitted edge — must read the same cell per pair,
		// or a dropped edge's two-hop replacement could be built from
		// weights larger than the ones that justified the drop.
		w := func(i, j int) float64 {
			if i > j {
				i, j = j, i
			}
			return rows[i][sh.boundaryLocal[j]]
		}
		for i := 0; i < b; i++ {
			for j := i + 1; j < b; j++ {
				wij := w(i, j)
				if math.IsInf(wij, 1) {
					continue
				}
				if b <= pruneLimit {
					dominated := false
					for c := 0; c < b && !dominated; c++ {
						if c != i && c != j && w(i, c)+w(c, j) <= wij {
							dominated = true
						}
					}
					if dominated {
						continue
					}
				}
				edges = append(edges, graph.Edge{U: sh.boundaryOv[i], V: sh.boundaryOv[j], W: wij})
			}
		}
	}

	og, err := graph.FromEdges(len(o.boundary), edges)
	if err != nil {
		return fmt.Errorf("shard: overlay graph: %w", err)
	}
	o.overlayEdges = og.M()
	eng, err := oracle.New(og, opts...)
	if err != nil {
		return fmt.Errorf("shard: overlay engine: %w", err)
	}
	o.overlay = eng
	return nil
}

func cutKey(u, v int32) int64 {
	if u > v {
		u, v = v, u
	}
	return int64(u)<<32 | int64(v)
}

func (o *Oracle) estimateMemory() int64 {
	bytes := int64(8 * o.n) // part + localID
	for _, sh := range o.shards {
		bytes += sh.eng.MemoryBytes()
		bytes += int64(4 * (len(sh.vertices) + 2*len(sh.boundaryLocal)))
	}
	if o.overlay != nil {
		bytes += o.overlay.MemoryBytes()
		bytes += int64(4*len(o.boundary)) + int64(16*len(o.cutW))
	}
	return bytes
}

// N implements oracle.Backend.
func (o *Oracle) N() int { return o.n }

// MemoryBytes implements oracle.Backend: the summed shard engines, the
// overlay engine, and the router's index maps.
func (o *Oracle) MemoryBytes() int64 { return o.memBytes }

// Describe implements oracle.Backend.
func (o *Oracle) Describe() oracle.BackendInfo {
	info := oracle.BackendInfo{Shards: o.k}
	for _, sh := range o.shards {
		info.HopsetEdges += sh.eng.Describe().HopsetEdges
	}
	if o.overlay != nil {
		info.HopsetEdges += o.overlay.Describe().HopsetEdges
	}
	return info
}

func (o *Oracle) checkVertex(v int32) error {
	if v < 0 || int(v) >= o.n {
		return fmt.Errorf("%w: vertex %d not in [0,%d)", oracle.ErrVertexOutOfRange, v, o.n)
	}
	return nil
}

// Dist returns the routed (1+ε_local)²(1+ε_overlay)-approximate distances
// from source to every vertex of the logical graph (+Inf where
// unreachable). The vector is assembled as
//
//	min( local(source→v)                        v in source's shard,
//	     local(source→b₁) + overlay(b₁→b₂) + local(b₂→v) )
//
// with the overlay and destination legs run as offset-seeded explorations.
// Vectors are cached in the router's LRU and shared: treat as read-only.
func (o *Oracle) Dist(source int32) ([]float64, error) {
	return o.DistContext(context.Background(), source)
}

// DistContext is Dist with a request context: cancellation and the
// active trace span flow into remote legs (it implements
// oracle.ContextBackend). Local legs ignore the context.
func (o *Oracle) DistContext(ctx context.Context, source int32) ([]float64, error) {
	start := time.Now()
	d, err := o.dist(ctx, source)
	o.latDist.Observe(time.Since(start))
	return d, err
}

func (o *Oracle) dist(ctx context.Context, source int32) ([]float64, error) {
	if err := o.checkVertex(source); err != nil {
		return nil, err
	}
	o.distQueries.Add(1)
	if d, ok := o.distCache.Get(source); ok {
		return d, nil
	}
	d, err := o.route(ctx, source)
	if err != nil {
		return nil, err
	}
	o.distCache.Add(source, d)
	return d, nil
}

// cachedDist is the uninstrumented dist body used by multi-query
// surfaces, so internal per-source legs do not pollute the "dist"
// latency histogram.
func (o *Oracle) cachedDist(ctx context.Context, source int32) ([]float64, error) {
	return o.dist(ctx, source)
}

func (o *Oracle) route(ctx context.Context, source int32) ([]float64, error) {
	s := o.part[source]
	sh := &o.shards[s]
	dloc, err := sh.eng.Dist(ctx, o.localID[source])
	if err != nil {
		return nil, err
	}
	out := make([]float64, o.n)
	for i := range out {
		out[i] = math.Inf(1)
	}
	for l, gv := range sh.vertices {
		out[gv] = dloc[l]
	}
	if o.overlay == nil || len(sh.boundaryLocal) == 0 {
		o.localOnly.Add(1)
		return out, nil
	}

	// Seed the overlay with the local cost to reach each boundary vertex
	// of the source shard.
	offs := make([]float64, len(sh.boundaryLocal))
	finite := false
	for i, bl := range sh.boundaryLocal {
		offs[i] = dloc[bl]
		finite = finite || !math.IsInf(offs[i], 1)
	}
	if !finite {
		o.localOnly.Add(1)
		return out, nil
	}
	ovMin, err := o.overlay.NearestWithOffsets(sh.boundaryOv, offs)
	if err != nil {
		return nil, err
	}
	if scale := o.overlayFault(); scale != 1 {
		scaled := make([]float64, len(ovMin))
		for i, d := range ovMin {
			scaled[i] = d * scale
		}
		ovMin = scaled
	}

	// Continue into every shard from its boundary, with the overlay cost
	// already paid. Merging with the local leg is an elementwise min in
	// fixed vertex order — deterministic.
	for j := range o.shards {
		dst := &o.shards[j]
		if len(dst.boundaryLocal) == 0 {
			continue
		}
		offsets := make([]float64, len(dst.boundaryLocal))
		finite := false
		for i, ov := range dst.boundaryOv {
			offsets[i] = ovMin[ov]
			finite = finite || !math.IsInf(offsets[i], 1)
		}
		if !finite {
			continue
		}
		res, err := dst.eng.NearestWithOffsets(ctx, dst.boundaryLocal, offsets)
		if err != nil {
			return nil, err
		}
		for l, gv := range dst.vertices {
			if res[l] < out[gv] {
				out[gv] = res[l]
			}
		}
	}
	o.routed.Add(1)
	return out, nil
}

// DistTo implements oracle.Backend.
func (o *Oracle) DistTo(source, target int32) (float64, error) {
	if err := o.checkVertex(target); err != nil {
		return 0, err
	}
	d, err := o.Dist(source)
	if err != nil {
		return 0, err
	}
	return d[target], nil
}

// MultiSource implements oracle.Backend: row i is Dist(sources[i]).
func (o *Oracle) MultiSource(sources []int32) ([][]float64, error) {
	return o.MultiSourceContext(context.Background(), sources)
}

// MultiSourceContext is MultiSource with a request context.
func (o *Oracle) MultiSourceContext(ctx context.Context, sources []int32) ([][]float64, error) {
	start := time.Now()
	rows, err := o.multiSource(ctx, sources)
	o.latMulti.Observe(time.Since(start))
	return rows, err
}

func (o *Oracle) multiSource(ctx context.Context, sources []int32) ([][]float64, error) {
	if len(sources) == 0 {
		return nil, oracle.ErrNeedSources
	}
	for _, s := range sources {
		if err := o.checkVertex(s); err != nil {
			return nil, err
		}
	}
	o.multiQueries.Add(1)
	out := make([][]float64, len(sources))
	for i, s := range sources {
		d, err := o.cachedDist(ctx, s)
		if err != nil {
			return nil, err
		}
		out[i] = d
	}
	return out, nil
}

// Matrix implements oracle.MatrixBackend: out[i][j] is the routed
// approximate distance from sources[i] to targets[j]. Each distinct source
// is routed once — through the router's per-source LRU, so a repeated or
// overlapping matrix reuses assembled global vectors — and the S×T block
// is a projection of those vectors, identical to per-pair DistTo answers.
func (o *Oracle) Matrix(sources, targets []int32) ([][]float64, error) {
	return o.MatrixContext(context.Background(), sources, targets)
}

// MatrixContext is Matrix with a request context (it implements
// oracle.ContextMatrixBackend).
func (o *Oracle) MatrixContext(ctx context.Context, sources, targets []int32) ([][]float64, error) {
	start := time.Now()
	rows, err := o.matrix(ctx, sources, targets)
	o.latMatrix.Observe(time.Since(start))
	return rows, err
}

func (o *Oracle) matrix(ctx context.Context, sources, targets []int32) ([][]float64, error) {
	if len(sources) == 0 || len(targets) == 0 {
		return nil, oracle.ErrNeedSources
	}
	for _, s := range sources {
		if err := o.checkVertex(s); err != nil {
			return nil, err
		}
	}
	for _, t := range targets {
		if err := o.checkVertex(t); err != nil {
			return nil, err
		}
	}
	o.matrixQueries.Add(1)
	out := make([][]float64, len(sources))
	for i, s := range sources {
		d, err := o.cachedDist(ctx, s)
		if err != nil {
			return nil, err
		}
		row := make([]float64, len(targets))
		for j, t := range targets {
			row[j] = d[t]
		}
		out[i] = row
	}
	return out, nil
}

// Nearest implements oracle.Backend: the approximate distance to the
// nearest source, per vertex. It runs one joint routed pass — per-shard
// local Nearest over that shard's own sources, one overlay exploration
// seeded with all their boundary costs, one offset continuation per
// shard — instead of |sources| separate routes. Relaxation is min-plus
// linear, so the result is exactly the elementwise minimum of the
// per-source routed vectors, at the cost of a single Dist.
func (o *Oracle) Nearest(sources []int32) ([]float64, error) {
	return o.NearestContext(context.Background(), sources)
}

// NearestContext is Nearest with a request context.
func (o *Oracle) NearestContext(ctx context.Context, sources []int32) ([]float64, error) {
	start := time.Now()
	d, err := o.nearest(ctx, sources)
	o.latNearest.Observe(time.Since(start))
	return d, err
}

func (o *Oracle) nearest(ctx context.Context, sources []int32) ([]float64, error) {
	if len(sources) == 0 {
		return nil, oracle.ErrNeedSources
	}
	for _, s := range sources {
		if err := o.checkVertex(s); err != nil {
			return nil, err
		}
	}
	o.nearestQueries.Add(1)

	byShard := make([][]int32, o.k)
	for _, s := range sources {
		byShard[o.part[s]] = append(byShard[o.part[s]], o.localID[s])
	}
	out := make([]float64, o.n)
	for i := range out {
		out[i] = math.Inf(1)
	}
	// Local legs: one joint exploration per shard that holds sources.
	local := make([][]float64, o.k)
	for s, srcs := range byShard {
		if len(srcs) == 0 {
			continue
		}
		v, err := o.shards[s].eng.Nearest(ctx, srcs)
		if err != nil {
			return nil, err
		}
		local[s] = v
		for l, gv := range o.shards[s].vertices {
			out[gv] = v[l]
		}
	}
	if o.overlay == nil {
		o.localOnly.Add(1)
		return out, nil
	}
	// One overlay exploration seeded with every source shard's boundary
	// costs (boundary sets are disjoint across shards).
	var ovSources []int32
	var ovOffsets []float64
	for s, v := range local {
		if v == nil {
			continue
		}
		sh := &o.shards[s]
		for i, bl := range sh.boundaryLocal {
			if d := v[bl]; !math.IsInf(d, 1) {
				ovSources = append(ovSources, sh.boundaryOv[i])
				ovOffsets = append(ovOffsets, d)
			}
		}
	}
	if len(ovSources) == 0 {
		o.localOnly.Add(1)
		return out, nil
	}
	ovMin, err := o.overlay.NearestWithOffsets(ovSources, ovOffsets)
	if err != nil {
		return nil, err
	}
	for j := range o.shards {
		dst := &o.shards[j]
		if len(dst.boundaryLocal) == 0 {
			continue
		}
		offsets := make([]float64, len(dst.boundaryLocal))
		finite := false
		for i, ov := range dst.boundaryOv {
			offsets[i] = ovMin[ov]
			finite = finite || !math.IsInf(offsets[i], 1)
		}
		if !finite {
			continue
		}
		res, err := dst.eng.NearestWithOffsets(ctx, dst.boundaryLocal, offsets)
		if err != nil {
			return nil, err
		}
		for l, gv := range dst.vertices {
			if res[l] < out[gv] {
				out[gv] = res[l]
			}
		}
	}
	o.routed.Add(1)
	return out, nil
}

// Tree is not implemented for sharded backends: a global shortest-path
// tree cannot be stitched from per-shard trees without materializing the
// whole graph, which is exactly what sharding avoids.
func (o *Oracle) Tree(source int32) (*oracle.Tree, error) {
	return nil, fmt.Errorf("%w: Tree on a sharded oracle", oracle.ErrUnsupported)
}

// Stats implements oracle.Backend: engine counters summed across shards
// and the overlay, plus the Sharded section (partition shape, router
// split, stretch accounting).
func (o *Oracle) Stats() oracle.Stats {
	var st oracle.Stats
	acc := func(s oracle.Stats) {
		st.DistQueries += s.DistQueries
		st.MultiQueries += s.MultiQueries
		st.NearestQueries += s.NearestQueries
		st.PathQueries += s.PathQueries
		st.TreeQueries += s.TreeQueries
		st.DistCache.Hits += s.DistCache.Hits
		st.DistCache.Misses += s.DistCache.Misses
		st.DistCache.Evictions += s.DistCache.Evictions
		st.DistCache.Len += s.DistCache.Len
		st.DistCache.Cap += s.DistCache.Cap
		st.TreeCache.Hits += s.TreeCache.Hits
		st.TreeCache.Misses += s.TreeCache.Misses
		st.TreeCache.Evictions += s.TreeCache.Evictions
		st.TreeCache.Len += s.TreeCache.Len
		st.TreeCache.Cap += s.TreeCache.Cap
		st.Relax.Explorations += s.Relax.Explorations
		st.Relax.ScannedArcs += s.Relax.ScannedArcs
		st.Relax.DenseRounds += s.Relax.DenseRounds
		st.Relax.SparseRounds += s.Relax.SparseRounds
		st.Relax.BatchedSeeds += s.Relax.BatchedSeeds
		st.Batches += s.Batches
		st.BatchedQueries += s.BatchedQueries
		st.BatchWaitNano += s.BatchWaitNano
		if s.LargestBatch > st.LargestBatch {
			st.LargestBatch = s.LargestBatch
		}
		if s.BatchWindowNano > st.BatchWindowNano {
			st.BatchWindowNano = s.BatchWindowNano
		}
		if len(s.BatchOccupancy) > 0 {
			if st.BatchOccupancy == nil {
				st.BatchOccupancy = make([]int64, len(s.BatchOccupancy))
			}
			for i, c := range s.BatchOccupancy {
				st.BatchOccupancy[i] += c
			}
		}
	}
	for _, sh := range o.shards {
		acc(sh.eng.Stats())
	}
	if o.overlay != nil {
		acc(o.overlay.Stats())
	}
	if st.Relax.Explorations > 0 {
		st.Relax.ArcsPerExploration = float64(st.Relax.ScannedArcs) / float64(st.Relax.Explorations)
	}
	// The router's own view: queries as clients see them (the summed
	// engine counters above include internal plumbing — every routed
	// Dist fans out into per-shard NearestWithOffsets calls), plus the
	// composed stretch guarantee.
	st.DistQueries = o.distQueries.Load()
	st.MultiQueries = o.multiQueries.Load()
	st.NearestQueries = o.nearestQueries.Load()
	st.PathQueries = o.pathQueries.Load()
	st.MatrixQueries = o.matrixQueries.Load()
	for name, h := range map[string]*hist.Histogram{
		"dist": &o.latDist, "multi": &o.latMulti, "matrix": &o.latMatrix,
		"nearest": &o.latNearest, "path": &o.latPath,
	} {
		if snap := h.Snapshot(); snap.Count > 0 {
			if st.Latency == nil {
				st.Latency = make(map[string]oracle.LatencySnapshot)
			}
			st.Latency[name] = snap
		}
	}
	st.Sharded = &oracle.ShardStats{
		Shards:           o.k,
		BoundaryVertices: len(o.boundary),
		OverlayEdges:     o.overlayEdges,
		CutEdges:         len(o.cutW),
		EpsilonLocal:     o.epsLocal,
		EpsilonOverlay:   o.epsOverlay,
		StretchBound:     (1 + o.epsLocal) * (1 + o.epsOverlay) * (1 + o.epsLocal),
		RoutedQueries:    o.routed.Load(),
		LocalQueries:     o.localOnly.Load(),
		RouterCache:      o.distCache.Snapshot(),
	}
	return st
}

// overlayFault reads the injected overlay corruption factor (1 = none).
func (o *Oracle) overlayFault() float64 {
	bits := o.overlayFaultBits.Load()
	if bits == 0 {
		return 1
	}
	return math.Float64frombits(bits)
}

// InjectOverlayFault is a TEST HOOK: it corrupts the overlay leg of every
// subsequent routed Dist by the multiplicative scale (e.g. 2.0 doubles
// every overlay distance), exactly as a corrupted overlay edge weight
// would. Integration tests use it to prove the shadow auditor surfaces
// the violation; the router's per-source cache is dropped so corrupted
// answers are actually recomputed and served. Pass 1 (or 0) to clear.
func (o *Oracle) InjectOverlayFault(scale float64) {
	if scale == 1 || scale == 0 {
		o.overlayFaultBits.Store(0)
	} else {
		o.overlayFaultBits.Store(math.Float64bits(scale))
	}
	if o.distCache != nil {
		o.distCache.Purge()
	}
}

// AuditGraph implements oracle.AuditableBackend: the logical input graph,
// reassembled losslessly from the per-shard subgraphs (local vertex IDs
// mapped back through each shard's vertex table) plus the cut edges. For
// a distributed router the shard subgraphs are loaded from the manifest's
// payload files on first use — the one code path that reads shard
// payloads in a router process, taken only when shadow auditing is on and
// strictly off the serve path. Reconstruction happens once; the result is
// cached for the oracle's lifetime.
func (o *Oracle) AuditGraph() (*graph.Graph, error) {
	o.auditOnce.Do(func() { o.auditG, o.auditErr = o.buildAuditGraph() })
	return o.auditG, o.auditErr
}

func (o *Oracle) buildAuditGraph() (*graph.Graph, error) {
	var edges []graph.Edge
	for key, w := range o.cutW {
		edges = append(edges, graph.Edge{U: int32(key >> 32), V: int32(key & 0xffffffff), W: w})
	}
	for i := range o.shards {
		sh := &o.shards[i]
		var sg *graph.Graph
		switch leg := sh.eng.(type) {
		case localLeg:
			// AuditGraph, not Hopset().G: the engine's retained graph may
			// carry normalized weights, and cut edges (above) are in input
			// units — the audit graph must be uniformly input-unit.
			var err error
			if sg, err = leg.Engine.AuditGraph(); err != nil {
				return nil, fmt.Errorf("shard: audit graph of shard %d: %w", i, err)
			}
		default:
			if o.loadShard == nil {
				return nil, fmt.Errorf("%w: audit graph of remote shards without a manifest directory", oracle.ErrUnsupported)
			}
			var err error
			if sg, err = o.loadShard(i); err != nil {
				return nil, fmt.Errorf("shard: audit load of shard %d: %w", i, err)
			}
		}
		for _, e := range sg.Edges {
			edges = append(edges, graph.Edge{U: sh.vertices[e.U], V: sh.vertices[e.V], W: e.W})
		}
	}
	return graph.FromEdges(o.n, edges)
}

// StretchBounds implements oracle.AuditableBackend. Dist answers honor
// the composed (1+ε_local)(1+ε_overlay)(1+ε_local) bound; a stitched
// Path's length (always the exact length of the concrete returned walk)
// may additionally pay one (1+ε_overlay)(1+ε_local) factor for crossing
// the overlay at an approximately-chosen boundary pair.
func (o *Oracle) StretchBounds() (dist, path float64) {
	b := (1 + o.epsLocal) * (1 + o.epsOverlay) * (1 + o.epsLocal)
	return b, b * (1 + o.epsOverlay) * (1 + o.epsLocal)
}

var (
	_ oracle.Backend          = (*Oracle)(nil)
	_ oracle.MatrixBackend    = (*Oracle)(nil)
	_ oracle.AuditableBackend = (*Oracle)(nil)
)
