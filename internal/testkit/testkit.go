// Package testkit is the shared deterministic workload kit: one seeded
// generator per graph family, with sizes derived from a single n knob, so
// every test and benchmark in the repository draws its instances from the
// same place instead of hand-rolling (generator, size, weights, seed)
// tuples. Everything is pure: the same (family, n, seed) always yields the
// same graph, byte for byte, which is what the golden determinism corpus
// and the cross-worker-count tests rely on.
//
// Families and what they stand in for:
//
//	Gnm        sparse Erdős–Rényi — the default random workload
//	Dense      denser G(n, 4n) — benchmark/harness staple
//	Sparse     near-tree G(n, 1.1n) — almost no redundancy
//	Grid       2D grid — road networks (high diameter, low degree)
//	Social     preferential attachment — social graphs (skewed degrees)
//	Geometric  random geometric — wireless/sensor topologies
//	Community  planted partition — clustered social graphs
//	Tree       complete binary tree — hierarchy, unique paths
//	Path       the n-path — adversarial hop diameter
//	Cycle      the n-cycle — adversarial + two-path redundancy
//	Hypercube  log-diameter dense symmetry
//	Wide       weights across many powers of two — multi-scale/KS territory
package testkit

import (
	"math"

	"repro/internal/graph"
)

// NamedGraph pairs a family name with a generated instance.
type NamedGraph struct {
	Name string
	G    *graph.Graph
	// Wide marks weight distributions spanning many scales (the
	// Klein–Sairam weight-reduction territory).
	Wide bool
}

// Gnm returns the sparse random staple: G(n, 3.5n) with weights U(1,6).
func Gnm(n int, seed int64) *graph.Graph {
	return graph.Gnm(n, 3*n+n/2, graph.UniformWeights(1, 6), seed)
}

// Dense returns the denser benchmark staple: G(n, 4n) with weights U(1,8).
func Dense(n int, seed int64) *graph.Graph {
	return graph.Gnm(n, 4*n, graph.UniformWeights(1, 8), seed)
}

// Sparse returns a near-tree G(n, 1.1n) with weights U(1,4): long shortest
// paths with almost no redundancy, a narrow-frontier adversary.
func Sparse(n int, seed int64) *graph.Graph {
	return graph.Gnm(n, n+n/10, graph.UniformWeights(1, 4), seed)
}

// Grid returns a near-square 2D grid with about n vertices and weights
// U(1,3) — the road-network stand-in.
func Grid(n int, seed int64) *graph.Graph {
	rows := int(math.Sqrt(float64(n)))
	if rows < 2 {
		rows = 2
	}
	cols := (n + rows - 1) / rows
	if cols < 2 {
		cols = 2
	}
	return graph.Grid(rows, cols, graph.UniformWeights(1, 3), seed)
}

// Social returns a preferential-attachment graph with unit weights — the
// social-network stand-in (skewed degrees, low diameter).
func Social(n int, seed int64) *graph.Graph {
	return graph.PowerLaw(n, 3, graph.UnitWeights(), seed)
}

// Geometric returns a random geometric graph with a radius that keeps the
// expected degree roughly constant across n.
func Geometric(n int, seed int64) *graph.Graph {
	return graph.Geometric(n, 1.75/math.Sqrt(float64(n)), seed)
}

// Community returns a planted-partition graph: 4 communities, n/2
// intra-community and n/5 inter-community random edges, weights U(1,4).
func Community(n int, seed int64) *graph.Graph {
	return graph.Community(n, 4, n/2, n/5, graph.UniformWeights(1, 4), seed)
}

// Tree returns a complete binary tree with weights U(1,8).
func Tree(n int, seed int64) *graph.Graph {
	return graph.Tree(n, 2, graph.UniformWeights(1, 8), seed)
}

// Path returns the unit-weight n-path — the hop-diameter adversary.
func Path(n int) *graph.Graph {
	return graph.Path(n, graph.UnitWeights(), 1)
}

// Cycle returns the n-cycle with weights U(1,2).
func Cycle(n int, seed int64) *graph.Graph {
	return graph.Cycle(n, graph.UniformWeights(1, 2), seed)
}

// Hypercube returns the ⌊log₂ n⌋-dimensional hypercube, weights U(1,5).
func Hypercube(n int, seed int64) *graph.Graph {
	dim := 1
	for 1<<(dim+1) <= n {
		dim++
	}
	return graph.Hypercube(dim, graph.UniformWeights(1, 5), seed)
}

// Wide returns G(n, 3n) with weights spread across 11 powers of two —
// exercises the multi-scale machinery and the Klein–Sairam reduction.
func Wide(n int, seed int64) *graph.Graph {
	return graph.Gnm(n, 3*n, graph.GeometricScaleWeights(11), seed)
}

// PartitionCase is one shared sharding workload: a family instance, the
// shard count to split it into, and the family's structural expectations.
// The partitioner always yields exactly K non-empty shards (every seed
// keeps itself), so the expectation surface is the boundary: MaxBoundary
// is a loose per-family upper bound on boundary vertices — tight-ish for
// geometry-like families (a grid's balanced cut is O(K·√n)), and the
// whole vertex set for expanders, where a small boundary is impossible
// and sharding is expected not to pay.
type PartitionCase struct {
	Name string
	G    *graph.Graph
	K    int
	// MaxBoundary bounds len(partition.Result.Boundary) for this case.
	MaxBoundary int
}

// Partitioned returns the shared sharding workload at size n: the cases
// partition, shard, and the integration suite all draw from, so the three
// layers agree on what a "reasonable" partition looks like. Deterministic
// in (n, seed).
func Partitioned(n int, seed int64) []PartitionCase {
	side := int(math.Sqrt(float64(n)))
	gridBound := func(k int) int {
		b := 6 * k * (side + 2) // ≤ a few cut rows/columns per shard
		if b > n {
			b = n
		}
		return b
	}
	return []PartitionCase{
		{Name: "grid-k2", G: Grid(n, seed), K: 2, MaxBoundary: gridBound(2)},
		{Name: "grid-k4", G: Grid(n, seed), K: 4, MaxBoundary: gridBound(4)},
		{Name: "community-k4", G: Community(n, seed), K: 4, MaxBoundary: n},
		{Name: "gnm-k2", G: Gnm(n, seed), K: 2, MaxBoundary: n},
		{Name: "tree-k4", G: Tree(n, seed), K: 4, MaxBoundary: n / 2},
	}
}

// Mix returns the full cross-family workload suite at size n — the
// integration-matrix mix. Every instance is deterministic in (n, seed).
func Mix(n int, seed int64) []NamedGraph {
	return []NamedGraph{
		{Name: "gnm", G: Gnm(n, seed)},
		{Name: "grid", G: Grid(n, seed)},
		{Name: "powerlaw", G: Social(n, seed)},
		{Name: "geometric", G: Geometric(3*n/4, seed)},
		{Name: "community", G: Community(n, seed)},
		{Name: "tree", G: Tree(n-n/6, seed)},
		{Name: "cycle", G: Cycle(n-n/6, seed)},
		{Name: "hypercube", G: Hypercube(n, seed)},
		{Name: "wide", G: Wide(n-n/6, seed), Wide: true},
	}
}
