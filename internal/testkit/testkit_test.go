package testkit

import (
	"bytes"
	"testing"

	"repro/graphio"
	"repro/internal/graph"
)

// encode serializes a graph (as a deterministic .csrg image) for
// byte-level comparison.
func encode(t *testing.T, g *graph.Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := graphio.WriteCSRG(&buf, g); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestFamiliesDeterministic is the kit's core contract: the same
// (family, n, seed) yields byte-identical graphs, and a different seed
// yields a different instance for the randomized families.
func TestFamiliesDeterministic(t *testing.T) {
	for _, ng := range Mix(120, 3) {
		t.Run(ng.Name, func(t *testing.T) {
			if ng.G.N == 0 || ng.G.M() == 0 {
				t.Fatalf("empty graph: n=%d m=%d", ng.G.N, ng.G.M())
			}
		})
	}
	a := Mix(120, 3)
	b := Mix(120, 3)
	for i := range a {
		if got, want := encode(t, b[i].G), encode(t, a[i].G); !bytes.Equal(got, want) {
			t.Fatalf("%s: same (n, seed) produced different graphs", a[i].Name)
		}
	}
	// Seeded families must actually vary with the seed.
	for _, pair := range []struct {
		name string
		a, b *graph.Graph
	}{
		{"gnm", Gnm(100, 1), Gnm(100, 2)},
		{"grid", Grid(100, 1), Grid(100, 2)},
		{"social", Social(100, 1), Social(100, 2)},
		{"geometric", Geometric(100, 1), Geometric(100, 2)},
		{"wide", Wide(100, 1), Wide(100, 2)},
	} {
		if bytes.Equal(encode(t, pair.a), encode(t, pair.b)) {
			t.Fatalf("%s: seeds 1 and 2 produced identical graphs", pair.name)
		}
	}
}

// TestFamiliesConnected guards the generators' connectivity guarantees:
// every family must produce one component (tests rely on full
// reachability).
func TestFamiliesConnected(t *testing.T) {
	for _, ng := range Mix(96, 7) {
		seen := make([]bool, ng.G.N)
		stack := []int32{0}
		seen[0] = true
		count := 1
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for i := ng.G.Off[v]; i < ng.G.Off[v+1]; i++ {
				u := ng.G.Nbr[i]
				if !seen[u] {
					seen[u] = true
					count++
					stack = append(stack, u)
				}
			}
		}
		if count != ng.G.N {
			t.Fatalf("%s: %d of %d vertices reachable", ng.Name, count, ng.G.N)
		}
	}
}

// TestPartitionedDeterministic pins the shared sharding workload: same
// (n, seed) must always yield the same instances and bounds.
func TestPartitionedDeterministic(t *testing.T) {
	a, b := Partitioned(128, 3), Partitioned(128, 3)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("case counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].K != b[i].K || a[i].MaxBoundary != b[i].MaxBoundary {
			t.Fatalf("case %d metadata differs", i)
		}
		if a[i].G.N != b[i].G.N || a[i].G.M() != b[i].G.M() {
			t.Fatalf("%s: instance shape differs across calls", a[i].Name)
		}
		for e := range a[i].G.Edges {
			if a[i].G.Edges[e] != b[i].G.Edges[e] {
				t.Fatalf("%s: edge %d differs across calls", a[i].Name, e)
			}
		}
		if a[i].K < 2 || a[i].MaxBoundary <= 0 || a[i].MaxBoundary > a[i].G.N {
			t.Fatalf("%s: implausible bounds K=%d MaxBoundary=%d", a[i].Name, a[i].K, a[i].MaxBoundary)
		}
	}
}
