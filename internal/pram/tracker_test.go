package pram

import (
	"sync"
	"testing"
)

func TestNilTrackerSafe(t *testing.T) {
	var tr *Tracker
	tr.AddDepth(5)
	tr.AddWork(5)
	tr.Round(10)
	tr.Rounds(2, 3)
	tr.Reset()
	if s := tr.Snapshot(); s.Depth != 0 || s.Work != 0 {
		t.Fatalf("nil tracker snapshot = %v", s)
	}
}

func TestCounting(t *testing.T) {
	tr := New()
	tr.AddDepth(3)
	tr.AddWork(10)
	tr.Round(7)
	tr.Rounds(2, 5)
	s := tr.Snapshot()
	if s.Depth != 3+1+2 {
		t.Fatalf("depth=%d", s.Depth)
	}
	if s.Work != 10+7+10 {
		t.Fatalf("work=%d", s.Work)
	}
	if s.Proc != 7 {
		t.Fatalf("proc=%d", s.Proc)
	}
}

func TestNegativeIgnored(t *testing.T) {
	tr := New()
	tr.AddDepth(-1)
	tr.AddWork(-1)
	tr.Rounds(-1, 100)
	if s := tr.Snapshot(); s.Depth != 0 || s.Work != 0 {
		t.Fatalf("negative charges not ignored: %v", s)
	}
}

func TestSubAndReset(t *testing.T) {
	tr := New()
	tr.Rounds(4, 2)
	base := tr.Snapshot()
	tr.Rounds(3, 5)
	d := tr.Sub(base)
	if d.Depth != 3 || d.Work != 15 {
		t.Fatalf("sub = %v", d)
	}
	tr.Reset()
	if s := tr.Snapshot(); s.Depth != 0 || s.Work != 0 || s.Proc != 0 {
		t.Fatalf("after reset: %v", s)
	}
}

func TestConcurrentWork(t *testing.T) {
	tr := New()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				tr.AddWork(1)
			}
		}()
	}
	wg.Wait()
	if s := tr.Snapshot(); s.Work != 16000 {
		t.Fatalf("work=%d want 16000", s.Work)
	}
}

func TestString(t *testing.T) {
	tr := New()
	tr.Round(2)
	if got := tr.Snapshot().String(); got != "depth=1 work=2 proc=2" {
		t.Fatalf("String() = %q", got)
	}
}
