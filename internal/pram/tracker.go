// Package pram accounts CREW PRAM complexity — depth (synchronous rounds)
// and work (total operations) — for the algorithms in this repository.
//
// The paper (§1.5.1) charges one unit of depth per synchronous round and one
// unit of work per read/write performed by any processor. The Go
// implementation executes rounds on a goroutine pool (package par); each
// primitive reports the depth and work that the idealized PRAM schedule
// would incur, so the complexity claims of Theorems 3.7/3.8/4.5/4.6 can be
// measured directly (experiments E3 and E5).
package pram

import (
	"fmt"
	"sync/atomic"
)

// Tracker accumulates PRAM depth and work. A nil *Tracker is valid and all
// of its methods are no-ops, so instrumentation can be disabled by passing
// nil.
type Tracker struct {
	depth atomic.Int64
	work  atomic.Int64
	// maxProc tracks the largest number of processors any single round
	// asked for; work/depth is a lower bound on processors.
	maxProc atomic.Int64
}

// New returns a fresh tracker.
func New() *Tracker { return &Tracker{} }

// AddDepth charges d synchronous rounds. Calls from concurrent goroutines
// within one logical round should be avoided; primitives charge depth at
// their (single-threaded) synchronization points.
func (t *Tracker) AddDepth(d int64) {
	if t == nil || d <= 0 {
		return
	}
	t.depth.Add(d)
}

// AddWork charges w units of work (reads/writes across all processors).
func (t *Tracker) AddWork(w int64) {
	if t == nil || w <= 0 {
		return
	}
	t.work.Add(w)
}

// Round charges one round of depth in which p processors each perform one
// operation: depth += 1, work += p.
func (t *Tracker) Round(p int64) {
	if t == nil {
		return
	}
	t.depth.Add(1)
	t.work.Add(p)
	t.observeProc(p)
}

// Rounds charges d rounds, each with p active processors.
func (t *Tracker) Rounds(d, p int64) {
	if t == nil || d <= 0 {
		return
	}
	t.depth.Add(d)
	t.work.Add(d * p)
	t.observeProc(p)
}

func (t *Tracker) observeProc(p int64) {
	for {
		cur := t.maxProc.Load()
		if p <= cur || t.maxProc.CompareAndSwap(cur, p) {
			return
		}
	}
}

// Counts is a snapshot of accumulated complexity.
type Counts struct {
	Depth int64 // synchronous PRAM rounds
	Work  int64 // total operations
	Proc  int64 // max processors requested in any single round
}

// Snapshot returns the current counters. Safe on a nil tracker.
func (t *Tracker) Snapshot() Counts {
	if t == nil {
		return Counts{}
	}
	return Counts{Depth: t.depth.Load(), Work: t.work.Load(), Proc: t.maxProc.Load()}
}

// Reset zeroes the counters.
func (t *Tracker) Reset() {
	if t == nil {
		return
	}
	t.depth.Store(0)
	t.work.Store(0)
	t.maxProc.Store(0)
}

// Sub returns the counters accumulated since the snapshot from.
func (t *Tracker) Sub(from Counts) Counts {
	s := t.Snapshot()
	return Counts{Depth: s.Depth - from.Depth, Work: s.Work - from.Work, Proc: s.Proc}
}

func (c Counts) String() string {
	return fmt.Sprintf("depth=%d work=%d proc=%d", c.Depth, c.Work, c.Proc)
}
