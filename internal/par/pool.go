// Package par provides deterministic shared-memory parallel primitives.
//
// The package simulates the synchronous CREW PRAM rounds of the paper on a
// pool of goroutines. Every primitive is deterministic: callers must write
// only to state owned by their own iteration index (exclusive writes), and
// all reductions combine partial results in fixed chunk order, so results do
// not depend on the number of workers or on scheduling.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// seqCutoff is the loop size below which For runs sequentially; spawning
// goroutines for tiny loops costs more than it saves.
const seqCutoff = 1 << 9

var maxWorkers atomic.Int64

func init() { maxWorkers.Store(int64(runtime.GOMAXPROCS(0))) }

// SetWorkers sets the degree of parallelism used by this package and returns
// the previous value. Values below 1 are clamped to 1. It is intended for
// tests and benchmarks that verify scheduling-independence.
func SetWorkers(n int) int {
	if n < 1 {
		n = 1
	}
	return int(maxWorkers.Swap(int64(n)))
}

// Workers reports the current degree of parallelism.
func Workers() int { return int(maxWorkers.Load()) }

// For runs fn(i) for every i in [0, n) using up to Workers() goroutines.
//
// fn must only write state owned by iteration i; concurrent reads of shared
// state are allowed (CREW discipline). Under that contract the result is
// identical to running the loop sequentially.
func For(n int, fn func(i int)) {
	ForChunk(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// ForChunk partitions [0, n) into disjoint subranges and runs fn(lo, hi) on
// each, in parallel. Chunks are claimed dynamically for load balance; since
// chunk contents are fixed, determinism is unaffected.
func ForChunk(n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	w := Workers()
	if w == 1 || n < seqCutoff {
		fn(0, n)
		return
	}
	// Oversplit so stragglers can be balanced away.
	nchunks := w * 4
	if nchunks > n {
		nchunks = n
	}
	chunk := (n + nchunks - 1) / nchunks
	var next atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo := int(next.Add(int64(chunk))) - chunk
				if lo >= n {
					return
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				fn(lo, hi)
			}
		}()
	}
	wg.Wait()
}

// Chunks returns the number of fixed partitions used by the deterministic
// reduction helpers for a loop of size n. It depends only on n, never on the
// worker count, so reductions are schedule-independent.
func Chunks(n int) int {
	if n <= 0 {
		return 0
	}
	const fixed = 64
	if n < fixed {
		return n
	}
	return fixed
}

// FixedChunkBounds returns the half-open bounds of chunk c of Chunks(n)
// fixed partitions of [0, n).
func FixedChunkBounds(n, c int) (lo, hi int) {
	k := Chunks(n)
	size := (n + k - 1) / k
	lo = c * size
	hi = lo + size
	if hi > n {
		hi = n
	}
	if lo > n {
		lo = n
	}
	return lo, hi
}
