package par

// Reduce combines get(0) … get(n-1) with combine, starting from the identity
// id. Partial results are computed over Chunks(n) fixed subranges in
// parallel and then combined in ascending chunk order, so the result is
// independent of the worker count even for non-associative-in-practice
// operations such as floating-point addition.
func Reduce[T any](n int, id T, get func(i int) T, combine func(a, b T) T) T {
	k := Chunks(n)
	if k == 0 {
		return id
	}
	parts := make([]T, k)
	For(k, func(c int) {
		lo, hi := FixedChunkBounds(n, c)
		acc := id
		for i := lo; i < hi; i++ {
			acc = combine(acc, get(i))
		}
		parts[c] = acc
	})
	acc := id
	for c := 0; c < k; c++ {
		acc = combine(acc, parts[c])
	}
	return acc
}

// MaxFloat64 returns the maximum of get(i) over [0, n), or def when n == 0.
func MaxFloat64(n int, def float64, get func(i int) float64) float64 {
	if n == 0 {
		return def
	}
	first := get(0)
	return Reduce(n-1, first, func(i int) float64 { return get(i + 1) },
		func(a, b float64) float64 {
			if b > a {
				return b
			}
			return a
		})
}

// MinFloat64 returns the minimum of get(i) over [0, n), or def when n == 0.
func MinFloat64(n int, def float64, get func(i int) float64) float64 {
	if n == 0 {
		return def
	}
	first := get(0)
	return Reduce(n-1, first, func(i int) float64 { return get(i + 1) },
		func(a, b float64) float64 {
			if b < a {
				return b
			}
			return a
		})
}

// SumInt64 returns the sum of get(i) over [0, n).
func SumInt64(n int, get func(i int) int64) int64 {
	return Reduce(n, 0, get, func(a, b int64) int64 { return a + b })
}

// CountIf returns the number of indices in [0, n) for which pred holds.
func CountIf(n int, pred func(i int) bool) int64 {
	return SumInt64(n, func(i int) int64 {
		if pred(i) {
			return 1
		}
		return 0
	})
}
