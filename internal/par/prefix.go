package par

// ExclusiveSum replaces s with its exclusive prefix sums and returns the
// total. s[i] becomes s[0]+…+s[i-1]; s[0] becomes 0.
//
// The computation is the classic two-pass work-efficient parallel scan:
// per-chunk partial sums, a sequential scan over the (fixed) chunk partials,
// then a parallel second pass. It is deterministic for integer element
// types.
func ExclusiveSum(s []int64) int64 {
	n := len(s)
	if n == 0 {
		return 0
	}
	k := Chunks(n)
	parts := make([]int64, k)
	For(k, func(c int) {
		lo, hi := FixedChunkBounds(n, c)
		var acc int64
		for i := lo; i < hi; i++ {
			acc += s[i]
		}
		parts[c] = acc
	})
	var total int64
	for c := 0; c < k; c++ {
		parts[c], total = total, total+parts[c]
	}
	For(k, func(c int) {
		lo, hi := FixedChunkBounds(n, c)
		acc := parts[c]
		for i := lo; i < hi; i++ {
			s[i], acc = acc, acc+s[i]
		}
	})
	return total
}

// ExclusiveSumInt32 is ExclusiveSum for int32 slices, returning the total as
// int64 to guard against overflow of the grand total.
func ExclusiveSumInt32(s []int32) int64 {
	n := len(s)
	if n == 0 {
		return 0
	}
	k := Chunks(n)
	parts := make([]int64, k)
	For(k, func(c int) {
		lo, hi := FixedChunkBounds(n, c)
		var acc int64
		for i := lo; i < hi; i++ {
			acc += int64(s[i])
		}
		parts[c] = acc
	})
	var total int64
	for c := 0; c < k; c++ {
		parts[c], total = total, total+parts[c]
	}
	For(k, func(c int) {
		lo, hi := FixedChunkBounds(n, c)
		acc := parts[c]
		for i := lo; i < hi; i++ {
			v := int64(s[i])
			s[i] = int32(acc)
			acc += v
		}
	})
	return total
}

// Pack writes the indices i in [0, n) satisfying pred into a fresh slice,
// in ascending order, using a parallel count + prefix-sum + scatter.
func Pack(n int, pred func(i int) bool) []int32 {
	k := Chunks(n)
	if k == 0 {
		return nil
	}
	counts := make([]int64, k)
	For(k, func(c int) {
		lo, hi := FixedChunkBounds(n, c)
		var cnt int64
		for i := lo; i < hi; i++ {
			if pred(i) {
				cnt++
			}
		}
		counts[c] = cnt
	})
	total := ExclusiveSum(counts)
	out := make([]int32, total)
	For(k, func(c int) {
		lo, hi := FixedChunkBounds(n, c)
		at := counts[c]
		for i := lo; i < hi; i++ {
			if pred(i) {
				out[at] = int32(i)
				at++
			}
		}
	})
	return out
}
