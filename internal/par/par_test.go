package par

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestForCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100, 5000} {
		got := make([]int, n)
		For(n, func(i int) { got[i] = i + 1 })
		for i, v := range got {
			if v != i+1 {
				t.Fatalf("n=%d: index %d not visited exactly once (got %d)", n, i, v)
			}
		}
	}
}

func TestForEachIndexOnce(t *testing.T) {
	n := 10000
	counts := make([]int32, n)
	For(n, func(i int) { counts[i]++ })
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
}

func TestForChunkDisjointCover(t *testing.T) {
	n := 4321
	seen := make([]int32, n)
	ForChunk(n, func(lo, hi int) {
		if lo < 0 || hi > n || lo > hi {
			t.Errorf("bad chunk [%d,%d)", lo, hi)
		}
		for i := lo; i < hi; i++ {
			seen[i]++
		}
	})
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("index %d covered %d times", i, c)
		}
	}
}

func TestSetWorkers(t *testing.T) {
	old := Workers()
	defer SetWorkers(old)
	if prev := SetWorkers(3); prev != old {
		t.Fatalf("SetWorkers returned %d, want %d", prev, old)
	}
	if Workers() != 3 {
		t.Fatalf("Workers() = %d, want 3", Workers())
	}
	SetWorkers(0)
	if Workers() != 1 {
		t.Fatalf("Workers() after SetWorkers(0) = %d, want 1", Workers())
	}
}

func TestReduceMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := r.Intn(3000)
		vals := make([]int64, n)
		var want int64
		for i := range vals {
			vals[i] = int64(r.Intn(1000) - 500)
			want += vals[i]
		}
		got := SumInt64(n, func(i int) int64 { return vals[i] })
		if got != want {
			t.Fatalf("n=%d: sum=%d want %d", n, got, want)
		}
	}
}

func TestReduceDeterministicFloatAcrossWorkers(t *testing.T) {
	old := Workers()
	defer SetWorkers(old)
	r := rand.New(rand.NewSource(2))
	n := 10000
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = r.Float64()*2e6 - 1e6
	}
	sum := func() float64 {
		return Reduce(n, 0.0, func(i int) float64 { return vals[i] },
			func(a, b float64) float64 { return a + b })
	}
	SetWorkers(1)
	want := sum()
	for _, w := range []int{2, 3, 4, 8} {
		SetWorkers(w)
		if got := sum(); got != want {
			t.Fatalf("workers=%d: float sum %v differs from 1-worker %v", w, got, want)
		}
	}
}

func TestMinMaxFloat64(t *testing.T) {
	vals := []float64{5, -3, 8, 0, 2}
	if got := MaxFloat64(len(vals), -1, func(i int) float64 { return vals[i] }); got != 8 {
		t.Fatalf("max=%v", got)
	}
	if got := MinFloat64(len(vals), -1, func(i int) float64 { return vals[i] }); got != -3 {
		t.Fatalf("min=%v", got)
	}
	if got := MaxFloat64(0, 42, nil); got != 42 {
		t.Fatalf("empty max=%v want default", got)
	}
	if got := MinFloat64(0, 42, nil); got != 42 {
		t.Fatalf("empty min=%v want default", got)
	}
}

func TestCountIf(t *testing.T) {
	if got := CountIf(100, func(i int) bool { return i%3 == 0 }); got != 34 {
		t.Fatalf("CountIf=%d want 34", got)
	}
}

func TestExclusiveSumProperty(t *testing.T) {
	f := func(raw []int16) bool {
		s := make([]int64, len(raw))
		want := make([]int64, len(raw))
		var acc int64
		for i, v := range raw {
			s[i] = int64(v)
			want[i] = acc
			acc += int64(v)
		}
		total := ExclusiveSum(s)
		if total != acc {
			return false
		}
		for i := range s {
			if s[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestExclusiveSumLarge(t *testing.T) {
	n := 100000
	s := make([]int64, n)
	for i := range s {
		s[i] = 1
	}
	if total := ExclusiveSum(s); total != int64(n) {
		t.Fatalf("total=%d", total)
	}
	for i := range s {
		if s[i] != int64(i) {
			t.Fatalf("s[%d]=%d", i, s[i])
		}
	}
}

func TestExclusiveSumInt32(t *testing.T) {
	s := []int32{3, 1, 4, 1, 5}
	total := ExclusiveSumInt32(s)
	if total != 14 {
		t.Fatalf("total=%d", total)
	}
	want := []int32{0, 3, 4, 8, 9}
	for i := range s {
		if s[i] != want[i] {
			t.Fatalf("s=%v want %v", s, want)
		}
	}
}

func TestPack(t *testing.T) {
	got := Pack(10, func(i int) bool { return i%2 == 1 })
	want := []int32{1, 3, 5, 7, 9}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
	if got := Pack(0, nil); len(got) != 0 {
		t.Fatalf("empty pack got %v", got)
	}
}

func TestPackLargeAscending(t *testing.T) {
	n := 50000
	got := Pack(n, func(i int) bool { return i%7 == 0 })
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("not ascending at %d: %d <= %d", i, got[i], got[i-1])
		}
	}
	if int(got[0]) != 0 || len(got) != (n+6)/7 {
		t.Fatalf("len=%d first=%d", len(got), got[0])
	}
}

func TestFixedChunkBoundsCover(t *testing.T) {
	for _, n := range []int{1, 5, 63, 64, 65, 1000} {
		k := Chunks(n)
		prev := 0
		for c := 0; c < k; c++ {
			lo, hi := FixedChunkBounds(n, c)
			if lo != prev {
				t.Fatalf("n=%d chunk %d: lo=%d want %d", n, c, lo, prev)
			}
			prev = hi
		}
		if prev != n {
			t.Fatalf("n=%d: chunks cover up to %d", n, prev)
		}
	}
}
