// Package admission is the serve-path overload gate: a weighted
// admission limiter that refuses work beyond a configured number of
// in-flight cost units instead of queueing it, plus a drain-rate
// estimator that turns "how fast is capacity freeing up" into an honest
// Retry-After hint.
//
// Costs are per-request work units: a point query (/dist, /path) is 1
// unit, a many-to-many /matrix of S sources × T targets is S·T units —
// the engine work it actually buys. A fixed per-request semaphore would
// let one 64×64 matrix occupy the same admission slot as one scalar
// lookup, so under load a handful of matrix calls could monopolize the
// engines while the limiter still reported headroom.
//
// Refused requests get a Retry-After derived from the observed drain
// rate (cost units released per second over a short sliding window)
// rather than a constant: when the server is draining 500 units/s a
// refused unit-cost query can retry almost immediately, while a refused
// 4096-unit matrix behind a saturated server is told to back off for the
// seconds it will actually take for that much capacity to free up.
// Clients should add jitter (see the README) so synchronized retries do
// not re-stampede the exact Retry-After boundary.
package admission

import (
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// ringSeconds is the sliding window of the drain-rate estimator. Small on
// purpose: admission decisions should track the last few seconds of
// behaviour, not the lifetime average.
const ringSeconds = 8

// Limiter admits work up to a fixed number of concurrently in-flight
// cost units. A nil *Limiter admits everything (all methods are
// nil-safe no-ops), so callers never branch on configuration.
type Limiter struct {
	limit    int64
	inflight atomic.Int64
	rejected atomic.Int64
	admitted atomic.Int64

	// lastRetryAfter is the most recent Retry-After hint handed to a
	// refused request, in nanoseconds — an observability breadcrumb for
	// /stats and /metrics, not an input to any admission decision.
	lastRetryAfter atomic.Int64

	// Drain-rate ring: one slot per wall-clock second, holding the cost
	// units released during that second. Slots are lazily reset when the
	// second rolls over; the reset races are benign (the estimate is an
	// approximation by design).
	ring [ringSeconds]ringSlot

	// now is the clock, swappable in tests.
	now func() time.Time
}

type ringSlot struct {
	sec   atomic.Int64
	units atomic.Int64
}

// New returns a limiter admitting up to limit in-flight cost units, or
// nil (unlimited) when limit ≤ 0.
func New(limit int) *Limiter {
	if limit <= 0 {
		return nil
	}
	return &Limiter{limit: int64(limit), now: time.Now}
}

// Limit returns the configured capacity (0 for a nil limiter).
func (l *Limiter) Limit() int64 {
	if l == nil {
		return 0
	}
	return l.limit
}

// Inflight returns the currently admitted cost units.
func (l *Limiter) Inflight() int64 {
	if l == nil {
		return 0
	}
	return l.inflight.Load()
}

// TryAcquire admits cost units if they fit, without blocking. cost is
// clamped to [1, limit]: a request costing more than the whole capacity
// (an oversized matrix) is admitted when the limiter is otherwise empty
// rather than being unadmittable forever.
func (l *Limiter) TryAcquire(cost int64) bool {
	if l == nil {
		return true
	}
	cost = l.clamp(cost)
	for {
		cur := l.inflight.Load()
		if cur+cost > l.limit {
			l.rejected.Add(1)
			return false
		}
		if l.inflight.CompareAndSwap(cur, cur+cost) {
			l.admitted.Add(1)
			return true
		}
	}
}

// Release returns cost units and credits them to the drain-rate window.
// Must be called exactly once per successful TryAcquire, with the same
// cost.
func (l *Limiter) Release(cost int64) {
	if l == nil {
		return
	}
	cost = l.clamp(cost)
	l.inflight.Add(-cost)
	sec := l.now().Unix()
	slot := &l.ring[sec%ringSeconds]
	if old := slot.sec.Load(); old != sec {
		if slot.sec.CompareAndSwap(old, sec) {
			slot.units.Store(0)
		}
	}
	slot.units.Add(cost)
}

// drainRate returns the observed cost units released per second over the
// last few complete seconds (0 when nothing has drained recently).
func (l *Limiter) drainRate() float64 {
	sec := l.now().Unix()
	var units int64
	var seconds int64
	for i := range l.ring {
		s := l.ring[i].sec.Load()
		// Current partial second excluded: it would bias the rate low
		// right after a second rolls over.
		if s >= sec-int64(ringSeconds)+1 && s < sec {
			units += l.ring[i].units.Load()
			seconds++
		}
	}
	if seconds == 0 || units == 0 {
		return 0
	}
	return float64(units) / float64(seconds)
}

// RetryAfter estimates how long a refused request of the given cost
// should wait before retrying: the units that must drain before it fits,
// divided by the observed drain rate, clamped to [1s, 30s]. With no
// recent drain observations — cold start (the ring has seen zero
// releases in its first second of life) or an idle gap longer than the
// ring window — the rate is 0 and the estimate is meaningless, so the
// hint falls back to the 1s floor.
func (l *Limiter) RetryAfter(cost int64) time.Duration {
	if l == nil {
		return 0
	}
	cost = l.clamp(cost)
	var d time.Duration
	need := l.inflight.Load() + cost - l.limit
	if rate := l.drainRate(); need > 0 && rate > 0 {
		d = time.Duration(float64(time.Second) * float64(need) / rate).Round(time.Second)
	}
	// The floor is a final guard over every path on purpose: whatever the
	// arithmetic above produced (zero rate, sub-second estimate, rounding),
	// an HTTP "Retry-After: 0" tells clients to hammer back immediately —
	// exactly wrong while the limiter is refusing work.
	if d < time.Second {
		d = time.Second
	}
	if d > 30*time.Second {
		d = 30 * time.Second
	}
	l.lastRetryAfter.Store(int64(d))
	return d
}

// Stats is a point-in-time snapshot of the limiter.
type Stats struct {
	Limit    int64 `json:"limit"`
	Inflight int64 `json:"inflight"`
	Admitted int64 `json:"admitted"`
	Rejected int64 `json:"rejected"`
	// DrainRatePerSec is the observed release rate (cost units per
	// second over the sliding window) — the denominator behind
	// Retry-After hints. Zero while the window is empty.
	DrainRatePerSec float64 `json:"drain_rate_units_per_s"`
	// LastRetryAfterS is the most recent Retry-After hint issued to a
	// refused request, in seconds. Zero until the first rejection.
	LastRetryAfterS float64 `json:"last_retry_after_s"`
}

// Stats returns the limiter counters (zero for a nil limiter).
func (l *Limiter) Stats() Stats {
	if l == nil {
		return Stats{}
	}
	return Stats{
		Limit:           l.limit,
		Inflight:        l.inflight.Load(),
		Admitted:        l.admitted.Load(),
		Rejected:        l.rejected.Load(),
		DrainRatePerSec: l.drainRate(),
		LastRetryAfterS: time.Duration(l.lastRetryAfter.Load()).Seconds(),
	}
}

// Collect adapts the limiter's Stats into /metrics families. Nil-safe:
// a nil limiter emits nothing, so an unconfigured process simply lacks
// the spo_admission_* families.
func (l *Limiter) Collect(w *obs.MetricWriter) {
	if l == nil {
		return
	}
	st := l.Stats()
	w.Gauge("spo_admission_limit_units", "Configured in-flight cost-unit capacity.", float64(st.Limit))
	w.Gauge("spo_admission_inflight_units", "Cost units currently admitted and in flight.", float64(st.Inflight))
	w.Counter("spo_admission_admitted_total", "Requests admitted.", float64(st.Admitted))
	w.Counter("spo_admission_rejected_total", "Requests refused with 429.", float64(st.Rejected))
	w.Gauge("spo_admission_drain_rate_units_per_second", "Observed cost-unit release rate over the sliding window.", st.DrainRatePerSec)
	w.Gauge("spo_admission_last_retry_after_seconds", "Most recent Retry-After hint issued.", st.LastRetryAfterS)
}

func (l *Limiter) clamp(cost int64) int64 {
	if cost < 1 {
		return 1
	}
	if cost > l.limit {
		return l.limit
	}
	return cost
}
