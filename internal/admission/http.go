package admission

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// MaxCostPeek bounds how much of a priced request body the admission
// layer reads to cost it; it matches the handlers' own MaxBytesReader
// cap, so any body the peek cannot fully read is one the handler will
// refuse anyway.
const MaxCostPeek = 1 << 20

// oversizeCost prices a body larger than MaxCostPeek: the largest S·T a
// MaxCostPeek-byte body could encode (a vertex id is at least two bytes —
// digit plus separator — so at most MaxCostPeek/2 ids, at worst split
// evenly between sources and targets). Underpricing is the failure mode
// that matters here: a truncated peek used to fail JSON decoding and fall
// through to unit cost, letting arbitrarily large (soon-to-be-413) bodies
// through an admission gate that thought they were scalar lookups. The
// limiter clamps this to its full capacity, so an oversized body briefly
// occupies the whole gate — conservative, and exactly as long as the
// handler takes to reject it.
const oversizeCost = int64(MaxCostPeek/4) * int64(MaxCostPeek/4)

// Middleware bounds in-flight query work on lim: engine-work routes are
// priced by RequestCost and refused with 429 + Retry-After when they do
// not fit (see the package comment for the cost model and the hint
// derivation). Status and listing routes are never limited. A nil limiter
// passes everything through untouched.
func Middleware(h http.Handler, lim *Limiter) http.Handler {
	if lim == nil {
		return h
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !IsQueryRoute(r.URL.Path) {
			h.ServeHTTP(w, r)
			return
		}
		cost := RequestCost(r)
		if !lim.TryAcquire(cost) {
			secs := int64(lim.RetryAfter(cost) / time.Second)
			w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
			http.Error(w, "query capacity exhausted (-max-inflight)", http.StatusTooManyRequests)
			return
		}
		defer lim.Release(cost)
		h.ServeHTTP(w, r)
	})
}

// RequestCost prices one admitted request in cost units — the engine work
// it buys. Point queries (/dist, /path, /tree) are 1 unit; a /multi of S
// sources is S units (S full distance vectors); a /matrix of S×T is S·T.
// /nearest is 1 unit regardless of fan-in: it runs one joint exploration.
// Bodied routes are peeked and the body restored for the handler; an
// unparseable or empty body prices at 1 and is rejected downstream with a
// 400 — pricing must never consume the body for good or invent cost out
// of garbage. A body larger than MaxCostPeek prices at the conservative
// oversizeCost (see above) instead of falling through to 1.
func RequestCost(r *http.Request) int64 {
	verb := queryVerb(r.URL.Path)
	if (verb != "matrix" && verb != "multi") || r.Body == nil {
		return 1
	}
	peek, err := io.ReadAll(io.LimitReader(r.Body, MaxCostPeek+1))
	if err != nil {
		r.Body.Close()
		r.Body = io.NopCloser(bytes.NewReader(peek))
		return 1
	}
	if len(peek) > MaxCostPeek {
		// Too big to price exactly; splice the peeked prefix back in front
		// of the unread remainder so the handler sees the original stream
		// (and its MaxBytesReader refuses it with the request's own size,
		// not the peek's).
		r.Body = restoredBody{io.MultiReader(bytes.NewReader(peek), r.Body), r.Body}
		return oversizeCost
	}
	r.Body.Close()
	r.Body = io.NopCloser(bytes.NewReader(peek))
	var req struct {
		Sources []int32 `json:"sources"`
		Targets []int32 `json:"targets"`
	}
	if json.Unmarshal(peek, &req) != nil {
		return 1
	}
	cost := int64(len(req.Sources))
	if verb == "matrix" {
		cost *= int64(len(req.Targets))
	}
	if cost < 1 {
		return 1
	}
	return cost
}

// restoredBody is an un-drained request body re-assembled from a peeked
// prefix and the original stream; Close closes the underlying body.
type restoredBody struct {
	io.Reader
	closer io.Closer
}

func (b restoredBody) Close() error { return b.closer.Close() }

// IsQueryRoute marks the engine-work routes the admission limiter guards:
// legacy /dist and /path plus their /graphs/{name}/… forms, and the bodied
// many-to-many routes (/matrix, /multi, /nearest — an S×T matrix is the
// most engine work a single request can ask for, so it must sit under the
// same admission cap), plus /tree. The /graphs form requires a name
// segment between /graphs/ and the verb, so the status route of a graph
// that happens to be named "dist" (GET /graphs/dist) is never limited.
func IsQueryRoute(p string) bool {
	return p == "/dist" || p == "/path" || queryVerb(p) != ""
}

// queryVerb extracts the query verb of a /graphs/{name}/{verb} path (""
// for status, listing, and malformed paths).
func queryVerb(p string) string {
	rest, ok := strings.CutPrefix(p, "/graphs/")
	if !ok {
		return ""
	}
	name, verb, ok := strings.Cut(rest, "/")
	if !ok || name == "" {
		return ""
	}
	switch verb {
	case "dist", "path", "matrix", "multi", "nearest", "tree":
		return verb
	}
	return ""
}
