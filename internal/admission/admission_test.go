package admission

import (
	"sync"
	"testing"
	"time"
)

// fakeClock pins the limiter's notion of "now" for drain-rate tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestNilLimiterAdmitsEverything(t *testing.T) {
	var l *Limiter = New(0)
	if l != nil {
		t.Fatal("New(0) should be nil (unlimited)")
	}
	if !l.TryAcquire(1_000_000) {
		t.Fatal("nil limiter refused")
	}
	l.Release(1_000_000)
	if l.RetryAfter(1) != 0 || l.Inflight() != 0 || l.Limit() != 0 {
		t.Fatal("nil limiter methods not no-ops")
	}
}

// TestWeightedAdmission: costs count against the limit as units, not
// requests — a 6-unit matrix and a 4-unit matrix fill a 10-unit limiter,
// a 1-unit query is then refused, and releasing the 6 re-admits it.
func TestWeightedAdmission(t *testing.T) {
	l := New(10)
	if !l.TryAcquire(6) || !l.TryAcquire(4) {
		t.Fatal("initial acquires refused")
	}
	if l.TryAcquire(1) {
		t.Fatal("acquire beyond limit admitted")
	}
	if got := l.Inflight(); got != 10 {
		t.Fatalf("inflight = %d, want 10", got)
	}
	l.Release(6)
	if !l.TryAcquire(1) {
		t.Fatal("acquire after release refused")
	}
	st := l.Stats()
	if st.Admitted != 3 || st.Rejected != 1 || st.Inflight != 5 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestOversizedCostClamped: a request costing more than the whole limit
// is clamped to the limit — admittable on an empty limiter, never
// permanently starved.
func TestOversizedCostClamped(t *testing.T) {
	l := New(8)
	if !l.TryAcquire(100) {
		t.Fatal("oversized request on empty limiter refused")
	}
	if l.TryAcquire(1) {
		t.Fatal("limiter should be full")
	}
	l.Release(100)
	if got := l.Inflight(); got != 0 {
		t.Fatalf("inflight after symmetric release = %d, want 0", got)
	}
}

// TestRetryAfterFromDrainRate: the hint tracks the observed drain. With
// ~100 units/s draining and 50 units needed, the wait is 1s (clamped
// floor); with 5 units/s and 50 needed it is ~10s.
func TestRetryAfterFromDrainRate(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	l := New(50)
	l.now = clk.now

	// Saturate.
	if !l.TryAcquire(50) {
		t.Fatal("saturating acquire refused")
	}
	// No drain observed yet: optimistic 1s default.
	if got := l.RetryAfter(1); got != time.Second {
		t.Fatalf("retry-after with no history = %v, want 1s", got)
	}
	// Drain 5 units/s for 4 seconds (re-acquiring to stay saturated).
	for i := 0; i < 4; i++ {
		clk.advance(time.Second)
		l.Release(5)
		if !l.TryAcquire(5) {
			t.Fatal("re-acquire refused")
		}
	}
	clk.advance(time.Second)
	// Need 50 units at ~5 units/s ≈ 10s.
	got := l.RetryAfter(50)
	if got < 5*time.Second || got > 20*time.Second {
		t.Fatalf("retry-after = %v, want ≈10s", got)
	}
	// A cheap query needs only 1 unit ≈ 1s at 5 units/s (floor 1s).
	if got := l.RetryAfter(1); got != time.Second {
		t.Fatalf("cheap retry-after = %v, want 1s", got)
	}
}

// TestRetryAfterColdStartClamp is the regression test for the cold-start
// clamp: whenever the release ring has observed zero drain — the first
// second after start, or after an idle gap longer than the ring window —
// the derived rate is 0 and the hint must still come out ≥ 1s, never
// "Retry-After: 0" (which tells refused clients to hammer back
// immediately). The floor must also hold right after a second rolls over,
// when the partial-second exclusion can zero the rate even under traffic.
func TestRetryAfterColdStartClamp(t *testing.T) {
	clk := &fakeClock{t: time.Unix(5000, 0)}
	l := New(4)
	l.now = clk.now

	// Cold start: saturated before anything has ever drained.
	if !l.TryAcquire(4) {
		t.Fatal("saturating acquire refused")
	}
	for _, cost := range []int64{1, 4, 100} {
		if got := l.RetryAfter(cost); got < time.Second {
			t.Fatalf("cold-start RetryAfter(%d) = %v, want ≥ 1s", cost, got)
		}
	}

	// Some drain happens, then an idle gap longer than the ring window:
	// every observation ages out and the rate is 0 again.
	l.Release(4)
	clk.advance(time.Second)
	if !l.TryAcquire(4) {
		t.Fatal("re-acquire refused")
	}
	clk.advance((ringSeconds + 2) * time.Second)
	if rate := l.drainRate(); rate != 0 {
		t.Fatalf("drain rate after idle gap = %v, want 0", rate)
	}
	if got := l.RetryAfter(1); got < time.Second {
		t.Fatalf("post-idle RetryAfter = %v, want ≥ 1s", got)
	}

	// Fresh second roll-over: the current partial second is excluded from
	// the rate, so drain recorded "now" must not break the floor either.
	l.Release(1)
	if !l.TryAcquire(1) {
		t.Fatal("re-acquire refused")
	}
	if got := l.RetryAfter(1); got < time.Second {
		t.Fatalf("partial-second RetryAfter = %v, want ≥ 1s", got)
	}
}

// TestConcurrentAcquireRelease races admissions (run with -race): the
// invariant inflight ∈ [0, limit] must hold throughout and settle at 0.
func TestConcurrentAcquireRelease(t *testing.T) {
	l := New(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(cost int64) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if l.TryAcquire(cost) {
					if in := l.Inflight(); in < 0 || in > 16 {
						t.Errorf("inflight %d out of [0,16]", in)
					}
					l.Release(cost)
				}
			}
		}(int64(g%3 + 1))
	}
	wg.Wait()
	if got := l.Inflight(); got != 0 {
		t.Fatalf("inflight settled at %d, want 0", got)
	}
}
