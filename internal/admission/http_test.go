package admission

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestMiddleware drives the weighted admission gate end to end: with
// limit 1 and one query parked inside the handler, a second query gets
// 429 + Retry-After immediately, while status routes pass untouched;
// after the first query finishes, capacity frees up again.
func TestMiddleware(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	inner := http.NewServeMux()
	inner.HandleFunc("/graphs/g/dist", func(w http.ResponseWriter, r *http.Request) {
		once.Do(func() {
			close(entered)
			<-release
		})
		w.Write([]byte("ok"))
	})
	inner.HandleFunc("/graphs", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("listing"))
	})
	srv := httptest.NewServer(Middleware(inner, New(1)))
	defer srv.Close()

	firstDone := make(chan error, 1)
	go func() {
		resp, err := http.Get(srv.URL + "/graphs/g/dist?source=0")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				err = fmt.Errorf("status %s", resp.Status)
			}
		}
		firstDone <- err
	}()
	<-entered

	// Saturated: the next query is refused with 429 + Retry-After.
	resp, err := http.Get(srv.URL + "/graphs/g/dist?source=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated query: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	// Status routes are never limited.
	resp, err = http.Get(srv.URL + "/graphs")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("listing under saturation: %d", resp.StatusCode)
	}

	close(release)
	if err := <-firstDone; err != nil {
		t.Fatalf("parked query: %v", err)
	}
	// Capacity freed: queries flow again.
	resp, err = http.Get(srv.URL + "/graphs/g/dist?source=2")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after release: %d", resp.StatusCode)
	}
}

// TestIsQueryRoute pins the limiter's route classification, including the
// graph-named-"dist" corner: status routes are never limited.
func TestIsQueryRoute(t *testing.T) {
	for p, want := range map[string]bool{
		"/dist":                true,
		"/path":                true,
		"/graphs/ny/dist":      true,
		"/graphs/ny/path":      true,
		"/graphs/ny/matrix":    true,
		"/graphs/ny/multi":     true,
		"/graphs/ny/nearest":   true,
		"/graphs/ny/tree":      true,
		"/graphs":              false,
		"/graphs/dist":         false, // a graph literally named "dist"
		"/graphs/path":         false,
		"/graphs/matrix":       false, // a graph literally named "matrix"
		"/graphs/ny/stats":     false,
		"/graphs/ny/ready":     false,
		"/healthz":             false,
		"/graphs/ny/dist/deep": false,
	} {
		if got := IsQueryRoute(p); got != want {
			t.Errorf("IsQueryRoute(%q) = %v, want %v", p, got, want)
		}
	}
}

// TestRequestCost pins the admission pricing: a point query is 1 unit, an
// S×T matrix is S·T units, a /multi of S sources is S units — and pricing
// must peek the body without consuming it (the handler still needs to
// decode it).
func TestRequestCost(t *testing.T) {
	if got := RequestCost(httptest.NewRequest("GET", "/graphs/g/dist?source=0", nil)); got != 1 {
		t.Fatalf("dist cost = %d, want 1", got)
	}
	body := `{"sources":[1,2,3],"targets":[4,5,6,7]}`
	req := httptest.NewRequest("POST", "/graphs/g/matrix", bytes.NewBufferString(body))
	if got := RequestCost(req); got != 12 {
		t.Fatalf("matrix cost = %d, want 12 (3×4)", got)
	}
	restored := new(bytes.Buffer)
	if _, err := restored.ReadFrom(req.Body); err != nil {
		t.Fatal(err)
	}
	if restored.String() != body {
		t.Fatalf("body not restored after pricing: %q", restored.String())
	}
	if got := RequestCost(httptest.NewRequest("POST", "/graphs/g/multi",
		bytesBody(`{"sources":[1,2,3]}`))); got != 3 {
		t.Fatalf("multi cost = %d, want 3", got)
	}
	// /nearest runs one joint exploration regardless of fan-in: 1 unit.
	if got := RequestCost(httptest.NewRequest("POST", "/graphs/g/nearest",
		bytesBody(`{"sources":[1,2,3]}`))); got != 1 {
		t.Fatalf("nearest cost = %d, want 1", got)
	}
	// Garbage bodies price at 1 — the handler rejects them with a 400.
	if got := RequestCost(httptest.NewRequest("POST", "/graphs/g/matrix", bytesBody("not json"))); got != 1 {
		t.Fatalf("garbage matrix cost = %d, want 1", got)
	}
	// Empty source/target lists never price at 0.
	if got := RequestCost(httptest.NewRequest("POST", "/graphs/g/matrix",
		bytesBody(`{"sources":[],"targets":[]}`))); got != 1 {
		t.Fatalf("empty matrix cost = %d, want 1", got)
	}
}

func bytesBody(s string) io.Reader { return bytes.NewBufferString(s) }

// TestRequestCostOversizedBody is the regression test for the body-peek
// cap bug: a /matrix body larger than MaxCostPeek used to fail the
// truncated JSON decode and fall through to unit cost — an arbitrarily
// large request priced like a scalar lookup. It must price at the
// conservative oversize cost instead, and the handler must still see the
// complete original body.
func TestRequestCostOversizedBody(t *testing.T) {
	// A syntactically valid body comfortably past the 1 MiB peek cap.
	var sb strings.Builder
	sb.WriteString(`{"sources":[0`)
	for sb.Len() < MaxCostPeek+4096 {
		sb.WriteString(",1,2,3,4,5,6,7,8,9")
	}
	sb.WriteString(`],"targets":[0]}`)
	body := sb.String()

	req := httptest.NewRequest("POST", "/graphs/g/matrix", bytesBody(body))
	got := RequestCost(req)
	if got != oversizeCost {
		t.Fatalf("oversized matrix cost = %d, want oversizeCost %d", got, oversizeCost)
	}
	// The peeked prefix must be spliced back: the handler reads the whole
	// original stream (so its MaxBytesReader sees the true size).
	restored, err := io.ReadAll(req.Body)
	if err != nil {
		t.Fatal(err)
	}
	if string(restored) != body {
		t.Fatalf("oversized body not restored: got %d bytes, want %d", len(restored), len(body))
	}

	// The limiter clamps the oversize price to its whole capacity: while
	// such a request is in flight nothing else is admitted, and it is
	// admitted at all only against an otherwise-empty gate.
	lim := New(64)
	if !lim.TryAcquire(oversizeCost) {
		t.Fatal("oversize request not admitted against an empty limiter")
	}
	if lim.TryAcquire(1) {
		t.Fatal("unit query admitted alongside an oversize body")
	}
	lim.Release(oversizeCost)
	if !lim.TryAcquire(1) {
		t.Fatal("capacity not restored after oversize release")
	}
	lim.Release(1)
}
