// Package core is the public API of the reproduction: deterministic
// (1+ε)-approximate shortest paths in the work-depth (PRAM) model, per
// Elkin & Matar, "Deterministic PRAM Approximate Shortest Paths in
// Polylogarithmic Time and Slightly Super-Linear Work" (SPAA 2021).
//
// A Solver wraps a graph and a deterministic hopset (Theorem 3.7) and
// answers single-source, multi-source (Theorem 3.8 / C.3) and
// shortest-path-tree (Theorem 4.6 / D.2) queries. All results are
// deterministic: rebuilding with any number of workers yields identical
// hopsets, distances and trees.
//
//	g := graph.Gnm(1000, 5000, graph.UniformWeights(1, 10), 42)
//	s, err := core.New(g, core.Options{Epsilon: 0.25})
//	dist, err := s.ApproxDistances(0)
package core

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/adj"
	"repro/internal/graph"
	"repro/internal/hopset"
	"repro/internal/pathrep"
	"repro/internal/pram"
	"repro/internal/relax"
	"repro/internal/scaling"
)

// Options configures a Solver. The zero value of every field selects a
// sensible default; Epsilon is the only mandatory field.
type Options struct {
	// Epsilon is the stretch target: returned distances are within a
	// (1+Epsilon) factor of exact. Must be in (0, 1).
	Epsilon float64
	// Kappa (κ ≥ 2, default 3) trades hopset size (≈ n^{1+1/κ} per scale)
	// against the hopbound.
	Kappa int
	// Rho (0 < ρ < 1/2, default 1/3) trades work (≈ |E|·n^ρ) against the
	// number of phases.
	Rho float64
	// EffectiveBeta caps exploration and query hop budgets (0 = auto).
	EffectiveBeta int
	// PathReporting enables SPT queries (§4) at the cost of storing a
	// realizing path per hopset edge.
	PathReporting bool
	// WeightReduction applies the Klein–Sairam reduction (Appendix C/D),
	// removing the aspect-ratio dependence; choose it when edge weights
	// span many orders of magnitude.
	WeightReduction bool
	// StrictWeights uses the paper's closed-form pessimistic hopset edge
	// weights instead of tight discovered path lengths. Not available
	// together with WeightReduction.
	StrictWeights bool
	// Tracker, when non-nil, accumulates PRAM depth/work accounting.
	Tracker *pram.Tracker
	// Progress, when non-nil, receives a report after every completed
	// hopset scale during New/NewCtx. It is called from the building
	// goroutine; keep it fast.
	Progress func(hopset.Progress)
}

// Solver answers approximate shortest-path queries over a fixed graph.
//
// After New returns, every field is immutable: queries only read the
// hopset and the combined G ∪ H adjacency, and all per-query state is
// freshly allocated or pooled, so a Solver is safe for concurrent use and
// concurrent queries return bit-identical results to sequential ones.
type Solver struct {
	opts Options
	h    *hopset.Hopset
	ks   *scaling.Result
	a    *adj.Adj
	// budget is the default query hop budget.
	budget int
	// relaxCtr accumulates the relaxation engine's scanned-arc and
	// kernel-choice statistics across every query this solver answers.
	relaxCtr relax.Counters
}

// ErrNeedPathReporting is returned by SPT when the solver was built
// without Options.PathReporting.
var ErrNeedPathReporting = errors.New("core: SPT queries require Options.PathReporting")

// ErrVertexOutOfRange is wrapped by every query that receives a vertex id
// outside [0, n).
var ErrVertexOutOfRange = errors.New("core: vertex out of range")

// New builds the hopset for g and returns a query-ready solver.
func New(g *graph.Graph, opts Options) (*Solver, error) {
	return NewCtx(context.Background(), g, opts)
}

// NewCtx is New with cooperative cancellation: the hopset construction —
// the dominant cost — checks ctx between scales and aborts with ctx.Err()
// when it is canceled. Registry-style callers use this to take builds off
// the request path and cancel ones nobody needs anymore.
func NewCtx(ctx context.Context, g *graph.Graph, opts Options) (*Solver, error) {
	if opts.WeightReduction && opts.StrictWeights {
		return nil, errors.New("core: StrictWeights is not supported with WeightReduction")
	}
	s := &Solver{opts: opts}
	if opts.WeightReduction {
		// The reduction builds many per-scale hopsets internally; it does
		// not thread a context yet, so cancellation is checked at its
		// boundaries only.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		r, err := scaling.Build(g, scaling.Params{
			Epsilon: opts.Epsilon, Kappa: opts.Kappa, Rho: opts.Rho,
			EffectiveBeta: opts.EffectiveBeta, RecordPaths: opts.PathReporting,
		}, opts.Tracker)
		if err != nil {
			return nil, err
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		s.ks = r
		s.h = r.H
		s.budget = 6*s.h.Sched.HopBudget()*(s.h.Sched.Ell+2) + 5
	} else {
		wm := hopset.WeightTight
		if opts.StrictWeights {
			wm = hopset.WeightStrict
		}
		h, err := hopset.BuildCtx(ctx, g, hopset.Params{
			Epsilon: opts.Epsilon, Kappa: opts.Kappa, Rho: opts.Rho,
			EffectiveBeta: opts.EffectiveBeta, RecordPaths: opts.PathReporting,
			Weights: wm,
		}, opts.Tracker, opts.Progress)
		if err != nil {
			return nil, err
		}
		s.h = h
		s.budget = s.h.Sched.HopBudget() * (s.h.Sched.Ell + 2)
	}
	s.a = adj.Build(s.h.G, s.h.Extras())
	return s, nil
}

// Attach wraps an already-built hopset (typically decoded from a snapshot
// via hopset.Decode) in a query-ready Solver without rebuilding anything.
// Build-shaping options are recovered from h.Params; tr may be nil.
// Hopsets assembled by the Klein–Sairam reduction are not supported: their
// query budget depends on reduction state the hopset does not carry.
func Attach(h *hopset.Hopset, tr *pram.Tracker) (*Solver, error) {
	if h == nil || h.Sched == nil {
		return nil, errors.New("core: Attach needs a hopset with a schedule")
	}
	if h.Assembled {
		return nil, errors.New("core: Attach does not support assembled (Klein–Sairam) hopsets; their query budget is not recoverable from the hopset")
	}
	s := &Solver{
		opts: Options{
			Epsilon: h.Params.Epsilon, Kappa: h.Params.Kappa, Rho: h.Params.Rho,
			EffectiveBeta: h.Params.EffectiveBeta,
			PathReporting: h.Params.RecordPaths,
			StrictWeights: h.Params.Weights == hopset.WeightStrict,
			Tracker:       tr,
		},
		h: h,
	}
	s.budget = h.Sched.HopBudget() * (h.Sched.Ell + 2)
	s.a = adj.Build(h.G, h.Extras())
	return s, nil
}

// Hopset exposes the underlying hopset (provenance, ledger, schedule).
func (s *Solver) Hopset() *hopset.Hopset { return s.h }

// Reduction exposes the Klein–Sairam ledgers (nil unless WeightReduction).
func (s *Solver) Reduction() *scaling.Result { return s.ks }

// HopBudget returns the query-time round budget the solver uses.
func (s *Solver) HopBudget() int { return s.budget }

// RelaxStats returns the relaxation engine's cumulative per-query
// accounting: explorations answered, arcs actually scanned, and how many
// rounds ran on the dense vs the frontier-sparse kernel.
func (s *Solver) RelaxStats() relax.CounterSnapshot { return s.relaxCtr.Snapshot() }

// run executes one engine exploration with the solver's instrumentation.
func (s *Solver) run(sources []int32) *relax.Result {
	return relax.Run(s.a, sources, s.budget, relax.Options{
		Tracker:  s.opts.Tracker,
		Counters: &s.relaxCtr,
	})
}

// ApproxDistances returns (1+ε)-approximate distances from source to every
// vertex, in the input graph's weight units (+Inf for unreachable
// vertices). This is the (1+ε)-aSSSD query of Theorem 3.8.
func (s *Solver) ApproxDistances(source int32) ([]float64, error) {
	if err := s.checkVertex(source); err != nil {
		return nil, err
	}
	res := s.run([]int32{source})
	return s.rescale(res.Dist), nil
}

// ApproxMultiSource answers the aMSSD problem of Theorem 3.8: approximate
// distances from every source in S. Row i corresponds to sources[i]. The
// rows run on the word-parallel batched kernel — up to relax.MaxBatch
// sources share each graph traversal — and are bit-identical to running
// them one at a time.
func (s *Solver) ApproxMultiSource(sources []int32) ([][]float64, error) {
	for _, src := range sources {
		if err := s.checkVertex(src); err != nil {
			return nil, err
		}
	}
	lanes := relax.RunBatch(s.a, sources, s.budget, relax.Options{
		Tracker:  s.opts.Tracker,
		Counters: &s.relaxCtr,
	})
	out := make([][]float64, len(sources))
	for i, res := range lanes {
		out[i] = s.rescale(res.Dist)
	}
	return out, nil
}

// NearestSource returns, per vertex, the approximate distance to the
// nearest of the given sources (one joint exploration).
func (s *Solver) NearestSource(sources []int32) ([]float64, error) {
	if len(sources) == 0 {
		return nil, errors.New("core: need at least one source")
	}
	for _, src := range sources {
		if err := s.checkVertex(src); err != nil {
			return nil, err
		}
	}
	res := s.run(sources)
	return s.rescale(res.Dist), nil
}

// NearestSourceOffsets is NearestSource with a per-source starting cost:
// the returned value at v approximates min_i offsets[i] + d(sources[i], v).
// It behaves exactly like attaching a virtual super-source to sources[i]
// by an edge of weight offsets[i] — the continuation query a sharded
// router needs when a search enters this solver's graph with the cost to
// reach its boundary already paid. Offsets must be non-negative (+Inf
// skips the source; at least one must be finite for a non-trivial answer).
// Offsets and results are in input-graph units.
func (s *Solver) NearestSourceOffsets(sources []int32, offsets []float64) ([]float64, error) {
	if len(sources) == 0 {
		return nil, errors.New("core: need at least one source")
	}
	if len(sources) != len(offsets) {
		return nil, fmt.Errorf("%w: %d sources with %d offsets", relax.ErrLengthMismatch, len(sources), len(offsets))
	}
	for i, src := range sources {
		if err := s.checkVertex(src); err != nil {
			return nil, err
		}
		if math.IsNaN(offsets[i]) || offsets[i] < 0 {
			return nil, fmt.Errorf("core: offset %v for source %d (need non-negative)", offsets[i], src)
		}
	}
	// Internal distances are in normalized units; map the offsets in and
	// the labels back out (+Inf is preserved by the division).
	scaled := offsets
	if s.h.ScaleFactor != 1 {
		scaled = make([]float64, len(offsets))
		for i, o := range offsets {
			scaled[i] = o / s.h.ScaleFactor
		}
	}
	res, err := relax.RunOffsets(s.a, sources, scaled, s.budget, relax.Options{
		Tracker:  s.opts.Tracker,
		Counters: &s.relaxCtr,
	})
	if err != nil {
		return nil, err
	}
	return s.rescale(res.Dist), nil
}

// SPT computes a (1+ε)-approximate shortest-path tree rooted at source,
// with tree edges drawn from the original graph (Theorem 4.6 / D.2).
// Requires Options.PathReporting. Distances in the returned tree are in
// the input graph's units.
func (s *Solver) SPT(source int32) (*pathrep.SPT, error) {
	if !s.opts.PathReporting {
		return nil, ErrNeedPathReporting
	}
	if err := s.checkVertex(source); err != nil {
		return nil, err
	}
	spt, err := pathrep.BuildSPTOn(s.h, s.a, source, s.budget, s.opts.Tracker)
	if err != nil {
		return nil, err
	}
	s.relaxCtr.Add(spt.Relax)
	spt.Dist = s.rescale(spt.Dist)
	for v := range spt.ParentW {
		spt.ParentW[v] *= s.h.ScaleFactor
	}
	spt.Scale = s.h.ScaleFactor
	return spt, nil
}

// ApproxPath returns a concrete u–v path in the original graph whose
// length is within (1+ε) of the true distance, together with that length
// (§1.3's path-retrieval query, answered through the explicit SPT
// mechanism of §4). Returns a nil path when v is unreachable from u.
// Requires Options.PathReporting.
func (s *Solver) ApproxPath(u, v int32) ([]int32, float64, error) {
	if !s.opts.PathReporting {
		return nil, 0, ErrNeedPathReporting
	}
	if err := s.checkVertex(u); err != nil {
		return nil, 0, err
	}
	if err := s.checkVertex(v); err != nil {
		return nil, 0, err
	}
	tree, err := s.SPT(u)
	if err != nil {
		return nil, 0, err
	}
	path := tree.PathTo(v)
	if path == nil {
		return nil, math.Inf(1), nil
	}
	return path, tree.Dist[v], nil
}

// N returns the number of vertices of the underlying graph.
func (s *Solver) N() int { return s.h.G.N }

// PathReporting reports whether the solver supports SPT and path queries.
func (s *Solver) PathReporting() bool { return s.opts.PathReporting }

func (s *Solver) checkVertex(v int32) error {
	if v < 0 || int(v) >= s.h.G.N {
		return fmt.Errorf("%w: vertex %d not in [0,%d)", ErrVertexOutOfRange, v, s.h.G.N)
	}
	return nil
}

// rescale converts normalized distances back to input units, in place.
func (s *Solver) rescale(d []float64) []float64 {
	if s.h.ScaleFactor != 1 {
		for i := range d {
			d[i] *= s.h.ScaleFactor
		}
	}
	return d
}
