package core

import (
	"math"
	"testing"

	"repro/internal/exact"
	"repro/internal/graph"
	"repro/internal/pram"
)

func TestApproxDistancesWithinEpsilon(t *testing.T) {
	eps := 0.25
	g := graph.Gnm(150, 600, graph.UniformWeights(2, 20), 1) // non-unit min weight: exercises rescaling
	s, err := New(g, Options{Epsilon: eps})
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range []int32{0, 75, 149} {
		got, err := s.ApproxDistances(src)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := exact.DijkstraGraph(g, src) // original units
		for v := 0; v < g.N; v++ {
			if math.IsInf(want[v], 1) {
				if !math.IsInf(got[v], 1) {
					t.Fatalf("vertex %d should be unreachable", v)
				}
				continue
			}
			if got[v] < want[v]-1e-6 {
				t.Fatalf("src %d vertex %d: %v below exact %v", src, v, got[v], want[v])
			}
			if got[v] > (1+eps)*want[v]+1e-6 {
				t.Fatalf("src %d vertex %d: %v exceeds (1+ε)·%v", src, v, got[v], want[v])
			}
		}
	}
}

func TestMultiSource(t *testing.T) {
	eps := 0.3
	g := graph.Grid(10, 10, graph.UniformWeights(1, 4), 2)
	s, err := New(g, Options{Epsilon: eps})
	if err != nil {
		t.Fatal(err)
	}
	sources := []int32{0, 55, 99}
	rows, err := s.ApproxMultiSource(sources)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(sources) {
		t.Fatalf("rows=%d", len(rows))
	}
	for i, src := range sources {
		want, _ := exact.DijkstraGraph(g, src)
		for v := 0; v < g.N; v++ {
			if rows[i][v] < want[v]-1e-6 || rows[i][v] > (1+eps)*want[v]+1e-6 {
				t.Fatalf("source %d vertex %d: %v vs exact %v", src, v, rows[i][v], want[v])
			}
		}
	}
}

func TestNearestSource(t *testing.T) {
	g := graph.Path(40, graph.UnitWeights(), 1)
	s, err := New(g, Options{Epsilon: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	d, err := s.NearestSource([]int32{0, 39})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 40; v++ {
		want := math.Min(float64(v), float64(39-v))
		if d[v] < want-1e-9 || d[v] > 1.25*want+1e-9 {
			t.Fatalf("vertex %d: %v want ≈%v", v, d[v], want)
		}
	}
	if _, err := s.NearestSource(nil); err == nil {
		t.Fatal("empty sources accepted")
	}
}

func TestSPTQuery(t *testing.T) {
	eps := 0.25
	g := graph.Gnm(100, 350, graph.UniformWeights(3, 30), 3)
	s, err := New(g, Options{Epsilon: eps, PathReporting: true})
	if err != nil {
		t.Fatal(err)
	}
	spt, err := s.SPT(0)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := exact.DijkstraGraph(g, 0)
	for v := 0; v < g.N; v++ {
		if spt.Dist[v] < want[v]-1e-6 || spt.Dist[v] > (1+eps)*want[v]+1e-6 {
			t.Fatalf("vertex %d: tree dist %v vs exact %v", v, spt.Dist[v], want[v])
		}
		// Parent edges carry original-unit weights from the input graph.
		if p := spt.Parent[v]; p >= 0 {
			w, ok := g.HasEdge(p, int32(v))
			if !ok || math.Abs(w-spt.ParentW[v]) > 1e-6 {
				t.Fatalf("vertex %d: parent edge (%d,%d) w=%v recorded %v ok=%v", v, p, v, w, spt.ParentW[v], ok)
			}
		}
	}
}

func TestApproxPath(t *testing.T) {
	eps := 0.25
	g := graph.Gnm(90, 280, graph.UniformWeights(1, 6), 8)
	s, err := New(g, Options{Epsilon: eps, PathReporting: true})
	if err != nil {
		t.Fatal(err)
	}
	path, length, err := s.ApproxPath(3, 77)
	if err != nil {
		t.Fatal(err)
	}
	if path[0] != 3 || path[len(path)-1] != 77 {
		t.Fatalf("endpoints %v", path)
	}
	var sum float64
	for i := 1; i < len(path); i++ {
		w, ok := g.HasEdge(path[i-1], path[i])
		if !ok {
			t.Fatalf("step (%d,%d) not a graph edge", path[i-1], path[i])
		}
		sum += w
	}
	if math.Abs(sum-length) > 1e-6 {
		t.Fatalf("reported length %v, path weighs %v", length, sum)
	}
	want, _ := exact.DijkstraGraph(g, 3)
	if length < want[77]-1e-6 || length > (1+eps)*want[77]+1e-6 {
		t.Fatalf("length %v vs exact %v", length, want[77])
	}
	// Unreachable pair.
	g2 := graph.MustFromEdges(3, []graph.Edge{graph.E(0, 1, 1)})
	s2, err := New(g2, Options{Epsilon: eps, PathReporting: true})
	if err != nil {
		t.Fatal(err)
	}
	p2, l2, err := s2.ApproxPath(0, 2)
	if err != nil || p2 != nil || !math.IsInf(l2, 1) {
		t.Fatalf("unreachable pair: %v %v %v", p2, l2, err)
	}
	// Without path reporting.
	s3, err := New(g, Options{Epsilon: eps})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s3.ApproxPath(0, 1); err != ErrNeedPathReporting {
		t.Fatalf("err=%v", err)
	}
}

func TestSPTRequiresPathReporting(t *testing.T) {
	g := graph.Path(16, graph.UnitWeights(), 1)
	s, err := New(g, Options{Epsilon: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.SPT(0); err != ErrNeedPathReporting {
		t.Fatalf("err=%v", err)
	}
}

func TestWeightReductionSolver(t *testing.T) {
	eps := 0.5
	g := graph.Gnm(90, 300, graph.GeometricScaleWeights(12), 4)
	s, err := New(g, Options{Epsilon: eps, WeightReduction: true})
	if err != nil {
		t.Fatal(err)
	}
	if s.Reduction() == nil {
		t.Fatal("reduction ledger missing")
	}
	got, err := s.ApproxDistances(0)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := exact.DijkstraGraph(g, 0)
	for v := 0; v < g.N; v++ {
		if got[v] < want[v]-1e-6 || got[v] > (1+eps)*want[v]+1e-6 {
			t.Fatalf("vertex %d: %v vs exact %v", v, got[v], want[v])
		}
	}
}

func TestWeightReductionSPT(t *testing.T) {
	eps := 0.5
	g := graph.Gnm(70, 210, graph.GeometricScaleWeights(9), 5)
	s, err := New(g, Options{Epsilon: eps, WeightReduction: true, PathReporting: true})
	if err != nil {
		t.Fatal(err)
	}
	spt, err := s.SPT(0)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := exact.DijkstraGraph(g, 0)
	for v := 0; v < g.N; v++ {
		if spt.Dist[v] < want[v]-1e-6 || spt.Dist[v] > (1+eps)*want[v]+1e-6 {
			t.Fatalf("vertex %d: %v vs exact %v", v, spt.Dist[v], want[v])
		}
	}
}

func TestOptionErrors(t *testing.T) {
	g := graph.Path(8, graph.UnitWeights(), 1)
	if _, err := New(g, Options{Epsilon: 0}); err == nil {
		t.Fatal("epsilon 0 accepted")
	}
	if _, err := New(g, Options{Epsilon: 0.25, WeightReduction: true, StrictWeights: true}); err == nil {
		t.Fatal("strict+reduction accepted")
	}
	s, err := New(g, Options{Epsilon: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ApproxDistances(-1); err == nil {
		t.Fatal("negative source accepted")
	}
	if _, err := s.ApproxDistances(8); err == nil {
		t.Fatal("out-of-range source accepted")
	}
	if _, err := s.ApproxMultiSource([]int32{0, 99}); err == nil {
		t.Fatal("bad multi-source accepted")
	}
}

func TestTrackerFlowsThrough(t *testing.T) {
	tr := pram.New()
	g := graph.Gnm(60, 180, graph.UnitWeights(), 6)
	s, err := New(g, Options{Epsilon: 0.25, Tracker: tr})
	if err != nil {
		t.Fatal(err)
	}
	build := tr.Snapshot()
	if build.Work == 0 {
		t.Fatal("no work accounted during build")
	}
	if _, err := s.ApproxDistances(0); err != nil {
		t.Fatal(err)
	}
	if q := tr.Sub(build); q.Work == 0 || q.Depth == 0 {
		t.Fatalf("no work accounted during query: %v", q)
	}
}

func TestStrictWeightsSolver(t *testing.T) {
	g := graph.Gnm(64, 200, graph.UnitWeights(), 7)
	s, err := New(g, Options{Epsilon: 0.25, StrictWeights: true})
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.ApproxDistances(0)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := exact.DijkstraGraph(g, 0)
	for v := 0; v < g.N; v++ {
		if got[v] < want[v]-1e-9 {
			t.Fatalf("vertex %d below exact", v)
		}
	}
}
