package core

import (
	"testing"

	"repro/internal/graph"
)

func TestAccessors(t *testing.T) {
	g := graph.Path(32, graph.UnitWeights(), 1)
	s, err := New(g, Options{Epsilon: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if s.Hopset() == nil {
		t.Fatal("Hopset() nil")
	}
	if s.Hopset().G.N != 32 {
		t.Fatalf("hopset graph n=%d", s.Hopset().G.N)
	}
	if s.HopBudget() <= 0 {
		t.Fatalf("budget=%d", s.HopBudget())
	}
	if s.Reduction() != nil {
		t.Fatal("reduction ledger should be nil without WeightReduction")
	}
}

func TestNearestSourceBadVertex(t *testing.T) {
	g := graph.Path(8, graph.UnitWeights(), 1)
	s, err := New(g, Options{Epsilon: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.NearestSource([]int32{0, 42}); err == nil {
		t.Fatal("out-of-range source accepted")
	}
}

func TestSPTBadVertex(t *testing.T) {
	g := graph.Path(8, graph.UnitWeights(), 1)
	s, err := New(g, Options{Epsilon: 0.25, PathReporting: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.SPT(-3); err == nil {
		t.Fatal("negative source accepted")
	}
	if _, _, err := s.ApproxPath(-1, 0); err == nil {
		t.Fatal("negative u accepted")
	}
	if _, _, err := s.ApproxPath(0, 99); err == nil {
		t.Fatal("out-of-range v accepted")
	}
}

func TestNewPropagatesBuildErrors(t *testing.T) {
	g := graph.Path(8, graph.UnitWeights(), 1)
	if _, err := New(g, Options{Epsilon: 0.25, Kappa: -2}); err == nil {
		t.Fatal("invalid kappa accepted")
	}
	if _, err := New(g, Options{Epsilon: 0.25, WeightReduction: true, Kappa: -2}); err == nil {
		t.Fatal("invalid kappa accepted through reduction")
	}
}
