// Package verify provides independent checkers for every guarantee the
// paper proves. They are deliberately implemented against ground truth
// (exact Dijkstra, materialized virtual graphs) rather than sharing code
// with the construction, so a bug in the construction cannot hide inside
// its own verifier. Used by the test suite, the experiment harness, and
// cmd/verify.
package verify

import (
	"fmt"
	"math"

	"repro/internal/adj"
	"repro/internal/cluster"
	"repro/internal/exact"
	"repro/internal/hopset"
	"repro/internal/limbfs"
	"repro/internal/pathrep"
	"repro/internal/relax"
)

// Report is the outcome of a verification pass.
type Report struct {
	Checked int     // individual facts checked
	Worst   float64 // worst observed ratio where applicable (e.g. stretch)
}

// Soundness verifies the no-shortcut invariant (Lemmas 2.3/2.9): every
// hopset edge weighs at least the true distance between its endpoints in
// the normalized base graph. This is the property that makes d_{G∪H} = d_G.
func Soundness(h *hopset.Hopset) (Report, error) {
	rep := Report{Worst: 1}
	byU := map[int32][]hopset.Edge{}
	for _, e := range h.Edges {
		byU[e.U] = append(byU[e.U], e)
	}
	for u, es := range byU {
		dist, _ := exact.DijkstraGraph(h.G, u)
		for _, e := range es {
			rep.Checked++
			if e.W < dist[e.V]-1e-9 {
				return rep, fmt.Errorf("edge (%d,%d) kind=%v scale=%d: weight %v below exact distance %v",
					e.U, e.V, e.Kind, e.Scale, e.W, dist[e.V])
			}
			if dist[e.V] > 0 {
				if r := e.W / dist[e.V]; r > rep.Worst {
					rep.Worst = r
				}
			}
		}
	}
	return rep, nil
}

// Stretch verifies Theorem 3.8's upper bound: from every given source, the
// budget-round Bellman–Ford distances over G ∪ H are within (1+eps) of
// exact, and never below exact. Returns the worst observed ratio.
func Stretch(h *hopset.Hopset, eps float64, budget int, sources []int32) (Report, error) {
	rep := Report{Worst: 1}
	a := adj.Build(h.G, h.Extras())
	for _, s := range sources {
		ref, _ := exact.DijkstraGraph(h.G, s)
		res := relax.Run(a, []int32{s}, budget, relax.Options{})
		for v := 0; v < h.G.N; v++ {
			if math.IsInf(ref[v], 1) {
				if !math.IsInf(res.Dist[v], 1) {
					return rep, fmt.Errorf("source %d: vertex %d reachable only through the hopset", s, v)
				}
				continue
			}
			rep.Checked++
			if res.Dist[v] < ref[v]-1e-9 {
				return rep, fmt.Errorf("source %d vertex %d: %v undershoots exact %v", s, v, res.Dist[v], ref[v])
			}
			if ref[v] > 0 {
				if r := res.Dist[v] / ref[v]; r > rep.Worst {
					rep.Worst = r
				}
			}
		}
	}
	if rep.Worst > 1+eps+1e-9 {
		return rep, fmt.Errorf("stretch %.6f exceeds 1+ε = %.6f at budget %d", rep.Worst, 1+eps, budget)
	}
	return rep, nil
}

// SizeBounds verifies eq. (9)/(10): per-scale sizes ≤ n^{1+1/κ} and the
// total ≤ ⌈log Λ⌉·n^{1+1/κ}. Star edges (weight reduction) are checked
// against the n·log n bound of eq. (24) instead.
func SizeBounds(h *hopset.Hopset) (Report, error) {
	rep := Report{}
	kappa := h.Params.Kappa
	if kappa == 0 {
		kappa = 3
	}
	perScale := map[int]int{}
	stars := 0
	for _, e := range h.Edges {
		if e.Kind == hopset.Star {
			stars++
			continue
		}
		perScale[int(e.Scale)]++
	}
	bound := hopset.SizeBound(h.G.N, kappa)
	for k, cnt := range perScale {
		rep.Checked++
		// The weight-reduction mapping may fold up to a handful of
		// node-graph scales into one original scale; allow 4×.
		if float64(cnt) > 4*bound {
			return rep, fmt.Errorf("scale %d: %d edges exceed 4·n^{1+1/κ} = %.0f", k, cnt, 4*bound)
		}
	}
	if sb := float64(h.G.N) * math.Log2(float64(h.G.N)); float64(stars) > sb {
		return rep, fmt.Errorf("star edges %d exceed n·log n = %.0f (eq. 24)", stars, sb)
	}
	total := float64(len(h.Edges))
	if tb := float64(h.Sched.Lambda+1)*bound + float64(h.G.N)*math.Log2(float64(h.G.N)); total > 4*tb {
		return rep, fmt.Errorf("total size %d exceeds 4·(⌈logΛ⌉·n^{1+1/κ} + n·log n) = %.0f", len(h.Edges), 4*tb)
	}
	return rep, nil
}

// SPT verifies a shortest-path tree against the hopset's graph: structure
// (via spt.Validate) plus the (1+eps) distance guarantee against Dijkstra.
// Distances must be in the tree's unit scale (spt.Scale × normalized).
func SPT(h *hopset.Hopset, spt *pathrep.SPT, eps float64) (Report, error) {
	rep := Report{Worst: 1}
	if err := spt.Validate(h); err != nil {
		return rep, err
	}
	ref, _ := exact.DijkstraGraph(h.G, spt.Source)
	scale := spt.Scale
	if scale == 0 {
		scale = 1
	}
	for v := 0; v < h.G.N; v++ {
		if math.IsInf(ref[v], 1) {
			continue
		}
		rep.Checked++
		want := ref[v] * scale
		if spt.Dist[v] < want-1e-6*math.Max(1, want) {
			return rep, fmt.Errorf("vertex %d: tree distance %v below exact %v", v, spt.Dist[v], want)
		}
		if want > 0 {
			if r := spt.Dist[v] / want; r > rep.Worst {
				rep.Worst = r
			}
		}
	}
	if rep.Worst > 1+eps+1e-9 {
		return rep, fmt.Errorf("tree stretch %.6f exceeds 1+ε", rep.Worst)
	}
	return rep, nil
}

// RulingSet verifies Corollary B.4 against the *materialized* virtual graph
// (brute-force boundary distances): q must be 3-separated and must rule w
// within radius 2·idBits. Intended for small instances.
func RulingSet(e *limbfs.Explorer, w, q []int32, idBits int) (Report, error) {
	rep := Report{}
	bd := limbfs.Exact(e.A, e.Part, e.HopCap, e.DistCap)
	P := e.Part.Len()
	// BFS distances in G̃.
	virt := func(s int32) []int {
		d := make([]int, P)
		for i := range d {
			d[i] = math.MaxInt32
		}
		d[s] = 0
		queue := []int32{s}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for u := int32(0); int(u) < P; u++ {
				if u != v && d[u] == math.MaxInt32 && bd[v][u] <= e.DistCap {
					d[u] = d[v] + 1
					queue = append(queue, u)
				}
			}
		}
		return d
	}
	dist := make(map[int32][]int, len(q))
	for _, c := range q {
		dist[c] = virt(c)
	}
	for i := 0; i < len(q); i++ {
		for j := i + 1; j < len(q); j++ {
			rep.Checked++
			if dist[q[i]][q[j]] < 3 {
				return rep, fmt.Errorf("ruling clusters %d and %d at virtual distance %d < 3", q[i], q[j], dist[q[i]][q[j]])
			}
		}
	}
	for _, c := range w {
		rep.Checked++
		best := math.MaxInt32
		for _, r := range q {
			if dist[r][c] < best {
				best = dist[r][c]
			}
		}
		if best > 2*idBits {
			return rep, fmt.Errorf("candidate %d at virtual distance %d > 2·%d from the ruling set", c, best, idBits)
		}
	}
	return rep, nil
}

// Partition verifies the structural invariants of a cluster partition.
func Partition(p *cluster.Partition) (Report, error) {
	return Report{Checked: p.Len()}, p.Validate()
}

// All runs Structure (h.Check), Soundness, SizeBounds and Stretch with the
// solver-default budget from three spread sources. The returned Worst is
// the worst observed *stretch* (Soundness's weight-to-distance ratio is a
// different quantity — legitimately above 1+ε — and is only reported by
// Soundness directly).
func All(h *hopset.Hopset, eps float64) (Report, error) {
	total := Report{Worst: 1}
	if err := h.Check(); err != nil {
		return total, fmt.Errorf("structure: %w", err)
	}
	rep, err := Soundness(h)
	if err != nil {
		return total, fmt.Errorf("soundness: %w", err)
	}
	total.Checked += rep.Checked
	rep, err = SizeBounds(h)
	if err != nil {
		return total, fmt.Errorf("size: %w", err)
	}
	total.Checked += rep.Checked
	n := h.G.N
	budget := h.Sched.HopBudget() * (h.Sched.Ell + 2) * 6
	rep, err = Stretch(h, eps, budget, []int32{0, int32(n / 2), int32(n - 1)})
	if err != nil {
		return total, fmt.Errorf("stretch: %w", err)
	}
	total.Checked += rep.Checked
	total.Worst = rep.Worst
	return total, nil
}
