package verify

import (
	"strings"
	"testing"

	"repro/internal/adj"
	"repro/internal/cluster"
	"repro/internal/graph"
	"repro/internal/hopset"
	"repro/internal/limbfs"
	"repro/internal/pathrep"
	"repro/internal/ruling"
	"repro/internal/scaling"
)

func buildH(t *testing.T, g *graph.Graph, p hopset.Params) *hopset.Hopset {
	t.Helper()
	h, err := hopset.Build(g, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestAllPassesOnGoodHopset(t *testing.T) {
	g := graph.Gnm(100, 300, graph.UniformWeights(1, 5), 1)
	h := buildH(t, g, hopset.Params{Epsilon: 0.25})
	rep, err := All(h, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Checked == 0 {
		t.Fatal("nothing checked")
	}
	if rep.Worst > 1.25 {
		t.Fatalf("worst ratio %v", rep.Worst)
	}
}

func TestSoundnessCatchesShortcut(t *testing.T) {
	g := graph.Gnm(60, 180, graph.UniformWeights(2, 9), 2)
	h := buildH(t, g, hopset.Params{Epsilon: 0.25})
	if h.Size() == 0 {
		t.Skip("empty hopset")
	}
	h.Edges[0].W = 1e-6 // an illegal shortcut
	if _, err := Soundness(h); err == nil {
		t.Fatal("shortcut not caught")
	} else if !strings.Contains(err.Error(), "below exact distance") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestStretchCatchesTightBudget(t *testing.T) {
	// With a 1-round budget the hopset cannot serve far pairs: Stretch must
	// report the violation rather than pass vacuously.
	g := graph.Path(128, graph.UnitWeights(), 1)
	h := buildH(t, g, hopset.Params{Epsilon: 0.25})
	if _, err := Stretch(h, 0.25, 1, []int32{64}); err == nil {
		t.Fatal("unreachable budget accepted")
	}
}

func TestSizeBoundsCatchInflation(t *testing.T) {
	g := graph.Gnm(64, 200, graph.UnitWeights(), 3)
	h := buildH(t, g, hopset.Params{Epsilon: 0.25})
	// Duplicate the edges far past the bound.
	e := h.Edges
	for i := 0; i < 60; i++ {
		h.Edges = append(h.Edges, e...)
	}
	if _, err := SizeBounds(h); err == nil {
		t.Fatal("size inflation not caught")
	}
}

func TestSPTVerifier(t *testing.T) {
	g := graph.Gnm(80, 240, graph.UniformWeights(1, 4), 4)
	h := buildH(t, g, hopset.Params{Epsilon: 0.25, RecordPaths: true})
	spt, err := pathrep.BuildSPT(h, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SPT(h, spt, 0.25); err != nil {
		t.Fatal(err)
	}
	// Corrupt a distance: must be caught.
	for v := range spt.Dist {
		if spt.Parent[v] >= 0 {
			spt.Dist[v] *= 3
			break
		}
	}
	if _, err := SPT(h, spt, 0.25); err == nil {
		t.Fatal("corrupted SPT accepted")
	}
}

func TestRulingSetVerifier(t *testing.T) {
	n := 48
	g := graph.Gnm(n, 120, graph.UniformWeights(1, 3), 5)
	a := adj.Build(g, nil)
	p := cluster.Singletons(n)
	e := &limbfs.Explorer{A: a, Part: p, HopCap: 2, DistCap: 3, X: 1}
	w := make([]int32, n)
	for i := range w {
		w[i] = int32(i)
	}
	idBits := 6
	q := ruling.Set(e, w, idBits)
	if _, err := RulingSet(e, w, q, idBits); err != nil {
		t.Fatal(err)
	}
	// Adding an adjacent cluster breaks 3-separation.
	if len(q) > 0 {
		bad := append(append([]int32{}, q...), findNeighbor(t, e, q[0]))
		if _, err := RulingSet(e, w, bad, idBits); err == nil {
			t.Fatal("separation violation not caught")
		}
	}
}

func findNeighbor(t *testing.T, e *limbfs.Explorer, c int32) int32 {
	t.Helper()
	bd := limbfs.Exact(e.A, e.Part, e.HopCap, e.DistCap)
	for u := int32(0); int(u) < e.Part.Len(); u++ {
		if u != c && bd[c][u] <= e.DistCap {
			return u
		}
	}
	t.Skip("no neighbor found")
	return -1
}

func TestPartitionVerifier(t *testing.T) {
	p := cluster.Singletons(5)
	if _, err := Partition(p); err != nil {
		t.Fatal(err)
	}
	p.ClusterOf[2] = 4 // corrupt
	if _, err := Partition(p); err == nil {
		t.Fatal("corruption not caught")
	}
}

func TestAllOnWeightReducedHopset(t *testing.T) {
	g := graph.Gnm(72, 220, graph.GeometricScaleWeights(10), 6)
	r, err := scaling.Build(g, scaling.Params{Epsilon: 0.5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := All(r.H, 0.5); err != nil {
		t.Fatal(err)
	}
}
