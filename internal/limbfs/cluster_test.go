package limbfs

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/adj"
	"repro/internal/cluster"
	"repro/internal/exact"
	"repro/internal/graph"
)

// randomPartition grows disjoint BFS balls around random seeds, leaving
// some vertices unclustered, and fills CenterDist with exact tree
// distances so the CDist bookkeeping is verifiable.
func randomPartition(g *graph.Graph, seeds int, r *rand.Rand) (*cluster.Partition, []float64) {
	p := cluster.Empty(g.N)
	centerDist := make([]float64, g.N)
	owner := make([]int32, g.N)
	for i := range owner {
		owner[i] = -1
	}
	type item struct {
		v    int32
		seed int32
		d    float64
	}
	var frontier []item
	for s := 0; s < seeds; s++ {
		v := int32(r.Intn(g.N))
		if owner[v] >= 0 {
			continue
		}
		owner[v] = v
		frontier = append(frontier, item{v, v, 0})
	}
	members := map[int32][]int32{}
	dists := map[int32]map[int32]float64{}
	for _, it := range frontier {
		members[it.seed] = []int32{it.seed}
		dists[it.seed] = map[int32]float64{it.seed: 0}
	}
	// Limited growth: each ball takes up to 6 extra vertices.
	taken := map[int32]int{}
	for len(frontier) > 0 {
		it := frontier[0]
		frontier = frontier[1:]
		if taken[it.seed] >= 6 {
			continue
		}
		nbr, wts := g.Neighbors(it.v)
		for i, u := range nbr {
			if owner[u] >= 0 {
				continue
			}
			owner[u] = it.seed
			taken[it.seed]++
			members[it.seed] = append(members[it.seed], u)
			dists[it.seed][u] = it.d + wts[i]
			frontier = append(frontier, item{u, it.seed, it.d + wts[i]})
			if taken[it.seed] >= 6 {
				break
			}
		}
	}
	for seed, ms := range members {
		var rad float64
		for _, v := range ms {
			centerDist[v] = dists[seed][v]
			if centerDist[v] > rad {
				rad = centerDist[v]
			}
		}
		// Members must be sorted for determinism.
		for i := 1; i < len(ms); i++ {
			for j := i; j > 0 && ms[j-1] > ms[j]; j-- {
				ms[j-1], ms[j] = ms[j], ms[j-1]
			}
		}
		p.Add(seed, ms, rad)
	}
	return p, centerDist
}

func TestDetectClusteredMatchesExact(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		r := rand.New(rand.NewSource(seed))
		g := graph.Gnm(80, 240, graph.UniformWeights(1, 4), seed)
		a := adj.Build(g, nil)
		p, cd := randomPartition(g, 12, r)
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
		hopCap, distCap := 5, 9.0
		e := &Explorer{A: a, Part: p, CenterDist: cd, HopCap: hopCap, DistCap: distCap, X: p.Len()}
		recs := e.Detect()
		ex := Exact(a, p, hopCap, distCap)
		for c := 0; c < p.Len(); c++ {
			got := map[int32]float64{}
			for _, rec := range recs[c] {
				got[rec.Src] = rec.BDist
			}
			for c2 := 0; c2 < p.Len(); c2++ {
				want, reach := ex[c][c2], ex[c][c2] <= distCap
				bd, found := got[int32(c2)]
				if reach != found {
					t.Fatalf("seed %d: cluster %d src %d: found=%v want %v", seed, c, c2, found, reach)
				}
				if found && math.Abs(bd-want) > 1e-9 {
					t.Fatalf("seed %d: cluster %d src %d: BDist %v want %v", seed, c, c2, bd, want)
				}
			}
		}
	}
}

func TestDetectClusteredCDistRealizable(t *testing.T) {
	// Every CDist must be at least the true center-to-center distance —
	// the soundness invariant the hopset's tight weights rely on.
	r := rand.New(rand.NewSource(42))
	g := graph.Gnm(70, 200, graph.UniformWeights(1, 5), 42)
	a := adj.Build(g, nil)
	p, cd := randomPartition(g, 10, r)
	e := &Explorer{A: a, Part: p, CenterDist: cd, HopCap: 6, DistCap: 15, X: p.Len()}
	recs := e.Detect()
	for c := 0; c < p.Len(); c++ {
		trueDist, _ := exact.DijkstraGraph(g, p.Centers[c])
		for _, rec := range recs[c] {
			if rec.CDist < trueDist[p.Centers[rec.Src]]-1e-9 {
				t.Fatalf("cluster %d ← src %d: CDist %v below true center distance %v",
					c, rec.Src, rec.CDist, trueDist[p.Centers[rec.Src]])
			}
			if rec.CDist < rec.BDist-1e-9 {
				t.Fatalf("CDist %v below BDist %v", rec.CDist, rec.BDist)
			}
		}
	}
}

func TestBFSClusteredLevels(t *testing.T) {
	// BFS levels on a clustered world must match BFS in the materialized
	// virtual graph.
	r := rand.New(rand.NewSource(7))
	g := graph.Gnm(60, 150, graph.UniformWeights(1, 3), 7)
	a := adj.Build(g, nil)
	p, cd := randomPartition(g, 9, r)
	hopCap, distCap := 4, 6.0
	e := &Explorer{A: a, Part: p, CenterDist: cd, HopCap: hopCap, DistCap: distCap, X: 1}
	res := e.BFS([]int32{0}, p.Len())
	// Reference BFS over the exact virtual graph.
	ex := Exact(a, p, hopCap, distCap)
	P := p.Len()
	level := make([]int32, P)
	for i := range level {
		level[i] = -1
	}
	level[0] = 0
	q := []int32{0}
	for len(q) > 0 {
		v := q[0]
		q = q[1:]
		for u := int32(0); int(u) < P; u++ {
			if u != v && level[u] < 0 && ex[v][u] <= distCap {
				level[u] = level[v] + 1
				q = append(q, u)
			}
		}
	}
	for c := 0; c < P; c++ {
		if res.Pulse[c] != level[c] {
			t.Fatalf("cluster %d: pulse %d want %d", c, res.Pulse[c], level[c])
		}
	}
}
