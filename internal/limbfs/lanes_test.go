package limbfs

import (
	"math/rand"
	"testing"

	"repro/internal/adj"
	"repro/internal/cluster"
	"repro/internal/graph"
	"repro/internal/par"
)

// sameRecords is bit-exact record equality, EndV included (aggregate
// output), since the lane path promises the record path bit for bit.
func sameRecords(t *testing.T, label string, got, want [][]Record) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d clusters, want %d", label, len(got), len(want))
	}
	for c := range want {
		if len(got[c]) != len(want[c]) {
			t.Fatalf("%s: cluster %d has %d records, want %d\n got %v\nwant %v",
				label, c, len(got[c]), len(want[c]), got[c], want[c])
		}
		for i, w := range want[c] {
			g := got[c][i]
			if g.Src != w.Src || g.BDist != w.BDist || g.CDist != w.CDist ||
				g.SeedV != w.SeedV || g.EndV != w.EndV {
				t.Fatalf("%s: cluster %d record %d = %+v, want %+v", label, c, i, g, w)
			}
		}
	}
}

// TestDetectLanesMatchRecordPath pins the tentpole equivalence: Detect on
// the word-parallel lane path is bit-identical to the record path across
// partitions (singleton and clustered), X values, and worker counts.
func TestDetectLanesMatchRecordPath(t *testing.T) {
	oldW := par.Workers()
	defer par.SetWorkers(oldW)
	defer func() { DisableLanes = false }()
	type world struct {
		name string
		a    *adj.Adj
		p    *cluster.Partition
		cd   []float64
	}
	var worlds []world
	{
		a, p := lineWorld(40)
		worlds = append(worlds, world{"path-singletons", a, p, nil})
	}
	{
		g := graph.Gnm(60, 180, graph.UniformWeights(1, 4), 9)
		worlds = append(worlds, world{"gnm-singletons", adj.Build(g, nil), cluster.Singletons(60), nil})
	}
	for seed := int64(0); seed < 3; seed++ {
		r := rand.New(rand.NewSource(seed))
		g := graph.Gnm(90, 270, graph.UniformWeights(1, 5), seed)
		p, cd := randomPartition(g, 14, r)
		worlds = append(worlds, world{"gnm-clustered", adj.Build(g, nil), p, cd})
	}
	for _, wd := range worlds {
		P := wd.p.Len()
		for _, x := range []int{1, 3, P} {
			e := &Explorer{A: wd.a, Part: wd.p, CenterDist: wd.cd, HopCap: 4, DistCap: 8, X: x}
			DisableLanes = true
			want := e.Detect()
			DisableLanes = false
			for _, workers := range []int{1, 2, 8} {
				par.SetWorkers(workers)
				e2 := &Explorer{A: wd.a, Part: wd.p, CenterDist: wd.cd, HopCap: 4, DistCap: 8, X: x}
				sameRecords(t, wd.name, e2.Detect(), want)
				// And through a shared scratch, back to back, to exercise
				// the all-zero lane invariant across reuses.
				sameRecords(t, wd.name+"/reuse", e2.Detect(), want)
			}
			par.SetWorkers(oldW)
		}
	}
}

// TestBFSLanesMatchRecordPath pins the per-pulse lane dispatch of BFS
// against the record path: identical Origin/Pulse/Est/Seed/End/LegBDist
// for every cluster, across depths, source sets and worker counts.
func TestBFSLanesMatchRecordPath(t *testing.T) {
	oldW := par.Workers()
	defer par.SetWorkers(oldW)
	defer func() { DisableLanes = false }()
	for seed := int64(0); seed < 3; seed++ {
		r := rand.New(rand.NewSource(seed))
		g := graph.Gnm(90, 270, graph.UniformWeights(1, 5), seed)
		a := adj.Build(g, nil)
		p, cd := randomPartition(g, 14, r)
		P := int32(p.Len())
		sourceSets := [][]int32{{0}, {0, P - 1, P / 2}}
		for _, sources := range sourceSets {
			for _, depth := range []int{1, 2, 6} {
				e := &Explorer{A: a, Part: p, CenterDist: cd, HopCap: 4, DistCap: 9, X: 5}
				DisableLanes = true
				want := e.BFS(sources, depth)
				DisableLanes = false
				for _, workers := range []int{1, 8} {
					par.SetWorkers(workers)
					e2 := &Explorer{A: a, Part: p, CenterDist: cd, HopCap: 4, DistCap: 9, X: 5}
					got := e2.BFS(sources, depth)
					for c := 0; c < int(P); c++ {
						if got.Origin[c] != want.Origin[c] || got.Pulse[c] != want.Pulse[c] ||
							got.Est[c] != want.Est[c] || got.SeedV[c] != want.SeedV[c] ||
							got.EndV[c] != want.EndV[c] || got.LegBDist[c] != want.LegBDist[c] {
							t.Fatalf("seed %d depth %d workers %d cluster %d:\n got origin=%d pulse=%d est=%v seed=%d end=%d leg=%v\nwant origin=%d pulse=%d est=%v seed=%d end=%d leg=%v",
								seed, depth, workers, c,
								got.Origin[c], got.Pulse[c], got.Est[c], got.SeedV[c], got.EndV[c], got.LegBDist[c],
								want.Origin[c], want.Pulse[c], want.Est[c], want.SeedV[c], want.EndV[c], want.LegBDist[c])
						}
					}
				}
				par.SetWorkers(oldW)
			}
		}
	}
}
