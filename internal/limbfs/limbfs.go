// Package limbfs implements Algorithm 2 of the paper (Appendix A): parallel
// limited BFS explorations of the virtual cluster graph G̃ᵢ = (Pᵢ, Ẽ), where
// clusters C, C′ are adjacent iff their (2β+1)-hop-bounded distance in
// G_{k−1} is at most (1+ε_{k−1})·δᵢ.
//
// Two variants are used by the hopset construction, exactly as in the paper:
//
//   - Detect (Appendix A.3.1, x = degᵢ+1, d = 1): every cluster learns the
//     IDs and bounded distances of up to x nearest clusters, which yields
//     the popular set Wᵢ (Lemma A.3) and the interconnection neighborhoods.
//   - BFS (Appendix A.3.2, x = 1, d ≥ 1): a multi-source BFS to depth d in
//     G̃ᵢ, used by the ruling-set knock-outs (depth 2) and the supercluster
//     coverage sweep (depth 2·log n); Lemma A.4 semantics — a cluster is
//     detected at pulse p iff its G̃ᵢ-distance from the sources is p.
//
// Records carry two distances. BDist is the paper's boundary distance
// (explorations start at 0 on every member of the seeding cluster; the
// pruning threshold DistCap and the hop cap apply to it), which drives all
// topology decisions. CDist is a sound center-to-center estimate: it starts
// at CenterDist[seed] and ends with +CenterDist[endpoint], so it is always
// the exact length of a concrete path in G_{k−1} between the two cluster
// centers. Tight-weight hopsets use CDist; strict-weight hopsets use the
// paper's closed-form weights and ignore it (§2.1.1, Lemmas 2.3/2.9).
package limbfs

import (
	"math"
	"slices"

	"repro/internal/adj"
	"repro/internal/cluster"
	"repro/internal/par"
	"repro/internal/pram"
	"repro/internal/relax"
)

// Record is one exploration record: cluster Src is reachable with boundary
// distance BDist, and the concrete discovered path implies a center-to-center
// distance of at most CDist.
type Record struct {
	Src   int32   // source cluster index (into the Partition)
	BDist float64 // boundary distance (paper's distance value)
	CDist float64 // sound center-to-center path length
	SeedV int32   // member of Src where this exploration leg started
	EndV  int32   // member of the aggregating cluster where it ended (-1 pre-aggregation)
	Path  []int32 // arc indices from SeedV to the holder (RecordPaths mode only)
}

// Explorer holds the fixed parameters of one exploration (one phase of one
// scale): the graph G_{k−1}, the partition Pᵢ, thresholds, and bookkeeping.
type Explorer struct {
	A          *adj.Adj
	Part       *cluster.Partition
	CenterDist []float64 // per vertex; nil means all zero (phase 0)
	HopCap     int       // 2β+1 in the paper
	DistCap    float64   // (1+ε_{k−1})·δᵢ in the paper
	X          int       // number of parallel explorations a vertex carries
	// RecordPaths makes records carry full arc paths, enabling the
	// path-reporting construction of §4 (the "memory property").
	RecordPaths bool
	Tracker     *pram.Tracker
	// Scratch, when shared between successive explorers (the hopset
	// builder hands one across phases and scales), reuses the per-vertex
	// record lists instead of reallocating them per Detect/BFS call. A nil
	// Scratch is created on first use.
	Scratch *Scratch
}

// Scratch holds the reusable buffers of an exploration: the per-vertex
// record lists (tracking which entries may be nonempty so acquisition
// only clears those) and propagate's worklist and per-slot selection
// buffers. Sharing one Scratch keeps repeated explorations (the
// ruling-set knock-outs issue many) allocation-free on the hot path.
type Scratch struct {
	lists [][]Record
	stale []int32
	// propagate round state: scan worklist, per-slot new selections and
	// change flags.
	work    []int32
	newRecs [][]Record
	wchg    []bool
	// laneSc is the word-parallel lane state (lanes.go), created on first
	// lane-path exploration.
	laneSc *laneScratch
}

// acquireLists returns an all-empty [][]Record of length n, reusing the
// scratch buffers across calls.
func (e *Explorer) acquireLists() [][]Record {
	if e.Scratch == nil {
		e.Scratch = &Scratch{}
	}
	s := e.Scratch
	n := e.A.N
	for _, v := range s.stale {
		s.lists[v] = s.lists[v][:0]
	}
	s.stale = s.stale[:0]
	if len(s.lists) < n {
		s.lists = append(s.lists, make([][]Record, n-len(s.lists))...)
	}
	return s.lists[:n]
}

// releaseLists records which entries of the acquired lists may be
// nonempty; the next acquireLists clears exactly those.
func (e *Explorer) releaseLists(stale []int32) {
	e.Scratch.stale = append(e.Scratch.stale, stale...)
}

func (e *Explorer) centerDist(v int32) float64 {
	if e.CenterDist == nil {
		return 0
	}
	return e.CenterDist[v]
}

// less is the canonical record order: by boundary distance, then source
// cluster ID (= center vertex ID, §1.5), then the tight estimate, then seed.
// A total order makes every selection deterministic.
func (e *Explorer) less(a, b Record) int {
	switch {
	case a.BDist < b.BDist:
		return -1
	case a.BDist > b.BDist:
		return 1
	}
	ca, cb := e.Part.Centers[a.Src], e.Part.Centers[b.Src]
	switch {
	case ca < cb:
		return -1
	case ca > cb:
		return 1
	}
	switch {
	case a.CDist < b.CDist:
		return -1
	case a.CDist > b.CDist:
		return 1
	}
	switch {
	case a.SeedV < b.SeedV:
		return -1
	case a.SeedV > b.SeedV:
		return 1
	}
	return 0
}

// selectBest sorts cand, removes duplicate sources (keeping the best), and
// returns up to x records appended to dst[:0].
func (e *Explorer) selectBest(dst, cand []Record, x int) []Record {
	slices.SortFunc(cand, e.less)
	dst = dst[:0]
	for _, r := range cand {
		dup := false
		for _, o := range dst {
			if o.Src == r.Src {
				dup = true
				break
			}
		}
		if !dup {
			dst = append(dst, r)
			if len(dst) == x {
				break
			}
		}
	}
	return dst
}

func sameRecs(a, b []Record) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Src != b[i].Src || a[i].BDist != b[i].BDist ||
			a[i].CDist != b[i].CDist || a[i].SeedV != b[i].SeedV {
			return false
		}
	}
	return true
}

// propagate runs up to HopCap synchronous relaxation rounds of the
// propagation part of Algorithm 2 over the vertex lists L, in place.
//
// It runs on the frontier-sparse discipline of internal/relax: each round
// recomputes only the closed neighborhood F ∪ N(F) of the vertices F
// whose list changed in the previous round (initially the seeded
// vertices). selectBest is an idempotent top-x selection, so a vertex
// with unchanged inputs reproduces its list exactly — the output is
// bit-identical to the naive all-vertices schedule while the work tracks
// the active frontier, and the tracker is charged only for arcs actually
// scanned. It stops early at a fixed point (the remaining rounds cannot
// change anything, so the result is identical to running all HopCap
// rounds).
//
// seed is the initial frontier (every vertex with a nonempty list); nil
// derives it by scanning L. Returns every vertex whose list was seeded or
// modified, so callers reusing L across explorations know what to clear.
func (e *Explorer) propagate(L [][]Record, seed []int32) (touched []int32) {
	n := e.A.N
	var front []int32
	var frontArcs int64
	if seed != nil {
		front = append(front, seed...)
	} else {
		for v := 0; v < n; v++ {
			if len(L[v]) > 0 {
				front = append(front, int32(v))
			}
		}
	}
	for _, v := range front {
		frontArcs += int64(e.A.Off[v+1] - e.A.Off[v])
	}
	touched = append(touched, front...)
	ss := relax.GetScanSet(n)
	defer relax.PutScanSet(ss)
	sc := e.Scratch // non-nil: every caller went through acquireLists
	for round := 0; round < e.HopCap && len(front) > 0; round++ {
		ss.Reset(n)
		ss.MarkNeighbors(e.A, front, true)
		var scanArcs int64
		sc.work, scanArcs = ss.Collect(e.A, sc.work[:0])
		work := sc.work
		if len(sc.newRecs) < len(work) {
			sc.newRecs = append(sc.newRecs, make([][]Record, len(work)-len(sc.newRecs))...)
			sc.wchg = append(sc.wchg, make([]bool, len(work)-len(sc.wchg))...)
		}
		newRecs, wchg := sc.newRecs, sc.wchg
		par.ForChunk(len(work), func(lo, hi int) {
			var cand []Record
			for i := lo; i < hi; i++ {
				v := work[i]
				cand = cand[:0]
				cand = append(cand, L[v]...)
				for arcI := e.A.Off[v]; arcI < e.A.Off[v+1]; arcI++ {
					u := e.A.Nbr[arcI]
					w := e.A.Wt[arcI]
					for _, r := range L[u] {
						nb := r.BDist + w
						if nb > e.DistCap {
							continue
						}
						nr := Record{Src: r.Src, BDist: nb, CDist: r.CDist + w, SeedV: r.SeedV, EndV: -1}
						if e.RecordPaths {
							nr.Path = append(append(make([]int32, 0, len(r.Path)+1), r.Path...), arcI)
						}
						cand = append(cand, nr)
					}
				}
				sel := e.selectBest(newRecs[i][:0], cand, e.X)
				newRecs[i] = sel
				wchg[i] = !sameRecs(sel, L[v])
			}
		})
		e.Tracker.Rounds(1, frontArcs+scanArcs*int64(e.X))
		// Commit after the synchronous barrier; the next frontier is the
		// changed vertices in worklist order — sorted, deterministic.
		front = front[:0]
		frontArcs = 0
		for i, v := range work {
			if wchg[i] {
				L[v] = append(L[v][:0], newRecs[i]...)
				front = append(front, v)
				frontArcs += int64(e.A.Off[v+1] - e.A.Off[v])
				touched = append(touched, v)
			}
		}
	}
	return touched
}

// seedOwn gives every clustered vertex the record of its own cluster:
// the initialization of the detection variant (every cluster is a source).
func (e *Explorer) seedOwn(L [][]Record) {
	par.For(e.A.N, func(v int) {
		c := e.Part.ClusterOf[v]
		if c < 0 {
			L[v] = L[v][:0]
			return
		}
		L[v] = append(L[v][:0], Record{
			Src: c, BDist: 0, CDist: e.centerDist(int32(v)), SeedV: int32(v), EndV: -1,
		})
	})
	e.Tracker.Round(int64(e.A.N))
}

// Detect is the variant of Appendix A.3.1 (d = 1, S = Pᵢ): it returns, for
// every cluster, up to X records of the nearest clusters (including itself)
// under the hop and distance caps, satisfying Lemma A.3:
// a cluster is popular iff its list is full (X = degᵢ+1 records).
func (e *Explorer) Detect() [][]Record {
	if e.useLanes(e.Part.Len()) {
		return e.detectLanes()
	}
	L := e.acquireLists()
	e.seedOwn(L)
	touched := e.propagate(L, nil)
	e.releaseLists(touched)
	return e.aggregate(L)
}

// aggregate is the aggregation part of Algorithm 2: each cluster merges its
// members' lists; member v's records gain +CenterDist[v] on CDist (the leg
// from the member up to the cluster center) and record v as EndV.
func (e *Explorer) aggregate(L [][]Record) [][]Record {
	P := e.Part.Len()
	out := make([][]Record, P)
	var members int64
	par.For(P, func(c int) {
		var cand []Record
		for _, v := range e.Part.Members[c] {
			for _, r := range L[v] {
				r.CDist += e.centerDist(v)
				r.EndV = v
				cand = append(cand, r)
			}
		}
		out[c] = e.selectBest(nil, cand, e.X)
	})
	for c := 0; c < P; c++ {
		members += int64(len(e.Part.Members[c]))
	}
	e.Tracker.Rounds(1, members*int64(e.X))
	return out
}

// BFSResult describes a multi-source BFS in G̃ᵢ (Lemma A.4 semantics).
type BFSResult struct {
	// Origin[c] is the source cluster whose exploration detected cluster c
	// (c itself for sources), or -1 if undetected within the depth budget.
	Origin []int32
	// Pulse[c] is the G̃ᵢ BFS level at which c was detected (0 = source).
	Pulse []int32
	// Est[c] is a sound center-to-center distance estimate from Origin[c]'s
	// center to c's center along the concrete discovery path.
	Est []float64
	// SeedV[c] is the member of the predecessor cluster where the detecting
	// leg started; EndV[c] the member of c where it ended. The predecessor
	// cluster is the one SeedV belonged to during this exploration.
	SeedV, EndV []int32
	// LegBDist[c] is the boundary length of the detecting leg.
	LegBDist []float64
	// LegPath[c] holds the detecting leg's arc path (RecordPaths mode).
	LegPath [][]int32
}

// BFS runs the variant of Appendix A.3.2 (x = 1): a BFS to the given depth
// in G̃ᵢ from the source clusters. Each pulse performs one fresh one-level
// exploration from the clusters detected in the previous pulse, matching
// Lemma A.4: cluster detected at pulse p ⇔ d_G̃ᵢ(cluster, sources) = p.
func (e *Explorer) BFS(sources []int32, depth int) *BFSResult {
	P := e.Part.Len()
	res := &BFSResult{
		Origin:   make([]int32, P),
		Pulse:    make([]int32, P),
		Est:      make([]float64, P),
		SeedV:    make([]int32, P),
		EndV:     make([]int32, P),
		LegBDist: make([]float64, P),
	}
	if e.RecordPaths {
		res.LegPath = make([][]int32, P)
	}
	for c := 0; c < P; c++ {
		res.Origin[c] = -1
		res.Pulse[c] = -1
		res.SeedV[c] = -1
		res.EndV[c] = -1
	}
	frontier := make([]int32, 0, len(sources))
	for _, c := range sources {
		if res.Origin[c] >= 0 {
			continue
		}
		res.Origin[c] = c
		res.Pulse[c] = 0
		res.SeedV[c] = e.Part.Centers[c]
		res.EndV[c] = e.Part.Centers[c]
		frontier = append(frontier, c)
	}
	saveX := e.X
	e.X = 1
	defer func() { e.X = saveX }()
	L := e.acquireLists()
	var seeded []int32
	laneOf := make(map[int32]int)
	var laneSrc []int32
	for p := int32(1); int(p) <= depth && len(frontier) > 0; p++ {
		// One lane per distinct origin among the frontier clusters: when
		// they fit a word, the whole pulse runs on the lane path.
		laneSrc = laneSrc[:0]
		clear(laneOf)
		for _, c := range frontier {
			o := res.Origin[c]
			if _, ok := laneOf[o]; !ok {
				laneOf[o] = len(laneSrc)
				laneSrc = append(laneSrc, o)
			}
		}
		var recs [][]Record
		if e.useLanes(len(laneSrc)) {
			recs = e.bfsPulseLanes(res, frontier, laneSrc, laneOf)
		} else {
			// Distribution: seed the members of the frontier clusters (their
			// lists are the only nonempty ones — the previous pulse cleared
			// everything it touched). The record's Src carries the *origin* so
			// attribution survives multiple pulses; CDist starts from the
			// origin-to-frontier-center estimate.
			seeded = seeded[:0]
			for _, c := range frontier {
				for _, v := range e.Part.Members[c] {
					L[v] = append(L[v][:0], Record{
						Src:   res.Origin[c],
						BDist: 0,
						CDist: res.Est[c] + e.centerDist(v),
						SeedV: v,
						EndV:  -1,
					})
					seeded = append(seeded, v)
				}
			}
			e.Tracker.Round(int64(len(seeded)))
			touched := e.propagate(L, seeded)
			recs = e.aggregate(L)
			// Clear every touched list so the next pulse (or the next
			// exploration reusing the scratch) starts from empty lists.
			for _, v := range touched {
				L[v] = L[v][:0]
			}
		}
		frontier = frontier[:0]
		for c := int32(0); int(c) < P; c++ {
			if res.Origin[c] >= 0 || len(recs[c]) == 0 {
				continue
			}
			r := recs[c][0]
			res.Origin[c] = r.Src
			res.Pulse[c] = p
			res.Est[c] = r.CDist
			res.SeedV[c] = r.SeedV
			res.EndV[c] = r.EndV
			res.LegBDist[c] = r.BDist
			if e.RecordPaths {
				res.LegPath[c] = r.Path
			}
			frontier = append(frontier, c)
		}
	}
	return res
}

// Exact computes the pairwise hop- and distance-capped boundary distances
// between all clusters by brute force (one hop-limited multi-source
// Bellman–Ford per cluster). It materializes the virtual graph G̃ᵢ exactly
// and is meant for validation on small instances; the construction itself
// never calls it.
func Exact(a *adj.Adj, part *cluster.Partition, hopCap int, distCap float64) [][]float64 {
	P := part.Len()
	out := make([][]float64, P)
	par.For(P, func(c int) {
		dist := make([]float64, a.N)
		next := make([]float64, a.N)
		for v := range dist {
			dist[v] = math.Inf(1)
		}
		for _, v := range part.Members[c] {
			dist[v] = 0
		}
		for h := 0; h < hopCap; h++ {
			copy(next, dist)
			changed := false
			for v := 0; v < a.N; v++ {
				for arc := a.Off[v]; arc < a.Off[v+1]; arc++ {
					if d := dist[a.Nbr[arc]] + a.Wt[arc]; d < next[v] && d <= distCap {
						next[v] = d
						changed = true
					}
				}
			}
			dist, next = next, dist
			if !changed {
				break
			}
		}
		row := make([]float64, P)
		for i := range row {
			row[i] = math.Inf(1)
		}
		for c2 := 0; c2 < P; c2++ {
			for _, v := range part.Members[c2] {
				if dist[v] < row[c2] {
					row[c2] = dist[v]
				}
			}
		}
		out[c] = row
	})
	return out
}
