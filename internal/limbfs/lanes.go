// Word-parallel lane execution of Algorithm 2: when an exploration has at
// most relax.MaxBatch source clusters, the per-vertex record lists are
// replaced by a 64-bit lane-membership word plus per-lane
// (BDist, CDist, SeedV) values, so one frontier-sparse scan of the graph
// propagates every cluster's exploration at once. Detect uses one lane
// per cluster (P ≤ 64 — the wide concluding phases of the hopset build);
// BFS uses one lane per distinct origin per pulse.
//
// The lane path is bit-identical to the record path. The argument:
//
//   - A selected record list L[v] holds records with pairwise distinct
//     Src, and distinct Src implies distinct cluster centers (§1.5), so
//     less() is a strict total order on it — the list is exactly its
//     record *set* in sorted order, which is exactly what the lane word +
//     per-lane values represent.
//   - Per (vertex, lane), folding candidates by lexicographic
//     (BDist, CDist, SeedV) reproduces selectBest's dedup-keep-best for
//     that Src: within one lane less() reduces to that order. Fully tied
//     candidates are identical in every field the non-path mode reads
//     (EndV = −1, Path = nil), so which one survives is immaterial —
//     which is also why the lane path requires !RecordPaths.
//   - Top-X pruning picks the X less()-smallest lanes — the same records
//     selectBest keeps — and a dropped lane's word bit is cleared, which
//     is the lane form of a dropped record not propagating further.
//   - Aggregation emits each member's lanes in less()-sorted order, so
//     the candidate sequence fed to selectBest is identical to the record
//     path's, and the (unstable) sort inside selectBest sees the same
//     input — same output, tie for tie.
//
// Per round the tracker is charged frontArcs + scanArcs once — the shared
// traversal — instead of the record path's scanArcs·X: that accounting
// drop is the build-time win the hopset bench measures.
package limbfs

import (
	"math/bits"
	"slices"

	"repro/internal/par"
	"repro/internal/relax"
)

// DisableLanes forces the record path everywhere, for the benchmarks and
// equivalence tests that compare the two executions. Set it only from a
// single goroutine before starting an exploration; it is read without
// synchronization.
var DisableLanes bool

// laneScratch holds the pooled lane-mode state, sized n vertices × kk
// lanes, value arrays indexed [v*kk+l]. Values under a zero word bit are
// garbage by design — every read is masked — so acquiring it costs
// nothing; the word array obeys an all-zero-between-uses invariant
// maintained by clearing exactly the touched vertices.
type laneScratch struct {
	word []uint64
	bd   []float64
	cd   []float64
	sv   []int32
	// Per-work-slot staged state of one round.
	nword []uint64
	nbd   []float64
	ncd   []float64
	nsv   []int32
	wchg  []bool
}

func (s *laneScratch) grow(n, kk int) {
	if cap(s.word) < n {
		s.word = make([]uint64, n) // zeroed; the invariant keeps it so
		s.nword = make([]uint64, n)
		s.wchg = make([]bool, n)
	}
	s.word = s.word[:n]
	s.nword = s.nword[:n]
	s.wchg = s.wchg[:n]
	if cap(s.bd) < n*kk {
		s.bd = make([]float64, n*kk)
		s.cd = make([]float64, n*kk)
		s.sv = make([]int32, n*kk)
		s.nbd = make([]float64, n*kk)
		s.ncd = make([]float64, n*kk)
		s.nsv = make([]int32, n*kk)
	}
	s.bd = s.bd[:n*kk]
	s.cd = s.cd[:n*kk]
	s.sv = s.sv[:n*kk]
	s.nbd = s.nbd[:n*kk]
	s.ncd = s.ncd[:n*kk]
	s.nsv = s.nsv[:n*kk]
}

// lanes returns the lane scratch of the explorer's shared Scratch.
func (e *Explorer) lanes(n, kk int) *laneScratch {
	if e.Scratch == nil {
		e.Scratch = &Scratch{}
	}
	if e.Scratch.laneSc == nil {
		e.Scratch.laneSc = &laneScratch{}
	}
	ls := e.Scratch.laneSc
	ls.grow(n, kk)
	return ls
}

// useLanes reports whether an exploration with k sources can run on the
// lane path.
func (e *Explorer) useLanes(k int) bool {
	return !DisableLanes && !e.RecordPaths && k > 0 && k <= relax.MaxBatch
}

// propagateLanes is propagate on lane state: up to HopCap synchronous
// rounds over the frontier-sparse work set F ∪ N(F), folding per
// (vertex, lane) and keeping the X less()-smallest lanes per vertex.
// laneSrc maps lane index → source cluster. Returns every touched vertex
// so the caller can restore the all-zero word invariant.
func (e *Explorer) propagateLanes(ls *laneScratch, seed []int32, kk int, laneSrc []int32) (touched []int32) {
	a := e.A
	n := a.N
	centers := e.Part.Centers
	var front []int32
	var frontArcs int64
	front = append(front, seed...)
	for _, v := range front {
		frontArcs += int64(a.Off[v+1] - a.Off[v])
	}
	touched = append(touched, front...)
	ss := relax.GetScanSet(n)
	defer relax.PutScanSet(ss)
	sc := e.Scratch
	word, bd, cd, sv := ls.word, ls.bd, ls.cd, ls.sv
	nword, nbd, ncd, nsv, wchg := ls.nword, ls.nbd, ls.ncd, ls.nsv, ls.wchg
	for round := 0; round < e.HopCap && len(front) > 0; round++ {
		ss.Reset(n)
		ss.MarkNeighbors(a, front, true)
		var scanArcs int64
		sc.work, scanArcs = ss.Collect(a, sc.work[:0])
		work := sc.work
		par.ForChunk(len(work), func(lo, hi int) {
			// Per-lane fold registers and the lane-index sort buffer of
			// the top-X selection, reused across the chunk.
			var cbd [relax.MaxBatch]float64
			var ccd [relax.MaxBatch]float64
			var csv [relax.MaxBatch]int32
			var idxArr [relax.MaxBatch]int32
			for i := lo; i < hi; i++ {
				v := work[i]
				vb := int(v) * kk
				var present uint64
				// Own lanes are candidates unconditionally, like L[v] in
				// the record path.
				for m := word[v]; m != 0; m &= m - 1 {
					l := bits.TrailingZeros64(m)
					present |= 1 << uint(l)
					cbd[l], ccd[l], csv[l] = bd[vb+l], cd[vb+l], sv[vb+l]
				}
				for arcI := a.Off[v]; arcI < a.Off[v+1]; arcI++ {
					u := a.Nbr[arcI]
					m := word[u]
					if m == 0 {
						continue
					}
					ub := int(u) * kk
					w := a.Wt[arcI]
					for ; m != 0; m &= m - 1 {
						l := bits.TrailingZeros64(m)
						nb := bd[ub+l] + w
						if nb > e.DistCap {
							continue
						}
						nc, nv := cd[ub+l]+w, sv[ub+l]
						bit := uint64(1) << uint(l)
						if present&bit == 0 {
							present |= bit
							cbd[l], ccd[l], csv[l] = nb, nc, nv
							continue
						}
						if nb < cbd[l] || (nb == cbd[l] && (nc < ccd[l] || (nc == ccd[l] && nv < csv[l]))) {
							cbd[l], ccd[l], csv[l] = nb, nc, nv
						}
					}
				}
				sel := present
				if bits.OnesCount64(present) > e.X {
					// Keep the X less()-smallest lanes. Ties cannot reach
					// the CDist/SeedV legs: distinct lanes have distinct
					// sources and therefore distinct centers.
					idx := idxArr[:0]
					for m := present; m != 0; m &= m - 1 {
						idx = append(idx, int32(bits.TrailingZeros64(m)))
					}
					slices.SortFunc(idx, func(x, y int32) int {
						switch {
						case cbd[x] < cbd[y]:
							return -1
						case cbd[x] > cbd[y]:
							return 1
						}
						cx, cy := centers[laneSrc[x]], centers[laneSrc[y]]
						switch {
						case cx < cy:
							return -1
						case cx > cy:
							return 1
						}
						return 0
					})
					sel = 0
					for _, l := range idx[:e.X] {
						sel |= 1 << uint(l)
					}
				}
				changed := sel != word[v]
				if !changed {
					for m := sel; m != 0; m &= m - 1 {
						l := bits.TrailingZeros64(m)
						if cbd[l] != bd[vb+l] || ccd[l] != cd[vb+l] || csv[l] != sv[vb+l] {
							changed = true
							break
						}
					}
				}
				wchg[i] = changed
				if changed {
					nword[i] = sel
					wb := i * kk
					for m := sel; m != 0; m &= m - 1 {
						l := bits.TrailingZeros64(m)
						nbd[wb+l], ncd[wb+l], nsv[wb+l] = cbd[l], ccd[l], csv[l]
					}
				}
			}
		})
		// One shared traversal serves every lane: charge marking plus scan
		// once, not per carried exploration — the bit-parallel accounting
		// the build bench audits against the record path's scanArcs·X.
		e.Tracker.Rounds(1, frontArcs+scanArcs)
		front = front[:0]
		frontArcs = 0
		for i, v := range work {
			if wchg[i] {
				word[v] = nword[i]
				wb, vb := i*kk, int(v)*kk
				for m := nword[i]; m != 0; m &= m - 1 {
					l := bits.TrailingZeros64(m)
					bd[vb+l], cd[vb+l], sv[vb+l] = nbd[wb+l], ncd[wb+l], nsv[wb+l]
				}
				front = append(front, v)
				frontArcs += int64(a.Off[v+1] - a.Off[v])
				touched = append(touched, v)
			}
		}
	}
	return touched
}

// aggregateLanes is aggregate on lane state: each cluster merges its
// members' lanes, materialized per member in less()-sorted order so
// selectBest receives the exact candidate sequence the record path
// builds.
func (e *Explorer) aggregateLanes(ls *laneScratch, kk int, laneSrc []int32) [][]Record {
	P := e.Part.Len()
	out := make([][]Record, P)
	centers := e.Part.Centers
	word, bd, cd, sv := ls.word, ls.bd, ls.cd, ls.sv
	var members int64
	par.For(P, func(c int) {
		var cand []Record
		var idxArr [relax.MaxBatch]int32
		for _, v := range e.Part.Members[c] {
			m := word[v]
			if m == 0 {
				continue
			}
			vb := int(v) * kk
			idx := idxArr[:0]
			for ; m != 0; m &= m - 1 {
				idx = append(idx, int32(bits.TrailingZeros64(m)))
			}
			if len(idx) > 1 {
				slices.SortFunc(idx, func(x, y int32) int {
					switch {
					case bd[vb+int(x)] < bd[vb+int(y)]:
						return -1
					case bd[vb+int(x)] > bd[vb+int(y)]:
						return 1
					}
					cx, cy := centers[laneSrc[x]], centers[laneSrc[y]]
					switch {
					case cx < cy:
						return -1
					case cx > cy:
						return 1
					}
					return 0
				})
			}
			for _, l := range idx {
				cand = append(cand, Record{
					Src:   laneSrc[l],
					BDist: bd[vb+int(l)],
					CDist: cd[vb+int(l)] + e.centerDist(v),
					SeedV: sv[vb+int(l)],
					EndV:  v,
				})
			}
		}
		out[c] = e.selectBest(nil, cand, e.X)
	})
	for c := 0; c < P; c++ {
		members += int64(len(e.Part.Members[c]))
	}
	e.Tracker.Rounds(1, members*int64(e.X))
	return out
}

// clearLanes restores the all-zero word invariant for the touched set.
func clearLanes(ls *laneScratch, touched []int32) {
	for _, v := range touched {
		ls.word[v] = 0
	}
}

// detectLanes is Detect on the lane path: lane index = cluster index
// (P ≤ 64), every clustered vertex seeded with its own cluster's lane.
func (e *Explorer) detectLanes() [][]Record {
	n := e.A.N
	kk := e.Part.Len()
	ls := e.lanes(n, kk)
	laneSrc := make([]int32, kk)
	for c := range laneSrc {
		laneSrc[c] = int32(c)
	}
	word, bd, cd, sv := ls.word, ls.bd, ls.cd, ls.sv
	clusterOf := e.Part.ClusterOf
	par.For(n, func(v int) {
		c := clusterOf[v]
		if c < 0 {
			return // word[v] is already 0 by the invariant
		}
		word[v] = 1 << uint(c)
		vb := v*kk + int(c)
		bd[vb], cd[vb], sv[vb] = 0, e.centerDist(int32(v)), int32(v)
	})
	e.Tracker.Round(int64(n))
	seed := make([]int32, 0, n)
	for v := int32(0); int(v) < n; v++ {
		if word[v] != 0 {
			seed = append(seed, v)
		}
	}
	touched := e.propagateLanes(ls, seed, kk, laneSrc)
	out := e.aggregateLanes(ls, kk, laneSrc)
	clearLanes(ls, touched)
	return out
}

// bfsPulseLanes runs one BFS distribution+propagation+aggregation pulse
// on the lane path: one lane per distinct origin among the frontier
// clusters (callers check ≤ MaxBatch), each frontier member seeded into
// its origin's lane.
func (e *Explorer) bfsPulseLanes(res *BFSResult, frontier []int32, laneSrc []int32, laneOf map[int32]int) [][]Record {
	n := e.A.N
	kk := len(laneSrc)
	ls := e.lanes(n, kk)
	word, bd, cd, sv := ls.word, ls.bd, ls.cd, ls.sv
	var seeded []int32
	for _, c := range frontier {
		l := laneOf[res.Origin[c]]
		for _, v := range e.Part.Members[c] {
			word[v] = 1 << uint(l)
			vb := int(v)*kk + l
			bd[vb], cd[vb], sv[vb] = 0, res.Est[c]+e.centerDist(v), v
			seeded = append(seeded, v)
		}
	}
	e.Tracker.Round(int64(len(seeded)))
	touched := e.propagateLanes(ls, seeded, kk, laneSrc)
	out := e.aggregateLanes(ls, kk, laneSrc)
	clearLanes(ls, touched)
	return out
}
