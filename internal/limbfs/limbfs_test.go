package limbfs

import (
	"math"
	"testing"

	"repro/internal/adj"
	"repro/internal/cluster"
	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/pram"
)

// lineWorld builds a weighted path 0-1-2-...-9 with unit weights and
// singleton clusters.
func lineWorld(n int) (*adj.Adj, *cluster.Partition) {
	g := graph.Path(n, graph.UnitWeights(), 1)
	return adj.Build(g, nil), cluster.Singletons(n)
}

func TestDetectSingletonsOnPath(t *testing.T) {
	a, p := lineWorld(10)
	e := &Explorer{A: a, Part: p, HopCap: 3, DistCap: 3, X: 4}
	recs := e.Detect()
	// Vertex 5 should see clusters {5(0), 2..8 minus itself}: nearest 4 are
	// 5 (0), 4 (1), 6 (1), 3 (2) — ordering by (dist, center id).
	got := recs[5]
	if len(got) != 4 {
		t.Fatalf("len=%d recs=%v", len(got), got)
	}
	wantSrc := []int32{5, 4, 6, 3}
	wantD := []float64{0, 1, 1, 2}
	for i := range wantSrc {
		if got[i].Src != wantSrc[i] || got[i].BDist != wantD[i] {
			t.Fatalf("rec %d = {src=%d d=%v}, want {src=%d d=%v}",
				i, got[i].Src, got[i].BDist, wantSrc[i], wantD[i])
		}
	}
}

func TestDetectRespectsHopCap(t *testing.T) {
	a, p := lineWorld(10)
	e := &Explorer{A: a, Part: p, HopCap: 1, DistCap: 100, X: 10}
	recs := e.Detect()
	// With one hop, vertex 5 sees only itself and direct neighbors.
	if len(recs[5]) != 3 {
		t.Fatalf("hop cap violated: %v", recs[5])
	}
}

func TestDetectRespectsDistCap(t *testing.T) {
	g := graph.MustFromEdges(3, []graph.Edge{graph.E(0, 1, 5), graph.E(1, 2, 1)})
	a := adj.Build(g, nil)
	p := cluster.Singletons(3)
	e := &Explorer{A: a, Part: p, HopCap: 5, DistCap: 2, X: 5}
	recs := e.Detect()
	if len(recs[0]) != 1 { // only itself: the 0-1 edge is too long
		t.Fatalf("dist cap violated: %v", recs[0])
	}
	if len(recs[1]) != 2 { // itself and 2
		t.Fatalf("recs[1]=%v", recs[1])
	}
}

func TestDetectMatchesExact(t *testing.T) {
	g := graph.Gnm(60, 150, graph.UniformWeights(1, 4), 3)
	a := adj.Build(g, nil)
	p := cluster.Singletons(60)
	hopCap, distCap := 4, 6.0
	e := &Explorer{A: a, Part: p, HopCap: hopCap, DistCap: distCap, X: 60}
	recs := e.Detect()
	exact := Exact(a, p, hopCap, distCap)
	for c := 0; c < p.Len(); c++ {
		// Every exact-reachable cluster must appear with the same distance.
		wantCount := 0
		for c2 := 0; c2 < p.Len(); c2++ {
			if exact[c][c2] <= distCap {
				wantCount++
			}
		}
		if len(recs[c]) != wantCount {
			t.Fatalf("cluster %d: %d records, exact %d", c, len(recs[c]), wantCount)
		}
		for _, r := range recs[c] {
			if math.Abs(r.BDist-exact[c][r.Src]) > 1e-9 {
				t.Fatalf("cluster %d src %d: BDist=%v exact=%v", c, r.Src, r.BDist, exact[c][r.Src])
			}
		}
	}
}

func TestCDistSoundness(t *testing.T) {
	// CDist must never be below the true center-to-center distance.
	g := graph.Gnm(50, 120, graph.UniformWeights(1, 5), 7)
	a := adj.Build(g, nil)
	p := cluster.Singletons(50)
	e := &Explorer{A: a, Part: p, HopCap: 6, DistCap: 20, X: 50}
	recs := e.Detect()
	// For singletons, CDist should equal BDist (no center detours).
	for c := range recs {
		for _, r := range recs[c] {
			if math.Abs(r.CDist-r.BDist) > 1e-9 {
				t.Fatalf("singleton CDist %v != BDist %v", r.CDist, r.BDist)
			}
		}
	}
}

func TestCDistWithClusters(t *testing.T) {
	// Path 0-1-2-3-4-5 (unit). Clusters: {0,1,2} center 1, {3,4,5} center 4.
	g := graph.Path(6, graph.UnitWeights(), 1)
	a := adj.Build(g, nil)
	p := cluster.Empty(6)
	p.Add(1, []int32{0, 1, 2}, 1)
	p.Add(4, []int32{3, 4, 5}, 1)
	cd := []float64{1, 0, 1, 1, 0, 1}
	e := &Explorer{A: a, Part: p, CenterDist: cd, HopCap: 3, DistCap: 10, X: 3}
	recs := e.Detect()
	// Boundary distance between clusters: edge (2,3) = 1.
	var r *Record
	for i := range recs[0] {
		if recs[0][i].Src == 1 {
			r = &recs[0][i]
		}
	}
	if r == nil {
		t.Fatal("cluster 1 not detected from cluster 0")
	}
	if r.BDist != 1 {
		t.Fatalf("BDist=%v want 1", r.BDist)
	}
	// Center path 1→2→3→4 = 3 = CenterDist[2] + leg + CenterDist[3].
	if r.CDist != 3 {
		t.Fatalf("CDist=%v want 3", r.CDist)
	}
	// The record describes cluster 1's exploration reaching cluster 0: the
	// leg starts at a member of cluster 1 (vertex 3) and ends at a member
	// of cluster 0 (vertex 2).
	if r.SeedV != 3 || r.EndV != 2 {
		t.Fatalf("seed=%d end=%d", r.SeedV, r.EndV)
	}
}

func TestUnclusteredVerticesRelay(t *testing.T) {
	// Path 0-1-2. Vertex 1 is unclustered, but the exploration must pass
	// through it (explorations travel the full graph G_{k−1}).
	g := graph.Path(3, graph.UnitWeights(), 1)
	a := adj.Build(g, nil)
	p := cluster.Empty(3)
	p.Add(0, []int32{0}, 0)
	p.Add(2, []int32{2}, 0)
	e := &Explorer{A: a, Part: p, HopCap: 2, DistCap: 5, X: 2}
	recs := e.Detect()
	if len(recs[0]) != 2 || recs[0][1].Src != 1 || recs[0][1].BDist != 2 {
		t.Fatalf("relay failed: %v", recs[0])
	}
}

func TestBFSLevels(t *testing.T) {
	// Path of 8 singletons, DistCap 1, HopCap 1: G̃ is the path itself.
	a, p := lineWorld(8)
	e := &Explorer{A: a, Part: p, HopCap: 1, DistCap: 1, X: 1}
	res := e.BFS([]int32{0}, 3)
	wantPulse := []int32{0, 1, 2, 3, -1, -1, -1, -1}
	for c, want := range wantPulse {
		if res.Pulse[c] != want {
			t.Fatalf("cluster %d pulse=%d want %d", c, res.Pulse[c], want)
		}
		if want >= 0 && res.Origin[c] != 0 {
			t.Fatalf("cluster %d origin=%d", c, res.Origin[c])
		}
		if want < 0 && res.Origin[c] != -1 {
			t.Fatalf("cluster %d should be undetected", c)
		}
	}
	// Est accumulates real distances: cluster 3 is 3 away.
	if res.Est[3] != 3 {
		t.Fatalf("est=%v", res.Est[3])
	}
}

func TestBFSMultiSourceNearest(t *testing.T) {
	a, p := lineWorld(9)
	e := &Explorer{A: a, Part: p, HopCap: 1, DistCap: 1, X: 1}
	res := e.BFS([]int32{0, 8}, 8)
	for c := 0; c < 9; c++ {
		wantOrigin := int32(0)
		if c > 4 {
			wantOrigin = 8
		}
		if c == 4 { // tie: both at distance 4; origin with smaller center ID wins
			wantOrigin = 0
		}
		if res.Origin[c] != wantOrigin {
			t.Fatalf("cluster %d origin=%d want %d", c, res.Origin[c], wantOrigin)
		}
	}
}

func TestBFSLegMetadata(t *testing.T) {
	a, p := lineWorld(5)
	e := &Explorer{A: a, Part: p, HopCap: 2, DistCap: 2, X: 1}
	res := e.BFS([]int32{0}, 4)
	// G̃ edges connect clusters within distance 2: 0→{1,2} pulse 1, {3,4} pulse 2.
	if res.Pulse[2] != 1 || res.Pulse[4] != 2 {
		t.Fatalf("pulses=%v", res.Pulse)
	}
	// Cluster 4 detected by a leg starting at a pulse-1 cluster's member.
	seedCluster := p.ClusterOf[res.SeedV[4]]
	if res.Pulse[seedCluster] != 1 {
		t.Fatalf("leg for 4 started at cluster with pulse %d", res.Pulse[seedCluster])
	}
	if res.EndV[4] != 4 {
		t.Fatalf("EndV=%d", res.EndV[4])
	}
	if res.Est[4] != 4 {
		t.Fatalf("Est=%v want 4 (real distance)", res.Est[4])
	}
}

func TestBFSPathRecording(t *testing.T) {
	a, p := lineWorld(6)
	e := &Explorer{A: a, Part: p, HopCap: 2, DistCap: 2, X: 1, RecordPaths: true}
	res := e.BFS([]int32{0}, 3)
	for c := 1; c < 6; c++ {
		if res.Origin[c] < 0 {
			continue
		}
		path := res.LegPath[c]
		if len(path) == 0 {
			t.Fatalf("cluster %d: empty leg path", c)
		}
		// Walk the path backwards from EndV; it must reach SeedV and its
		// weights must sum to LegBDist.
		cur := res.EndV[c]
		var sum float64
		for i := len(path) - 1; i >= 0; i-- {
			arc := path[i]
			if arc < a.Off[cur] || arc >= a.Off[cur+1] {
				t.Fatalf("cluster %d: arc %d does not belong to vertex %d", c, arc, cur)
			}
			sum += a.Wt[arc]
			cur = a.Nbr[arc]
		}
		if cur != res.SeedV[c] {
			t.Fatalf("cluster %d: path walks to %d, seed is %d", c, cur, res.SeedV[c])
		}
		if math.Abs(sum-res.LegBDist[c]) > 1e-9 {
			t.Fatalf("cluster %d: path weight %v != leg %v", c, sum, res.LegBDist[c])
		}
	}
}

func TestDeterministicAcrossWorkers(t *testing.T) {
	old := par.Workers()
	defer par.SetWorkers(old)
	g := graph.Gnm(300, 1200, graph.UniformWeights(1, 6), 11)
	a := adj.Build(g, nil)
	p := cluster.Singletons(300)
	run := func() [][]Record {
		e := &Explorer{A: a, Part: p, HopCap: 4, DistCap: 8, X: 6}
		return e.Detect()
	}
	par.SetWorkers(1)
	ref := run()
	for _, w := range []int{2, 4, 8} {
		par.SetWorkers(w)
		got := run()
		for c := range ref {
			if !sameRecs(ref[c], got[c]) {
				t.Fatalf("workers=%d cluster %d: %v vs %v", w, c, got[c], ref[c])
			}
		}
	}
}

func TestTrackerCharged(t *testing.T) {
	a, p := lineWorld(20)
	tr := pram.New()
	e := &Explorer{A: a, Part: p, HopCap: 3, DistCap: 3, X: 2, Tracker: tr}
	e.Detect()
	if c := tr.Snapshot(); c.Depth == 0 || c.Work == 0 {
		t.Fatalf("tracker not charged: %v", c)
	}
}

func TestExplorationThroughExtras(t *testing.T) {
	// A hopset edge (extra) shortens hop distance: path 0..4 plus extra
	// 0-4 w=1.5. With HopCap 1, vertex 4's cluster is visible from 0.
	g := graph.Path(5, graph.UnitWeights(), 1)
	a := adj.Build(g, []adj.Extra{{U: 0, V: 4, W: 1.5}})
	p := cluster.Singletons(5)
	e := &Explorer{A: a, Part: p, HopCap: 1, DistCap: 2, X: 5}
	recs := e.Detect()
	found := false
	for _, r := range recs[0] {
		if r.Src == 4 && r.BDist == 1.5 {
			found = true
		}
	}
	if !found {
		t.Fatalf("extra edge not used: %v", recs[0])
	}
}
