package pathrep

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/hopset"
)

// buildTinySPT returns a validated SPT over a small graph for corruption
// tests.
func buildTinySPT(t *testing.T) (*hopset.Hopset, *SPT) {
	t.Helper()
	g := graph.Gnm(50, 150, graph.UniformWeights(1, 4), 21)
	h, err := hopset.Build(g, hopset.Params{Epsilon: 0.25, RecordPaths: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	spt, err := BuildSPT(h, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := spt.Validate(h); err != nil {
		t.Fatal(err)
	}
	return h, spt
}

func TestValidateCatchesNonTreeEdge(t *testing.T) {
	h, spt := buildTinySPT(t)
	// Point a vertex at a non-adjacent parent.
	for v := int32(1); int(v) < h.G.N; v++ {
		p := spt.Parent[v]
		if p < 0 {
			continue
		}
		for cand := int32(0); int(cand) < h.G.N; cand++ {
			if cand == v || cand == p {
				continue
			}
			if _, ok := h.G.HasEdge(cand, v); !ok {
				spt.Parent[v] = cand
				if spt.Validate(h) == nil {
					t.Fatal("non-edge parent accepted")
				}
				return
			}
		}
	}
	t.Skip("graph too dense for the corruption")
}

func TestValidateCatchesWrongWeight(t *testing.T) {
	_, spt := buildTinySPT(t)
	h, _ := buildTinySPT(t)
	for v := range spt.ParentW {
		if spt.Parent[v] >= 0 {
			spt.ParentW[v] += 0.5
			break
		}
	}
	if spt.Validate(h) == nil {
		t.Fatal("wrong weight accepted")
	}
}

func TestValidateCatchesCycle(t *testing.T) {
	h, spt := buildTinySPT(t)
	// Make two adjacent vertices point at each other (if an edge exists).
	for _, e := range h.G.Edges {
		u, v := e.U, e.V
		if u == spt.Source || v == spt.Source {
			continue
		}
		spt.Parent[u], spt.ParentW[u] = v, e.W
		spt.Parent[v], spt.ParentW[v] = u, e.W
		spt.Dist[u] = spt.Dist[v] + e.W // keep local consistency plausible
		err := spt.Validate(h)
		if err == nil {
			t.Fatal("cycle accepted")
		}
		return
	}
}

func TestValidateCatchesParentlessReachable(t *testing.T) {
	h, spt := buildTinySPT(t)
	for v := int32(1); int(v) < h.G.N; v++ {
		if spt.Parent[v] >= 0 && !math.IsInf(spt.Dist[v], 1) {
			spt.Parent[v] = -1 // claims unreachable but has finite distance
			if spt.Validate(h) == nil {
				t.Fatal("finite-distance orphan accepted")
			}
			return
		}
	}
}

func TestValidateCatchesBadSource(t *testing.T) {
	h, spt := buildTinySPT(t)
	spt.Source = int32(h.G.N) + 7
	if spt.Validate(h) == nil {
		t.Fatal("out-of-range source accepted")
	}
}

func TestPathToGuardAgainstCorruptPointers(t *testing.T) {
	_, spt := buildTinySPT(t)
	// Self-loop in parents: PathTo must bail out rather than spin.
	for v := int32(1); int(v) < len(spt.Parent); v++ {
		if spt.Parent[v] >= 0 {
			spt.Parent[v] = v
			if got := spt.PathTo(v); got != nil {
				t.Fatal("corrupt pointer chain returned a path")
			}
			return
		}
	}
}
