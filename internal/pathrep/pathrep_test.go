package pathrep

import (
	"math"
	"testing"

	"repro/internal/exact"
	"repro/internal/graph"
	"repro/internal/hopset"
	"repro/internal/par"
	"repro/internal/pram"
)

func buildPR(t *testing.T, g *graph.Graph, eps float64) *hopset.Hopset {
	t.Helper()
	h, err := hopset.Build(g, hopset.Params{Epsilon: eps, RecordPaths: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func checkSPT(t *testing.T, h *hopset.Hopset, s int32, eps float64) *SPT {
	t.Helper()
	spt, err := BuildSPT(h, s, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := spt.Validate(h); err != nil {
		t.Fatal(err)
	}
	ex, _ := exact.DijkstraGraph(h.G, s)
	for v := 0; v < h.G.N; v++ {
		if math.IsInf(ex[v], 1) {
			if !math.IsInf(spt.Dist[v], 1) {
				t.Fatalf("vertex %d unreachable in G but has tree distance %v", v, spt.Dist[v])
			}
			continue
		}
		if math.IsInf(spt.Dist[v], 1) {
			t.Fatalf("vertex %d reachable in G (d=%v) but not in tree", v, ex[v])
		}
		if spt.Dist[v] < ex[v]-1e-9 {
			t.Fatalf("vertex %d: tree distance %v below exact %v", v, spt.Dist[v], ex[v])
		}
		if spt.Dist[v] > (1+eps)*ex[v]+1e-9 {
			t.Fatalf("vertex %d: tree distance %v exceeds (1+ε)·%v", v, spt.Dist[v], ex[v])
		}
	}
	return spt
}

func TestSPTOnVariedGraphs(t *testing.T) {
	eps := 0.25
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"path", graph.Path(96, graph.UnitWeights(), 1)},
		{"grid", graph.Grid(9, 9, graph.UniformWeights(1, 3), 2)},
		{"gnm", graph.Gnm(100, 320, graph.UniformWeights(1, 5), 3)},
		{"powerlaw", graph.PowerLaw(90, 2, graph.UniformWeights(1, 2), 4)},
		{"tree", graph.Tree(70, 3, graph.UnitWeights(), 5)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			h := buildPR(t, c.g, eps)
			checkSPT(t, h, 0, eps)
			checkSPT(t, h, int32(c.g.N/2), eps)
		})
	}
}

func TestSPTPathsMatchDistances(t *testing.T) {
	g := graph.Gnm(80, 240, graph.UniformWeights(1, 4), 7)
	h := buildPR(t, g, 0.3)
	spt := checkSPT(t, h, 0, 0.3)
	for v := int32(0); int(v) < g.N; v++ {
		path := spt.PathTo(v)
		if path == nil {
			continue
		}
		if path[0] != 0 || path[len(path)-1] != v {
			t.Fatalf("path endpoints %v", path)
		}
		var sum float64
		for i := 1; i < len(path); i++ {
			w, ok := h.G.HasEdge(path[i-1], path[i])
			if !ok {
				t.Fatalf("path step (%d,%d) not a graph edge", path[i-1], path[i])
			}
			sum += w
		}
		if math.Abs(sum-spt.Dist[v]) > 1e-6 {
			t.Fatalf("vertex %d: path weight %v != Dist %v", v, sum, spt.Dist[v])
		}
	}
}

func TestSPTErrNoPaths(t *testing.T) {
	g := graph.Path(32, graph.UnitWeights(), 1)
	h, err := hopset.Build(g, hopset.Params{Epsilon: 0.25}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildSPT(h, 0, 0, nil); err != ErrNoPaths {
		t.Fatalf("err=%v want ErrNoPaths", err)
	}
}

func TestSPTSourceOutOfRange(t *testing.T) {
	g := graph.Path(16, graph.UnitWeights(), 1)
	h := buildPR(t, g, 0.25)
	if _, err := BuildSPT(h, 99, 0, nil); err == nil {
		t.Fatal("out-of-range source accepted")
	}
	if _, err := BuildSPT(h, -1, 0, nil); err == nil {
		t.Fatal("negative source accepted")
	}
}

func TestSPTDisconnectedGraph(t *testing.T) {
	g := graph.MustFromEdges(6, []graph.Edge{
		graph.E(0, 1, 1), graph.E(1, 2, 2), graph.E(3, 4, 1), graph.E(4, 5, 1),
	})
	h := buildPR(t, g, 0.25)
	spt, err := BuildSPT(h, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := spt.Validate(h); err != nil {
		t.Fatal(err)
	}
	for _, v := range []int32{3, 4, 5} {
		if !math.IsInf(spt.Dist[v], 1) || spt.Parent[v] != -1 {
			t.Fatalf("vertex %d in other component: dist=%v parent=%d", v, spt.Dist[v], spt.Parent[v])
		}
	}
}

func TestSPTDeterministicAcrossWorkers(t *testing.T) {
	old := par.Workers()
	defer par.SetWorkers(old)
	g := graph.Gnm(120, 400, graph.UniformWeights(1, 6), 9)
	par.SetWorkers(1)
	hRef := buildPR(t, g, 0.25)
	ref, err := BuildSPT(hRef, 3, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 8} {
		par.SetWorkers(w)
		h := buildPR(t, g, 0.25)
		spt, err := BuildSPT(h, 3, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < g.N; v++ {
			if spt.Parent[v] != ref.Parent[v] || spt.Dist[v] != ref.Dist[v] {
				t.Fatalf("workers=%d vertex %d: (%d,%v) vs (%d,%v)",
					w, v, spt.Parent[v], spt.Dist[v], ref.Parent[v], ref.Dist[v])
			}
		}
	}
}

func TestSPTWithStrictWeights(t *testing.T) {
	// Strict-weight hopsets carry memory paths that can be lighter than the
	// edge weights; the peeled tree must still be valid and approximate.
	g := graph.Gnm(64, 200, graph.UniformWeights(1, 3), 11)
	h, err := hopset.Build(g, hopset.Params{Epsilon: 0.25, RecordPaths: true, Weights: hopset.WeightStrict}, nil)
	if err != nil {
		t.Fatal(err)
	}
	spt, err := BuildSPT(h, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := spt.Validate(h); err != nil {
		t.Fatal(err)
	}
	// The peeled tree realizes concrete graph paths, so distances can only
	// be at least exact.
	ex, _ := exact.DijkstraGraph(h.G, 0)
	for v := 0; v < g.N; v++ {
		if !math.IsInf(ex[v], 1) && spt.Dist[v] < ex[v]-1e-9 {
			t.Fatalf("vertex %d below exact", v)
		}
	}
}

func TestPointerJumpExactOnKnownTree(t *testing.T) {
	// Build a tiny hopset-free case and verify pointer jumping against a
	// sequential walk.
	g := graph.Tree(64, 2, graph.UniformWeights(1, 5), 13)
	h := buildPR(t, g, 0.25)
	spt := checkSPT(t, h, 0, 0.25)
	for v := int32(0); int(v) < g.N; v++ {
		var want float64
		for cur := v; cur != 0; cur = spt.Parent[cur] {
			want += spt.ParentW[cur]
		}
		if math.Abs(spt.Dist[v]-want) > 1e-9 {
			t.Fatalf("vertex %d: dist %v, sequential walk %v", v, spt.Dist[v], want)
		}
	}
}

func TestSPTTrackerCharged(t *testing.T) {
	g := graph.Gnm(60, 180, graph.UnitWeights(), 15)
	h := buildPR(t, g, 0.25)
	tr := pram.New()
	if _, err := BuildSPT(h, 0, 0, tr); err != nil {
		t.Fatal(err)
	}
	if c := tr.Snapshot(); c.Depth == 0 || c.Work == 0 {
		t.Fatalf("tracker not charged: %v", c)
	}
}
