// Package pathrep implements the path-reporting machinery of §4: given a
// path-reporting hopset (every hopset edge carries a memory path realizing
// its weight in G ∪ H_{k−1}, §4.1/§4.3), it computes a (1+ε)-approximate
// single-source shortest-path tree T = (V, E_T) with E_T ⊆ E — the original
// graph only — in the peel-down fashion of Algorithm 1:
//
//  1. Bellman–Ford from s over G ∪ H to the hop budget gives a tree that
//     may use hopset edges.
//  2. For k = λ down to k₀, every tree edge in H_k is replaced by its
//     memory path (edges of E and of hopsets below scale k); intermediate
//     path vertices receive distance/parent proposals via a sorted global
//     array M and adopt the best strictly-improving one.
//  3. Pointer jumping (§4.2) computes exact distances in the final tree.
package pathrep

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/adj"
	"repro/internal/hopset"
	"repro/internal/par"
	"repro/internal/pram"
	"repro/internal/relax"
)

// SPT is a (1+ε)-approximate shortest-path tree over the original graph.
type SPT struct {
	Source int32
	// Parent[v] is v's tree parent (-1 at the source and at vertices the
	// source cannot reach); (Parent[v], v) is always an edge of G.
	Parent []int32
	// ParentW[v] is the weight of the parent edge.
	ParentW []float64
	// Dist[v] is the exact distance from Source to v inside the tree
	// (+Inf if unreachable), computed by pointer jumping.
	Dist []float64
	// PeelRounds is the number of edge-replacing iterations executed.
	PeelRounds int
	// Scale is the weight unit of Dist/ParentW relative to the hopset's
	// normalized graph (1 from BuildSPT; rescaling wrappers update it).
	Scale float64
	// Relax is the scanned-arc/kernel accounting of the underlying
	// Bellman–Ford exploration over G ∪ H.
	Relax relax.Stats
}

// ErrNoPaths is returned when the hopset was built without RecordPaths.
var ErrNoPaths = errors.New("pathrep: hopset was built without RecordPaths (no memory property)")

// BuildSPT runs Algorithm 1 on the path-reporting hopset h from the given
// source. rounds is the Bellman–Ford hop budget over G ∪ H; 0 selects the
// same budget the stretch experiments use ((2β+1)·(ℓ+2)).
//
// BuildSPT rebuilds the G ∪ H adjacency on every call; query engines that
// hold a prebuilt adjacency should use BuildSPTOn instead.
func BuildSPT(h *hopset.Hopset, source int32, rounds int, tr *pram.Tracker) (*SPT, error) {
	return BuildSPTOn(h, nil, source, rounds, tr)
}

// BuildSPTOn is BuildSPT over a caller-supplied adjacency a, which must be
// adj.Build(h.G, h.Extras()) (nil rebuilds it). The adjacency and hopset
// are only read, and all per-query state is freshly allocated, so
// concurrent calls sharing a are safe and return identical trees.
func BuildSPTOn(h *hopset.Hopset, a *adj.Adj, source int32, rounds int, tr *pram.Tracker) (*SPT, error) {
	if !h.Params.RecordPaths {
		return nil, ErrNoPaths
	}
	if source < 0 || int(source) >= h.G.N {
		return nil, fmt.Errorf("pathrep: source %d out of range", source)
	}
	if rounds <= 0 {
		rounds = h.Sched.HopBudget() * (h.Sched.Ell + 2)
	}
	n := h.G.N
	if a == nil {
		a = adj.Build(h.G, h.Extras())
	}
	bf := relax.Run(a, []int32{source}, rounds, relax.Options{Tracker: tr})

	// Tree state: parent vertex, the hopset edge implementing the parent
	// edge (-1 = base-graph edge), parent edge weight, distance estimate.
	parent := make([]int32, n)
	parentHE := make([]int32, n)
	parentW := make([]float64, n)
	dist := make([]float64, n)
	for v := 0; v < n; v++ {
		parent[v] = bf.Parent[v]
		parentHE[v] = -1
		dist[v] = bf.Dist[v]
		if arc := bf.ParentArc[v]; arc >= 0 {
			parentW[v] = a.Wt[arc]
			if idx, ok := adj.IsExtra(a.Tag[arc]); ok {
				parentHE[v] = idx
			}
		}
	}

	spt := &SPT{Source: source, Scale: 1, Relax: bf.Stats}
	// Iterations j = 0 … λ−k₀ peel scales λ, λ−1, …, k₀ (§4.1).
	for k := h.Sched.Lambda; k >= h.Sched.K0; k-- {
		if peelScale(h, int16(k), parent, parentHE, parentW, dist, tr) {
			spt.PeelRounds++
		}
	}
	// No hopset edges may remain.
	for v := 0; v < n; v++ {
		if parentHE[v] >= 0 {
			return nil, fmt.Errorf("pathrep: vertex %d still has hopset parent edge after peeling", v)
		}
	}

	spt.Parent = parent
	spt.ParentW = parentW
	spt.Dist = pointerJump(parent, parentW, source, tr)
	// Unreachable vertices keep -1 parents and +Inf distances.
	for v := 0; v < n; v++ {
		if math.IsInf(dist[v], 1) {
			spt.Parent[v] = -1
			spt.ParentW[v] = 0
		}
	}
	return spt, nil
}

// proposal is one entry of the global array M of §4.1: vertex x can be
// reached with distance d through pred (whose edge to x is he / a base
// edge).
type proposal struct {
	x    int32
	d    float64
	pred int32
	he   int32
	w    float64
}

// peelScale replaces every tree edge of hopset scale k by its memory path.
// Returns whether any replacement happened.
func peelScale(h *hopset.Hopset, k int16, parent, parentHE []int32, parentW []float64, dist []float64, tr *pram.Tracker) bool {
	n := h.G.N
	var all []proposal
	replaced := false
	for v := int32(0); int(v) < n; v++ {
		he := parentHE[v]
		if he < 0 || h.Edges[he].Scale != k {
			continue
		}
		replaced = true
		e := h.Edges[he]
		steps := h.Paths[he]
		// Orient the memory path from parent[v] to v.
		if e.U == parent[v] && e.V == v {
			// forward
		} else if e.V == parent[v] && e.U == v {
			steps = hopset.ReversePath(e.U, steps)
		} else {
			panic(fmt.Sprintf("pathrep: tree edge (%d,%d) does not match hopset edge %d endpoints (%d,%d)",
				parent[v], v, he, e.U, e.V))
		}
		// Walk the path, proposing estimates for every vertex on it
		// (including v itself via the final step, which becomes v's new
		// parent edge — eliminating the scale-k edge).
		cur := parent[v]
		dp := dist[parent[v]]
		for _, s := range steps {
			dp += s.W
			all = append(all, proposal{x: s.To, d: dp, pred: cur, he: s.HEdge, w: s.W})
			cur = s.To
		}
		// Unconditional replacement for v: its scale-k parent edge must go.
		last := steps[len(steps)-1]
		prev := parent[v]
		if len(steps) > 1 {
			prev = steps[len(steps)-2].To
		}
		parent[v] = prev
		parentHE[v] = last.HEdge
		parentW[v] = last.W
		if dp < dist[v] {
			dist[v] = dp
		}
	}
	if !replaced {
		return false
	}
	// The array M: sorted by vertex, then distance, then predecessor
	// (deterministic total order); each vertex adopts the first entry for
	// it when it strictly improves its estimate (§4.1).
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.x != b.x {
			return a.x < b.x
		}
		if a.d != b.d {
			return a.d < b.d
		}
		if a.pred != b.pred {
			return a.pred < b.pred
		}
		return a.he < b.he
	})
	tr.Rounds(int64(log2ceil(len(all))+1), int64(len(all)))
	for i := 0; i < len(all); {
		p := all[i]
		for i < len(all) && all[i].x == p.x {
			i++
		}
		if p.d < dist[p.x] {
			dist[p.x] = p.d
			parent[p.x] = p.pred
			parentHE[p.x] = p.he
			parentW[p.x] = p.w
		}
	}
	return true
}

// pointerJump computes exact tree distances by the doubling procedure of
// §4.2: for log n iterations, d'(v) += d'(q(v)); q(v) = q(q(v)).
func pointerJump(parent []int32, parentW []float64, source int32, tr *pram.Tracker) []float64 {
	n := len(parent)
	d := make([]float64, n)
	q := make([]int32, n)
	par.For(n, func(v int) {
		if parent[v] < 0 || int32(v) == source {
			q[v] = int32(v)
			d[v] = 0
		} else {
			q[v] = parent[v]
			d[v] = parentW[v]
		}
	})
	d2 := make([]float64, n)
	q2 := make([]int32, n)
	for iter := 0; iter <= log2ceil(n)+1; iter++ {
		moved := false
		par.For(n, func(v int) {
			d2[v] = d[v] + d[q[v]]
			q2[v] = q[q[v]]
		})
		for v := 0; v < n; v++ {
			if q2[v] != q[v] {
				moved = true
				break
			}
		}
		copy(d, d2)
		copy(q, q2)
		tr.Rounds(2, int64(n))
		if !moved {
			break
		}
	}
	// Vertices whose chain does not end at the source are unreachable.
	for v := 0; v < n; v++ {
		if q[v] != source {
			d[v] = math.Inf(1)
		}
	}
	return d
}

// Validate checks that the SPT is a well-formed tree over the original
// graph rooted at the source: parent edges exist in g with the recorded
// weight, parent chains reach the source acyclically, and Dist is
// consistent with the parent weights.
func (t *SPT) Validate(h *hopset.Hopset) error {
	g := h.G
	n := g.N
	if int(t.Source) >= n {
		return fmt.Errorf("source out of range")
	}
	for v := int32(0); int(v) < n; v++ {
		p := t.Parent[v]
		if v == t.Source {
			if p != -1 {
				return fmt.Errorf("source has parent %d", p)
			}
			continue
		}
		if p < 0 {
			if !math.IsInf(t.Dist[v], 1) {
				return fmt.Errorf("vertex %d has no parent but finite distance %v", v, t.Dist[v])
			}
			continue
		}
		w, ok := g.HasEdge(p, v)
		if !ok {
			return fmt.Errorf("tree edge (%d,%d) is not in the original graph", p, v)
		}
		w *= t.Scale
		if math.Abs(w-t.ParentW[v]) > 1e-9*math.Max(1, w) {
			return fmt.Errorf("tree edge (%d,%d): weight %v recorded %v", p, v, w, t.ParentW[v])
		}
		if math.Abs(t.Dist[p]+w-t.Dist[v]) > 1e-6 {
			return fmt.Errorf("vertex %d: Dist %v != Dist[parent] %v + w %v", v, t.Dist[v], t.Dist[p], w)
		}
	}
	// Acyclicity: chains terminate at the source.
	for v := int32(0); int(v) < n; v++ {
		if t.Parent[v] < 0 {
			continue
		}
		steps := 0
		for cur := v; cur != t.Source; cur = t.Parent[cur] {
			if t.Parent[cur] < 0 {
				return fmt.Errorf("chain from %d dead-ends at %d", v, cur)
			}
			steps++
			if steps > n {
				return fmt.Errorf("cycle in parent pointers reachable from %d", v)
			}
		}
	}
	return nil
}

// PathTo returns the tree path from the source to v (nil when unreachable).
func (t *SPT) PathTo(v int32) []int32 {
	if math.IsInf(t.Dist[v], 1) {
		return nil
	}
	var rev []int32
	for cur := v; ; cur = t.Parent[cur] {
		rev = append(rev, cur)
		if cur == t.Source {
			break
		}
		if len(rev) > len(t.Parent) {
			return nil
		}
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

func log2ceil(n int) int {
	l := 0
	for v := 1; v < n; v <<= 1 {
		l++
	}
	return l
}
