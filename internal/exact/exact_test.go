package exact

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/adj"
	"repro/internal/graph"
)

func TestKnownDistances(t *testing.T) {
	// Square with a diagonal: 0-1 (1), 1-2 (1), 2-3 (1), 3-0 (1), 0-2 (1.5).
	g := graph.MustFromEdges(4, []graph.Edge{
		graph.E(0, 1, 1), graph.E(1, 2, 1), graph.E(2, 3, 1), graph.E(3, 0, 1), graph.E(0, 2, 1.5),
	})
	dist, parent := DijkstraGraph(g, 0)
	want := []float64{0, 1, 1.5, 1}
	for v, w := range want {
		if dist[v] != w {
			t.Fatalf("dist=%v want %v", dist, want)
		}
	}
	if parent[0] != -1 || parent[1] != 0 || parent[2] != 0 || parent[3] != 0 {
		t.Fatalf("parents=%v", parent)
	}
}

func TestExtrasChangeDistances(t *testing.T) {
	g := graph.Path(5, graph.UnitWeights(), 1)
	a := adj.Build(g, []adj.Extra{{U: 0, V: 4, W: 1.5}})
	dist, _ := Dijkstra(a, 0)
	if dist[4] != 1.5 {
		t.Fatalf("extra edge ignored: %v", dist[4])
	}
	if dist[3] != 2.5 { // 0 → 4 → 3
		t.Fatalf("dist[3]=%v want 2.5", dist[3])
	}
}

func TestTriangleInequalityProperty(t *testing.T) {
	prop := func(seed int64, mRaw uint8) bool {
		n := 30
		g := graph.Gnm(n, n-1+int(mRaw), graph.UniformWeights(1, 9), seed)
		d0, _ := DijkstraGraph(g, 0)
		d1, _ := DijkstraGraph(g, int32(n-1))
		// d(0,v) ≤ d(0,n−1) + d(n−1,v) for all v.
		for v := 0; v < n; v++ {
			if math.IsInf(d0[v], 1) || math.IsInf(d1[v], 1) {
				continue
			}
			if d0[v] > d0[n-1]+d1[v]+1e-9 {
				return false
			}
		}
		// Symmetry on the endpoints.
		return math.Abs(d0[n-1]-d1[0]) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestParentEdgesTight(t *testing.T) {
	g := graph.Gnm(80, 240, graph.UniformWeights(1, 7), 5)
	a := adj.Build(g, nil)
	dist, parent := Dijkstra(a, 3)
	for v := int32(0); int(v) < g.N; v++ {
		p := parent[v]
		if p < 0 {
			continue
		}
		w, ok := g.HasEdge(p, v)
		if !ok {
			t.Fatalf("parent edge (%d,%d) missing", p, v)
		}
		if math.Abs(dist[p]+w-dist[v]) > 1e-9 {
			t.Fatalf("vertex %d: parent edge not tight", v)
		}
	}
}
