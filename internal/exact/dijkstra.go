// Package exact provides exact sequential shortest-path ground truth
// (Dijkstra) used to validate every approximate result in the repository.
package exact

import (
	"container/heap"
	"math"

	"repro/internal/adj"
	"repro/internal/graph"
)

// Dijkstra returns exact single-source distances and parents over the
// combined adjacency a.
func Dijkstra(a *adj.Adj, s int32) ([]float64, []int32) {
	n := a.N
	dist := make([]float64, n)
	parent := make([]int32, n)
	for v := 0; v < n; v++ {
		dist[v] = math.Inf(1)
		parent[v] = -1
	}
	dist[s] = 0
	pq := &vheap{{v: s, d: 0}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(vitem)
		if it.d > dist[it.v] {
			continue
		}
		for arc := a.Off[it.v]; arc < a.Off[it.v+1]; arc++ {
			u := a.Nbr[arc]
			if d := it.d + a.Wt[arc]; d < dist[u] {
				dist[u] = d
				parent[u] = it.v
				heap.Push(pq, vitem{v: u, d: d})
			}
		}
	}
	return dist, parent
}

// DijkstraGraph runs Dijkstra on a plain graph (no extras).
func DijkstraGraph(g *graph.Graph, s int32) ([]float64, []int32) {
	return Dijkstra(adj.Build(g, nil), s)
}

type vitem struct {
	v int32
	d float64
}

type vheap []vitem

func (h vheap) Len() int            { return len(h) }
func (h vheap) Less(i, j int) bool  { return h[i].d < h[j].d || (h[i].d == h[j].d && h[i].v < h[j].v) }
func (h vheap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *vheap) Push(x interface{}) { *h = append(*h, x.(vitem)) }
func (h *vheap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
