package baseline

import (
	"math"
	"testing"

	"repro/internal/adj"
	"repro/internal/bmf"
	"repro/internal/graph"
	"repro/internal/hopset"
)

// bellmanFordRef is an independent O(nm) reference implementation.
func bellmanFordRef(g *graph.Graph, s int32) []float64 {
	dist := make([]float64, g.N)
	for v := range dist {
		dist[v] = math.Inf(1)
	}
	dist[s] = 0
	for i := 0; i < g.N; i++ {
		for _, e := range g.Edges {
			if d := dist[e.U] + e.W; d < dist[e.V] {
				dist[e.V] = d
			}
			if d := dist[e.V] + e.W; d < dist[e.U] {
				dist[e.U] = d
			}
		}
	}
	return dist
}

func TestDijkstraMatchesBellmanFord(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		g := graph.Gnm(60, 180, graph.UniformWeights(1, 9), seed)
		dist, parent := DijkstraGraph(g, 0)
		want := bellmanFordRef(g, 0)
		for v := 0; v < g.N; v++ {
			if math.Abs(dist[v]-want[v]) > 1e-9 {
				t.Fatalf("seed %d vertex %d: %v vs %v", seed, v, dist[v], want[v])
			}
		}
		// Parent consistency.
		for v := int32(0); int(v) < g.N; v++ {
			p := parent[v]
			if v == 0 || p < 0 {
				continue
			}
			w, ok := g.HasEdge(p, v)
			if !ok {
				t.Fatalf("parent edge (%d,%d) missing", p, v)
			}
			if math.Abs(dist[p]+w-dist[v]) > 1e-9 {
				t.Fatalf("parent edge not tight at %d", v)
			}
		}
	}
}

func TestDijkstraDisconnected(t *testing.T) {
	g := graph.MustFromEdges(4, []graph.Edge{graph.E(0, 1, 2)})
	dist, _ := DijkstraGraph(g, 0)
	if dist[0] != 0 || dist[1] != 2 {
		t.Fatalf("dist=%v", dist)
	}
	if !math.IsInf(dist[2], 1) || !math.IsInf(dist[3], 1) {
		t.Fatalf("disconnected reached: %v", dist)
	}
}

func TestRandHopsetStretchAndSize(t *testing.T) {
	g := graph.Gnm(128, 512, graph.UniformWeights(1, 4), 3)
	edges, sched, err := RandHopset(g, RandHopsetParams{Epsilon: 0.25, Seed: 42}, 0)
	if err != nil {
		t.Fatal(err)
	}
	ng, _ := g.Normalized()
	// Soundness: randomized edges also use tight (realizable) weights.
	byU := make(map[int32][]hopset.Edge)
	for _, e := range edges {
		byU[e.U] = append(byU[e.U], e)
	}
	for u, es := range byU {
		dist, _ := DijkstraGraph(ng, u)
		for _, e := range es {
			if e.W < dist[e.V]-1e-9 {
				t.Fatalf("edge (%d,%d) w=%v below exact %v", e.U, e.V, e.W, dist[e.V])
			}
		}
	}
	// Stretch within the same hop budget the deterministic tests use.
	extras := make([]adj.Extra, len(edges))
	for i, e := range edges {
		extras[i] = adj.Extra{U: e.U, V: e.V, W: e.W}
	}
	a := adj.Build(ng, extras)
	budget := sched.HopBudget() * (sched.Ell + 2)
	for _, s := range []int32{0, 64, 127} {
		exact, _ := DijkstraGraph(ng, s)
		if r := bmf.RoundsToApprox(a, []int32{s}, exact, 0.25, budget, nil); r < 0 {
			t.Fatalf("source %d: randomized hopset missed (1+ε) within %d rounds", s, budget)
		}
	}
}

func TestRandHopsetSeedsDiffer(t *testing.T) {
	g := graph.Gnm(96, 400, graph.UnitWeights(), 5)
	a, _, err := RandHopset(g, RandHopsetParams{Epsilon: 0.3, Seed: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := RandHopset(g, RandHopsetParams{Epsilon: 0.3, Seed: 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	c, _, err := RandHopset(g, RandHopsetParams{Epsilon: 0.3, Seed: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Same seed reproduces; different seeds (generically) differ.
	if len(a) != len(c) {
		t.Fatal("same seed produced different sizes")
	}
	same := len(a) == len(b)
	if same {
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Log("warning: two seeds produced identical hopsets (possible but unlikely)")
	}
}

func TestPlainBFRounds(t *testing.T) {
	g := graph.Path(64, graph.UnitWeights(), 1)
	// Exact distances on a path need diameter rounds.
	if r := PlainBFRounds(g, 0, 0); r != 63 {
		t.Fatalf("rounds=%d want 63", r)
	}
	// Looser eps needs slightly fewer... never more.
	if r := PlainBFRounds(g, 0, 0.5); r > 63 {
		t.Fatalf("rounds=%d", r)
	}
}

func TestRandHopsetInvalidParams(t *testing.T) {
	g := graph.Path(10, graph.UnitWeights(), 1)
	if _, _, err := RandHopset(g, RandHopsetParams{Epsilon: 0}, 0); err == nil {
		t.Fatal("epsilon 0 accepted")
	}
}
