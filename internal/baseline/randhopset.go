package baseline

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/adj"
	"repro/internal/cluster"
	"repro/internal/graph"
	"repro/internal/hopset"
	"repro/internal/limbfs"
)

// RandHopsetParams parameterizes the randomized baseline construction.
type RandHopsetParams struct {
	Epsilon       float64
	Kappa         int
	Rho           float64
	EffectiveBeta int
	Seed          int64
}

// RandHopset builds a hopset with the randomized superclustering the paper
// derandomizes (§1.2): instead of computing a ruling set over the popular
// clusters, each cluster is independently sampled with probability
// 1/(degᵢ+1) and superclusters grow around sampled clusters, as in
// [Coh94, EN19]. Everything else — scales, phases, thresholds, exploration
// machinery, interconnection — is shared with the deterministic
// construction, so experiment E10 compares exactly the ingredient the paper
// replaces.
//
// The output reuses hopset.Edge for provenance but is produced by an
// independent code path; only the deterministic construction carries the
// paper's guarantees.
func RandHopset(g *graph.Graph, p RandHopsetParams, seedOffset int64) ([]hopset.Edge, *hopset.Schedule, error) {
	hp := hopset.Params{Epsilon: p.Epsilon, Kappa: p.Kappa, Rho: p.Rho, EffectiveBeta: p.EffectiveBeta}
	ng, _ := g.Normalized()
	sched, err := hopset.NewSchedule(ng.N, ng.AspectRatioUpperBound(), hp)
	if err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed + seedOffset))
	var all []hopset.Edge
	var prev []hopset.Edge
	epsPrev := 0.0
	for k := sched.K0; k <= sched.Lambda; k++ {
		hk := randScale(ng, sched, k, epsPrev, prev, rng)
		all = append(all, hk...)
		prev = hk
		epsPrev = (1+epsPrev)*(1+sched.EpsScale) - 1
	}
	return all, sched, nil
}

func randScale(g *graph.Graph, sched *hopset.Schedule, k int, epsPrev float64, prev []hopset.Edge, rng *rand.Rand) []hopset.Edge {
	n := g.N
	extras := make([]adj.Extra, len(prev))
	for i, e := range prev {
		extras[i] = adj.Extra{U: e.U, V: e.V, W: e.W}
	}
	a := adj.Build(g, extras)
	part := cluster.Singletons(n)
	centerDist := make([]float64, n)
	var out []hopset.Edge

	for i := 0; i <= sched.Ell && part.Len() > 0; i++ {
		distCap := (1 + epsPrev) * sched.Delta(k, i)
		ex := &limbfs.Explorer{
			A: a, Part: part, CenterDist: centerDist,
			HopCap: sched.HopBudget(), DistCap: distCap, X: sched.Deg[i] + 1,
		}
		last := i == sched.Ell || part.Len() == 1
		if last {
			if part.Len() > 1 {
				ex.X = part.Len()
				recs := ex.Detect()
				out = appendInterconnects(out, part, recs, func(int32) bool { return true }, k, i)
			}
			break
		}
		recs := ex.Detect()

		// Randomized superclustering: sample cluster centers with
		// probability 1/(degᵢ+1) ([Coh94, EN19] style).
		prob := 1.0 / float64(sched.Deg[i]+1)
		var sampled []int32
		for c := int32(0); int(c) < part.Len(); c++ {
			if rng.Float64() < prob {
				sampled = append(sampled, c)
			}
		}
		super := make([]bool, part.Len())
		newPart := cluster.Empty(n)
		if len(sampled) > 0 {
			cov := ex.BFS(sampled, 2*sched.IDBits)
			newIdx := make([]int32, part.Len())
			for c := range newIdx {
				newIdx[c] = -1
			}
			members := make([][]int32, len(sampled))
			for qi, c := range sampled {
				newIdx[c] = int32(qi)
			}
			order := pulseOrder(cov, part.Len())
			for _, c := range order {
				root := cov.Origin[c]
				super[c] = true
				members[newIdx[root]] = append(members[newIdx[root]], part.Members[c]...)
				if c == root {
					continue
				}
				est := cov.Est[c]
				out = append(out, hopset.Edge{
					U: part.Centers[c], V: part.Centers[root], W: est,
					Scale: int16(k), Phase: int8(i), Kind: hopset.Superclustering,
				})
				for _, v := range part.Members[c] {
					centerDist[v] += est
				}
			}
			for qi, c := range sampled {
				ms := members[qi]
				sort.Slice(ms, func(x, y int) bool { return ms[x] < ms[y] })
				var rad float64
				for _, v := range ms {
					if centerDist[v] > rad {
						rad = centerDist[v]
					}
				}
				newPart.Add(part.Centers[c], ms, rad)
			}
		}
		// Unlike the deterministic algorithm, a popular cluster may stay
		// unsampled and uncovered; it still interconnects, but its degree
		// can exceed degᵢ only boundedly because its record list is
		// truncated at degᵢ+1 — matching the randomized constructions,
		// whose size bounds hold in expectation.
		inU := func(c int32) bool { return !super[c] }
		out = appendInterconnects(out, part, recs, inU, k, i)
		part = newPart
	}
	return out
}

func pulseOrder(cov *limbfs.BFSResult, p int) []int32 {
	order := make([]int32, 0, p)
	for c := int32(0); int(c) < p; c++ {
		if cov.Origin[c] >= 0 {
			order = append(order, c)
		}
	}
	sort.Slice(order, func(x, y int) bool {
		if cov.Pulse[order[x]] != cov.Pulse[order[y]] {
			return cov.Pulse[order[x]] < cov.Pulse[order[y]]
		}
		return order[x] < order[y]
	})
	return order
}

func appendInterconnects(out []hopset.Edge, part *cluster.Partition, recs [][]limbfs.Record, inU func(int32) bool, k, i int) []hopset.Edge {
	for c := int32(0); int(c) < part.Len(); c++ {
		if !inU(c) {
			continue
		}
		cu := part.Centers[c]
		for _, r := range recs[c] {
			if r.Src == c || !inU(r.Src) {
				continue
			}
			cv := part.Centers[r.Src]
			if cu >= cv {
				continue
			}
			out = append(out, hopset.Edge{
				U: cu, V: cv, W: r.CDist,
				Scale: int16(k), Phase: int8(i), Kind: hopset.Interconnection,
			})
		}
	}
	return out
}

// PlainBFRounds runs hop-unlimited Bellman–Ford style relaxation over the
// bare graph and returns the rounds needed to reach (1+eps)-approximate
// distances from s — the no-hopset baseline of experiment E11 (≈ the hop
// diameter for eps → 0).
func PlainBFRounds(g *graph.Graph, s int32, eps float64) int {
	a := adj.Build(g, nil)
	ref, _ := Dijkstra(a, s)
	n := g.N
	dist := make([]float64, n)
	for v := range dist {
		dist[v] = math.Inf(1)
	}
	dist[s] = 0
	next := make([]float64, n)
	for round := 1; ; round++ {
		changed := false
		for v := 0; v < n; v++ {
			best := dist[v]
			for arc := a.Off[v]; arc < a.Off[v+1]; arc++ {
				if d := dist[a.Nbr[arc]] + a.Wt[arc]; d < best {
					best = d
				}
			}
			next[v] = best
			if best != dist[v] {
				changed = true
			}
		}
		copy(dist, next)
		ok := true
		for v := 0; v < n && ok; v++ {
			if !math.IsInf(ref[v], 1) && dist[v] > (1+eps)*ref[v]+1e-12 {
				ok = false
			}
		}
		if ok {
			return round
		}
		if !changed {
			return -1
		}
	}
}
