// Package baseline provides the reference algorithms the reproduction is
// judged against: exact sequential Dijkstra (ground truth for stretch),
// plain parallel Bellman–Ford without a hopset (the motivation baseline —
// depth proportional to the hop diameter), and a randomized
// sampling-based hopset in the style the paper derandomizes
// ([Coh94, EN19], experiment E10).
package baseline

import (
	"repro/internal/adj"
	"repro/internal/exact"
	"repro/internal/graph"
)

// Dijkstra returns exact single-source distances and parents over the
// combined adjacency a. It forwards to package exact.
func Dijkstra(a *adj.Adj, s int32) ([]float64, []int32) { return exact.Dijkstra(a, s) }

// DijkstraGraph runs Dijkstra on a plain graph (no extras).
func DijkstraGraph(g *graph.Graph, s int32) ([]float64, []int32) {
	return exact.DijkstraGraph(g, s)
}
