// Package adj builds the combined adjacency structures G ∪ H the paper's
// explorations run in: the base graph plus the current hopset edges
// (G_{k−1} = (V, E ∪ H_{k−1}) in §2, G = (V, E ∪ H) in §3.4/§4).
//
// Every arc carries a tag identifying its origin — a base-graph edge or an
// extra (hopset) edge — which the path-reporting machinery of §4 uses to
// peel hopset edges back into base-graph paths.
package adj

import (
	"sort"

	"repro/internal/graph"
)

// Extra is an additional weighted undirected edge (typically a hopset edge).
type Extra struct {
	U, V int32
	W    float64
}

// Adj is a CSR adjacency over the union of a base graph and extra edges.
type Adj struct {
	N   int
	Off []int32   // len N+1
	Nbr []int32   // neighbor per arc
	Wt  []float64 // weight per arc
	Tag []int32   // origin per arc: see GraphTag/ExtraTag
}

// ExtraTag returns the arc tag for extra edge index i (i ≥ 0).
func ExtraTag(i int32) int32 { return i }

// GraphTag returns the arc tag for base-graph undirected edge id eid.
func GraphTag(eid int32) int32 { return -eid - 1 }

// IsExtra reports whether tag denotes an extra edge, and its index.
func IsExtra(tag int32) (int32, bool) {
	if tag >= 0 {
		return tag, true
	}
	return 0, false
}

// GraphEdgeID returns the base-graph edge id for a non-extra tag.
func GraphEdgeID(tag int32) int32 { return -tag - 1 }

// Build returns the combined adjacency of g and extras. Adjacency lists are
// sorted by (neighbor, weight, tag) so traversal order is canonical.
func Build(g *graph.Graph, extras []Extra) *Adj {
	n := g.N
	a := &Adj{N: n}
	deg := make([]int32, n+1)
	for v := 0; v < n; v++ {
		deg[v+1] = g.Off[v+1] - g.Off[v]
	}
	for _, e := range extras {
		deg[e.U+1]++
		deg[e.V+1]++
	}
	for v := 0; v < n; v++ {
		deg[v+1] += deg[v]
	}
	a.Off = deg
	arcs := int(deg[n])
	a.Nbr = make([]int32, arcs)
	a.Wt = make([]float64, arcs)
	a.Tag = make([]int32, arcs)
	at := make([]int32, n)
	copy(at, a.Off[:n])
	put := func(u, v int32, w float64, tag int32) {
		a.Nbr[at[u]], a.Wt[at[u]], a.Tag[at[u]] = v, w, tag
		at[u]++
	}
	for v := int32(0); int(v) < n; v++ {
		lo, hi := g.Off[v], g.Off[v+1]
		for arc := lo; arc < hi; arc++ {
			put(v, g.Nbr[arc], g.Wt[arc], GraphTag(g.EID[arc]))
		}
	}
	for i, e := range extras {
		put(e.U, e.V, e.W, ExtraTag(int32(i)))
		put(e.V, e.U, e.W, ExtraTag(int32(i)))
	}
	for v := 0; v < n; v++ {
		sortArcs(a, int(a.Off[v]), int(a.Off[v+1]))
	}
	return a
}

func sortArcs(a *Adj, lo, hi int) {
	idx := make([]int, hi-lo)
	for i := range idx {
		idx[i] = lo + i
	}
	sort.Slice(idx, func(x, y int) bool {
		i, j := idx[x], idx[y]
		if a.Nbr[i] != a.Nbr[j] {
			return a.Nbr[i] < a.Nbr[j]
		}
		if a.Wt[i] != a.Wt[j] {
			return a.Wt[i] < a.Wt[j]
		}
		return a.Tag[i] < a.Tag[j]
	})
	nbr := make([]int32, hi-lo)
	wt := make([]float64, hi-lo)
	tag := make([]int32, hi-lo)
	for x, i := range idx {
		nbr[x], wt[x], tag[x] = a.Nbr[i], a.Wt[i], a.Tag[i]
	}
	copy(a.Nbr[lo:hi], nbr)
	copy(a.Wt[lo:hi], wt)
	copy(a.Tag[lo:hi], tag)
}

// Arcs returns the number of directed arcs.
func (a *Adj) Arcs() int { return len(a.Nbr) }

// Degree returns the combined degree of v.
func (a *Adj) Degree(v int32) int { return int(a.Off[v+1] - a.Off[v]) }
