package adj

import (
	"testing"

	"repro/internal/graph"
)

func testGraph() *graph.Graph {
	return graph.MustFromEdges(4, []graph.Edge{
		graph.E(0, 1, 1), graph.E(1, 2, 2), graph.E(2, 3, 3),
	})
}

func TestBuildNoExtras(t *testing.T) {
	g := testGraph()
	a := Build(g, nil)
	if a.N != 4 || a.Arcs() != 6 {
		t.Fatalf("n=%d arcs=%d", a.N, a.Arcs())
	}
	if a.Degree(1) != 2 {
		t.Fatalf("degree(1)=%d", a.Degree(1))
	}
	// Every arc should be a graph arc with a valid edge id.
	for i := range a.Tag {
		if _, isExtra := IsExtra(a.Tag[i]); isExtra {
			t.Fatalf("arc %d tagged extra", i)
		}
		eid := GraphEdgeID(a.Tag[i])
		if eid < 0 || int(eid) >= g.M() {
			t.Fatalf("arc %d: bad edge id %d", i, eid)
		}
	}
}

func TestBuildWithExtras(t *testing.T) {
	g := testGraph()
	extras := []Extra{{U: 0, V: 3, W: 2.5}, {U: 0, V: 2, W: 7}}
	a := Build(g, extras)
	if a.Arcs() != 6+4 {
		t.Fatalf("arcs=%d", a.Arcs())
	}
	// Vertex 0 now has neighbors 1 (graph), 2 (extra), 3 (extra), sorted.
	lo, hi := a.Off[0], a.Off[1]
	if hi-lo != 3 {
		t.Fatalf("deg(0)=%d", hi-lo)
	}
	wantNbr := []int32{1, 2, 3}
	for i, arc := 0, lo; arc < hi; i, arc = i+1, arc+1 {
		if a.Nbr[arc] != wantNbr[i] {
			t.Fatalf("nbr order %v", a.Nbr[lo:hi])
		}
	}
	// Check extra tags round-trip.
	found := 0
	for arc := lo; arc < hi; arc++ {
		if idx, ok := IsExtra(a.Tag[arc]); ok {
			found++
			e := extras[idx]
			if (e.U != 0 && e.V != 0) || a.Wt[arc] != e.W {
				t.Fatalf("extra arc mismatch: idx=%d w=%v", idx, a.Wt[arc])
			}
		}
	}
	if found != 2 {
		t.Fatalf("found %d extra arcs at vertex 0, want 2", found)
	}
}

func TestTagsRoundTrip(t *testing.T) {
	for _, eid := range []int32{0, 1, 5, 1000} {
		tag := GraphTag(eid)
		if _, ok := IsExtra(tag); ok {
			t.Fatalf("graph tag %d classified extra", tag)
		}
		if got := GraphEdgeID(tag); got != eid {
			t.Fatalf("round trip eid %d -> %d", eid, got)
		}
	}
	for _, i := range []int32{0, 3, 99} {
		tag := ExtraTag(i)
		idx, ok := IsExtra(tag)
		if !ok || idx != i {
			t.Fatalf("extra tag round trip %d -> %d,%v", i, idx, ok)
		}
	}
}

func TestParallelExtraEdgesKept(t *testing.T) {
	g := testGraph()
	// Duplicate extras between the same endpoints must both appear (the
	// hopset may legitimately produce parallel edges across scales; the
	// lightest wins during traversal automatically).
	a := Build(g, []Extra{{U: 0, V: 3, W: 5}, {U: 0, V: 3, W: 4}})
	cnt := 0
	for arc := a.Off[0]; arc < a.Off[1]; arc++ {
		if a.Nbr[arc] == 3 {
			cnt++
		}
	}
	if cnt != 2 {
		t.Fatalf("parallel extras collapsed: %d", cnt)
	}
}
