package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
)

// DebugHandler wires the stdlib profiling surface: net/http/pprof under
// /debug/pprof/ and expvar under /debug/vars. It is mounted on its own
// listener (the -debug-addr flag) rather than the serving port, so
// profiling endpoints are never reachable from the query path.
func DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}

// ListenDebug binds addr and serves DebugHandler in the background,
// returning the bound address (useful with ":0"). The listener lives for
// the life of the process; debug servers have no graceful-drain needs.
func ListenDebug(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: DebugHandler()}
	go srv.Serve(ln)
	return ln.Addr().String(), nil
}
