package obs

import (
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

type sloLogSink struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *sloLogSink) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *sloLogSink) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func newTestSLO(def Objective) (*SLO, *time.Time, *sloLogSink) {
	sink := &sloLogSink{}
	s := NewSLO(def, slog.New(slog.NewJSONHandler(sink, nil)))
	now := time.Unix(1_700_000_000, 0)
	s.now = func() time.Time { return now }
	return s, &now, sink
}

func findDim(t *testing.T, gs GraphStatus, name string) Dimension {
	t.Helper()
	for _, d := range gs.Dimensions {
		if d.Name == name {
			return d
		}
	}
	t.Fatalf("dimension %q missing from %+v", name, gs)
	return Dimension{}
}

func TestSLOStaysOKUnderBudget(t *testing.T) {
	s, _, _ := newTestSLO(DefaultObjective())
	for i := 0; i < 1000; i++ {
		s.ObserveRequest("g", 200, time.Millisecond, false)
	}
	st := s.Status()
	if len(st) != 1 || st[0].State != StateOK {
		t.Fatalf("status: %+v", st)
	}
	if d := findDim(t, st[0], "latency"); d.Burn5m != 0 || d.Total5m != 1000 {
		t.Fatalf("latency dim: %+v", d)
	}
}

func TestSLOLatencyBurnAndRecovery(t *testing.T) {
	s, now, sink := newTestSLO(Objective{
		LatencyTarget: 10 * time.Millisecond, LatencyBudget: 0.01,
		ErrorBudget: 1, StaleBudget: 1, StretchBudget: 1,
	})
	// 10% slow — 10x the budget — sustained over both windows.
	for b := 0; b < sloBuckets; b++ {
		for i := 0; i < 10; i++ {
			dur := time.Millisecond
			if i == 0 {
				dur = 50 * time.Millisecond
			}
			s.ObserveRequest("g", 200, dur, false)
		}
		*now = now.Add(sloBucketSeconds * time.Second)
	}
	st := s.Status()
	if st[0].State != StateViolated {
		t.Fatalf("want violated, got %+v", st[0])
	}
	d := findDim(t, st[0], "latency")
	if d.Burn5m < 9 || d.Burn1h < 9 {
		t.Fatalf("burn rates: %+v", d)
	}
	if !strings.Contains(sink.String(), `"event":"slo_transition"`) {
		t.Fatalf("no transition event logged: %s", sink.String())
	}

	// An hour of clean traffic drains both windows back to ok.
	for b := 0; b < sloBuckets; b++ {
		for i := 0; i < 10; i++ {
			s.ObserveRequest("g", 200, time.Millisecond, false)
		}
		*now = now.Add(sloBucketSeconds * time.Second)
	}
	if st := s.Status(); st[0].State != StateOK {
		t.Fatalf("want recovery to ok, got %+v", st[0])
	}
	if !strings.Contains(sink.String(), `"to":"ok"`) {
		t.Fatalf("no recovery transition logged: %s", sink.String())
	}
}

// A short spike trips only the 5m window: burning, not violated.
func TestSLOShortSpikeIsBurningOnly(t *testing.T) {
	s, now, _ := newTestSLO(Objective{
		LatencyTarget: 10 * time.Millisecond, LatencyBudget: 0.01,
		ErrorBudget: 1, StaleBudget: 1, StretchBudget: 1,
	})
	// 55 minutes of clean traffic.
	for b := 0; b < sloBuckets-sloShortBuckets; b++ {
		for i := 0; i < 100; i++ {
			s.ObserveRequest("g", 200, time.Millisecond, false)
		}
		*now = now.Add(sloBucketSeconds * time.Second)
	}
	// 5 minutes at 2% slow: the 5m window burns at 2x budget while the
	// 1h window (40 slow of 24000) stays well under 1.
	for b := 0; b < sloShortBuckets; b++ {
		for i := 0; i < 100; i++ {
			dur := time.Millisecond
			if i < 2 {
				dur = 50 * time.Millisecond
			}
			s.ObserveRequest("g", 200, dur, false)
		}
		*now = now.Add(sloBucketSeconds * time.Second)
	}
	*now = now.Add(-sloBucketSeconds * time.Second) // status at the spike's end
	st := s.Status()
	if st[0].State != StateBurning {
		t.Fatalf("want burning, got %+v", st[0])
	}
	d := findDim(t, st[0], "latency")
	if d.Burn5m < 1 || d.Burn1h >= 1 {
		t.Fatalf("window split wrong: %+v", d)
	}
}

// Zero stretch budget: one audited violation flips the graph to violated
// immediately, without waiting for a bucket rotation.
func TestSLOStretchViolationIsImmediate(t *testing.T) {
	s, _, sink := newTestSLO(DefaultObjective())
	for i := 0; i < 100; i++ {
		s.ObserveAudit("g", false)
	}
	if st := s.Status(); st[0].State != StateOK {
		t.Fatalf("clean audits should be ok: %+v", st[0])
	}
	s.ObserveAudit("g", true)
	st := s.Status()
	if st[0].State != StateViolated {
		t.Fatalf("violation did not trip SLO: %+v", st[0])
	}
	log := sink.String()
	if !strings.Contains(log, `"dimension":"stretch"`) || !strings.Contains(log, `"to":"violated"`) {
		t.Fatalf("transition event wrong: %s", log)
	}
}

func TestSLOErrorAndStaleDimensions(t *testing.T) {
	s, _, _ := newTestSLO(Objective{
		LatencyTarget: time.Second, LatencyBudget: 1,
		ErrorBudget: 0.001, StaleBudget: 0.01, StretchBudget: 1,
	})
	for i := 0; i < 100; i++ {
		status := 200
		if i < 10 {
			status = 500
		}
		s.ObserveRequest("g", status, time.Millisecond, i < 50)
	}
	st := s.Status()
	if d := findDim(t, st[0], "errors"); d.Bad5m != 10 || d.Burn5m < 99 {
		t.Fatalf("errors dim: %+v", d)
	}
	if d := findDim(t, st[0], "stale"); d.Bad5m != 50 || d.Burn5m < 49 {
		t.Fatalf("stale dim: %+v", d)
	}
	if st[0].State != StateViolated {
		t.Fatalf("sustained errors should violate: %+v", st[0])
	}
}

func TestSLOHandlerAndCollect(t *testing.T) {
	s, _, _ := newTestSLO(DefaultObjective())
	s.SetObjective("special", Objective{LatencyTarget: time.Second, LatencyBudget: 0.5})
	s.ObserveRequest("g", 200, time.Millisecond, false)
	s.ObserveRequest("special", 200, time.Millisecond, false)

	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/slo", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /slo = %d", rec.Code)
	}
	var body struct {
		Graphs []GraphStatus `json:"graphs"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if len(body.Graphs) != 2 || body.Graphs[0].Graph != "g" || body.Graphs[1].Graph != "special" {
		t.Fatalf("body: %+v", body)
	}
	if body.Graphs[1].Objective.LatencyBudget != 0.5 {
		t.Fatalf("per-graph objective not applied: %+v", body.Graphs[1])
	}

	reg := NewRegistry()
	reg.Register(s.Collect)
	text := string(reg.Gather())
	for _, fam := range []string{"spo_slo_state", "spo_slo_burn_rate", "spo_slo_transitions_total"} {
		if !strings.Contains(text, fam) {
			t.Fatalf("metrics missing %s:\n%s", fam, text)
		}
	}
}

// The middleware feeds query routes (and only query routes) into the SLO,
// including staleness via the response header.
func TestMiddlewareFeedsSLO(t *testing.T) {
	s, _, _ := newTestSLO(DefaultObjective())
	m := NewHTTPMetrics()
	h := Middleware(nil, m, s, httpHandlerStale())
	srv := httptest.NewServer(h)
	defer srv.Close()

	for _, path := range []string{"/graphs/usa/dist?source=1", "/graphs/usa/dist?source=2", "/healthz", "/metrics", "/stats"} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	st := s.Status()
	if len(st) != 1 || st[0].Graph != "usa" {
		t.Fatalf("non-query routes leaked into SLO: %+v", st)
	}
	d := findDim(t, st[0], "stale")
	if d.Total5m != 2 || d.Bad5m != 1 {
		t.Fatalf("stale accounting: %+v", d)
	}
}

func httpHandlerStale() http.Handler {
	first := true
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if first {
			w.Header().Set(StaleHeader, "true")
			first = false
		}
		w.WriteHeader(200)
	})
}
