package obs

import (
	"encoding/hex"
	"encoding/json"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/hist"
)

// Route classes tracked by HTTPMetrics. Fixed and enumerated so the
// middleware's counter bump is an array index, not a map lookup.
const (
	routeDist = iota
	routePath
	routeMatrix
	routeMulti
	routeNearest
	routeTree
	routeStats
	routeGraphs
	routeHealthz
	routeReload
	routeReady
	routeMetrics
	routeTrace
	routeOther
	numRoutes
)

var routeNames = [numRoutes]string{
	"dist", "path", "matrix", "multi", "nearest", "tree",
	"stats", "graphs", "healthz", "reload", "ready", "metrics", "trace", "other",
}

// Status classes for the request counter.
const (
	class2xx = iota
	class3xx
	class4xx
	class429
	class5xx
	numClasses
)

var classNames = [numClasses]string{"2xx", "3xx", "4xx", "429", "5xx"}

func classOf(status int) int {
	switch {
	case status == 429:
		return class429
	case status >= 500:
		return class5xx
	case status >= 400:
		return class4xx
	case status >= 300:
		return class3xx
	default:
		return class2xx
	}
}

// RouteInfo classifies a request path into a route label and, for
// /graphs/{name}/... paths, the graph name. It understands both the
// registry layout and the legacy single-graph redirects.
func RouteInfo(path string) (route int, graph string) {
	switch path {
	case "/healthz":
		return routeHealthz, ""
	case "/stats":
		return routeStats, ""
	case "/metrics":
		return routeMetrics, ""
	case "/graphs", "/graphs/":
		return routeGraphs, ""
	case "/dist":
		return routeDist, ""
	case "/path":
		return routePath, ""
	}
	if strings.HasPrefix(path, "/trace/") {
		return routeTrace, ""
	}
	rest, ok := strings.CutPrefix(path, "/graphs/")
	if !ok {
		return routeOther, ""
	}
	name, verb, ok := strings.Cut(rest, "/")
	if !ok {
		return routeGraphs, rest
	}
	switch verb {
	case "dist":
		return routeDist, name
	case "path":
		return routePath, name
	case "matrix":
		return routeMatrix, name
	case "multi":
		return routeMulti, name
	case "nearest":
		return routeNearest, name
	case "tree":
		return routeTree, name
	case "stats":
		return routeStats, name
	case "reload":
		return routeReload, name
	case "ready":
		return routeReady, name
	}
	return routeOther, name
}

// RouteName returns the label for a RouteInfo result.
func RouteName(route int) string { return routeNames[route] }

// HTTPMetrics counts requests by route and status class and keeps a
// latency histogram per route. All hot-path operations are atomic
// increments on fixed arrays.
type HTTPMetrics struct {
	requests [numRoutes][numClasses]Counter
	lat      [numRoutes]hist.Histogram
}

// NewHTTPMetrics returns zeroed HTTP metrics.
func NewHTTPMetrics() *HTTPMetrics { return &HTTPMetrics{} }

// observe records one finished request.
func (m *HTTPMetrics) observe(route, status int, dur time.Duration) {
	if m == nil {
		return
	}
	m.requests[route][classOf(status)].Inc()
	m.lat[route].Observe(dur)
}

// Collect emits the HTTP families.
func (m *HTTPMetrics) Collect(w *MetricWriter) {
	if m == nil {
		return
	}
	for r := 0; r < numRoutes; r++ {
		for c := 0; c < numClasses; c++ {
			if v := m.requests[r][c].Load(); v > 0 {
				w.Counter("spo_http_requests_total", "HTTP requests by route and status class.",
					float64(v), L("route", routeNames[r]), L("class", classNames[c]))
			}
		}
	}
	// Always emit the family, even before traffic, so scrapers can
	// discover it: an all-zero sample for the dist route.
	if _, ok := w.families["spo_http_requests_total"]; !ok {
		w.Counter("spo_http_requests_total", "HTTP requests by route and status class.",
			0, L("route", "dist"), L("class", "2xx"))
	}
	for r := 0; r < numRoutes; r++ {
		snap := m.lat[r].Snapshot()
		if snap.Count == 0 {
			continue
		}
		w.SummaryFromSnapshot("spo_http_request_duration_seconds",
			"HTTP request latency by route.", snap, L("route", routeNames[r]))
	}
}

// statusWriter captures the response code for the span and counters.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	return sw.ResponseWriter.Write(b)
}

// Flush forwards to the underlying writer when it supports flushing —
// the handler layer streams nothing today, but don't mask the ability.
func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// queryRoute reports whether a route class is a graph query — the only
// traffic that consumes SLO budget (scrapes, probes, and admin calls are
// not user-visible serving).
func queryRoute(route int) bool { return route <= routeTree }

// Middleware wraps next with tracing, HTTP metrics, and SLO accounting.
// Every query-path request gets a root span (linked to an inbound
// traceparent header when present) carried in the request context;
// /metrics, /trace, /healthz and /debug are counted but never traced —
// probes and scrapes would otherwise drown the ring. slo may be nil;
// when set, finished query-route responses feed its latency, error, and
// stale-serve budgets (staleness read from the StaleHeader the serve
// layer sets on stale-while-revalidate hits).
func Middleware(tr *Tracer, m *HTTPMetrics, slo *SLO, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		route, graph := RouteInfo(req.URL.Path)
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}

		finish := func() {
			dur := time.Since(start)
			m.observe(route, sw.status, dur)
			if queryRoute(route) {
				slo.ObserveRequest(graph, sw.status, dur,
					sw.Header().Get(StaleHeader) == "true")
			}
		}

		trace := tr != nil
		switch route {
		case routeMetrics, routeTrace, routeHealthz:
			trace = false
		}
		if !trace {
			next.ServeHTTP(sw, req)
			if sw.status == 0 {
				sw.status = http.StatusOK
			}
			finish()
			return
		}

		var sp Span
		tr.StartRoot(&sp, req.Method+" "+routeNames[route], ParseTraceparent(req.Header.Get("traceparent")))
		sp.Route = routeNames[route]
		sp.Graph = graph
		next.ServeHTTP(sw, req.WithContext(ContextWith(req.Context(), &sp)))
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		sp.Status = sw.status
		sp.End()
		finish()
	})
}

// traceResponse is the /trace/{id} body: the flat span list plus a
// parent-linked tree (spans whose parent is unknown locally — e.g. the
// client's own span — become roots).
type traceResponse struct {
	TraceID string       `json:"trace_id"`
	Spans   []SpanData   `json:"spans"`
	Tree    []*traceNode `json:"tree"`
}

type traceNode struct {
	Span     SpanData     `json:"span"`
	Children []*traceNode `json:"children,omitempty"`
}

// TraceHandler serves GET /trace/{id}. When peers is non-nil and the
// request does not carry ?local=1, the handler also fetches each peer's
// /trace/{id}?local=1 and merges the spans — the router's endpoint
// therefore returns the full cross-process tree.
func TraceHandler(tr *Tracer, client *http.Client, peers func() []string) http.Handler {
	if client == nil {
		client = &http.Client{Timeout: 2 * time.Second}
	}
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			w.Header().Set("Allow", "GET")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		idHex := strings.TrimPrefix(req.URL.Path, "/trace/")
		var id TraceID
		if len(idHex) != 32 {
			http.Error(w, "trace id must be 32 hex characters", http.StatusBadRequest)
			return
		}
		if _, err := hex.Decode(id[:], []byte(idHex)); err != nil {
			http.Error(w, "trace id must be 32 hex characters", http.StatusBadRequest)
			return
		}

		spans := tr.Collect(id)
		if peers != nil && req.URL.Query().Get("local") != "1" {
			spans = append(spans, collectPeers(client, peers(), idHex)...)
		}
		sort.Slice(spans, func(i, j int) bool { return spans[i].StartNano < spans[j].StartNano })

		resp := traceResponse{TraceID: idHex, Spans: spans, Tree: buildTree(spans)}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(resp)
	})
}

// collectPeers fans out to every peer's local-only trace endpoint and
// pools whatever spans come back; a dead peer contributes nothing rather
// than failing the whole trace.
func collectPeers(client *http.Client, peers []string, idHex string) []SpanData {
	var mu sync.Mutex
	var out []SpanData
	var wg sync.WaitGroup
	for _, p := range peers {
		wg.Add(1)
		go func(base string) {
			defer wg.Done()
			resp, err := client.Get(strings.TrimSuffix(base, "/") + "/trace/" + idHex + "?local=1")
			if err != nil {
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return
			}
			var tr traceResponse
			if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
				return
			}
			mu.Lock()
			out = append(out, tr.Spans...)
			mu.Unlock()
		}(p)
	}
	wg.Wait()
	return out
}

// buildTree links spans by parent ID; spans with no locally-known parent
// (e.g. the caller's client span) become roots.
func buildTree(spans []SpanData) []*traceNode {
	nodes := make(map[string]*traceNode, len(spans))
	for i := range spans {
		nodes[spans[i].SpanID] = &traceNode{Span: spans[i]}
	}
	var roots []*traceNode
	for i := range spans {
		n := nodes[spans[i].SpanID]
		if p, ok := nodes[spans[i].ParentID]; ok && spans[i].ParentID != spans[i].SpanID {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	return roots
}

// TracerCollector exposes the tracer's own counters under /metrics.
func TracerCollector(tr *Tracer) Collector {
	return func(w *MetricWriter) {
		st := tr.Stats()
		w.Counter("spo_spans_started_total", "Spans started by this process.", float64(st.Started))
		w.Counter("spo_spans_finished_total", "Spans finished and offered to the ring.", float64(st.Finished))
		w.Counter("spo_spans_dropped_total", "Spans dropped on ring-slot contention.", float64(st.Dropped))
		w.Counter("spo_spans_logged_total", "Root spans sampled into slog.", float64(st.Sampled))
		w.Gauge("spo_trace_ring_slots", "Capacity of the in-memory span ring.", float64(st.RingSize))
	}
}
