package obs

import (
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
)

// SetupLogger builds the process-wide structured logger shared by the
// serving binaries: leveled slog with a constant service attribute on
// every record, JSON by default (one event per line, machine-parseable,
// correlated with traces through the trace_id attributes the span and
// audit layers attach) or logfmt-style text for humans at a terminal.
//
// It installs the logger as slog's default, which also reroutes the
// stdlib log package through it — so any stray log.Printf in a
// dependency still comes out structured, under the same service label.
func SetupLogger(service, level, format string) (*slog.Logger, error) {
	return setupLogger(os.Stderr, service, level, format)
}

func setupLogger(w io.Writer, service, level, format string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lvl = slog.LevelDebug
	case "", "info":
		lvl = slog.LevelInfo
	case "warn", "warning":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("obs: unknown log level %q (debug, info, warn, error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	var h slog.Handler
	switch strings.ToLower(format) {
	case "", "json":
		h = slog.NewJSONHandler(w, opts)
	case "text":
		h = slog.NewTextHandler(w, opts)
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (json, text)", format)
	}
	logger := slog.New(h).With(slog.String("service", service))
	slog.SetDefault(logger)
	return logger, nil
}
