// Package obs is the zero-dependency observability layer: a process-wide
// metrics registry rendered in Prometheus text exposition format, a
// lightweight per-query tracer with a bounded in-memory span ring, W3C
// traceparent propagation for the remote shard hop, and pprof/expvar
// debug wiring. It is deliberately a leaf package (stdlib + internal/hist
// only) so every layer of the serve path can import it.
//
// The tracing hot path is allocation-free by construction: a Span is a
// caller-stack value with fixed typed attribute fields (no maps, no
// interfaces), StartChild leaves the span inert when no parent is in the
// context, and End copies the span into a fixed ring slot under a
// per-slot seqlock. A full ring drops spans rather than blocking or
// growing — traces are diagnostics, not a ledger.
package obs

import (
	"context"
	"encoding/hex"
	"log/slog"
	"math/rand/v2"
	"sync/atomic"
	"time"
)

// TraceID and SpanID follow the W3C Trace Context sizes: 16 and 8 bytes,
// rendered as lowercase hex on the wire and in /trace responses.
type TraceID [16]byte

// SpanID is the 8-byte span identifier.
type SpanID [8]byte

func (t TraceID) IsZero() bool { return t == TraceID{} }
func (s SpanID) IsZero() bool  { return s == SpanID{} }

func (t TraceID) String() string { return hex.EncodeToString(t[:]) }
func (s SpanID) String() string  { return hex.EncodeToString(s[:]) }

func randTraceID() TraceID {
	var t TraceID
	for t.IsZero() {
		putUint64(t[0:8], rand.Uint64())
		putUint64(t[8:16], rand.Uint64())
	}
	return t
}

func randSpanID() SpanID {
	var s SpanID
	for s.IsZero() {
		putUint64(s[0:8], rand.Uint64())
	}
	return s
}

func putUint64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (56 - 8*i))
	}
}

// Traceparent is a parsed W3C traceparent header. Valid is false when the
// header was absent or malformed; an invalid parent simply starts a new
// trace rather than failing the request.
type Traceparent struct {
	Trace TraceID
	Span  SpanID
	Flags byte
	Valid bool
}

// ParseTraceparent parses "00-<32 hex>-<16 hex>-<2 hex>". Unknown
// versions are rejected (the spec allows forward compatibility, but we
// only ever emit version 00 and prefer strictness over guessing).
func ParseTraceparent(s string) Traceparent {
	var tp Traceparent
	if len(s) != 55 || s[0] != '0' || s[1] != '0' || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return tp
	}
	if _, err := hex.Decode(tp.Trace[:], []byte(s[3:35])); err != nil {
		return tp
	}
	if _, err := hex.Decode(tp.Span[:], []byte(s[36:52])); err != nil {
		return tp
	}
	var fl [1]byte
	if _, err := hex.Decode(fl[:], []byte(s[53:55])); err != nil {
		return tp
	}
	tp.Flags = fl[0]
	tp.Valid = !tp.Trace.IsZero() && !tp.Span.IsZero()
	return tp
}

// FormatTraceparent renders a version-00 traceparent header value with
// the sampled flag set (every recorded span is "sampled" — the ring is
// the sampling policy, not the flag).
func FormatTraceparent(trace TraceID, span SpanID) string {
	b := make([]byte, 55)
	b[0], b[1], b[2] = '0', '0', '-'
	hex.Encode(b[3:35], trace[:])
	b[35] = '-'
	hex.Encode(b[36:52], span[:])
	b[52] = '-'
	b[53], b[54] = '0', '1'
	return string(b)
}

// Span is one timed operation. It lives on the caller's stack; tracer
// state rides along in the unexported tr field. A zero Span (or one whose
// StartChild found no parent) is inert: every method is a cheap no-op, so
// instrumented code never branches on "is tracing on".
//
// Attributes are fixed typed fields rather than a map so that setting
// them never allocates. Unused fields keep their zero/sentinel values and
// are omitted from the JSON rendering.
type Span struct {
	tr     *Tracer
	start  time.Time
	Trace  TraceID
	ID     SpanID
	Parent SpanID
	Name   string
	root   bool

	// Attributes.
	Route       string
	Graph       string
	Source      int64 // -1 = unset
	Shard       int32 // -1 = unset
	Endpoint    string
	Hedge       bool
	Outcome     string
	SWR         string
	Version     int64
	Status      int
	ScannedArcs int64
	Err         string
}

// Active reports whether the span records anywhere.
func (sp *Span) Active() bool { return sp != nil && sp.tr != nil }

// Traceparent renders the header value identifying this span as parent.
func (sp *Span) Traceparent() string { return FormatTraceparent(sp.Trace, sp.ID) }

// SetError records err's message; nil clears nothing and is safe.
func (sp *Span) SetError(err error) {
	if sp.tr != nil && err != nil {
		sp.Err = err.Error()
	}
}

// End stamps the duration and copies the span into the tracer ring. Safe
// on inert spans. A span must be ended at most once.
func (sp *Span) End() {
	if sp.tr == nil {
		return
	}
	sp.tr.record(sp, time.Since(sp.start))
}

// TracerOptions configure NewTracer. Zero values pick the defaults
// documented on each field.
type TracerOptions struct {
	// RingSize is the number of span slots retained in memory (default
	// 4096). The ring is lossy: once it wraps, the oldest spans are
	// overwritten; concurrent writers contending for one slot drop the
	// newcomer instead of blocking.
	RingSize int
	// SampleEvery logs one in every N completed root spans through
	// Logger (default 256). Root spans that carry an error are always
	// logged.
	SampleEvery int
	// Logger receives the sampled spans. Nil disables span logging.
	Logger *slog.Logger
}

// Tracer owns the span ring for one process and stamps every recorded
// span with its service name ("serve", "shardserve", ...), which is how
// merged cross-process traces stay attributable.
type Tracer struct {
	service     string
	slots       []spanSlot
	next        atomic.Uint64
	logger      *slog.Logger
	sampleEvery uint64

	started  atomic.Int64
	finished atomic.Int64
	dropped  atomic.Int64
	sampled  atomic.Int64
}

// spanSlot is one ring entry guarded by a seqlock: seq is odd while a
// writer owns the slot, even when stable. Readers copy and revalidate.
type spanSlot struct {
	seq atomic.Uint64
	sp  Span
	dur time.Duration
}

// NewTracer builds a tracer for the named service.
func NewTracer(service string, opts TracerOptions) *Tracer {
	if opts.RingSize <= 0 {
		opts.RingSize = 4096
	}
	if opts.SampleEvery <= 0 {
		opts.SampleEvery = 256
	}
	return &Tracer{
		service:     service,
		slots:       make([]spanSlot, opts.RingSize),
		logger:      opts.Logger,
		sampleEvery: uint64(opts.SampleEvery),
	}
}

// Service returns the tracer's service name.
func (t *Tracer) Service() string { return t.service }

// StartRoot begins a local-root span in sp — the top of this process's
// part of a trace. A valid parent (from an inbound traceparent header)
// links the span into the caller's trace; otherwise a fresh trace ID is
// minted. Allocation-free.
func (t *Tracer) StartRoot(sp *Span, name string, parent Traceparent) {
	*sp = Span{
		tr:     t,
		start:  time.Now(),
		ID:     randSpanID(),
		Name:   name,
		root:   true,
		Source: -1,
		Shard:  -1,
	}
	if parent.Valid {
		sp.Trace = parent.Trace
		sp.Parent = parent.Span
	} else {
		sp.Trace = randTraceID()
	}
	t.started.Add(1)
}

// StartChild begins a child of the span carried by ctx, writing into sp.
// When ctx carries no active span, sp is left inert (the zero Span) and
// false is returned; callers may still set attributes and End — all
// no-ops. Allocation-free.
func StartChild(sp *Span, ctx context.Context, name string) bool {
	parent := FromContext(ctx)
	if !parent.Active() {
		*sp = Span{}
		return false
	}
	*sp = Span{
		tr:     parent.tr,
		start:  time.Now(),
		Trace:  parent.Trace,
		ID:     randSpanID(),
		Parent: parent.ID,
		Name:   name,
		Source: -1,
		Shard:  -1,
	}
	parent.tr.started.Add(1)
	return true
}

// record writes a finished span into its ring slot and applies the log
// sampling policy.
func (t *Tracer) record(sp *Span, dur time.Duration) {
	n := t.finished.Add(1)
	idx := t.next.Add(1) - 1
	slot := &t.slots[idx%uint64(len(t.slots))]
	seq := slot.seq.Load()
	if seq&1 == 1 || !slot.seq.CompareAndSwap(seq, seq+1) {
		// Another writer owns this slot; drop rather than spin. The ring
		// is bounded, lossy telemetry by design.
		t.dropped.Add(1)
	} else {
		slot.sp = *sp
		slot.dur = dur
		slot.seq.Store(seq + 2)
	}
	if t.logger != nil && sp.root && (sp.Err != "" || uint64(n)%t.sampleEvery == 0) {
		t.sampled.Add(1)
		t.logSpan(sp, dur)
	}
}

// logSpan emits one structured line for a sampled span. This path is
// off the allocation budget — it runs for 1/SampleEvery of root spans.
func (t *Tracer) logSpan(sp *Span, dur time.Duration) {
	attrs := make([]slog.Attr, 0, 12)
	attrs = append(attrs,
		slog.String("trace", sp.Trace.String()),
		slog.String("span", sp.ID.String()),
		slog.String("service", t.service),
		slog.String("name", sp.Name),
		slog.Int64("dur_us", dur.Microseconds()),
	)
	if sp.Route != "" {
		attrs = append(attrs, slog.String("route", sp.Route))
	}
	if sp.Graph != "" {
		attrs = append(attrs, slog.String("graph", sp.Graph))
	}
	if sp.Status != 0 {
		attrs = append(attrs, slog.Int("status", sp.Status))
	}
	if sp.SWR != "" {
		attrs = append(attrs, slog.String("swr", sp.SWR))
	}
	if sp.Err != "" {
		attrs = append(attrs, slog.String("error", sp.Err))
	}
	level := slog.LevelInfo
	if sp.Err != "" {
		level = slog.LevelWarn
	}
	t.logger.LogAttrs(context.Background(), level, "trace", attrs...)
}

// SpanData is the JSON rendering of one recorded span, returned by
// Collect and served at /trace/{id}.
type SpanData struct {
	TraceID     string `json:"trace_id"`
	SpanID      string `json:"span_id"`
	ParentID    string `json:"parent_id,omitempty"`
	Service     string `json:"service"`
	Name        string `json:"name"`
	StartNano   int64  `json:"start_unix_nano"`
	DurationUs  int64  `json:"duration_us"`
	Route       string `json:"route,omitempty"`
	Graph       string `json:"graph,omitempty"`
	Source      int64  `json:"source"`
	Shard       int32  `json:"shard"`
	Endpoint    string `json:"endpoint,omitempty"`
	Hedge       bool   `json:"hedge,omitempty"`
	Outcome     string `json:"outcome,omitempty"`
	SWR         string `json:"swr,omitempty"`
	Version     int64  `json:"version,omitempty"`
	Status      int    `json:"status,omitempty"`
	ScannedArcs int64  `json:"scanned_arcs,omitempty"`
	Err         string `json:"error,omitempty"`
}

// Collect returns every span in the ring belonging to the trace, or —
// when id is the zero TraceID — every readable span. Seqlock reads:
// a torn slot (writer mid-copy) is skipped.
func (t *Tracer) Collect(id TraceID) []SpanData {
	var out []SpanData
	for i := range t.slots {
		slot := &t.slots[i]
		s1 := slot.seq.Load()
		if s1&1 == 1 || s1 == 0 {
			continue
		}
		sp := slot.sp
		dur := slot.dur
		if slot.seq.Load() != s1 {
			continue
		}
		if !id.IsZero() && sp.Trace != id {
			continue
		}
		out = append(out, spanData(t.service, &sp, dur))
	}
	return out
}

func spanData(service string, sp *Span, dur time.Duration) SpanData {
	d := SpanData{
		TraceID:     sp.Trace.String(),
		SpanID:      sp.ID.String(),
		Service:     service,
		Name:        sp.Name,
		StartNano:   sp.start.UnixNano(),
		DurationUs:  dur.Microseconds(),
		Route:       sp.Route,
		Graph:       sp.Graph,
		Source:      sp.Source,
		Shard:       sp.Shard,
		Endpoint:    sp.Endpoint,
		Hedge:       sp.Hedge,
		Outcome:     sp.Outcome,
		SWR:         sp.SWR,
		Version:     sp.Version,
		Status:      sp.Status,
		ScannedArcs: sp.ScannedArcs,
		Err:         sp.Err,
	}
	if !sp.Parent.IsZero() {
		d.ParentID = sp.Parent.String()
	}
	return d
}

// Stats is a snapshot of tracer counters, exposed under /metrics.
type TracerStats struct {
	Started  int64
	Finished int64
	Dropped  int64
	Sampled  int64
	RingSize int
}

// Stats snapshots the tracer counters.
func (t *Tracer) Stats() TracerStats {
	return TracerStats{
		Started:  t.started.Load(),
		Finished: t.finished.Load(),
		Dropped:  t.dropped.Load(),
		Sampled:  t.sampled.Load(),
		RingSize: len(t.slots),
	}
}

// ctxKey keys the active span in a context. A *Span goes in the context
// (not a value) so children observe attribute updates and the tracer.
type ctxKey struct{}

// ContextWith returns ctx carrying sp. Inert spans return ctx unchanged,
// keeping the untraced path allocation-free.
func ContextWith(ctx context.Context, sp *Span) context.Context {
	if !sp.Active() {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, sp)
}

// FromContext returns the active span carried by ctx, or nil.
func FromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	return sp
}
