package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file implements just enough of the Prometheus text exposition
// format (version 0.0.4) to serve /metrics without a dependency, plus a
// strict parser used by tests to assert the output is well formed.
//
// Format invariants the writer maintains:
//   - every family gets exactly one # HELP and one # TYPE line
//   - all samples of a family are contiguous (required by the format)
//   - label values escape backslash, double quote, and newline
//   - values render as Go shortest-float, with +Inf/-Inf/NaN spelled out

// sample is one rendered line-in-waiting.
type sample struct {
	suffix string // "", "_sum", "_count", "_bucket"
	labels string // pre-rendered {...} including braces, or ""
	value  float64
}

// family groups every sample of one metric name.
type family struct {
	name    string
	help    string
	typ     string // counter | gauge | summary | histogram | untyped
	samples []sample
}

// MetricWriter buffers samples grouped by family and renders them in
// first-registration order.
type MetricWriter struct {
	families map[string]*family
	order    []string
}

// NewMetricWriter returns an empty writer.
func NewMetricWriter() *MetricWriter {
	return &MetricWriter{families: make(map[string]*family)}
}

func (w *MetricWriter) family(name, help, typ string) *family {
	f, ok := w.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ}
		w.families[name] = f
		w.order = append(w.order, name)
	}
	return f
}

// Counter adds one counter sample.
func (w *MetricWriter) Counter(name, help string, v float64, labels ...Label) {
	f := w.family(name, help, "counter")
	f.samples = append(f.samples, sample{labels: renderLabels(labels, "", ""), value: v})
}

// Gauge adds one gauge sample.
func (w *MetricWriter) Gauge(name, help string, v float64, labels ...Label) {
	f := w.family(name, help, "gauge")
	f.samples = append(f.samples, sample{labels: renderLabels(labels, "", ""), value: v})
}

// Quantile is one φ-quantile of a summary.
type Quantile struct {
	Q float64
	V float64
}

// SummaryValue carries one summary sample set.
type SummaryValue struct {
	Count     int64
	Sum       float64
	Quantiles []Quantile
}

// Summary adds a full summary sample set (quantile lines, _sum, _count).
func (w *MetricWriter) Summary(name, help string, s SummaryValue, labels ...Label) {
	f := w.family(name, help, "summary")
	for _, q := range s.Quantiles {
		f.samples = append(f.samples, sample{
			labels: renderLabels(labels, "quantile", formatFloat(q.Q)),
			value:  q.V,
		})
	}
	f.samples = append(f.samples,
		sample{suffix: "_sum", labels: renderLabels(labels, "", ""), value: s.Sum},
		sample{suffix: "_count", labels: renderLabels(labels, "", ""), value: float64(s.Count)},
	)
}

// renderLabels renders a label set (plus one optional extra pair) as the
// {...} sample suffix, or "" when empty. Labels are emitted in the order
// given — stable output beats sorted output for diffing scrapes.
func renderLabels(labels []Label, extraName, extraValue string) string {
	if len(labels) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	first := true
	emit := func(name, value string) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(name)
		b.WriteString(`="`)
		escapeLabelValue(&b, value)
		b.WriteByte('"')
	}
	for _, l := range labels {
		emit(l.Name, l.Value)
	}
	if extraName != "" {
		emit(extraName, extraValue)
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(b *strings.Builder, v string) {
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Render emits the exposition text.
func (w *MetricWriter) Render() []byte {
	var b strings.Builder
	for _, name := range w.order {
		f := w.families[name]
		b.WriteString("# HELP ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(strings.ReplaceAll(strings.ReplaceAll(f.help, `\`, `\\`), "\n", `\n`))
		b.WriteByte('\n')
		b.WriteString("# TYPE ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(f.typ)
		b.WriteByte('\n')
		for _, s := range f.samples {
			b.WriteString(f.name)
			b.WriteString(s.suffix)
			b.WriteString(s.labels)
			b.WriteByte(' ')
			b.WriteString(formatFloat(s.value))
			b.WriteByte('\n')
		}
	}
	return []byte(b.String())
}

// ---- parser (tests and CI assertions) ----

// ParsedSample is one sample line from a scrape.
type ParsedSample struct {
	Name   string // full sample name including _sum/_count/_bucket suffix
	Labels map[string]string
	Value  float64
}

// ParsedFamily is one metric family from a scrape.
type ParsedFamily struct {
	Name    string
	Type    string
	Samples []ParsedSample
}

// ParseExposition parses Prometheus text exposition strictly enough to
// catch writer bugs: malformed names, bad escapes, samples appearing
// before their TYPE line, or a family's samples split apart all fail.
func ParseExposition(r io.Reader) (map[string]*ParsedFamily, error) {
	families := make(map[string]*ParsedFamily)
	var current *ParsedFamily
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	closed := make(map[string]bool)
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.SplitN(strings.TrimPrefix(line, "# TYPE "), " ", 2)
			if len(parts) != 2 || !validMetricName(parts[0]) {
				return nil, fmt.Errorf("line %d: malformed TYPE line %q", lineNo, line)
			}
			name, typ := parts[0], parts[1]
			switch typ {
			case "counter", "gauge", "summary", "histogram", "untyped":
			default:
				return nil, fmt.Errorf("line %d: unknown metric type %q", lineNo, typ)
			}
			if _, dup := families[name]; dup {
				return nil, fmt.Errorf("line %d: duplicate TYPE for %q", lineNo, name)
			}
			if current != nil {
				closed[current.Name] = true
			}
			current = &ParsedFamily{Name: name, Type: typ}
			families[name] = current
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // HELP or comment
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		fam := familyFor(s.Name, current)
		if fam == nil || families[fam.Name] != fam {
			return nil, fmt.Errorf("line %d: sample %q outside its family block", lineNo, s.Name)
		}
		if closed[fam.Name] {
			return nil, fmt.Errorf("line %d: family %q samples are not contiguous", lineNo, fam.Name)
		}
		fam.Samples = append(fam.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return families, nil
}

// familyFor maps a sample name to the current family, honoring the
// summary/histogram magic suffixes.
func familyFor(sampleName string, current *ParsedFamily) *ParsedFamily {
	if current == nil {
		return nil
	}
	if sampleName == current.Name {
		return current
	}
	base := sampleName
	for _, suf := range []string{"_sum", "_count", "_bucket"} {
		if strings.HasSuffix(sampleName, suf) {
			base = strings.TrimSuffix(sampleName, suf)
			break
		}
	}
	if base == current.Name && (current.Type == "summary" || current.Type == "histogram") {
		return current
	}
	return nil
}

func parseSampleLine(line string) (ParsedSample, error) {
	var s ParsedSample
	i := 0
	for i < len(line) && isNameChar(line[i], i == 0) {
		i++
	}
	if i == 0 {
		return s, fmt.Errorf("malformed sample line %q", line)
	}
	s.Name = line[:i]
	s.Labels = map[string]string{}
	if i < len(line) && line[i] == '{' {
		i++
		for {
			if i < len(line) && line[i] == '}' {
				i++
				break
			}
			j := i
			for j < len(line) && line[j] != '=' {
				j++
			}
			if j >= len(line) || j+1 >= len(line) || line[j+1] != '"' {
				return s, fmt.Errorf("malformed labels in %q", line)
			}
			name := line[i:j]
			if !validMetricName(name) {
				return s, fmt.Errorf("bad label name %q", name)
			}
			j += 2 // past ="
			var val strings.Builder
			for j < len(line) && line[j] != '"' {
				if line[j] == '\\' {
					if j+1 >= len(line) {
						return s, fmt.Errorf("dangling escape in %q", line)
					}
					switch line[j+1] {
					case '\\':
						val.WriteByte('\\')
					case '"':
						val.WriteByte('"')
					case 'n':
						val.WriteByte('\n')
					default:
						return s, fmt.Errorf("bad escape \\%c in %q", line[j+1], line)
					}
					j += 2
					continue
				}
				val.WriteByte(line[j])
				j++
			}
			if j >= len(line) {
				return s, fmt.Errorf("unterminated label value in %q", line)
			}
			s.Labels[name] = val.String()
			i = j + 1
			if i < len(line) && line[i] == ',' {
				i++
			}
		}
	}
	rest := strings.TrimSpace(line[i:])
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return s, fmt.Errorf("expected value (and optional timestamp) in %q", line)
	}
	v, err := parseFloat(fields[0])
	if err != nil {
		return s, fmt.Errorf("bad value %q: %v", fields[0], err)
	}
	s.Value = v
	return s, nil
}

func parseFloat(f string) (float64, error) {
	switch f {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(f, 64)
}

func validMetricName(n string) bool {
	if n == "" {
		return false
	}
	for i := 0; i < len(n); i++ {
		if !isNameChar(n[i], i == 0) {
			return false
		}
	}
	return true
}

func isNameChar(c byte, first bool) bool {
	if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':' {
		return true
	}
	return !first && c >= '0' && c <= '9'
}

// FindSample returns the value of the first sample in fam matching every
// given label pair, and whether one was found.
func (f *ParsedFamily) FindSample(name string, labels ...Label) (float64, bool) {
	if f == nil {
		return 0, false
	}
	for _, s := range f.Samples {
		if s.Name != name {
			continue
		}
		ok := true
		for _, l := range labels {
			if s.Labels[l.Name] != l.Value {
				ok = false
				break
			}
		}
		if ok {
			return s.Value, true
		}
	}
	return 0, false
}

// SortedLabelKey renders a deterministic key for a label map (tests).
func SortedLabelKey(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%s,", k, labels[k])
	}
	return b.String()
}
