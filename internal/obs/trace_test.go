package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	tr := NewTracer("test", TracerOptions{})
	var sp Span
	tr.StartRoot(&sp, "op", Traceparent{})
	hdr := sp.Traceparent()
	if len(hdr) != 55 || !strings.HasPrefix(hdr, "00-") {
		t.Fatalf("traceparent %q is not a version-00 header", hdr)
	}
	tp := ParseTraceparent(hdr)
	if !tp.Valid {
		t.Fatalf("round-tripped header %q did not parse", hdr)
	}
	if tp.Trace != sp.Trace || tp.Span != sp.ID {
		t.Fatalf("parsed ids %v/%v, want %v/%v", tp.Trace, tp.Span, sp.Trace, sp.ID)
	}
	if tp.Flags != 0x01 {
		t.Fatalf("flags = %#x, want 0x01", tp.Flags)
	}
}

func TestParseTraceparentRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"00-abc",
		"01-0123456789abcdef0123456789abcdef-0123456789abcdef-01", // unknown version
		"00-0123456789abcdef0123456789abcdef+0123456789abcdef-01", // bad separator
		"00-00000000000000000000000000000000-0123456789abcdef-01", // zero trace id
		"00-0123456789abcdef0123456789abcdef-0000000000000000-01", // zero span id
		"00-0123456789abcdeg0123456789abcdef-0123456789abcdef-01", // non-hex
	}
	for _, s := range bad {
		if ParseTraceparent(s).Valid {
			t.Errorf("ParseTraceparent(%q) unexpectedly valid", s)
		}
	}
	good := "00-0123456789abcdef0123456789abcdef-0123456789abcdef-01"
	if !ParseTraceparent(good).Valid {
		t.Errorf("ParseTraceparent(%q) unexpectedly invalid", good)
	}
}

func TestStartChildInertWithoutParent(t *testing.T) {
	var sp Span
	if StartChild(&sp, context.Background(), "child") {
		t.Fatal("StartChild claimed a parent in an empty context")
	}
	if sp.Active() {
		t.Fatal("inert span reports active")
	}
	// All operations on an inert span must be safe no-ops.
	sp.SetError(context.Canceled)
	sp.End()
	if ContextWith(context.Background(), &sp) != context.Background() {
		t.Fatal("ContextWith allocated a context for an inert span")
	}
}

func TestSpanRecordAndCollect(t *testing.T) {
	tr := NewTracer("svc", TracerOptions{RingSize: 8})
	var root Span
	tr.StartRoot(&root, "GET dist", Traceparent{})
	root.Graph = "g"
	root.Route = "dist"
	root.Source = 7
	ctx := ContextWith(context.Background(), &root)

	var child Span
	if !StartChild(&child, ctx, "leg") {
		t.Fatal("StartChild found no parent")
	}
	child.Shard = 2
	child.Endpoint = "http://w0"
	child.Outcome = "ok"
	child.End()
	root.Status = 200
	root.End()

	spans := tr.Collect(root.Trace)
	if len(spans) != 2 {
		t.Fatalf("collected %d spans, want 2", len(spans))
	}
	byName := map[string]SpanData{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	r, c := byName["GET dist"], byName["leg"]
	if c.ParentID != r.SpanID {
		t.Fatalf("child parent = %q, want %q", c.ParentID, r.SpanID)
	}
	if r.TraceID != c.TraceID {
		t.Fatal("trace ids diverged between parent and child")
	}
	if c.Shard != 2 || c.Endpoint != "http://w0" || c.Outcome != "ok" {
		t.Fatalf("child attributes lost: %+v", c)
	}
	if r.Graph != "g" || r.Source != 7 || r.Status != 200 {
		t.Fatalf("root attributes lost: %+v", r)
	}
	if r.Service != "svc" {
		t.Fatalf("service = %q, want svc", r.Service)
	}

	if got := tr.Collect(randTraceID()); len(got) != 0 {
		t.Fatalf("foreign trace id matched %d spans", len(got))
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	tr := NewTracer("svc", TracerOptions{RingSize: 4})
	var first Span
	tr.StartRoot(&first, "first", Traceparent{})
	first.End()
	for i := 0; i < 8; i++ {
		var sp Span
		tr.StartRoot(&sp, "filler", Traceparent{})
		sp.End()
	}
	if got := tr.Collect(first.Trace); len(got) != 0 {
		t.Fatalf("span survived %d overwrites in a 4-slot ring", 8)
	}
	st := tr.Stats()
	if st.Finished != 9 {
		t.Fatalf("finished = %d, want 9", st.Finished)
	}
}

func TestConcurrentRecordCollect(t *testing.T) {
	tr := NewTracer("svc", TracerOptions{RingSize: 16})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var sp Span
				tr.StartRoot(&sp, "op", Traceparent{})
				sp.Graph = "g"
				sp.End()
			}
		}()
	}
	deadline := time.After(100 * time.Millisecond)
	for done := false; !done; {
		select {
		case <-deadline:
			done = true
		default:
			for _, s := range tr.Collect(TraceID{}) {
				// A torn read would surface as inconsistent hex widths
				// or a zero trace id on a finished span.
				if len(s.TraceID) != 32 || len(s.SpanID) != 16 {
					t.Errorf("torn span read: %+v", s)
				}
			}
		}
	}
	close(stop)
	wg.Wait()
	st := tr.Stats()
	if st.Finished != st.Started {
		t.Fatalf("started %d != finished %d", st.Started, st.Finished)
	}
}

// TestSpanAllocs is the package-local half of the zero-allocation
// acceptance gate: starting, attributing, and ending spans — both
// recorded and inert — must not allocate.
func TestSpanAllocs(t *testing.T) {
	tr := NewTracer("svc", TracerOptions{RingSize: 64, SampleEvery: 1 << 30})
	if n := testing.AllocsPerRun(200, func() {
		var sp Span
		tr.StartRoot(&sp, "dist", Traceparent{})
		sp.Graph = "g"
		sp.Route = "dist"
		sp.Source = 3
		sp.SWR = "fresh"
		sp.Status = 200
		sp.End()
	}); n != 0 {
		t.Fatalf("recorded span path allocates %.1f times per op, want 0", n)
	}

	ctx := context.Background()
	if n := testing.AllocsPerRun(200, func() {
		var sp Span
		StartChild(&sp, ctx, "leg")
		sp.Outcome = "ok"
		sp.End()
	}); n != 0 {
		t.Fatalf("inert span path allocates %.1f times per op, want 0", n)
	}

	var c Counter
	if n := testing.AllocsPerRun(200, func() { c.Add(1) }); n != 0 {
		t.Fatalf("Counter.Add allocates %.1f times per op, want 0", n)
	}
}
