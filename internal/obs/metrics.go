package obs

import (
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/hist"
)

// Metric families exported by this process all share one prefix so the
// namespace is greppable on any scrape: spo_ (shortest-path oracle).
//
// Naming scheme (documented in DESIGN.md):
//   - counters end in _total; gauges are bare nouns; sizes end in _bytes
//   - durations are exported in seconds (Prometheus base units), derived
//     from the microsecond histograms internal/hist maintains
//   - latency histograms surface as summaries with quantile labels
//     (P50/P90/P99/P999 from hist.Snapshot) plus _sum and _count —
//     exposing all 156 log-linear buckets per graph per route would
//     bloat scrapes without adding queryable signal

// Label is one name/value pair on a sample.
type Label struct {
	Name  string
	Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Collector emits samples into a MetricWriter at scrape time. Collectors
// read existing Stats() snapshots rather than maintaining parallel
// counters, so /metrics and /stats can never drift apart.
type Collector func(w *MetricWriter)

// Registry is the process-wide set of collectors behind GET /metrics.
type Registry struct {
	mu         sync.Mutex
	collectors []Collector
	start      time.Time
}

// NewRegistry builds an empty metrics registry stamped with the process
// start time.
func NewRegistry() *Registry {
	return &Registry{start: time.Now()}
}

// Register appends a collector. Collectors run in registration order on
// every scrape; a family may be touched by only one collector.
func (r *Registry) Register(c Collector) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, c)
}

// Gather runs every collector and renders the exposition text.
func (r *Registry) Gather() []byte {
	r.mu.Lock()
	collectors := r.collectors
	start := r.start
	r.mu.Unlock()

	w := NewMetricWriter()
	for _, c := range collectors {
		c(w)
	}
	runtimeCollector(w, start)
	return w.Render()
}

// Handler serves the exposition at GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			rw.Header().Set("Allow", "GET, HEAD")
			http.Error(rw, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		body := r.Gather()
		rw.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		rw.WriteHeader(http.StatusOK)
		if req.Method == http.MethodGet {
			rw.Write(body)
		}
	})
}

// runtimeCollector contributes the handful of process-level gauges every
// binary should expose without asking.
func runtimeCollector(w *MetricWriter, start time.Time) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	w.Gauge("spo_goroutines", "Number of live goroutines.", float64(runtime.NumGoroutine()))
	w.Gauge("spo_heap_alloc_bytes", "Bytes of allocated heap objects.", float64(ms.HeapAlloc))
	w.Counter("spo_gc_cycles_total", "Completed GC cycles.", float64(ms.NumGC))
	w.Gauge("spo_process_uptime_seconds", "Seconds since process start.", time.Since(start).Seconds())
}

// Counter is a monotonically increasing int64 usable from hot paths
// (one atomic add, no locks, no allocation).
type Counter struct{ v atomic.Int64 }

// Add increments the counter; Inc adds one; Load reads it.
func (c *Counter) Add(n int64) { c.v.Add(n) }
func (c *Counter) Inc()        { c.v.Add(1) }
func (c *Counter) Load() int64 { return c.v.Load() }

// SummaryFromSnapshot writes one latency summary family sample set from
// a hist.Snapshot, converting microseconds to seconds.
func (w *MetricWriter) SummaryFromSnapshot(name, help string, snap hist.Snapshot, labels ...Label) {
	w.Summary(name, help, SummaryValue{
		Count: snap.Count,
		Sum:   snap.MeanUs * float64(snap.Count) / 1e6,
		Quantiles: []Quantile{
			{Q: 0.5, V: float64(snap.P50Us) / 1e6},
			{Q: 0.9, V: float64(snap.P90Us) / 1e6},
			{Q: 0.99, V: float64(snap.P99Us) / 1e6},
			{Q: 0.999, V: float64(snap.P999Us) / 1e6},
		},
	}, labels...)
}
