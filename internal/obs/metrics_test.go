package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/hist"
)

func TestWriterParserRoundTrip(t *testing.T) {
	w := NewMetricWriter()
	w.Counter("spo_queries_total", "Total queries.", 42, L("graph", "g1"), L("route", "dist"))
	w.Counter("spo_queries_total", "Total queries.", 7, L("graph", `we"ird\graph`+"\n"), L("route", "path"))
	w.Gauge("spo_memory_bytes", "Resident bytes.", 1.5e9)
	var h hist.Histogram
	for i := 0; i < 100; i++ {
		h.Observe(time.Duration(i+1) * time.Millisecond)
	}
	w.SummaryFromSnapshot("spo_latency_seconds", "Latency.", h.Snapshot(), L("route", "dist"))

	text := w.Render()
	fams, err := ParseExposition(strings.NewReader(string(text)))
	if err != nil {
		t.Fatalf("own output failed to parse: %v\n%s", err, text)
	}

	if v, ok := fams["spo_queries_total"].FindSample("spo_queries_total", L("graph", "g1")); !ok || v != 42 {
		t.Fatalf("queries{graph=g1} = %v/%v, want 42", v, ok)
	}
	if v, ok := fams["spo_queries_total"].FindSample("spo_queries_total", L("graph", `we"ird\graph`+"\n")); !ok || v != 7 {
		t.Fatalf("escaped label sample lost: %v/%v\n%s", v, ok, text)
	}
	if fams["spo_memory_bytes"].Type != "gauge" {
		t.Fatalf("memory type = %q, want gauge", fams["spo_memory_bytes"].Type)
	}
	sum := fams["spo_latency_seconds"]
	if sum.Type != "summary" {
		t.Fatalf("latency type = %q, want summary", sum.Type)
	}
	cnt, ok := sum.FindSample("spo_latency_seconds_count", L("route", "dist"))
	if !ok || cnt != 100 {
		t.Fatalf("summary count = %v/%v, want 100", cnt, ok)
	}
	p50, ok := sum.FindSample("spo_latency_seconds", L("quantile", "0.5"))
	if !ok || p50 < 0.045 || p50 > 0.07 {
		t.Fatalf("p50 = %v/%v, want ≈0.05s", p50, ok)
	}
}

func TestWriterGroupsFamilies(t *testing.T) {
	// Interleave two families' samples; the renderer must still emit
	// each family contiguously under one TYPE header (the parser is the
	// enforcement mechanism).
	w := NewMetricWriter()
	w.Counter("spo_a_total", "A.", 1, L("k", "1"))
	w.Counter("spo_b_total", "B.", 2)
	w.Counter("spo_a_total", "A.", 3, L("k", "2"))
	if _, err := ParseExposition(strings.NewReader(string(w.Render()))); err != nil {
		t.Fatalf("interleaved writes rendered non-contiguous families: %v", err)
	}
}

func TestParserRejectsMalformed(t *testing.T) {
	bad := []string{
		"spo_x 1\n",                                             // sample before TYPE
		"# TYPE spo_x bogus\nspo_x 1\n",                         // unknown type
		"# TYPE spo_x counter\nspo_x{a=b} 1\n",                  // unquoted label value
		"# TYPE spo_x counter\nspo_x notanum\n",                 // bad value
		"# TYPE spo_x counter\n9bad 1\n",                        // bad name
		"# TYPE spo_x counter\nspo_y 1\n",                       // sample outside family
		"# TYPE spo_x counter\nspo_x 1\n# TYPE spo_x counter\n", // dup TYPE
	}
	for _, s := range bad {
		if _, err := ParseExposition(strings.NewReader(s)); err == nil {
			t.Errorf("parser accepted malformed input %q", s)
		}
	}
}

func TestParserSpecials(t *testing.T) {
	in := "# TYPE spo_x gauge\nspo_x{k=\"+Inf\"} +Inf\nspo_x{k=\"nan\"} NaN\n"
	fams, err := ParseExposition(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := fams["spo_x"].FindSample("spo_x", L("k", "+Inf")); !math.IsInf(v, 1) {
		t.Fatalf("+Inf parsed as %v", v)
	}
	if v, _ := fams["spo_x"].FindSample("spo_x", L("k", "nan")); !math.IsNaN(v) {
		t.Fatalf("NaN parsed as %v", v)
	}
}

func TestRegistryHandler(t *testing.T) {
	reg := NewRegistry()
	var c Counter
	c.Add(9)
	reg.Register(func(w *MetricWriter) {
		w.Counter("spo_test_total", "Test counter.", float64(c.Load()))
	})
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	fams, err := ParseExposition(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := fams["spo_test_total"].FindSample("spo_test_total"); !ok || v != 9 {
		t.Fatalf("spo_test_total = %v/%v, want 9", v, ok)
	}
	// The runtime collector rides along on every registry.
	for _, name := range []string{"spo_goroutines", "spo_heap_alloc_bytes", "spo_process_uptime_seconds"} {
		if fams[name] == nil {
			t.Fatalf("runtime family %s missing", name)
		}
	}

	post, err := http.Post(srv.URL+"/metrics", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /metrics = %d, want 405", post.StatusCode)
	}
}

func TestMiddlewareTracesAndCounts(t *testing.T) {
	tr := NewTracer("serve", TracerOptions{RingSize: 32})
	m := NewHTTPMetrics()
	var sawSpan *Span
	h := Middleware(tr, m, nil, http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		sawSpan = FromContext(req.Context())
		w.WriteHeader(http.StatusOK)
		fmt.Fprint(w, "ok")
	}))
	srv := httptest.NewServer(h)
	defer srv.Close()

	parent := "00-0123456789abcdef0123456789abcdef-00000000000000aa-01"
	req, _ := http.NewRequest("GET", srv.URL+"/graphs/usa/dist?source=3", nil)
	req.Header.Set("traceparent", parent)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	if sawSpan == nil || !sawSpan.Active() {
		t.Fatal("handler saw no active span")
	}
	want := ParseTraceparent(parent)
	spans := tr.Collect(want.Trace)
	if len(spans) != 1 {
		t.Fatalf("got %d spans for inbound trace, want 1", len(spans))
	}
	s := spans[0]
	if s.ParentID != want.Span.String() {
		t.Fatalf("span parent = %q, want %q", s.ParentID, want.Span)
	}
	if s.Route != "dist" || s.Graph != "usa" || s.Status != 200 {
		t.Fatalf("span attrs = %+v", s)
	}

	// /healthz is counted but never traced.
	before := tr.Stats().Started
	hz, _ := http.Get(srv.URL + "/healthz")
	hz.Body.Close()
	if tr.Stats().Started != before {
		t.Fatal("healthz was traced")
	}

	w := NewMetricWriter()
	m.Collect(w)
	fams, err := ParseExposition(strings.NewReader(string(w.Render())))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := fams["spo_http_requests_total"].FindSample("spo_http_requests_total",
		L("route", "dist"), L("class", "2xx")); !ok || v != 1 {
		t.Fatalf("dist 2xx count = %v/%v, want 1", v, ok)
	}
	if v, ok := fams["spo_http_requests_total"].FindSample("spo_http_requests_total",
		L("route", "healthz"), L("class", "2xx")); !ok || v != 1 {
		t.Fatalf("healthz 2xx count = %v/%v, want 1", v, ok)
	}
}

func TestRouteInfo(t *testing.T) {
	cases := []struct {
		path  string
		route string
		graph string
	}{
		{"/graphs/usa/dist", "dist", "usa"},
		{"/graphs/usa/path", "path", "usa"},
		{"/graphs/g1/matrix", "matrix", "g1"},
		{"/graphs/g1/multi", "multi", "g1"},
		{"/graphs/g1/nearest", "nearest", "g1"},
		{"/graphs/g1/tree", "tree", "g1"},
		{"/graphs/g1/stats", "stats", "g1"},
		{"/graphs/g1/reload", "reload", "g1"},
		{"/graphs/g1/ready", "ready", "g1"},
		{"/graphs/g1", "graphs", "g1"},
		{"/graphs", "graphs", ""},
		{"/stats", "stats", ""},
		{"/healthz", "healthz", ""},
		{"/metrics", "metrics", ""},
		{"/trace/0123", "trace", ""},
		{"/dist", "dist", ""},
		{"/nope", "other", ""},
	}
	for _, c := range cases {
		r, g := RouteInfo(c.path)
		if RouteName(r) != c.route || g != c.graph {
			t.Errorf("RouteInfo(%q) = (%s, %q), want (%s, %q)", c.path, RouteName(r), g, c.route, c.graph)
		}
	}
}

func TestTraceHandlerMergesPeers(t *testing.T) {
	workerTr := NewTracer("shardserve", TracerOptions{RingSize: 32})
	routerTr := NewTracer("serve", TracerOptions{RingSize: 32})

	// One shared trace: a router root span with a worker child hung off
	// a remote hop (the worker only knows the traceparent).
	var root Span
	routerTr.StartRoot(&root, "GET dist", Traceparent{})
	var wsp Span
	workerTr.StartRoot(&wsp, "GET dist", ParseTraceparent(root.Traceparent()))
	wsp.End()
	root.End()

	worker := httptest.NewServer(http.StripPrefix("", TraceHandler(workerTr, nil, nil)))
	defer worker.Close()
	peers := func() []string { return []string{worker.URL} }
	router := httptest.NewServer(TraceHandler(routerTr, nil, peers))
	defer router.Close()

	resp, err := http.Get(router.URL + "/trace/" + root.Trace.String())
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body traceResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if len(body.Spans) != 2 {
		t.Fatalf("merged %d spans, want 2 (router + worker)", len(body.Spans))
	}
	services := map[string]bool{}
	for _, s := range body.Spans {
		services[s.Service] = true
	}
	if !services["serve"] || !services["shardserve"] {
		t.Fatalf("merged services = %v", services)
	}
	if len(body.Tree) != 1 || len(body.Tree[0].Children) != 1 {
		t.Fatalf("tree did not link worker under router: %+v", body.Tree)
	}

	// Bad ids are rejected, unknown ids return an empty trace.
	bad, _ := http.Get(router.URL + "/trace/zzz")
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad id status = %d, want 400", bad.StatusCode)
	}
	unknown, err := http.Get(router.URL + "/trace/" + randTraceID().String())
	if err != nil {
		t.Fatal(err)
	}
	defer unknown.Body.Close()
	var empty traceResponse
	if err := json.NewDecoder(unknown.Body).Decode(&empty); err != nil {
		t.Fatal(err)
	}
	if len(empty.Spans) != 0 {
		t.Fatalf("unknown trace returned %d spans", len(empty.Spans))
	}
}
