package obs

import (
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"sort"
	"sync"
	"time"
)

// StaleHeader marks responses served from a pre-reload cached row
// (stale-while-revalidate). The serve layer sets it; the middleware reads
// it to feed the SLO stale-serve rate without parsing response bodies.
const StaleHeader = "X-Spo-Stale"

// Objective is one graph's service-level objective set. Every dimension
// is a good/bad-event budget: the fraction of bad events over a window
// must stay under the budget. A latency objective of {Target: 250ms,
// Budget: 0.01} therefore reads "p99 latency ≤ 250ms"; a budget of 0
// means a single bad event in the long window is already a violation —
// the right setting for correctness dimensions like stretch violations.
type Objective struct {
	// LatencyTarget classifies a query as slow; LatencyBudget is the
	// allowed slow fraction (0.01 ≈ "p99 ≤ target").
	LatencyTarget time.Duration `json:"latency_target_ns"`
	LatencyBudget float64       `json:"latency_budget"`
	// ErrorBudget is the allowed fraction of 5xx responses.
	ErrorBudget float64 `json:"error_budget"`
	// StaleBudget is the allowed fraction of stale-while-revalidate
	// serves (responses carrying StaleHeader).
	StaleBudget float64 `json:"stale_budget"`
	// StretchBudget is the allowed fraction of audited answers that fail
	// a correctness check. Zero: any violation trips the SLO.
	StretchBudget float64 `json:"stretch_budget"`
}

// DefaultObjective is the objective applied to graphs without an explicit
// one: p99 ≤ 250ms, 0.1% errors, 5% stale serves, zero tolerance for
// stretch violations.
func DefaultObjective() Objective {
	return Objective{
		LatencyTarget: 250 * time.Millisecond,
		LatencyBudget: 0.01,
		ErrorBudget:   0.001,
		StaleBudget:   0.05,
		StretchBudget: 0,
	}
}

// SLO state values, ordered by severity.
const (
	StateOK       = "ok"
	StateBurning  = "burning"  // short window over budget
	StateViolated = "violated" // short and long windows over budget
)

// Bucketing: 240 buckets of 15s cover the 1h long window; the 5m short
// window is the most recent 20.
const (
	sloBucketSeconds = 15
	sloBuckets       = 240
	sloShortBuckets  = (5 * 60) / sloBucketSeconds
)

type sloBucket struct {
	stamp    int64 // unix time / sloBucketSeconds this bucket holds
	requests int64
	slow     int64
	errors   int64
	stale    int64
	audited  int64
	violated int64
}

type sloGraph struct {
	name    string
	obj     Objective
	buckets [sloBuckets]sloBucket
	state   string
	// lastEval is the bucket stamp of the last state evaluation, so the
	// burn rates are recomputed at most once per bucket per graph (plus
	// immediately on every audited violation).
	lastEval int64
}

// SLO is the burn-rate engine: per-graph multi-window (5m/1h) error
// budgets over request latency, error rate, stale-serve rate, and the
// shadow-audit stretch-violation rate. The middleware feeds it on every
// query-route response; the auditor feeds it through ObserveAudit. State
// transitions (ok → burning → violated and back) are emitted as
// structured log events, the current status is served as JSON on /slo,
// and burn rates are exported on /metrics.
type SLO struct {
	mu     sync.Mutex
	def    Objective
	objs   map[string]Objective
	graphs map[string]*sloGraph
	logger *slog.Logger
	now    func() time.Time

	transitions int64
}

// NewSLO returns an engine applying def to every graph (pass
// DefaultObjective() unless the operator configured otherwise). logger
// receives transition events; nil uses slog.Default.
func NewSLO(def Objective, logger *slog.Logger) *SLO {
	if logger == nil {
		logger = slog.Default()
	}
	return &SLO{
		def:    def,
		objs:   make(map[string]Objective),
		graphs: make(map[string]*sloGraph),
		logger: logger,
		now:    time.Now,
	}
}

// SetObjective overrides the objective for one graph.
func (s *SLO) SetObjective(graph string, obj Objective) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.objs[graph] = obj
	if g, ok := s.graphs[graph]; ok {
		g.obj = obj
	}
}

func (s *SLO) graph(name string) *sloGraph {
	g := s.graphs[name]
	if g == nil {
		obj, ok := s.objs[name]
		if !ok {
			obj = s.def
		}
		g = &sloGraph{name: name, obj: obj, state: StateOK}
		s.graphs[name] = g
	}
	return g
}

// bucket rotates the ring to the current time and returns the live
// bucket. Callers hold s.mu.
func (g *sloGraph) bucket(now time.Time) *sloBucket {
	stamp := now.Unix() / sloBucketSeconds
	b := &g.buckets[stamp%sloBuckets]
	if b.stamp != stamp {
		*b = sloBucket{stamp: stamp}
	}
	return b
}

// ObserveRequest feeds one finished query-route response. Nil-safe, so
// wiring stays unconditional.
func (s *SLO) ObserveRequest(graph string, status int, dur time.Duration, stale bool) {
	if s == nil || graph == "" {
		return
	}
	s.mu.Lock()
	g := s.graph(graph)
	b := g.bucket(s.now())
	b.requests++
	if g.obj.LatencyTarget > 0 && dur > g.obj.LatencyTarget {
		b.slow++
	}
	if status >= 500 {
		b.errors++
	}
	if stale {
		b.stale++
	}
	s.evalLocked(g, false)
	s.mu.Unlock()
}

// ObserveAudit feeds one completed shadow audit — wire the auditor's
// OnResult to this. A violation forces an immediate re-evaluation: with
// the default zero stretch budget, the transition to violated must not
// wait out the current bucket.
func (s *SLO) ObserveAudit(graph string, violation bool) {
	if s == nil || graph == "" {
		return
	}
	s.mu.Lock()
	g := s.graph(graph)
	b := g.bucket(s.now())
	b.audited++
	if violation {
		b.violated++
	}
	s.evalLocked(g, violation)
	s.mu.Unlock()
}

// Dimension is one objective's burn-rate status.
type Dimension struct {
	Name    string  `json:"name"`
	Budget  float64 `json:"budget"`
	Burn5m  float64 `json:"burn_5m"`
	Burn1h  float64 `json:"burn_1h"`
	Bad5m   int64   `json:"bad_5m"`
	Total5m int64   `json:"total_5m"`
	Bad1h   int64   `json:"bad_1h"`
	Total1h int64   `json:"total_1h"`
	State   string  `json:"state"`
}

// GraphStatus is one graph's SLO status.
type GraphStatus struct {
	Graph      string      `json:"graph"`
	State      string      `json:"state"`
	Objective  Objective   `json:"objective"`
	Dimensions []Dimension `json:"dimensions"`
}

// window sums the buckets whose stamps fall inside the last n buckets
// ending at stamp.
func (g *sloGraph) window(stamp int64, n int64) (w sloBucket) {
	for i := range g.buckets {
		b := &g.buckets[i]
		if b.stamp > stamp-n && b.stamp <= stamp {
			w.requests += b.requests
			w.slow += b.slow
			w.errors += b.errors
			w.stale += b.stale
			w.audited += b.audited
			w.violated += b.violated
		}
	}
	return w
}

// burn is (bad/total)/budget: 1.0 means the budget is being consumed
// exactly as fast as it accrues. A zero budget makes any bad event an
// infinite burn, reported as a large sentinel to keep JSON finite.
func burn(bad, total int64, budget float64) float64 {
	if total == 0 || bad == 0 {
		return 0
	}
	rate := float64(bad) / float64(total)
	if budget <= 0 {
		return 1e9
	}
	return rate / budget
}

// dims computes the four dimensions for the graph at stamp.
func (g *sloGraph) dims(stamp int64) []Dimension {
	short := g.window(stamp, sloShortBuckets)
	long := g.window(stamp, sloBuckets)
	mk := func(name string, budget float64, badS, totS, badL, totL int64) Dimension {
		d := Dimension{
			Name: name, Budget: budget,
			Burn5m: burn(badS, totS, budget), Burn1h: burn(badL, totL, budget),
			Bad5m: badS, Total5m: totS, Bad1h: badL, Total1h: totL,
			State: StateOK,
		}
		// Multi-window: the short window reacts, the long window confirms
		// — a violation needs both over budget, so a brief spike that has
		// already stopped consuming budget cannot page.
		switch {
		case d.Burn5m >= 1 && d.Burn1h >= 1:
			d.State = StateViolated
		case d.Burn5m >= 1:
			d.State = StateBurning
		}
		return d
	}
	return []Dimension{
		mk("latency", g.obj.LatencyBudget, short.slow, short.requests, long.slow, long.requests),
		mk("errors", g.obj.ErrorBudget, short.errors, short.requests, long.errors, long.requests),
		mk("stale", g.obj.StaleBudget, short.stale, short.requests, long.stale, long.requests),
		mk("stretch", g.obj.StretchBudget, short.violated, short.audited, long.violated, long.audited),
	}
}

func severity(state string) int {
	switch state {
	case StateViolated:
		return 2
	case StateBurning:
		return 1
	}
	return 0
}

// evalLocked recomputes the graph's state — at most once per bucket
// unless force (an audited violation) demands an immediate answer — and
// logs a structured event on every transition.
func (s *SLO) evalLocked(g *sloGraph, force bool) {
	stamp := s.now().Unix() / sloBucketSeconds
	if !force && g.lastEval == stamp {
		return
	}
	g.lastEval = stamp
	dims := g.dims(stamp)
	next, worst := StateOK, Dimension{}
	for _, d := range dims {
		if severity(d.State) > severity(next) {
			next, worst = d.State, d
		}
	}
	if next == g.state {
		return
	}
	prev := g.state
	g.state = next
	s.transitions++
	level := slog.LevelInfo
	if next == StateViolated {
		level = slog.LevelError
	} else if next == StateBurning {
		level = slog.LevelWarn
	}
	s.logger.LogAttrs(context.Background(), level, "slo transition",
		slog.String("event", "slo_transition"),
		slog.String("graph", g.name),
		slog.String("from", prev),
		slog.String("to", next),
		slog.String("dimension", worst.Name),
		slog.Float64("burn_5m", worst.Burn5m),
		slog.Float64("burn_1h", worst.Burn1h),
		slog.Float64("budget", worst.Budget),
	)
}

// Status snapshots every graph's SLO state, sorted by graph name.
func (s *SLO) Status() []GraphStatus {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	stamp := s.now().Unix() / sloBucketSeconds
	out := make([]GraphStatus, 0, len(s.graphs))
	for _, g := range s.graphs {
		s.evalLocked(g, false)
		out = append(out, GraphStatus{
			Graph: g.name, State: g.state, Objective: g.obj, Dimensions: g.dims(stamp),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Graph < out[j].Graph })
	return out
}

// Handler serves GET /slo: the full per-graph status as JSON.
func (s *SLO) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			w.Header().Set("Allow", "GET")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(struct {
			Now    int64         `json:"now_unix"`
			Graphs []GraphStatus `json:"graphs"`
		}{Now: s.nowUnix(), Graphs: s.Status()})
	})
}

func (s *SLO) nowUnix() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now().Unix()
}

// Collect exports the SLO families: per-graph state, per-dimension burn
// rates for both windows, and the transition counter.
func (s *SLO) Collect(w *MetricWriter) {
	if s == nil {
		return
	}
	for _, g := range s.Status() {
		w.Gauge("spo_slo_state", "SLO state per graph: 0 ok, 1 burning, 2 violated.",
			float64(severity(g.State)), L("graph", g.Graph))
		for _, d := range g.Dimensions {
			w.Gauge("spo_slo_burn_rate", "Error-budget burn rate (1.0 = consuming exactly the budget).",
				d.Burn5m, L("graph", g.Graph), L("objective", d.Name), L("window", "5m"))
			w.Gauge("spo_slo_burn_rate", "Error-budget burn rate (1.0 = consuming exactly the budget).",
				d.Burn1h, L("graph", g.Graph), L("objective", d.Name), L("window", "1h"))
		}
	}
	s.mu.Lock()
	tr := s.transitions
	s.mu.Unlock()
	w.Counter("spo_slo_transitions_total", "SLO state transitions since start.", float64(tr))
}
