// Package lru is the shared mutex-guarded LRU used by the oracle engine's
// per-source caches and the shard router's distance-vector cache: one
// implementation, one stats shape, counted the same way everywhere.
package lru

import (
	"container/list"
	"sync"
)

// Stats is a point-in-time snapshot of one cache.
type Stats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Len       int   `json:"len"`
	Cap       int   `json:"cap"`
}

// Cache is a mutex-guarded LRU map from a source vertex to a cached query
// result. A capacity of 0 disables storage but still counts misses, so
// stats stay meaningful for cache-less configurations; a nil *Cache is a
// fully disabled cache (all methods no-ops), so callers never branch on
// configuration.
type Cache[V any] struct {
	mu        sync.Mutex
	cap       int
	ll        *list.List // front = most recent; values are *entry[V]
	items     map[int32]*list.Element
	hits      int64
	misses    int64
	evictions int64
}

type entry[V any] struct {
	key int32
	val V
}

// New returns a cache holding up to capacity entries (negative clamps
// to 0: disabled storage, counted misses).
func New[V any](capacity int) *Cache[V] {
	if capacity < 0 {
		capacity = 0
	}
	return &Cache[V]{cap: capacity, ll: list.New(), items: make(map[int32]*list.Element)}
}

// Get returns the cached value for key, marking it most recently used.
func (c *Cache[V]) Get(key int32) (V, bool) {
	var zero V
	if c == nil {
		return zero, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.hits++
		c.ll.MoveToFront(el)
		return el.Value.(*entry[V]).val, true
	}
	c.misses++
	return zero, false
}

// Add inserts or refreshes key, evicting the least recently used entries
// over capacity.
func (c *Cache[V]) Add(key int32, val V) {
	if c == nil || c.cap == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*entry[V]).val = val
		c.ll.MoveToFront(el)
		return
	}
	for c.ll.Len() >= c.cap {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.items, back.Value.(*entry[V]).key)
		c.evictions++
	}
	c.items[key] = c.ll.PushFront(&entry[V]{key: key, val: val})
}

// Purge drops every cached entry (counters are kept — purged entries are
// not evictions). Safe on a nil cache.
func (c *Cache[V]) Purge() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.items = make(map[int32]*list.Element)
}

// Snapshot returns the cache counters. Safe on a nil cache.
func (c *Cache[V]) Snapshot() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
		Len: c.ll.Len(), Cap: c.cap,
	}
}
