package lru

import "testing"

func TestLRUHitMissEvict(t *testing.T) {
	c := New[int](2)
	if _, ok := c.Get(1); ok {
		t.Fatal("empty cache returned a value")
	}
	c.Add(1, 10)
	c.Add(2, 20)
	if v, ok := c.Get(1); !ok || v != 10 {
		t.Fatalf("Get(1) = %v,%v", v, ok)
	}
	// 1 is now most-recent; adding 3 must evict 2.
	c.Add(3, 30)
	if _, ok := c.Get(2); ok {
		t.Fatal("2 should have been evicted (LRU)")
	}
	if v, ok := c.Get(1); !ok || v != 10 {
		t.Fatalf("1 should survive, got %v,%v", v, ok)
	}
	if v, ok := c.Get(3); !ok || v != 30 {
		t.Fatalf("Get(3) = %v,%v", v, ok)
	}
	st := c.Snapshot()
	if st.Hits != 3 || st.Misses != 2 || st.Evictions != 1 || st.Len != 2 || st.Cap != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLRUUpdateExisting(t *testing.T) {
	c := New[int](2)
	c.Add(1, 10)
	c.Add(2, 20)
	c.Add(1, 11) // update, not insert: no eviction
	if st := c.Snapshot(); st.Evictions != 0 || st.Len != 2 {
		t.Errorf("stats after update = %+v", st)
	}
	if v, _ := c.Get(1); v != 11 {
		t.Errorf("Get(1) = %v after update", v)
	}
	// The update refreshed 1, so adding 3 evicts 2.
	c.Add(3, 30)
	if _, ok := c.Get(2); ok {
		t.Error("2 should have been evicted after 1 was refreshed")
	}
}

func TestLRUDisabled(t *testing.T) {
	c := New[int](0)
	c.Add(1, 10)
	if _, ok := c.Get(1); ok {
		t.Fatal("disabled cache stored a value")
	}
	if st := c.Snapshot(); st.Misses != 1 || st.Len != 0 || st.Cap != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLRUNil(t *testing.T) {
	var c *Cache[int]
	c.Add(1, 10) // must not panic
	if _, ok := c.Get(1); ok {
		t.Fatal("nil cache returned a value")
	}
	if st := c.Snapshot(); st != (Stats{}) {
		t.Errorf("nil stats = %+v", st)
	}
}
