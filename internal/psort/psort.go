// Package psort provides the deterministic parallel sorter used wherever
// the paper invokes the AKS sorting network [AKS83] (Algorithm 3, the
// Klein–Sairam edge grouping, and the path-reporting array M).
//
// AKS matters to the paper only as a black-box O(log n)-depth comparator
// sorter; behaviourally any deterministic sorter is equivalent. We use a
// parallel stable merge sort (per-chunk stable sort, then pairwise stable
// merge rounds preferring the left run), account its PRAM depth as
// O(log² n), and require callers to supply a total order when canonical
// output matters.
package psort

import (
	"slices"

	"repro/internal/par"
	"repro/internal/pram"
)

// Sort sorts s in place using cmp (negative: a before b; zero: equal —
// stable). The result equals slices.SortStableFunc for every worker count.
func Sort[T any](s []T, cmp func(a, b T) int, tr *pram.Tracker) {
	n := len(s)
	if n < 2 {
		return
	}
	w := par.Workers()
	if w == 1 || n < 1<<12 {
		slices.SortStableFunc(s, cmp)
		chargeDepth(n, tr)
		return
	}
	// Fixed run count independent of worker count: determinism is free
	// because merges are stable, but fixed runs also keep the merge tree
	// shape canonical.
	runs := 1
	for runs < w {
		runs <<= 1
	}
	if runs > n {
		runs = n
	}
	bounds := make([]int, runs+1)
	for i := 0; i <= runs; i++ {
		bounds[i] = i * n / runs
	}
	par.For(runs, func(i int) {
		slices.SortStableFunc(s[bounds[i]:bounds[i+1]], cmp)
	})
	buf := make([]T, n)
	src, dst := s, buf
	for width := 1; width < runs; width <<= 1 {
		par.For((runs+2*width-1)/(2*width), func(pair int) {
			lo := bounds[min(pair*2*width, runs)]
			mid := bounds[min(pair*2*width+width, runs)]
			hi := bounds[min(pair*2*width+2*width, runs)]
			mergeInto(dst[lo:hi], src[lo:mid], src[mid:hi], cmp)
		})
		src, dst = dst, src
	}
	if &src[0] != &s[0] {
		copy(s, src)
	}
	chargeDepth(n, tr)
}

// mergeInto stably merges a and b into out (len(out) == len(a)+len(b)),
// preferring elements of a on ties.
func mergeInto[T any](out, a, b []T, cmp func(x, y T) int) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if cmp(b[j], a[i]) < 0 {
			out[k] = b[j]
			j++
		} else {
			out[k] = a[i]
			i++
		}
		k++
	}
	copy(out[k:], a[i:])
	copy(out[k+len(a)-i:], b[j:])
}

func chargeDepth(n int, tr *pram.Tracker) {
	// O(log² n) depth, O(n log n) work: the budget of a parallel merge
	// sort; the AKS network the paper cites achieves O(log n) depth with
	// the same work, so charging log² n is conservative.
	l := log2ceil(n)
	tr.Rounds(int64(l*l+1), int64(n))
	tr.AddWork(int64(n) * int64(l))
}

func log2ceil(n int) int {
	l := 0
	for v := 1; v < n; v <<= 1 {
		l++
	}
	return l
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
