package psort

import (
	"math/rand"
	"slices"
	"testing"
	"testing/quick"

	"repro/internal/par"
	"repro/internal/pram"
)

func intCmp(a, b int) int { return a - b }

func TestSortSmall(t *testing.T) {
	for _, s := range [][]int{{}, {1}, {2, 1}, {3, 1, 2}, {5, 4, 3, 2, 1}} {
		got := slices.Clone(s)
		Sort(got, intCmp, nil)
		want := slices.Clone(s)
		slices.Sort(want)
		if !slices.Equal(got, want) {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestSortLargeMatchesStdlib(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	n := 200000
	s := make([]int, n)
	for i := range s {
		s[i] = r.Intn(1000)
	}
	got := slices.Clone(s)
	Sort(got, intCmp, nil)
	want := slices.Clone(s)
	slices.Sort(want)
	if !slices.Equal(got, want) {
		t.Fatal("large sort mismatch")
	}
}

func TestSortStable(t *testing.T) {
	type kv struct{ k, v int }
	r := rand.New(rand.NewSource(2))
	n := 100000
	s := make([]kv, n)
	for i := range s {
		s[i] = kv{r.Intn(50), i}
	}
	got := slices.Clone(s)
	Sort(got, func(a, b kv) int { return a.k - b.k }, nil)
	for i := 1; i < n; i++ {
		if got[i-1].k > got[i].k {
			t.Fatal("not sorted")
		}
		if got[i-1].k == got[i].k && got[i-1].v > got[i].v {
			t.Fatalf("not stable at %d: (%v, %v)", i, got[i-1], got[i])
		}
	}
}

func TestSortDeterministicAcrossWorkers(t *testing.T) {
	old := par.Workers()
	defer par.SetWorkers(old)
	r := rand.New(rand.NewSource(3))
	n := 100000
	base := make([]int, n)
	for i := range base {
		base[i] = r.Intn(100)
	}
	par.SetWorkers(1)
	ref := slices.Clone(base)
	Sort(ref, intCmp, nil)
	for _, w := range []int{2, 3, 8} {
		par.SetWorkers(w)
		s := slices.Clone(base)
		Sort(s, intCmp, nil)
		if !slices.Equal(s, ref) {
			t.Fatalf("workers=%d output differs", w)
		}
	}
}

func TestSortQuickProperty(t *testing.T) {
	f := func(s []int16) bool {
		got := make([]int, len(s))
		for i, v := range s {
			got[i] = int(v)
		}
		Sort(got, intCmp, nil)
		return slices.IsSorted(got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSortChargesTracker(t *testing.T) {
	tr := pram.New()
	s := make([]int, 10000)
	for i := range s {
		s[i] = -i
	}
	Sort(s, intCmp, tr)
	if c := tr.Snapshot(); c.Depth == 0 || c.Work == 0 {
		t.Fatalf("tracker not charged: %v", c)
	}
}
