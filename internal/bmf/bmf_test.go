package bmf

import (
	"math"
	"testing"

	"repro/internal/adj"
	"repro/internal/exact"
	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/pram"
)

func TestConvergedMatchesDijkstra(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := graph.Gnm(100, 300, graph.UniformWeights(1, 7), seed)
		a := adj.Build(g, nil)
		res := Run(a, []int32{0}, g.N, nil)
		if !res.Converged {
			t.Fatal("did not converge within n rounds")
		}
		want, _ := exact.Dijkstra(a, 0)
		for v := 0; v < g.N; v++ {
			if math.Abs(res.Dist[v]-want[v]) > 1e-9 {
				t.Fatalf("seed %d vertex %d: %v vs dijkstra %v", seed, v, res.Dist[v], want[v])
			}
		}
	}
}

func TestHopLimitedSemantics(t *testing.T) {
	// Path 0-1-2-3 with heavy shortcut 0-3: r rounds give exactly the
	// r-hop-bounded distance.
	g := graph.MustFromEdges(4, []graph.Edge{
		graph.E(0, 1, 1), graph.E(1, 2, 1), graph.E(2, 3, 1), graph.E(0, 3, 10),
	})
	a := adj.Build(g, nil)
	r1 := Run(a, []int32{0}, 1, nil)
	if r1.Dist[3] != 10 { // one hop: only the direct edge
		t.Fatalf("1-hop dist = %v want 10", r1.Dist[3])
	}
	r3 := Run(a, []int32{0}, 3, nil)
	if r3.Dist[3] != 3 {
		t.Fatalf("3-hop dist = %v want 3", r3.Dist[3])
	}
}

func TestMultiSource(t *testing.T) {
	g := graph.Path(10, graph.UnitWeights(), 1)
	a := adj.Build(g, nil)
	res := Run(a, []int32{0, 9}, g.N, nil)
	want := []float64{0, 1, 2, 3, 4, 4, 3, 2, 1, 0}
	for v, w := range want {
		if res.Dist[v] != w {
			t.Fatalf("dist=%v want %v", res.Dist, want)
		}
	}
}

func TestParentsFormShortestPathForest(t *testing.T) {
	g := graph.Gnm(80, 240, graph.UniformWeights(1, 5), 3)
	a := adj.Build(g, nil)
	res := Run(a, []int32{0}, g.N, nil)
	for v := int32(0); int(v) < g.N; v++ {
		if v == 0 {
			if res.Parent[v] != -1 {
				t.Fatal("source has a parent")
			}
			continue
		}
		p := res.Parent[v]
		if p < 0 {
			if !math.IsInf(res.Dist[v], 1) {
				t.Fatalf("vertex %d reached but no parent", v)
			}
			continue
		}
		arc := res.ParentArc[v]
		if a.Nbr[arc] != p {
			t.Fatalf("vertex %d: parent arc points to %d, parent is %d", v, a.Nbr[arc], p)
		}
		if math.Abs(res.Dist[p]+a.Wt[arc]-res.Dist[v]) > 1e-9 {
			t.Fatalf("vertex %d: dist %v != parent dist %v + w %v", v, res.Dist[v], res.Dist[p], a.Wt[arc])
		}
	}
}

func TestPathTo(t *testing.T) {
	g := graph.Path(6, graph.UnitWeights(), 1)
	a := adj.Build(g, nil)
	res := Run(a, []int32{0}, 10, nil)
	path := res.PathTo(5)
	want := []int32{0, 1, 2, 3, 4, 5}
	if len(path) != len(want) {
		t.Fatalf("path=%v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path=%v want %v", path, want)
		}
	}
	// Unreached vertex: disconnected graph.
	g2 := graph.MustFromEdges(3, []graph.Edge{graph.E(0, 1, 1)})
	res2 := Run(adj.Build(g2, nil), []int32{0}, 5, nil)
	if res2.PathTo(2) != nil {
		t.Fatal("unreached vertex returned a path")
	}
}

func TestUnreachableStaysInf(t *testing.T) {
	g := graph.MustFromEdges(4, []graph.Edge{graph.E(0, 1, 1), graph.E(2, 3, 1)})
	a := adj.Build(g, nil)
	res := Run(a, []int32{0}, 10, nil)
	if !math.IsInf(res.Dist[2], 1) || !math.IsInf(res.Dist[3], 1) {
		t.Fatalf("disconnected vertices reached: %v", res.Dist)
	}
}

func TestDeterministicAcrossWorkers(t *testing.T) {
	old := par.Workers()
	defer par.SetWorkers(old)
	g := graph.Gnm(400, 1600, graph.UniformWeights(1, 9), 7)
	a := adj.Build(g, nil)
	par.SetWorkers(1)
	ref := Run(a, []int32{5}, 50, nil)
	for _, w := range []int{2, 8} {
		par.SetWorkers(w)
		got := Run(a, []int32{5}, 50, nil)
		for v := 0; v < g.N; v++ {
			if got.Dist[v] != ref.Dist[v] || got.Parent[v] != ref.Parent[v] {
				t.Fatalf("workers=%d vertex %d differs", w, v)
			}
		}
	}
}

func TestRoundsToApprox(t *testing.T) {
	g := graph.Path(50, graph.UnitWeights(), 1)
	a := adj.Build(g, nil)
	exact, _ := exact.Dijkstra(a, 0)
	// Exact distances need exactly 49 rounds on the path.
	if r := RoundsToApprox(a, []int32{0}, exact, 0, 60, nil); r != 49 {
		t.Fatalf("rounds=%d want 49", r)
	}
	// Insufficient budget.
	if r := RoundsToApprox(a, []int32{0}, exact, 0, 10, nil); r != -1 {
		t.Fatalf("rounds=%d want -1", r)
	}
	// Zero rounds suffice when the reference is trivial (source only).
	ref := make([]float64, g.N)
	for v := range ref {
		ref[v] = math.Inf(1)
	}
	ref[0] = 0
	if r := RoundsToApprox(a, []int32{0}, ref, 0, 5, nil); r != 0 {
		t.Fatalf("rounds=%d want 0", r)
	}
}

func TestRoundsToApproxConvergedShort(t *testing.T) {
	// If BF converges without meeting the target (impossible reference),
	// RoundsToApprox must return -1 rather than loop.
	g := graph.Path(10, graph.UnitWeights(), 1)
	a := adj.Build(g, nil)
	ref := make([]float64, g.N)
	for v := range ref {
		ref[v] = 0.1 // unattainably small
	}
	if r := RoundsToApprox(a, []int32{0}, ref, 0, 100, nil); r != -1 {
		t.Fatalf("rounds=%d want -1", r)
	}
}

func TestTrackerCharged(t *testing.T) {
	tr := pram.New()
	g := graph.Path(20, graph.UnitWeights(), 1)
	Run(adj.Build(g, nil), []int32{0}, 5, tr)
	if c := tr.Snapshot(); c.Depth != 5 || c.Work == 0 {
		t.Fatalf("tracker: %v", c)
	}
}
