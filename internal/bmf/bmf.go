// Package bmf is the hop-limited parallel Bellman–Ford query surface the
// paper uses over G ∪ H (§3.4): each synchronous round relaxes every arc
// once; after r rounds, Dist[v] is exactly the r-hop-bounded distance
// d^{(r)}(sources, v). With a (1+ε, β)-hopset, β rounds give
// (1+ε)-approximate distances (Theorem 3.8).
//
// Since the frontier-sparse refactor the actual relaxation lives in
// internal/relax; this package is the thin historical entry point. New
// code that needs per-round control or engine statistics should use
// package relax directly.
package bmf

import (
	"math"
	"sync/atomic"

	"repro/internal/adj"
	"repro/internal/par"
	"repro/internal/pram"
	"repro/internal/relax"
)

// Result of one exploration. It is the relaxation engine's result type;
// see relax.Result for the field and Stats documentation.
type Result = relax.Result

// Run executes up to maxRounds synchronous Bellman–Ford rounds from the
// given sources over a. Ties are broken deterministically by
// (distance, parent vertex, arc index), so the result — including the
// shortest-path forest — is schedule-independent.
//
// Run is safe for concurrent use: a is only read, and all mutable state
// is either freshly allocated or drawn from a pool per call.
func Run(a *adj.Adj, sources []int32, maxRounds int, tr *pram.Tracker) *Result {
	return relax.Run(a, sources, maxRounds, relax.Options{Tracker: tr})
}

// RoundsToApprox returns the smallest round budget r ≤ maxRounds such that
// the r-hop-bounded distances from the sources are within a (1+eps) factor
// of the reference distances ref for every vertex ref reaches, or −1 if
// maxRounds rounds do not suffice. It measures the empirical hopbound of a
// hopset (experiments E2/E11). The tracker, when non-nil, is charged the
// arcs the engine actually scanned — with the frontier-sparse kernel that
// is usually far below r·m.
func RoundsToApprox(a *adj.Adj, sources []int32, ref []float64, eps float64, maxRounds int, tr *pram.Tracker) int {
	e := relax.Start(a, sources, relax.Options{Tracker: tr})
	defer e.Finish()
	within := func() bool {
		dist := e.Dist()
		var bad atomic.Bool
		par.ForChunk(len(dist), func(lo, hi int) {
			good := true
			for v := lo; v < hi; v++ {
				if math.IsInf(ref[v], 1) {
					continue
				}
				if dist[v] > (1+eps)*ref[v]+1e-12 {
					good = false
					break
				}
			}
			if !good {
				bad.Store(true)
			}
		})
		return !bad.Load()
	}
	if within() {
		return 0
	}
	for round := 1; round <= maxRounds; round++ {
		changed := e.Step()
		if within() {
			return round
		}
		if !changed {
			return -1 // converged without reaching the target approximation
		}
	}
	return -1
}
