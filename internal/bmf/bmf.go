// Package bmf implements the hop-limited parallel Bellman–Ford exploration
// the paper uses to answer queries over G ∪ H (§3.4): each synchronous
// round relaxes every arc once; after r rounds, Dist[v] is exactly the
// r-hop-bounded distance d^{(r)}(sources, v). With a (1+ε, β)-hopset, β
// rounds give (1+ε)-approximate distances (Theorem 3.8).
package bmf

import (
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/adj"
	"repro/internal/par"
	"repro/internal/pram"
)

// scratch holds the double-buffered relaxation state of one exploration.
// Run draws it from a sync.Pool, so a steady stream of concurrent queries
// reuses buffers instead of allocating three O(n) arrays per call. The
// Result arrays themselves are always freshly allocated — they escape to
// the caller (and into caches).
type scratch struct {
	ndist   []float64
	nparent []int32
	nparc   []int32
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

// grow (re)sizes the buffers for an n-vertex exploration.
func (sc *scratch) grow(n int) {
	if cap(sc.ndist) < n {
		sc.ndist = make([]float64, n)
		sc.nparent = make([]int32, n)
		sc.nparc = make([]int32, n)
	}
	sc.ndist = sc.ndist[:n]
	sc.nparent = sc.nparent[:n]
	sc.nparc = sc.nparc[:n]
}

// Result of one exploration.
type Result struct {
	// Dist[v] is the hop-bounded distance from the nearest source
	// (+Inf when unreached within the round budget).
	Dist []float64
	// Parent[v] is the predecessor on the discovered path (-1 at sources
	// and unreached vertices).
	Parent []int32
	// ParentArc[v] is the arc (index into the adjacency) connecting
	// Parent[v] to v, or -1. Its tag identifies graph vs hopset edges.
	ParentArc []int32
	// Rounds actually executed before convergence or the cap.
	Rounds int
	// Converged reports whether a fixed point was reached before the cap
	// (true ⇒ Dist is the exact unbounded distance in the explored graph).
	Converged bool
}

// Run executes up to maxRounds synchronous Bellman–Ford rounds from the
// given sources over a. Ties are broken deterministically by
// (distance, parent vertex, arc index), so the result — including the
// shortest-path forest — is schedule-independent.
//
// Run is safe for concurrent use: a is only read, and all mutable state
// is either freshly allocated or drawn from a pool per call.
func Run(a *adj.Adj, sources []int32, maxRounds int, tr *pram.Tracker) *Result {
	n := a.N
	res := &Result{
		Dist:      make([]float64, n),
		Parent:    make([]int32, n),
		ParentArc: make([]int32, n),
	}
	for v := 0; v < n; v++ {
		res.Dist[v] = math.Inf(1)
		res.Parent[v] = -1
		res.ParentArc[v] = -1
	}
	for _, s := range sources {
		res.Dist[s] = 0
	}
	sc := scratchPool.Get().(*scratch)
	defer scratchPool.Put(sc)
	sc.grow(n)
	ndist, nparent, nparc := sc.ndist, sc.nparent, sc.nparc
	arcs := int64(a.Arcs())
	for round := 0; round < maxRounds; round++ {
		var changed atomic.Bool
		par.For(n, func(v int) {
			bd, bp, ba := res.Dist[v], res.Parent[v], res.ParentArc[v]
			for arc := a.Off[v]; arc < a.Off[v+1]; arc++ {
				u := a.Nbr[arc]
				d := res.Dist[u] + a.Wt[arc]
				if d < bd || (d == bd && (u < bp || (u == bp && arc < ba))) {
					bd, bp, ba = d, u, arc
				}
			}
			ndist[v], nparent[v], nparc[v] = bd, bp, ba
			if bd != res.Dist[v] || bp != res.Parent[v] || ba != res.ParentArc[v] {
				changed.Store(true)
			}
		})
		tr.Rounds(1, arcs)
		copy(res.Dist, ndist)
		copy(res.Parent, nparent)
		copy(res.ParentArc, nparc)
		res.Rounds = round + 1
		if !changed.Load() {
			res.Converged = true
			break
		}
	}
	return res
}

// RoundsToApprox returns the smallest round budget r ≤ maxRounds such that
// the r-hop-bounded distances from the sources are within a (1+eps) factor
// of the reference distances ref for every vertex ref reaches, or −1 if
// maxRounds rounds do not suffice. It measures the empirical hopbound of a
// hopset (experiments E2/E11).
func RoundsToApprox(a *adj.Adj, sources []int32, ref []float64, eps float64, maxRounds int, tr *pram.Tracker) int {
	n := a.N
	dist := make([]float64, n)
	for v := range dist {
		dist[v] = math.Inf(1)
	}
	for _, s := range sources {
		dist[s] = 0
	}
	within := func() bool {
		ok := true
		par.ForChunk(n, func(lo, hi int) {
			good := true
			for v := lo; v < hi; v++ {
				if math.IsInf(ref[v], 1) {
					continue
				}
				if dist[v] > (1+eps)*ref[v]+1e-12 {
					good = false
					break
				}
			}
			if !good {
				ok = false
			}
		})
		return ok
	}
	if within() {
		return 0
	}
	next := make([]float64, n)
	arcs := int64(a.Arcs())
	for round := 1; round <= maxRounds; round++ {
		var changed atomic.Bool
		par.For(n, func(v int) {
			best := dist[v]
			for arc := a.Off[v]; arc < a.Off[v+1]; arc++ {
				if d := dist[a.Nbr[arc]] + a.Wt[arc]; d < best {
					best = d
				}
			}
			next[v] = best
			if best != dist[v] {
				changed.Store(true)
			}
		})
		tr.Rounds(1, arcs)
		copy(dist, next)
		if within() {
			return round
		}
		if !changed.Load() {
			return -1 // converged without reaching the target approximation
		}
	}
	return -1
}

// PathTo returns the vertex path from the nearest source to v along parent
// pointers, or nil if v is unreached.
func (r *Result) PathTo(v int32) []int32 {
	if math.IsInf(r.Dist[v], 1) {
		return nil
	}
	var rev []int32
	for cur := v; cur >= 0; cur = r.Parent[cur] {
		rev = append(rev, cur)
		if len(rev) > len(r.Dist) {
			return nil // cycle guard: cannot happen with positive weights
		}
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}
