// Package hist is a fixed-bucket, allocation-free latency histogram for
// the serving path: Observe is a handful of atomic adds (safe from any
// number of goroutines, never allocates, never locks), and Snapshot folds
// the buckets into the p50/p90/p99/p999 summary the stats endpoints
// expose. No external dependencies.
//
// Buckets are log-linear (HDR-style): values are recorded in microseconds,
// each power-of-two octave is split into 4 linear quarters, so every
// bucket's width is at most 25% of its lower bound — quantile estimates
// are conservative (bucket upper bound) and within ~25% of exact, which
// is plenty to see a tail move by 1.5×.
package hist

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Bucket layout: values are microseconds, capped at maxOctave octaves.
//   - v in [0,4):  bucket v (exact)
//   - v in [2^(o-1), 2^o), o ≥ 3: 4 linear quarters per octave
//
// maxOctave 40 covers ~2^39 µs ≈ 6.4 days in the last octave; anything
// larger lands in the final bucket.
const (
	maxOctave  = 40
	numBuckets = 4 + (maxOctave-2)*4
)

// Histogram is a concurrent fixed-bucket latency histogram. The zero
// value is ready to use. Must not be copied after first use.
type Histogram struct {
	counts [numBuckets]atomic.Int64
	count  atomic.Int64
	sumUs  atomic.Int64
	maxUs  atomic.Int64
}

// bucketFor maps a microsecond value to its bucket index.
func bucketFor(us int64) int {
	if us < 4 {
		if us < 0 {
			return 0
		}
		return int(us)
	}
	o := bits.Len64(uint64(us)) // us in [2^(o-1), 2^o), o ≥ 3
	if o > maxOctave {
		return numBuckets - 1
	}
	quarter := (us - 1<<(o-1)) >> (o - 3)
	return 4 + (o-3)*4 + int(quarter)
}

// bucketUpperUs is the inclusive upper bound of bucket b in microseconds —
// the value Snapshot reports for a quantile landing in b.
func bucketUpperUs(b int) int64 {
	if b < 4 {
		return int64(b)
	}
	o := (b-4)/4 + 3
	quarter := int64((b - 4) % 4)
	return 1<<(o-1) + (quarter+1)<<(o-3) - 1
}

// Observe records one duration. Allocation-free and lock-free.
func (h *Histogram) Observe(d time.Duration) {
	us := int64(d / time.Microsecond)
	if us < 0 {
		us = 0
	}
	h.counts[bucketFor(us)].Add(1)
	h.count.Add(1)
	h.sumUs.Add(us)
	for {
		cur := h.maxUs.Load()
		if us <= cur || h.maxUs.CompareAndSwap(cur, us) {
			return
		}
	}
}

// Snapshot is the JSON-facing summary of one histogram: counts and
// microsecond quantiles (bucket upper bounds, so estimates never
// understate the tail).
type Snapshot struct {
	Count  int64   `json:"count"`
	MeanUs float64 `json:"mean_us"`
	P50Us  int64   `json:"p50_us"`
	P90Us  int64   `json:"p90_us"`
	P99Us  int64   `json:"p99_us"`
	P999Us int64   `json:"p999_us"`
	MaxUs  int64   `json:"max_us"`
}

// Snapshot folds the buckets into quantiles. Concurrent Observes may or
// may not be included; the snapshot is internally consistent enough for
// monitoring (quantiles come from one pass over the bucket counters).
func (h *Histogram) Snapshot() Snapshot {
	var counts [numBuckets]int64
	var total int64
	for i := range counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	s := Snapshot{Count: total, MaxUs: h.maxUs.Load()}
	if total == 0 {
		return s
	}
	s.MeanUs = float64(h.sumUs.Load()) / float64(total)
	quantile := func(q float64) int64 {
		rank := int64(q * float64(total))
		if rank >= total {
			rank = total - 1
		}
		var seen int64
		for b, c := range counts {
			seen += c
			if seen > rank {
				up := bucketUpperUs(b)
				if up > s.MaxUs {
					return s.MaxUs
				}
				return up
			}
		}
		return s.MaxUs
	}
	s.P50Us = quantile(0.50)
	s.P90Us = quantile(0.90)
	s.P99Us = quantile(0.99)
	s.P999Us = quantile(0.999)
	return s
}
