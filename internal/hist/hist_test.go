package hist

import (
	"sync"
	"testing"
	"time"
)

// TestBucketBoundsRoundTrip pins the bucket layout: every bucket's upper
// bound maps back to that bucket, bounds are strictly increasing, and a
// value one past the bound lands in the next bucket.
func TestBucketBoundsRoundTrip(t *testing.T) {
	prev := int64(-1)
	for b := 0; b < numBuckets; b++ {
		up := bucketUpperUs(b)
		if up <= prev {
			t.Fatalf("bucket %d upper %d not increasing (prev %d)", b, up, prev)
		}
		if got := bucketFor(up); got != b {
			t.Fatalf("bucketFor(upper(%d)=%d) = %d", b, up, got)
		}
		if b+1 < numBuckets {
			if got := bucketFor(up + 1); got != b+1 {
				t.Fatalf("bucketFor(%d) = %d, want %d", up+1, got, b+1)
			}
		}
		prev = up
	}
	// Overflow past the last octave saturates instead of panicking.
	if got := bucketFor(1 << 62); got != numBuckets-1 {
		t.Fatalf("overflow bucket = %d, want %d", got, numBuckets-1)
	}
	if got := bucketFor(-5); got != 0 {
		t.Fatalf("negative bucket = %d, want 0", got)
	}
}

// TestQuantiles checks the summary against a known distribution: 1000
// observations at 100µs and 10 at 100ms. p50/p90 sit in the bulk, p99 and
// above see the tail; estimates may only overshoot (bucket upper bound),
// never undershoot, and by at most 25%.
func TestQuantiles(t *testing.T) {
	var h Histogram
	for i := 0; i < 1000; i++ {
		h.Observe(100 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(100 * time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 1010 {
		t.Fatalf("count = %d", s.Count)
	}
	within := func(name string, got, exact int64) {
		t.Helper()
		if got < exact || float64(got) > float64(exact)*1.25+1 {
			t.Fatalf("%s = %dµs, want within [%d, %d]", name, got, exact, int64(float64(exact)*1.25)+1)
		}
	}
	within("p50", s.P50Us, 100)
	within("p90", s.P90Us, 100)
	within("p999", s.P999Us, 100_000)
	if s.MaxUs != 100_000 {
		t.Fatalf("max = %dµs", s.MaxUs)
	}
	if s.MeanUs < 100 || s.MeanUs > 1200 {
		t.Fatalf("mean = %.1fµs out of range", s.MeanUs)
	}
}

// TestConcurrentObserve hammers Observe from many goroutines (run with
// -race) and checks nothing is lost.
func TestConcurrentObserve(t *testing.T) {
	var h Histogram
	const G, per = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(g*i) * time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	if s := h.Snapshot(); s.Count != G*per {
		t.Fatalf("count = %d, want %d", s.Count, G*per)
	}
}

// TestObserveAllocs pins the hot path at zero allocations.
func TestObserveAllocs(t *testing.T) {
	var h Histogram
	if a := testing.AllocsPerRun(100, func() { h.Observe(42 * time.Microsecond) }); a != 0 {
		t.Fatalf("Observe allocates %.1f/op, want 0", a)
	}
}

// TestEmptySnapshot: a fresh histogram reports zeros, not garbage.
func TestEmptySnapshot(t *testing.T) {
	var h Histogram
	if s := h.Snapshot(); s != (Snapshot{}) {
		t.Fatalf("empty snapshot = %+v", s)
	}
}
