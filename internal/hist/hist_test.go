package hist

import (
	"sort"
	"sync"
	"testing"
	"time"
)

// TestBucketBoundsRoundTrip pins the bucket layout: every bucket's upper
// bound maps back to that bucket, bounds are strictly increasing, and a
// value one past the bound lands in the next bucket.
func TestBucketBoundsRoundTrip(t *testing.T) {
	prev := int64(-1)
	for b := 0; b < numBuckets; b++ {
		up := bucketUpperUs(b)
		if up <= prev {
			t.Fatalf("bucket %d upper %d not increasing (prev %d)", b, up, prev)
		}
		if got := bucketFor(up); got != b {
			t.Fatalf("bucketFor(upper(%d)=%d) = %d", b, up, got)
		}
		if b+1 < numBuckets {
			if got := bucketFor(up + 1); got != b+1 {
				t.Fatalf("bucketFor(%d) = %d, want %d", up+1, got, b+1)
			}
		}
		prev = up
	}
	// Overflow past the last octave saturates instead of panicking.
	if got := bucketFor(1 << 62); got != numBuckets-1 {
		t.Fatalf("overflow bucket = %d, want %d", got, numBuckets-1)
	}
	if got := bucketFor(-5); got != 0 {
		t.Fatalf("negative bucket = %d, want 0", got)
	}
}

// TestQuantiles checks the summary against a known distribution: 1000
// observations at 100µs and 10 at 100ms. p50/p90 sit in the bulk, p99 and
// above see the tail; estimates may only overshoot (bucket upper bound),
// never undershoot, and by at most 25%.
func TestQuantiles(t *testing.T) {
	var h Histogram
	for i := 0; i < 1000; i++ {
		h.Observe(100 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(100 * time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 1010 {
		t.Fatalf("count = %d", s.Count)
	}
	within := func(name string, got, exact int64) {
		t.Helper()
		if got < exact || float64(got) > float64(exact)*1.25+1 {
			t.Fatalf("%s = %dµs, want within [%d, %d]", name, got, exact, int64(float64(exact)*1.25)+1)
		}
	}
	within("p50", s.P50Us, 100)
	within("p90", s.P90Us, 100)
	within("p999", s.P999Us, 100_000)
	if s.MaxUs != 100_000 {
		t.Fatalf("max = %dµs", s.MaxUs)
	}
	if s.MeanUs < 100 || s.MeanUs > 1200 {
		t.Fatalf("mean = %.1fµs out of range", s.MeanUs)
	}
}

// TestConcurrentObserve hammers Observe from many goroutines (run with
// -race) and checks nothing is lost.
func TestConcurrentObserve(t *testing.T) {
	var h Histogram
	const G, per = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(g*i) * time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	if s := h.Snapshot(); s.Count != G*per {
		t.Fatalf("count = %d, want %d", s.Count, G*per)
	}
}

// TestObserveAllocs pins the hot path at zero allocations.
func TestObserveAllocs(t *testing.T) {
	var h Histogram
	if a := testing.AllocsPerRun(100, func() { h.Observe(42 * time.Microsecond) }); a != 0 {
		t.Fatalf("Observe allocates %.1f/op, want 0", a)
	}
}

// TestEmptySnapshot: a fresh histogram reports zeros, not garbage.
func TestEmptySnapshot(t *testing.T) {
	var h Histogram
	if s := h.Snapshot(); s != (Snapshot{}) {
		t.Fatalf("empty snapshot = %+v", s)
	}
}

// TestSingleObservation: with one sample, every quantile is that sample
// (the bucket upper bound clamps to the recorded max, so the estimate is
// exact, not 25% high).
func TestSingleObservation(t *testing.T) {
	var h Histogram
	h.Observe(777 * time.Microsecond)
	s := h.Snapshot()
	if s.Count != 1 || s.MaxUs != 777 || s.MeanUs != 777 {
		t.Fatalf("snapshot = %+v", s)
	}
	for name, q := range map[string]int64{"p50": s.P50Us, "p90": s.P90Us, "p99": s.P99Us, "p999": s.P999Us} {
		if q != 777 {
			t.Fatalf("%s = %d, want 777 (single observation defines every quantile)", name, q)
		}
	}
}

// TestQuantileUpperBoundGuarantee is the histogram's accuracy contract as
// a property: over assorted deterministic distributions, every reported
// quantile is ≥ the exact order statistic (never understates the tail)
// and ≤ max(exact·1.25+1, observed max) (bucket width bound).
func TestQuantileUpperBoundGuarantee(t *testing.T) {
	distributions := map[string][]int64{
		"constant":  repeat(250, 500),
		"two-point": append(repeat(10, 900), repeat(5000, 100)...),
		"ramp":      ramp(1, 2000),
		"octaves":   []int64{0, 1, 2, 3, 4, 7, 8, 15, 16, 31, 32, 63, 64, 1 << 20, 1 << 30},
	}
	for name, vals := range distributions {
		var h Histogram
		sorted := append([]int64(nil), vals...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for _, v := range vals {
			h.Observe(time.Duration(v) * time.Microsecond)
		}
		s := h.Snapshot()
		maxv := sorted[len(sorted)-1]
		for _, c := range []struct {
			q     float64
			got   int64
			label string
		}{{0.50, s.P50Us, "p50"}, {0.90, s.P90Us, "p90"}, {0.99, s.P99Us, "p99"}, {0.999, s.P999Us, "p999"}} {
			rank := int(c.q * float64(len(sorted)))
			if rank >= len(sorted) {
				rank = len(sorted) - 1
			}
			exact := sorted[rank]
			if c.got < exact {
				t.Errorf("%s %s = %d understates exact %d", name, c.label, c.got, exact)
			}
			if hi := int64(float64(exact)*1.25) + 1; c.got > hi && c.got > maxv {
				t.Errorf("%s %s = %d overshoots both 1.25·exact+1 (%d) and max (%d)", name, c.label, c.got, hi, maxv)
			}
		}
		if s.MaxUs != maxv {
			t.Errorf("%s max = %d, want %d", name, s.MaxUs, maxv)
		}
	}
}

func repeat(v int64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func ramp(lo, hi int64) []int64 {
	out := make([]int64, 0, hi-lo+1)
	for v := lo; v <= hi; v++ {
		out = append(out, v)
	}
	return out
}

// TestConcurrentObserveSnapshot runs Observe and Snapshot concurrently
// (meaningful under -race): snapshots taken mid-flight must stay
// internally sane — count never decreases, quantiles never negative —
// and the final count is exact.
func TestConcurrentObserveSnapshot(t *testing.T) {
	var h Histogram
	const G, per = 4, 2000
	stop := make(chan struct{})
	var rg sync.WaitGroup
	rg.Add(1)
	go func() {
		defer rg.Done()
		var last int64
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := h.Snapshot()
			if s.Count < last {
				t.Errorf("snapshot count went backwards: %d after %d", s.Count, last)
				return
			}
			last = s.Count
			if s.P50Us < 0 || s.P999Us < 0 || s.MaxUs < 0 {
				t.Errorf("negative quantile in %+v", s)
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(g*i%5000) * time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	rg.Wait()
	if s := h.Snapshot(); s.Count != G*per {
		t.Fatalf("final count = %d, want %d", s.Count, G*per)
	}
}
