package integration

import (
	"context"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/graph"
	"repro/internal/pram"
	"repro/internal/testkit"
	"repro/oracle"
)

// TestSoakLargeGraph is the one deliberately larger end-to-end run in the
// suite: n = 4096. It validates stretch from sampled sources, the size
// bound, and PRAM accounting in one pass. Skipped under -short.
func TestSoakLargeGraph(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	eps := 0.25
	g := graph.Gnm(4096, 16384, graph.UniformWeights(1, 10), 99)
	tr := pram.New()
	s, err := core.New(g, core.Options{Epsilon: eps, Tracker: tr})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Hopset()
	bound := float64(h.Sched.Lambda+1) * math.Pow(float64(g.N), 1+1.0/3.0)
	if float64(h.Size()) > bound {
		t.Fatalf("size %d exceeds bound %.0f", h.Size(), bound)
	}
	for _, src := range []int32{1, 2047, 4095} {
		got, err := s.ApproxDistances(src)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := exact.DijkstraGraph(g, src)
		worst := 1.0
		for v := 0; v < g.N; v++ {
			if want[v] > 0 && !math.IsInf(want[v], 1) {
				if got[v] < want[v]-1e-6 {
					t.Fatalf("src %d v %d: undershoot", src, v)
				}
				if r := got[v] / want[v]; r > worst {
					worst = r
				}
			}
		}
		if worst > 1+eps+1e-9 {
			t.Fatalf("src %d: stretch %v", src, worst)
		}
	}
	c := tr.Snapshot()
	if c.Depth == 0 || c.Work == 0 {
		t.Fatal("tracker empty")
	}
	// Depth stays polylog-ish: well under n.
	if c.Depth > int64(g.N) {
		t.Fatalf("depth %d is not sublinear in n=%d", c.Depth, g.N)
	}
}

// TestSoakRegistry drives the full serving lifecycle in a loop — build,
// query, hot reload, evict, rebuild on demand — across three resident
// graphs under a memory budget that can only hold two of them, with
// concurrent queriers checking every answer bit-exactly against fixed
// references. Every source rebuilds the same deterministic engine, so any
// mixed or stale answer is a hard failure. Skipped under -short.
func TestSoakRegistry(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	baseline := runtime.NumGoroutine()

	const n = 140
	graphs := map[string]int64{"road": 1, "social": 2, "mesh": 3}
	families := map[string]func(int, int64) *graph.Graph{
		"road":   testkit.Grid,
		"social": testkit.Social,
		"mesh":   testkit.Gnm,
	}
	refs := make(map[string][]float64)
	var engineBytes int64
	for name, seed := range graphs {
		eng, err := oracle.New(families[name](n, seed), oracle.WithEpsilon(0.3))
		if err != nil {
			t.Fatal(err)
		}
		if refs[name], err = eng.Dist(0); err != nil {
			t.Fatal(err)
		}
		if b := eng.MemoryBytes(); b > engineBytes {
			engineBytes = b
		}
	}

	// Budget fits roughly two of the three engines: the LRU graph cycles
	// through eviction and demand-driven rebuild while queries keep
	// flowing to the resident ones.
	r := oracle.NewRegistry(oracle.RegistryConfig{MemoryBudget: 5 * engineBytes / 2})
	defer r.Close()
	for name, seed := range graphs {
		name, seed := name, seed
		src := func(ctx context.Context, opts ...oracle.Option) (oracle.Backend, error) {
			return oracle.New(families[name](n, seed), append(opts, oracle.WithEpsilon(0.3))...)
		}
		if err := r.Add(name, src); err != nil {
			t.Fatal(err)
		}
	}
	names := []string{"road", "social", "mesh"}
	for _, name := range names {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		if err := r.WaitReady(ctx, name); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		cancel()
	}

	var wrong atomic.Int64
	const (
		queriers = 6
		rounds   = 10
	)
	var wg sync.WaitGroup
	for q := 0; q < queriers; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			for i := 0; i < rounds*len(names); i++ {
				name := names[(q+i)%len(names)]
				d, err := r.Dist(name, 0)
				if err != nil {
					// Evicted graphs are legal misses: the acquire already
					// re-enqueued the rebuild; wait for it and retry once.
					ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
					werr := r.WaitReady(ctx, name)
					cancel()
					if werr != nil {
						t.Errorf("%s never came back: %v (query error %v)", name, werr, err)
						return
					}
					if d, err = r.Dist(name, 0); err != nil {
						// A second miss is possible if the budget evicted it
						// again immediately; it is not a correctness failure.
						continue
					}
				}
				want := refs[name]
				for v := range want {
					if d[v] != want[v] {
						wrong.Add(1)
						break
					}
				}
			}
		}(q)
	}
	// Reloader: hot-swap each graph in turn while the queriers run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			if err := r.Reload(names[i%len(names)]); err != nil {
				t.Errorf("reload: %v", err)
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()
	wg.Wait()

	if w := wrong.Load(); w != 0 {
		t.Fatalf("%d answers deviated from the deterministic reference", w)
	}
	st := r.Stats()
	if st.BuildsDone < int64(len(names)) || st.Reloads == 0 {
		t.Fatalf("soak did not exercise the lifecycle: %+v", st)
	}
	t.Logf("soak stats: %+v", st)

	r.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if r.Stats().Draining == 0 && runtime.NumGoroutine() <= baseline+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("leak after soak: draining=%d goroutines=%d (baseline %d)",
				r.Stats().Draining, runtime.NumGoroutine(), baseline)
		}
		runtime.GC()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSoakHighDiameter validates the regime the paper targets: a graph
// whose hop diameter is the bottleneck for plain parallel BF.
func TestSoakHighDiameter(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	eps := 0.25
	g := graph.Grid(48, 48, graph.UniformWeights(1, 3), 5)
	s, err := core.New(g, core.Options{Epsilon: eps})
	if err != nil {
		t.Fatal(err)
	}
	src := int32(17*48 + 23)
	got, err := s.ApproxDistances(src)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := exact.DijkstraGraph(g, src)
	for v := 0; v < g.N; v++ {
		if got[v] < want[v]-1e-6 || got[v] > (1+eps)*want[v]+1e-6 {
			t.Fatalf("v %d: %v vs %v", v, got[v], want[v])
		}
	}
	// The query budget must be far below the ~94-hop diameter walk count
	// BF would need times the safety margin... simply: budget < n.
	if s.HopBudget() >= g.N {
		t.Fatalf("hop budget %d not sublinear", s.HopBudget())
	}
}
