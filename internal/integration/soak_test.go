package integration

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/graph"
	"repro/internal/pram"
)

// TestSoakLargeGraph is the one deliberately larger end-to-end run in the
// suite: n = 4096. It validates stretch from sampled sources, the size
// bound, and PRAM accounting in one pass. Skipped under -short.
func TestSoakLargeGraph(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	eps := 0.25
	g := graph.Gnm(4096, 16384, graph.UniformWeights(1, 10), 99)
	tr := pram.New()
	s, err := core.New(g, core.Options{Epsilon: eps, Tracker: tr})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Hopset()
	bound := float64(h.Sched.Lambda+1) * math.Pow(float64(g.N), 1+1.0/3.0)
	if float64(h.Size()) > bound {
		t.Fatalf("size %d exceeds bound %.0f", h.Size(), bound)
	}
	for _, src := range []int32{1, 2047, 4095} {
		got, err := s.ApproxDistances(src)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := exact.DijkstraGraph(g, src)
		worst := 1.0
		for v := 0; v < g.N; v++ {
			if want[v] > 0 && !math.IsInf(want[v], 1) {
				if got[v] < want[v]-1e-6 {
					t.Fatalf("src %d v %d: undershoot", src, v)
				}
				if r := got[v] / want[v]; r > worst {
					worst = r
				}
			}
		}
		if worst > 1+eps+1e-9 {
			t.Fatalf("src %d: stretch %v", src, worst)
		}
	}
	c := tr.Snapshot()
	if c.Depth == 0 || c.Work == 0 {
		t.Fatal("tracker empty")
	}
	// Depth stays polylog-ish: well under n.
	if c.Depth > int64(g.N) {
		t.Fatalf("depth %d is not sublinear in n=%d", c.Depth, g.N)
	}
}

// TestSoakHighDiameter validates the regime the paper targets: a graph
// whose hop diameter is the bottleneck for plain parallel BF.
func TestSoakHighDiameter(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	eps := 0.25
	g := graph.Grid(48, 48, graph.UniformWeights(1, 3), 5)
	s, err := core.New(g, core.Options{Epsilon: eps})
	if err != nil {
		t.Fatal(err)
	}
	src := int32(17*48 + 23)
	got, err := s.ApproxDistances(src)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := exact.DijkstraGraph(g, src)
	for v := 0; v < g.N; v++ {
		if got[v] < want[v]-1e-6 || got[v] > (1+eps)*want[v]+1e-6 {
			t.Fatalf("v %d: %v vs %v", v, got[v], want[v])
		}
	}
	// The query budget must be far below the ~94-hop diameter walk count
	// BF would need times the safety margin... simply: budget < n.
	if s.HopBudget() >= g.N {
		t.Fatalf("hop budget %d not sublinear", s.HopBudget())
	}
}
