package integration

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/graphio"
	"repro/internal/partition"
	"repro/internal/testkit"
	"repro/shard"
)

// buildShardserve compiles the real cmd/shardserve binary once per test
// run — the multi-process suites exercise actual worker processes, not
// in-process stand-ins.
var shardserveOnce struct {
	sync.Once
	bin string
	err error
}

func buildShardserve(t *testing.T) string {
	t.Helper()
	shardserveOnce.Do(func() {
		dir, err := os.MkdirTemp("", "shardserve-bin-")
		if err != nil {
			shardserveOnce.err = err
			return
		}
		bin := filepath.Join(dir, "shardserve")
		out, err := exec.Command("go", "build", "-o", bin, "repro/cmd/shardserve").CombinedOutput()
		if err != nil {
			shardserveOnce.err = fmt.Errorf("building shardserve: %v\n%s", err, out)
			return
		}
		shardserveOnce.bin = bin
	})
	if shardserveOnce.err != nil {
		t.Fatal(shardserveOnce.err)
	}
	return shardserveOnce.bin
}

// workerProc is one live shardserve process.
type workerProc struct {
	cmd *exec.Cmd
	url string
}

// startWorkerProc launches a shardserve worker on an ephemeral port and
// parses the listen address from its startup log line.
func startWorkerProc(t *testing.T, bin, manifest string) *workerProc {
	t.Helper()
	cmd := exec.Command(bin,
		"-manifest", manifest,
		"-addr", "127.0.0.1:0",
		"-eps", fmt.Sprintf("%g", shardEps),
		"-paths=true",
	)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	w := &workerProc{cmd: cmd}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})

	// The worker logs structured JSON; the "worker listening" event
	// carries the bound address.
	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			var ev struct {
				Msg  string `json:"msg"`
				Addr string `json:"addr"`
			}
			if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
				continue
			}
			if ev.Msg == "worker listening" && ev.Addr != "" {
				select {
				case addrc <- ev.Addr:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrc:
		// ":0" binds may report a wildcard host; queries go to loopback.
		if i := strings.LastIndex(addr, ":"); i >= 0 {
			addr = "127.0.0.1" + addr[i:]
		}
		w.url = "http://" + addr
	case <-time.After(30 * time.Second):
		t.Fatal("shardserve did not report its listen address")
	}
	return w
}

// kill sends SIGKILL — an abrupt process death, not a graceful drain.
func (w *workerProc) kill() {
	w.cmd.Process.Kill()
	w.cmd.Wait()
}

// TestMultiProcessRemoteEquivalence is the distributed half of the golden
// determinism claim, with real process boundaries: for every golden-corpus
// instance, a shard.Router scatter-gathering over two separate shardserve
// worker processes must answer dist and path queries bit-identically to
// the in-process shard.Oracle opened from the same manifest with the same
// flags. Skipped under -short (it compiles and spawns real binaries).
func TestMultiProcessRemoteEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process suite skipped in -short mode")
	}
	bin := buildShardserve(t)
	for _, c := range goldenCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			dir := t.TempDir()
			manPath, err := graphio.WriteShards(dir, c.name, partition.Partition(c.g, 2))
			if err != nil {
				t.Fatal(err)
			}
			man, err := graphio.LoadShardManifest(manPath)
			if err != nil {
				t.Fatal(err)
			}
			cfg := shard.Config{EpsilonLocal: shardEps, PathReporting: true}
			want, err := shard.Open(context.Background(), manPath, cfg)
			if err != nil {
				t.Fatal(err)
			}

			w0 := startWorkerProc(t, bin, manPath)
			w1 := startWorkerProc(t, bin, manPath)
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			router, err := shard.NewRouter(ctx, man,
				shard.UniformPlacement(man.Name, man.K, []string{w0.url, w1.url}),
				shard.RouterConfig{Config: cfg})
			if err != nil {
				t.Fatal(err)
			}
			defer router.Close()

			for _, src := range c.sources {
				wd, err := want.Dist(src)
				if err != nil {
					t.Fatal(err)
				}
				gd, err := router.Dist(src)
				if err != nil {
					t.Fatalf("routed dist(%d): %v", src, err)
				}
				// Hex rendering makes any drift a visible bit diff.
				for v := range wd {
					if gd[v] != wd[v] {
						t.Fatalf("dist(%d)[%d] = %x, want %x", src, v, gd[v], wd[v])
					}
				}
				wp, wl, err := want.Path(src, int32(c.g.N-1))
				if err != nil {
					t.Fatal(err)
				}
				gp, gl, err := router.Path(src, int32(c.g.N-1))
				if err != nil {
					t.Fatalf("routed path(%d): %v", src, err)
				}
				if gl != wl || !reflect.DeepEqual(gp, wp) {
					t.Fatalf("routed path(%d) = (%v, %x), want (%v, %x)", src, gp, gl, wp, wl)
				}
			}
		})
	}
}

// TestMultiProcessFailover kills one of two replica worker processes
// (SIGKILL, mid-traffic) while concurrent queriers hammer the router.
// Every query must still return the bit-exact in-process answer — zero
// failed queries, zero wrong answers — and the router must record the
// dead endpoint as unhealthy. Run under -race in CI.
func TestMultiProcessFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process suite skipped in -short mode")
	}
	bin := buildShardserve(t)
	dir := t.TempDir()
	g := testkit.Grid(196, 4)
	manPath, err := graphio.WriteShards(dir, "grid", partition.Partition(g, 3))
	if err != nil {
		t.Fatal(err)
	}
	man, err := graphio.LoadShardManifest(manPath)
	if err != nil {
		t.Fatal(err)
	}
	cfg := shard.Config{
		EpsilonLocal:  shardEps,
		PathReporting: true,
		// Disable the router's assembled-vector cache so every query goes
		// back over the wire — the point is to hit the dead worker.
		DistCache: -1,
	}
	want, err := shard.Open(context.Background(), manPath, cfg)
	if err != nil {
		t.Fatal(err)
	}
	refs := make(map[int32][]float64)
	for src := int32(0); src < int32(g.N); src += 7 {
		d, err := want.Dist(src)
		if err != nil {
			t.Fatal(err)
		}
		refs[src] = d
	}

	w0 := startWorkerProc(t, bin, manPath)
	w1 := startWorkerProc(t, bin, manPath)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	router, err := shard.NewRouter(ctx, man,
		shard.UniformPlacement(man.Name, man.K, []string{w0.url, w1.url}),
		shard.RouterConfig{Config: cfg, ProbeInterval: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()

	var failed, wrong atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for q := 0; q < 8; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			srcs := make([]int32, 0, len(refs))
			for s := range refs {
				srcs = append(srcs, s)
			}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				src := srcs[(q*13+i)%len(srcs)]
				d, err := router.Dist(src)
				if err != nil {
					t.Logf("querier %d: dist(%d): %v", q, src, err)
					failed.Add(1)
					continue
				}
				if !reflect.DeepEqual(d, refs[src]) {
					wrong.Add(1)
				}
			}
		}(q)
	}

	// Let traffic flow on both replicas, then kill one process outright.
	time.Sleep(300 * time.Millisecond)
	w0.kill()
	time.Sleep(700 * time.Millisecond)
	close(stop)
	wg.Wait()

	if f := failed.Load(); f != 0 {
		t.Fatalf("%d queries failed during/after the kill", f)
	}
	if w := wrong.Load(); w != 0 {
		t.Fatalf("%d answers deviated from the in-process reference", w)
	}
	st := router.Stats()
	if st.Sharded == nil || st.Sharded.Remote == nil {
		t.Fatal("router stats missing the remote section")
	}
	for _, ep := range st.Sharded.Remote.Endpoints {
		if ep.URL == w0.url && ep.Healthy {
			t.Fatal("killed worker still reported healthy")
		}
		if ep.URL == w1.url && !ep.Healthy {
			t.Fatal("surviving worker reported unhealthy")
		}
	}
	t.Logf("failover stats: hedges=%d wins=%d failovers=%d",
		st.Sharded.Remote.Hedges, st.Sharded.Remote.HedgeWins, st.Sharded.Remote.Failovers)
}
