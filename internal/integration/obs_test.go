package integration

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/graphio"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/testkit"
)

// buildServe compiles the real cmd/serve binary once per test run, the
// same way buildShardserve does for the worker half.
var serveOnce struct {
	sync.Once
	bin string
	err error
}

func buildServe(t *testing.T) string {
	t.Helper()
	serveOnce.Do(func() {
		dir, err := os.MkdirTemp("", "serve-bin-")
		if err != nil {
			serveOnce.err = err
			return
		}
		bin := filepath.Join(dir, "serve")
		out, err := exec.Command("go", "build", "-o", bin, "repro/cmd/serve").CombinedOutput()
		if err != nil {
			serveOnce.err = fmt.Errorf("building serve: %v\n%s", err, out)
			return
		}
		serveOnce.bin = bin
	})
	if serveOnce.err != nil {
		t.Fatal(serveOnce.err)
	}
	return serveOnce.bin
}

// startProc launches a binary, waits for the structured "listening" /
// "worker listening" JSON event on stderr, and returns the loopback
// base URL from its addr attribute ("debug listening" is the pprof
// side listener, not the serving port).
func startProc(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})

	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			var ev struct {
				Msg  string `json:"msg"`
				Addr string `json:"addr"`
			}
			if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
				continue
			}
			if (ev.Msg != "listening" && ev.Msg != "worker listening") || ev.Addr == "" {
				continue
			}
			select {
			case addrc <- ev.Addr:
			default:
			}
			return
		}
	}()
	select {
	case addr := <-addrc:
		if i := strings.LastIndex(addr, ":"); i >= 0 {
			addr = "127.0.0.1" + addr[i:]
		}
		return "http://" + addr
	case <-time.After(30 * time.Second):
		t.Fatalf("%s did not report its listen address", filepath.Base(bin))
		return ""
	}
}

// scrapeMetrics GETs and parses base/metrics as Prometheus text —
// parse errors fail the test, which is the exposition-format contract.
func scrapeMetrics(t *testing.T, base string) map[string]*obs.ParsedFamily {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s/metrics: status %d", base, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("%s/metrics: content-type %q", base, ct)
	}
	fams, err := obs.ParseExposition(resp.Body)
	if err != nil {
		t.Fatalf("%s/metrics is not valid exposition text: %v", base, err)
	}
	return fams
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("%s: status %d: %s", url, resp.StatusCode, body)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("%s: %v", url, err)
	}
}

// traceJSON mirrors the obs trace endpoint's response shape.
type traceJSON struct {
	TraceID string         `json:"trace_id"`
	Spans   []obs.SpanData `json:"spans"`
}

// TestMultiProcessObservability drives the full distributed observability
// surface with real processes: a serve router over two shardserve worker
// processes, traced queries end to end. It asserts
//
//   - /metrics on router and workers parses as Prometheus exposition
//     text and carries the expected families (registry, HTTP, tracer,
//     and — on the admission-limited workers — spo_admission_*);
//   - /metrics and /stats agree on the registry query counter (the two
//     surfaces read the same snapshots);
//   - a router-issued traceparent produces worker-side spans: the
//     worker's /trace/{id}?local=1 holds shardserve spans whose parent
//     is a router-side attempt span, and the router's merged /trace/{id}
//     tree contains both services;
//   - with an aggressive hedge delay, some trace shows the hedged race
//     resolved: a winning attempt marked hedge plus a cancelled loser.
//
// Runs under -race in CI via the TestMultiProcess name prefix.
func TestMultiProcessObservability(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process suite skipped in -short mode")
	}
	serveBin := buildServe(t)
	workerBin := buildShardserve(t)

	dir := t.TempDir()
	g := testkit.Grid(196, 4)
	manPath, err := graphio.WriteShards(dir, "grid", partition.Partition(g, 2))
	if err != nil {
		t.Fatal(err)
	}
	man, err := graphio.LoadShardManifest(manPath)
	if err != nil {
		t.Fatal(err)
	}

	workerArgs := func() []string {
		return []string{
			"-manifest", manPath,
			"-addr", "127.0.0.1:0",
			"-eps", fmt.Sprintf("%g", shardEps),
			"-paths=true",
			"-max-inflight", "64",
		}
	}
	w0 := startProc(t, workerBin, workerArgs()...)
	w1 := startProc(t, workerBin, workerArgs()...)

	router := startProc(t, serveBin,
		"-addr", "127.0.0.1:0",
		"-route-manifest", manPath,
		"-shard-peers", w0+","+w1,
		"-eps", fmt.Sprintf("%g", shardEps),
		"-paths=true",
		// Aggressive fixed hedge: essentially every routed leg races two
		// replicas, so hedged winners and cancelled losers are frequent.
		"-hedge", "1ns",
		// No router-side caches: every query must cross the wire, or the
		// hedge/trace assertions would starve after the first round.
		"-hot-cache", "0",
		"-cache", "0",
	)

	// Wait for the routed graph to assemble (workers build shards, the
	// router fetches boundary rows and builds its overlay).
	deadline := time.Now().Add(2 * time.Minute)
	for {
		resp, err := http.Get(router + "/graphs/" + man.Name + "/ready")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("routed graph never became ready")
		}
		time.Sleep(100 * time.Millisecond)
	}

	// Fire traced queries with deterministic trace IDs and distinct
	// sources (no cache can answer them). Collect the IDs for the trace
	// assertions below.
	client := &http.Client{Timeout: 30 * time.Second}
	tpFor := func(i int) (id, header string) {
		id = fmt.Sprintf("%032x", 0xace0+i)
		return id, fmt.Sprintf("00-%s-%016x-01", id, 0xbeef+i)
	}
	const rounds = 24
	traceIDs := make([]string, 0, rounds)
	for i := 0; i < rounds; i++ {
		id, header := tpFor(i)
		req, err := http.NewRequest(http.MethodGet,
			fmt.Sprintf("%s/graphs/%s/dist?source=%d", router, man.Name, i*5), nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("traceparent", header)
		resp, err := client.Do(req)
		if err != nil {
			t.Fatalf("traced dist %d: %v", i, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("traced dist %d: status %d", i, resp.StatusCode)
		}
		traceIDs = append(traceIDs, id)
	}

	// ---- /metrics exposition on every process ----

	routerFams := scrapeMetrics(t, router)
	for _, fam := range []string{
		"spo_registry_queries_total", "spo_http_requests_total",
		"spo_spans_started_total", "spo_goroutines",
		"spo_router_hedges_total", "spo_endpoint_requests_total",
	} {
		if routerFams[fam] == nil {
			t.Errorf("router /metrics missing family %s", fam)
		}
	}
	for _, w := range []string{w0, w1} {
		fams := scrapeMetrics(t, w)
		for _, fam := range []string{
			"spo_registry_queries_total", "spo_http_requests_total",
			"spo_spans_started_total", "spo_graph_queries_total",
			"spo_admission_limit_units", "spo_admission_rejected_total",
			"spo_admission_drain_rate_units_per_second",
		} {
			if fams[fam] == nil {
				t.Errorf("worker %s /metrics missing family %s", w, fam)
			}
		}
		if lim, ok := fams["spo_admission_limit_units"].FindSample("spo_admission_limit_units"); !ok || lim != 64 {
			t.Errorf("worker %s spo_admission_limit_units = %v, want 64", w, lim)
		}
	}

	// ---- /stats and /metrics agree (same snapshots, no drift) ----

	var consistent bool
	for tries := 0; tries < 50 && !consistent; tries++ {
		var st struct {
			Queries   int64 `json:"queries"`
			Admission struct {
				Limit int64 `json:"limit"`
			} `json:"admission"`
		}
		getJSON(t, w0+"/stats", &st)
		fams := scrapeMetrics(t, w0)
		if st.Admission.Limit != 64 {
			t.Fatalf("worker /stats admission limit = %d, want 64", st.Admission.Limit)
		}
		if v, ok := fams["spo_registry_queries_total"].FindSample("spo_registry_queries_total"); ok && int64(v) == st.Queries {
			consistent = true
		}
		if !consistent {
			time.Sleep(100 * time.Millisecond)
		}
	}
	if !consistent {
		t.Error("worker /stats and /metrics never agreed on the registry query counter")
	}

	// ---- cross-process traces ----

	// The worker records its half of a router-issued trace: spans with
	// service "shardserve" under the trace ID we minted client-side.
	var workerSpans []obs.SpanData
	for _, id := range traceIDs {
		for _, w := range []string{w0, w1} {
			var tj traceJSON
			getJSON(t, w+"/trace/"+id+"?local=1", &tj)
			workerSpans = append(workerSpans, tj.Spans...)
		}
		if len(workerSpans) > 0 {
			break
		}
	}
	if len(workerSpans) == 0 {
		t.Fatal("no worker-side spans recorded for any router-issued trace")
	}
	for _, sd := range workerSpans {
		if sd.Service != "shardserve" {
			t.Fatalf("worker span service = %q, want shardserve", sd.Service)
		}
	}

	// The router's merged /trace/{id} holds both services with parent
	// linkage: each worker root's parent is a router-side attempt span.
	var linked, sawHedgeWinner, sawCancelled bool
	for _, id := range traceIDs {
		var tj traceJSON
		getJSON(t, router+"/trace/"+id, &tj)
		routerSpanIDs := make(map[string]bool)
		for _, sd := range tj.Spans {
			if sd.Service == "serve" {
				routerSpanIDs[sd.SpanID] = true
			}
			if sd.Service == "serve" && strings.HasPrefix(sd.Name, "remote ") {
				if sd.Outcome == "ok" && sd.Hedge {
					sawHedgeWinner = true
				}
				if sd.Outcome == "cancelled" {
					sawCancelled = true
				}
			}
		}
		for _, sd := range tj.Spans {
			if sd.Service == "shardserve" && routerSpanIDs[sd.ParentID] {
				linked = true
			}
		}
		if linked && sawHedgeWinner && sawCancelled {
			break
		}
	}
	if !linked {
		t.Error("no merged trace linked a shardserve span to a serve-side parent span")
	}

	// Hedged winner + cancelled loser: with a 1ns hedge both replicas
	// race on every leg, so across the query rounds some trace must show
	// the hedge resolving. Cancelled-loser spans land asynchronously;
	// retry with fresh queries until the deadline.
	hedgeDeadline := time.Now().Add(30 * time.Second)
	for n := rounds; !(sawHedgeWinner && sawCancelled); n++ {
		if time.Now().After(hedgeDeadline) {
			t.Fatalf("no hedged winner (%v) + cancelled loser (%v) observed in any trace",
				sawHedgeWinner, sawCancelled)
		}
		id, header := tpFor(n)
		// Sources 121..195 are untouched by the initial rounds (0..115 in
		// steps of 5), so each retry forces fresh remote legs instead of a
		// router-cache hit.
		req, _ := http.NewRequest(http.MethodGet,
			fmt.Sprintf("%s/graphs/%s/dist?source=%d", router, man.Name, 121+(n-rounds)%75), nil)
		req.Header.Set("traceparent", header)
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		time.Sleep(50 * time.Millisecond) // let the loser's span record
		var tj traceJSON
		getJSON(t, router+"/trace/"+id, &tj)
		for _, sd := range tj.Spans {
			if sd.Service != "serve" || !strings.HasPrefix(sd.Name, "remote ") {
				continue
			}
			if sd.Outcome == "ok" && sd.Hedge {
				sawHedgeWinner = true
			}
			if sd.Outcome == "cancelled" {
				sawCancelled = true
			}
		}
	}
}
