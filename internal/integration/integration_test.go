// Package integration exercises the full pipeline end to end: every
// generator family × ε × solver mode, with ground-truth validation of
// soundness, stretch, trees, determinism, and serialization. These are the
// "would a downstream user trust it" tests; unit tests live next to each
// package.
package integration

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/adj"
	"repro/internal/bmf"
	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/graph"
	"repro/internal/hopset"
	"repro/internal/pathrep"
	"repro/internal/testkit"
)

// workloads is the cross-family integration mix, drawn from the shared
// deterministic testkit so every suite exercises the same instances.
func workloads(seed int64) []testkit.NamedGraph {
	return testkit.Mix(120, seed)
}

// validateSolver checks soundness and stretch of ApproxDistances against
// Dijkstra from several sources, in original units.
func validateSolver(t *testing.T, g *graph.Graph, s *core.Solver, eps float64) {
	t.Helper()
	for _, src := range []int32{0, int32(g.N / 2), int32(g.N - 1)} {
		got, err := s.ApproxDistances(src)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := exact.DijkstraGraph(g, src)
		for v := 0; v < g.N; v++ {
			switch {
			case math.IsInf(want[v], 1):
				if !math.IsInf(got[v], 1) {
					t.Fatalf("src %d v %d: reachable only via hopset", src, v)
				}
			case got[v] < want[v]-1e-6*want[v]-1e-9:
				t.Fatalf("src %d v %d: %v undershoots exact %v", src, v, got[v], want[v])
			case got[v] > (1+eps)*want[v]+1e-6:
				t.Fatalf("src %d v %d: %v overshoots (1+%v)·%v", src, v, got[v], eps, want[v])
			}
		}
	}
}

func TestMatrixDefaultMode(t *testing.T) {
	for _, w := range workloads(3) {
		for _, eps := range []float64{0.5, 0.25} {
			w, eps := w, eps
			t.Run(fmt.Sprintf("%s/eps=%v", w.Name, eps), func(t *testing.T) {
				s, err := core.New(w.G, core.Options{Epsilon: eps})
				if err != nil {
					t.Fatal(err)
				}
				validateSolver(t, w.G, s, eps)
			})
		}
	}
}

func TestMatrixPathReporting(t *testing.T) {
	for _, w := range workloads(5) {
		if w.Wide {
			continue // covered by the KS matrix below
		}
		w := w
		t.Run(w.Name, func(t *testing.T) {
			eps := 0.3
			s, err := core.New(w.G, core.Options{Epsilon: eps, PathReporting: true})
			if err != nil {
				t.Fatal(err)
			}
			spt, err := s.SPT(int32(w.G.N / 3))
			if err != nil {
				t.Fatal(err)
			}
			if err := spt.Validate(s.Hopset()); err != nil {
				t.Fatal(err)
			}
			want, _ := exact.DijkstraGraph(w.G, int32(w.G.N/3))
			for v := 0; v < w.G.N; v++ {
				if math.IsInf(want[v], 1) {
					continue
				}
				if spt.Dist[v] > (1+eps)*want[v]+1e-6 || spt.Dist[v] < want[v]-1e-6 {
					t.Fatalf("v %d: tree %v vs exact %v", v, spt.Dist[v], want[v])
				}
			}
		})
	}
}

func TestMatrixWeightReduction(t *testing.T) {
	for _, w := range workloads(7) {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			eps := 0.5
			s, err := core.New(w.G, core.Options{Epsilon: eps, WeightReduction: true})
			if err != nil {
				t.Fatal(err)
			}
			validateSolver(t, w.G, s, eps)
		})
	}
}

func TestMatrixStrictWeights(t *testing.T) {
	// Strict weights keep soundness on every workload (stretch at fixed
	// budgets is looser by design; only the lower bound is asserted).
	for _, w := range workloads(9) {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			s, err := core.New(w.G, core.Options{Epsilon: 0.25, StrictWeights: true})
			if err != nil {
				t.Fatal(err)
			}
			got, err := s.ApproxDistances(0)
			if err != nil {
				t.Fatal(err)
			}
			want, _ := exact.DijkstraGraph(w.G, 0)
			for v := 0; v < w.G.N; v++ {
				if !math.IsInf(want[v], 1) && got[v] < want[v]-1e-6 {
					t.Fatalf("v %d: %v undershoots %v", v, got[v], want[v])
				}
			}
		})
	}
}

// TestQuickPipelineProperty drives the full default pipeline on random
// small graphs via testing/quick: soundness and stretch must hold for every
// generated instance.
func TestQuickPipelineProperty(t *testing.T) {
	prop := func(seed int64, nRaw, mRaw uint8, epsRaw uint8) bool {
		n := 16 + int(nRaw%64)
		m := n - 1 + int(mRaw)
		eps := 0.15 + float64(epsRaw%4)*0.1
		g := graph.Gnm(n, m, graph.UniformWeights(1, 9), seed)
		s, err := core.New(g, core.Options{Epsilon: eps})
		if err != nil {
			return false
		}
		src := int32(int(seed%int64(n)+int64(n)) % n)
		got, err := s.ApproxDistances(src)
		if err != nil {
			return false
		}
		want, _ := exact.DijkstraGraph(g, src)
		for v := 0; v < n; v++ {
			if got[v] < want[v]-1e-9 || got[v] > (1+eps)*want[v]+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSoundnessOfEveryHopsetEdge property-tests the no-shortcut
// invariant (Lemmas 2.3/2.9) on random instances and parameterizations.
func TestQuickSoundnessOfEveryHopsetEdge(t *testing.T) {
	prop := func(seed int64, kRaw, rRaw uint8) bool {
		kappa := 2 + int(kRaw%3)
		rho := 0.2 + float64(rRaw%3)*0.1
		g := graph.Gnm(48, 140, graph.UniformWeights(1, 7), seed)
		h, err := hopset.Build(g, hopset.Params{Epsilon: 0.3, Kappa: kappa, Rho: rho}, nil)
		if err != nil {
			return false
		}
		byU := map[int32][]hopset.Edge{}
		for _, e := range h.Edges {
			byU[e.U] = append(byU[e.U], e)
		}
		for u, es := range byU {
			d, _ := exact.DijkstraGraph(h.G, u)
			for _, e := range es {
				if e.W < d[e.V]-1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestSerializationPipeline round-trips a hopset through Encode/Decode and
// verifies queries are identical.
func TestSerializationPipeline(t *testing.T) {
	g := graph.Gnm(90, 270, graph.UniformWeights(1, 5), 11)
	h, err := hopset.Build(g, hopset.Params{Epsilon: 0.25, RecordPaths: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := hopset.Encode(&buf, h); err != nil {
		t.Fatal(err)
	}
	h2, err := hopset.Decode(&buf, h.G)
	if err != nil {
		t.Fatal(err)
	}
	budget := h.Sched.HopBudget() * (h.Sched.Ell + 2)
	a1 := adj.Build(h.G, h.Extras())
	a2 := adj.Build(h2.G, h2.Extras())
	r1 := bmf.Run(a1, []int32{0}, budget, nil)
	r2 := bmf.Run(a2, []int32{0}, budget, nil)
	for v := 0; v < g.N; v++ {
		if r1.Dist[v] != r2.Dist[v] {
			t.Fatalf("v %d: %v vs %v after round trip", v, r1.Dist[v], r2.Dist[v])
		}
	}
	// SPT from the decoded hopset too.
	spt, err := pathrep.BuildSPT(h2, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := spt.Validate(h2); err != nil {
		t.Fatal(err)
	}
}

// TestFailureInjectionCheckCatchesCorruption corrupts built hopsets in
// specific ways and confirms Check rejects each.
func TestFailureInjectionCheckCatchesCorruption(t *testing.T) {
	fresh := func() *hopset.Hopset {
		g := graph.Gnm(70, 210, graph.UniformWeights(1, 4), 13)
		h, err := hopset.Build(g, hopset.Params{Epsilon: 0.25, RecordPaths: true}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if h.Size() == 0 {
			t.Skip("empty hopset")
		}
		return h
	}
	t.Run("endpoint out of range", func(t *testing.T) {
		h := fresh()
		h.Edges[0].U = int32(h.G.N) + 5
		if h.Check() == nil {
			t.Fatal("not caught")
		}
	})
	t.Run("non-positive weight", func(t *testing.T) {
		h := fresh()
		h.Edges[0].W = 0
		if h.Check() == nil {
			t.Fatal("not caught")
		}
	})
	t.Run("path lighter than claimed but broken endpoint", func(t *testing.T) {
		h := fresh()
		h.Edges[0].V++ // path no longer ends at V
		if h.Check() == nil {
			t.Fatal("not caught")
		}
	})
	t.Run("path weight above edge weight", func(t *testing.T) {
		h := fresh()
		h.Edges[0].W /= 16
		if h.Check() == nil {
			t.Fatal("not caught")
		}
	})
	t.Run("scale ordering violated", func(t *testing.T) {
		h := fresh()
		// Find an edge whose path uses a hopset edge and claim it is from
		// a lower scale than its constituent.
		for i, p := range h.Paths {
			usesHopset := false
			for _, s := range p {
				if s.HEdge >= 0 {
					usesHopset = true
				}
			}
			if usesHopset {
				h.Edges[i].Scale = 0
				if h.Check() == nil {
					t.Fatal("not caught")
				}
				return
			}
		}
		t.Skip("no multi-scale paths in this instance")
	})
}

// TestRandomSourcesAgainstDijkstra samples many (graph, source) pairs.
func TestRandomSourcesAgainstDijkstra(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	g := graph.Gnm(200, 800, graph.UniformWeights(1, 10), 17)
	s, err := core.New(g, core.Options{Epsilon: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 12; trial++ {
		src := int32(r.Intn(g.N))
		got, err := s.ApproxDistances(src)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := exact.DijkstraGraph(g, src)
		for v := 0; v < g.N; v++ {
			if got[v] < want[v]-1e-6 || got[v] > 1.25*want[v]+1e-6 {
				t.Fatalf("trial %d src %d v %d: %v vs %v", trial, src, v, got[v], want[v])
			}
		}
	}
}
