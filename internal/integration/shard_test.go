package integration

import (
	"context"
	"fmt"
	"math"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/exact"
	"repro/internal/par"
	"repro/internal/partition"
	"repro/internal/testkit"
	"repro/oracle"
	"repro/shard"
)

const shardEps = 0.3

// renderSharded builds a sharded oracle over c.g at shard count k and
// serializes the partition plus the routed answers (dist vectors in hex
// float, stitched paths) — the byte-level determinism surface.
func renderSharded(t *testing.T, c goldenCase, k int) string {
	t.Helper()
	res := partition.Partition(c.g, k)
	o, err := shard.Build(context.Background(), c.g, shard.Config{
		K: k, EpsilonLocal: shardEps, EpsilonOverlay: shardEps, PathReporting: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "shards %s k=%d boundary=%d cut=%d rounds=%d\n",
		c.name, res.K, len(res.Boundary), len(res.CutEdges), res.Rounds)
	for v, p := range res.Part {
		fmt.Fprintf(&b, "p %d %d %d\n", v, p, res.LocalID[v])
	}
	for _, src := range c.sources {
		d, err := o.Dist(src)
		if err != nil {
			t.Fatal(err)
		}
		for v := range d {
			fmt.Fprintf(&b, "d %d %d %x\n", src, v, d[v])
		}
		path, length, err := o.Path(src, int32(c.g.N-1))
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&b, "path %d %v %x\n", src, path, length)
	}
	return b.String()
}

// TestShardedDeterminism is the sharded half of the golden determinism
// claim: for every golden-corpus instance and K ∈ {1, 2, 4}, the
// partitioner output and every routed answer (dist, path) are
// byte-identical across 1, 2 and 8 workers.
func TestShardedDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("sharded determinism matrix skipped in -short mode")
	}
	oldWorkers := par.Workers()
	defer par.SetWorkers(oldWorkers)
	for _, c := range goldenCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			for _, k := range []int{1, 2, 4} {
				par.SetWorkers(1)
				want := renderSharded(t, c, k)
				for _, w := range []int{2, 8} {
					par.SetWorkers(w)
					if got := renderSharded(t, c, k); got != want {
						t.Fatalf("k=%d workers=%d: output differs from workers=1", k, w)
					}
				}
				par.SetWorkers(oldWorkers)
			}
		})
	}
}

// TestShardedK1MatchesMonolithic pins the K = 1 contract on the golden
// corpus: a single-shard oracle must answer bit-identically to the
// monolithic engine built from the same graph with the same parameters.
func TestShardedK1MatchesMonolithic(t *testing.T) {
	for _, c := range goldenCases() {
		mono, err := oracle.New(c.g, oracle.WithEpsilon(shardEps), oracle.WithPathReporting())
		if err != nil {
			t.Fatal(err)
		}
		o, err := shard.Build(context.Background(), c.g, shard.Config{
			K: 1, EpsilonLocal: shardEps, PathReporting: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, src := range c.sources {
			want, err := mono.Dist(src)
			if err != nil {
				t.Fatal(err)
			}
			got, err := o.Dist(src)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s src %d: K=1 sharded dist differs from monolithic", c.name, src)
			}
			wp, wl, err := mono.Path(src, int32(c.g.N-1))
			if err != nil {
				t.Fatal(err)
			}
			gp, gl, err := o.Path(src, int32(c.g.N-1))
			if err != nil {
				t.Fatal(err)
			}
			if wl != gl || !reflect.DeepEqual(gp, wp) {
				t.Fatalf("%s src %d: K=1 sharded path differs from monolithic", c.name, src)
			}
		}
	}
}

// TestShardedStretchBound asserts the composed end-to-end guarantee
// (1+ε_local)(1+ε_overlay)(1+ε_local) against exact Dijkstra on the
// shared testkit sharding workload.
func TestShardedStretchBound(t *testing.T) {
	bound := (1 + shardEps) * (1 + shardEps) * (1 + shardEps)
	for _, pc := range testkit.Partitioned(225, 7) {
		o, err := shard.Build(context.Background(), pc.G, shard.Config{
			K: pc.K, EpsilonLocal: shardEps, EpsilonOverlay: shardEps,
		})
		if err != nil {
			t.Fatal(err)
		}
		st := o.Stats()
		if st.Sharded == nil || math.Abs(st.Sharded.StretchBound-bound) > 1e-12 {
			t.Fatalf("%s: surfaced stretch bound %+v, want %v", pc.Name, st.Sharded, bound)
		}
		for _, src := range []int32{0, int32(pc.G.N / 3)} {
			got, err := o.Dist(src)
			if err != nil {
				t.Fatal(err)
			}
			want, _ := exact.DijkstraGraph(pc.G, src)
			worst := 1.0
			for v := 0; v < pc.G.N; v++ {
				if math.IsInf(want[v], 1) {
					if !math.IsInf(got[v], 1) {
						t.Fatalf("%s src %d v %d: phantom reachability", pc.Name, src, v)
					}
					continue
				}
				if got[v] < want[v]-1e-9*math.Max(1, want[v]) {
					t.Fatalf("%s src %d v %d: undershoot %v < %v", pc.Name, src, v, got[v], want[v])
				}
				if want[v] > 0 {
					if r := got[v] / want[v]; r > worst {
						worst = r
					}
				}
			}
			if worst > bound+1e-9 {
				t.Fatalf("%s src %d: observed stretch %v exceeds composed bound %v", pc.Name, src, worst, bound)
			}
		}
	}
}

// TestSoakShardedRegistry serves a sharded graph through the registry
// under a memory budget smaller than the monolithic engine's footprint,
// with a second graph forcing eviction pressure and a reloader hot-
// swapping versions, while queriers verify every answer bit-exactly —
// the "bigger than one engine" serving claim, end to end. Skipped under
// -short.
func TestSoakShardedRegistry(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	const n = 900
	g := testkit.Grid(n, 13)
	cfg := shard.Config{K: 2, EpsilonLocal: 0.3, EpsilonOverlay: 0.3}

	mono, err := oracle.New(g, oracle.WithEpsilon(0.3))
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := shard.Build(context.Background(), g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	monoBytes, shardBytes := mono.MemoryBytes(), sharded.MemoryBytes()
	if shardBytes >= monoBytes {
		t.Fatalf("sharded footprint %d is not below the monolithic %d; the budget premise fails",
			shardBytes, monoBytes)
	}
	refSharded, err := sharded.Dist(0)
	if err != nil {
		t.Fatal(err)
	}

	side := testkit.Gnm(200, 4)
	sideEng, err := oracle.New(side, oracle.WithEpsilon(0.3))
	if err != nil {
		t.Fatal(err)
	}
	refSide, err := sideEng.Dist(0)
	if err != nil {
		t.Fatal(err)
	}

	// The budget holds the sharded graph but not both graphs — and is
	// strictly below what the monolithic engine would need — so the LRU
	// loser cycles through eviction and demand rebuild.
	budget := shardBytes + sideEng.MemoryBytes()/2
	if budget >= monoBytes {
		budget = monoBytes - 1
	}
	r := oracle.NewRegistry(oracle.RegistryConfig{MemoryBudget: budget})
	defer r.Close()
	if err := r.Add("grid", shard.Source(g, cfg)); err != nil {
		t.Fatal(err)
	}
	if err := r.Add("side", oracle.GraphSource(side, oracle.WithEpsilon(0.3))); err != nil {
		t.Fatal(err)
	}
	refs := map[string][]float64{"grid": refSharded, "side": refSide}
	for name := range refs {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		if err := r.WaitReady(ctx, name); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		cancel()
	}

	var wrong, failed atomic.Int64
	names := []string{"grid", "side"}
	var wg sync.WaitGroup
	for q := 0; q < 4; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			for i := 0; i < 16; i++ {
				name := names[(q+i)%len(names)]
				d, err := r.Dist(name, 0)
				if err != nil {
					// An eviction is a legal miss; the acquire re-enqueued
					// the rebuild. Wait and retry — only a graph that never
					// comes back counts as a failed query.
					ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
					werr := r.WaitReady(ctx, name)
					cancel()
					if werr != nil {
						failed.Add(1)
						return
					}
					if d, err = r.Dist(name, 0); err != nil {
						continue
					}
				}
				if !reflect.DeepEqual(d, refs[name]) {
					wrong.Add(1)
				}
			}
		}(q)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 6; i++ {
			if err := r.Reload(names[i%len(names)]); err != nil {
				failed.Add(1)
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	}()
	wg.Wait()

	if f := failed.Load(); f != 0 {
		t.Fatalf("%d queries failed outright", f)
	}
	if w := wrong.Load(); w != 0 {
		t.Fatalf("%d answers deviated from the deterministic reference", w)
	}
	st := r.Stats()
	if st.Reloads == 0 || st.BuildsDone < 2 {
		t.Fatalf("soak did not exercise the lifecycle: %+v", st)
	}
	t.Logf("sharded soak: budget=%d mono=%d sharded=%d stats=%+v",
		budget, monoBytes, shardBytes, st)
}
