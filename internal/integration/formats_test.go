package integration

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/graphio"
	"repro/internal/graph"
	"repro/internal/testkit"
)

// formatCodecs enumerates every graphio format as (encode, decode) pairs
// usable in-memory.
func formatCodecs() map[graphio.Format]func(g *graph.Graph) (*graph.Graph, error) {
	roundTrip := func(f graphio.Format) func(g *graph.Graph) (*graph.Graph, error) {
		return func(g *graph.Graph) (*graph.Graph, error) {
			var buf bytes.Buffer
			var err error
			switch f {
			case graphio.FormatLegacy:
				err = graphio.EncodeLegacy(&buf, g)
			default:
				err = graphio.Encode(&buf, g, f)
			}
			if err != nil {
				return nil, err
			}
			out, _, err := graphio.DecodeBytes(buf.Bytes(), graphio.WithFormat(f))
			return out, err
		}
	}
	return map[graphio.Format]func(g *graph.Graph) (*graph.Graph, error){
		graphio.FormatLegacy:   roundTrip(graphio.FormatLegacy),
		graphio.FormatDIMACS:   roundTrip(graphio.FormatDIMACS),
		graphio.FormatEdgeList: roundTrip(graphio.FormatEdgeList),
		graphio.FormatMETIS:    roundTrip(graphio.FormatMETIS),
		graphio.FormatCSRG:     roundTrip(graphio.FormatCSRG),
	}
}

// TestFormatsRoundTripFamilies is the cross-family property test: every
// testkit workload graph survives every format bit-exactly (CSR arrays
// and canonical edge list), so nothing downstream — hopset build, relax
// engine, golden corpus — can tell how a graph entered the system.
func TestFormatsRoundTripFamilies(t *testing.T) {
	codecs := formatCodecs()
	for _, ng := range testkit.Mix(140, 9) {
		for f, rt := range codecs {
			got, err := rt(ng.G)
			if err != nil {
				t.Fatalf("%s via %s: %v", ng.Name, f, err)
			}
			if got.N != ng.G.N || !reflect.DeepEqual(got.Edges, ng.G.Edges) ||
				!reflect.DeepEqual(got.Off, ng.G.Off) || !reflect.DeepEqual(got.Nbr, ng.G.Nbr) ||
				!reflect.DeepEqual(got.Wt, ng.G.Wt) || !reflect.DeepEqual(got.EID, ng.G.EID) {
				t.Fatalf("%s via %s: graph differs after round trip", ng.Name, f)
			}
		}
	}
}

// TestGoldenCorpusThroughFormats pushes every golden-corpus graph through
// text → .csrg → engine and demands the committed golden (dist, parent,
// arc) vectors verbatim: ingestion must not perturb a single bit of the
// hopset-accelerated exploration.
func TestGoldenCorpusThroughFormats(t *testing.T) {
	for _, c := range goldenCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			// DIMACS text → .csrg → graph, the full ingestion pipeline.
			var text bytes.Buffer
			if err := graphio.Encode(&text, c.g, graphio.FormatDIMACS); err != nil {
				t.Fatal(err)
			}
			parsed, _, err := graphio.DecodeBytes(text.Bytes(), graphio.WithFormat(graphio.FormatDIMACS))
			if err != nil {
				t.Fatal(err)
			}
			dir := t.TempDir()
			path := filepath.Join(dir, c.name+".csrg")
			if err := graphio.EncodeFile(path, parsed); err != nil {
				t.Fatal(err)
			}
			m, err := graphio.OpenCSRG(path)
			if err != nil {
				t.Fatal(err)
			}
			defer m.Close()

			got := renderGolden(t, goldenCase{name: c.name, g: m.Graph(), sources: c.sources})
			fixed, err := os.ReadFile(filepath.Join("testdata", "golden", c.name+".golden"))
			if err != nil {
				t.Fatalf("reading golden file: %v", err)
			}
			if string(fixed) != got {
				t.Fatalf("%s: distances changed after text → .csrg ingestion", c.name)
			}
		})
	}
}

// TestSnapshotStillLoadsLegacySection guards the snapshot container's
// byte format across the codec move into graphio: a snapshot written now
// must embed the exact legacy graph section older binaries wrote.
func TestSnapshotStillLoadsLegacySection(t *testing.T) {
	g := testkit.Gnm(80, 4)
	var legacy bytes.Buffer
	if err := graphio.EncodeLegacy(&legacy, g); err != nil {
		t.Fatal(err)
	}
	back, err := graphio.DecodeLegacy(io.Reader(bytes.NewReader(legacy.Bytes())))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Edges, g.Edges) {
		t.Fatal("legacy codec no longer round-trips")
	}
}
