package integration

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/adj"
	"repro/internal/graph"
	"repro/internal/hopset"
	"repro/internal/par"
	"repro/internal/relax"
	"repro/internal/testkit"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden determinism corpus under testdata/golden")

// goldenCase is one corpus entry: a fixed (family, n, seed) instance and a
// fixed source set. The expectation file pins the full (dist, parent, arc)
// labeling of the hopset-accelerated exploration, with distances in hex
// float so the check is bit-exact.
type goldenCase struct {
	name    string
	g       *graph.Graph
	sources []int32
}

func goldenCases() []goldenCase {
	return []goldenCase{
		{"gnm-96-s1", testkit.Gnm(96, 1), []int32{0}},
		{"grid-100-s2", testkit.Grid(100, 2), []int32{0}},
		{"social-90-s3", testkit.Social(90, 3), []int32{5}},
		{"path-64", testkit.Path(64), []int32{0}},
		{"sparse-80-s4", testkit.Sparse(80, 4), []int32{0, 79}},
		{"wide-80-s5", testkit.Wide(80, 5), []int32{0}},
	}
}

// renderGolden builds the hopset for c.g, runs the engine exploration, and
// serializes the full labeling. Everything on this path is required to be
// deterministic in the worker count; any nondeterminism shows up as a
// byte-level diff against the committed file.
func renderGolden(t *testing.T, c goldenCase) string {
	t.Helper()
	h, err := hopset.Build(c.g, hopset.Params{Epsilon: 0.3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	a := adj.Build(h.G, h.Extras())
	budget := h.Sched.HopBudget() * (h.Sched.Ell + 2)
	res := relax.Run(a, c.sources, budget, relax.Options{})

	var b strings.Builder
	fmt.Fprintf(&b, "golden 1 %s n=%d m=%d hopset=%d sources=%v rounds=%d converged=%v\n",
		c.name, h.G.N, h.G.M(), h.Size(), c.sources, res.Rounds, res.Converged)
	for v := 0; v < h.G.N; v++ {
		// %x prints the float bit-exactly; parent/arc pin the forest.
		fmt.Fprintf(&b, "%d %x %d %d\n", v, res.Dist[v], res.Parent[v], res.ParentArc[v])
	}
	return b.String()
}

// TestGoldenCorpus asserts two things per corpus entry:
//
//  1. worker-count independence: rendering with 1, 2 and 8 workers yields
//     byte-identical output (the PRAM determinism claim, end to end);
//  2. history stability: the output matches the committed golden file, so
//     any change to tie-breaking, scheduling or the construction that
//     silently alters results fails CI. Regenerate deliberately with
//     `go test ./internal/integration -run TestGoldenCorpus -update`.
func TestGoldenCorpus(t *testing.T) {
	oldWorkers := par.Workers()
	defer par.SetWorkers(oldWorkers)
	for _, c := range goldenCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			par.SetWorkers(1)
			want := renderGolden(t, c)
			for _, w := range []int{2, 8} {
				par.SetWorkers(w)
				if got := renderGolden(t, c); got != want {
					t.Fatalf("workers=%d: output differs from workers=1", w)
				}
			}
			par.SetWorkers(oldWorkers)

			path := filepath.Join("testdata", "golden", c.name+".golden")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(want), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			fixed, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("reading golden file (run with -update to create): %v", err)
			}
			if string(fixed) != want {
				t.Fatalf("%s: output differs from committed golden file; if the change is intentional, regenerate with -update", c.name)
			}
		})
	}
}
