package integration

// Continuous-correctness-auditing integration suite: the golden corpus
// served at 100% shadow-audit sampling must produce zero violations on
// every deployment shape (monolithic engine, in-process K=4 sharded
// oracle, two-process shardserve routing), and an injected overlay fault
// must be caught as a violation counter plus a structured event whose
// trace ID resolves at /trace/{id}.

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/graphio"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/testkit"
	"repro/oracle"
	"repro/oracle/audit"
	"repro/shard"
)

// auditLogBuf is a mutex-guarded sink for the auditor's structured log.
type auditLogBuf struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *auditLogBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *auditLogBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// settleAudits waits until every sampled answer has been resolved and the
// ring is empty.
func settleAudits(t *testing.T, a *audit.Auditor) audit.Stats {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st := a.Stats()
		if st.Pending == 0 && st.Audited+st.Dropped+st.Unsupported+st.Errors >= st.Sampled {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("audits did not settle: %+v", a.Stats())
	return audit.Stats{}
}

// requireClean asserts a fully-audited, violation-free run.
func requireClean(t *testing.T, st audit.Stats, what string) {
	t.Helper()
	if st.Audited == 0 {
		t.Fatalf("%s: nothing audited: %+v", what, st)
	}
	if st.Violations != 0 {
		t.Fatalf("%s: %d violations on a clean corpus: %+v", what, st.Violations, st)
	}
	if st.Unsupported != 0 || st.Errors != 0 {
		t.Fatalf("%s: audit errors: %+v", what, st)
	}
}

// driveAudited runs the corpus queries for one registered graph through
// the registry's audited entry points.
func driveAudited(t *testing.T, reg *oracle.Registry, name string, n int, sources []int32) {
	t.Helper()
	for _, src := range sources {
		if _, err := reg.Dist(name, src); err != nil {
			t.Fatalf("%s: dist(%d): %v", name, src, err)
		}
		if _, _, err := reg.Path(name, src, int32(n-1)); err != nil {
			t.Fatalf("%s: path(%d,%d): %v", name, src, n-1, err)
		}
	}
	// A few extra dist queries rotate the audited target across the row.
	for i := 0; i < 8; i++ {
		if _, err := reg.Dist(name, sources[0]); err != nil {
			t.Fatal(err)
		}
	}
}

// TestAuditGoldenCorpusMonolithic serves every golden-corpus instance
// from monolithic engines at 100% sampling: zero violations.
func TestAuditGoldenCorpusMonolithic(t *testing.T) {
	a := audit.New(audit.Config{
		SampleRate: 1, Workers: 2,
		Logger: slog.New(slog.NewJSONHandler(&auditLogBuf{}, nil)),
	})
	defer a.Close()
	reg := oracle.NewRegistry(oracle.RegistryConfig{Audit: a})
	defer reg.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	for _, c := range goldenCases() {
		if err := reg.Add(c.name, oracle.GraphSource(c.g, oracle.WithPathReporting())); err != nil {
			t.Fatal(err)
		}
		if err := reg.WaitReady(ctx, c.name); err != nil {
			t.Fatal(err)
		}
		driveAudited(t, reg, c.name, c.g.N, c.sources)
	}
	requireClean(t, settleAudits(t, a), "monolithic corpus")
}

// TestAuditGoldenCorpusSharded serves each golden-corpus instance as an
// in-process K=4 sharded oracle at 100% sampling: the audit reconstructs
// the logical graph from shard subgraphs plus cut edges, and the composed
// (1+εl)(1+εo)(1+εl) bound must hold for every sampled answer.
func TestAuditGoldenCorpusSharded(t *testing.T) {
	a := audit.New(audit.Config{
		SampleRate: 1, Workers: 2,
		Logger: slog.New(slog.NewJSONHandler(&auditLogBuf{}, nil)),
	})
	defer a.Close()
	reg := oracle.NewRegistry(oracle.RegistryConfig{Audit: a})
	defer reg.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	for _, c := range goldenCases() {
		dir := t.TempDir()
		manPath, err := graphio.WriteShards(dir, c.name, partition.Partition(c.g, 4))
		if err != nil {
			t.Fatal(err)
		}
		cfg := shard.Config{EpsilonLocal: shardEps, PathReporting: true}
		src := func(manPath string) oracle.EngineSource {
			return func(ctx context.Context, opts ...oracle.Option) (oracle.Backend, error) {
				return shard.Open(ctx, manPath, cfg)
			}
		}(manPath)
		if err := reg.Add(c.name, src); err != nil {
			t.Fatal(err)
		}
		if err := reg.WaitReady(ctx, c.name); err != nil {
			t.Fatal(err)
		}
		driveAudited(t, reg, c.name, c.g.N, c.sources)
	}
	requireClean(t, settleAudits(t, a), "sharded corpus")
}

// TestAuditTwoProcessRouting serves one golden-corpus instance through a
// router scatter-gathering over two real shardserve worker processes,
// with the router registered in an audited registry at 100% sampling.
// The audit reconstructs the logical graph from the manifest's shard
// payloads (RouterConfig.ManifestDir) — the answers cross two process
// boundaries and still land inside the composed bound.
func TestAuditTwoProcessRouting(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process suite skipped in -short mode")
	}
	bin := buildShardserve(t)
	c := goldenCases()[0]
	dir := t.TempDir()
	manPath, err := graphio.WriteShards(dir, c.name, partition.Partition(c.g, 2))
	if err != nil {
		t.Fatal(err)
	}
	man, err := graphio.LoadShardManifest(manPath)
	if err != nil {
		t.Fatal(err)
	}
	w0 := startWorkerProc(t, bin, manPath)
	w1 := startWorkerProc(t, bin, manPath)

	a := audit.New(audit.Config{
		SampleRate: 1, Workers: 2,
		Logger: slog.New(slog.NewJSONHandler(&auditLogBuf{}, nil)),
	})
	defer a.Close()
	reg := oracle.NewRegistry(oracle.RegistryConfig{Audit: a})
	defer reg.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	cfg := shard.RouterConfig{
		Config:      shard.Config{EpsilonLocal: shardEps, PathReporting: true},
		ManifestDir: filepath.Dir(manPath),
	}
	router, err := shard.NewRouter(ctx, man,
		shard.UniformPlacement(man.Name, man.K, []string{w0.url, w1.url}), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.AddReady(c.name, router); err != nil {
		t.Fatal(err)
	}
	if err := reg.WaitReady(ctx, c.name); err != nil {
		t.Fatal(err)
	}
	driveAudited(t, reg, c.name, c.g.N, c.sources)
	requireClean(t, settleAudits(t, a), "two-process routed corpus")
}

// TestAuditDetectsInjectedOverlayFault corrupts the overlay leg of a
// sharded oracle mid-serve (the InjectOverlayFault test hook) and
// asserts the full detection chain the runbook describes: the violation
// counter trips, the SLO engine flips the graph to violated on the
// stretch dimension, a structured audit_violation event carries the
// serving request's trace ID, and that ID resolves at /trace/{id}.
func TestAuditDetectsInjectedOverlayFault(t *testing.T) {
	g := testkit.Grid(196, 4)
	dir := t.TempDir()
	manPath, err := graphio.WriteShards(dir, "grid", partition.Partition(g, 3))
	if err != nil {
		t.Fatal(err)
	}
	o, err := shard.Open(context.Background(), manPath, shard.Config{
		EpsilonLocal: shardEps, PathReporting: true,
		// No router cache: every query recomputes, so post-fault answers
		// are actually corrupted rather than served from clean rows.
		DistCache: -1,
	})
	if err != nil {
		t.Fatal(err)
	}

	sink := &auditLogBuf{}
	logger := slog.New(slog.NewJSONHandler(sink, nil))
	slo := obs.NewSLO(obs.DefaultObjective(), logger)
	a := audit.New(audit.Config{
		SampleRate: 1, Workers: 2, Logger: logger,
		OnResult: func(res audit.Result) { slo.ObserveAudit(res.Graph, res.Violation != "") },
	})
	defer a.Close()
	reg := oracle.NewRegistry(oracle.RegistryConfig{Audit: a})
	defer reg.Close()
	if err := reg.AddReady("grid", o); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := reg.WaitReady(ctx, "grid"); err != nil {
		t.Fatal(err)
	}

	// The full serve stack: traced middleware outside the registry
	// handler, /trace mounted next to it — what cmd/serve wires up.
	tr := obs.NewTracer("serve", obs.TracerOptions{RingSize: 256})
	mux := http.NewServeMux()
	mux.Handle("/", oracle.NewRegistryHandler(reg))
	mux.Handle("/trace/", obs.TraceHandler(tr, nil, nil))
	srv := httptest.NewServer(obs.Middleware(tr, obs.NewHTTPMetrics(), slo, mux))
	defer srv.Close()

	queryDist := func(src int32) {
		t.Helper()
		resp, err := srv.Client().Get(fmt.Sprintf("%s/graphs/grid/dist?source=%d", srv.URL, src))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("dist(%d) = %d", src, resp.StatusCode)
		}
	}

	// Clean baseline: served answers audit green.
	for src := int32(0); src < 24; src++ {
		queryDist(src)
	}
	if st := settleAudits(t, a); st.Violations != 0 {
		t.Fatalf("violations before the fault: %+v", st)
	}

	// Corrupt the overlay: every cross-shard answer is now ~3x too long,
	// far outside the composed stretch bound.
	o.InjectOverlayFault(3.0)
	for src := int32(0); src < 64; src++ {
		queryDist(src)
	}
	st := settleAudits(t, a)
	if st.Violations == 0 {
		t.Fatalf("injected overlay fault went undetected: %+v", st)
	}

	// The SLO engine saw the violations: zero stretch budget means the
	// graph is violated immediately.
	var gridState string
	for _, gs := range slo.Status() {
		if gs.Graph == "grid" {
			gridState = string(gs.State)
		}
	}
	if gridState != string(obs.StateViolated) {
		t.Fatalf("SLO state = %q, want violated", gridState)
	}

	// The structured event chain: an audit_violation record with the
	// serving request's trace ID, resolvable at /trace/{id}.
	var traceID string
	for _, line := range strings.Split(sink.String(), "\n") {
		if !strings.Contains(line, `"event":"audit_violation"`) {
			continue
		}
		var ev struct {
			TraceID string `json:"trace_id"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("unparseable violation event %q: %v", line, err)
		}
		if ev.TraceID != "" {
			traceID = ev.TraceID
			break
		}
	}
	if traceID == "" {
		t.Fatalf("no audit_violation event with a trace ID in:\n%s", sink.String())
	}
	resp, err := srv.Client().Get(srv.URL + "/trace/" + traceID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Spans []json.RawMessage `json:"spans"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if len(body.Spans) == 0 {
		t.Fatalf("violation trace %s did not resolve to any spans", traceID)
	}
}
