package cluster

import "testing"

func TestSingletons(t *testing.T) {
	p := Singletons(5)
	if p.Len() != 5 {
		t.Fatalf("len=%d", p.Len())
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	for v := int32(0); v < 5; v++ {
		if p.ClusterOf[v] != v || p.Centers[v] != v {
			t.Fatalf("vertex %d not a singleton", v)
		}
	}
	if p.MaxRad() != 0 {
		t.Fatalf("rad=%v", p.MaxRad())
	}
	if p.TotalMembers() != 5 {
		t.Fatalf("members=%d", p.TotalMembers())
	}
}

func TestEmptyAndAdd(t *testing.T) {
	p := Empty(6)
	if p.Len() != 0 {
		t.Fatalf("len=%d", p.Len())
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	idx := p.Add(2, []int32{1, 2, 3}, 4.5)
	if idx != 0 {
		t.Fatalf("idx=%d", idx)
	}
	p.Add(5, []int32{5}, 0)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.ClusterOf[3] != 0 || p.ClusterOf[5] != 1 || p.ClusterOf[0] != -1 {
		t.Fatalf("ClusterOf=%v", p.ClusterOf)
	}
	if p.MaxRad() != 4.5 {
		t.Fatalf("rad=%v", p.MaxRad())
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	// Center not a member.
	p := Empty(4)
	p.Centers = append(p.Centers, 0)
	p.Members = append(p.Members, []int32{1, 2})
	p.Rad = append(p.Rad, 0)
	p.ClusterOf[1], p.ClusterOf[2] = 0, 0
	if err := p.Validate(); err == nil {
		t.Fatal("missing center not caught")
	}

	// Overlapping clusters.
	p2 := Empty(4)
	p2.Add(0, []int32{0, 1}, 0)
	p2.Centers = append(p2.Centers, 1)
	p2.Members = append(p2.Members, []int32{1})
	p2.Rad = append(p2.Rad, 0)
	if err := p2.Validate(); err == nil {
		t.Fatal("overlap not caught")
	}

	// Empty cluster.
	p3 := Empty(2)
	p3.Centers = append(p3.Centers, 0)
	p3.Members = append(p3.Members, nil)
	p3.Rad = append(p3.Rad, 0)
	if err := p3.Validate(); err == nil {
		t.Fatal("empty cluster not caught")
	}

	// Stale ClusterOf.
	p4 := Empty(3)
	p4.ClusterOf[2] = 0
	p4.Add(0, []int32{0}, 0)
	if err := p4.Validate(); err == nil {
		t.Fatal("stale ClusterOf not caught")
	}

	// Member out of range.
	p5 := Empty(2)
	p5.Centers = append(p5.Centers, 0)
	p5.Members = append(p5.Members, []int32{0, 7})
	p5.Rad = append(p5.Rad, 0)
	if err := p5.Validate(); err == nil {
		t.Fatal("out-of-range member not caught")
	}
}
