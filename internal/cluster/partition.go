// Package cluster implements the cluster collections Pᵢ of the
// superclustering-and-interconnection construction (§2.1): every cluster has
// a designated center, the cluster's ID is its center's vertex ID, and each
// vertex belongs to at most one active cluster.
//
// The package also tracks the "cluster memory" of §4.3 in distance-only
// form: for every clustered vertex, the exact length of a concrete path to
// its cluster center inside G_{k−1} (CenterDist). The tracked per-cluster
// radius Rad is the maximum CenterDist of a member; it plays the role of
// the paper's Rᵢ bound (Lemma 2.2) with the actual value instead of the
// worst-case recurrence.
package cluster

import "fmt"

// Partition is a collection of disjoint clusters over vertices [0, n).
type Partition struct {
	N         int
	Centers   []int32   // cluster index -> center vertex (the cluster ID)
	Members   [][]int32 // cluster index -> member vertices (sorted)
	ClusterOf []int32   // vertex -> cluster index, or -1 if unclustered
	Rad       []float64 // cluster index -> tracked radius (max CenterDist)
}

// Singletons returns the phase-0 partition {{v} | v ∈ V}.
func Singletons(n int) *Partition {
	p := &Partition{
		N:         n,
		Centers:   make([]int32, n),
		Members:   make([][]int32, n),
		ClusterOf: make([]int32, n),
		Rad:       make([]float64, n),
	}
	for v := 0; v < n; v++ {
		p.Centers[v] = int32(v)
		p.Members[v] = []int32{int32(v)}
		p.ClusterOf[v] = int32(v)
	}
	return p
}

// Empty returns a partition with no clusters over n vertices.
func Empty(n int) *Partition {
	p := &Partition{N: n, ClusterOf: make([]int32, n)}
	for v := range p.ClusterOf {
		p.ClusterOf[v] = -1
	}
	return p
}

// Len returns the number of clusters.
func (p *Partition) Len() int { return len(p.Centers) }

// Add appends a cluster with the given center and members and returns its
// index. Members must include the center.
func (p *Partition) Add(center int32, members []int32, rad float64) int32 {
	idx := int32(len(p.Centers))
	p.Centers = append(p.Centers, center)
	p.Members = append(p.Members, members)
	p.Rad = append(p.Rad, rad)
	for _, v := range members {
		p.ClusterOf[v] = idx
	}
	return idx
}

// Validate checks structural invariants; it is used by tests and by the
// hopset builder in debug mode.
func (p *Partition) Validate() error {
	seen := make([]bool, p.N)
	for c, members := range p.Members {
		if len(members) == 0 {
			return fmt.Errorf("cluster %d empty", c)
		}
		foundCenter := false
		for _, v := range members {
			if v < 0 || int(v) >= p.N {
				return fmt.Errorf("cluster %d: member %d out of range", c, v)
			}
			if seen[v] {
				return fmt.Errorf("vertex %d in two clusters", v)
			}
			seen[v] = true
			if p.ClusterOf[v] != int32(c) {
				return fmt.Errorf("vertex %d: ClusterOf=%d want %d", v, p.ClusterOf[v], c)
			}
			if v == p.Centers[c] {
				foundCenter = true
			}
		}
		if !foundCenter {
			return fmt.Errorf("cluster %d: center %d not a member", c, p.Centers[c])
		}
	}
	for v := 0; v < p.N; v++ {
		if p.ClusterOf[v] >= 0 && !seen[v] {
			return fmt.Errorf("vertex %d claims cluster %d but is not a member", v, p.ClusterOf[v])
		}
	}
	return nil
}

// MaxRad returns the maximum tracked cluster radius (the measured
// counterpart of Rad(Pᵢ) ≤ Rᵢ, Lemma 2.2).
func (p *Partition) MaxRad() float64 {
	var m float64
	for _, r := range p.Rad {
		if r > m {
			m = r
		}
	}
	return m
}

// TotalMembers returns the number of clustered vertices.
func (p *Partition) TotalMembers() int {
	t := 0
	for _, m := range p.Members {
		t += len(m)
	}
	return t
}
