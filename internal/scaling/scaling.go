// Package scaling implements the Klein–Sairam weight reduction of
// Appendices C and D ([KS97], as adapted by [EN19] and this paper): it
// removes the dependence of the hopbound and running time on the aspect
// ratio Λ.
//
// For every relevant scale k (one where some edge weight lies in
// ((ε/n)·2^k, 2^{k+1}]), the graph 𝒢ₖ is formed by contracting all edges of
// weight ≤ (ε/n)·2^k into *nodes* (deterministic parallel connected
// components, package conncomp) and deleting edges heavier than 2^{k+1}.
// Each node gets a designated center chosen by the largest-child rule over
// the laminar node family (Appendix C.3), which keeps the total number of
// *star edges* — center-to-member edges along the node spanning trees —
// below n·log n (Lemma C.1 / eq. (24)). A hopset is built for each 𝒢ₖ with
// the core construction; its edges for the scales covering (2^k, 2^{k+1}]
// are mapped back to node centers and joined with the stars into one
// aspect-ratio-free hopset (Theorems C.2/C.3).
//
// Deviations from the paper, both documented in DESIGN.md:
//   - Node-edge padding uses 2(|X|+|Y|)·(ε/n)·2^k instead of
//     (|X|+|Y|)·(ε/n)·2^k, and star edges weigh the tree walk through the
//     component root (root-distance sums) instead of the direct tree path.
//     Both changes keep every weight realizable by a concrete walk in G
//     (soundness, which the direct tree path would break for our walks)
//     and only add O(ε·2^k/n)-scale slack per edge.
//   - In RecordPaths mode the realizing paths are eagerly expanded to
//     original-graph edges (Appendix D stores them lazily per scale); this
//     trades memory for a much simpler peeling step, which Appendix D's
//     three-step replacement then performs in one pass.
package scaling

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/conncomp"
	"repro/internal/graph"
	"repro/internal/hopset"
	"repro/internal/pram"
)

// Params configures the reduction.
type Params struct {
	// Epsilon is the final stretch target. The contraction slack and the
	// per-scale hopsets are built with ε/6 and ε/2 respectively, following
	// the (1+6ε) composition loss of the reduction ([EN19] Lemma 4.3).
	Epsilon       float64
	Kappa         int
	Rho           float64
	EffectiveBeta int
	// RecordPaths assembles a path-reporting hopset (Appendix D): every
	// edge carries a realizing path of original-graph edges, so
	// pathrep.BuildSPT works on the result directly.
	RecordPaths bool
}

// Result is the assembled aspect-ratio-free hopset plus the reduction's
// ledgers.
type Result struct {
	// H is queried exactly like a directly built hopset (its graph is the
	// normalized original graph).
	H *hopset.Hopset

	Stars          int   // |S|: star edges (eq. (24): ≤ n·log₂ n)
	RelevantScales int   // |K| (eq. (25))
	NodeCount      int64 // Σₖ non-isolated nodes (eq. (26): O(n·log n))
	NodeEdgeCount  int64 // Σₖ node-graph edges (eq. (27): O(|E|·log n))
	MappedEdges    int   // hopset edges mapped back from node graphs
}

// Build runs the reduction on g.
func Build(g *graph.Graph, p Params, tr *pram.Tracker) (*Result, error) {
	if g == nil || g.N < 2 {
		return nil, errors.New("scaling: need a graph with at least two vertices")
	}
	hp := hopset.Params{
		Epsilon: p.Epsilon, Kappa: p.Kappa, Rho: p.Rho,
		EffectiveBeta: p.EffectiveBeta, RecordPaths: p.RecordPaths,
	}
	if err := hp.Validate(); err != nil {
		return nil, err
	}
	ng, factor := g.Normalized()
	sched, err := hopset.NewSchedule(ng.N, ng.AspectRatioUpperBound(), hp)
	if err != nil {
		return nil, err
	}
	n := ng.N
	epsContract := p.Epsilon / 6

	res := &Result{}
	b := &ksBuilder{
		g: ng, n: n, p: p, tr: tr,
		prevLabel:  make([]int32, n),
		nodeCenter: make([]int32, n),
		nodeSize:   make([]int32, n),
	}
	for v := 0; v < n; v++ {
		b.prevLabel[v] = int32(v)
		b.nodeCenter[v] = int32(v)
		b.nodeSize[v] = 1
	}

	var edges []hopset.Edge
	var paths [][]hopset.PathStep
	add := func(e hopset.Edge, path []hopset.PathStep) {
		edges = append(edges, e)
		if p.RecordPaths {
			paths = append(paths, path)
		}
	}

	for k := sched.K0; k <= sched.Lambda; k++ {
		t := epsContract / float64(n) * math.Pow(2, float64(k))
		hi := math.Pow(2, float64(k+1))
		if !b.relevant(t, hi) {
			continue
		}
		res.RelevantScales++
		if err := b.enterScale(k, t, hi, res, add); err != nil {
			return nil, err
		}
	}

	res.H = hopset.Assemble(ng, sched, hp, factor, edges, paths)
	return res, nil
}

type ksBuilder struct {
	g  *graph.Graph
	n  int
	p  Params
	tr *pram.Tracker

	// Laminar node state, carried between relevant scales: the node of a
	// vertex is identified by its previous component label; its center and
	// size are tracked per vertex for O(1) lookup.
	prevLabel  []int32
	nodeCenter []int32
	nodeSize   []int32
}

// relevant reports whether any edge weight lies in (t, hi] — the relevance
// test of Appendix C.4.
func (b *ksBuilder) relevant(t, hi float64) bool {
	for _, e := range b.g.Edges {
		if e.W > t && e.W <= hi {
			return true
		}
	}
	return false
}

// enterScale processes one relevant scale: updates the laminar node family
// and stars, builds the node graph and its hopset, and maps edges back.
func (b *ksBuilder) enterScale(k int, t, hi float64, res *Result, add func(hopset.Edge, []hopset.PathStep)) error {
	f := conncomp.Build(b.g, t, b.tr)
	rootDist := f.RootDist(b.tr)

	// --- Node family update + star edges (Appendix C.3). ---
	// Children of each new component, in deterministic order.
	childrenOf := map[int32][]int32{} // new label -> distinct prev labels
	seen := map[[2]int32]bool{}
	for v := 0; v < b.n; v++ {
		key := [2]int32{f.Label[v], b.prevLabel[v]}
		if !seen[key] {
			seen[key] = true
			childrenOf[f.Label[v]] = append(childrenOf[f.Label[v]], b.prevLabel[v])
		}
	}
	newLabels := make([]int32, 0, len(childrenOf))
	for l := range childrenOf {
		newLabels = append(newLabels, l)
	}
	sort.Slice(newLabels, func(i, j int) bool { return newLabels[i] < newLabels[j] })

	centerOfLabel := make(map[int32]int32, len(newLabels))
	sizeOfLabel := make(map[int32]int32, len(newLabels))
	for _, l := range newLabels {
		children := childrenOf[l]
		sort.Slice(children, func(i, j int) bool { return children[i] < children[j] })
		// Largest child (ties: smaller center ID) donates its center.
		best := children[0]
		for _, c := range children[1:] {
			if b.nodeSize[c] > b.nodeSize[best] ||
				(b.nodeSize[c] == b.nodeSize[best] && b.nodeCenter[c] < b.nodeCenter[best]) {
				best = c
			}
		}
		center := b.nodeCenter[best]
		var size int32
		for _, c := range children {
			size += b.nodeSize[c]
		}
		centerOfLabel[l] = center
		sizeOfLabel[l] = size
		if len(children) == 1 {
			continue // unchanged node: no new stars
		}
		// Star edges to every vertex outside the largest child.
		for v := int32(0); int(v) < b.n; v++ {
			if f.Label[v] != l || b.prevLabel[v] == best {
				continue
			}
			w := rootDist[v] + rootDist[center]
			if w <= 0 {
				continue // v is the center itself (cannot happen: center ∈ best)
			}
			var path []hopset.PathStep
			if b.p.RecordPaths {
				path = treeWalk(f, center, v)
			}
			add(hopset.Edge{
				U: center, V: v, W: w,
				Scale: int16(k), Kind: hopset.Star,
			}, path)
			res.Stars++
		}
	}
	// Commit the laminar state.
	for v := 0; v < b.n; v++ {
		l := f.Label[v]
		b.prevLabel[v] = l
		b.nodeCenter[v] = centerOfLabel[l]
		b.nodeSize[v] = sizeOfLabel[l]
	}

	// --- Node graph (eq. (21), with the factor-2 padding). ---
	type pair = [2]int32
	minEdge := map[pair]graph.Edge{}
	for _, e := range b.g.Edges {
		if e.W <= t || e.W > hi {
			continue
		}
		lu, lv := f.Label[e.U], f.Label[e.V]
		if lu == lv {
			continue
		}
		if lu > lv {
			lu, lv = lv, lu
		}
		key := pair{lu, lv}
		if cur, ok := minEdge[key]; !ok || e.W < cur.W ||
			(e.W == cur.W && (e.U < cur.U || (e.U == cur.U && e.V < cur.V))) {
			minEdge[key] = e
		}
	}
	if len(minEdge) == 0 {
		return nil // no inter-node edges at this scale
	}
	// Non-isolated node labels, re-indexed densely and deterministically.
	labelSet := map[int32]bool{}
	for key := range minEdge {
		labelSet[key[0]] = true
		labelSet[key[1]] = true
	}
	labels := make([]int32, 0, len(labelSet))
	for l := range labelSet {
		labels = append(labels, l)
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i] < labels[j] })
	idxOf := make(map[int32]int32, len(labels))
	for i, l := range labels {
		idxOf[l] = int32(i)
	}
	res.NodeCount += int64(len(labels))

	keys := make([]pair, 0, len(minEdge))
	for key := range minEdge {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	nodeEdges := make([]graph.Edge, 0, len(keys))
	for _, key := range keys {
		orig := minEdge[key]
		pad := 2 * float64(sizeOfLabel[key[0]]+sizeOfLabel[key[1]]) * t
		nodeEdges = append(nodeEdges, graph.E(idxOf[key[0]], idxOf[key[1]], orig.W+pad))
	}
	res.NodeEdgeCount += int64(len(nodeEdges))
	if len(labels) < 2 {
		return nil
	}
	nodeGraph, err := graph.FromEdges(len(labels), nodeEdges)
	if err != nil {
		return fmt.Errorf("scaling: scale %d node graph: %w", k, err)
	}

	// --- Per-scale hopset (Appendix C.4.2) and mapping back. ---
	hp := hopset.Params{
		Epsilon: b.p.Epsilon / 2, Kappa: b.p.Kappa, Rho: b.p.Rho,
		EffectiveBeta: b.p.EffectiveBeta, RecordPaths: b.p.RecordPaths,
	}
	hk, err := hopset.Build(nodeGraph, hp, b.tr)
	if err != nil {
		return fmt.Errorf("scaling: scale %d hopset: %w", k, err)
	}
	fk := hk.ScaleFactor
	// Node-graph scales covering original distances (2^k, 2^{k+1}]
	// (widened one scale each way for the contraction distortion).
	lo := math.Pow(2, float64(k)) / fk
	kkLo := int(math.Floor(math.Log2(lo))) - 1
	kkHi := int(math.Floor(math.Log2(lo*2))) + 1

	exp := &expander{b: b, f: f, hk: hk, fk: fk,
		labels: labels, minEdge: minEdge, centerOfLabel: centerOfLabel,
		memo: map[int32][]hopset.PathStep{}}
	for i, e := range hk.Edges {
		if int(e.Scale) < kkLo || int(e.Scale) > kkHi {
			continue
		}
		cu := centerOfLabel[labels[e.U]]
		cv := centerOfLabel[labels[e.V]]
		if cu == cv {
			continue
		}
		var path []hopset.PathStep
		if b.p.RecordPaths {
			path = exp.edgePath(int32(i))
		}
		add(hopset.Edge{
			U: cu, V: cv, W: e.W * fk,
			Scale: int16(k), Phase: e.Phase, Kind: e.Kind,
		}, path)
		res.MappedEdges++
	}
	return nil
}

// treeWalk returns the original-graph walk from a to b through their common
// component root in the forest f, as PathSteps (weights in original units).
func treeWalk(f *conncomp.Forest, a, b int32) []hopset.PathStep {
	if a == b {
		return nil
	}
	up := f.TreePath(a)   // a … root
	down := f.TreePath(b) // b … root
	// Trim the common suffix (keep one shared vertex): shortens the walk to
	// the actual tree path; pure optimization, both are sound.
	for len(up) >= 2 && len(down) >= 2 && up[len(up)-2] == down[len(down)-2] {
		up = up[:len(up)-1]
		down = down[:len(down)-1]
	}
	var steps []hopset.PathStep
	for i := 0; i+1 < len(up); i++ {
		steps = append(steps, hopset.PathStep{To: up[i+1], W: f.ParentW[up[i]], HEdge: -1})
	}
	for i := len(down) - 1; i >= 1; i-- {
		steps = append(steps, hopset.PathStep{To: down[i-1], W: f.ParentW[down[i-1]], HEdge: -1})
	}
	return steps
}

// expander lazily expands node-graph hopset edges into original-graph
// paths (Appendix D's memory arrays, eagerly materialized).
type expander struct {
	b             *ksBuilder
	f             *conncomp.Forest
	hk            *hopset.Hopset
	fk            float64
	labels        []int32
	minEdge       map[[2]int32]graph.Edge
	centerOfLabel map[int32]int32
	memo          map[int32][]hopset.PathStep
}

// edgePath returns the original-graph path realizing node-hopset edge idx,
// oriented from center(U) to center(V), weights in original units.
func (x *expander) edgePath(idx int32) []hopset.PathStep {
	if p, ok := x.memo[idx]; ok {
		return p
	}
	e := x.hk.Edges[idx]
	var out []hopset.PathStep
	cur := e.U // node-graph vertex
	for _, s := range x.hk.Paths[idx] {
		if s.HEdge >= 0 {
			sub := x.edgePath(s.HEdge)
			se := x.hk.Edges[s.HEdge]
			if se.U == cur { // forward
				out = append(out, sub...)
			} else {
				start := x.centerOfLabel[x.labels[se.U]]
				out = append(out, hopset.ReversePath(start, sub)...)
			}
		} else {
			out = append(out, x.basePath(cur, s.To)...)
		}
		cur = s.To
	}
	x.memo[idx] = out
	return out
}

// basePath expands the node-graph base edge (a, b) — node indices — into
// center(a) → x → y → center(b) with tree walks on both sides.
func (x *expander) basePath(a, b int32) []hopset.PathStep {
	la, lb := x.labels[a], x.labels[b]
	key := [2]int32{la, lb}
	if la > lb {
		key = [2]int32{lb, la}
	}
	orig, ok := x.minEdge[key]
	if !ok {
		panic(fmt.Sprintf("scaling: no realizing edge for node pair (%d,%d)", la, lb))
	}
	// Orient the original edge: its endpoint inside node a first.
	eu, ev := orig.U, orig.V
	if x.f.Label[eu] != la {
		eu, ev = ev, eu
	}
	steps := treeWalk(x.f, x.centerOfLabel[la], eu)
	steps = append(steps, hopset.PathStep{To: ev, W: orig.W, HEdge: -1})
	return append(steps, treeWalk(x.f, ev, x.centerOfLabel[lb])...)
}
