package scaling

import (
	"math"
	"testing"

	"repro/internal/adj"
	"repro/internal/bmf"
	"repro/internal/exact"
	"repro/internal/graph"
	"repro/internal/hopset"
	"repro/internal/par"
	"repro/internal/pathrep"
)

// wideWeightGraph returns a connected graph whose weights span many powers
// of two — the regime the Klein–Sairam reduction exists for.
func wideWeightGraph(n, m, scales int, seed int64) *graph.Graph {
	return graph.Gnm(n, m, graph.GeometricScaleWeights(scales), seed)
}

func checkKSStretch(t *testing.T, r *Result, eps float64) {
	t.Helper()
	h := r.H
	a := adj.Build(h.G, h.Extras())
	// The reduction's hopbound is ~6β+5 per composition level; allow the
	// same per-level slack as the core tests times the composition factor.
	budget := 6*h.Sched.HopBudget()*(h.Sched.Ell+2) + 5
	n := h.G.N
	for _, s := range []int32{0, int32(n / 2), int32(n - 1)} {
		ref, _ := exact.DijkstraGraph(h.G, s)
		res := bmf.Run(a, []int32{s}, n+1, nil)
		for v := 0; v < n; v++ {
			if math.IsInf(ref[v], 1) {
				continue
			}
			if res.Dist[v] < ref[v]-1e-9 {
				t.Fatalf("source %d vertex %d: %v below exact %v (hopset shortcuts)", s, v, res.Dist[v], ref[v])
			}
		}
		if r := bmf.RoundsToApprox(a, []int32{s}, ref, eps, budget, nil); r < 0 {
			t.Fatalf("source %d: (1+%v)-approx not reached in %d rounds", s, eps, budget)
		}
	}
}

func TestKSWideWeights(t *testing.T) {
	g := wideWeightGraph(96, 320, 12, 1)
	r, err := Build(g, Params{Epsilon: 0.5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.RelevantScales == 0 {
		t.Fatal("no relevant scales on a wide-weight graph")
	}
	if err := r.H.Check(); err != nil {
		t.Fatal(err)
	}
	checkKSStretch(t, r, 0.5)
}

func TestKSStarBound(t *testing.T) {
	// Eq. (24): |S| ≤ n·log₂ n.
	for seed := int64(0); seed < 3; seed++ {
		g := wideWeightGraph(128, 400, 10, seed)
		r, err := Build(g, Params{Epsilon: 0.5}, nil)
		if err != nil {
			t.Fatal(err)
		}
		bound := float64(g.N) * math.Log2(float64(g.N))
		if float64(r.Stars) > bound {
			t.Fatalf("seed %d: %d stars exceed n·log n = %.0f", seed, r.Stars, bound)
		}
	}
}

func TestKSSizeBound(t *testing.T) {
	// Theorem C.2: O(n^{1+1/κ}·log n) total size. Check against the
	// explicit ledger with a modest constant.
	g := wideWeightGraph(128, 512, 10, 7)
	p := Params{Epsilon: 0.5, Kappa: 3}
	r, err := Build(g, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	n := float64(g.N)
	bound := 4 * math.Pow(n, 1+1.0/3.0) * math.Log2(n)
	if float64(r.H.Size()) > bound {
		t.Fatalf("size %d exceeds 4·n^{4/3}·log n = %.0f", r.H.Size(), bound)
	}
}

func TestKSUnitWeightsStillWork(t *testing.T) {
	// Λ = poly(n) inputs must work too (the reduction is then almost a
	// no-op: singleton nodes at every relevant scale).
	g := graph.Gnm(80, 240, graph.UnitWeights(), 3)
	r, err := Build(g, Params{Epsilon: 0.5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkKSStretch(t, r, 0.5)
}

func TestKSPathReporting(t *testing.T) {
	g := wideWeightGraph(72, 220, 8, 5)
	r, err := Build(g, Params{Epsilon: 0.5, RecordPaths: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.H.Check(); err != nil {
		t.Fatal(err)
	}
	// Appendix D: the assembled hopset supports SPT extraction over the
	// original graph.
	budget := 6*r.H.Sched.HopBudget()*(r.H.Sched.Ell+2) + 5
	spt, err := pathrep.BuildSPT(r.H, 0, budget, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := spt.Validate(r.H); err != nil {
		t.Fatal(err)
	}
	ref, _ := exact.DijkstraGraph(r.H.G, 0)
	for v := 0; v < g.N; v++ {
		if math.IsInf(ref[v], 1) {
			continue
		}
		if spt.Dist[v] < ref[v]-1e-9 {
			t.Fatalf("vertex %d: SPT below exact", v)
		}
		if spt.Dist[v] > (1+0.5)*ref[v]+1e-9 {
			t.Fatalf("vertex %d: SPT distance %v exceeds 1.5·%v", v, spt.Dist[v], ref[v])
		}
	}
}

func TestKSDeterministicAcrossWorkers(t *testing.T) {
	old := par.Workers()
	defer par.SetWorkers(old)
	g := wideWeightGraph(96, 300, 9, 11)
	par.SetWorkers(1)
	ref, err := Build(g, Params{Epsilon: 0.5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 8} {
		par.SetWorkers(w)
		r, err := Build(g, Params{Epsilon: 0.5}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(r.H.Edges) != len(ref.H.Edges) {
			t.Fatalf("workers=%d: %d edges vs %d", w, len(r.H.Edges), len(ref.H.Edges))
		}
		for i := range ref.H.Edges {
			if r.H.Edges[i] != ref.H.Edges[i] {
				t.Fatalf("workers=%d edge %d differs", w, i)
			}
		}
	}
}

func TestKSLedgersPopulated(t *testing.T) {
	g := wideWeightGraph(64, 200, 10, 13)
	r, err := Build(g, Params{Epsilon: 0.5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.NodeCount == 0 || r.NodeEdgeCount == 0 {
		t.Fatalf("ledgers empty: %+v", r)
	}
	// Eq. (26)/(27) shapes with generous constants.
	if r.NodeCount > 4*int64(g.N)*int64(math.Log2(float64(g.N))+1) {
		t.Fatalf("node count %d out of O(n log n) shape", r.NodeCount)
	}
	if r.NodeEdgeCount > 4*int64(g.M())*int64(math.Log2(float64(g.N))+10) {
		t.Fatalf("node edges %d out of O(m log n) shape", r.NodeEdgeCount)
	}
}

func TestKSErrors(t *testing.T) {
	if _, err := Build(nil, Params{Epsilon: 0.5}, nil); err == nil {
		t.Fatal("nil graph accepted")
	}
	g := graph.Path(10, graph.UnitWeights(), 1)
	if _, err := Build(g, Params{Epsilon: 0}, nil); err == nil {
		t.Fatal("epsilon 0 accepted")
	}
}

func TestKSStarEdgesRealizable(t *testing.T) {
	// Every star edge must weigh at least the true distance between its
	// endpoints (soundness in the original graph).
	g := wideWeightGraph(64, 180, 8, 17)
	r, err := Build(g, Params{Epsilon: 0.5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	byU := map[int32][]hopset.Edge{}
	for _, e := range r.H.Edges {
		byU[e.U] = append(byU[e.U], e)
	}
	for u, es := range byU {
		d, _ := exact.DijkstraGraph(r.H.G, u)
		for _, e := range es {
			if e.W < d[e.V]-1e-9 {
				t.Fatalf("edge (%d,%d) kind=%v w=%v below exact %v", e.U, e.V, e.Kind, e.W, d[e.V])
			}
		}
	}
}
