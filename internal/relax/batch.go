package relax

import (
	"fmt"
	"math"
	"math/bits"
	"sync"

	"repro/internal/adj"
	"repro/internal/par"
)

// MaxBatch is the number of sources one ExplorationBatch carries: one bit
// of a machine word per source lane.
const MaxBatch = 64

// ExplorationBatch relaxes up to MaxBatch sources in lock-step over one
// shared traversal of the adjacency. Per vertex it keeps a 64-bit
// seed-membership word — bit l set ⇔ lane l's label at the vertex changed
// last round — plus per-lane (dist, parent, arc) labels, so a single
// frontier-sparse scan of N(F) answers every lane whose frontier touches
// it. Each lane computes bit for bit the labels the sequential
// Exploration computes for its source: the fold per (vertex, lane) is the
// same lexicographic minimum over the same candidate set, the per-round
// synchronous semantics are unchanged, and the dense/sparse kernel choice
// (made once per round for the union frontier) never affects labels —
// only which arcs are rescanned to compute them.
//
// ScannedArcs accounting is per traversal, not per lane: a batched sparse
// round charges frontier marking plus scan-set degree once, a batched
// dense round charges m once. That is the point of the kernel — the arc
// array is streamed one time for all live lanes, the per-lane folds are
// register-width operations on data the shared scan already loaded — and
// it is what the BatchedSeeds counter makes auditable: arcs saved vs
// sequential ≈ ScannedArcs · (BatchedSeeds − 1) on workloads whose seed
// frontiers overlap.
type ExplorationBatch struct {
	a         *adj.Adj
	opts      Options
	denseFrac float64
	arcs      int64
	k         int       // lanes in this batch, 1 ≤ k ≤ MaxBatch
	lane      []*Result // per-lane results, filled by Finish
	live      uint64    // lanes that have not yet converged
	rounds    int
	stats     Stats
	sc        *batchScratch
	frontArcs int64 // summed degree of the union frontier
}

// batchScratch is the pooled mutable state of one batch. The label arrays
// are vertex-major ([v*k+l]) so one vertex's lanes share cache lines
// during the fold. front obeys an all-zero-between-uses invariant: Step
// clears the previous frontier's words before writing the new ones and
// Finish clears the final frontier, so a pooled front array never needs
// an O(n) wipe.
type batchScratch struct {
	front     []uint64 // per-vertex lane-changed words (previous round)
	frontList []int32  // vertices with front[v] != 0, sorted
	scan      ScanSet
	work      []int32
	wmask     []uint64  // per-work-slot changed-lane words
	dist      []float64 // labels, [v*k+l]
	parent    []int32
	parc      []int32
	wdist     []float64 // staged labels, [slot*k+l]
	wpar      []int32
	warc      []int32
}

var batchScratchPool = sync.Pool{New: func() any { return new(batchScratch) }}

func (sc *batchScratch) grow(n, k int) {
	if cap(sc.front) < n {
		sc.front = make([]uint64, n) // zeroed; the invariant keeps it so
		sc.wmask = make([]uint64, n)
	}
	sc.front = sc.front[:n]
	sc.wmask = sc.wmask[:n]
	if cap(sc.dist) < n*k {
		sc.dist = make([]float64, n*k)
		sc.parent = make([]int32, n*k)
		sc.parc = make([]int32, n*k)
		sc.wdist = make([]float64, n*k)
		sc.wpar = make([]int32, n*k)
		sc.warc = make([]int32, n*k)
	}
	sc.dist = sc.dist[:n*k]
	sc.parent = sc.parent[:n*k]
	sc.parc = sc.parc[:n*k]
	sc.wdist = sc.wdist[:n*k]
	sc.wpar = sc.wpar[:n*k]
	sc.warc = sc.warc[:n*k]
	sc.frontList = sc.frontList[:0]
}

// StartBatch initializes a batched exploration with one lane per source.
// It errors when the batch is empty or exceeds MaxBatch; RunBatch chunks
// arbitrary source lists so most callers never see either.
func StartBatch(a *adj.Adj, sources []int32, opts Options) (*ExplorationBatch, error) {
	k := len(sources)
	if k == 0 {
		return nil, fmt.Errorf("relax: empty batch")
	}
	if k > MaxBatch {
		return nil, fmt.Errorf("relax: batch of %d sources exceeds MaxBatch=%d", k, MaxBatch)
	}
	n := a.N
	e := &ExplorationBatch{
		a:         a,
		opts:      opts,
		denseFrac: opts.DenseFraction,
		arcs:      int64(a.Arcs()),
		k:         k,
		lane:      make([]*Result, k),
	}
	if e.denseFrac <= 0 {
		e.denseFrac = DefaultDenseFraction
	}
	for l := range e.lane {
		e.lane[l] = &Result{}
	}
	sc := batchScratchPool.Get().(*batchScratch)
	sc.grow(n, k)
	e.sc = sc
	dist, parent, parc := sc.dist, sc.parent, sc.parc
	par.ForChunk(n, func(lo, hi int) {
		for i := lo * k; i < hi*k; i++ {
			dist[i] = math.Inf(1)
			parent[i] = -1
			parc[i] = -1
		}
	})
	// Seed each lane at its source; the union of the seeds is the initial
	// frontier. Duplicate sources share a vertex but not a lane.
	for l, s := range sources {
		if sc.front[s] == 0 {
			sc.frontList = append(sc.frontList, s)
			e.frontArcs += int64(a.Off[s+1] - a.Off[s])
		}
		sc.front[s] |= 1 << uint(l)
		dist[int(s)*k+l] = 0
	}
	if k == MaxBatch {
		e.live = ^uint64(0)
	} else {
		e.live = 1<<uint(k) - 1
	}
	return e, nil
}

// Rounds returns the number of synchronous rounds executed so far.
func (e *ExplorationBatch) Rounds() int { return e.rounds }

// Live returns the lane word of not-yet-converged lanes.
func (e *ExplorationBatch) Live() uint64 { return e.live }

// Step executes one synchronous round for every live lane and reports
// whether any lane's label changed anywhere. Lanes whose frontier emptied
// this round are marked converged with their per-lane round count; a
// false return means every lane reached its fixed point.
//
// Correctness of the shared sparse scan: the union scan set N(F) is a
// superset of each lane's own N(F_l) (marking ignores lanes), and folding
// a vertex against a neighbor whose lane-l label did not change last
// round cannot improve its lane-l label (fold idempotence, exactly the
// sequential kernel's frontier invariant applied per lane). The per-arc
// lane mask front[u] therefore skips only no-op folds, and each lane's
// labels match its sequential exploration bit for bit.
func (e *ExplorationBatch) Step() bool {
	a, sc, k := e.a, e.sc, e.k
	n := a.N
	var work []int32 // nil ⇒ dense round over all n vertices
	var scanned int64
	if e.opts.ForceDense || float64(e.frontArcs) > e.denseFrac*float64(e.arcs) {
		scanned = e.arcs
		e.stats.DenseRounds++
	} else {
		markArcs := e.frontArcs
		sc.scan.Reset(n)
		sc.scan.MarkNeighbors(a, sc.frontList, false)
		var scanArcs int64
		sc.work, scanArcs = sc.scan.Collect(a, sc.work[:0])
		work = sc.work
		scanned = markArcs + scanArcs
		e.stats.SparseRounds++
	}
	count := n
	if work != nil {
		count = len(work)
	}
	dist, parent, parc := sc.dist, sc.parent, sc.parc
	wdist, wpar, warc, wmask, front := sc.wdist, sc.wpar, sc.warc, sc.wmask, sc.front
	par.ForChunk(count, func(lo, hi int) {
		// Per-lane fold registers, lazily loaded per vertex under `seen`
		// so untouched lanes cost nothing.
		var bd [MaxBatch]float64
		var bp, ba [MaxBatch]int32
		for i := lo; i < hi; i++ {
			v := int32(i)
			if work != nil {
				v = work[i]
			}
			vb := int(v) * k
			var seen, chg uint64
			for arc := a.Off[v]; arc < a.Off[v+1]; arc++ {
				u := a.Nbr[arc]
				m := front[u]
				if m == 0 {
					continue
				}
				ub := int(u) * k
				w := a.Wt[arc]
				for ; m != 0; m &= m - 1 {
					l := bits.TrailingZeros64(m)
					bit := uint64(1) << uint(l)
					if seen&bit == 0 {
						seen |= bit
						bd[l], bp[l], ba[l] = dist[vb+l], parent[vb+l], parc[vb+l]
					}
					if d := dist[ub+l] + w; d < bd[l] || (d == bd[l] && (u < bp[l] || (u == bp[l] && arc < ba[l]))) {
						bd[l], bp[l], ba[l] = d, u, arc
						chg |= bit
					}
				}
			}
			wmask[i] = chg
			if chg != 0 {
				wb := i * k
				for m := chg; m != 0; m &= m - 1 {
					l := bits.TrailingZeros64(m)
					wdist[wb+l], wpar[wb+l], warc[wb+l] = bd[l], bp[l], ba[l]
				}
			}
		}
	})
	// Sequential commit: retire the old frontier words, install the staged
	// labels, and rebuild the frontier in scan order (sorted for sparse
	// rounds, vertex order for dense rounds — deterministic either way).
	for _, v := range sc.frontList {
		front[v] = 0
	}
	newFront := sc.frontList[:0]
	var fa int64
	var changedLanes uint64
	for i := 0; i < count; i++ {
		m := wmask[i]
		if m == 0 {
			continue
		}
		v := int32(i)
		if work != nil {
			v = work[i]
		}
		front[v] = m
		changedLanes |= m
		newFront = append(newFront, v)
		fa += int64(a.Off[v+1] - a.Off[v])
		wb, vb := i*k, int(v)*k
		for ; m != 0; m &= m - 1 {
			l := bits.TrailingZeros64(m)
			dist[vb+l], parent[vb+l], parc[vb+l] = wdist[wb+l], wpar[wb+l], warc[wb+l]
		}
	}
	sc.frontList = newFront
	e.frontArcs = fa
	e.rounds++
	e.stats.ScannedArcs += scanned
	e.opts.Tracker.Rounds(1, scanned)
	// A lane converges the round its frontier empties — the same round its
	// sequential exploration would return false from Step.
	for m := e.live &^ changedLanes; m != 0; m &= m - 1 {
		l := bits.TrailingZeros64(m)
		e.lane[l].Rounds = e.rounds
		e.lane[l].Converged = true
	}
	e.live &= changedLanes
	return changedLanes != 0
}

// Finish detaches the per-lane Results, publishes the batch's Stats to
// the configured Counters (one exploration, k BatchedSeeds), and releases
// the pooled scratch. Idempotent; the batch must not be stepped
// afterwards. Per-lane Result.Stats stay zero — the scanned-arc cost of a
// batch is shared and reported once, not attributed per lane.
func (e *ExplorationBatch) Finish() []*Result {
	if e.sc == nil {
		return e.lane
	}
	sc, k := e.sc, e.k
	n := e.a.N
	for m := e.live; m != 0; m &= m - 1 {
		e.lane[bits.TrailingZeros64(m)].Rounds = e.rounds
	}
	for l := 0; l < k; l++ {
		e.lane[l].Dist = make([]float64, n)
		e.lane[l].Parent = make([]int32, n)
		e.lane[l].ParentArc = make([]int32, n)
	}
	lane, dist, parent, parc := e.lane, sc.dist, sc.parent, sc.parc
	par.ForChunk(n, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			vb := v * k
			for l := 0; l < k; l++ {
				lane[l].Dist[v] = dist[vb+l]
				lane[l].Parent[v] = parent[vb+l]
				lane[l].ParentArc[v] = parc[vb+l]
			}
		}
	})
	// Restore the all-zero front invariant before pooling.
	for _, v := range sc.frontList {
		sc.front[v] = 0
	}
	sc.frontList = sc.frontList[:0]
	e.stats.BatchedSeeds = int64(k)
	e.opts.Counters.Add(e.stats)
	batchScratchPool.Put(sc)
	e.sc = nil
	return e.lane
}

// Stats returns the shared accounting of the batch so far (final after
// Finish).
func (e *ExplorationBatch) Stats() Stats { return e.stats }

// RunBatch runs up to maxRounds synchronous rounds for every source and
// returns one Result per source, each bit-identical to
// Run(a, []int32{sources[i]}, maxRounds, opts). Sources are processed in
// chunks of MaxBatch lanes; an empty source list returns an empty slice.
// Safe for concurrent use like Run: the adjacency is only read and all
// mutable state is pooled or freshly allocated per call.
func RunBatch(a *adj.Adj, sources []int32, maxRounds int, opts Options) []*Result {
	out := make([]*Result, 0, len(sources))
	for lo := 0; lo < len(sources); lo += MaxBatch {
		hi := min(lo+MaxBatch, len(sources))
		e, err := StartBatch(a, sources[lo:hi], opts)
		if err != nil {
			panic(err) // unreachable: chunks are 1..MaxBatch lanes
		}
		for e.rounds < maxRounds {
			if !e.Step() {
				break
			}
		}
		out = append(out, e.Finish()...)
	}
	return out
}
