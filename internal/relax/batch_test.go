package relax

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/adj"
	"repro/internal/par"
	"repro/internal/testkit"
)

// spreadSources picks k deterministic, roughly equally spaced sources in
// [0, n) — duplicates appear when k > n, which the kernel must tolerate.
func spreadSources(n, k int) []int32 {
	out := make([]int32, k)
	for i := range out {
		out[i] = int32((i * 131) % n)
	}
	return out
}

// TestRunBatchBitIdenticalToSequential is the batched kernel's central
// property: per lane, RunBatch reproduces the sequential Run bit for bit —
// labels, parents, arcs, per-lane round counts and convergence flags —
// across graph families, worker counts {1,2,8}, batch sizes {1,7,64},
// round budgets, and kernel forcing options.
func TestRunBatchBitIdenticalToSequential(t *testing.T) {
	old := par.Workers()
	defer par.SetWorkers(old)
	opts := []struct {
		name string
		o    Options
	}{
		{"adaptive", Options{}},
		{"dense", Options{ForceDense: true}},
		{"sparse", Options{DenseFraction: 1.5}},
	}
	for seed := int64(0); seed < 2; seed++ {
		for _, gc := range propertyGraphs(seed) {
			a := adj.Build(gc.G, nil)
			n := gc.G.N
			for _, k := range []int{1, 7, 64} {
				sources := spreadSources(n, k)
				for _, budget := range []int{3, n} {
					for _, oc := range opts {
						want := make([]*Result, k)
						for i, s := range sources {
							want[i] = Run(a, []int32{s}, budget, oc.o)
						}
						for _, workers := range []int{1, 2, 8} {
							par.SetWorkers(workers)
							got := RunBatch(a, sources, budget, oc.o)
							if len(got) != k {
								t.Fatalf("%s/%s: %d lanes, want %d", gc.Name, oc.name, len(got), k)
							}
							for i := range got {
								label := fmt.Sprintf("%s/%s/k=%d/budget=%d/w=%d/lane=%d",
									gc.Name, oc.name, k, budget, workers, i)
								sameResult(t, label, got[i], want[i])
							}
						}
					}
				}
			}
		}
	}
}

// TestRunBatchChunksLargeSourceLists pins the >MaxBatch path: 150 sources
// split into three chunks, every lane still sequential-identical.
func TestRunBatchChunksLargeSourceLists(t *testing.T) {
	g := testkit.Grid(288, 3)
	a := adj.Build(g, nil)
	sources := spreadSources(g.N, 150)
	got := RunBatch(a, sources, g.N, Options{})
	if len(got) != len(sources) {
		t.Fatalf("%d lanes, want %d", len(got), len(sources))
	}
	for i, s := range sources {
		sameResult(t, fmt.Sprintf("lane %d", i), got[i], Run(a, []int32{s}, g.N, Options{}))
	}
}

// TestRunBatchCounters pins the shared-traversal accounting contract: a
// k-lane batch is one exploration with BatchedSeeds = k, and its scanned
// arcs are charged once, not per lane.
func TestRunBatchCounters(t *testing.T) {
	g := testkit.Grid(288, 5)
	a := adj.Build(g, nil)
	var ctr Counters
	RunBatch(a, spreadSources(g.N, 64), g.N, Options{Counters: &ctr})
	snap := ctr.Snapshot()
	if snap.Explorations != 1 {
		t.Fatalf("explorations = %d, want 1 (one batch)", snap.Explorations)
	}
	if snap.BatchedSeeds != 64 {
		t.Fatalf("batched seeds = %d, want 64", snap.BatchedSeeds)
	}
	if snap.ScannedArcs <= 0 {
		t.Fatalf("scanned arcs = %d, want > 0", snap.ScannedArcs)
	}
	// 150 sources → chunks of 64+64+22.
	ctr = Counters{}
	RunBatch(a, spreadSources(g.N, 150), g.N, Options{Counters: &ctr})
	snap = ctr.Snapshot()
	if snap.Explorations != 3 || snap.BatchedSeeds != 150 {
		t.Fatalf("explorations/seeds = %d/%d, want 3/150", snap.Explorations, snap.BatchedSeeds)
	}
}

// TestBatchArcReductionOnGrid asserts the headline perf claim at the
// accounting level, deterministically: on the grid family a 64-seed batch
// scans at least 4× fewer arcs than 64 sequential explorations. The
// sources are an 8×8 block — the coalesced-serve / ETA-matrix shape,
// where the 64 waves expand nearly in lock-step so each shared traversal
// serves many lanes. (Widely spread seeds are the honest caveat: their
// waves pass each vertex at 64 different rounds, so the measured
// reduction there is only ~1.7×; the bench reports both.)
func TestBatchArcReductionOnGrid(t *testing.T) {
	g := testkit.Grid(128*128, 7)
	a := adj.Build(g, nil)
	var sources []int32
	for r := 60; r < 68; r++ {
		for c := 60; c < 68; c++ {
			sources = append(sources, int32(r*128+c))
		}
	}

	var seq Counters
	for _, s := range sources {
		Run(a, []int32{s}, g.N, Options{Counters: &seq})
	}
	var bat Counters
	RunBatch(a, sources, g.N, Options{Counters: &bat})

	seqArcs := seq.Snapshot().ScannedArcs
	batArcs := bat.Snapshot().ScannedArcs
	if batArcs <= 0 || seqArcs <= 0 {
		t.Fatalf("degenerate accounting: seq=%d bat=%d", seqArcs, batArcs)
	}
	if ratio := float64(seqArcs) / float64(batArcs); ratio < 4 {
		t.Fatalf("grid arc reduction %.2fx (seq %d, batched %d), want ≥ 4x",
			ratio, seqArcs, batArcs)
	}
}

// TestStartOffsetsLengthMismatch is the satellite regression: mismatched
// sources/offsets used to panic with an index error; now it is a typed
// error a serving process can map to a 4xx.
func TestStartOffsetsLengthMismatch(t *testing.T) {
	g := testkit.Grid(64, 1)
	a := adj.Build(g, nil)
	if _, err := StartOffsets(a, []int32{1, 2, 3}, []float64{0.5}, Options{}); !errors.Is(err, ErrLengthMismatch) {
		t.Fatalf("StartOffsets error = %v, want ErrLengthMismatch", err)
	}
	if _, err := RunOffsets(a, []int32{1}, nil, 8, Options{}); !errors.Is(err, ErrLengthMismatch) {
		t.Fatalf("RunOffsets error = %v, want ErrLengthMismatch", err)
	}
	if _, err := StartBatch(a, nil, Options{}); err == nil {
		t.Fatal("StartBatch accepted an empty batch")
	}
	if _, err := StartBatch(a, make([]int32, MaxBatch+1), Options{}); err == nil {
		t.Fatal("StartBatch accepted an oversized batch")
	}
}
