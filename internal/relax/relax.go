// Package relax is the deterministic relaxation engine every query-time
// exploration in this repository runs on: synchronous Bellman–Ford rounds
// over a G ∪ H adjacency (§3.4) with (distance, parent vertex, arc index)
// tie-breaking, so the labels — including the shortest-path forest — are
// schedule-independent.
//
// Two kernels compute bit-identical labels:
//
//   - the dense kernel rescans every vertex and every arc each round
//     (O(n+m) per round — the reference semantics);
//   - the frontier-sparse kernel rescans only N(F), the out-neighborhoods
//     of the vertices F whose label changed in the previous round.
//
// The frontier invariant that makes them interchangeable: a vertex's next
// label is fold(own label, {(Dist[u]+w, u, arc) : arc u→v}), where fold is
// the lexicographic minimum over (distance, parent, arc). fold is
// idempotent — folding an already-folded label against unchanged
// candidates returns it — so a label can change in round r+1 only if an
// in-neighbor's label changed in round r. Rescanning exactly N(F_r)
// therefore reproduces the dense round bit for bit.
//
// Each Exploration picks per round between the kernels
// (direction-optimizing, after Beamer et al.): when the frontier's arc
// count exceeds DenseFraction·m the dense scan is cheaper than frontier
// bookkeeping; when the wave narrows — high-diameter graphs, the last
// rounds before convergence — the sparse kernel skips almost all of the
// graph. All frontier bitsets and worklists are pooled, per-round change
// detection uses per-chunk flags (no shared atomic written per vertex),
// and the pram.Tracker is charged only for arcs actually scanned.
package relax

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/adj"
	"repro/internal/par"
	"repro/internal/pram"
)

// ErrLengthMismatch reports a sources/offsets length disagreement in
// StartOffsets/RunOffsets. It is a typed error (not a panic) because the
// lengths come from query payloads in the sharded serving path — a
// malformed request must not kill the process.
var ErrLengthMismatch = errors.New("relax: sources and offsets lengths differ")

// DefaultDenseFraction is the frontier-arc fraction of m above which a
// round runs the dense full-scan kernel.
const DefaultDenseFraction = 0.25

// Options configures an exploration. The zero value selects the adaptive
// dense/sparse engine with default thresholds and no instrumentation.
type Options struct {
	// Tracker, when non-nil, is charged one depth unit per round and work
	// equal to the arcs actually scanned that round.
	Tracker *pram.Tracker
	// Counters, when non-nil, accumulates this exploration's Stats at
	// Finish (atomically — shared across concurrent queries).
	Counters *Counters
	// ForceDense runs every round on the dense full-scan kernel: the
	// reference semantics the property tests compare the sparse kernel
	// against, and the exact behavior of the pre-engine bmf kernel.
	ForceDense bool
	// DenseFraction overrides DefaultDenseFraction. Values ≥ 1 keep every
	// round sparse; 0 selects the default.
	DenseFraction float64
}

// Stats describes the work one exploration actually performed.
type Stats struct {
	// ScannedArcs counts every arc the kernels traversed: m per dense
	// round; frontier marking plus scan-set relaxation per sparse round.
	ScannedArcs int64
	// DenseRounds and SparseRounds count rounds by kernel.
	DenseRounds  int64
	SparseRounds int64
	// BatchedSeeds is the number of source lanes this exploration carried:
	// 0 for the sequential kernels, 1..MaxBatch for an ExplorationBatch.
	// ScannedArcs of a batch is shared across all its lanes, so the
	// sequential-equivalent work is roughly ScannedArcs · BatchedSeeds.
	BatchedSeeds int64
}

// Result of one exploration.
type Result struct {
	// Dist[v] is the hop-bounded distance from the nearest source
	// (+Inf when unreached within the round budget).
	Dist []float64
	// Parent[v] is the predecessor on the discovered path (-1 at sources
	// and unreached vertices).
	Parent []int32
	// ParentArc[v] is the arc (index into the adjacency) connecting
	// Parent[v] to v, or -1. Its tag identifies graph vs hopset edges.
	ParentArc []int32
	// Rounds actually executed before convergence or the cap.
	Rounds int
	// Converged reports whether a fixed point was reached before the cap
	// (true ⇒ Dist is the exact unbounded distance in the explored graph).
	Converged bool
	// Stats is the scanned-arc/kernel accounting of this exploration.
	Stats Stats
}

// scratch holds the pooled per-exploration state: the dense double
// buffers, the sparse scan set and worklists, and the frontier lists.
// Result arrays are always freshly allocated — they escape to the caller
// (and into caches).
type scratch struct {
	// Dense kernel double buffers and per-vertex change flags.
	ndist   []float64
	nparent []int32
	nparc   []int32
	changed []bool
	// Sparse kernel scan set, worklist, and per-slot label buffers.
	scan  ScanSet
	work  []int32
	wdist []float64
	wpar  []int32
	warc  []int32
	wchg  []bool
	// Frontier: vertices whose label changed in the previous round.
	front []int32
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

func (sc *scratch) grow(n int) {
	if cap(sc.ndist) < n {
		sc.ndist = make([]float64, n)
		sc.nparent = make([]int32, n)
		sc.nparc = make([]int32, n)
		sc.changed = make([]bool, n)
		sc.wdist = make([]float64, n)
		sc.wpar = make([]int32, n)
		sc.warc = make([]int32, n)
		sc.wchg = make([]bool, n)
	}
	sc.ndist = sc.ndist[:n]
	sc.nparent = sc.nparent[:n]
	sc.nparc = sc.nparc[:n]
	sc.changed = sc.changed[:n]
	sc.wdist = sc.wdist[:n]
	sc.wpar = sc.wpar[:n]
	sc.warc = sc.warc[:n]
	sc.wchg = sc.wchg[:n]
}

// Exploration is an in-progress relaxation: Start it, Step it one
// synchronous round at a time, and Finish it to detach the Result and
// return the pooled scratch. The stepping surface is the seam callers
// with per-round logic (hop-budget searches, future sharded backends)
// plug into; Run covers the common run-to-budget case.
type Exploration struct {
	a         *adj.Adj
	opts      Options
	denseFrac float64
	arcs      int64 // total directed arcs m
	res       *Result
	sc        *scratch
	// frontArcs is the summed degree of the current frontier — the
	// dense/sparse decision input and the marking cost of the next
	// sparse round.
	frontArcs int64
}

// StartOffsets is Start with a per-source initial label: source i begins
// at offsets[i] instead of 0. Semantically the exploration behaves as if a
// virtual super-source were attached to every source by an edge of weight
// offsets[i] — the primitive sharded routers need to continue a search
// into a shard with the cost already paid to reach its boundary. Sources
// with a +Inf offset are skipped entirely (an unreachable boundary vertex
// seeds nothing); a vertex listed twice keeps its smallest offset.
// Offset sources keep Parent = -1, like ordinary sources.
// StartOffsets returns ErrLengthMismatch when the two slices disagree in
// length — checked before any scratch is acquired, so the error path
// leaks nothing.
func StartOffsets(a *adj.Adj, sources []int32, offsets []float64, opts Options) (*Exploration, error) {
	if len(sources) != len(offsets) {
		return nil, fmt.Errorf("%w: %d sources, %d offsets", ErrLengthMismatch, len(sources), len(offsets))
	}
	e := begin(a, opts)
	res, sc := e.res, e.sc
	for i, s := range sources {
		off := offsets[i]
		if math.IsInf(off, 1) {
			continue
		}
		if math.IsInf(res.Dist[s], 1) {
			sc.front = append(sc.front, s)
			e.frontArcs += int64(a.Off[s+1] - a.Off[s])
		}
		if off < res.Dist[s] {
			res.Dist[s] = off
		}
	}
	return e, nil
}

// RunOffsets is Run with per-source initial labels (see StartOffsets).
func RunOffsets(a *adj.Adj, sources []int32, offsets []float64, maxRounds int, opts Options) (*Result, error) {
	e, err := StartOffsets(a, sources, offsets, opts)
	if err != nil {
		return nil, err
	}
	for e.res.Rounds < maxRounds {
		if !e.Step() {
			break
		}
	}
	return e.Finish(), nil
}

// Start initializes an exploration from the given sources. The adjacency
// is only read; concurrent explorations over a shared adjacency are safe.
func Start(a *adj.Adj, sources []int32, opts Options) *Exploration {
	e := begin(a, opts)
	// The sources are the initial frontier: their labels "changed" at
	// initialization, so round 1 needs to rescan exactly their
	// neighborhoods.
	for _, s := range sources {
		e.res.Dist[s] = 0
		e.sc.front = append(e.sc.front, s)
		e.frontArcs += int64(a.Off[s+1] - a.Off[s])
	}
	return e
}

// begin allocates the result arrays and pooled scratch of an exploration
// with an empty frontier; Start/StartOffsets seed it.
func begin(a *adj.Adj, opts Options) *Exploration {
	n := a.N
	res := &Result{
		Dist:      make([]float64, n),
		Parent:    make([]int32, n),
		ParentArc: make([]int32, n),
	}
	for v := 0; v < n; v++ {
		res.Dist[v] = math.Inf(1)
		res.Parent[v] = -1
		res.ParentArc[v] = -1
	}
	sc := scratchPool.Get().(*scratch)
	sc.grow(n)
	e := &Exploration{
		a:         a,
		opts:      opts,
		denseFrac: opts.DenseFraction,
		arcs:      int64(a.Arcs()),
		res:       res,
		sc:        sc,
	}
	if e.denseFrac <= 0 {
		e.denseFrac = DefaultDenseFraction
	}
	sc.front = sc.front[:0]
	return e
}

// Dist exposes the current labels, read-only. The returned slice is only
// valid until the next Step: dense rounds commit by swapping the label
// arrays with pooled scratch, so callers with per-round logic must
// re-fetch it after every Step (Finish detaches the final arrays into
// the Result, which is safe to hold).
func (e *Exploration) Dist() []float64 { return e.res.Dist }

// Rounds returns the number of rounds executed so far.
func (e *Exploration) Rounds() int { return e.res.Rounds }

// Step executes one synchronous relaxation round and reports whether any
// label changed. A false return means a fixed point: further rounds
// cannot change anything, and Result.Converged is set.
func (e *Exploration) Step() bool {
	var changed bool
	var scanned int64
	if e.opts.ForceDense || float64(e.frontArcs) > e.denseFrac*float64(e.arcs) {
		changed, scanned = e.denseRound()
		e.res.Stats.DenseRounds++
	} else {
		changed, scanned = e.sparseRound()
		e.res.Stats.SparseRounds++
	}
	e.res.Rounds++
	e.res.Stats.ScannedArcs += scanned
	e.opts.Tracker.Rounds(1, scanned)
	if !changed {
		e.res.Converged = true
	}
	return changed
}

// Finish releases the pooled scratch, publishes Stats to the configured
// Counters, and returns the Result. Idempotent; the Exploration must not
// be stepped afterwards.
func (e *Exploration) Finish() *Result {
	if e.sc != nil {
		scratchPool.Put(e.sc)
		e.sc = nil
		e.opts.Counters.Add(e.res.Stats)
	}
	return e.res
}

// Run executes up to maxRounds synchronous rounds from the given sources
// over a and returns the labels. Run is safe for concurrent use: a is
// only read, and all mutable state is freshly allocated or pooled per
// call.
func Run(a *adj.Adj, sources []int32, maxRounds int, opts Options) *Result {
	e := Start(a, sources, opts)
	for e.res.Rounds < maxRounds {
		if !e.Step() {
			break
		}
	}
	return e.Finish()
}

// denseRound rescans every vertex. Change detection is per-vertex flags
// folded by the (sequential, cheap) frontier rebuild — no shared atomic
// is written from the parallel loop.
func (e *Exploration) denseRound() (bool, int64) {
	a, res, sc := e.a, e.res, e.sc
	n := a.N
	dist, parent, parc := res.Dist, res.Parent, res.ParentArc
	ndist, nparent, nparc, chg := sc.ndist, sc.nparent, sc.nparc, sc.changed
	par.ForChunk(n, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			bd, bp, ba := dist[v], parent[v], parc[v]
			for arc := a.Off[v]; arc < a.Off[v+1]; arc++ {
				u := a.Nbr[arc]
				if d := dist[u] + a.Wt[arc]; d < bd || (d == bd && (u < bp || (u == bp && arc < ba))) {
					bd, bp, ba = d, u, arc
				}
			}
			ndist[v], nparent[v], nparc[v] = bd, bp, ba
			chg[v] = bd != dist[v] || bp != parent[v] || ba != parc[v]
		}
	})
	// Commit by swapping the label arrays with the scratch buffers; the
	// Result keeps whichever arrays hold the final labels.
	res.Dist, sc.ndist = ndist, dist
	res.Parent, sc.nparent = nparent, parent
	res.ParentArc, sc.nparc = nparc, parc
	front := sc.front[:0]
	var fa int64
	for v := 0; v < n; v++ {
		if chg[v] {
			front = append(front, int32(v))
			fa += int64(a.Off[v+1] - a.Off[v])
		}
	}
	sc.front = front
	e.frontArcs = fa
	return len(front) > 0, e.arcs
}

// sparseRound rescans only the neighborhoods of the current frontier.
func (e *Exploration) sparseRound() (bool, int64) {
	a, res, sc := e.a, e.res, e.sc
	markArcs := e.frontArcs
	sc.scan.Reset(a.N)
	sc.scan.MarkNeighbors(a, sc.front, false)
	work, scanArcs := sc.scan.Collect(a, sc.work[:0])
	sc.work = work
	dist, parent, parc := res.Dist, res.Parent, res.ParentArc
	wdist, wpar, warc, wchg := sc.wdist, sc.wpar, sc.warc, sc.wchg
	par.ForChunk(len(work), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			v := work[i]
			bd, bp, ba := dist[v], parent[v], parc[v]
			for arc := a.Off[v]; arc < a.Off[v+1]; arc++ {
				u := a.Nbr[arc]
				if d := dist[u] + a.Wt[arc]; d < bd || (d == bd && (u < bp || (u == bp && arc < ba))) {
					bd, bp, ba = d, u, arc
				}
			}
			wdist[i], wpar[i], warc[i] = bd, bp, ba
			wchg[i] = bd != dist[v] || bp != parent[v] || ba != parc[v]
		}
	})
	// Commit in place (the parallel phase above only read the labels) and
	// build the next frontier in worklist order — sorted, deterministic.
	front := sc.front[:0]
	var fa int64
	for i, v := range work {
		if wchg[i] {
			dist[v], parent[v], parc[v] = wdist[i], wpar[i], warc[i]
			front = append(front, v)
			fa += int64(a.Off[v+1] - a.Off[v])
		}
	}
	sc.front = front
	e.frontArcs = fa
	return len(front) > 0, markArcs + scanArcs
}

// PathTo returns the vertex path from the nearest source to v along parent
// pointers, or nil if v is unreached.
func (r *Result) PathTo(v int32) []int32 {
	if math.IsInf(r.Dist[v], 1) {
		return nil
	}
	var rev []int32
	for cur := v; cur >= 0; cur = r.Parent[cur] {
		rev = append(rev, cur)
		if len(rev) > len(r.Dist) {
			return nil // cycle guard: cannot happen with positive weights
		}
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}
