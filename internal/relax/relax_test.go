package relax

import (
	"math"
	"testing"

	"repro/internal/adj"
	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/pram"
	"repro/internal/testkit"
)

// naiveRun is an independent reference implementation of the documented
// semantics — double-buffered full scans with (distance, parent, arc)
// tie-breaking — deliberately sharing no code with the engine, so an
// engine bug cannot hide inside its own reference.
func naiveRun(a *adj.Adj, sources []int32, maxRounds int) *Result {
	n := a.N
	res := &Result{
		Dist:      make([]float64, n),
		Parent:    make([]int32, n),
		ParentArc: make([]int32, n),
	}
	for v := 0; v < n; v++ {
		res.Dist[v] = math.Inf(1)
		res.Parent[v] = -1
		res.ParentArc[v] = -1
	}
	for _, s := range sources {
		res.Dist[s] = 0
	}
	nd := make([]float64, n)
	np := make([]int32, n)
	na := make([]int32, n)
	for round := 0; round < maxRounds; round++ {
		changed := false
		for v := 0; v < n; v++ {
			bd, bp, ba := res.Dist[v], res.Parent[v], res.ParentArc[v]
			for arc := a.Off[v]; arc < a.Off[v+1]; arc++ {
				u := a.Nbr[arc]
				d := res.Dist[u] + a.Wt[arc]
				if d < bd || (d == bd && (u < bp || (u == bp && arc < ba))) {
					bd, bp, ba = d, u, arc
				}
			}
			nd[v], np[v], na[v] = bd, bp, ba
			if bd != res.Dist[v] || bp != res.Parent[v] || ba != res.ParentArc[v] {
				changed = true
			}
		}
		copy(res.Dist, nd)
		copy(res.Parent, np)
		copy(res.ParentArc, na)
		res.Rounds = round + 1
		if !changed {
			res.Converged = true
			break
		}
	}
	return res
}

func sameResult(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if got.Rounds != want.Rounds || got.Converged != want.Converged {
		t.Fatalf("%s: rounds/converged %d/%v, want %d/%v",
			label, got.Rounds, got.Converged, want.Rounds, want.Converged)
	}
	for v := range want.Dist {
		if got.Dist[v] != want.Dist[v] || got.Parent[v] != want.Parent[v] ||
			got.ParentArc[v] != want.ParentArc[v] {
			t.Fatalf("%s: vertex %d label (%v,%d,%d), want (%v,%d,%d)",
				label, v, got.Dist[v], got.Parent[v], got.ParentArc[v],
				want.Dist[v], want.Parent[v], want.ParentArc[v])
		}
	}
}

// propertyGraphs builds the workload mix of the acceptance criteria from
// the shared deterministic testkit: random Gnm, grid, power-law, and a
// near-tree narrow-frontier adversary, across seeds.
func propertyGraphs(seed int64) []testkit.NamedGraph {
	return []testkit.NamedGraph{
		{Name: "gnm", G: testkit.Gnm(300, seed)},
		{Name: "grid", G: testkit.Grid(288, seed)},
		{Name: "powerlaw", G: testkit.Social(256, seed)},
		{Name: "sparse", G: testkit.Sparse(200, seed)},
	}
}

// TestSparseBitIdenticalToDense is the engine's central property: over
// random graph families, seeds, worker counts, source sets and round
// budgets, the adaptive and the always-sparse engines produce results
// bit-identical to the dense reference kernel (and to an independent
// naive implementation).
func TestSparseBitIdenticalToDense(t *testing.T) {
	old := par.Workers()
	defer par.SetWorkers(old)
	for seed := int64(0); seed < 3; seed++ {
		for _, gc := range propertyGraphs(seed) {
			a := adj.Build(gc.G, nil)
			n := gc.G.N
			sourceSets := [][]int32{
				{0},
				{int32(n / 2)},
				{0, int32(n - 1), int32(n / 3)},
				{int32(n - 1), int32(n - 1)}, // duplicates must be harmless
			}
			for _, srcs := range sourceSets {
				for _, budget := range []int{1, 3, n} {
					want := naiveRun(a, srcs, budget)
					for _, workers := range []int{1, 4} {
						par.SetWorkers(workers)
						dense := Run(a, srcs, budget, Options{ForceDense: true})
						sparse := Run(a, srcs, budget, Options{DenseFraction: 1.5})
						adaptive := Run(a, srcs, budget, Options{})
						label := func(kind string) string {
							return gc.Name + "/" + kind
						}
						sameResult(t, label("dense-vs-naive"), dense, want)
						sameResult(t, label("sparse-vs-naive"), sparse, want)
						sameResult(t, label("adaptive-vs-naive"), adaptive, want)
						if sparse.Stats.DenseRounds != 0 {
							t.Fatalf("%s: always-sparse engine ran %d dense rounds",
								gc.Name, sparse.Stats.DenseRounds)
						}
					}
				}
			}
		}
	}
}

// TestSparseScansFewerArcs checks the point of the engine: on a
// high-diameter (narrow-frontier) workload the sparse kernel scans far
// fewer arcs than the dense reference.
func TestSparseScansFewerArcs(t *testing.T) {
	g := graph.Grid(48, 48, graph.UniformWeights(1, 3), 7)
	a := adj.Build(g, nil)
	dense := Run(a, []int32{0}, g.N, Options{ForceDense: true})
	sparse := Run(a, []int32{0}, g.N, Options{})
	sameResult(t, "grid", sparse, dense)
	if sparse.Stats.ScannedArcs*2 > dense.Stats.ScannedArcs {
		t.Fatalf("sparse scanned %d arcs, dense %d — want ≥2× fewer",
			sparse.Stats.ScannedArcs, dense.Stats.ScannedArcs)
	}
}

func TestExplorationStepping(t *testing.T) {
	g := graph.Path(30, graph.UnitWeights(), 1)
	a := adj.Build(g, nil)
	e := Start(a, []int32{0}, Options{})
	steps := 0
	for e.Step() {
		steps++
		if d := e.Dist(); d[steps] != float64(steps) {
			t.Fatalf("after %d steps, dist[%d]=%v", steps, steps, d[steps])
		}
	}
	res := e.Finish()
	if !res.Converged || res.Rounds != steps+1 {
		t.Fatalf("converged=%v rounds=%d steps=%d", res.Converged, res.Rounds, steps)
	}
	if res.Dist[29] != 29 {
		t.Fatalf("dist[29]=%v", res.Dist[29])
	}
	// Finish is idempotent and Counters see exactly one exploration.
	if again := e.Finish(); again != res {
		t.Fatal("Finish not idempotent")
	}
}

func TestCountersAccumulate(t *testing.T) {
	g := graph.Grid(12, 12, graph.UnitWeights(), 3)
	a := adj.Build(g, nil)
	var c Counters
	for i := 0; i < 3; i++ {
		Run(a, []int32{int32(i)}, g.N, Options{Counters: &c})
	}
	s := c.Snapshot()
	if s.Explorations != 3 || s.ScannedArcs == 0 || s.DenseRounds+s.SparseRounds == 0 {
		t.Fatalf("counters: %+v", s)
	}
	// A nil Counters must be a no-op.
	var nilc *Counters
	nilc.Add(Stats{ScannedArcs: 1})
	if got := nilc.Snapshot(); got != (CounterSnapshot{}) {
		t.Fatalf("nil counters: %+v", got)
	}
}

func TestTrackerChargesScannedArcs(t *testing.T) {
	g := graph.Grid(20, 20, graph.UnitWeights(), 1)
	a := adj.Build(g, nil)
	tr := pram.New()
	res := Run(a, []int32{0}, g.N, Options{Tracker: tr})
	c := tr.Snapshot()
	if c.Depth != int64(res.Rounds) {
		t.Fatalf("depth %d != rounds %d", c.Depth, res.Rounds)
	}
	if c.Work != res.Stats.ScannedArcs {
		t.Fatalf("work %d != scanned arcs %d", c.Work, res.Stats.ScannedArcs)
	}
}

func TestEmptySources(t *testing.T) {
	g := graph.Path(5, graph.UnitWeights(), 1)
	a := adj.Build(g, nil)
	for _, opts := range []Options{{}, {ForceDense: true}} {
		res := Run(a, nil, 10, opts)
		if !res.Converged {
			t.Fatal("empty-source run must converge immediately")
		}
		for v := range res.Dist {
			if !math.IsInf(res.Dist[v], 1) || res.Parent[v] != -1 {
				t.Fatalf("vertex %d: %v/%d", v, res.Dist[v], res.Parent[v])
			}
		}
	}
}

// FuzzSparseMatchesDense derives a small random graph and source set from
// the fuzz input and asserts bit-identical sparse/dense results.
func FuzzSparseMatchesDense(f *testing.F) {
	f.Add(int64(1), uint8(40), uint8(90), uint8(0))
	f.Add(int64(99), uint8(7), uint8(3), uint8(5))
	f.Add(int64(-5), uint8(200), uint8(255), uint8(128))
	f.Fuzz(func(t *testing.T, seed int64, nb, mb, sb uint8) {
		n := int(nb)%120 + 2
		m := int(mb) * 2
		g := graph.Gnm(n, m, graph.UniformWeights(1, 9), seed)
		a := adj.Build(g, nil)
		srcs := []int32{int32(int(sb) % n)}
		if sb%3 == 0 {
			srcs = append(srcs, int32(n-1))
		}
		want := Run(a, srcs, n, Options{ForceDense: true})
		got := Run(a, srcs, n, Options{DenseFraction: 1.5})
		sameResult(t, "fuzz", got, want)
	})
}

// TestRunOffsets checks the offset-seeded exploration against its virtual
// super-source semantics: RunOffsets(sources, offsets) must produce exactly
// the labels of Run on a graph with one extra vertex attached to every
// source by an edge of weight offsets[i] (distances shifted by nothing —
// the super-source is at distance 0), with +Inf offsets dropping their
// source and duplicate sources keeping the smallest offset.
func TestRunOffsets(t *testing.T) {
	g := testkit.Grid(144, 7)
	a := adj.Build(g, nil)

	// Reference: augmented graph with super-source s* = n.
	sources := []int32{3, 77, 140, 77}
	offsets := []float64{2.5, 0.75, math.Inf(1), 4.0}
	var aug []graph.Edge
	for _, e := range g.Edges {
		aug = append(aug, e)
	}
	super := int32(g.N)
	aug = append(aug, graph.E(3, super, 2.5), graph.E(77, super, 0.75))
	ga := graph.MustFromEdges(g.N+1, aug)
	ref := Run(adj.Build(ga, nil), []int32{super}, 4*g.N, Options{})

	got, err := RunOffsets(a, sources, offsets, 4*g.N, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Converged {
		t.Fatal("offset exploration did not converge")
	}
	for v := 0; v < g.N; v++ {
		if got.Dist[v] != ref.Dist[v] {
			t.Fatalf("vertex %d: offset dist %v, super-source dist %v", v, got.Dist[v], ref.Dist[v])
		}
	}
	// Offset sources stay parentless, like ordinary sources.
	if got.Parent[77] != -1 || got.Dist[77] != 0.75 {
		t.Fatalf("source 77: (dist,parent) = (%v,%d), want (0.75,-1)", got.Dist[77], got.Parent[77])
	}
	infRes, err := RunOffsets(a, []int32{5}, []float64{math.Inf(1)}, g.N, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(infRes.Dist[5], 1) {
		t.Fatal("+Inf offset seeded its source")
	}
}

// TestRunOffsetsDeterministic pins worker-count independence of the
// offset-seeded path, same discipline as the zero-offset engine.
func TestRunOffsetsDeterministic(t *testing.T) {
	defer par.SetWorkers(par.SetWorkers(1))
	g := testkit.Gnm(600, 11)
	a := adj.Build(g, nil)
	sources := []int32{0, 17, 599, 301}
	offsets := []float64{0, 3.25, 1.5, math.Inf(1)}
	want, err := RunOffsets(a, sources, offsets, 64, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 8} {
		par.SetWorkers(w)
		got, err := RunOffsets(a, sources, offsets, 64, Options{})
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, "offsets", got, want)
	}
}
