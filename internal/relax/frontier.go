package relax

import (
	"math/bits"
	"sync"
	"sync/atomic"

	"repro/internal/adj"
	"repro/internal/par"
)

// ScanSet is a reusable deterministic scan-set builder: a vertex bitset
// marked in parallel (idempotent atomic OR — the final set is independent
// of scheduling) and collected into a worklist sorted by vertex id. It is
// the shared frontier substrate of the relaxation kernels and of the
// limited-BFS explorations in the hopset build.
//
// A summary bitset (one bit per 64-vertex word) tracks which words are
// nonzero, so Reset and Collect cost is proportional to the marked words
// (plus Θ(n/4096) for the summary itself), not to n — narrow frontiers
// on huge graphs stay cheap.
type ScanSet struct {
	bits []uint64
	sum  []uint64 // sum[w>>6] bit w&63 set ⇔ bits[w] may be nonzero
}

// Reset clears the set and sizes it for n vertices.
func (s *ScanSet) Reset(n int) {
	words := (n + 63) / 64
	sumWords := (words + 63) / 64
	if cap(s.bits) < words {
		s.bits = make([]uint64, words)
		s.sum = make([]uint64, sumWords)
		return
	}
	if len(s.bits) != words {
		// Resizing exposes words the summary of the previous size did not
		// cover; clear everything once.
		s.bits = s.bits[:words]
		clear(s.bits)
		s.sum = append(s.sum[:0], make([]uint64, sumWords)...)
		return
	}
	// Clear only the words the summary says are dirty.
	for si, sw := range s.sum {
		base := si << 6
		for sw != 0 {
			s.bits[base+bits.TrailingZeros64(sw)] = 0
			sw &= sw - 1
		}
	}
	clear(s.sum)
}

// Mark adds v to the set. Safe for concurrent use; marking is idempotent.
func (s *ScanSet) Mark(v int32) {
	w, mask := v>>6, uint64(1)<<(uint(v)&63)
	if atomic.LoadUint64(&s.bits[w])&mask != 0 {
		return
	}
	if atomic.OrUint64(&s.bits[w], mask) == 0 {
		// This marker turned the word nonzero (the atomic OR serializes, so
		// exactly one does): record it in the summary.
		atomic.OrUint64(&s.sum[w>>6], uint64(1)<<(uint(w)&63))
	}
}

// MarkNeighbors marks every neighbor of every frontier vertex (and, when
// includeSelf is set, the frontier vertices themselves). The scan set it
// produces is exactly the vertices whose round-(r+1) state can differ
// from their round-r state when frontier is the set of round-r changes.
func (s *ScanSet) MarkNeighbors(a *adj.Adj, frontier []int32, includeSelf bool) {
	par.ForChunk(len(frontier), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			u := frontier[i]
			if includeSelf {
				s.Mark(u)
			}
			for arc := a.Off[u]; arc < a.Off[u+1]; arc++ {
				s.Mark(a.Nbr[arc])
			}
		}
	})
}

// Collect appends the marked vertices in increasing vertex order to dst
// and returns it together with their summed degree (the arcs a pull-style
// rescan of the set will traverse). The order — and therefore everything
// downstream — is independent of the marking schedule.
func (s *ScanSet) Collect(a *adj.Adj, dst []int32) ([]int32, int64) {
	var arcs int64
	for si, sw := range s.sum {
		sbase := si << 6
		for sw != 0 {
			wi := sbase + bits.TrailingZeros64(sw)
			sw &= sw - 1
			word := s.bits[wi]
			base := int32(wi) << 6
			for word != 0 {
				v := base + int32(bits.TrailingZeros64(word))
				word &= word - 1
				dst = append(dst, v)
				arcs += int64(a.Off[v+1] - a.Off[v])
			}
		}
	}
	return dst, arcs
}

var scanSetPool = sync.Pool{New: func() any { return new(ScanSet) }}

// GetScanSet returns a pooled ScanSet reset for n vertices.
func GetScanSet(n int) *ScanSet {
	s := scanSetPool.Get().(*ScanSet)
	s.Reset(n)
	return s
}

// PutScanSet returns a ScanSet to the pool.
func PutScanSet(s *ScanSet) { scanSetPool.Put(s) }

// Counters accumulates engine statistics across explorations. All methods
// are safe for concurrent use; a nil *Counters is valid and ignores Adds.
type Counters struct {
	explorations atomic.Int64
	scannedArcs  atomic.Int64
	denseRounds  atomic.Int64
	sparseRounds atomic.Int64
	batchedSeeds atomic.Int64
}

// Add folds one exploration's Stats into the counters. Safe on nil.
func (c *Counters) Add(st Stats) {
	if c == nil {
		return
	}
	c.explorations.Add(1)
	c.scannedArcs.Add(st.ScannedArcs)
	c.denseRounds.Add(st.DenseRounds)
	c.sparseRounds.Add(st.SparseRounds)
	c.batchedSeeds.Add(st.BatchedSeeds)
}

// CounterSnapshot is a point-in-time copy of a Counters.
type CounterSnapshot struct {
	Explorations int64
	ScannedArcs  int64
	DenseRounds  int64
	SparseRounds int64
	// BatchedSeeds sums the lane counts of batched explorations; sequential
	// explorations contribute 0, so BatchedSeeds/Explorations understates
	// mean batch occupancy when the workload mixes both.
	BatchedSeeds int64
}

// Snapshot returns the current totals. Safe on nil.
func (c *Counters) Snapshot() CounterSnapshot {
	if c == nil {
		return CounterSnapshot{}
	}
	return CounterSnapshot{
		Explorations: c.explorations.Load(),
		ScannedArcs:  c.scannedArcs.Load(),
		DenseRounds:  c.denseRounds.Load(),
		SparseRounds: c.sparseRounds.Load(),
		BatchedSeeds: c.batchedSeeds.Load(),
	}
}
