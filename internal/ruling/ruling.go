// Package ruling implements Algorithm 4 of the paper (Appendix B): the
// deterministic construction of a (3, 2·log n)-ruling set for a set W of
// clusters with respect to the virtual graph G̃ᵢ, following
// [AGLP89, SEW13, KMW18].
//
// The divide-and-conquer recursion of the paper partitions candidates by
// the bits of their IDs (the center vertex IDs, §1.5) from the most
// significant bit down; all invocations of one recursion level run in
// parallel, and knock-out explorations from different invocations are
// shared (Figure 9). Executed bottom-up, level h processes bit h−1: the
// surviving candidates whose bit is 0 knock out every surviving candidate
// with bit 1 within G̃ᵢ-distance 2. Lemma B.2 gives 3-separation; Lemma B.3
// gives the 2·log n ruling radius.
package ruling

import (
	"repro/internal/limbfs"
)

// Set computes a (3, 2·idBits)-ruling set for the candidate clusters W with
// respect to the virtual graph G̃ᵢ defined by the Explorer's thresholds
// (clusters adjacent iff boundary distance ≤ DistCap within HopCap hops).
//
// idBits must satisfy 2^idBits > max vertex ID; the paper uses exactly
// log₂ n bits (n a power of two). The result is sorted by cluster index and
// deterministic.
func Set(e *limbfs.Explorer, w []int32, idBits int) []int32 {
	if len(w) == 0 {
		return nil
	}
	surviving := make(map[int32]bool, len(w))
	for _, c := range w {
		surviving[c] = true
	}
	bit := func(c int32, b int) int {
		return int(e.Part.Centers[c]>>uint(b)) & 1
	}
	for h := 1; h <= idBits; h++ {
		b := h - 1
		var sources, targets []int32
		// Iterate in cluster-index order for determinism.
		for c := int32(0); int(c) < e.Part.Len(); c++ {
			if !surviving[c] {
				continue
			}
			if bit(c, b) == 0 {
				sources = append(sources, c)
			} else {
				targets = append(targets, c)
			}
		}
		if len(sources) == 0 || len(targets) == 0 {
			continue
		}
		// One shared knock-out exploration to depth 2 from all sources
		// (across all same-level recursive invocations, as in the paper).
		res := e.BFS(sources, 2)
		for _, c := range targets {
			if res.Origin[c] >= 0 && res.Pulse[c] >= 1 {
				delete(surviving, c)
			}
		}
	}
	out := make([]int32, 0, len(surviving))
	for c := int32(0); int(c) < e.Part.Len(); c++ {
		if surviving[c] {
			out = append(out, c)
		}
	}
	return out
}
