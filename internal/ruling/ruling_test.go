package ruling

import (
	"math"
	"testing"

	"repro/internal/adj"
	"repro/internal/cluster"
	"repro/internal/graph"
	"repro/internal/limbfs"
	"repro/internal/par"
)

func idBitsFor(n int) int {
	b := 0
	for v := 1; v < n; v <<= 1 {
		b++
	}
	if b == 0 {
		b = 1
	}
	return b
}

// virtualDist computes all-pairs BFS distances in the virtual graph G̃
// materialized from exact boundary distances.
func virtualDist(a *adj.Adj, p *cluster.Partition, hopCap int, distCap float64) [][]int {
	P := p.Len()
	bd := limbfs.Exact(a, p, hopCap, distCap)
	adjMat := make([][]bool, P)
	for i := range adjMat {
		adjMat[i] = make([]bool, P)
		for j := 0; j < P; j++ {
			adjMat[i][j] = i != j && bd[i][j] <= distCap
		}
	}
	dist := make([][]int, P)
	for s := 0; s < P; s++ {
		d := make([]int, P)
		for i := range d {
			d[i] = math.MaxInt32
		}
		d[s] = 0
		queue := []int{s}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for u := 0; u < P; u++ {
				if adjMat[v][u] && d[u] == math.MaxInt32 {
					d[u] = d[v] + 1
					queue = append(queue, u)
				}
			}
		}
		dist[s] = d
	}
	return dist
}

func checkRulingSet(t *testing.T, a *adj.Adj, p *cluster.Partition, hopCap int, distCap float64, w, q []int32, idBits int) {
	t.Helper()
	dist := virtualDist(a, p, hopCap, distCap)
	inQ := make(map[int32]bool)
	for _, c := range q {
		inQ[c] = true
	}
	// Q ⊆ W.
	inW := make(map[int32]bool)
	for _, c := range w {
		inW[c] = true
	}
	for _, c := range q {
		if !inW[c] {
			t.Fatalf("ruling cluster %d not in candidate set", c)
		}
	}
	// 3-separation: pairwise virtual distance ≥ 3 (Lemma B.2).
	for i := 0; i < len(q); i++ {
		for j := i + 1; j < len(q); j++ {
			if dist[q[i]][q[j]] < 3 {
				t.Fatalf("clusters %d,%d at virtual distance %d < 3", q[i], q[j], dist[q[i]][q[j]])
			}
		}
	}
	// Ruling: every W cluster within 2·idBits of some Q cluster (Lemma B.3).
	for _, c := range w {
		best := math.MaxInt32
		for _, r := range q {
			if dist[c][r] < best {
				best = dist[c][r]
			}
		}
		if best > 2*idBits {
			t.Fatalf("cluster %d at virtual distance %d > %d from ruling set", c, best, 2*idBits)
		}
	}
}

func TestRulingSetOnPath(t *testing.T) {
	n := 16
	g := graph.Path(n, graph.UnitWeights(), 1)
	a := adj.Build(g, nil)
	p := cluster.Singletons(n)
	e := &limbfs.Explorer{A: a, Part: p, HopCap: 1, DistCap: 1, X: 1}
	w := make([]int32, n)
	for i := range w {
		w[i] = int32(i)
	}
	q := Set(e, w, idBitsFor(n))
	if len(q) == 0 {
		t.Fatal("empty ruling set")
	}
	checkRulingSet(t, a, p, 1, 1, w, q, idBitsFor(n))
}

func TestRulingSetOnRandomGraphs(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		n := 64
		g := graph.Gnm(n, 160, graph.UniformWeights(1, 4), seed)
		a := adj.Build(g, nil)
		p := cluster.Singletons(n)
		hopCap, distCap := 3, 4.0
		e := &limbfs.Explorer{A: a, Part: p, HopCap: hopCap, DistCap: distCap, X: 1}
		// Candidates: even-indexed clusters.
		var w []int32
		for i := int32(0); int(i) < n; i += 2 {
			w = append(w, i)
		}
		q := Set(e, w, idBitsFor(n))
		if len(q) == 0 {
			t.Fatalf("seed %d: empty ruling set", seed)
		}
		checkRulingSet(t, a, p, hopCap, distCap, w, q, idBitsFor(n))
	}
}

func TestRulingSetEmptyCandidates(t *testing.T) {
	g := graph.Path(4, graph.UnitWeights(), 1)
	e := &limbfs.Explorer{A: adj.Build(g, nil), Part: cluster.Singletons(4), HopCap: 1, DistCap: 1, X: 1}
	if q := Set(e, nil, 2); q != nil {
		t.Fatalf("want nil, got %v", q)
	}
}

func TestRulingSetSingleCandidate(t *testing.T) {
	g := graph.Path(4, graph.UnitWeights(), 1)
	e := &limbfs.Explorer{A: adj.Build(g, nil), Part: cluster.Singletons(4), HopCap: 1, DistCap: 1, X: 1}
	q := Set(e, []int32{2}, 2)
	if len(q) != 1 || q[0] != 2 {
		t.Fatalf("got %v", q)
	}
}

func TestRulingSetDeterministicAcrossWorkers(t *testing.T) {
	old := par.Workers()
	defer par.SetWorkers(old)
	n := 128
	g := graph.Gnm(n, 400, graph.UniformWeights(1, 3), 9)
	a := adj.Build(g, nil)
	p := cluster.Singletons(n)
	w := make([]int32, n)
	for i := range w {
		w[i] = int32(i)
	}
	run := func() []int32 {
		e := &limbfs.Explorer{A: a, Part: p, HopCap: 2, DistCap: 3, X: 1}
		return Set(e, w, idBitsFor(n))
	}
	par.SetWorkers(1)
	ref := run()
	for _, wk := range []int{2, 8} {
		par.SetWorkers(wk)
		got := run()
		if len(got) != len(ref) {
			t.Fatalf("workers=%d: len %d vs %d", wk, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: %v vs %v", wk, got, ref)
			}
		}
	}
}

func TestRulingSetDenseClique(t *testing.T) {
	// In a clique every pair is virtually adjacent: the ruling set must be
	// a single cluster (3-separation forbids two).
	n := 32
	g := graph.Complete(n, graph.UnitWeights(), 1)
	a := adj.Build(g, nil)
	p := cluster.Singletons(n)
	e := &limbfs.Explorer{A: a, Part: p, HopCap: 1, DistCap: 1, X: 1}
	w := make([]int32, n)
	for i := range w {
		w[i] = int32(i)
	}
	q := Set(e, w, idBitsFor(n))
	if len(q) != 1 {
		t.Fatalf("clique ruling set size %d, want 1 (%v)", len(q), q)
	}
}
