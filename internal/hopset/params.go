// Package hopset implements the paper's primary contribution (§2–§3): the
// first deterministic PRAM construction of (1+ε, β)-hopsets with
// Õ(n^{1+1/κ}) edges per scale, built by superclustering-and-interconnection
// with ruling sets in place of random sampling.
package hopset

import (
	"errors"
	"fmt"
	"math"
)

// WeightMode selects how hopset edge weights are assigned.
type WeightMode int

const (
	// WeightTight assigns each hopset edge the length of the concrete path
	// in G_{k−1} discovered for it (the CDist of package limbfs). It never
	// underestimates the true distance (the soundness invariant of Lemmas
	// 2.3/2.9) and gives practically useful stretch at feasible scales.
	WeightTight WeightMode = iota
	// WeightStrict assigns the paper's closed-form weights verbatim:
	// superclustering edges get 2((1+ε_{k−1})δᵢ + 2Rᵢ)·log n (§2.1.1) and
	// interconnection edges get d^{(2β+1)}(C,C′) + 2Rᵢ.
	WeightStrict
)

func (m WeightMode) String() string {
	switch m {
	case WeightTight:
		return "tight"
	case WeightStrict:
		return "strict"
	}
	return fmt.Sprintf("WeightMode(%d)", int(m))
}

// RescaleMode selects how the target ε is divided among scales and phases
// (§3.4 "Rescaling").
type RescaleMode int

const (
	// RescaleScales divides ε across the ⌈log Λ⌉ distance scales
	// (ε′ = ε/(2λ), the ε″ = 2λε′ step of §3.4) but keeps the per-phase ε
	// at ε′. With tight weights the phase-level slack of the worst-case
	// analysis is not needed empirically; this is the practical default.
	RescaleScales RescaleMode = iota
	// RescaleNone uses ε directly everywhere; the multiplicative stretch
	// may accumulate to (1+ε)^λ.
	RescaleNone
	// RescaleStrict applies the paper's full rescaling including the
	// ε = ε′/(20·log n·(ℓ+1)) phase division. Thresholds become enormous;
	// meaningful only for tiny inputs or for inspecting the schedule.
	RescaleStrict
)

func (m RescaleMode) String() string {
	switch m {
	case RescaleScales:
		return "scales"
	case RescaleNone:
		return "none"
	case RescaleStrict:
		return "strict"
	}
	return fmt.Sprintf("RescaleMode(%d)", int(m))
}

// Params are the user-facing knobs of the construction (Theorem 3.7: ε, κ,
// ρ) plus implementation controls.
type Params struct {
	// Epsilon is the target stretch slack: the hopset guarantees
	// (1+Epsilon)-approximate β-hop distances. Must lie in (0, 1).
	Epsilon float64
	// Kappa (κ ≥ 2) controls size: each scale's hopset has ≲ n^{1+1/κ}
	// edges. Default 3.
	Kappa int
	// Rho (0 < ρ < 1/2) controls work: ~n^ρ processors per edge/vertex,
	// degree threshold n^ρ in the fixed-growth phases. Default 1/3.
	Rho float64
	// EffectiveBeta caps exploration hops (the hop budget 2β+1 uses this
	// β). 0 selects max(4, ⌈log₂ n⌉). The theoretical β of eq. (2) is
	// astronomically large at feasible n; see Schedule.TheoreticalBeta.
	EffectiveBeta int
	// Weights selects tight (default) or strict paper-formula edge weights.
	Weights WeightMode
	// Rescale selects the ε division strategy (default RescaleScales).
	Rescale RescaleMode
	// RecordPaths maintains the §4 memory property: every hopset edge
	// stores a realizing path in G ∪ H_{k−1}, enabling path reporting.
	RecordPaths bool
}

// Errors returned by Params.Validate.
var (
	ErrEpsilon = errors.New("hopset: Epsilon must be in (0,1)")
	ErrKappa   = errors.New("hopset: Kappa must be ≥ 2")
	ErrRho     = errors.New("hopset: Rho must be in (0, 1/2)")
)

// withDefaults returns p with zero fields replaced by defaults.
func (p Params) withDefaults() Params {
	if p.Kappa == 0 {
		p.Kappa = 3
	}
	if p.Rho == 0 {
		p.Rho = 1.0 / 3.0
	}
	return p
}

// Validate checks parameter ranges (after defaulting).
func (p Params) Validate() error {
	p = p.withDefaults()
	if !(p.Epsilon > 0 && p.Epsilon < 1) || math.IsNaN(p.Epsilon) {
		return fmt.Errorf("%w: got %v", ErrEpsilon, p.Epsilon)
	}
	if p.Kappa < 2 {
		return fmt.Errorf("%w: got %d", ErrKappa, p.Kappa)
	}
	if !(p.Rho > 0 && p.Rho < 0.5) {
		return fmt.Errorf("%w: got %v", ErrRho, p.Rho)
	}
	if p.EffectiveBeta < 0 {
		return errors.New("hopset: EffectiveBeta must be ≥ 0")
	}
	return nil
}

// Schedule is the derived parameter schedule for one input graph: phase
// counts, degree thresholds, scale range, hop budgets, and ε divisions.
type Schedule struct {
	N      int
	Lambda int // top scale index: λ = ⌈log₂ Λ⌉ − 1 (§2)
	K0     int // bottom scale index: k₀ = ⌊log₂ β⌋ (§2)

	Ell int   // ℓ = ⌊log₂ κρ⌋ + ⌈(κ+1)/(κρ)⌉ − 1 phases per scale (§2.1)
	I0  int   // last exponential-growth phase (⌊log₂ κρ⌋; −1 if κρ < 1)
	Deg []int // degᵢ per phase: n^{2^i/κ} then n^ρ (§2.1)

	Beta   int // effective hop parameter; hop budget is 2β+1
	IDBits int // bits in cluster IDs: ⌈log₂ n⌉ (Appendix B)

	// TheoreticalBeta is the hopbound of eq. (2)/(19) under the chosen
	// rescale mode, from the recurrence h₀ = 1,
	// hᵢ₊₁ = (1/ε+2)(hᵢ+1) + 2(i+1)+1 (Lemma 3.4), as a float because it
	// overflows int64 at practical parameters.
	TheoreticalBeta float64

	EpsScale float64 // ε′: per-scale stretch factor (1+ε_k) = (1+ε_{k−1})(1+ε′)
	EpsPhase float64 // ε used in the distance schedule δᵢ = α·(1/ε)^i

	// StretchBudget is the final multiplicative bound the schedule aims
	// for: (1+EpsScale)^{λ−k₀+1} − 1.
	StretchBudget float64
}

// NewSchedule derives the schedule for an n-vertex graph with aspect-ratio
// upper bound aspect under params p (which must validate).
func NewSchedule(n int, aspect float64, p Params) (*Schedule, error) {
	p = p.withDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if n < 2 {
		return nil, errors.New("hopset: need at least two vertices")
	}
	s := &Schedule{N: n}
	s.IDBits = log2ceil(n)
	if s.IDBits == 0 {
		s.IDBits = 1
	}

	kr := float64(p.Kappa) * p.Rho
	s.I0 = int(math.Floor(math.Log2(kr)))
	s.Ell = s.I0 + int(math.Ceil(float64(p.Kappa+1)/kr)) - 1
	if s.Ell < 1 {
		s.Ell = 1
	}
	if s.I0 < -1 {
		s.I0 = -1
	}

	s.Deg = make([]int, s.Ell+1)
	logN := float64(log2ceil(n))
	for i := 0; i <= s.Ell; i++ {
		var exp float64
		if i <= s.I0 {
			exp = math.Pow(2, float64(i)) / float64(p.Kappa) // n^{2^i/κ}
		} else {
			exp = p.Rho // n^ρ
		}
		d := int(math.Ceil(math.Pow(float64(n), exp)))
		if d < 2 {
			d = 2
		}
		s.Deg[i] = d
	}

	if aspect < 2 {
		aspect = 2
	}
	s.Lambda = int(math.Ceil(math.Log2(aspect))) - 1

	// ε division (§3.4). λ−k₀+1 scales are built, but k₀ depends on β
	// which depends on ε; use the total scale count λ+1 as the divisor —
	// it only makes the per-scale ε smaller (sound).
	scales := s.Lambda + 1
	if scales < 1 {
		scales = 1
	}
	switch p.Rescale {
	case RescaleNone:
		s.EpsScale = p.Epsilon
		s.EpsPhase = p.Epsilon
	case RescaleScales:
		s.EpsScale = p.Epsilon / (2 * float64(scales))
		// The phase ratio δᵢ₊₁/δᵢ = 1/ε controls segment counts and the
		// hopbound, not the accumulated stretch; dividing it across scales
		// would blow the hopbound up to (2λ/ε)^ℓ for no stretch benefit.
		// Use the caller's ε for the distance schedule.
		s.EpsPhase = p.Epsilon
	case RescaleStrict:
		s.EpsScale = p.Epsilon / (2 * float64(scales))
		s.EpsPhase = s.EpsScale / (20 * logN * float64(s.Ell+1))
	default:
		return nil, fmt.Errorf("hopset: unknown rescale mode %v", p.Rescale)
	}

	s.TheoreticalBeta = hopboundRecurrence(s.EpsPhase, s.Ell)

	s.Beta = p.EffectiveBeta
	if s.Beta == 0 {
		s.Beta = log2ceil(n)
		if s.Beta < 4 {
			s.Beta = 4
		}
	}
	if t := s.TheoreticalBeta; t < float64(s.Beta) {
		s.Beta = int(t)
		if s.Beta < 1 {
			s.Beta = 1
		}
	}
	s.K0 = log2floor(s.Beta)

	s.StretchBudget = math.Pow(1+s.EpsScale, float64(s.Lambda-s.K0+1)) - 1
	return s, nil
}

// hopboundRecurrence evaluates Lemma 3.4's recurrence h₀=1,
// hᵢ₊₁ = (1/ε+2)(hᵢ+1) + 2(i+1)+1, returning h_ℓ.
func hopboundRecurrence(eps float64, ell int) float64 {
	h := 1.0
	for i := 0; i < ell; i++ {
		h = (1/eps+2)*(h+1) + 2*float64(i+1) + 1
	}
	return h
}

// HopBudget returns the exploration hop cap 2β+1 (§2, Lemma 2.1).
func (s *Schedule) HopBudget() int { return 2*s.Beta + 1 }

// Alpha returns α, the base of the distance schedule δᵢ = α·(1/ε)^i for
// scale k.
//
// §2.1 states α = ℓ·2^{k+1}, but that is inconsistent with the rest of the
// paper: Lemma 2.8 infers d_G(Cu,Cv) ≤ 2^{k+1} from d ≤ δᵢ (so δᵢ ≤ 2^{k+1}
// for i < ℓ), and Corollary 3.5 rewrites the additive term
// 5·α·c(n)·(1/ε)^{ℓ−1} as 10·c(n)·2^k (so α·(1/ε)^{ℓ−1} = 2^{k+1}, up to
// the ℓ factor). The consistent schedule anchors the top at the scale
// width: δ_{ℓ−1} = ℓ·2^{k+1}, i.e. α = ℓ·2^{k+1}·ε^{ℓ−1}. With the literal
// α even δ₀ exceeds the scale width, every cluster is popular in phase 0
// and each scale degenerates to one giant supercluster, which breaks the
// hopbound at any feasible β (see DESIGN.md).
func (s *Schedule) Alpha(k int) float64 {
	ell := s.Ell
	if ell < 1 {
		ell = 1
	}
	return float64(ell) * math.Pow(2, float64(k+1)) * math.Pow(s.EpsPhase, float64(ell-1))
}

// Delta returns δᵢ = α·(1/ε)^i for scale k and phase i (§2.1).
func (s *Schedule) Delta(k, i int) float64 {
	return s.Alpha(k) * math.Pow(1/s.EpsPhase, float64(i))
}

// RBound returns the paper's worst-case radius bound Rᵢ for scale k:
// R₀ = 0, Rᵢ₊₁ = (2(1+εPrev)δᵢ + 4Rᵢ)·log n + Rᵢ (§2.1, Lemma 2.2).
func (s *Schedule) RBound(k, i int, epsPrev float64) float64 {
	logN := float64(log2ceil(s.N))
	if logN < 1 {
		logN = 1
	}
	r := 0.0
	for j := 0; j < i; j++ {
		r = (2*(1+epsPrev)*s.Delta(k, j)+4*r)*logN + r
	}
	return r
}

// SizeBound returns the per-scale size bound of eq. (9): n^{1+1/κ}.
func SizeBound(n, kappa int) float64 {
	return math.Pow(float64(n), 1+1/float64(kappa))
}

func log2ceil(n int) int {
	l := 0
	for v := 1; v < n; v <<= 1 {
		l++
	}
	return l
}

func log2floor(n int) int {
	l := -1
	for v := 1; v <= n; v <<= 1 {
		l++
	}
	return l
}
