package hopset

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/graph"
)

func roundTrip(t *testing.T, h *Hopset) *Hopset {
	t.Helper()
	var buf bytes.Buffer
	if err := Encode(&buf, h); err != nil {
		t.Fatal(err)
	}
	h2, err := Decode(&buf, h.G)
	if err != nil {
		t.Fatal(err)
	}
	return h2
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	g := graph.Gnm(80, 240, graph.UniformWeights(1, 4), 1)
	h := build(t, g, defaultParams())
	h2 := roundTrip(t, h)
	if len(h2.Edges) != len(h.Edges) {
		t.Fatalf("edges %d vs %d", len(h2.Edges), len(h.Edges))
	}
	for i := range h.Edges {
		if h.Edges[i] != h2.Edges[i] {
			t.Fatalf("edge %d: %+v vs %+v", i, h.Edges[i], h2.Edges[i])
		}
	}
	if h2.Params.Epsilon != h.Params.Epsilon || h2.Params.Kappa != 3 {
		t.Fatalf("params lost: %+v", h2.Params)
	}
}

func TestEncodeDecodeWithPaths(t *testing.T) {
	g := graph.Gnm(60, 180, graph.UniformWeights(1, 3), 2)
	h := build(t, g, Params{Epsilon: 0.25, RecordPaths: true})
	h2 := roundTrip(t, h)
	if len(h2.Paths) != len(h.Paths) {
		t.Fatalf("paths %d vs %d", len(h2.Paths), len(h.Paths))
	}
	for i := range h.Paths {
		if len(h.Paths[i]) != len(h2.Paths[i]) {
			t.Fatalf("path %d length differs", i)
		}
		for j := range h.Paths[i] {
			if h.Paths[i][j] != h2.Paths[i][j] {
				t.Fatalf("path %d step %d differs", i, j)
			}
		}
	}
	if err := h2.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsWrongGraph(t *testing.T) {
	g := graph.Gnm(50, 150, graph.UnitWeights(), 3)
	h := build(t, g, defaultParams())
	var buf bytes.Buffer
	if err := Encode(&buf, h); err != nil {
		t.Fatal(err)
	}
	other := graph.Path(49, graph.UnitWeights(), 1)
	if _, err := Decode(&buf, other); err == nil {
		t.Fatal("decode against a different graph accepted")
	}
}

func TestDecodeErrors(t *testing.T) {
	g := graph.Path(4, graph.UnitWeights(), 1)
	cases := []string{
		"",                               // no header
		"h 0 1 1 0 0 0",                  // edge before header
		"hopset 4 1 0.25 3",              // short header
		"hopset 9 0 0.25 3 0.33 0 0 0 0", // wrong n
		"hopset 4 2 0.25 3 0.33 0 0 0 0\nh 0 1 1 0 0 0",                  // wrong edge count
		"hopset 4 1 0.25 3 0.33 0 0 0 0\nh 0 1 1 0 0",                    // short edge
		"hopset 4 1 0.25 3 0.33 0 0 0 0\nx 0 1",                          // unknown record
		"hopset 4 0 0.25 3 0.33 0 0 0 0\np 0 1 1:1:-1",                   // path without RecordPaths
		"hopset 4 0 5.0 3 0.33 0 0 0 0",                                  // invalid params
		"hopset 4 0 0.25 3 0.33 0 0 0 0\nhopset 4 0 0.25 3 0.33 0 0 0 0", // dup header
	}
	for i, s := range cases {
		if _, err := Decode(strings.NewReader(s), g); err == nil {
			t.Errorf("case %d accepted: %q", i, s)
		}
	}
}

func TestDecodeValidatesPaths(t *testing.T) {
	// A corrupted memory path must be rejected by the post-decode Check.
	g := graph.Gnm(60, 180, graph.UniformWeights(1, 3), 4)
	h := build(t, g, Params{Epsilon: 0.25, RecordPaths: true})
	if h.Size() == 0 {
		t.Skip("empty hopset")
	}
	var buf bytes.Buffer
	if err := Encode(&buf, h); err != nil {
		t.Fatal(err)
	}
	// Corrupt the first path line's first step weight.
	s := buf.String()
	lines := strings.Split(s, "\n")
	for i, l := range lines {
		if strings.HasPrefix(l, "p ") {
			parts := strings.Fields(l)
			step := strings.Split(parts[3], ":")
			step[1] = "0.000001" // wrong weight
			parts[3] = strings.Join(step, ":")
			lines[i] = strings.Join(parts, " ")
			break
		}
	}
	if _, err := Decode(strings.NewReader(strings.Join(lines, "\n")), h.G); err == nil {
		t.Fatal("corrupted path accepted")
	}
}

func TestDecodeSkipsComments(t *testing.T) {
	g := graph.Path(4, graph.UnitWeights(), 1)
	in := "c hi\nhopset 4 1 0.25 3 0.33 0 0 0 0\nc mid\nh 0 3 3.5 2 0 1\n"
	h, err := Decode(strings.NewReader(in), g)
	if err != nil {
		t.Fatal(err)
	}
	if h.Size() != 1 || h.Edges[0].W != 3.5 || h.Edges[0].Kind != Interconnection {
		t.Fatalf("decoded %+v", h.Edges)
	}
}
