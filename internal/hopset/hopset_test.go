package hopset

import (
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/adj"
	"repro/internal/bmf"
	"repro/internal/exact"
	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/pram"
	"repro/internal/testkit"
)

func defaultParams() Params {
	return Params{Epsilon: 0.25}
}

func build(t *testing.T, g *graph.Graph, p Params) *Hopset {
	t.Helper()
	h, err := Build(g, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// checkSoundness verifies the no-shortcut invariant (Lemmas 2.3/2.9): no
// hopset edge is lighter than the true distance between its endpoints.
func checkSoundness(t *testing.T, h *Hopset) {
	t.Helper()
	byU := make(map[int32][]Edge)
	for _, e := range h.Edges {
		byU[e.U] = append(byU[e.U], e)
	}
	for u, edges := range byU {
		dist, _ := exact.DijkstraGraph(h.G, u)
		for _, e := range edges {
			if e.W < dist[e.V]-1e-9 {
				t.Fatalf("edge (%d,%d) w=%v below true distance %v (kind=%v scale=%d phase=%d)",
					e.U, e.V, e.W, dist[e.V], e.Kind, e.Scale, e.Phase)
			}
		}
	}
}

// approxBudget is the hop budget at which tests demand (1+ε)-approximate
// distances: one hop-cap worth of rounds per phase level plus slack. The
// theoretical hopbound β of eq. (2) is far larger; meeting the target within
// this much smaller budget is a strictly stronger empirical statement.
func approxBudget(h *Hopset) int {
	return h.Sched.HopBudget() * (h.Sched.Ell + 2)
}

// checkStretch verifies Theorem 3.8's inequality from a handful of sources:
// exact ≤ hop-limited distance in G∪H, and within approxBudget rounds the
// hop-limited distance is ≤ (1+ε)·exact. Returns the worst empirical
// hopbound over the sources.
func checkStretch(t *testing.T, h *Hopset, eps float64) (maxRounds int) {
	t.Helper()
	a := adj.Build(h.G, h.Extras())
	n := h.G.N
	budget := approxBudget(h)
	srcs := []int32{0, int32(n / 3), int32(n - 1)}
	for _, s := range srcs {
		exact, _ := exact.DijkstraGraph(h.G, s)
		// Lower bound (soundness of the union graph): even fully converged
		// distances in G∪H can never undershoot d_G.
		res := bmf.Run(a, []int32{s}, n+1, nil)
		for v := 0; v < n; v++ {
			if math.IsInf(exact[v], 1) {
				if !math.IsInf(res.Dist[v], 1) {
					t.Fatalf("source %d: vertex %d reachable via hopset but not in G", s, v)
				}
				continue
			}
			if res.Dist[v] < exact[v]-1e-9 {
				t.Fatalf("source %d vertex %d: hopset distance %v below exact %v", s, v, res.Dist[v], exact[v])
			}
		}
		// Upper bound within the hop budget.
		r := bmf.RoundsToApprox(a, []int32{s}, exact, eps, budget, nil)
		if r < 0 {
			t.Fatalf("source %d: (1+%v)-approximation not reached within %d rounds", s, eps, budget)
		}
		if r > maxRounds {
			maxRounds = r
		}
	}
	return maxRounds
}

func TestBuildSmallGraphs(t *testing.T) {
	// Small instances of the shared testkit families, including the
	// path/cycle hop-diameter adversaries.
	cases := []testkit.NamedGraph{
		{Name: "path64", G: testkit.Path(64)},
		{Name: "cycle50", G: testkit.Cycle(50, 2)},
		{Name: "grid8x8", G: testkit.Grid(64, 3)},
		{Name: "gnm", G: testkit.Gnm(96, 4)},
		{Name: "tree", G: testkit.Tree(80, 5)},
		{Name: "powerlaw", G: testkit.Social(90, 6)},
	}
	for _, c := range cases {
		t.Run(c.Name, func(t *testing.T) {
			h := build(t, c.G, defaultParams())
			if err := h.Check(); err != nil {
				t.Fatal(err)
			}
			checkSoundness(t, h)
			checkStretch(t, h, 0.25)
		})
	}
}

// TestBuildCtxProgressAndCancel covers the registry-facing build seam:
// per-scale progress reports and cooperative cancellation.
func TestBuildCtxProgressAndCancel(t *testing.T) {
	g := testkit.Gnm(96, 21)
	var events []Progress
	h, err := BuildCtx(context.Background(), g, defaultParams(), nil, func(p Progress) {
		events = append(events, p)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no progress reports")
	}
	last := events[len(events)-1]
	if !last.Done || last.Scale != last.Lambda || last.Edges != h.Size() {
		t.Fatalf("final report %+v for hopset of %d edges", last, h.Size())
	}
	for i, p := range events {
		if p.K0 != h.Sched.K0 || p.Lambda != h.Sched.Lambda {
			t.Fatalf("report %d: range [%d,%d], want [%d,%d]", i, p.K0, p.Lambda, h.Sched.K0, h.Sched.Lambda)
		}
		if i > 0 && p.Scale != events[i-1].Scale+1 {
			t.Fatalf("reports out of order: %+v", events)
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := BuildCtx(ctx, g, defaultParams(), nil, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled build: %v", err)
	}
	// Cancel mid-build, from the first progress report.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	_, err = BuildCtx(ctx2, g, defaultParams(), nil, func(Progress) { cancel2() })
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-build cancel: %v", err)
	}
	if err == nil {
		t.Skip("single-scale schedule: build finished before the cancellation checkpoint")
	}
}

func TestStretchTightensWithEpsilon(t *testing.T) {
	g := graph.Gnm(128, 512, graph.UniformWeights(1, 5), 7)
	for _, eps := range []float64{0.5, 0.25, 0.1} {
		h := build(t, g, Params{Epsilon: eps})
		checkSoundness(t, h)
		checkStretch(t, h, eps)
	}
}

func TestSizeBound(t *testing.T) {
	// Theorem 3.7 / eq. (10): |H| ≤ ⌈log Λ⌉ · n^{1+1/κ}.
	for _, kappa := range []int{2, 3, 4} {
		g := graph.Gnm(256, 1024, graph.UniformWeights(1, 4), 9)
		h := build(t, g, Params{Epsilon: 0.25, Kappa: kappa, Rho: 0.49 / float64(kappa) * 2})
		lambda := float64(h.Sched.Lambda + 1)
		bound := lambda * SizeBound(g.N, kappa)
		if float64(h.Size()) > bound {
			t.Fatalf("κ=%d: size %d exceeds bound %.0f", kappa, h.Size(), bound)
		}
		// Per-scale bound, eq. (9).
		for k, cnt := range h.ScaleSizes() {
			if float64(cnt) > SizeBound(g.N, kappa) {
				t.Fatalf("κ=%d scale %d: %d edges exceed n^{1+1/κ}=%.0f", kappa, k, cnt, SizeBound(g.N, kappa))
			}
		}
	}
}

func TestDeterministicAcrossWorkers(t *testing.T) {
	old := par.Workers()
	defer par.SetWorkers(old)
	g := graph.Gnm(128, 512, graph.UniformWeights(1, 6), 11)
	par.SetWorkers(1)
	ref := build(t, g, defaultParams())
	for _, w := range []int{2, 8} {
		par.SetWorkers(w)
		h := build(t, g, defaultParams())
		if len(h.Edges) != len(ref.Edges) {
			t.Fatalf("workers=%d: %d edges vs %d", w, len(h.Edges), len(ref.Edges))
		}
		for i := range ref.Edges {
			if h.Edges[i] != ref.Edges[i] {
				t.Fatalf("workers=%d edge %d: %+v vs %+v", w, i, h.Edges[i], ref.Edges[i])
			}
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	g := graph.PowerLaw(100, 3, graph.UniformWeights(1, 3), 13)
	a := build(t, g, defaultParams())
	b := build(t, g, defaultParams())
	if len(a.Edges) != len(b.Edges) {
		t.Fatal("edge counts differ between runs")
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatalf("edge %d differs between runs", i)
		}
	}
}

func TestRecordPathsCheck(t *testing.T) {
	g := graph.Gnm(80, 240, graph.UniformWeights(1, 4), 15)
	h := build(t, g, Params{Epsilon: 0.25, RecordPaths: true})
	if err := h.Check(); err != nil {
		t.Fatal(err)
	}
	if h.Size() > 0 && h.MaxMemoryPathLen() == 0 {
		t.Fatal("paths recorded but max length 0")
	}
	// Tight weights must equal the memory-path weights exactly.
	for i, e := range h.Edges {
		if w := PathWeight(h.Paths[i]); math.Abs(w-e.W) > 1e-6*math.Max(1, e.W) {
			t.Fatalf("edge %d: weight %v but path weight %v", i, e.W, w)
		}
	}
	checkSoundness(t, h)
	checkStretch(t, h, 0.25)
}

func TestStrictWeights(t *testing.T) {
	g := graph.Gnm(64, 200, graph.UnitWeights(), 17)
	h := build(t, g, Params{Epsilon: 0.25, Weights: WeightStrict})
	checkSoundness(t, h) // strict weights are larger, still sound
	// Strict weights are never below tight weights for the same topology.
	ht := build(t, g, Params{Epsilon: 0.25, Weights: WeightTight})
	if h.Size() != ht.Size() {
		t.Fatalf("weight mode changed topology: %d vs %d edges", h.Size(), ht.Size())
	}
	for i := range h.Edges {
		if h.Edges[i].W < ht.Edges[i].W-1e-9 {
			t.Fatalf("edge %d: strict %v < tight %v", i, h.Edges[i].W, ht.Edges[i].W)
		}
	}
}

func TestNormalizationRoundTrip(t *testing.T) {
	// Weights scaled by 7: normalized graph has min weight 1 and distances
	// scale back via ScaleFactor.
	edges := []graph.Edge{graph.E(0, 1, 7), graph.E(1, 2, 14), graph.E(2, 3, 21)}
	g := graph.MustFromEdges(4, edges)
	h := build(t, g, defaultParams())
	if h.ScaleFactor != 7 {
		t.Fatalf("scale factor %v", h.ScaleFactor)
	}
	if w, _ := h.G.HasEdge(0, 1); w != 1 {
		t.Fatalf("normalized weight %v", w)
	}
}

func TestBuildErrors(t *testing.T) {
	g := graph.Path(10, graph.UnitWeights(), 1)
	if _, err := Build(g, Params{Epsilon: 0}, nil); err == nil {
		t.Fatal("epsilon 0 accepted")
	}
	if _, err := Build(g, Params{Epsilon: 1.5}, nil); err == nil {
		t.Fatal("epsilon > 1 accepted")
	}
	if _, err := Build(g, Params{Epsilon: 0.2, Kappa: 1}, nil); err == nil {
		t.Fatal("kappa 1 accepted")
	}
	if _, err := Build(g, Params{Epsilon: 0.2, Rho: 0.7}, nil); err == nil {
		t.Fatal("rho 0.7 accepted")
	}
	if _, err := Build(nil, Params{Epsilon: 0.2}, nil); err == nil {
		t.Fatal("nil graph accepted")
	}
	single := graph.MustFromEdges(1, nil)
	if _, err := Build(single, Params{Epsilon: 0.2}, nil); err == nil {
		t.Fatal("single-vertex graph accepted")
	}
}

func TestPhaseLedger(t *testing.T) {
	g := graph.Gnm(200, 800, graph.UniformWeights(1, 4), 19)
	h := build(t, g, defaultParams())
	if len(h.Stats) == 0 {
		t.Fatal("no phase stats recorded")
	}
	for _, st := range h.Stats {
		// Cluster accounting: superclustered + retired = clusters.
		if st.Superclustered+st.Retired != st.Clusters {
			t.Fatalf("scale %d phase %d: %d super + %d retired != %d clusters",
				st.Scale, st.Phase, st.Superclustered, st.Retired, st.Clusters)
		}
		if st.Popular > st.Clusters || st.Ruling > st.Popular {
			t.Fatalf("scale %d phase %d: popular=%d ruling=%d clusters=%d",
				st.Scale, st.Phase, st.Popular, st.Ruling, st.Clusters)
		}
		// Lemma 2.2: measured radius below the worst-case bound.
		if st.MaxRad > st.RBound+1e-9 && st.RBound > 0 {
			t.Fatalf("scale %d phase %d: radius %v exceeds bound %v",
				st.Scale, st.Phase, st.MaxRad, st.RBound)
		}
	}
}

func TestClusterDecay(t *testing.T) {
	// Within one scale, |Pᵢ₊₁| ≤ |Pᵢ| (Lemmas 2.6/2.7 imply strict decay
	// whenever superclusters form).
	g := graph.Gnm(300, 2000, graph.UnitWeights(), 21)
	h := build(t, g, defaultParams())
	byScale := make(map[int][]PhaseStats)
	for _, st := range h.Stats {
		byScale[st.Scale] = append(byScale[st.Scale], st)
	}
	for k, phases := range byScale {
		for j := 1; j < len(phases); j++ {
			if phases[j].Clusters > phases[j-1].Clusters {
				t.Fatalf("scale %d: clusters grew %d -> %d", k, phases[j-1].Clusters, phases[j].Clusters)
			}
		}
	}
}

func TestTrackerCharged(t *testing.T) {
	tr := pram.New()
	g := graph.Gnm(100, 300, graph.UnitWeights(), 23)
	if _, err := Build(g, defaultParams(), tr); err != nil {
		t.Fatal(err)
	}
	c := tr.Snapshot()
	if c.Depth == 0 || c.Work == 0 {
		t.Fatalf("tracker not charged: %v", c)
	}
}

func TestHopReduction(t *testing.T) {
	// The point of a hopset (§1.1): Bellman–Ford over G∪H converges in far
	// fewer rounds than over G on a high-diameter graph.
	g := graph.Path(256, graph.UnitWeights(), 1)
	h := build(t, g, Params{Epsilon: 0.3})
	plain := bmf.Run(adj.Build(g, nil), []int32{0}, g.N, nil)
	with := bmf.Run(adj.Build(h.G, h.Extras()), []int32{0}, g.N, nil)
	if !plain.Converged || !with.Converged {
		t.Fatal("BF did not converge")
	}
	if with.Rounds >= plain.Rounds {
		t.Fatalf("no hop reduction: %d rounds with hopset vs %d without", with.Rounds, plain.Rounds)
	}
}

func TestEmptyHopsetWhenGraphTiny(t *testing.T) {
	// With β ≥ diameter the bottom scale k₀ exceeds λ: no edges needed.
	g := graph.Path(8, graph.UnitWeights(), 1)
	h := build(t, g, Params{Epsilon: 0.25, EffectiveBeta: 64})
	if h.Size() != 0 {
		t.Fatalf("expected empty hopset for tiny graph, got %d edges", h.Size())
	}
	checkStretch(t, h, 0.25)
}
