package hopset

import (
	"fmt"
	"sort"

	"repro/internal/adj"
	"repro/internal/cluster"
	"repro/internal/limbfs"
	"repro/internal/ruling"
)

// builder holds the state of one scale's construction (§2.1).
type builder struct {
	h       *Hopset
	sched   *Schedule
	params  Params
	epsPrev float64 // ε_{k−1}: stretch of G_{k−1} (Lemma 3.6)
	k       int     // current scale

	a           *adj.Adj // G_{k−1} = G ∪ H_{k−1}
	extraGlobal []int32  // extra-edge index (in a) -> global hopset edge index
	part        *cluster.Partition
	centerDist  []float64    // per vertex: real distance to its cluster center
	memPath     [][]PathStep // per vertex: realizing path to its center (PR mode)
	retired     []bool       // Lemma 2.10 bookkeeping: vertex left in some U_j
	// exScratch is handed to every phase's explorer so the per-vertex
	// record lists of the limited-BFS engine are allocated once per build
	// instead of once per Detect/BFS call.
	exScratch *limbfs.Scratch
}

// buildScale runs the ℓ+1 phases of §2.1 for scale k, appending the edges
// of H_k to the hopset. prevLo/prevHi delimit H_{k−1} in h.Edges.
func (b *builder) buildScale(k, prevLo, prevHi int) error {
	g := b.h.G
	n := g.N
	b.k = k

	extras := make([]adj.Extra, 0, prevHi-prevLo)
	b.extraGlobal = b.extraGlobal[:0]
	for idx := prevLo; idx < prevHi; idx++ {
		e := b.h.Edges[idx]
		extras = append(extras, adj.Extra{U: e.U, V: e.V, W: e.W})
		b.extraGlobal = append(b.extraGlobal, int32(idx))
	}
	b.a = adj.Build(g, extras)
	b.part = cluster.Singletons(n)
	b.centerDist = make([]float64, n)
	b.retired = make([]bool, n)
	if b.params.RecordPaths {
		b.memPath = make([][]PathStep, n)
	}

	for i := 0; i <= b.sched.Ell && b.part.Len() > 0; i++ {
		st := PhaseStats{
			Scale: k, Phase: i,
			Clusters: b.part.Len(), Deg: b.sched.Deg[i],
			MinSuperSize: -1,
		}
		distCap := (1 + b.epsPrev) * b.sched.Delta(k, i)
		last := i == b.sched.Ell || b.part.Len() == 1

		if last {
			// Concluding phase (§2.1.2): superclustering is skipped and
			// every remaining cluster is interconnected with all of its
			// neighbors (U_ℓ = P_ℓ).
			if b.part.Len() > 1 {
				ex := b.explorer(distCap, b.part.Len())
				recs := ex.Detect()
				all := func(int32) bool { return true }
				b.interconnect(i, recs, all, &st)
			}
			b.retireAll(&st)
			b.h.Stats = append(b.h.Stats, st)
			break
		}

		ex := b.explorer(distCap, b.sched.Deg[i]+1)
		recs := ex.Detect()

		// Popular clusters: full record lists (Lemma A.3).
		var popular []int32
		for c := int32(0); int(c) < b.part.Len(); c++ {
			if len(recs[c]) == b.sched.Deg[i]+1 {
				popular = append(popular, c)
			}
		}
		st.Popular = len(popular)

		var super []bool
		var newPart *cluster.Partition
		if len(popular) > 0 {
			q := ruling.Set(ex, popular, b.sched.IDBits)
			st.Ruling = len(q)
			cov := ex.BFS(q, 2*b.sched.IDBits)
			// Lemma 2.4: every popular cluster must be covered.
			for _, c := range popular {
				if cov.Origin[c] < 0 {
					return fmt.Errorf("hopset: scale %d phase %d: popular cluster %d not superclustered (Lemma 2.4 violated)", k, i, c)
				}
			}
			var err error
			newPart, super, err = b.applySuperclusters(i, q, cov, &st)
			if err != nil {
				return err
			}
		} else {
			newPart = cluster.Empty(n)
			super = make([]bool, b.part.Len())
		}

		inU := func(c int32) bool { return !super[c] }
		b.interconnect(i, recs, inU, &st)
		for c := int32(0); int(c) < b.part.Len(); c++ {
			if !super[c] {
				st.Retired++
				b.retire(c)
			}
		}
		st.MaxRad = newPart.MaxRad()
		st.RBound = b.sched.RBound(k, i+1, b.epsPrev)
		b.h.Stats = append(b.h.Stats, st)
		b.part = newPart
	}
	return nil
}

// explorer builds the Algorithm 2 explorer for the current phase. All
// phases share the builder's exploration scratch: the frontier-sparse
// engine's record lists survive across Detect/BFS calls and phases.
func (b *builder) explorer(distCap float64, x int) *limbfs.Explorer {
	if b.exScratch == nil {
		b.exScratch = &limbfs.Scratch{}
	}
	return &limbfs.Explorer{
		A:           b.a,
		Part:        b.part,
		CenterDist:  b.centerDist,
		HopCap:      b.sched.HopBudget(),
		DistCap:     distCap,
		X:           x,
		RecordPaths: b.params.RecordPaths,
		Tracker:     b.h.tracker,
		Scratch:     b.exScratch,
	}
}

// applySuperclusters implements the superclustering step of §2.1.1: grows
// superclusters around the ruling clusters q from the coverage BFS cov,
// adds the superclustering edges, and maintains the cluster memory.
func (b *builder) applySuperclusters(i int, q []int32, cov *limbfs.BFSResult, st *PhaseStats) (*cluster.Partition, []bool, error) {
	P := b.part.Len()
	super := make([]bool, P)
	newIdxOf := make([]int32, P)
	for c := range newIdxOf {
		newIdxOf[c] = -1
	}
	newPart := cluster.Empty(b.part.N)
	newMembers := make([][]int32, len(q))
	absorbed := make([]int, len(q))
	for qi, c := range q {
		newIdxOf[c] = int32(qi)
	}

	// Process detected clusters in pulse order: when cluster c (detected by
	// a leg from predecessor F at pulse p) is handled, F's members already
	// carry memory paths to the new center r_root, so the discovery path
	// r_root → r_c is reverse(memPath[SeedV]) ++ leg ++ memPath[EndV].
	order := make([]int32, 0, P)
	for c := int32(0); int(c) < P; c++ {
		if cov.Origin[c] >= 0 {
			order = append(order, c)
		}
	}
	sort.Slice(order, func(x, y int) bool {
		if cov.Pulse[order[x]] != cov.Pulse[order[y]] {
			return cov.Pulse[order[x]] < cov.Pulse[order[y]]
		}
		return order[x] < order[y]
	})

	scWeightStrict := 2 * ((1+b.epsPrev)*b.sched.Delta(b.k, i) + 2*b.sched.RBound(b.k, i, b.epsPrev)) * float64(log2ceil(b.sched.N))

	for _, c := range order {
		root := cov.Origin[c]
		qi := newIdxOf[root]
		if qi < 0 {
			return nil, nil, fmt.Errorf("hopset: coverage origin %d is not a ruling cluster", root)
		}
		super[c] = true
		newMembers[qi] = append(newMembers[qi], b.part.Members[c]...)
		absorbed[qi]++
		if c == root {
			continue // the ruling cluster itself: no edge, memory unchanged
		}

		est := cov.Est[c]   // real r_root → r_c path length
		var full []PathStep // r_root → r_c
		if b.params.RecordPaths {
			leg := b.arcsToSteps(cov.SeedV[c], cov.LegPath[c])
			full = ConcatPaths(
				ReversePath(cov.SeedV[c], b.memPath[cov.SeedV[c]]),
				leg,
				b.memPath[cov.EndV[c]],
			)
		}

		w := est
		if b.params.Weights == WeightStrict {
			w = scWeightStrict
		}
		edge := Edge{
			U: b.part.Centers[c], V: b.part.Centers[root], W: w,
			Scale: int16(b.k), Phase: int8(i), Kind: Superclustering,
		}
		var path []PathStep
		if b.params.RecordPaths {
			path = ReversePath(b.part.Centers[root], full) // r_c → r_root
		}
		b.h.addEdge(edge, path)
		st.SCEdges++

		// Cluster memory (§4.3): members of c now reach the new center
		// r_root via r_c; distances grow by est. This must happen before
		// any pulse-(p+1) cluster whose leg seeds inside c is processed.
		for _, v := range b.part.Members[c] {
			b.centerDist[v] += est
			if b.params.RecordPaths {
				b.memPath[v] = ConcatPaths(b.memPath[v], path)
			}
		}
	}

	for qi, c := range q {
		members := newMembers[qi]
		sort.Slice(members, func(x, y int) bool { return members[x] < members[y] })
		var rad float64
		for _, v := range members {
			if b.centerDist[v] > rad {
				rad = b.centerDist[v]
			}
		}
		newPart.Add(b.part.Centers[c], members, rad)
		if st.MinSuperSize < 0 || absorbed[qi] < st.MinSuperSize {
			st.MinSuperSize = absorbed[qi]
		}
	}
	st.Superclustered = len(order)
	return newPart, super, nil
}

// interconnect implements §2.1.2: every cluster in U (selected by inU) adds
// edges from its center to the centers of its neighbors in U. Each
// unordered pair is added once, from the side with the smaller center ID
// (both sides hold complete neighbor lists — they are unpopular, Lemma A.3).
func (b *builder) interconnect(i int, recs [][]limbfs.Record, inU func(int32) bool, st *PhaseStats) {
	ri := b.sched.RBound(b.k, i, b.epsPrev)
	for c := int32(0); int(c) < b.part.Len(); c++ {
		if !inU(c) {
			continue
		}
		cu := b.part.Centers[c]
		for _, r := range recs[c] {
			if r.Src == c || !inU(r.Src) {
				continue
			}
			cv := b.part.Centers[r.Src]
			if cu >= cv {
				continue // the other side adds it
			}
			w := r.CDist
			if b.params.Weights == WeightStrict {
				w = r.BDist + 2*ri
			}
			edge := Edge{
				U: cu, V: cv, W: w,
				Scale: int16(b.k), Phase: int8(i), Kind: Interconnection,
			}
			var path []PathStep
			if b.params.RecordPaths {
				// Record r: cluster r.Src's exploration reached c; the leg
				// runs SeedV (∈ r.Src) → EndV (∈ c). The edge path must run
				// r_c → r_src: center → EndV, reversed leg, SeedV → center.
				leg := b.arcsToSteps(r.SeedV, r.Path)
				path = ConcatPaths(
					ReversePath(r.EndV, b.memPath[r.EndV]),
					ReversePath(r.SeedV, leg),
					b.memPath[r.SeedV],
				)
			}
			b.h.addEdge(edge, path)
			st.ICEdges++
		}
	}
}

// retire marks a cluster's vertices as left behind in Uᵢ, checking the
// partition invariant of Lemma 2.10 (no vertex retires twice).
func (b *builder) retire(c int32) {
	for _, v := range b.part.Members[c] {
		if b.retired[v] {
			panic(fmt.Sprintf("hopset: vertex %d retired twice (Lemma 2.10 violated)", v))
		}
		b.retired[v] = true
	}
}

func (b *builder) retireAll(st *PhaseStats) {
	for c := int32(0); int(c) < b.part.Len(); c++ {
		st.Retired++
		b.retire(c)
	}
}

// arcsToSteps converts a limbfs arc path starting at seed into PathSteps,
// mapping arc tags to global hopset edge indices.
func (b *builder) arcsToSteps(seed int32, arcs []int32) []PathStep {
	if len(arcs) == 0 {
		return nil
	}
	steps := make([]PathStep, len(arcs))
	for j, arc := range arcs {
		owner := b.arcOwner(arc)
		he := int32(-1)
		if idx, ok := adj.IsExtra(b.a.Tag[arc]); ok {
			he = b.extraGlobal[idx]
		}
		steps[j] = PathStep{To: owner, W: b.a.Wt[arc], HEdge: he}
	}
	// Sanity: the walk must start at seed (arc j's sender is the previous
	// vertex). Verified cheaply via the first arc.
	if b.a.Nbr[arcs[0]] != seed {
		panic(fmt.Sprintf("hopset: leg path does not start at seed %d", seed))
	}
	return steps
}

// arcOwner returns the vertex whose adjacency list contains the arc.
func (b *builder) arcOwner(arc int32) int32 {
	lo, hi := 0, b.a.N
	for lo < hi {
		mid := (lo + hi) / 2
		if b.a.Off[mid+1] > arc {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return int32(lo)
}
