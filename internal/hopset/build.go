package hopset

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/adj"
	"repro/internal/graph"
	"repro/internal/pram"
)

// Hopset is the output of the construction: H = ⋃_{k∈[k₀,λ]} H_k (§2),
// with provenance, optional memory paths (§4), and the per-phase ledger.
type Hopset struct {
	// G is the normalized input graph (minimum edge weight 1, §1.5);
	// ScaleFactor converts normalized distances back to input units.
	G           *graph.Graph
	ScaleFactor float64

	Params Params
	Sched  *Schedule

	Edges []Edge
	// Paths[i] is the realizing path of Edges[i] in G ∪ H_{<scale}
	// (RecordPaths mode; nil otherwise). Its weight never exceeds the
	// edge weight Edges[i].W — in WeightTight mode it equals it exactly —
	// and is never below the true distance between the endpoints.
	Paths [][]PathStep

	// EpsFinal is the accumulated per-scale stretch bound ε_λ (Lemma 3.6):
	// (1+EpsScale)^{#scales} − 1.
	EpsFinal float64

	// Assembled marks hopsets put together from externally built parts
	// (the Klein–Sairam reduction). Their schedule is not recoverable
	// from Params alone, so Encode refuses them and query engines must
	// not re-derive hop budgets for them.
	Assembled bool

	Stats []PhaseStats

	tracker *pram.Tracker
}

// Progress is one build-progress report: which scale of [K0, Lambda] the
// construction just finished and how many hopset edges exist so far. The
// final report of a successful build has Done set.
type Progress struct {
	// Scale is the scale index k whose H_k was just completed.
	Scale int
	// K0 and Lambda delimit the scale range, so (Scale−K0+1)/(Lambda−K0+1)
	// is the fraction of scales finished.
	K0, Lambda int
	// Edges is the hopset size after this scale.
	Edges int
	// Done marks the last report of a completed build.
	Done bool
}

// Build runs the full deterministic construction of Theorem 3.7 on g.
//
// The input must have at least 2 vertices; weights must be positive (they
// are normalized so the minimum is 1). The tracker may be nil.
func Build(g *graph.Graph, p Params, tr *pram.Tracker) (*Hopset, error) {
	return BuildCtx(context.Background(), g, p, tr, nil)
}

// BuildCtx is Build with cooperative cancellation and progress reporting:
// the context is checked between scales (the construction's natural
// checkpoints — each scale is one bounded unit of work), and progress,
// when non-nil, is called after every completed scale from the building
// goroutine. A canceled build returns ctx.Err() wrapped with the scale it
// stopped at; no partial hopset escapes.
func BuildCtx(ctx context.Context, g *graph.Graph, p Params, tr *pram.Tracker, progress func(Progress)) (*Hopset, error) {
	p = p.withDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if g == nil || g.N < 2 {
		return nil, errors.New("hopset: need a graph with at least two vertices")
	}
	ng, factor := g.Normalized()
	sched, err := NewSchedule(ng.N, ng.AspectRatioUpperBound(), p)
	if err != nil {
		return nil, err
	}
	h := &Hopset{
		G:           ng,
		ScaleFactor: factor,
		Params:      p,
		Sched:       sched,
		tracker:     tr,
	}
	if p.RecordPaths {
		h.Paths = [][]PathStep{}
	}
	b := &builder{h: h, sched: sched, params: p}

	prevLo, prevHi := 0, 0
	epsPrev := 0.0 // ε_{k₀−1} = 0 (§3.3)
	for k := sched.K0; k <= sched.Lambda; k++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("hopset: build canceled before scale %d: %w", k, err)
		}
		b.epsPrev = epsPrev
		lo := len(h.Edges)
		if err := b.buildScale(k, prevLo, prevHi); err != nil {
			return nil, err
		}
		prevLo, prevHi = lo, len(h.Edges)
		// Lemma 3.6 / Corollary 3.5: (1+ε_k) = (1+ε_{k−1})(1+ε′).
		epsPrev = (1+epsPrev)*(1+sched.EpsScale) - 1
		if progress != nil {
			progress(Progress{
				Scale: k, K0: sched.K0, Lambda: sched.Lambda,
				Edges: len(h.Edges), Done: k == sched.Lambda,
			})
		}
	}
	h.EpsFinal = epsPrev
	return h, nil
}

// Assemble constructs a Hopset from externally built parts. It is used by
// the Klein–Sairam reduction (Appendix C/D), which maps per-scale hopsets of
// contracted node graphs back onto the original vertices and adds star
// edges; the assembled value supports the same queries, checks and
// path-reporting machinery as a directly built hopset. The graph must
// already be normalized (minimum edge weight 1).
func Assemble(g *graph.Graph, sched *Schedule, p Params, scaleFactor float64, edges []Edge, paths [][]PathStep) *Hopset {
	return &Hopset{
		G:           g,
		ScaleFactor: scaleFactor,
		Params:      p.withDefaults(),
		Sched:       sched,
		Edges:       edges,
		Paths:       paths,
		Assembled:   true,
	}
}

// addEdge appends a hopset edge (and its memory path in RecordPaths mode)
// and returns its global index.
func (h *Hopset) addEdge(e Edge, path []PathStep) int32 {
	idx := int32(len(h.Edges))
	h.Edges = append(h.Edges, e)
	if h.Params.RecordPaths {
		h.Paths = append(h.Paths, path)
	}
	return idx
}

// Size returns the number of hopset edges.
func (h *Hopset) Size() int { return len(h.Edges) }

// Extras converts the hopset edges for use with package adj (queries run in
// G ∪ H, §3.4).
func (h *Hopset) Extras() []adj.Extra {
	out := make([]adj.Extra, len(h.Edges))
	for i, e := range h.Edges {
		out[i] = adj.Extra{U: e.U, V: e.V, W: e.W}
	}
	return out
}

// ScaleSizes returns, per scale index k, the number of edges H_k
// contributed (for checking eq. (9)/(10)).
func (h *Hopset) ScaleSizes() map[int]int {
	out := make(map[int]int)
	for _, e := range h.Edges {
		out[int(e.Scale)]++
	}
	return out
}

// KindCounts returns edge counts by provenance kind.
func (h *Hopset) KindCounts() map[Kind]int {
	out := make(map[Kind]int)
	for _, e := range h.Edges {
		out[e.Kind]++
	}
	return out
}

// Check verifies internal invariants: edge endpoints in range, positive
// weights, and (in RecordPaths mode) that every memory path runs between
// its edge's endpoints, only uses base-graph edges and hopset edges of
// strictly earlier scales, and weighs no more than the edge itself.
func (h *Hopset) Check() error {
	for i, e := range h.Edges {
		if e.U < 0 || int(e.U) >= h.G.N || e.V < 0 || int(e.V) >= h.G.N {
			return fmt.Errorf("edge %d: endpoint out of range", i)
		}
		if !(e.W > 0) {
			return fmt.Errorf("edge %d: non-positive weight %v", i, e.W)
		}
		if !h.Params.RecordPaths {
			continue
		}
		path := h.Paths[i]
		if len(path) == 0 {
			return fmt.Errorf("edge %d: empty memory path", i)
		}
		cur := e.U
		var w float64
		for _, s := range path {
			w += s.W
			if s.HEdge >= 0 {
				he := h.Edges[s.HEdge]
				if he.Scale >= e.Scale {
					return fmt.Errorf("edge %d (scale %d): memory path uses hopset edge %d of scale %d",
						i, e.Scale, s.HEdge, he.Scale)
				}
				if !((he.U == cur && he.V == s.To) || (he.V == cur && he.U == s.To)) {
					return fmt.Errorf("edge %d: step to %d does not match hopset edge %d", i, s.To, s.HEdge)
				}
				if he.W != s.W {
					return fmt.Errorf("edge %d: step weight %v != hopset edge weight %v", i, s.W, he.W)
				}
			} else {
				gw, ok := h.G.HasEdge(cur, s.To)
				if !ok {
					return fmt.Errorf("edge %d: step (%d,%d) is not a base-graph edge", i, cur, s.To)
				}
				if gw != s.W {
					return fmt.Errorf("edge %d: step weight %v != graph weight %v", i, s.W, gw)
				}
			}
			cur = s.To
		}
		if cur != e.V {
			return fmt.Errorf("edge %d: memory path ends at %d, want %d", i, cur, e.V)
		}
		if w > e.W*(1+1e-9) {
			return fmt.Errorf("edge %d: memory path weight %v exceeds edge weight %v", i, w, e.W)
		}
	}
	return nil
}

// MaxMemoryPathLen returns the longest memory path (the measured σ of
// eq. (20)); 0 when paths are not recorded.
func (h *Hopset) MaxMemoryPathLen() int {
	m := 0
	for _, p := range h.Paths {
		if len(p) > m {
			m = len(p)
		}
	}
	return m
}
