package hopset

import (
	"math"
	"testing"
	"testing/quick"
)

func mustSched(t *testing.T, n int, aspect float64, p Params) *Schedule {
	t.Helper()
	s, err := NewSchedule(n, aspect, p)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPhaseCountFormula(t *testing.T) {
	// ℓ = ⌊log₂ κρ⌋ + ⌈(κ+1)/(κρ)⌉ − 1 (§2.1).
	cases := []struct {
		kappa   int
		rho     float64
		wantEll int
		wantI0  int
	}{
		{3, 1.0 / 3.0, 3, 0}, // κρ=1: ⌊log 1⌋=0, ⌈4/1⌉=4 → ℓ=3
		{2, 0.49, 2, -1},     // κρ=0.98: ⌊log .98⌋=−1, ⌈3/.98⌉=4 → ℓ=2
		{4, 0.25, 4, 0},      // κρ=1: 0 + ⌈5/1⌉ − 1 = 4
		{2, 0.25, 5, -1},     // κρ=0.5: −1 + ⌈3/0.5⌉ − 1 = 4? ⌈6⌉=6 → −1+6−1=4
	}
	// Recompute the last case exactly: κ=2, ρ=0.25 → κρ=0.5,
	// ⌊log₂ 0.5⌋ = −1, ⌈3/0.5⌉ = 6 → ℓ = 4.
	cases[3].wantEll = 4
	for _, c := range cases {
		s := mustSched(t, 1024, 1024, Params{Epsilon: 0.25, Kappa: c.kappa, Rho: c.rho})
		if s.Ell != c.wantEll {
			t.Errorf("κ=%d ρ=%v: ℓ=%d want %d", c.kappa, c.rho, s.Ell, c.wantEll)
		}
		if s.I0 != c.wantI0 {
			t.Errorf("κ=%d ρ=%v: i0=%d want %d", c.kappa, c.rho, s.I0, c.wantI0)
		}
		if len(s.Deg) != s.Ell+1 {
			t.Errorf("deg schedule length %d want %d", len(s.Deg), s.Ell+1)
		}
	}
}

func TestDegreeSchedule(t *testing.T) {
	// n=4096, κ=3, ρ=1/3: exponential phase 0 has deg = n^{1/3} = 16;
	// fixed phases have deg = n^ρ = 16.
	s := mustSched(t, 4096, 4096, Params{Epsilon: 0.25})
	for i, deg := range s.Deg {
		want := 16
		if deg != want {
			t.Errorf("phase %d: deg=%d want %d", i, deg, want)
		}
	}
	// κ=2, ρ=0.49: i0=−1, all phases fixed at ⌈n^0.49⌉.
	s2 := mustSched(t, 1024, 1024, Params{Epsilon: 0.25, Kappa: 2, Rho: 0.49})
	wantFixed := int(math.Ceil(math.Pow(1024, 0.49)))
	for i, deg := range s2.Deg {
		if deg != wantFixed {
			t.Errorf("phase %d: deg=%d want %d", i, deg, wantFixed)
		}
	}
}

func TestDeltaSchedule(t *testing.T) {
	s := mustSched(t, 1024, 1024, Params{Epsilon: 0.25})
	// δᵢ₊₁/δᵢ = 1/ε exactly.
	for k := s.K0; k <= s.Lambda; k++ {
		for i := 0; i < s.Ell; i++ {
			ratio := s.Delta(k, i+1) / s.Delta(k, i)
			if math.Abs(ratio-1/s.EpsPhase) > 1e-9/s.EpsPhase {
				t.Fatalf("k=%d i=%d: ratio %v want %v", k, i, ratio, 1/s.EpsPhase)
			}
		}
		// δ_{ℓ−1} = ℓ·2^{k+1}: the scale-width anchoring (see Alpha docs).
		want := float64(s.Ell) * math.Pow(2, float64(k+1))
		if got := s.Delta(k, s.Ell-1); math.Abs(got-want) > 1e-6*want {
			t.Fatalf("k=%d: δ_{ℓ−1}=%v want %v", k, got, want)
		}
	}
}

func TestBetaDefaultsAndCaps(t *testing.T) {
	s := mustSched(t, 1024, 1024, Params{Epsilon: 0.25})
	if s.Beta != 10 { // ⌈log₂ 1024⌉
		t.Fatalf("default β=%d want 10", s.Beta)
	}
	if s.HopBudget() != 21 {
		t.Fatalf("hop budget %d want 2β+1=21", s.HopBudget())
	}
	s2 := mustSched(t, 8, 8, Params{Epsilon: 0.25})
	if s2.Beta != 4 { // floor at 4
		t.Fatalf("small-n β=%d want 4", s2.Beta)
	}
	s3 := mustSched(t, 1024, 1024, Params{Epsilon: 0.25, EffectiveBeta: 17})
	if s3.Beta != 17 {
		t.Fatalf("explicit β=%d want 17", s3.Beta)
	}
	// k₀ = ⌊log₂ β⌋.
	if s3.K0 != 4 {
		t.Fatalf("k0=%d want 4", s3.K0)
	}
}

func TestTheoreticalBetaRecurrence(t *testing.T) {
	// Lemma 3.4 claims hᵢ ≤ (1/ε+5)^i, but its base case is false:
	// h₁ = (1/ε+2)·2 + 3 = 2/ε+7 > 1/ε+5. The lemma's own inductive step
	// ((1/ε+3)hᵢ + 2 ≤ (1/ε+5)·hᵢ for hᵢ ≥ 1) proves the corrected bound
	// hᵢ ≤ 2·(1/ε+5)^i, which we assert; the asymptotic statement
	// β = O(1/ε)^ℓ of eq. (18) is unaffected.
	for _, eps := range []float64{0.5, 0.25, 0.1} {
		prev := 1.0
		for ell := 1; ell <= 6; ell++ {
			h := hopboundRecurrence(eps, ell)
			if h <= prev {
				t.Fatalf("hopbound not increasing at ℓ=%d", ell)
			}
			if bound := 2 * math.Pow(1/eps+5, float64(ell)); h > bound {
				t.Fatalf("ε=%v ℓ=%d: h=%v exceeds 2·(1/ε+5)^ℓ=%v (corrected Lemma 3.4)", eps, ell, h, bound)
			}
			prev = h
		}
	}
}

func TestRescaleModes(t *testing.T) {
	n, aspect := 1024, 1024.0
	base := Params{Epsilon: 0.2}
	none := mustSched(t, n, aspect, withRescale(base, RescaleNone))
	scales := mustSched(t, n, aspect, withRescale(base, RescaleScales))
	strict := mustSched(t, n, aspect, withRescale(base, RescaleStrict))
	if none.EpsScale != 0.2 || none.EpsPhase != 0.2 {
		t.Fatalf("none: %v %v", none.EpsScale, none.EpsPhase)
	}
	if scales.EpsScale >= none.EpsScale {
		t.Fatal("scales mode must divide the per-scale epsilon")
	}
	if scales.EpsPhase != 0.2 {
		t.Fatalf("scales mode keeps the phase ratio at ε: %v", scales.EpsPhase)
	}
	if strict.EpsPhase >= scales.EpsScale {
		t.Fatal("strict mode must divide the phase epsilon much further")
	}
	if strict.TheoreticalBeta <= scales.TheoreticalBeta {
		t.Fatal("strict rescale must blow the theoretical hopbound up")
	}
	// StretchBudget under the default mode stays below ε.
	if scales.StretchBudget > 0.2 {
		t.Fatalf("stretch budget %v exceeds ε", scales.StretchBudget)
	}
}

func withRescale(p Params, m RescaleMode) Params {
	p.Rescale = m
	return p
}

func TestRBoundMonotone(t *testing.T) {
	s := mustSched(t, 512, 512, Params{Epsilon: 0.25})
	for k := s.K0; k <= s.Lambda; k++ {
		prev := -1.0
		for i := 0; i <= s.Ell; i++ {
			r := s.RBound(k, i, 0)
			if r < prev {
				t.Fatalf("RBound not monotone at k=%d i=%d", k, i)
			}
			prev = r
		}
		if s.RBound(k, 0, 0) != 0 {
			t.Fatal("R₀ must be 0")
		}
	}
}

func TestSizeBoundValues(t *testing.T) {
	if got := SizeBound(1024, 2); math.Abs(got-math.Pow(1024, 1.5)) > 1e-6 {
		t.Fatalf("SizeBound = %v", got)
	}
	if got := SizeBound(8, 3); math.Abs(got-math.Pow(8, 4.0/3.0)) > 1e-9 {
		t.Fatalf("SizeBound = %v", got)
	}
}

func TestLogHelpers(t *testing.T) {
	cases := []struct{ n, ceil, floor int }{
		{1, 0, 0}, {2, 1, 1}, {3, 2, 1}, {4, 2, 2}, {5, 3, 2},
		{1023, 10, 9}, {1024, 10, 10}, {1025, 11, 10},
	}
	for _, c := range cases {
		if got := log2ceil(c.n); got != c.ceil {
			t.Errorf("log2ceil(%d)=%d want %d", c.n, got, c.ceil)
		}
		if got := log2floor(c.n); got != c.floor {
			t.Errorf("log2floor(%d)=%d want %d", c.n, got, c.floor)
		}
	}
}

func TestScheduleQuickProperties(t *testing.T) {
	// For random valid parameters, the schedule must be internally
	// consistent: ℓ ≥ 1, degᵢ ≥ 2, β ≥ 1, K0 ≤ ⌊log β⌋, λ ≥ 0, budget odd.
	prop := func(nRaw uint16, eRaw, kRaw, rRaw uint8) bool {
		n := 4 + int(nRaw%4096)
		eps := 0.05 + float64(eRaw%18)*0.05
		kappa := 2 + int(kRaw%5)
		rho := 0.1 + float64(rRaw%7)*0.05
		s, err := NewSchedule(n, float64(n), Params{Epsilon: eps, Kappa: kappa, Rho: rho})
		if err != nil {
			return false
		}
		if s.Ell < 1 || s.Beta < 1 || s.HopBudget()%2 != 1 {
			return false
		}
		for _, deg := range s.Deg {
			if deg < 2 {
				return false
			}
		}
		return s.K0 == log2floor(s.Beta) && s.Lambda >= 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleErrors(t *testing.T) {
	if _, err := NewSchedule(1, 4, Params{Epsilon: 0.25}); err == nil {
		t.Fatal("n=1 accepted")
	}
	if _, err := NewSchedule(16, 4, Params{Epsilon: 0.25, Rescale: RescaleMode(99)}); err == nil {
		t.Fatal("unknown rescale mode accepted")
	}
	if _, err := NewSchedule(16, 4, Params{Epsilon: -1}); err == nil {
		t.Fatal("negative epsilon accepted")
	}
}

func TestModeStrings(t *testing.T) {
	if WeightTight.String() != "tight" || WeightStrict.String() != "strict" {
		t.Fatal("weight mode strings")
	}
	if RescaleScales.String() != "scales" || RescaleNone.String() != "none" || RescaleStrict.String() != "strict" {
		t.Fatal("rescale mode strings")
	}
	if WeightMode(9).String() == "" || RescaleMode(9).String() == "" {
		t.Fatal("unknown mode strings empty")
	}
	if Superclustering.String() != "super" || Interconnection.String() != "interconnect" || Star.String() != "star" {
		t.Fatal("kind strings")
	}
	if Kind(9).String() == "" {
		t.Fatal("unknown kind string")
	}
}
