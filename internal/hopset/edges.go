package hopset

import "fmt"

// Kind classifies a hopset edge by the step that created it.
type Kind int8

const (
	// Superclustering edges connect a joining cluster's center to the
	// ruling cluster's center it was superclustered into (§2.1.1).
	Superclustering Kind = iota
	// Interconnection edges connect centers of neighboring clusters that
	// were not superclustered in the phase (§2.1.2).
	Interconnection
	// Star edges come from the Klein–Sairam reduction (Appendix C.3):
	// node centers to node members along the node's spanning tree.
	Star
)

func (k Kind) String() string {
	switch k {
	case Superclustering:
		return "super"
	case Interconnection:
		return "interconnect"
	case Star:
		return "star"
	}
	return fmt.Sprintf("Kind(%d)", int8(k))
}

// Edge is one hopset edge with its provenance.
type Edge struct {
	U, V  int32
	W     float64
	Scale int16 // distance scale k it was built for
	Phase int8  // phase i within the scale (0 for star edges)
	Kind  Kind
}

// PathStep is one step of a memory path (§4.1): the realizing path of a
// hopset edge through G ∪ H_{k−1}. Steps run from Edge.U to Edge.V; the
// implicit start of step j is Edge.U for j = 0, else step j−1's To.
type PathStep struct {
	To    int32   // next vertex
	W     float64 // step weight
	HEdge int32   // global hopset edge index, or −1 for a base-graph edge
}

// PhaseStats is the per-phase ledger used by experiments E6/E13/E14 to
// check Lemmas 2.5–2.7, Lemma 2.2 and eqs. (8)–(10).
type PhaseStats struct {
	Scale int // k
	Phase int // i

	Clusters       int     // |Pᵢ|
	Deg            int     // degᵢ
	Popular        int     // |Wᵢ|
	Ruling         int     // |Qᵢ|
	Superclustered int     // clusters absorbed into Pᵢ₊₁ (incl. ruling)
	Retired        int     // |Uᵢ|
	SCEdges        int     // superclustering edges added
	ICEdges        int     // interconnection edges added
	MaxRad         float64 // measured Rad(Pᵢ₊₁) after the phase
	RBound         float64 // the paper's Rᵢ₊₁ worst-case bound
	MinSuperSize   int     // smallest supercluster, in absorbed clusters (Lemma 2.5)
}

// ReversePath returns the steps of path walked from its end back to start.
// start is the vertex the forward path begins at.
func ReversePath(start int32, steps []PathStep) []PathStep {
	if len(steps) == 0 {
		return nil
	}
	// Vertex sequence: start, steps[0].To, …, steps[len-1].To.
	out := make([]PathStep, len(steps))
	for j := len(steps) - 1; j >= 0; j-- {
		var to int32
		if j == 0 {
			to = start
		} else {
			to = steps[j-1].To
		}
		out[len(steps)-1-j] = PathStep{To: to, W: steps[j].W, HEdge: steps[j].HEdge}
	}
	return out
}

// PathWeight sums the step weights.
func PathWeight(steps []PathStep) float64 {
	var w float64
	for _, s := range steps {
		w += s.W
	}
	return w
}

// ConcatPaths appends paths (already sharing endpoints) into one.
func ConcatPaths(parts ...[]PathStep) []PathStep {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]PathStep, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}
