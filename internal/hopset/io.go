package hopset

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/graph"
)

// The hopset text format mirrors the graph format:
//
//	c comment
//	hopset <n> <edges> <epsilon> <kappa> <rho> <beta> <weights> <rescale> <paths>
//	h <u> <v> <w> <scale> <phase> <kind>
//	p <edge-index> <steps> <to:w:hedge> …     (RecordPaths mode)
//
// A decoded hopset is query-ready against the same (normalized) graph it
// was built for; Check() verifies consistency after loading.

// ErrFormat is returned (wrapped) by Decode for malformed input.
var ErrFormat = errors.New("hopset: bad format")

// Encode writes h in the text format. The base graph is not included;
// pair it with graphio.EncodeLegacy. Assembled (Klein–Sairam) hopsets are
// refused: Decode re-derives the schedule from the stored parameters,
// which is only valid for natively built hopsets.
func Encode(w io.Writer, h *Hopset) error {
	if h.Assembled {
		return errors.New("hopset: cannot encode an assembled (Klein–Sairam) hopset; its schedule is not recoverable from parameters")
	}
	bw := bufio.NewWriter(w)
	p := h.Params
	paths := 0
	if p.RecordPaths {
		paths = 1
	}
	if _, err := fmt.Fprintf(bw, "hopset %d %d %g %d %g %d %d %d %d\n",
		h.G.N, len(h.Edges), p.Epsilon, p.Kappa, p.Rho, p.EffectiveBeta,
		int(p.Weights), int(p.Rescale), paths); err != nil {
		return err
	}
	for _, e := range h.Edges {
		if _, err := fmt.Fprintf(bw, "h %d %d %g %d %d %d\n",
			e.U, e.V, e.W, e.Scale, e.Phase, int(e.Kind)); err != nil {
			return err
		}
	}
	if p.RecordPaths {
		for i, path := range h.Paths {
			fmt.Fprintf(bw, "p %d %d", i, len(path))
			for _, s := range path {
				fmt.Fprintf(bw, " %d:%g:%d", s.To, s.W, s.HEdge)
			}
			if _, err := fmt.Fprintln(bw); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Decode reads a hopset in the text format and attaches it to g (which must
// be the same normalized graph the hopset was built for). The schedule is
// re-derived from the stored parameters; Check is run before returning.
func Decode(r io.Reader, g *graph.Graph) (*Hopset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<26)
	var h *Hopset
	var nEdges int
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "c") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "hopset":
			if h != nil {
				return nil, fmt.Errorf("%w: duplicate header at line %d", ErrFormat, line)
			}
			if len(fields) != 10 {
				return nil, fmt.Errorf("%w: header at line %d", ErrFormat, line)
			}
			n, err1 := strconv.Atoi(fields[1])
			m, err2 := strconv.Atoi(fields[2])
			eps, err3 := strconv.ParseFloat(fields[3], 64)
			kappa, err4 := strconv.Atoi(fields[4])
			rho, err5 := strconv.ParseFloat(fields[5], 64)
			beta, err6 := strconv.Atoi(fields[6])
			wm, err7 := strconv.Atoi(fields[7])
			rm, err8 := strconv.Atoi(fields[8])
			paths, err9 := strconv.Atoi(fields[9])
			if err := firstErr(err1, err2, err3, err4, err5, err6, err7, err8, err9); err != nil {
				return nil, fmt.Errorf("%w: header at line %d: %v", ErrFormat, line, err)
			}
			if n != g.N {
				return nil, fmt.Errorf("%w: hopset built for n=%d, graph has n=%d", ErrFormat, n, g.N)
			}
			p := Params{
				Epsilon: eps, Kappa: kappa, Rho: rho, EffectiveBeta: beta,
				Weights: WeightMode(wm), Rescale: RescaleMode(rm),
				RecordPaths: paths == 1,
			}
			if err := p.Validate(); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrFormat, err)
			}
			sched, err := NewSchedule(g.N, g.AspectRatioUpperBound(), p)
			if err != nil {
				return nil, err
			}
			nEdges = m
			h = Assemble(g, sched, p, 1, make([]Edge, 0, m), nil)
			// Encode refuses assembled hopsets, so anything being decoded
			// was built natively: the schedule re-derived above is its
			// real schedule, and query budgets may be recomputed from it.
			h.Assembled = false
			if p.RecordPaths {
				h.Paths = make([][]PathStep, m)
			}
		case "h":
			if h == nil {
				return nil, fmt.Errorf("%w: edge before header at line %d", ErrFormat, line)
			}
			if len(fields) != 7 {
				return nil, fmt.Errorf("%w: edge at line %d", ErrFormat, line)
			}
			u, err1 := strconv.Atoi(fields[1])
			v, err2 := strconv.Atoi(fields[2])
			w, err3 := strconv.ParseFloat(fields[3], 64)
			scale, err4 := strconv.Atoi(fields[4])
			phase, err5 := strconv.Atoi(fields[5])
			kind, err6 := strconv.Atoi(fields[6])
			if err := firstErr(err1, err2, err3, err4, err5, err6); err != nil {
				return nil, fmt.Errorf("%w: edge at line %d: %v", ErrFormat, line, err)
			}
			h.Edges = append(h.Edges, Edge{
				U: int32(u), V: int32(v), W: w,
				Scale: int16(scale), Phase: int8(phase), Kind: Kind(kind),
			})
		case "p":
			if h == nil || !h.Params.RecordPaths {
				return nil, fmt.Errorf("%w: unexpected path record at line %d", ErrFormat, line)
			}
			if len(fields) < 3 {
				return nil, fmt.Errorf("%w: path at line %d", ErrFormat, line)
			}
			idx, err1 := strconv.Atoi(fields[1])
			cnt, err2 := strconv.Atoi(fields[2])
			if err := firstErr(err1, err2); err != nil || idx < 0 || idx >= nEdges || cnt != len(fields)-3 {
				return nil, fmt.Errorf("%w: path at line %d", ErrFormat, line)
			}
			steps := make([]PathStep, cnt)
			for i, tok := range fields[3:] {
				parts := strings.Split(tok, ":")
				if len(parts) != 3 {
					return nil, fmt.Errorf("%w: path step at line %d", ErrFormat, line)
				}
				to, err1 := strconv.Atoi(parts[0])
				sw, err2 := strconv.ParseFloat(parts[1], 64)
				he, err3 := strconv.Atoi(parts[2])
				if err := firstErr(err1, err2, err3); err != nil {
					return nil, fmt.Errorf("%w: path step at line %d: %v", ErrFormat, line, err)
				}
				steps[i] = PathStep{To: int32(to), W: sw, HEdge: int32(he)}
			}
			h.Paths[idx] = steps
		default:
			return nil, fmt.Errorf("%w: unknown record %q at line %d", ErrFormat, fields[0], line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if h == nil {
		return nil, fmt.Errorf("%w: missing header", ErrFormat)
	}
	if len(h.Edges) != nEdges {
		return nil, fmt.Errorf("%w: expected %d edges, got %d", ErrFormat, nEdges, len(h.Edges))
	}
	if err := h.Check(); err != nil {
		return nil, fmt.Errorf("hopset: decoded hopset fails validation: %w", err)
	}
	return h, nil
}

func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}
