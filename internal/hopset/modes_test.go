package hopset

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/graph"
)

func TestBuildUnderRescaleNone(t *testing.T) {
	// RescaleNone accumulates (1+ε) per scale; soundness must still hold
	// and the looser accumulated budget must be met at the test budget.
	g := graph.Gnm(96, 300, graph.UniformWeights(1, 4), 31)
	h := build(t, g, Params{Epsilon: 0.25, Rescale: RescaleNone})
	checkSoundness(t, h)
	if h.EpsFinal <= 0.25 {
		t.Fatalf("accumulated epsilon %v should exceed the per-scale 0.25", h.EpsFinal)
	}
	checkStretch(t, h, h.EpsFinal)
}

func TestBuildUnderRescaleStrict(t *testing.T) {
	// The paper's full rescaling: thresholds get enormous and the
	// theoretical β explodes, but the construction must still run and stay
	// sound on a tiny instance.
	g := graph.Gnm(32, 96, graph.UnitWeights(), 33)
	h := build(t, g, Params{Epsilon: 0.25, Rescale: RescaleStrict})
	checkSoundness(t, h)
	if h.Sched.TheoreticalBeta < 1e6 {
		t.Fatalf("strict theoretical β suspiciously small: %v", h.Sched.TheoreticalBeta)
	}
	// Converged distances equal exact (the hopset never shortcuts); allow a
	// generous target since strict thresholds make G̃ dense.
	checkStretch(t, h, 1)
}

func TestRetirePanicsOnDoubleRetirement(t *testing.T) {
	// White-box: the Lemma 2.10 runtime guard.
	b := &builder{retired: make([]bool, 4), part: cluster.Singletons(4)}
	b.retire(1)
	defer func() {
		if recover() == nil {
			t.Fatal("double retirement not caught")
		}
	}()
	b.retire(1)
}
