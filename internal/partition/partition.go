// Package partition implements the deterministic edge-cut graph
// partitioner behind the shard subsystem: it splits one graph into K
// vertex-disjoint shards plus the cut edges between them, so a sharded
// oracle can build one engine per shard and stitch queries through a
// boundary overlay.
//
// Shards are grown by synchronous label propagation — multi-source BFS
// from K deterministic seeds, one hop layer per round — with the same
// bit-identical tie-breaking discipline as internal/relax: a vertex joins
// the lowest-numbered region among its already-assigned neighbors, rounds
// are chunk-parallel with exclusive writes and double buffering, and
// nothing depends on the worker count. The same (graph, K) always yields
// the same Part array, byte for byte, on 1 or 64 workers.
//
// Vertices in components that contain no seed are assigned by a
// deterministic fallback (contiguous ID blocks), so the partition is
// always total.
package partition

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/par"
)

// MaxShards caps K: more shards than this stops paying for itself (the
// overlay grows quadratically in boundary size) and bounds KForTarget's
// search.
const MaxShards = 1024

// Shard is one vertex-disjoint piece of the partitioned graph.
type Shard struct {
	// G is the induced subgraph on the shard's vertices, re-indexed to
	// local IDs 0..len(Vertices)-1.
	G *graph.Graph
	// Vertices maps local ID -> global ID, ascending. With K = 1 this is
	// the identity, so the single shard's graph is bit-identical to the
	// input.
	Vertices []int32
	// Boundary lists the local IDs of this shard's boundary vertices
	// (endpoints of cut edges), ascending.
	Boundary []int32
}

// Result is a complete deterministic partition of one graph.
type Result struct {
	K int // number of shards (after clamping to [1, min(n, MaxShards)])
	N int // vertices of the input graph

	// Part[v] is the shard of global vertex v.
	Part []int32
	// LocalID[v] is v's index inside Shards[Part[v]].Vertices.
	LocalID []int32

	Shards []Shard

	// Boundary is the global boundary vertex set (endpoints of cut
	// edges), ascending. The overlay graph is built on exactly these.
	Boundary []int32
	// CutEdges are the input edges whose endpoints fall in different
	// shards, in canonical (U < V, sorted) order.
	CutEdges []graph.Edge

	// Rounds is the number of propagation rounds until the labeling
	// stabilized; Fallback counts vertices assigned by the contiguous-
	// block fallback (unreachable from every seed).
	Rounds   int
	Fallback int
}

// Seeds returns the K deterministic seed vertices for an n-vertex graph:
// evenly spaced over the ID range, seed i = floor(i·n/K). They are
// pairwise distinct whenever K ≤ n.
func Seeds(n, k int) []int32 {
	seeds := make([]int32, k)
	for i := 0; i < k; i++ {
		seeds[i] = int32(int64(i) * int64(n) / int64(k))
	}
	return seeds
}

// Partition splits g into k shards. k is clamped to [1, min(n, MaxShards)];
// the effective value is Result.K.
func Partition(g *graph.Graph, k int) *Result {
	n := g.N
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	if k > MaxShards {
		k = MaxShards
	}

	owner := make([]int32, n)
	next := make([]int32, n)
	for v := range owner {
		owner[v] = -1
	}
	for i, s := range Seeds(n, k) {
		owner[s] = int32(i)
	}

	res := &Result{K: k, N: n, Part: owner}
	// Synchronous hop rounds: an unassigned vertex adopts the smallest
	// region label among its assigned neighbors. Reads go to the previous
	// round's labels only (double buffer), writes are exclusive per
	// vertex, so chunk scheduling cannot change the outcome.
	unassigned := n - k
	for unassigned > 0 {
		par.ForChunk(n, func(lo, hi int) {
			for v := lo; v < hi; v++ {
				if owner[v] >= 0 {
					next[v] = owner[v]
					continue
				}
				best := int32(-1)
				for arc := g.Off[v]; arc < g.Off[v+1]; arc++ {
					if o := owner[g.Nbr[arc]]; o >= 0 && (best < 0 || o < best) {
						best = o
					}
				}
				next[v] = best
			}
		})
		owner, next = next, owner
		res.Rounds++
		left := 0
		for v := 0; v < n; v++ {
			if owner[v] < 0 {
				left++
			}
		}
		if left == unassigned {
			break // no seed can reach the rest: disconnected remainder
		}
		unassigned = left
	}
	// Contiguous-block fallback for seedless components.
	for v := 0; v < n; v++ {
		if owner[v] < 0 {
			owner[v] = int32(int64(v) * int64(k) / int64(n))
			res.Fallback++
		}
	}
	res.Part = owner

	res.extract(g)
	return res
}

// extract builds the per-shard subgraphs, local ID maps, cut edge list and
// boundary sets from the final Part array.
func (res *Result) extract(g *graph.Graph) {
	n, k := res.N, res.K
	res.LocalID = make([]int32, n)
	verts := make([][]int32, k)
	for v := 0; v < n; v++ {
		s := res.Part[v]
		res.LocalID[v] = int32(len(verts[s]))
		verts[s] = append(verts[s], int32(v)) // ascending by construction
	}

	localEdges := make([][]graph.Edge, k)
	isBoundary := make([]bool, n)
	for _, e := range g.Edges {
		su, sv := res.Part[e.U], res.Part[e.V]
		if su == sv {
			localEdges[su] = append(localEdges[su], graph.Edge{
				U: res.LocalID[e.U], V: res.LocalID[e.V], W: e.W,
			})
			continue
		}
		res.CutEdges = append(res.CutEdges, e)
		isBoundary[e.U] = true
		isBoundary[e.V] = true
	}
	for v := int32(0); int(v) < n; v++ {
		if isBoundary[v] {
			res.Boundary = append(res.Boundary, v)
		}
	}

	res.Shards = make([]Shard, k)
	par.For(k, func(i int) {
		sg, err := graph.FromEdges(len(verts[i]), localEdges[i])
		if err != nil {
			// Local edges are re-indexed valid input edges; this cannot
			// fail on a well-formed graph.
			panic(fmt.Sprintf("partition: shard %d subgraph: %v", i, err))
		}
		res.Shards[i] = Shard{G: sg, Vertices: verts[i]}
	})
	for _, b := range res.Boundary {
		s := res.Part[b]
		res.Shards[s].Boundary = append(res.Shards[s].Boundary, res.LocalID[b])
	}
}

// Validate checks the structural invariants tests rely on: Part/LocalID
// consistency, ascending vertex maps, shard graphs matching the induced
// subgraphs' sizes, and boundary/cut agreement.
func (res *Result) Validate(g *graph.Graph) error {
	if res.K != len(res.Shards) {
		return fmt.Errorf("K=%d but %d shards", res.K, len(res.Shards))
	}
	total := 0
	for i, sh := range res.Shards {
		if sh.G == nil || sh.G.N != len(sh.Vertices) {
			return fmt.Errorf("shard %d: graph n=%d vs %d vertices", i, sh.G.N, len(sh.Vertices))
		}
		if len(sh.Vertices) == 0 {
			return fmt.Errorf("shard %d empty", i)
		}
		total += len(sh.Vertices)
		if !sort.SliceIsSorted(sh.Vertices, func(a, b int) bool { return sh.Vertices[a] < sh.Vertices[b] }) {
			return fmt.Errorf("shard %d: vertex map not ascending", i)
		}
		for l, gv := range sh.Vertices {
			if res.Part[gv] != int32(i) || res.LocalID[gv] != int32(l) {
				return fmt.Errorf("vertex %d: Part/LocalID disagree with shard %d map", gv, i)
			}
		}
	}
	if total != res.N {
		return fmt.Errorf("shards cover %d of %d vertices", total, res.N)
	}
	intra := 0
	for _, sh := range res.Shards {
		intra += sh.G.M()
	}
	if intra+len(res.CutEdges) != g.M() {
		return fmt.Errorf("edges: %d intra + %d cut != %d", intra, len(res.CutEdges), g.M())
	}
	for _, e := range res.CutEdges {
		if res.Part[e.U] == res.Part[e.V] {
			return fmt.Errorf("cut edge (%d,%d) inside shard %d", e.U, e.V, res.Part[e.U])
		}
	}
	seen := make(map[int32]bool, len(res.Boundary))
	for _, b := range res.Boundary {
		seen[b] = true
	}
	for _, e := range res.CutEdges {
		if !seen[e.U] || !seen[e.V] {
			return fmt.Errorf("cut edge (%d,%d) endpoint missing from boundary", e.U, e.V)
		}
	}
	return nil
}

// EstimateEngineBytes approximates the resident size of one oracle engine
// over an (n, m) graph before building it: the CSR adjacency over graph
// plus hopset arcs, the edge list, and a hopset of ≈ 4·n^{1+1/κ} edges
// with the default κ = 3. It deliberately leans pessimistic — the shard
// planner uses it to pick K before any engine exists.
func EstimateEngineBytes(n, m int) int64 {
	if n <= 0 {
		return 0
	}
	hop := int64(4 * math.Pow(float64(n), 1+1.0/3.0))
	arcs := int64(2*m) + 2*hop
	return 4*int64(n+1) + 16*arcs + 16*int64(m) + 32*hop
}

// KForTarget returns the smallest shard count K such that one shard's
// estimated engine footprint (EstimateEngineBytes over ≈ n/K vertices and
// m/K edges) fits target bytes, capped at min(n, MaxShards). target ≤ 0
// means "no target": K = 1.
func KForTarget(n, m int, target int64) int {
	if target <= 0 || n <= 0 {
		return 1
	}
	max := n
	if max > MaxShards {
		max = MaxShards
	}
	for k := 1; k < max; k++ {
		if EstimateEngineBytes((n+k-1)/k, (m+k-1)/k) <= target {
			return k
		}
	}
	return max
}
