package partition

import (
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/testkit"
)

// TestPartitionValid checks structural invariants across the testkit
// families and several K.
func TestPartitionValid(t *testing.T) {
	for _, ng := range testkit.Mix(240, 3) {
		for _, k := range []int{1, 2, 4, 7} {
			res := Partition(ng.G, k)
			if res.K != k {
				t.Fatalf("%s K=%d: clamped to %d", ng.Name, k, res.K)
			}
			if err := res.Validate(ng.G); err != nil {
				t.Fatalf("%s K=%d: %v", ng.Name, k, err)
			}
		}
	}
}

// TestPartitionIdentityK1 pins the K = 1 contract the sharded oracle's
// exact-match guarantee rests on: one shard, identity vertex map, the
// shard graph bit-identical to the input, no boundary.
func TestPartitionIdentityK1(t *testing.T) {
	g := testkit.Gnm(300, 5)
	res := Partition(g, 1)
	if res.K != 1 || len(res.Shards) != 1 || len(res.Boundary) != 0 || len(res.CutEdges) != 0 {
		t.Fatalf("K=1 shape: K=%d shards=%d boundary=%d cut=%d",
			res.K, len(res.Shards), len(res.Boundary), len(res.CutEdges))
	}
	sg := res.Shards[0].G
	for l, gv := range res.Shards[0].Vertices {
		if int32(l) != gv {
			t.Fatalf("vertex map not identity at %d -> %d", l, gv)
		}
	}
	if !reflect.DeepEqual(sg.Edges, g.Edges) || !reflect.DeepEqual(sg.Off, g.Off) ||
		!reflect.DeepEqual(sg.Nbr, g.Nbr) || !reflect.DeepEqual(sg.Wt, g.Wt) {
		t.Fatal("K=1 shard graph differs from input graph")
	}
}

// TestPartitionDeterministic requires byte-identical output across worker
// counts — the partitioner inherits the relax engine's discipline.
func TestPartitionDeterministic(t *testing.T) {
	defer par.SetWorkers(par.SetWorkers(1))
	for _, ng := range testkit.Mix(200, 9) {
		want := Partition(ng.G, 4)
		for _, w := range []int{2, 8} {
			par.SetWorkers(w)
			got := Partition(ng.G, 4)
			if !reflect.DeepEqual(got.Part, want.Part) ||
				!reflect.DeepEqual(got.Boundary, want.Boundary) ||
				!reflect.DeepEqual(got.CutEdges, want.CutEdges) {
				t.Fatalf("%s: workers=%d output differs from workers=1", ng.Name, w)
			}
			for i := range want.Shards {
				if !reflect.DeepEqual(got.Shards[i].G.Edges, want.Shards[i].G.Edges) {
					t.Fatalf("%s: workers=%d shard %d graph differs", ng.Name, w, i)
				}
			}
		}
		par.SetWorkers(1)
	}
}

// TestPartitionDisconnected exercises the fallback: a graph of two
// components where all seeds land in the first still covers everything.
func TestPartitionDisconnected(t *testing.T) {
	// Vertices 0..9 form a path; 10..19 a separate path. Seeds for K=2 at
	// 0 and 10 land one per component; K=5 puts several seeds per
	// component — either way coverage must be total.
	var edges []graph.Edge
	for v := int32(0); v < 9; v++ {
		edges = append(edges, graph.E(v, v+1, 1))
	}
	for v := int32(10); v < 19; v++ {
		edges = append(edges, graph.E(v, v+1, 1))
	}
	g := graph.MustFromEdges(20, edges)
	for _, k := range []int{2, 5} {
		res := Partition(g, k)
		if err := res.Validate(g); err != nil {
			t.Fatalf("K=%d: %v", k, err)
		}
	}
	// One isolated vertex, no seed reaches it -> fallback must kick in.
	g2 := graph.MustFromEdges(3, []graph.Edge{graph.E(0, 1, 1)})
	res := Partition(g2, 2)
	if err := res.Validate(g2); err != nil {
		t.Fatal(err)
	}
	if res.Fallback == 0 {
		t.Fatal("expected the isolated vertex to be assigned by fallback")
	}
}

// TestKForTarget checks monotonicity and the no-target fast path.
func TestKForTarget(t *testing.T) {
	if k := KForTarget(10000, 40000, 0); k != 1 {
		t.Fatalf("no target: K=%d", k)
	}
	whole := EstimateEngineBytes(10000, 40000)
	if k := KForTarget(10000, 40000, whole); k != 1 {
		t.Fatalf("target = whole estimate: K=%d", k)
	}
	k4 := KForTarget(10000, 40000, whole/4)
	if k4 < 2 {
		t.Fatalf("quarter target: K=%d", k4)
	}
	if k8 := KForTarget(10000, 40000, whole/8); k8 < k4 {
		t.Fatalf("tighter target shrank K: %d < %d", k8, k4)
	}
}

// TestPartitionedCases runs the shared testkit sharding workload through
// the partitioner: exactly K non-empty shards, boundary within the
// family's bound, structurally valid.
func TestPartitionedCases(t *testing.T) {
	for _, c := range testkit.Partitioned(256, 6) {
		res := Partition(c.G, c.K)
		if err := res.Validate(c.G); err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		if len(res.Shards) != c.K {
			t.Fatalf("%s: %d shards, want %d", c.Name, len(res.Shards), c.K)
		}
		if len(res.Boundary) > c.MaxBoundary {
			t.Fatalf("%s: %d boundary vertices exceed the family bound %d",
				c.Name, len(res.Boundary), c.MaxBoundary)
		}
	}
}
