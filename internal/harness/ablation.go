package harness

import (
	"math"

	"repro/internal/adj"
	"repro/internal/exact"
	"repro/internal/graph"
	"repro/internal/hopset"
	"repro/internal/relax"
)

// E15WeightModes: ablation of the tight-vs-strict edge-weight design
// choice (DESIGN.md §2). The paper's closed-form weights (Lemma 2.3 /
// §2.1.2) are inflated by Θ(δᵢ·log n) terms; tight weights use the
// discovered path lengths. Same topology, very different usable stretch.
func E15WeightModes(cfg Config) *Table {
	t := &Table{
		ID: "E15", Title: "ablation: tight vs strict (paper-formula) edge weights",
		Claim: "design choice: both are sound (Lemmas 2.3/2.9); tight weights make the stretch usable at practical β",
		Cols:  []string{"graph", "weights", "|H|", "max stretch @budget", "sound"},
	}
	n := cfg.sizes([]int{160}, []int{512})[0]
	gs := []struct {
		name string
		g    *graph.Graph
	}{
		{"gnm", graph.Gnm(n, 4*n, graph.UniformWeights(1, 5), cfg.Seed)},
		{"grid", graph.Grid(n/16, 16, graph.UnitWeights(), cfg.Seed)},
	}
	for _, gc := range gs {
		for _, wm := range []hopset.WeightMode{hopset.WeightTight, hopset.WeightStrict} {
			h, err := hopset.Build(gc.g, hopset.Params{Epsilon: 0.25, Weights: wm}, nil)
			if err != nil {
				panic(err)
			}
			worst := maxStretchAt(h.G, h.Extras(), budgetOf(h), defaultSources(h.G.N))
			// Soundness: converged distances never undershoot exact.
			sound := true
			a := adj.Build(h.G, h.Extras())
			ref, _ := exact.DijkstraGraph(h.G, 0)
			res := relax.Run(a, []int32{0}, h.G.N+1, relax.Options{})
			for v := 0; v < h.G.N; v++ {
				if !math.IsInf(ref[v], 1) && res.Dist[v] < ref[v]-1e-9 {
					sound = false
				}
			}
			t.AddRow(gc.name, wm.String(), d(int64(h.Size())), f(worst), okFail(sound))
		}
	}
	t.Notes = append(t.Notes,
		"identical topology by construction; strict weights are never below tight ones",
		"on these workloads both meet the target at the test budget — the decisive advantage of tight weights is that each edge weight is exactly realizable, which the path-reporting peeling (§4) consumes with zero slack")
	return t
}

// E16BetaSensitivity: ablation of the effective hop cap β. Larger β widens
// the exploration horizon: fewer scales (k₀ = ⌊log β⌋ grows), different
// size/stretch/build-work trade-off. The theoretical β (eq. 2) is
// astronomically larger than any value here.
func E16BetaSensitivity(cfg Config) *Table {
	t := &Table{
		ID: "E16", Title: "ablation: effective hop cap β",
		Claim: "eq. (2): theory β is polylog but astronomically large; small effective β already meets (1+ε)",
		Cols:  []string{"β", "k₀", "scales", "|H|", "max stretch", "budget", "theory β"},
	}
	n := cfg.sizes([]int{192}, []int{1024})[0]
	g := graph.Gnm(n, 4*n, graph.UniformWeights(1, 6), cfg.Seed)
	for _, beta := range []int{4, 8, 16, 32} {
		h, err := hopset.Build(g, hopset.Params{Epsilon: 0.25, EffectiveBeta: beta}, nil)
		if err != nil {
			panic(err)
		}
		worst := maxStretchAt(h.G, h.Extras(), budgetOf(h), defaultSources(h.G.N))
		t.AddRow(d(int64(beta)), d(int64(h.Sched.K0)),
			d(int64(h.Sched.Lambda-h.Sched.K0+1)), d(int64(h.Size())),
			f(worst), d(int64(budgetOf(h))), f(h.Sched.TheoreticalBeta))
	}
	return t
}
