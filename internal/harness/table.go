// Package harness regenerates every experiment in EXPERIMENTS.md: the
// paper has no empirical tables (it is a theory paper), so each experiment
// measures one quantitative claim of its theorems and lemmas — sizes,
// stretch, hopbound, work, depth, ledgers — against the stated bound.
// cmd/experiments prints all tables; bench_test.go exposes one benchmark
// per experiment.
package harness

import (
	"fmt"
	"io"
	"strings"
)

// Table is one experiment's output: a header describing the paper claim
// and rows of measurements.
type Table struct {
	ID    string // E1 … E14
	Title string
	Claim string // the paper statement being reproduced
	Cols  []string
	Rows  [][]string
	Notes []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	fmt.Fprintf(w, "claim: %s\n", t.Claim)
	widths := make([]int, len(t.Cols))
	for i, c := range t.Cols {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Cols)
	sep := make([]string, len(t.Cols))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Fprint(&sb)
	return sb.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// f formats a float compactly.
func f(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1e6 || v < 1e-3:
		return fmt.Sprintf("%.3g", v)
	case v >= 100:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

func d(v int64) string { return fmt.Sprintf("%d", v) }

func okFail(ok bool) string {
	if ok {
		return "ok"
	}
	return "FAIL"
}
