package harness

import (
	"strings"
	"testing"
)

func quickCfg() Config { return Config{Quick: true, Seed: 7} }

// allTables caches the quick experiment run: several tests inspect the
// same output and the sweep is expensive.
var allTables []*Table

func tables(t *testing.T) []*Table {
	t.Helper()
	if allTables == nil {
		allTables = All(quickCfg())
	}
	return allTables
}

func TestAllExperimentsRunQuick(t *testing.T) {
	tables := tables(t)
	if len(tables) != 17 {
		t.Fatalf("expected 17 experiments, got %d", len(tables))
	}
	seen := map[string]bool{}
	for _, tb := range tables {
		if tb.ID == "" || tb.Title == "" || tb.Claim == "" {
			t.Fatalf("table %q missing metadata", tb.ID)
		}
		if seen[tb.ID] {
			t.Fatalf("duplicate experiment id %s", tb.ID)
		}
		seen[tb.ID] = true
		if len(tb.Rows) == 0 {
			t.Fatalf("%s: no rows", tb.ID)
		}
		for _, r := range tb.Rows {
			if len(r) != len(tb.Cols) {
				t.Fatalf("%s: row width %d != %d cols", tb.ID, len(r), len(tb.Cols))
			}
		}
	}
}

func TestNoFailuresInQuickTables(t *testing.T) {
	// Every "ok" column must say ok: the theorem inequalities hold.
	for _, tb := range tables(t) {
		okCol := -1
		for i, c := range tb.Cols {
			if c == "ok" || c == "valid" || c == "deterministic" {
				okCol = i
			}
		}
		if okCol < 0 {
			continue
		}
		for _, r := range tb.Rows {
			if r[okCol] == "FAIL" {
				t.Fatalf("%s: failing row %v", tb.ID, r)
			}
		}
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{
		ID: "EX", Title: "demo", Claim: "c",
		Cols:  []string{"a", "bb"},
		Notes: []string{"note"},
	}
	tb.AddRow("1", "2")
	s := tb.String()
	for _, want := range []string{"== EX: demo ==", "claim: c", "a", "bb", "note"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, s)
		}
	}
}

func TestFormatHelpers(t *testing.T) {
	cases := map[float64]string{0: "0", 1.5: "1.500", 150: "150", 2e6: "2e+06"}
	for in, want := range cases {
		if got := f(in); got != want {
			t.Fatalf("f(%v) = %q want %q", in, got, want)
		}
	}
	if okFail(true) != "ok" || okFail(false) != "FAIL" {
		t.Fatal("okFail")
	}
	if d(42) != "42" {
		t.Fatal("d")
	}
	if fitSlope(func(i int) (float64, float64) { return float64(i), 2 * float64(i) }, 5) != 2 {
		t.Fatal("fitSlope on exact line")
	}
}

func TestSizesSelector(t *testing.T) {
	c := Config{Quick: true}
	if got := c.sizes([]int{1}, []int{2}); got[0] != 1 {
		t.Fatal("quick sizes")
	}
	c.Quick = false
	if got := c.sizes([]int{1}, []int{2}); got[0] != 2 {
		t.Fatal("full sizes")
	}
}
