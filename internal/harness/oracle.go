package harness

import (
	"sync"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/oracle"
)

// E17Oracle: the engine layer of package oracle — build-once/query-many.
// Many goroutines hammer Engine.Dist over a shared engine; every answer
// must be bit-identical to the sequential Solver's, and re-queried sources
// must be served by the LRU cache (hits ≥ workers·srcs − srcs).
func E17Oracle(cfg Config) *Table {
	t := &Table{
		ID: "E17", Title: "oracle engine: concurrent queries vs sequential solver",
		Claim: "Engine is deterministic under concurrency; repeats hit the LRU",
		Cols:  []string{"n", "m", "srcs", "workers", "hits", "misses", "ok"},
	}
	const workers = 8
	for _, n := range cfg.sizes([]int{256}, []int{512, 1024, 2048}) {
		g := graph.Gnm(n, 4*n, graph.UniformWeights(1, 8), cfg.Seed+int64(n))
		eng, err := oracle.New(g, oracle.WithEpsilon(0.25), oracle.WithDistCache(64))
		if err != nil {
			t.AddRow(d(int64(n)), err.Error(), "", "", "", "", okFail(false))
			continue
		}
		solver, err := core.New(g, core.Options{Epsilon: 0.25})
		if err != nil {
			t.AddRow(d(int64(n)), err.Error(), "", "", "", "", okFail(false))
			continue
		}
		srcs := defaultSources(n)
		ref := make([][]float64, len(srcs))
		for i, s := range srcs {
			ref[i], _ = solver.ApproxDistances(s)
		}

		identical := true
		var mu sync.Mutex
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := range srcs {
					j := (i + w) % len(srcs) // stagger access order per worker
					got, err := eng.Dist(srcs[j])
					ok := err == nil && len(got) == len(ref[j])
					for v := 0; ok && v < len(got); v++ {
						ok = got[v] == ref[j][v]
					}
					if !ok {
						mu.Lock()
						identical = false
						mu.Unlock()
					}
				}
			}(w)
		}
		wg.Wait()

		// A second, sequential pass must be all cache hits: every source
		// is resident (cap 64 ≫ |srcs|) after the hammer above.
		before := eng.Stats().DistCache.Hits
		for i, s := range srcs {
			got, err := eng.Dist(s)
			if err != nil || len(got) != len(ref[i]) {
				identical = false
				continue
			}
			for v := range got {
				if got[v] != ref[i][v] {
					identical = false
					break
				}
			}
		}
		st := eng.Stats()
		cacheOK := st.DistCache.Hits-before == int64(len(srcs))
		t.AddRow(d(int64(n)), d(int64(g.M())), d(int64(len(srcs))), d(workers),
			d(st.DistCache.Hits), d(st.DistCache.Misses), okFail(identical && cacheOK))
	}
	return t
}
