package harness

import (
	"math"
	"time"

	"repro/internal/adj"
	"repro/internal/baseline"
	"repro/internal/bmf"
	"repro/internal/exact"
	"repro/internal/graph"
	"repro/internal/hopset"
	"repro/internal/par"
	"repro/internal/pathrep"
	"repro/internal/pram"
	"repro/internal/relax"
	"repro/internal/scaling"
)

// Config scales the experiment sweeps.
type Config struct {
	// Quick shrinks every sweep for tests and CI; the full sweeps are what
	// EXPERIMENTS.md records.
	Quick bool
	Seed  int64
}

func (c Config) sizes(quick, full []int) []int {
	if c.Quick {
		return quick
	}
	return full
}

// All runs every experiment and returns their tables in order.
func All(cfg Config) []*Table {
	return []*Table{
		E1HopsetSize(cfg), E2Stretch(cfg), E3Work(cfg), E4SSSP(cfg),
		E5Depth(cfg), E6Phases(cfg), E7Stars(cfg), E8PathReport(cfg),
		E9KleinSairam(cfg), E10Derand(cfg), E11HopReduction(cfg),
		E12Speedup(cfg), E13Radii(cfg), E14Ledger(cfg),
		E15WeightModes(cfg), E16BetaSensitivity(cfg), E17Oracle(cfg),
	}
}

// maxStretchAt measures the worst distance ratio vs exact from the given
// sources after `budget` Bellman–Ford rounds over g ∪ extras.
func maxStretchAt(g *graph.Graph, extras []adj.Extra, budget int, srcs []int32) (worst float64) {
	a := adj.Build(g, extras)
	worst = 1
	for _, s := range srcs {
		ref, _ := exact.DijkstraGraph(g, s)
		res := relax.Run(a, []int32{s}, budget, relax.Options{})
		for v := 0; v < g.N; v++ {
			if math.IsInf(ref[v], 1) || ref[v] == 0 {
				continue
			}
			if r := res.Dist[v] / ref[v]; r > worst {
				worst = r
			}
		}
	}
	return worst
}

func defaultSources(n int) []int32 {
	return []int32{0, int32(n / 3), int32(2 * n / 3), int32(n - 1)}
}

func budgetOf(h *hopset.Hopset) int { return h.Sched.HopBudget() * (h.Sched.Ell + 2) }

// E1HopsetSize: Theorem 3.7 / eq. (10) — |H| ≤ ⌈log Λ⌉·n^{1+1/κ}.
func E1HopsetSize(cfg Config) *Table {
	t := &Table{
		ID: "E1", Title: "hopset size vs theorem bound",
		Claim: "Thm 3.7: |H| ≤ ⌈log Λ⌉·n^{1+1/κ}",
		Cols:  []string{"graph", "n", "m", "κ", "|H|", "bound", "|H|/bound"},
	}
	for _, n := range cfg.sizes([]int{128}, []int{256, 512, 1024, 2048}) {
		for _, kappa := range []int{2, 3, 4} {
			g := graph.Gnm(n, 4*n, graph.UniformWeights(1, 8), cfg.Seed+int64(n))
			h, err := hopset.Build(g, hopset.Params{Epsilon: 0.25, Kappa: kappa}, nil)
			if err != nil {
				panic(err)
			}
			bound := float64(h.Sched.Lambda+1) * hopset.SizeBound(n, kappa)
			t.AddRow("gnm", d(int64(n)), d(int64(g.M())), d(int64(kappa)),
				d(int64(h.Size())), f(bound), f(float64(h.Size())/bound))
		}
	}
	t.Notes = append(t.Notes, "ratio must stay < 1; it shrinks with n (the bound is loose)")
	return t
}

// E2Stretch: Theorem 3.7/3.8 — (1+ε) stretch at a bounded hop budget.
func E2Stretch(cfg Config) *Table {
	t := &Table{
		ID: "E2", Title: "stretch at bounded hop budget",
		Claim: "Thm 3.8: d^{(β)}_{G∪H} ≤ (1+ε)·d_G",
		Cols:  []string{"graph", "n", "ε", "max stretch", "1+ε", "budget", "ok"},
	}
	n := cfg.sizes([]int{192}, []int{1024})[0]
	gs := []struct {
		name string
		g    *graph.Graph
	}{
		{"gnm", graph.Gnm(n, 4*n, graph.UniformWeights(1, 6), cfg.Seed)},
		{"grid", graph.Grid(n/16, 16, graph.UniformWeights(1, 3), cfg.Seed)},
		{"powerlaw", graph.PowerLaw(n, 3, graph.UnitWeights(), cfg.Seed)},
	}
	for _, gc := range gs {
		for _, eps := range []float64{0.5, 0.25, 0.1} {
			h, err := hopset.Build(gc.g, hopset.Params{Epsilon: eps}, nil)
			if err != nil {
				panic(err)
			}
			worst := maxStretchAt(h.G, h.Extras(), budgetOf(h), defaultSources(h.G.N))
			t.AddRow(gc.name, d(int64(gc.g.N)), f(eps), f(worst), f(1+eps),
				d(int64(budgetOf(h))), okFail(worst <= 1+eps+1e-9))
		}
	}
	return t
}

// E3Work: Theorem 3.7 — work Õ((|E|+n^{1+1/κ})·n^ρ); fitted exponent.
func E3Work(cfg Config) *Table {
	t := &Table{
		ID: "E3", Title: "work scaling vs |E|·n^ρ",
		Claim: "Thm 3.7: O((|E|+n^{1+1/κ})·n^ρ) processors, polylog rounds",
		Cols:  []string{"ρ", "n", "m", "work", "m·n^ρ", "work/(m·n^ρ)", "fit exp"},
	}
	for _, rho := range []float64{0.25, 1.0 / 3.0, 0.45} {
		type pt struct{ logn, logw float64 }
		var pts []pt
		rows := [][]string{}
		for _, n := range cfg.sizes([]int{128, 256}, []int{128, 256, 512, 1024}) {
			g := graph.Gnm(n, 4*n, graph.UniformWeights(1, 4), cfg.Seed+int64(n))
			tr := pram.New()
			if _, err := hopset.Build(g, hopset.Params{Epsilon: 0.25, Rho: rho}, tr); err != nil {
				panic(err)
			}
			w := tr.Snapshot().Work
			ref := float64(g.M()) * math.Pow(float64(n), rho)
			pts = append(pts, pt{math.Log(float64(n)), math.Log(float64(w))})
			rows = append(rows, []string{f(rho), d(int64(n)), d(int64(g.M())),
				d(w), f(ref), f(float64(w) / ref), ""})
		}
		// Least-squares slope of log(work) vs log(n); m grows linearly in n,
		// so slope ≈ 1 + ρ + o(1) when the claim holds.
		slope := fitSlope(func(i int) (float64, float64) { return pts[i].logn, pts[i].logw }, len(pts))
		rows[len(rows)-1][6] = f(slope)
		for _, r := range rows {
			t.AddRow(r...)
		}
	}
	t.Notes = append(t.Notes, "fit exp is d log(work)/d log(n); claim predicts ≈ 1+ρ (m ∝ n) up to polylog factors")
	return t
}

func fitSlope(get func(i int) (x, y float64), n int) float64 {
	var sx, sy, sxx, sxy float64
	for i := 0; i < n; i++ {
		x, y := get(i)
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	den := float64(n)*sxx - sx*sx
	if den == 0 {
		return math.NaN()
	}
	return (float64(n)*sxy - sx*sy) / den
}

// E4SSSP: Theorem 3.8 — single- and multi-source approximate distances.
func E4SSSP(cfg Config) *Table {
	t := &Table{
		ID: "E4", Title: "aSSSD / aMSSD correctness and rounds",
		Claim: "Thm 3.8: (1+ε)-distances for S×V via |S| parallel β-hop Bellman–Ford",
		Cols:  []string{"graph", "|S|", "max stretch", "1+ε", "rounds", "ok"},
	}
	eps := 0.25
	n := cfg.sizes([]int{200}, []int{1024})[0]
	gs := []struct {
		name string
		g    *graph.Graph
	}{
		{"gnm", graph.Gnm(n, 4*n, graph.UniformWeights(1, 5), cfg.Seed)},
		{"community", graph.Community(n, 4, n, n/4, graph.UniformWeights(1, 3), cfg.Seed)},
	}
	for _, gc := range gs {
		h, err := hopset.Build(gc.g, hopset.Params{Epsilon: eps}, nil)
		if err != nil {
			panic(err)
		}
		a := adj.Build(h.G, h.Extras())
		for _, ns := range []int{1, 4, 16} {
			srcs := make([]int32, ns)
			for i := range srcs {
				srcs[i] = int32(i * h.G.N / ns)
			}
			worst := 1.0
			rounds := 0
			for _, s := range srcs {
				ref, _ := exact.DijkstraGraph(h.G, s)
				res := relax.Run(a, []int32{s}, budgetOf(h), relax.Options{})
				if res.Rounds > rounds {
					rounds = res.Rounds
				}
				for v := 0; v < h.G.N; v++ {
					if !math.IsInf(ref[v], 1) && ref[v] > 0 {
						if r := res.Dist[v] / ref[v]; r > worst {
							worst = r
						}
					}
				}
			}
			t.AddRow(gc.name, d(int64(ns)), f(worst), f(1+eps), d(int64(rounds)),
				okFail(worst <= 1+eps+1e-9))
		}
	}
	return t
}

// E5Depth: Theorem 3.7 — polylogarithmic depth; measured depth vs log³ n.
func E5Depth(cfg Config) *Table {
	t := &Table{
		ID: "E5", Title: "PRAM depth vs polylog(n)",
		Claim: "Thm 3.7: depth (log Λ)(log κρ+1/ρ)·β·log² n — polylog for Λ=poly(n)",
		Cols:  []string{"n", "depth", "log³n", "depth/log³n", "fit exp (log-log)"},
	}
	type pt struct{ x, y float64 }
	var pts []pt
	rows := [][]string{}
	for _, n := range cfg.sizes([]int{128, 256, 512}, []int{128, 256, 512, 1024, 2048}) {
		g := graph.Gnm(n, 4*n, graph.UniformWeights(1, 4), cfg.Seed+int64(n))
		tr := pram.New()
		if _, err := hopset.Build(g, hopset.Params{Epsilon: 0.25}, tr); err != nil {
			panic(err)
		}
		depth := tr.Snapshot().Depth
		l := math.Log2(float64(n))
		pts = append(pts, pt{math.Log(float64(n)), math.Log(float64(depth))})
		rows = append(rows, []string{d(int64(n)), d(depth), f(l * l * l), f(float64(depth) / (l * l * l)), ""})
	}
	slope := fitSlope(func(i int) (float64, float64) { return pts[i].x, pts[i].y }, len(pts))
	rows[len(rows)-1][4] = f(slope)
	for _, r := range rows {
		t.AddRow(r...)
	}
	t.Notes = append(t.Notes, "polylog depth ⇒ fit exponent ≪ 1 (work grows polynomially, depth polylogarithmically)")
	return t
}

// E6Phases: Lemmas 2.5–2.7 and eq. (5) — cluster-count decay per phase.
func E6Phases(cfg Config) *Table {
	t := &Table{
		ID: "E6", Title: "cluster decay per phase",
		Claim: "Lemma 2.5/2.6/2.7: |Pᵢ₊₁| ≤ |Pᵢ|/(degᵢ+1); |P_ℓ| ≤ n^ρ (eq. 5)",
		Cols:  []string{"scale", "phase", "|Pᵢ|", "degᵢ", "popular", "ruling", "super", "retired", "minSuper"},
	}
	// A sparse graph with κ=4 (smaller degree thresholds) exhibits genuine
	// multi-phase decay: some clusters are unpopular in phase 0 and retire,
	// superclusters re-enter phase 1, etc.
	n := cfg.sizes([]int{256}, []int{1024})[0]
	g := graph.Gnm(n, 2*n, graph.UniformWeights(1, 4), cfg.Seed)
	h, err := hopset.Build(g, hopset.Params{Epsilon: 0.25, Kappa: 4}, nil)
	if err != nil {
		panic(err)
	}
	shown := 0
	for _, st := range h.Stats {
		if st.Clusters <= 1 {
			continue
		}
		t.AddRow(d(int64(st.Scale)), d(int64(st.Phase)), d(int64(st.Clusters)),
			d(int64(st.Deg)), d(int64(st.Popular)), d(int64(st.Ruling)),
			d(int64(st.Superclustered)), d(int64(st.Retired)), d(int64(st.MinSuperSize)))
		shown++
		if shown >= 24 {
			t.Notes = append(t.Notes, "…truncated")
			break
		}
	}
	return t
}

// E7Stars: eq. (24) — the star-edge bound of the Klein–Sairam reduction.
func E7Stars(cfg Config) *Table {
	t := &Table{
		ID: "E7", Title: "Klein–Sairam star edges",
		Claim: "eq. (24): |S| ≤ n·log₂ n",
		Cols:  []string{"n", "weight scales", "|S|", "n·log n", "|S|/(n·log n)"},
	}
	for _, n := range cfg.sizes([]int{96}, []int{256, 512, 1024}) {
		for _, ws := range []int{8, 16} {
			g := graph.Gnm(n, 4*n, graph.GeometricScaleWeights(ws), cfg.Seed+int64(n))
			r, err := scaling.Build(g, scaling.Params{Epsilon: 0.5}, nil)
			if err != nil {
				panic(err)
			}
			bound := float64(n) * math.Log2(float64(n))
			t.AddRow(d(int64(n)), d(int64(ws)), d(int64(r.Stars)), f(bound),
				f(float64(r.Stars)/bound))
		}
	}
	return t
}

// E8PathReport: Theorem 4.6 — SPT validity and memory-path lengths.
func E8PathReport(cfg Config) *Table {
	t := &Table{
		ID: "E8", Title: "path-reporting hopsets and (1+ε)-SPT",
		Claim: "Thm 4.6: (1+ε)-SPT ⊆ E in polylog time; path lengths ≤ σ (eq. 20)",
		Cols:  []string{"graph", "n", "max stretch", "1+ε", "max |A(u,v)|", "peels", "valid"},
	}
	eps := 0.25
	n := cfg.sizes([]int{160}, []int{512})[0]
	gs := []struct {
		name string
		g    *graph.Graph
	}{
		{"gnm", graph.Gnm(n, 3*n, graph.UniformWeights(1, 5), cfg.Seed)},
		{"grid", graph.Grid(n/16, 16, graph.UnitWeights(), cfg.Seed)},
	}
	for _, gc := range gs {
		h, err := hopset.Build(gc.g, hopset.Params{Epsilon: eps, RecordPaths: true}, nil)
		if err != nil {
			panic(err)
		}
		spt, err := pathrep.BuildSPT(h, 0, 0, nil)
		if err != nil {
			panic(err)
		}
		valid := spt.Validate(h) == nil
		ref, _ := exact.DijkstraGraph(h.G, 0)
		worst := 1.0
		for v := 0; v < h.G.N; v++ {
			if !math.IsInf(ref[v], 1) && ref[v] > 0 {
				if r := spt.Dist[v] / ref[v]; r > worst {
					worst = r
				}
			}
		}
		t.AddRow(gc.name, d(int64(gc.g.N)), f(worst), f(1+eps),
			d(int64(h.MaxMemoryPathLen())), d(int64(spt.PeelRounds)),
			okFail(valid && worst <= 1+eps+1e-9))
	}
	return t
}

// E9KleinSairam: Theorems C.2/C.3/D.1 — aspect-ratio-free construction.
func E9KleinSairam(cfg Config) *Table {
	t := &Table{
		ID: "E9", Title: "aspect-ratio-free hopsets (Klein–Sairam)",
		Claim: "Thm C.2: size O(n^{1+1/κ}·log n), stretch 1+ε, for any Λ",
		Cols:  []string{"n", "log₂Λ", "scales", "|H|", "n^{4/3}·log n", "max stretch", "1+ε", "ok"},
	}
	eps := 0.5
	for _, n := range cfg.sizes([]int{96}, []int{256, 512}) {
		wss := []int{10, 24}
		if cfg.Quick {
			wss = []int{10}
		}
		for _, ws := range wss {
			g := graph.Gnm(n, 3*n, graph.GeometricScaleWeights(ws), cfg.Seed+int64(ws))
			r, err := scaling.Build(g, scaling.Params{Epsilon: eps}, nil)
			if err != nil {
				panic(err)
			}
			h := r.H
			budget := 6*h.Sched.HopBudget()*(h.Sched.Ell+2) + 5
			worst := maxStretchAt(h.G, h.Extras(), budget, defaultSources(h.G.N))
			bound := math.Pow(float64(n), 4.0/3.0) * math.Log2(float64(n))
			logLam := math.Log2(h.G.AspectRatioUpperBound())
			t.AddRow(d(int64(n)), f(logLam), d(int64(r.RelevantScales)),
				d(int64(h.Size())), f(bound), f(worst), f(1+eps),
				okFail(worst <= 1+eps+1e-9))
		}
	}
	return t
}

// E10Derand: the derandomization claim of §1.2 — ruling sets vs sampling.
func E10Derand(cfg Config) *Table {
	t := &Table{
		ID: "E10", Title: "deterministic ruling sets vs randomized sampling",
		Claim: "§1.2: ruling sets replace sampling with no loss in size or stretch",
		Cols:  []string{"method", "seed", "|H|", "max stretch", "1+ε", "build ms"},
	}
	eps := 0.25
	n := cfg.sizes([]int{192}, []int{768})[0]
	g := graph.Gnm(n, 4*n, graph.UniformWeights(1, 6), cfg.Seed)
	start := time.Now()
	h, err := hopset.Build(g, hopset.Params{Epsilon: eps}, nil)
	if err != nil {
		panic(err)
	}
	detMS := time.Since(start).Milliseconds()
	worst := maxStretchAt(h.G, h.Extras(), budgetOf(h), defaultSources(h.G.N))
	t.AddRow("deterministic", "-", d(int64(h.Size())), f(worst), f(1+eps), d(detMS))
	ng, _ := g.Normalized()
	for seed := int64(0); seed < 3; seed++ {
		start = time.Now()
		edges, sched, err := baseline.RandHopset(g, baseline.RandHopsetParams{Epsilon: eps, Seed: cfg.Seed + 100}, seed)
		if err != nil {
			panic(err)
		}
		ms := time.Since(start).Milliseconds()
		extras := make([]adj.Extra, len(edges))
		for i, e := range edges {
			extras[i] = adj.Extra{U: e.U, V: e.V, W: e.W}
		}
		budget := sched.HopBudget() * (sched.Ell + 2)
		w := maxStretchAt(ng, extras, budget, defaultSources(ng.N))
		t.AddRow("randomized", d(seed), d(int64(len(edges))), f(w), f(1+eps), d(ms))
	}
	t.Notes = append(t.Notes, "shape: comparable sizes and stretch — the deterministic construction matches the randomized one it derandomizes")
	return t
}

// E11HopReduction: §1.1 motivation — BF rounds with vs without the hopset.
func E11HopReduction(cfg Config) *Table {
	t := &Table{
		ID: "E11", Title: "hop reduction on high-diameter graphs",
		Claim: "§1.1: hopsets make β-hop Bellman–Ford sufficient; plain BF needs ~hop-diameter rounds",
		Cols:  []string{"graph", "n", "diam", "rounds w/o H", "rounds w/ H", "speedup"},
	}
	eps := 0.25
	type gc struct {
		name string
		g    *graph.Graph
		diam int
	}
	var cases []gc
	if cfg.Quick {
		cases = []gc{
			{"path", graph.Path(512, graph.UnitWeights(), 1), 511},
			{"grid", graph.Grid(16, 32, graph.UnitWeights(), 1), 46},
		}
	} else {
		cases = []gc{
			{"path", graph.Path(4096, graph.UnitWeights(), 1), 4095},
			{"grid", graph.Grid(64, 64, graph.UnitWeights(), 1), 126},
			{"cycle", graph.Cycle(2048, graph.UnitWeights(), 1), 1024},
		}
	}
	for _, c := range cases {
		h, err := hopset.Build(c.g, hopset.Params{Epsilon: eps}, nil)
		if err != nil {
			panic(err)
		}
		// An interior source: vertex 0 is often a ruling-set center (IDs
		// break ties), which would flatter the hopset with direct edges.
		src := int32(c.g.N/3 + 1)
		a := adj.Build(h.G, h.Extras())
		ref, _ := exact.DijkstraGraph(h.G, src)
		with := bmf.RoundsToApprox(a, []int32{src}, ref, eps, c.g.N, nil)
		without := bmf.RoundsToApprox(adj.Build(h.G, nil), []int32{src}, ref, eps, c.g.N, nil)
		speedup := float64(without) / math.Max(1, float64(with))
		t.AddRow(c.name, d(int64(c.g.N)), d(int64(c.diam)), d(int64(without)),
			d(int64(with)), f(speedup))
	}
	t.Notes = append(t.Notes, "shape: speedup grows with diameter — the crossover where hopsets pay off")
	return t
}

// E12Speedup: wall-clock scalability of the work-depth simulation.
func E12Speedup(cfg Config) *Table {
	t := &Table{
		ID: "E12", Title: "parallel speedup of the simulation",
		Claim: "§1.5.1 model: the construction parallelizes across processors",
		Cols:  []string{"workers", "build ms", "speedup", "deterministic"},
	}
	n := cfg.sizes([]int{256}, []int{1024})[0]
	g := graph.Gnm(n, 8*n, graph.UniformWeights(1, 4), cfg.Seed)
	old := par.Workers()
	defer par.SetWorkers(old)
	var base float64
	var refEdges []hopset.Edge
	for _, w := range []int{1, 2, 4, 8} {
		par.SetWorkers(w)
		start := time.Now()
		h, err := hopset.Build(g, hopset.Params{Epsilon: 0.25}, nil)
		if err != nil {
			panic(err)
		}
		ms := float64(time.Since(start).Microseconds()) / 1000
		if w == 1 {
			base = ms
			refEdges = h.Edges
		}
		same := len(h.Edges) == len(refEdges)
		for i := 0; same && i < len(refEdges); i++ {
			same = h.Edges[i] == refEdges[i]
		}
		t.AddRow(d(int64(w)), f(ms), f(base/ms), okFail(same))
	}
	t.Notes = append(t.Notes, "identical outputs at every worker count: the determinism claim under real parallelism")
	return t
}

// E13Radii: Lemma 2.2 / eq. (11) — measured radii vs the Rᵢ recurrence.
func E13Radii(cfg Config) *Table {
	t := &Table{
		ID: "E13", Title: "cluster radii vs worst-case recurrence",
		Claim: "Lemma 2.2: Rad(Pᵢ) ≤ Rᵢ where Rᵢ₊₁ = (2(1+ε)δᵢ+4Rᵢ)log n + Rᵢ",
		Cols:  []string{"scale", "phase", "measured rad", "Rᵢ bound", "ratio", "ok"},
	}
	n := cfg.sizes([]int{256}, []int{1024})[0]
	g := graph.Gnm(n, 6*n, graph.UniformWeights(1, 4), cfg.Seed)
	h, err := hopset.Build(g, hopset.Params{Epsilon: 0.25}, nil)
	if err != nil {
		panic(err)
	}
	shown := 0
	for _, st := range h.Stats {
		if st.MaxRad == 0 {
			continue
		}
		ok := st.MaxRad <= st.RBound+1e-9
		t.AddRow(d(int64(st.Scale)), d(int64(st.Phase)), f(st.MaxRad), f(st.RBound),
			f(st.MaxRad/st.RBound), okFail(ok))
		shown++
		if shown >= 16 {
			t.Notes = append(t.Notes, "…truncated")
			break
		}
	}
	return t
}

// E14Ledger: §3.1 eqs. (8)–(10) — per-scale edge counts.
func E14Ledger(cfg Config) *Table {
	t := &Table{
		ID: "E14", Title: "per-scale hopset size ledger",
		Claim: "eq. (9): |H_k| ≤ n^{1+1/κ} for every scale k",
		Cols:  []string{"scale", "|H_k|", "super", "interconnect", "n^{1+1/κ}", "ok"},
	}
	n := cfg.sizes([]int{256}, []int{1024})[0]
	g := graph.Gnm(n, 6*n, graph.UniformWeights(1, 8), cfg.Seed)
	h, err := hopset.Build(g, hopset.Params{Epsilon: 0.25}, nil)
	if err != nil {
		panic(err)
	}
	bound := hopset.SizeBound(n, 3)
	perScale := map[int][3]int{}
	for _, e := range h.Edges {
		c := perScale[int(e.Scale)]
		c[0]++
		if e.Kind == hopset.Superclustering {
			c[1]++
		} else {
			c[2]++
		}
		perScale[int(e.Scale)] = c
	}
	for k := h.Sched.K0; k <= h.Sched.Lambda; k++ {
		c := perScale[k]
		t.AddRow(d(int64(k)), d(int64(c[0])), d(int64(c[1])), d(int64(c[2])),
			f(bound), okFail(float64(c[0]) <= bound))
	}
	return t
}

// Fprint writes all tables to w.
func Fprint(w interface{ Write([]byte) (int, error) }, tables []*Table) {
	for _, t := range tables {
		t.Fprint(w)
	}
}
