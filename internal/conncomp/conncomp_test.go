package conncomp

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/pram"
)

func TestLabelsMatchSequentialBFS(t *testing.T) {
	graphs := []*graph.Graph{
		graph.Path(50, graph.UnitWeights(), 1),
		graph.Gnm(200, 300, graph.UniformWeights(1, 5), 2),
		graph.MustFromEdges(7, []graph.Edge{graph.E(0, 1, 1), graph.E(2, 3, 1), graph.E(3, 4, 1)}),
		graph.MustFromEdges(3, nil),
	}
	for gi, g := range graphs {
		f := Build(g, math.Inf(1), nil)
		want := g.ComponentLabels()
		for v := range want {
			if f.Label[v] != want[v] {
				t.Fatalf("graph %d vertex %d: label %d want %d", gi, v, f.Label[v], want[v])
			}
		}
	}
}

func TestWeightRestriction(t *testing.T) {
	// 0-1 light, 1-2 heavy, 2-3 light: restricting to w<=1 splits at 1-2.
	g := graph.MustFromEdges(4, []graph.Edge{graph.E(0, 1, 1), graph.E(1, 2, 10), graph.E(2, 3, 1)})
	f := Build(g, 1, nil)
	if f.Label[0] != 0 || f.Label[1] != 0 {
		t.Fatalf("light component labels: %v", f.Label)
	}
	if f.Label[2] != 2 || f.Label[3] != 2 {
		t.Fatalf("second component labels: %v", f.Label)
	}
}

func TestForestIsValidSpanningForest(t *testing.T) {
	g := graph.Gnm(300, 900, graph.UniformWeights(1, 5), 3)
	f := Build(g, math.Inf(1), nil)
	for v := int32(0); int(v) < g.N; v++ {
		p := f.Parent[v]
		if f.Label[v] == v {
			if p != -1 {
				t.Fatalf("root %d has parent %d", v, p)
			}
			continue
		}
		if p < 0 {
			t.Fatalf("non-root %d has no parent", v)
		}
		w, ok := g.HasEdge(v, p)
		if !ok {
			t.Fatalf("tree edge (%d,%d) not in graph", v, p)
		}
		if w != f.ParentW[v] {
			t.Fatalf("tree edge (%d,%d) weight %v recorded %v", v, p, w, f.ParentW[v])
		}
		if f.Depth[v] != f.Depth[p]+1 {
			t.Fatalf("depth[%d]=%d but depth[parent]=%d", v, f.Depth[v], f.Depth[p])
		}
		if f.Label[p] != f.Label[v] {
			t.Fatalf("parent in different component")
		}
	}
}

func TestTreePathEndsAtRoot(t *testing.T) {
	g := graph.Grid(8, 8, graph.UnitWeights(), 1)
	f := Build(g, math.Inf(1), nil)
	for v := int32(0); int(v) < g.N; v++ {
		path := f.TreePath(v)
		if path[0] != v {
			t.Fatalf("path starts at %d want %d", path[0], v)
		}
		last := path[len(path)-1]
		if f.Label[v] != last || f.Parent[last] != -1 {
			t.Fatalf("path does not end at root: %v", path)
		}
		if len(path) != int(f.Depth[v])+1 {
			t.Fatalf("path len %d want depth+1=%d", len(path), f.Depth[v]+1)
		}
	}
}

func TestRootDistMatchesTreeWalk(t *testing.T) {
	g := graph.Gnm(150, 400, graph.UniformWeights(1, 9), 5)
	f := Build(g, math.Inf(1), nil)
	d := f.RootDist(nil)
	for v := int32(0); int(v) < g.N; v++ {
		var want float64
		for u := v; f.Parent[u] >= 0; u = f.Parent[u] {
			want += f.ParentW[u]
		}
		if math.Abs(d[v]-want) > 1e-9 {
			t.Fatalf("vertex %d: rootdist %v want %v", v, d[v], want)
		}
	}
}

func TestDeterministicAcrossWorkers(t *testing.T) {
	old := par.Workers()
	defer par.SetWorkers(old)
	g := graph.Gnm(500, 2000, graph.UniformWeights(1, 8), 7)
	par.SetWorkers(1)
	ref := Build(g, math.Inf(1), nil)
	for _, w := range []int{2, 4, 8} {
		par.SetWorkers(w)
		f := Build(g, math.Inf(1), nil)
		for v := 0; v < g.N; v++ {
			if f.Label[v] != ref.Label[v] || f.Parent[v] != ref.Parent[v] {
				t.Fatalf("workers=%d vertex %d: (%d,%d) vs ref (%d,%d)",
					w, v, f.Label[v], f.Parent[v], ref.Label[v], ref.Parent[v])
			}
		}
	}
}

func TestTrackerCharged(t *testing.T) {
	tr := pram.New()
	g := graph.Gnm(100, 300, graph.UnitWeights(), 1)
	Build(g, math.Inf(1), tr)
	s := tr.Snapshot()
	if s.Depth == 0 || s.Work == 0 {
		t.Fatalf("tracker not charged: %v", s)
	}
}

func TestRandomRestrictionsMatchBFS(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		g := graph.Gnm(80, 200, graph.UniformWeights(1, 10), int64(trial))
		maxW := 1 + r.Float64()*9
		f := Build(g, maxW, nil)
		// Sequential reference on the restricted subgraph.
		var restricted []graph.Edge
		for _, e := range g.Edges {
			if e.W <= maxW {
				restricted = append(restricted, e)
			}
		}
		rg := graph.MustFromEdges(g.N, restricted)
		want := rg.ComponentLabels()
		for v := range want {
			if f.Label[v] != want[v] {
				t.Fatalf("trial %d maxW=%v vertex %d: %d want %d", trial, maxW, v, f.Label[v], want[v])
			}
		}
	}
}
