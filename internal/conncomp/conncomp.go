// Package conncomp implements the deterministic parallel connected
// components and spanning forests the paper relies on ([SV82], cited in
// §1.1 footnote 1 and Appendix C).
//
// Components are computed by Shiloach–Vishkin-style min-label propagation
// with pointer jumping: every vertex repeatedly adopts the smallest label in
// its neighborhood and labels are short-cut, converging in O(log n)
// propagation/jump super-rounds on any graph. Labels are the minimum vertex
// ID of each component, so the output is canonical and deterministic.
//
// The spanning forest (needed by the Klein–Sairam reduction for the
// per-node trees T_U, Appendix C.3) is a deterministic parallel BFS forest
// rooted at each component's minimum-ID vertex: in each round every
// unreached vertex adopts the smallest reached neighbor as parent. Distances
// to the root along tree edges are computed by pointer jumping (§4.2).
package conncomp

import (
	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/pram"
)

// Forest is the result of a components + spanning forest computation,
// restricted to edges with weight ≤ the MaxWeight passed to Build.
type Forest struct {
	// Label[v] is the minimum vertex ID in v's component.
	Label []int32
	// Parent[v] is v's BFS-forest parent; roots (v == Label[v]) have -1.
	Parent []int32
	// ParentW[v] is the weight of the (v, Parent[v]) tree edge; 0 at roots.
	ParentW []float64
	// Depth[v] is the number of tree edges from v to its root.
	Depth []int32
}

// Build computes components and a spanning forest of the subgraph of g with
// edge weights ≤ maxW (maxW = +Inf for the whole graph).
func Build(g *graph.Graph, maxW float64, tr *pram.Tracker) *Forest {
	n := g.N
	f := &Forest{
		Label:   make([]int32, n),
		Parent:  make([]int32, n),
		ParentW: make([]float64, n),
		Depth:   make([]int32, n),
	}
	labels(g, maxW, f.Label, tr)
	bfsForest(g, maxW, f, tr)
	return f
}

// labels fills label[v] with the min vertex ID of v's component in the
// weight-restricted subgraph.
func labels(g *graph.Graph, maxW float64, label []int32, tr *pram.Tracker) {
	n := g.N
	next := make([]int32, n)
	for v := range label {
		label[v] = int32(v)
	}
	for {
		changed := false
		// Propagation: adopt the minimum label in the closed neighborhood.
		par.For(n, func(v int) {
			best := label[v]
			lo, hi := g.Off[v], g.Off[v+1]
			for a := lo; a < hi; a++ {
				if g.Wt[a] > maxW {
					continue
				}
				if l := label[g.Nbr[a]]; l < best {
					best = l
				}
			}
			next[v] = best
		})
		nChanged := par.CountIf(n, func(v int) bool { return next[v] != label[v] })
		copy(label, next)
		tr.Rounds(2, int64(len(g.Nbr)))
		if nChanged > 0 {
			changed = true
		}
		// Pointer jumping: label[v] ← label[label[v]] until stable.
		for {
			par.For(n, func(v int) { next[v] = label[label[v]] })
			nJump := par.CountIf(n, func(v int) bool { return next[v] != label[v] })
			copy(label, next)
			tr.Rounds(2, int64(n))
			if nJump == 0 {
				break
			}
			changed = true
		}
		if !changed {
			return
		}
	}
}

// bfsForest builds the deterministic BFS forest rooted at each component's
// labeled root.
func bfsForest(g *graph.Graph, maxW float64, f *Forest, tr *pram.Tracker) {
	n := g.N
	const unreached = int32(-2)
	for v := 0; v < n; v++ {
		if f.Label[v] == int32(v) {
			f.Parent[v] = -1
			f.Depth[v] = 0
		} else {
			f.Parent[v] = unreached
		}
	}
	newParent := make([]int32, n)
	newW := make([]float64, n)
	for depth := int32(1); ; depth++ {
		// Each unreached vertex picks its smallest reached neighbor.
		par.For(n, func(v int) {
			newParent[v] = unreached
			if f.Parent[v] != unreached {
				return
			}
			best := int32(-1)
			bestW := 0.0
			lo, hi := g.Off[v], g.Off[v+1]
			for a := lo; a < hi; a++ {
				if g.Wt[a] > maxW {
					continue
				}
				u := g.Nbr[a]
				if f.Parent[u] == unreached {
					continue
				}
				if best == -1 || u < best {
					best, bestW = u, g.Wt[a]
				}
			}
			if best >= 0 {
				newParent[v], newW[v] = best, bestW
			}
		})
		adopted := par.CountIf(n, func(v int) bool { return newParent[v] != unreached })
		tr.Rounds(2, int64(len(g.Nbr)))
		if adopted == 0 {
			break
		}
		par.For(n, func(v int) {
			if newParent[v] != unreached {
				f.Parent[v] = newParent[v]
				f.ParentW[v] = newW[v]
				f.Depth[v] = depth
			}
		})
	}
	// Vertices still unreached are isolated in the restricted subgraph and
	// are their own roots by construction of Label; make that explicit.
	par.For(n, func(v int) {
		if f.Parent[v] == unreached {
			f.Parent[v] = -1
		}
	})
}

// RootDist returns, for every vertex, the weighted distance to its forest
// root along tree edges, computed by the pointer-jumping procedure of §4.2:
// log n doubling rounds of d'(v) += d'(q(v)); q(v) = q(q(v)).
func (f *Forest) RootDist(tr *pram.Tracker) []float64 {
	n := len(f.Parent)
	d := make([]float64, n)
	q := make([]int32, n)
	par.For(n, func(v int) {
		if f.Parent[v] < 0 {
			q[v] = int32(v)
			d[v] = 0
		} else {
			q[v] = f.Parent[v]
			d[v] = f.ParentW[v]
		}
	})
	d2 := make([]float64, n)
	q2 := make([]int32, n)
	for {
		par.For(n, func(v int) {
			d2[v] = d[v] + d[q[v]]
			q2[v] = q[q[v]]
		})
		moved := par.CountIf(n, func(v int) bool { return q2[v] != q[v] })
		copy(d, d2)
		copy(q, q2)
		tr.Rounds(2, int64(n))
		if moved == 0 {
			return d
		}
	}
}

// TreePath returns the vertex sequence from v up to its root along parent
// pointers (v first, root last).
func (f *Forest) TreePath(v int32) []int32 {
	path := []int32{v}
	for f.Parent[v] >= 0 {
		v = f.Parent[v]
		path = append(path, v)
	}
	return path
}
