package graph

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ContractZeroWeights implements the paper's footnote 1 (§1.1): graphs
// with non-negative weights are reduced to positive weights by contracting
// every zero-weight edge (connected components of the zero-weight subgraph
// become single vertices; the paper runs Shiloach–Vishkin [SV82] for this —
// here the components are found by the same deterministic min-label rule).
//
// It returns the contracted graph, plus a mapping from original vertices to
// contracted vertices. Distances are preserved: dG(u,v) equals the
// contracted distance between Map[u] and Map[v]. Edges with negative, NaN
// or infinite weight are rejected.
func ContractZeroWeights(n int, edges []Edge) (*Graph, []int32, error) {
	if n <= 0 {
		return nil, nil, ErrEmptyVertex
	}
	for _, e := range edges {
		if e.U < 0 || e.V < 0 || int(e.U) >= n || int(e.V) >= n {
			return nil, nil, fmt.Errorf("%w: (%d,%d)", ErrVertexRange, e.U, e.V)
		}
		if e.W < 0 || math.IsNaN(e.W) || math.IsInf(e.W, 0) {
			return nil, nil, fmt.Errorf("%w: weight %v", ErrBadWeight, e.W)
		}
	}
	// Min-label components of the zero-weight subgraph (deterministic:
	// iterate label propagation to a fixed point).
	label := make([]int32, n)
	for v := range label {
		label[v] = int32(v)
	}
	for changed := true; changed; {
		changed = false
		for _, e := range edges {
			if e.W != 0 {
				continue
			}
			lu, lv := label[e.U], label[e.V]
			if lu == lv {
				continue
			}
			if lu > lv {
				lu = lv
			}
			if label[e.U] != lu || label[e.V] != lu {
				label[e.U], label[e.V] = lu, lu
				changed = true
			}
		}
		// Pointer-jump labels to their roots.
		for v := range label {
			for label[v] != label[label[v]] {
				label[v] = label[label[v]]
			}
		}
	}
	// Dense re-indexing of component roots, in root order.
	roots := map[int32]bool{}
	for v := range label {
		roots[label[v]] = true
	}
	ordered := make([]int32, 0, len(roots))
	for r := range roots {
		ordered = append(ordered, r)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i] < ordered[j] })
	idx := make(map[int32]int32, len(ordered))
	for i, r := range ordered {
		idx[r] = int32(i)
	}
	mapping := make([]int32, n)
	for v := range mapping {
		mapping[v] = idx[label[v]]
	}
	// Positive-weight edges between distinct components survive.
	var out []Edge
	for _, e := range edges {
		u, v := mapping[e.U], mapping[e.V]
		if u == v {
			if e.W > 0 {
				continue // positive edge inside a zero-component: never shortest
			}
			continue
		}
		out = append(out, Edge{U: u, V: v, W: e.W})
	}
	if len(ordered) == 1 {
		// Everything contracted to one vertex: a valid single-vertex graph.
		g, err := FromEdges(1, nil)
		return g, mapping, err
	}
	g, err := FromEdges(len(ordered), out)
	if err != nil {
		return nil, nil, err
	}
	return g, mapping, nil
}

// ErrNegativeWeight is kept for API clarity; ContractZeroWeights wraps
// ErrBadWeight for all invalid weights.
var ErrNegativeWeight = errors.New("graph: negative weight")
