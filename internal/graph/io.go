package graph

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The text format is DIMACS-like:
//
//	c free-form comment lines
//	p <n> <m>
//	e <u> <v> <w>     (m lines, 0-based vertices, float weight)

// ErrFormat is returned (wrapped) by Decode for malformed input.
var ErrFormat = errors.New("graph: bad format")

// Encode writes g in the text format.
func Encode(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "p %d %d\n", g.N, g.M()); err != nil {
		return err
	}
	for _, e := range g.Edges {
		if _, err := fmt.Fprintf(bw, "e %d %d %g\n", e.U, e.V, e.W); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Decode reads a graph in the text format.
func Decode(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	var (
		n, m    int
		sawP    bool
		edges   []Edge
		lineNum int
	)
	for sc.Scan() {
		lineNum++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "c") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "p":
			if sawP {
				return nil, fmt.Errorf("%w: duplicate p line at %d", ErrFormat, lineNum)
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("%w: p line at %d", ErrFormat, lineNum)
			}
			var err1, err2 error
			n, err1 = strconv.Atoi(fields[1])
			m, err2 = strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil || n <= 0 || m < 0 {
				return nil, fmt.Errorf("%w: p line at %d", ErrFormat, lineNum)
			}
			sawP = true
			edges = make([]Edge, 0, m)
		case "e":
			if !sawP {
				return nil, fmt.Errorf("%w: e before p at line %d", ErrFormat, lineNum)
			}
			if len(fields) != 4 {
				return nil, fmt.Errorf("%w: e line at %d", ErrFormat, lineNum)
			}
			u, err1 := strconv.Atoi(fields[1])
			v, err2 := strconv.Atoi(fields[2])
			w, err3 := strconv.ParseFloat(fields[3], 64)
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("%w: e line at %d", ErrFormat, lineNum)
			}
			edges = append(edges, Edge{int32(u), int32(v), w})
		default:
			return nil, fmt.Errorf("%w: unknown record %q at line %d", ErrFormat, fields[0], lineNum)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sawP {
		return nil, fmt.Errorf("%w: missing p line", ErrFormat)
	}
	if len(edges) != m {
		return nil, fmt.Errorf("%w: expected %d edges, got %d", ErrFormat, m, len(edges))
	}
	return FromEdges(n, edges)
}
