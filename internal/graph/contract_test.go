package graph

import (
	"math"
	"math/rand"
	"testing"

	"container/heap"
)

// dijkstraEdges computes exact distances over an arbitrary non-negative
// edge list (reference implementation for contraction tests).
func dijkstraEdges(n int, edges []Edge, s int32) []float64 {
	adj := make([][]Edge, n)
	for _, e := range edges {
		adj[e.U] = append(adj[e.U], e)
		adj[e.V] = append(adj[e.V], Edge{U: e.V, V: e.U, W: e.W})
	}
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[s] = 0
	pq := &edgeHeap{{V: s, W: 0}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(Edge)
		if it.W > dist[it.V] {
			continue
		}
		for _, e := range adj[it.V] {
			if d := it.W + e.W; d < dist[e.V] {
				dist[e.V] = d
				heap.Push(pq, Edge{V: e.V, W: d})
			}
		}
	}
	return dist
}

type edgeHeap []Edge

func (h edgeHeap) Len() int            { return len(h) }
func (h edgeHeap) Less(i, j int) bool  { return h[i].W < h[j].W }
func (h edgeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *edgeHeap) Push(x interface{}) { *h = append(*h, x.(Edge)) }
func (h *edgeHeap) Pop() interface{} {
	old := *h
	it := old[len(old)-1]
	*h = old[:len(old)-1]
	return it
}

func TestContractZeroWeightsBasic(t *testing.T) {
	// 0 -0- 1 -2- 2 -0- 3: vertices {0,1} and {2,3} merge.
	edges := []Edge{E(0, 1, 0), E(1, 2, 2), E(2, 3, 0)}
	g, mapping, err := ContractZeroWeights(4, edges)
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 2 || g.M() != 1 {
		t.Fatalf("n=%d m=%d", g.N, g.M())
	}
	if mapping[0] != mapping[1] || mapping[2] != mapping[3] || mapping[0] == mapping[2] {
		t.Fatalf("mapping=%v", mapping)
	}
	if w, ok := g.HasEdge(mapping[0], mapping[2]); !ok || w != 2 {
		t.Fatalf("contracted edge: %v %v", w, ok)
	}
}

func TestContractPreservesDistances(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		n := 40
		var edges []Edge
		// Random connected graph with ~25% zero-weight edges.
		for v := int32(1); int(v) < n; v++ {
			w := float64(r.Intn(4)) // 0..3, zero possible
			edges = append(edges, Edge{U: int32(r.Intn(int(v))), V: v, W: w})
		}
		for i := 0; i < 40; i++ {
			u, v := int32(r.Intn(n)), int32(r.Intn(n))
			if u != v {
				edges = append(edges, Edge{U: u, V: v, W: float64(r.Intn(4))})
			}
		}
		cg, mapping, err := ContractZeroWeights(n, edges)
		if err != nil {
			t.Fatal(err)
		}
		minW, _ := cg.WeightRange()
		if cg.M() > 0 && minW <= 0 {
			t.Fatalf("contracted graph still has non-positive weights: %v", minW)
		}
		ref := dijkstraEdges(n, edges, 0)
		var cref []float64
		if cg.N == 1 {
			cref = []float64{0}
		} else {
			cref = dijkstraEdges(cg.N, cg.Edges, mapping[0])
		}
		for v := 0; v < n; v++ {
			if math.Abs(ref[v]-cref[mapping[v]]) > 1e-9 {
				t.Fatalf("trial %d vertex %d: original %v contracted %v", trial, v, ref[v], cref[mapping[v]])
			}
		}
	}
}

func TestContractAllZero(t *testing.T) {
	g, mapping, err := ContractZeroWeights(3, []Edge{E(0, 1, 0), E(1, 2, 0)})
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 1 {
		t.Fatalf("n=%d want 1", g.N)
	}
	for _, m := range mapping {
		if m != 0 {
			t.Fatalf("mapping=%v", mapping)
		}
	}
}

func TestContractNoZeros(t *testing.T) {
	edges := []Edge{E(0, 1, 1), E(1, 2, 2)}
	g, mapping, err := ContractZeroWeights(3, edges)
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 3 || g.M() != 2 {
		t.Fatalf("n=%d m=%d", g.N, g.M())
	}
	for v, m := range mapping {
		if int32(v) != m {
			t.Fatalf("identity mapping expected: %v", mapping)
		}
	}
}

func TestContractRejectsBadWeights(t *testing.T) {
	if _, _, err := ContractZeroWeights(2, []Edge{E(0, 1, -1)}); err == nil {
		t.Fatal("negative weight accepted")
	}
	if _, _, err := ContractZeroWeights(2, []Edge{E(0, 1, math.NaN())}); err == nil {
		t.Fatal("NaN accepted")
	}
	if _, _, err := ContractZeroWeights(2, []Edge{E(0, 3, 1)}); err == nil {
		t.Fatal("out-of-range vertex accepted")
	}
	if _, _, err := ContractZeroWeights(0, nil); err == nil {
		t.Fatal("empty vertex set accepted")
	}
}

func TestContractParallelZeroAndPositive(t *testing.T) {
	// Zero edge and positive edge between the same pair: the pair merges
	// and the positive edge (now a self-loop) is dropped.
	g, mapping, err := ContractZeroWeights(2, []Edge{E(0, 1, 0), E(0, 1, 5)})
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 1 || g.M() != 0 {
		t.Fatalf("n=%d m=%d", g.N, g.M())
	}
	if mapping[0] != mapping[1] {
		t.Fatal("pair not merged")
	}
}
