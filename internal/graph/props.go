package graph

import "math"

// WeightRange returns the minimum and maximum edge weight, or (0, 0) for an
// edgeless graph.
func (g *Graph) WeightRange() (minW, maxW float64) {
	if g.M() == 0 {
		return 0, 0
	}
	minW, maxW = math.Inf(1), math.Inf(-1)
	for _, e := range g.Edges {
		if e.W < minW {
			minW = e.W
		}
		if e.W > maxW {
			maxW = e.W
		}
	}
	return minW, maxW
}

// AspectRatioUpperBound returns an upper bound on the aspect ratio Λ of the
// graph — the ratio between the largest and smallest pairwise distance
// (§1.5). Any distance is at most (n−1)·maxW and at least minW, so
// Λ ≤ (n−1)·maxW/minW. The hopset driver uses ⌈log₂ Λ⌉ distance scales;
// using an upper bound only adds empty top scales.
func (g *Graph) AspectRatioUpperBound() float64 {
	minW, maxW := g.WeightRange()
	if minW == 0 {
		return 1
	}
	return float64(g.N-1) * maxW / minW
}

// ComponentLabels returns, for every vertex, the smallest vertex ID in its
// connected component (sequential BFS; used by tests and ground truth).
func (g *Graph) ComponentLabels() []int32 {
	label := make([]int32, g.N)
	for i := range label {
		label[i] = -1
	}
	queue := make([]int32, 0, g.N)
	for s := int32(0); int(s) < g.N; s++ {
		if label[s] >= 0 {
			continue
		}
		label[s] = s
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			nbr, _ := g.Neighbors(v)
			for _, u := range nbr {
				if label[u] < 0 {
					label[u] = s
					queue = append(queue, u)
				}
			}
		}
	}
	return label
}

// IsConnected reports whether the graph has a single connected component.
func (g *Graph) IsConnected() bool {
	if g.N == 0 {
		return true
	}
	labels := g.ComponentLabels()
	for _, l := range labels {
		if l != 0 {
			return false
		}
	}
	return true
}

// MaxDegree returns the maximum vertex degree.
func (g *Graph) MaxDegree() int {
	maxd := 0
	for v := 0; v < g.N; v++ {
		if d := g.Degree(int32(v)); d > maxd {
			maxd = d
		}
	}
	return maxd
}

// TotalWeight returns the sum of all edge weights.
func (g *Graph) TotalWeight() float64 {
	var s float64
	for _, e := range g.Edges {
		s += e.W
	}
	return s
}
