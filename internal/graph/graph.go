// Package graph implements the weighted undirected graphs of the paper
// (§1.5): positive edge weights, unique vertex IDs in [0, n), and the
// aspect-ratio bookkeeping the multi-scale hopset construction needs.
//
// Graphs are stored in compressed-sparse-row (CSR) form with both arc
// directions materialized; adjacency lists are sorted by neighbor ID so all
// traversals are deterministic.
package graph

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Edge is one undirected weighted edge.
type Edge struct {
	U, V int32
	W    float64
}

// E is a convenience constructor for Edge.
func E(u, v int32, w float64) Edge { return Edge{U: u, V: v, W: w} }

// Graph is an immutable weighted undirected graph in CSR form.
type Graph struct {
	N int // number of vertices

	// CSR over directed arcs (each undirected edge appears twice).
	Off []int32   // len N+1; arcs of vertex v are [Off[v], Off[v+1])
	Nbr []int32   // neighbor per arc
	Wt  []float64 // weight per arc
	EID []int32   // undirected edge index per arc

	Edges []Edge // canonical undirected edge list (U < V), sorted
}

// M returns the number of undirected edges.
func (g *Graph) M() int { return len(g.Edges) }

// Arcs returns the number of directed arcs (2·M).
func (g *Graph) Arcs() int { return len(g.Nbr) }

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v int32) int { return int(g.Off[v+1] - g.Off[v]) }

// Neighbors returns the (sorted) neighbor and weight slices of v. The
// returned slices alias the graph's storage and must not be modified.
func (g *Graph) Neighbors(v int32) ([]int32, []float64) {
	lo, hi := g.Off[v], g.Off[v+1]
	return g.Nbr[lo:hi], g.Wt[lo:hi]
}

// HasEdge reports whether the undirected edge (u, v) exists, and its weight.
func (g *Graph) HasEdge(u, v int32) (float64, bool) {
	lo, hi := int(g.Off[u]), int(g.Off[u+1])
	nbr := g.Nbr[lo:hi]
	i := sort.Search(len(nbr), func(i int) bool { return nbr[i] >= v })
	if i < len(nbr) && nbr[i] == v {
		return g.Wt[lo+i], true
	}
	return 0, false
}

// Errors reported by FromEdges.
var (
	ErrVertexRange  = errors.New("graph: vertex out of range")
	ErrSelfLoop     = errors.New("graph: self loop")
	ErrBadWeight    = errors.New("graph: weight must be positive and finite")
	ErrEmptyVertex  = errors.New("graph: vertex count must be positive")
	ErrTooManyVerts = errors.New("graph: vertex count exceeds int32 range")
)

// FromEdges builds a graph from an undirected edge list.
//
// It validates vertices and weights, canonicalizes edges to U < V, and
// collapses parallel edges keeping the minimum weight (the paper assumes
// simple graphs; keeping the lightest parallel edge preserves all
// distances). Self loops are rejected: they never lie on shortest paths and
// the paper's model excludes them.
func FromEdges(n int, edges []Edge) (*Graph, error) {
	if n <= 0 {
		return nil, ErrEmptyVertex
	}
	if n > math.MaxInt32 {
		return nil, ErrTooManyVerts
	}
	canon := make([]Edge, 0, len(edges))
	for _, e := range edges {
		if e.U < 0 || e.V < 0 || int(e.U) >= n || int(e.V) >= n {
			return nil, fmt.Errorf("%w: (%d,%d) with n=%d", ErrVertexRange, e.U, e.V, n)
		}
		if e.U == e.V {
			return nil, fmt.Errorf("%w: vertex %d", ErrSelfLoop, e.U)
		}
		if !(e.W > 0) || math.IsInf(e.W, 0) || math.IsNaN(e.W) {
			return nil, fmt.Errorf("%w: (%d,%d) weight %v", ErrBadWeight, e.U, e.V, e.W)
		}
		if e.U > e.V {
			e.U, e.V = e.V, e.U
		}
		canon = append(canon, e)
	}
	sort.Slice(canon, func(i, j int) bool {
		a, b := canon[i], canon[j]
		if a.U != b.U {
			return a.U < b.U
		}
		if a.V != b.V {
			return a.V < b.V
		}
		return a.W < b.W
	})
	// Collapse parallel edges, keeping the minimum weight (first after sort).
	dedup := canon[:0]
	for _, e := range canon {
		if k := len(dedup); k > 0 && dedup[k-1].U == e.U && dedup[k-1].V == e.V {
			continue
		}
		dedup = append(dedup, e)
	}
	return fromCanonical(n, dedup), nil
}

// fromCanonical builds the CSR from a deduplicated, sorted, U<V edge list.
func fromCanonical(n int, edges []Edge) *Graph {
	g := &Graph{N: n, Edges: edges}
	deg := make([]int32, n+1)
	for _, e := range edges {
		deg[e.U+1]++
		deg[e.V+1]++
	}
	for i := 0; i < n; i++ {
		deg[i+1] += deg[i]
	}
	g.Off = deg
	arcs := 2 * len(edges)
	g.Nbr = make([]int32, arcs)
	g.Wt = make([]float64, arcs)
	g.EID = make([]int32, arcs)
	at := make([]int32, n)
	copy(at, g.Off[:n])
	for id, e := range edges {
		g.Nbr[at[e.U]], g.Wt[at[e.U]], g.EID[at[e.U]] = e.V, e.W, int32(id)
		at[e.U]++
		g.Nbr[at[e.V]], g.Wt[at[e.V]], g.EID[at[e.V]] = e.U, e.W, int32(id)
		at[e.V]++
	}
	// Adjacency is already sorted by neighbor because edges are sorted by
	// (U, V) and scattered in order — except arcs of v coming from edges
	// where v is the larger endpoint interleave. Sort each list once.
	for v := 0; v < n; v++ {
		lo, hi := int(g.Off[v]), int(g.Off[v+1])
		sortArcRange(g, lo, hi)
	}
	return g
}

func sortArcRange(g *Graph, lo, hi int) {
	type arc struct {
		nbr int32
		wt  float64
		eid int32
	}
	tmp := make([]arc, hi-lo)
	for i := range tmp {
		tmp[i] = arc{g.Nbr[lo+i], g.Wt[lo+i], g.EID[lo+i]}
	}
	sort.Slice(tmp, func(i, j int) bool { return tmp[i].nbr < tmp[j].nbr })
	for i, a := range tmp {
		g.Nbr[lo+i], g.Wt[lo+i], g.EID[lo+i] = a.nbr, a.wt, a.eid
	}
}

// MustFromEdges is FromEdges that panics on error; for tests and generators
// whose outputs are valid by construction.
func MustFromEdges(n int, edges []Edge) *Graph {
	g, err := FromEdges(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// Normalized returns a copy of g with weights divided by the minimum edge
// weight, so the minimum weight is exactly 1 as the paper assumes (§1.5),
// plus the scale factor to convert distances back. A graph with no edges is
// returned unchanged with factor 1.
func (g *Graph) Normalized() (*Graph, float64) {
	if g.M() == 0 {
		return g, 1
	}
	minW := math.Inf(1)
	for _, e := range g.Edges {
		if e.W < minW {
			minW = e.W
		}
	}
	if minW == 1 {
		return g, 1
	}
	edges := make([]Edge, len(g.Edges))
	for i, e := range g.Edges {
		edges[i] = Edge{e.U, e.V, e.W / minW}
	}
	return fromCanonical(g.N, edges), minW
}
