package graph

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFromEdgesBasic(t *testing.T) {
	g, err := FromEdges(4, []Edge{{0, 1, 1}, {1, 2, 2}, {2, 3, 3}, {3, 0, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 4 || g.M() != 4 || g.Arcs() != 8 {
		t.Fatalf("n=%d m=%d arcs=%d", g.N, g.M(), g.Arcs())
	}
	if w, ok := g.HasEdge(0, 3); !ok || w != 4 {
		t.Fatalf("edge (0,3): w=%v ok=%v", w, ok)
	}
	if w, ok := g.HasEdge(3, 0); !ok || w != 4 {
		t.Fatalf("edge (3,0): w=%v ok=%v", w, ok)
	}
	if _, ok := g.HasEdge(0, 2); ok {
		t.Fatal("edge (0,2) should not exist")
	}
}

func TestFromEdgesValidation(t *testing.T) {
	cases := []struct {
		n     int
		edges []Edge
		want  error
	}{
		{0, nil, ErrEmptyVertex},
		{-5, nil, ErrEmptyVertex},
		{3, []Edge{{0, 3, 1}}, ErrVertexRange},
		{3, []Edge{{-1, 1, 1}}, ErrVertexRange},
		{3, []Edge{{1, 1, 1}}, ErrSelfLoop},
		{3, []Edge{{0, 1, 0}}, ErrBadWeight},
		{3, []Edge{{0, 1, -2}}, ErrBadWeight},
		{3, []Edge{{0, 1, math.Inf(1)}}, ErrBadWeight},
		{3, []Edge{{0, 1, math.NaN()}}, ErrBadWeight},
	}
	for i, c := range cases {
		if _, err := FromEdges(c.n, c.edges); !errors.Is(err, c.want) {
			t.Errorf("case %d: err=%v want %v", i, err, c.want)
		}
	}
}

func TestParallelEdgesKeepMinWeight(t *testing.T) {
	g, err := FromEdges(2, []Edge{{0, 1, 5}, {1, 0, 3}, {0, 1, 7}})
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 1 {
		t.Fatalf("m=%d want 1", g.M())
	}
	if w, _ := g.HasEdge(0, 1); w != 3 {
		t.Fatalf("w=%v want 3 (minimum of parallel edges)", w)
	}
}

func TestAdjacencySorted(t *testing.T) {
	g := Gnm(200, 800, UniformWeights(1, 10), 7)
	for v := int32(0); int(v) < g.N; v++ {
		nbr, _ := g.Neighbors(v)
		for i := 1; i < len(nbr); i++ {
			if nbr[i] <= nbr[i-1] {
				t.Fatalf("vertex %d adjacency not strictly sorted: %v", v, nbr)
			}
		}
	}
}

func TestDegreeSum(t *testing.T) {
	g := Gnm(100, 300, UnitWeights(), 3)
	var sum int
	for v := 0; v < g.N; v++ {
		sum += g.Degree(int32(v))
	}
	if sum != 2*g.M() {
		t.Fatalf("degree sum %d != 2m %d", sum, 2*g.M())
	}
}

func TestNormalized(t *testing.T) {
	g := MustFromEdges(3, []Edge{{0, 1, 2}, {1, 2, 8}})
	ng, f := g.Normalized()
	if f != 2 {
		t.Fatalf("factor=%v", f)
	}
	if w, _ := ng.HasEdge(0, 1); w != 1 {
		t.Fatalf("normalized min weight %v", w)
	}
	if w, _ := ng.HasEdge(1, 2); w != 4 {
		t.Fatalf("normalized max weight %v", w)
	}
	// Already normalized graphs are returned as-is.
	ng2, f2 := ng.Normalized()
	if f2 != 1 || ng2 != ng {
		t.Fatal("re-normalization should be identity")
	}
}

func TestWeightRangeAndAspect(t *testing.T) {
	g := MustFromEdges(4, []Edge{{0, 1, 1}, {1, 2, 10}, {2, 3, 100}})
	minW, maxW := g.WeightRange()
	if minW != 1 || maxW != 100 {
		t.Fatalf("range [%v,%v]", minW, maxW)
	}
	if ar := g.AspectRatioUpperBound(); ar != 300 {
		t.Fatalf("aspect ratio bound %v want 300", ar)
	}
	empty := MustFromEdges(3, nil)
	if minW, maxW := empty.WeightRange(); minW != 0 || maxW != 0 {
		t.Fatal("edgeless weight range")
	}
}

func TestComponents(t *testing.T) {
	g := MustFromEdges(6, []Edge{{0, 1, 1}, {1, 2, 1}, {3, 4, 1}})
	labels := g.ComponentLabels()
	want := []int32{0, 0, 0, 3, 3, 5}
	for i := range want {
		if labels[i] != want[i] {
			t.Fatalf("labels=%v want %v", labels, want)
		}
	}
	if g.IsConnected() {
		t.Fatal("disconnected graph reported connected")
	}
	if !Path(10, UnitWeights(), 1).IsConnected() {
		t.Fatal("path reported disconnected")
	}
}

func TestGeneratorShapes(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		n, m int
	}{
		{"path", Path(10, UnitWeights(), 1), 10, 9},
		{"cycle", Cycle(10, UnitWeights(), 1), 10, 10},
		{"grid", Grid(4, 5, UnitWeights(), 1), 20, 31},
		{"tree", Tree(15, 2, UnitWeights(), 1), 15, 14},
		{"star", Star(8, UnitWeights(), 1), 8, 7},
		{"complete", Complete(6, UnitWeights(), 1), 6, 15},
		{"hypercube", Hypercube(4, UnitWeights(), 1), 16, 32},
	}
	for _, c := range cases {
		if c.g.N != c.n || c.g.M() != c.m {
			t.Errorf("%s: n=%d m=%d want n=%d m=%d", c.name, c.g.N, c.g.M(), c.n, c.m)
		}
		if !c.g.IsConnected() {
			t.Errorf("%s: not connected", c.name)
		}
	}
}

func TestGnmProperties(t *testing.T) {
	g := Gnm(128, 512, UniformWeights(1, 4), 42)
	if g.N != 128 {
		t.Fatalf("n=%d", g.N)
	}
	if g.M() != 512 {
		t.Fatalf("m=%d want 512", g.M())
	}
	if !g.IsConnected() {
		t.Fatal("Gnm should be connected by construction")
	}
	// Clamping.
	if g := Gnm(10, 3, UnitWeights(), 1); g.M() != 9 {
		t.Fatalf("m clamped low: %d", g.M())
	}
	if g := Gnm(5, 100, UnitWeights(), 1); g.M() != 10 {
		t.Fatalf("m clamped high: %d", g.M())
	}
}

func TestGnmDeterministic(t *testing.T) {
	a := Gnm(64, 256, UniformWeights(1, 9), 5)
	b := Gnm(64, 256, UniformWeights(1, 9), 5)
	if len(a.Edges) != len(b.Edges) {
		t.Fatal("edge counts differ")
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, a.Edges[i], b.Edges[i])
		}
	}
}

func TestPowerLawConnectedSkewed(t *testing.T) {
	g := PowerLaw(500, 3, UnitWeights(), 11)
	if !g.IsConnected() {
		t.Fatal("powerlaw not connected")
	}
	if g.MaxDegree() < 10 {
		t.Fatalf("max degree %d suspiciously small for preferential attachment", g.MaxDegree())
	}
}

func TestGeometricConnected(t *testing.T) {
	g := Geometric(100, 0.15, 13)
	if !g.IsConnected() {
		t.Fatal("geometric not connected")
	}
	minW, _ := g.WeightRange()
	if minW < 1 {
		t.Fatalf("minW=%v < 1", minW)
	}
}

func TestCommunityConnected(t *testing.T) {
	g := Community(200, 4, 100, 20, UniformWeights(1, 2), 17)
	if !g.IsConnected() {
		t.Fatal("community graph not connected")
	}
	if g.N != 200 {
		t.Fatalf("n=%d", g.N)
	}
}

func TestWeightFns(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	fns := map[string]WeightFn{
		"unit":    UnitWeights(),
		"uniform": UniformWeights(2, 5),
		"exp":     ExpWeights(3),
		"geo":     GeometricScaleWeights(10),
	}
	for name, fn := range fns {
		for i := 0; i < 100; i++ {
			w := fn(r, 0, 1)
			if !(w > 0) || math.IsInf(w, 0) || math.IsNaN(w) {
				t.Fatalf("%s produced invalid weight %v", name, w)
			}
		}
	}
	if w := UnitWeights()(r, 0, 1); w != 1 {
		t.Fatalf("unit weight %v", w)
	}
	for i := 0; i < 50; i++ {
		if w := UniformWeights(2, 5)(r, 0, 1); w < 2 || w > 5 {
			t.Fatalf("uniform out of range: %v", w)
		}
	}
}

// The text codec round-trip and error tests moved to package graphio,
// which owns the (legacy) text format now.

func TestFromEdgesQuickNeverPanicsOnValid(t *testing.T) {
	f := func(seed int64, nRaw uint8, mRaw uint16) bool {
		n := int(nRaw%60) + 2
		m := int(mRaw % 400)
		r := rand.New(rand.NewSource(seed))
		edges := make([]Edge, 0, m)
		for i := 0; i < m; i++ {
			u := int32(r.Intn(n))
			v := int32(r.Intn(n))
			if u == v {
				continue
			}
			edges = append(edges, Edge{u, v, 1 + r.Float64()*9})
		}
		g, err := FromEdges(n, edges)
		if err != nil {
			return false
		}
		// CSR invariants.
		if int(g.Off[n]) != g.Arcs() {
			return false
		}
		var deg int
		for v := 0; v < n; v++ {
			deg += g.Degree(int32(v))
		}
		return deg == 2*g.M()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
