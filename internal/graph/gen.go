package graph

import (
	"math"
	"math/rand"
)

// WeightFn assigns a weight to a generated edge. Implementations must return
// positive finite values.
type WeightFn func(r *rand.Rand, u, v int32) float64

// UnitWeights assigns weight 1 to every edge (unweighted graphs).
func UnitWeights() WeightFn {
	return func(_ *rand.Rand, _, _ int32) float64 { return 1 }
}

// UniformWeights assigns weights uniformly in [lo, hi].
func UniformWeights(lo, hi float64) WeightFn {
	return func(r *rand.Rand, _, _ int32) float64 { return lo + r.Float64()*(hi-lo) }
}

// ExpWeights assigns weights 1 + Exp(mean): a heavy-ish tail with minimum 1,
// giving wide but controlled aspect ratios.
func ExpWeights(mean float64) WeightFn {
	return func(r *rand.Rand, _, _ int32) float64 { return 1 + r.ExpFloat64()*mean }
}

// GeometricScaleWeights draws weights as 2^U with U uniform in [0, scales],
// spreading weights across many powers of two. Exercises the multi-scale
// machinery and the Klein–Sairam reduction.
func GeometricScaleWeights(scales int) WeightFn {
	return func(r *rand.Rand, _, _ int32) float64 {
		return math.Pow(2, r.Float64()*float64(scales))
	}
}

func rng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// Path returns the n-vertex path 0—1—…—(n−1).
func Path(n int, wf WeightFn, seed int64) *Graph {
	r := rng(seed)
	edges := make([]Edge, 0, n-1)
	for i := int32(0); int(i) < n-1; i++ {
		edges = append(edges, Edge{i, i + 1, wf(r, i, i+1)})
	}
	return MustFromEdges(n, edges)
}

// Cycle returns the n-vertex cycle.
func Cycle(n int, wf WeightFn, seed int64) *Graph {
	r := rng(seed)
	edges := make([]Edge, 0, n)
	for i := int32(0); int(i) < n-1; i++ {
		edges = append(edges, Edge{i, i + 1, wf(r, i, i+1)})
	}
	if n > 2 {
		edges = append(edges, Edge{0, int32(n - 1), wf(r, 0, int32(n-1))})
	}
	return MustFromEdges(n, edges)
}

// Grid returns the rows×cols 2D grid graph: a standard stand-in for road
// networks (high diameter, low degree).
func Grid(rows, cols int, wf WeightFn, seed int64) *Graph {
	r := rng(seed)
	n := rows * cols
	id := func(i, j int) int32 { return int32(i*cols + j) }
	edges := make([]Edge, 0, 2*n)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if j+1 < cols {
				edges = append(edges, Edge{id(i, j), id(i, j+1), wf(r, id(i, j), id(i, j+1))})
			}
			if i+1 < rows {
				edges = append(edges, Edge{id(i, j), id(i+1, j), wf(r, id(i, j), id(i+1, j))})
			}
		}
	}
	return MustFromEdges(n, edges)
}

// Tree returns a complete b-ary tree on n vertices (vertex k's parent is
// (k−1)/b).
func Tree(n, b int, wf WeightFn, seed int64) *Graph {
	if b < 1 {
		b = 2
	}
	r := rng(seed)
	edges := make([]Edge, 0, n-1)
	for k := int32(1); int(k) < n; k++ {
		p := (k - 1) / int32(b)
		edges = append(edges, Edge{p, k, wf(r, p, k)})
	}
	return MustFromEdges(n, edges)
}

// Star returns the n-vertex star centered at 0.
func Star(n int, wf WeightFn, seed int64) *Graph {
	r := rng(seed)
	edges := make([]Edge, 0, n-1)
	for k := int32(1); int(k) < n; k++ {
		edges = append(edges, Edge{0, k, wf(r, 0, k)})
	}
	return MustFromEdges(n, edges)
}

// Complete returns the complete graph K_n.
func Complete(n int, wf WeightFn, seed int64) *Graph {
	r := rng(seed)
	edges := make([]Edge, 0, n*(n-1)/2)
	for u := int32(0); int(u) < n; u++ {
		for v := u + 1; int(v) < n; v++ {
			edges = append(edges, Edge{u, v, wf(r, u, v)})
		}
	}
	return MustFromEdges(n, edges)
}

// Hypercube returns the dim-dimensional hypercube (n = 2^dim vertices).
func Hypercube(dim int, wf WeightFn, seed int64) *Graph {
	r := rng(seed)
	n := 1 << dim
	edges := make([]Edge, 0, n*dim/2)
	for u := 0; u < n; u++ {
		for b := 0; b < dim; b++ {
			v := u ^ (1 << b)
			if u < v {
				edges = append(edges, Edge{int32(u), int32(v), wf(r, int32(u), int32(v))})
			}
		}
	}
	return MustFromEdges(n, edges)
}

// Gnm returns a connected Erdős–Rényi-style G(n, m) graph: a random spanning
// tree (guaranteeing connectivity) plus m−(n−1) additional distinct random
// edges. m is clamped to [n−1, n(n−1)/2].
func Gnm(n, m int, wf WeightFn, seed int64) *Graph {
	r := rng(seed)
	if m < n-1 {
		m = n - 1
	}
	if maxM := n * (n - 1) / 2; m > maxM {
		m = maxM
	}
	type key struct{ u, v int32 }
	seen := make(map[key]bool, m)
	edges := make([]Edge, 0, m)
	add := func(u, v int32) bool {
		if u == v {
			return false
		}
		if u > v {
			u, v = v, u
		}
		k := key{u, v}
		if seen[k] {
			return false
		}
		seen[k] = true
		edges = append(edges, Edge{u, v, wf(r, u, v)})
		return true
	}
	// Random attachment tree: vertex i links to a uniform previous vertex.
	for i := int32(1); int(i) < n; i++ {
		add(i, int32(r.Intn(int(i))))
	}
	for len(edges) < m {
		add(int32(r.Intn(n)), int32(r.Intn(n)))
	}
	return MustFromEdges(n, edges)
}

// PowerLaw returns a Barabási–Albert-style preferential-attachment graph:
// each new vertex attaches to k existing vertices chosen proportionally to
// degree. A stand-in for social networks (skewed degrees, low diameter).
func PowerLaw(n, k int, wf WeightFn, seed int64) *Graph {
	r := rng(seed)
	if k < 1 {
		k = 1
	}
	// targets holds one entry per arc endpoint; sampling uniformly from it
	// is sampling proportional to degree.
	targets := make([]int32, 0, 2*n*k)
	edges := make([]Edge, 0, n*k)
	type key struct{ u, v int32 }
	seen := make(map[key]bool, n*k)
	add := func(u, v int32) {
		if u > v {
			u, v = v, u
		}
		kk := key{u, v}
		if u == v || seen[kk] {
			return
		}
		seen[kk] = true
		edges = append(edges, Edge{u, v, wf(r, u, v)})
		targets = append(targets, u, v)
	}
	add(0, 1)
	for u := int32(2); int(u) < n; u++ {
		attached := 0
		for tries := 0; attached < k && tries < 8*k+16; tries++ {
			v := targets[r.Intn(len(targets))]
			if v != u {
				before := len(edges)
				add(u, v)
				if len(edges) > before {
					attached++
				}
			}
		}
		if attached == 0 { // guarantee connectivity
			add(u, int32(r.Intn(int(u))))
		}
	}
	return MustFromEdges(n, edges)
}

// Geometric returns a random geometric graph: n points in the unit square,
// edges between pairs within the given radius (weight = Euclidean distance,
// scaled so the minimum is ≥ 1), plus a path fallback over points sorted by
// x to guarantee connectivity. A stand-in for wireless/sensor topologies.
func Geometric(n int, radius float64, seed int64) *Graph {
	r := rng(seed)
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i], ys[i] = r.Float64(), r.Float64()
	}
	const wScale = 1e4 // distances in [~0,√2] → weights ≥ 1 after +1
	edges := make([]Edge, 0, n*4)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			dx, dy := xs[u]-xs[v], ys[u]-ys[v]
			d := math.Hypot(dx, dy)
			if d <= radius {
				edges = append(edges, Edge{int32(u), int32(v), 1 + d*wScale})
			}
		}
	}
	// Connectivity fallback: chain points in x order.
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	for i := 1; i < n; i++ { // insertion sort by x (n is small for this generator)
		j := i
		for j > 0 && xs[order[j-1]] > xs[order[j]] {
			order[j-1], order[j] = order[j], order[j-1]
			j--
		}
	}
	for i := 0; i+1 < n; i++ {
		u, v := order[i], order[i+1]
		dx, dy := xs[u]-xs[v], ys[u]-ys[v]
		edges = append(edges, Edge{u, v, 1 + math.Hypot(dx, dy)*wScale})
	}
	return MustFromEdges(n, edges)
}

// Community returns a planted-partition graph: k dense communities with
// mIntra random edges inside each and mInter random edges between
// communities. A stand-in for clustered social graphs.
func Community(n, k, mIntra, mInter int, wf WeightFn, seed int64) *Graph {
	r := rng(seed)
	if k < 1 {
		k = 1
	}
	size := n / k
	type key struct{ u, v int32 }
	seen := make(map[key]bool)
	edges := make([]Edge, 0, k*mIntra+mInter)
	add := func(u, v int32) bool {
		if u == v {
			return false
		}
		if u > v {
			u, v = v, u
		}
		kk := key{u, v}
		if seen[kk] {
			return false
		}
		seen[kk] = true
		edges = append(edges, Edge{u, v, wf(r, u, v)})
		return true
	}
	for c := 0; c < k; c++ {
		lo := c * size
		hi := lo + size
		if c == k-1 {
			hi = n
		}
		// Spanning path inside the community for connectivity.
		for v := lo + 1; v < hi; v++ {
			add(int32(v-1), int32(v))
		}
		for added := 0; added < mIntra && hi-lo > 2; {
			if add(int32(lo+r.Intn(hi-lo)), int32(lo+r.Intn(hi-lo))) {
				added++
			}
		}
	}
	// Chain communities, then sprinkle inter edges.
	for c := 1; c < k; c++ {
		add(int32((c-1)*size), int32(c*size))
	}
	for added := 0; added < mInter; {
		if add(int32(r.Intn(n)), int32(r.Intn(n))) {
			added++
		}
	}
	return MustFromEdges(n, edges)
}
