package oracle

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// TestEngineMatrixMatchesDistTo pins the /matrix contract at the engine
// layer: every matrix entry equals the corresponding DistTo answer bit for
// bit, duplicate sources are deduplicated, and the rows land in the same
// distance cache point queries hit.
func TestEngineMatrixMatchesDistTo(t *testing.T) {
	g := testGraph(t, 260)
	eng, err := New(g, WithDistCache(64))
	if err != nil {
		t.Fatal(err)
	}
	sources := []int32{0, 17, 99, 17, 255} // 17 twice: dedup path
	targets := []int32{5, 0, 123, 259}
	mat, err := eng.Matrix(sources, targets)
	if err != nil {
		t.Fatal(err)
	}
	if len(mat) != len(sources) {
		t.Fatalf("matrix has %d rows, want %d", len(mat), len(sources))
	}
	for i, s := range sources {
		if len(mat[i]) != len(targets) {
			t.Fatalf("row %d has %d cols, want %d", i, len(mat[i]), len(targets))
		}
		for j, tv := range targets {
			want, err := eng.DistTo(s, tv)
			if err != nil {
				t.Fatal(err)
			}
			if mat[i][j] != want && !(math.IsInf(mat[i][j], 1) && math.IsInf(want, 1)) {
				t.Errorf("matrix[%d][%d] (s=%d t=%d) = %v, want DistTo %v", i, j, s, tv, mat[i][j], want)
			}
		}
	}
	st := eng.Stats()
	if st.MatrixQueries != 1 {
		t.Errorf("MatrixQueries = %d, want 1", st.MatrixQueries)
	}
	// 4 distinct sources on a 64-batch kernel: one batched exploration, and
	// every distinct source counted as a batched seed.
	if st.Relax.BatchedSeeds < 4 {
		t.Errorf("Relax.BatchedSeeds = %d, want >= 4", st.Relax.BatchedSeeds)
	}
	// The matrix warmed the cache: a follow-up Dist on any matrix source is
	// a pure hit.
	hitsBefore := st.DistCache.Hits
	if _, err := eng.Dist(99); err != nil {
		t.Fatal(err)
	}
	if got := eng.Stats().DistCache.Hits; got != hitsBefore+1 {
		t.Errorf("Dist after Matrix: hits %d → %d, want a cache hit", hitsBefore, got)
	}

	if _, err := eng.Matrix(nil, targets); !errors.Is(err, ErrNeedSources) {
		t.Errorf("Matrix(nil, targets) err = %v, want ErrNeedSources", err)
	}
	if _, err := eng.Matrix(sources, nil); !errors.Is(err, ErrNeedSources) {
		t.Errorf("Matrix(sources, nil) err = %v, want ErrNeedSources", err)
	}
	if _, err := eng.Matrix([]int32{-1}, targets); !errors.Is(err, ErrVertexOutOfRange) {
		t.Errorf("Matrix bad source err = %v, want ErrVertexOutOfRange", err)
	}
	if _, err := eng.Matrix(sources, []int32{9999}); !errors.Is(err, ErrVertexOutOfRange) {
		t.Errorf("Matrix bad target err = %v, want ErrVertexOutOfRange", err)
	}
}

// noMatrixBackend exposes only the required Backend surface: embedding
// the interface (not *Engine) promotes exactly its methods, so the
// MatrixBackend assertion fails.
type noMatrixBackend struct{ Backend }

// TestRegistryMatrixUnsupportedBackend: a backend without the optional
// MatrixBackend surface answers Registry.Matrix with ErrUnsupported, which
// the HTTP layer maps to 501.
func TestRegistryMatrixUnsupportedBackend(t *testing.T) {
	eng, err := New(registryGraph(60, 2))
	if err != nil {
		t.Fatal(err)
	}
	r := NewRegistry(RegistryConfig{})
	defer r.Close()
	if err := r.AddReady("plain", noMatrixBackend{eng}); err != nil {
		t.Fatal(err)
	}
	waitReady(t, r, "plain")
	if _, err := r.Matrix("plain", []int32{0}, []int32{1}); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("Matrix on matrix-less backend err = %v, want ErrUnsupported", err)
	}

	srv := httptest.NewServer(NewRegistryHandler(r))
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/graphs/plain/matrix", "application/json",
		bytes.NewBufferString(`{"sources":[0],"targets":[1]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("matrix on matrix-less backend: status %d, want 501", resp.StatusCode)
	}
}

// TestServerMatrixEndToEnd drives POST /graphs/{name}/matrix over HTTP and
// checks the answers against per-pair /dist, plus the error statuses.
func TestServerMatrixEndToEnd(t *testing.T) {
	r, srv := newRegistryServer(t)

	sources := []int32{0, 7, 42}
	targets := []int32{1, 0, 99}
	body, _ := json.Marshal(map[string]any{"sources": sources, "targets": targets})
	resp, err := http.Post(srv.URL+"/graphs/road/matrix", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Graph   string       `json:"graph"`
		Version int64        `json:"version"`
		Sources []int32      `json:"sources"`
		Targets []int32      `json:"targets"`
		Matrix  [][]*float64 `json:"matrix"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("matrix status %d", resp.StatusCode)
	}
	if out.Graph != "road" || out.Version < 1 || len(out.Matrix) != len(sources) {
		t.Fatalf("matrix envelope %+v", out)
	}
	for i, s := range sources {
		for j, tv := range targets {
			want, err := r.DistTo("road", s, tv)
			if err != nil {
				t.Fatal(err)
			}
			got := out.Matrix[i][j]
			switch {
			case got == nil:
				if !math.IsInf(want, 1) {
					t.Errorf("matrix[%d][%d] null, want %v", i, j, want)
				}
			case *got != want:
				t.Errorf("matrix[%d][%d] = %v, want %v", i, j, *got, want)
			}
		}
	}

	// The endpoint shows up in per-graph stats.
	var stats struct {
		Engine Stats `json:"engine"`
	}
	sresp, err := http.Get(srv.URL + "/graphs/road/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if stats.Engine.MatrixQueries != 1 {
		t.Errorf("stats MatrixQueries = %d, want 1", stats.Engine.MatrixQueries)
	}

	for _, tc := range []struct {
		name, url, body string
		want            int
	}{
		{"garbage body", srv.URL + "/graphs/road/matrix", `{"sources":`, http.StatusBadRequest},
		{"bad vertex", srv.URL + "/graphs/road/matrix", `{"sources":[0],"targets":[100000]}`, http.StatusBadRequest},
		{"empty sources", srv.URL + "/graphs/road/matrix", `{"sources":[],"targets":[1]}`, http.StatusBadRequest},
		{"unknown graph", srv.URL + "/graphs/nope/matrix", `{"sources":[0],"targets":[1]}`, http.StatusNotFound},
	} {
		resp, err := http.Post(tc.url, "application/json", bytes.NewBufferString(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}
}

// TestNearestOffsetsMismatchSurfaced pins the typed error for mismatched
// sources/offsets all the way through the oracle surface: what used to be
// a relax-layer panic is now ErrOffsetsMismatch (mapped to 400 by the HTTP
// layer's writeError).
func TestNearestOffsetsMismatchSurfaced(t *testing.T) {
	eng, err := New(registryGraph(50, 2))
	if err != nil {
		t.Fatal(err)
	}
	_, err = eng.NearestWithOffsets([]int32{1, 2, 3}, []float64{0, 1})
	if !errors.Is(err, ErrOffsetsMismatch) {
		t.Fatalf("NearestWithOffsets mismatch err = %v, want ErrOffsetsMismatch", err)
	}
}

// TestBatcherTelemetryUnderRace is the coalescing soak for -race: many
// goroutines slam overlapping sources through the batching window, every
// answer must be the exact vector for its own source (zero cross-seed
// mixing), and the new telemetry — occupancy histogram, waiter wait time —
// must be consistent with the batch counters.
func TestBatcherTelemetryUnderRace(t *testing.T) {
	g := testGraph(t, 220)
	eng, err := New(g, WithBatchWindow(10*time.Millisecond), WithDistCache(-1))
	if err != nil {
		t.Fatal(err)
	}
	// References computed source by source up front, outside the batcher.
	refEng, err := New(g)
	if err != nil {
		t.Fatal(err)
	}
	sources := []int32{2, 19, 63, 101, 150, 219}
	ref := make(map[int32][]float64)
	for _, s := range sources {
		d, err := refEng.Dist(s)
		if err != nil {
			t.Fatal(err)
		}
		ref[s] = d
	}

	const rounds = 3
	var wg sync.WaitGroup
	for round := 0; round < rounds; round++ {
		for _, s := range sources {
			wg.Add(1)
			go func(s int32) {
				defer wg.Done()
				got, err := eng.Dist(s)
				if err != nil {
					t.Error(err)
					return
				}
				for v := range got {
					if got[v] != ref[s][v] {
						t.Errorf("cross-seed mixing: Dist(%d)[%d] = %v, want %v", s, v, got[v], ref[s][v])
						return
					}
				}
			}(s)
		}
		wg.Wait() // cache is disabled, so every round re-enters the batcher
	}

	st := eng.Stats()
	if st.Batches < int64(rounds) {
		t.Errorf("Batches = %d, want >= %d (cache disabled, %d rounds)", st.Batches, rounds, rounds)
	}
	if st.BatchedQueries != int64(rounds*len(sources)) {
		t.Errorf("BatchedQueries = %d, want %d", st.BatchedQueries, rounds*len(sources))
	}
	if len(st.BatchOccupancy) != occupancyBuckets {
		t.Fatalf("BatchOccupancy has %d buckets, want %d", len(st.BatchOccupancy), occupancyBuckets)
	}
	var occ int64
	for _, c := range st.BatchOccupancy {
		occ += c
	}
	if occ != st.Batches {
		t.Errorf("occupancy histogram sums to %d, want Batches = %d", occ, st.Batches)
	}
	if st.BatchWaitNano <= 0 {
		t.Errorf("BatchWaitNano = %d, want > 0 (waiters parked on a 10ms window)", st.BatchWaitNano)
	}
	if st.LargestBatch < 2 || st.LargestBatch > int64(len(sources)) {
		t.Errorf("LargestBatch = %d out of [2,%d]", st.LargestBatch, len(sources))
	}
}
