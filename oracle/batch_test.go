package oracle

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// TestBatchedDistMatchesSequential fires many concurrent Dist queries at
// an engine with a coalescing window and checks every answer against the
// sequential solver, plus that coalescing actually happened.
func TestBatchedDistMatchesSequential(t *testing.T) {
	g := testGraph(t, 300)
	eng, err := New(g, WithBatchWindow(25*time.Millisecond), WithDistCache(32))
	if err != nil {
		t.Fatal(err)
	}
	solver, err := core.New(g, core.Options{Epsilon: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	sources := []int32{3, 50, 111, 222, 299}
	ref := make(map[int32][]float64)
	for _, s := range sources {
		ref[s], _ = solver.ApproxDistances(s)
	}

	const perSource = 4
	var wg sync.WaitGroup
	for _, s := range sources {
		for k := 0; k < perSource; k++ {
			wg.Add(1)
			go func(s int32) {
				defer wg.Done()
				got, err := eng.Dist(s)
				if err != nil {
					t.Error(err)
					return
				}
				for v := range got {
					if got[v] != ref[s][v] {
						t.Errorf("batched Dist(%d)[%d] = %v, want %v", s, v, got[v], ref[s][v])
						return
					}
				}
			}(s)
		}
	}
	wg.Wait()

	st := eng.Stats()
	if st.Batches < 1 {
		t.Errorf("expected at least one batch, stats %+v", st)
	}
	if st.BatchedQueries < 1 || st.BatchedQueries > int64(len(sources)*perSource) {
		t.Errorf("BatchedQueries = %d out of range", st.BatchedQueries)
	}
	if st.LargestBatch < 1 || st.LargestBatch > int64(len(sources)) {
		t.Errorf("LargestBatch = %d out of range", st.LargestBatch)
	}
	if st.BatchWindowNano != int64(25*time.Millisecond) {
		t.Errorf("BatchWindowNano = %d", st.BatchWindowNano)
	}

	// After the storm, every source is cached: a fresh query is a hit and
	// returns the very same vector.
	before := eng.Stats().DistCache.Hits
	d, err := eng.Dist(sources[0])
	if err != nil {
		t.Fatal(err)
	}
	if eng.Stats().DistCache.Hits != before+1 {
		t.Error("post-batch query should be a cache hit")
	}
	for v := range d {
		if d[v] != ref[sources[0]][v] {
			t.Fatalf("cached vector differs at %d", v)
		}
	}
}

// TestBatcherFansOutErrors: a failing run must reach every waiter.
func TestBatcherFansOutErrors(t *testing.T) {
	wantErr := ErrVertexOutOfRange
	b := newDistBatcher(time.Millisecond,
		func([]int32) ([][]float64, error) { return nil, wantErr },
		func(int32, []float64) { t.Error("commit must not run on error") },
	)
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := b.enqueue(5); err != wantErr {
				t.Errorf("enqueue err = %v, want %v", err, wantErr)
			}
		}()
	}
	wg.Wait()
}
