package oracle

import (
	"errors"

	"repro/internal/relax"
)

// Typed errors returned by Engine queries. Match them with errors.Is; the
// wrapped messages carry the offending values.
var (
	// ErrNotBuilt is returned by queries on a zero-value or nil Engine;
	// Engines must come from New, NewFromEdges, LoadGraph or LoadSnapshot.
	ErrNotBuilt = errors.New("oracle: engine not built")

	// ErrVertexOutOfRange is wrapped by every query that receives a vertex
	// id outside [0, n).
	ErrVertexOutOfRange = errors.New("oracle: vertex out of range")

	// ErrNeedPathReporting is returned by Path and Tree when the engine was
	// built without WithPathReporting.
	ErrNeedPathReporting = errors.New("oracle: path and tree queries require WithPathReporting")

	// ErrNeedSources is returned by MultiSource and Nearest on an empty
	// source set.
	ErrNeedSources = errors.New("oracle: need at least one source")

	// ErrSnapshotUnsupported is returned by SaveSnapshot for engines built
	// with WithWeightReduction: their query budget depends on reduction
	// state the snapshot format does not carry.
	ErrSnapshotUnsupported = errors.New("oracle: snapshots are not supported with WithWeightReduction")

	// ErrUnsupported is wrapped by Backend operations a particular backend
	// cannot answer (e.g. Tree on a sharded oracle). The HTTP layer maps
	// it to 501.
	ErrUnsupported = errors.New("oracle: operation not supported by this backend")
)

// ErrOffsetsMismatch is the relax layer's typed error for a nearest-source
// query whose sources and offsets slices differ in length, re-exported so
// oracle callers can match it without importing internal/relax. The HTTP
// layer maps it to 400.
var ErrOffsetsMismatch = relax.ErrLengthMismatch

// ErrRemote is wrapped by every RemoteBackend failure that is NOT one of
// the typed sentinels above: transport errors, unexpected statuses,
// malformed response bodies. Callers use it to tell "the backend said no"
// (a typed error, identical on every replica) from "the wire said no"
// (retryable on another replica).
var ErrRemote = errors.New("oracle: remote backend error")

// errorCodes maps every typed sentinel to a stable wire code, so a typed
// error raised inside one serve process survives the HTTP hop into
// another process's RemoteBackend with errors.Is intact. The codes are
// part of the wire contract: rename one and old routers stop matching.
var errorCodes = []struct {
	code string
	err  error
}{
	{"not_built", ErrNotBuilt},
	{"vertex_out_of_range", ErrVertexOutOfRange},
	{"need_path_reporting", ErrNeedPathReporting},
	{"need_sources", ErrNeedSources},
	{"snapshot_unsupported", ErrSnapshotUnsupported},
	{"unsupported", ErrUnsupported},
	{"offsets_mismatch", ErrOffsetsMismatch},
	{"unknown_graph", ErrUnknownGraph},
	{"graph_not_ready", ErrGraphNotReady},
	{"duplicate_graph", ErrDuplicateGraph},
	{"registry_closed", ErrRegistryClosed},
}

// errorCode returns the wire code of err's first matching sentinel, or ""
// when err carries no typed sentinel.
func errorCode(err error) string {
	for _, ec := range errorCodes {
		if errors.Is(err, ec.err) {
			return ec.code
		}
	}
	return ""
}

// sentinelForCode is errorCode's inverse: the typed sentinel a wire code
// decodes back to (nil for unknown or empty codes).
func sentinelForCode(code string) error {
	for _, ec := range errorCodes {
		if ec.code == code {
			return ec.err
		}
	}
	return nil
}
