package oracle

import (
	"errors"

	"repro/internal/relax"
)

// Typed errors returned by Engine queries. Match them with errors.Is; the
// wrapped messages carry the offending values.
var (
	// ErrNotBuilt is returned by queries on a zero-value or nil Engine;
	// Engines must come from New, NewFromEdges, LoadGraph or LoadSnapshot.
	ErrNotBuilt = errors.New("oracle: engine not built")

	// ErrVertexOutOfRange is wrapped by every query that receives a vertex
	// id outside [0, n).
	ErrVertexOutOfRange = errors.New("oracle: vertex out of range")

	// ErrNeedPathReporting is returned by Path and Tree when the engine was
	// built without WithPathReporting.
	ErrNeedPathReporting = errors.New("oracle: path and tree queries require WithPathReporting")

	// ErrNeedSources is returned by MultiSource and Nearest on an empty
	// source set.
	ErrNeedSources = errors.New("oracle: need at least one source")

	// ErrSnapshotUnsupported is returned by SaveSnapshot for engines built
	// with WithWeightReduction: their query budget depends on reduction
	// state the snapshot format does not carry.
	ErrSnapshotUnsupported = errors.New("oracle: snapshots are not supported with WithWeightReduction")

	// ErrUnsupported is wrapped by Backend operations a particular backend
	// cannot answer (e.g. Tree on a sharded oracle). The HTTP layer maps
	// it to 501.
	ErrUnsupported = errors.New("oracle: operation not supported by this backend")
)

// ErrOffsetsMismatch is the relax layer's typed error for a nearest-source
// query whose sources and offsets slices differ in length, re-exported so
// oracle callers can match it without importing internal/relax. The HTTP
// layer maps it to 400.
var ErrOffsetsMismatch = relax.ErrLengthMismatch
