package oracle

import (
	"hash/maphash"
	"sync"
	"sync/atomic"
)

// hotShards is the lock-striping factor of the hot-pair cache. Sixteen
// shards keep the per-shard critical section (map lookup + clock store)
// short enough that the cache never becomes the serialization point the
// registry entry lock used to be on skewed workloads.
const hotShards = 16

// hotSampleSize bounds the eviction scan: instead of tracking an exact
// LRU list (pointer churn on every hit), eviction samples this many
// entries via Go's randomized map iteration and drops the
// least-recently-used of the sample — the classic sampled-LRU
// approximation (as in Redis), within a few percent of exact LRU hit
// rates at a fraction of the bookkeeping.
const hotSampleSize = 8

// hotKey identifies one cached row: a graph name and a source vertex.
// Rows, not (source, target) scalars, are the natural unit here — one
// row answers every target for its source, so Zipf-popular sources
// amortize across all their targets.
type hotKey struct {
	name   string
	source int32
}

// hotEntry is one cached distance row, tagged with the engine version
// that produced it. The slice is shared with the engine's own cache and
// treated as immutable everywhere.
type hotEntry struct {
	dist    []float64
	version int64
	used    int64 // cache-clock tick of the last hit (sampled-LRU key)
}

type hotShard struct {
	mu sync.Mutex
	m  map[hotKey]*hotEntry
}

// hotCache is the registry-level hot-pair result cache that fronts
// Handle acquisition: a fresh hit answers a query with two atomic loads
// and one striped-mutex map lookup, never touching the registry or
// entry locks, and a stale hit (the row's version predates the
// graph's current version after a hot reload) is still served —
// tagged stale — while a background revalidation warms the new engine.
type hotCache struct {
	shards   [hotShards]hotShard
	perShard int // capacity per shard
	seed     maphash.Seed
	clock    atomic.Int64

	hits          atomic.Int64
	staleHits     atomic.Int64
	misses        atomic.Int64
	evictions     atomic.Int64
	revalidations atomic.Int64

	// reval tracks in-flight background revalidations (singleflight per
	// key, bounded in total so a reload storm over a huge hot set cannot
	// spawn unbounded goroutines).
	revalMu sync.Mutex
	reval   map[hotKey]struct{}
}

// maxReval bounds concurrent background revalidations; beyond it, stale
// hits are still served but revalidation waits for the next stale hit.
const maxReval = 32

func newHotCache(capacity int) *hotCache {
	per := capacity / hotShards
	if per < 1 {
		per = 1
	}
	c := &hotCache{perShard: per, seed: maphash.MakeSeed(), reval: make(map[hotKey]struct{})}
	for i := range c.shards {
		c.shards[i].m = make(map[hotKey]*hotEntry)
	}
	return c
}

func (c *hotCache) shard(k hotKey) *hotShard {
	var h maphash.Hash
	h.SetSeed(c.seed)
	h.WriteString(k.name)
	h.WriteByte(byte(k.source))
	h.WriteByte(byte(k.source >> 8))
	h.WriteByte(byte(k.source >> 16))
	h.WriteByte(byte(k.source >> 24))
	return &c.shards[h.Sum64()%hotShards]
}

// get returns the cached row and its version, if present. The hit is
// classified by the caller (fresh vs stale) against the graph's current
// version; get only ticks recency.
func (c *hotCache) get(name string, source int32) (dist []float64, version int64, ok bool) {
	k := hotKey{name, source}
	s := c.shard(k)
	s.mu.Lock()
	e, ok := s.m[k]
	if ok {
		e.used = c.clock.Add(1)
		dist, version = e.dist, e.version
	}
	s.mu.Unlock()
	return dist, version, ok
}

// put inserts or refreshes a row. A newer version always replaces an
// older one; a racing write of an older version never clobbers a newer
// row (reload storms make both orders possible).
func (c *hotCache) put(name string, source int32, dist []float64, version int64) {
	k := hotKey{name, source}
	s := c.shard(k)
	s.mu.Lock()
	if old, ok := s.m[k]; ok && old.version > version {
		s.mu.Unlock()
		return
	}
	s.m[k] = &hotEntry{dist: dist, version: version, used: c.clock.Add(1)}
	if len(s.m) > c.perShard {
		c.evictSampledLocked(s)
	}
	s.mu.Unlock()
}

// evictSampledLocked drops the least-recently-used of a small random
// sample of the shard's entries. s.mu must be held.
func (c *hotCache) evictSampledLocked(s *hotShard) {
	var victim hotKey
	var oldest int64 = 1<<63 - 1
	n := 0
	for k, e := range s.m {
		if e.used < oldest {
			oldest, victim = e.used, k
		}
		if n++; n >= hotSampleSize {
			break
		}
	}
	if n > 0 {
		delete(s.m, victim)
		c.evictions.Add(1)
	}
}

// purge drops every row of one graph — called on Remove so a later
// re-registration under the same name (whose version counter restarts)
// cannot alias rows from the removed graph's generations.
func (c *hotCache) purge(name string) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for k := range s.m {
			if k.name == name {
				delete(s.m, k)
			}
		}
		s.mu.Unlock()
	}
}

// tryClaimReval registers a background revalidation for k, refusing
// duplicates (singleflight) and respecting the global bound.
func (c *hotCache) tryClaimReval(k hotKey) bool {
	c.revalMu.Lock()
	defer c.revalMu.Unlock()
	if len(c.reval) >= maxReval {
		return false
	}
	if _, dup := c.reval[k]; dup {
		return false
	}
	c.reval[k] = struct{}{}
	return true
}

func (c *hotCache) releaseReval(k hotKey) {
	c.revalMu.Lock()
	delete(c.reval, k)
	c.revalMu.Unlock()
}

// HotPairStats is the hot-pair cache's counter snapshot.
type HotPairStats struct {
	Entries       int   `json:"entries"`
	Hits          int64 `json:"hits"`
	StaleHits     int64 `json:"stale_hits"`
	Misses        int64 `json:"misses"`
	Evictions     int64 `json:"evictions"`
	Revalidations int64 `json:"revalidations"`
}

func (c *hotCache) stats() HotPairStats {
	st := HotPairStats{
		Hits:          c.hits.Load(),
		StaleHits:     c.staleHits.Load(),
		Misses:        c.misses.Load(),
		Evictions:     c.evictions.Load(),
		Revalidations: c.revalidations.Load(),
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Entries += len(s.m)
		s.mu.Unlock()
	}
	return st
}
