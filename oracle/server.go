package oracle

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"

	"repro/internal/obs"
)

// maxMatrixBody bounds a /matrix request body; at 8 bytes a vertex id even
// a full 64×64 ETA-matrix request is far under 1 MiB.
const maxMatrixBody = 1 << 20

// StaleHeader marks responses served from a pre-reload hot-pair row
// (stale-while-revalidate). The obs middleware reads it to feed the SLO
// stale-serve rate without parsing response bodies.
const StaleHeader = obs.StaleHeader

// matrixRequest is the POST /graphs/{name}/matrix body.
type matrixRequest struct {
	Sources []int32 `json:"sources"`
	Targets []int32 `json:"targets"`
}

// sourcesRequest is the POST /graphs/{name}/multi and /nearest body; the
// optional Offsets turn a /nearest into an offset-seeded exploration
// (the sharded router's continuation primitive).
type sourcesRequest struct {
	Sources []int32   `json:"sources"`
	Offsets []float64 `json:"offsets,omitempty"`
}

// jsonMatrix maps every +Inf entry to null, row by row.
func jsonMatrix(rows [][]float64) [][]any {
	out := make([][]any, len(rows))
	for i, row := range rows {
		r := make([]any, len(row))
		for j, d := range row {
			r[j] = jsonDist(d)
		}
		out[i] = r
	}
	return out
}

// NewHandler exposes an Engine over HTTP/JSON — the traffic-facing surface
// served by cmd/serve:
//
//	GET /dist?source=S            → {"source":S,"dist":[…]}        (null = unreachable)
//	GET /dist?source=S&target=T   → {"source":S,"target":T,"dist":d}
//	GET /path?from=U&to=V         → {"from":U,"to":V,"path":[…],"length":d}
//	GET /stats                    → graph/hopset info + engine Stats
//	GET /healthz                  → 200 ok
//
// Vertex-range and path-reporting errors map to 400; everything else to
// 500. Unreachable targets are 200s with null dist/path.
func NewHandler(e *Engine) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("GET /dist", func(w http.ResponseWriter, r *http.Request) {
		source, err := vertexParam(r, "source")
		if err != nil {
			writeError(w, err)
			return
		}
		if t := r.URL.Query().Get("target"); t != "" {
			target, err := vertexParam(r, "target")
			if err != nil {
				writeError(w, err)
				return
			}
			d, err := e.DistTo(source, target)
			if err != nil {
				writeError(w, err)
				return
			}
			writeJSON(w, map[string]any{"source": source, "target": target, "dist": jsonDist(d)})
			return
		}
		dist, err := e.Dist(source)
		if err != nil {
			writeError(w, err)
			return
		}
		out := make([]any, len(dist))
		for i, d := range dist {
			out[i] = jsonDist(d)
		}
		writeJSON(w, map[string]any{"source": source, "dist": out})
	})
	mux.HandleFunc("GET /path", func(w http.ResponseWriter, r *http.Request) {
		from, err1 := vertexParam(r, "from")
		to, err2 := vertexParam(r, "to")
		if err := errors.Join(err1, err2); err != nil {
			writeError(w, err)
			return
		}
		path, length, err := e.Path(from, to)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, map[string]any{"from": from, "to": to, "path": path, "length": jsonDist(length)})
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		h := e.Hopset()
		writeJSON(w, map[string]any{
			"graph":  map[string]any{"n": h.G.N, "m": h.G.M()},
			"hopset": map[string]any{"edges": h.Size(), "epsilon": h.Params.Epsilon, "hop_budget": e.HopBudget()},
			"engine": e.Stats(),
		})
	})
	return mux
}

// NewRegistryHandler exposes a Registry over HTTP/JSON — the multi-graph
// serving surface of cmd/serve:
//
//	GET  /graphs                      → {"graphs":[…], "stats":{…}}
//	GET  /graphs/{name}               → per-graph status (build progress, version, …)
//	GET  /graphs/{name}/ready         → 200 when ready, 503 otherwise (per-graph readiness)
//	GET  /graphs/{name}/dist?source=S[&target=T]
//	GET  /graphs/{name}/path?from=U&to=V
//	POST /graphs/{name}/matrix        → {"sources":[…],"targets":[…]} ⇒ S×T matrix
//	GET  /graphs/{name}/stats         → status + engine counters
//	POST /graphs/{name}/reload        → 202; rebuilds in the background and hot-swaps
//	GET  /stats                       → aggregate registry stats
//	GET  /healthz                     → registry aggregate status:
//	     200 {"status":"ok",…} once any graph serves (or none are registered),
//	     503 {"status":"starting",…} while every graph is still building,
//	     503 {"status":"failed",…} when every graph failed for good
//
// Unknown graphs map to 404; graphs that are pending/building/failed/
// evicted map to 503 (retryable); vertex-range and path-reporting errors
// to 400. Every query runs through a refcounted engine handle (or, for
// /dist with a hot-pair cache, through the version-tagged SWR surface),
// so answers are never mixed across hot-reload versions; /dist responses
// carry the engine version that produced them, plus "stale":true when a
// pre-reload row was served while the new engine warms.
func NewRegistryHandler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, req *http.Request) {
		st := r.Stats()
		status, code := "ok", http.StatusOK
		switch {
		case st.Graphs > 0 && st.Ready == 0 && st.Failed == st.Graphs:
			status, code = "failed", http.StatusServiceUnavailable
		case st.Graphs > 0 && st.Ready == 0:
			status, code = "starting", http.StatusServiceUnavailable
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		json.NewEncoder(w).Encode(map[string]any{"status": status, "registry": st})
	})
	mux.HandleFunc("GET /graphs", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, map[string]any{"graphs": r.List(), "stats": r.Stats()})
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, r.Stats())
	})
	mux.HandleFunc("GET /graphs/{name}", func(w http.ResponseWriter, req *http.Request) {
		gi, err := r.Info(req.PathValue("name"))
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, gi)
	})
	mux.HandleFunc("GET /graphs/{name}/ready", func(w http.ResponseWriter, req *http.Request) {
		gi, err := r.Info(req.PathValue("name"))
		if err != nil {
			writeError(w, err)
			return
		}
		if gi.Status != StatusReady {
			w.WriteHeader(http.StatusServiceUnavailable)
			writeJSON(w, gi)
			return
		}
		writeJSON(w, gi)
	})
	mux.HandleFunc("GET /graphs/{name}/dist", func(w http.ResponseWriter, req *http.Request) {
		name := req.PathValue("name")
		source, err := vertexParam(req, "source")
		if err != nil {
			writeError(w, err)
			return
		}
		// /dist runs through the SWR surface: with a hot-pair cache the
		// row may be served stale across a hot reload (flagged below);
		// without one this is exactly the pinned-handle path.
		if t := req.URL.Query().Get("target"); t != "" {
			target, err := vertexParam(req, "target")
			if err != nil {
				writeError(w, err)
				return
			}
			d, ver, stale, err := r.DistToSWRContext(req.Context(), name, source, target)
			if err != nil {
				writeError(w, err)
				return
			}
			resp := map[string]any{
				"graph": name, "version": ver,
				"source": source, "target": target, "dist": jsonDist(d),
			}
			if stale {
				resp["stale"] = true
				w.Header().Set(StaleHeader, "true")
			}
			writeJSON(w, resp)
			return
		}
		res, err := r.DistSWRContext(req.Context(), name, source)
		if err != nil {
			writeError(w, err)
			return
		}
		out := make([]any, len(res.Dist))
		for i, d := range res.Dist {
			out[i] = jsonDist(d)
		}
		resp := map[string]any{
			"graph": name, "version": res.Version, "source": source, "dist": out,
		}
		if res.Stale {
			resp["stale"] = true
			w.Header().Set(StaleHeader, "true")
		}
		writeJSON(w, resp)
	})
	mux.HandleFunc("GET /graphs/{name}/path", func(w http.ResponseWriter, req *http.Request) {
		name := req.PathValue("name")
		from, err1 := vertexParam(req, "from")
		to, err2 := vertexParam(req, "to")
		if err := errors.Join(err1, err2); err != nil {
			writeError(w, err)
			return
		}
		h, err := r.Acquire(name)
		if err != nil {
			writeError(w, err)
			return
		}
		defer h.Release()
		path, length, err := pathVia(req.Context(), h.Engine(), from, to)
		if err != nil {
			writeError(w, err)
			return
		}
		r.auditPath(req.Context(), name, h, from, to, path, length)
		writeJSON(w, map[string]any{
			"graph": name, "version": h.Version(),
			"from": from, "to": to, "path": path, "length": jsonDist(length),
		})
	})
	mux.HandleFunc("POST /graphs/{name}/matrix", func(w http.ResponseWriter, req *http.Request) {
		name := req.PathValue("name")
		var body matrixRequest
		req.Body = http.MaxBytesReader(w, req.Body, maxMatrixBody)
		if err := json.NewDecoder(req.Body).Decode(&body); err != nil {
			writeError(w, &badRequestError{msg: "bad matrix body: " + err.Error()})
			return
		}
		h, err := r.Acquire(name)
		if err != nil {
			writeError(w, err)
			return
		}
		defer h.Release()
		mb, ok := h.Engine().(MatrixBackend)
		if !ok {
			writeError(w, fmt.Errorf("%w: matrix", ErrUnsupported))
			return
		}
		var rows [][]float64
		if cmb, ok := h.Engine().(ContextMatrixBackend); ok {
			rows, err = cmb.MatrixContext(req.Context(), body.Sources, body.Targets)
		} else {
			rows, err = mb.Matrix(body.Sources, body.Targets)
		}
		if err != nil {
			writeError(w, err)
			return
		}
		r.auditMatrix(req.Context(), name, h, body.Sources, body.Targets, rows)
		writeJSON(w, map[string]any{
			"graph": name, "version": h.Version(),
			"sources": body.Sources, "targets": body.Targets,
			"matrix": jsonMatrix(rows),
		})
	})
	mux.HandleFunc("POST /graphs/{name}/multi", func(w http.ResponseWriter, req *http.Request) {
		name := req.PathValue("name")
		var body sourcesRequest
		req.Body = http.MaxBytesReader(w, req.Body, maxMatrixBody)
		if err := json.NewDecoder(req.Body).Decode(&body); err != nil {
			writeError(w, &badRequestError{msg: "bad multi body: " + err.Error()})
			return
		}
		h, err := r.Acquire(name)
		if err != nil {
			writeError(w, err)
			return
		}
		defer h.Release()
		rows, err := h.Engine().MultiSource(body.Sources)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, map[string]any{
			"graph": name, "version": h.Version(),
			"sources": body.Sources, "rows": jsonMatrix(rows),
		})
	})
	mux.HandleFunc("POST /graphs/{name}/nearest", func(w http.ResponseWriter, req *http.Request) {
		name := req.PathValue("name")
		var body sourcesRequest
		req.Body = http.MaxBytesReader(w, req.Body, maxMatrixBody)
		if err := json.NewDecoder(req.Body).Decode(&body); err != nil {
			writeError(w, &badRequestError{msg: "bad nearest body: " + err.Error()})
			return
		}
		h, err := r.Acquire(name)
		if err != nil {
			writeError(w, err)
			return
		}
		defer h.Release()
		var dist []float64
		if body.Offsets != nil {
			ob, ok := h.Engine().(OffsetBackend)
			if !ok {
				writeError(w, fmt.Errorf("%w: nearest with offsets", ErrUnsupported))
				return
			}
			dist, err = ob.NearestWithOffsets(body.Sources, body.Offsets)
		} else {
			dist, err = h.Engine().Nearest(body.Sources)
		}
		if err != nil {
			writeError(w, err)
			return
		}
		out := make([]any, len(dist))
		for i, d := range dist {
			out[i] = jsonDist(d)
		}
		writeJSON(w, map[string]any{
			"graph": name, "version": h.Version(), "dist": out,
		})
	})
	mux.HandleFunc("GET /graphs/{name}/tree", func(w http.ResponseWriter, req *http.Request) {
		name := req.PathValue("name")
		source, err := vertexParam(req, "source")
		if err != nil {
			writeError(w, err)
			return
		}
		h, err := r.Acquire(name)
		if err != nil {
			writeError(w, err)
			return
		}
		defer h.Release()
		tree, err := h.Engine().Tree(source)
		if err != nil {
			writeError(w, err)
			return
		}
		dist := make([]any, len(tree.Dist))
		for i, d := range tree.Dist {
			dist[i] = jsonDist(d)
		}
		writeJSON(w, map[string]any{
			"graph": name, "version": h.Version(), "source": tree.Source,
			"parent": tree.Parent, "parent_w": tree.ParentW, "dist": dist,
		})
	})
	mux.HandleFunc("GET /graphs/{name}/stats", func(w http.ResponseWriter, req *http.Request) {
		name := req.PathValue("name")
		gi, err := r.Info(name)
		if err != nil {
			writeError(w, err)
			return
		}
		out := map[string]any{"graph": gi}
		if st, err := r.EngineStats(name); err == nil {
			out["engine"] = st
		}
		writeJSON(w, out)
	})
	mux.HandleFunc("POST /graphs/{name}/reload", func(w http.ResponseWriter, req *http.Request) {
		name := req.PathValue("name")
		if err := r.Reload(name); err != nil {
			writeError(w, err)
			return
		}
		gi, err := r.Info(name)
		if err != nil {
			writeError(w, err)
			return
		}
		w.WriteHeader(http.StatusAccepted)
		writeJSON(w, gi)
	})
	return mux
}

// vertexParam parses a required vertex-id query parameter.
func vertexParam(r *http.Request, name string) (int32, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, &badRequestError{msg: "missing query parameter " + name}
	}
	v, err := strconv.ParseInt(raw, 10, 32)
	if err != nil {
		return 0, &badRequestError{msg: "bad " + name + ": " + err.Error()}
	}
	return int32(v), nil
}

type badRequestError struct{ msg string }

func (e *badRequestError) Error() string { return e.msg }

// jsonDist maps +Inf (unreachable) to null — JSON has no Inf literal.
func jsonDist(d float64) any {
	if math.IsInf(d, 1) {
		return nil
	}
	return d
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	var bad *badRequestError
	switch {
	case errors.As(err, &bad),
		errors.Is(err, ErrVertexOutOfRange),
		errors.Is(err, ErrNeedPathReporting),
		errors.Is(err, ErrNeedSources),
		errors.Is(err, ErrOffsetsMismatch):
		status = http.StatusBadRequest
	case errors.Is(err, ErrUnknownGraph):
		status = http.StatusNotFound
	case errors.Is(err, ErrUnsupported):
		status = http.StatusNotImplemented
	case errors.Is(err, ErrNotBuilt),
		errors.Is(err, ErrGraphNotReady),
		errors.Is(err, ErrRegistryClosed):
		status = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// The code carries the typed sentinel across the process boundary:
	// RemoteBackend decodes it back so errors.Is matches remotely exactly
	// as it would in-process.
	body := map[string]string{"error": err.Error()}
	if code := errorCode(err); code != "" {
		body["code"] = code
	}
	json.NewEncoder(w).Encode(body)
}
