package oracle

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/graph"
)

func registryGraph(n int, seed int64) *graph.Graph {
	return graph.Gnm(n, 3*n, graph.UniformWeights(1, 6), seed)
}

func waitReady(t *testing.T, r *Registry, name string) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := r.WaitReady(ctx, name); err != nil {
		t.Fatalf("WaitReady(%s): %v", name, err)
	}
}

func TestRegistryLifecycle(t *testing.T) {
	r := NewRegistry(RegistryConfig{})
	defer r.Close()

	if err := r.Add("road", GraphSource(registryGraph(120, 1), WithEpsilon(0.25))); err != nil {
		t.Fatal(err)
	}
	if err := r.Add("road", GraphSource(registryGraph(120, 1))); !errors.Is(err, ErrDuplicateGraph) {
		t.Fatalf("duplicate Add: %v", err)
	}
	if _, err := r.Dist("nope", 0); !errors.Is(err, ErrUnknownGraph) {
		t.Fatalf("unknown graph: %v", err)
	}
	waitReady(t, r, "road")

	gi, err := r.Info("road")
	if err != nil {
		t.Fatal(err)
	}
	if gi.Status != StatusReady || gi.Version != 1 || gi.N != 120 || gi.MemoryBytes <= 0 {
		t.Fatalf("info: %+v", gi)
	}
	d, err := r.Dist("road", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(d) != 120 {
		t.Fatalf("dist len %d", len(d))
	}
	// The registry answers bit-identically to a directly built engine.
	ref, err := New(registryGraph(120, 1), WithEpsilon(0.25))
	if err != nil {
		t.Fatal(err)
	}
	want, _ := ref.Dist(0)
	for v := range want {
		if d[v] != want[v] {
			t.Fatalf("v %d: registry %v vs direct %v", v, d[v], want[v])
		}
	}
	st := r.Stats()
	if st.Graphs != 1 || st.Ready != 1 || st.BuildsDone != 1 || st.Queries == 0 {
		t.Fatalf("stats: %+v", st)
	}
	if err := r.Remove("road"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Dist("road", 0); !errors.Is(err, ErrUnknownGraph) {
		t.Fatalf("after remove: %v", err)
	}
}

func TestRegistryBuildFailureAndRecovery(t *testing.T) {
	r := NewRegistry(RegistryConfig{})
	defer r.Close()

	boom := errors.New("disk on fire")
	var fail atomic.Bool
	fail.Store(true)
	src := func(ctx context.Context, opts ...Option) (Backend, error) {
		if fail.Load() {
			return nil, boom
		}
		return New(registryGraph(80, 2), append(opts, WithEpsilon(0.3))...)
	}
	if err := r.Add("flaky", src); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := r.WaitReady(ctx, "flaky"); !errors.Is(err, boom) {
		t.Fatalf("WaitReady on failed build: %v", err)
	}
	if _, err := r.Dist("flaky", 0); !errors.Is(err, ErrGraphNotReady) || !errors.Is(err, boom) {
		t.Fatalf("query on failed graph: %v", err)
	}
	fail.Store(false)
	if err := r.Reload("flaky"); err != nil {
		t.Fatal(err)
	}
	waitReady(t, r, "flaky")
	if _, err := r.Dist("flaky", 0); err != nil {
		t.Fatalf("after recovery: %v", err)
	}
}

func TestRegistryBuildCancellation(t *testing.T) {
	r := NewRegistry(RegistryConfig{BuildWorkers: 1})
	started := make(chan struct{})
	src := func(ctx context.Context, opts ...Option) (Backend, error) {
		close(started)
		<-ctx.Done() // a build that never finishes on its own
		return nil, ctx.Err()
	}
	if err := r.Add("stuck", src); err != nil {
		t.Fatal(err)
	}
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("build never started")
	}
	done := make(chan struct{})
	go func() { r.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not cancel the in-flight build")
	}
}

// TestRegistryReloadMidBuildReReadsSource pins the rewrite-then-reload
// contract: a Reload that lands while another build is in flight must
// trigger one more build afterwards, because the in-flight build may have
// read the source before the caller's rewrite.
func TestRegistryReloadMidBuildReReadsSource(t *testing.T) {
	r := NewRegistry(RegistryConfig{BuildWorkers: 1})
	defer r.Close()

	var content atomic.Int64 // stands in for the snapshot file's bits
	content.Store(10)
	firstStarted := make(chan struct{})
	gate := make(chan struct{})
	var builds atomic.Int64
	src := func(ctx context.Context, opts ...Option) (Backend, error) {
		seed := content.Load() // "open the file" at build start
		if builds.Add(1) == 1 {
			close(firstStarted)
			select {
			case <-gate:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		return New(registryGraph(80, seed), append(opts, WithEpsilon(0.3))...)
	}
	if err := r.Add("g", src); err != nil {
		t.Fatal(err)
	}
	select {
	case <-firstStarted:
	case <-time.After(10 * time.Second):
		t.Fatal("first build never started")
	}
	content.Store(20) // rewrite the source while build 1 holds the old bits
	if err := r.Reload("g"); err != nil {
		t.Fatal(err)
	}
	close(gate)

	deadline := time.Now().Add(30 * time.Second)
	for {
		gi, err := r.Info("g")
		if err != nil {
			t.Fatal(err)
		}
		if gi.Version >= 2 && gi.Status == StatusReady && !gi.Reloading {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follow-up build never published: %+v", gi)
		}
		time.Sleep(time.Millisecond)
	}
	ref, err := New(registryGraph(80, 20), WithEpsilon(0.3))
	if err != nil {
		t.Fatal(err)
	}
	want, _ := ref.Dist(0)
	got, err := r.Dist("g", 0)
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("v %d: served %v, want the rewritten source's %v", v, got[v], want[v])
		}
	}
}

func TestRegistryEviction(t *testing.T) {
	// A budget small enough for one engine: adding a second evicts the
	// colder one; touching the evicted graph re-enqueues its build.
	probe, err := New(registryGraph(100, 1), WithEpsilon(0.3))
	if err != nil {
		t.Fatal(err)
	}
	budget := probe.MemoryBytes() + probe.MemoryBytes()/2

	r := NewRegistry(RegistryConfig{MemoryBudget: budget})
	defer r.Close()
	if err := r.Add("g1", GraphSource(registryGraph(100, 1), WithEpsilon(0.3))); err != nil {
		t.Fatal(err)
	}
	waitReady(t, r, "g1")
	if _, err := r.Dist("g1", 0); err != nil {
		t.Fatal(err)
	}
	if err := r.Add("g2", GraphSource(registryGraph(100, 2), WithEpsilon(0.3))); err != nil {
		t.Fatal(err)
	}
	waitReady(t, r, "g2")

	gi, err := r.Info("g1")
	if err != nil {
		t.Fatal(err)
	}
	if gi.Status != StatusEvicted {
		t.Fatalf("g1 not evicted: %+v (budget %d)", gi, budget)
	}
	if r.Stats().Evictions == 0 {
		t.Fatal("eviction counter not bumped")
	}
	// Demand warms the cold graph back up.
	if _, err := r.Dist("g1", 0); !errors.Is(err, ErrGraphNotReady) {
		t.Fatalf("query on evicted graph: %v", err)
	}
	waitReady(t, r, "g1")
	if _, err := r.Dist("g1", 0); err != nil {
		t.Fatalf("after rebuild: %v", err)
	}
}

// TestRegistryConformanceHotReload is the -race conformance test of the
// acceptance criteria: K=3 graphs served concurrently while one of them is
// rebuilt and hot-swapped repeatedly. Invariants:
//
//   - zero failed queries (the old engine serves until the swap);
//   - no answer ever mixes engine versions: every distance vector read
//     through one handle is bit-identical to the reference vector of the
//     exact version the handle pins;
//   - swapped-out engines drain (the draining gauge returns to 0);
//   - the goroutine count settles back after Close (no leaks).
func TestRegistryConformanceHotReload(t *testing.T) {
	baseline := runtime.NumGoroutine()

	const n = 100
	seeds := []int64{10, 20} // version v of "hot" is built from seeds[(v-1)%2]
	refs := make([][]float64, 2)
	for i, seed := range seeds {
		eng, err := New(registryGraph(n, seed), WithEpsilon(0.3))
		if err != nil {
			t.Fatal(err)
		}
		if refs[i], err = eng.Dist(0); err != nil {
			t.Fatal(err)
		}
	}
	same := true
	for v := range refs[0] {
		if refs[0][v] != refs[1][v] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("reference versions are indistinguishable; the mixing check would be vacuous")
	}

	r := NewRegistry(RegistryConfig{BuildWorkers: 2})
	var builds atomic.Int64
	hotSrc := func(ctx context.Context, opts ...Option) (Backend, error) {
		v := builds.Add(1)
		return New(registryGraph(n, seeds[(v-1)%2]), append(opts, WithEpsilon(0.3))...)
	}
	if err := r.Add("hot", hotSrc); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"steady1", "steady2"} {
		if err := r.Add(name, GraphSource(registryGraph(n, 30), WithEpsilon(0.3))); err != nil {
			t.Fatal(err)
		}
	}
	for _, name := range []string{"hot", "steady1", "steady2"} {
		waitReady(t, r, name)
	}
	steadyRef, err := r.Dist("steady1", 0)
	if err != nil {
		t.Fatal(err)
	}

	const (
		queriers   = 8
		iterations = 60
		reloads    = 4
	)
	var failed atomic.Int64
	var mixed atomic.Int64
	var wg sync.WaitGroup
	for q := 0; q < queriers; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			names := []string{"hot", "steady1", "steady2"}
			for i := 0; i < iterations; i++ {
				name := names[(q+i)%len(names)]
				h, err := r.Acquire(name)
				if err != nil {
					failed.Add(1)
					continue
				}
				d, err := h.Engine().Dist(0)
				if err != nil {
					failed.Add(1)
					h.Release()
					continue
				}
				// The answer must be bit-identical to the reference for
				// the exact version this handle pins.
				want := steadyRef
				if name == "hot" {
					want = refs[(h.Version()-1)%2]
				}
				for v := range want {
					if d[v] != want[v] {
						mixed.Add(1)
						break
					}
				}
				h.Release()
			}
		}(q)
	}
	// Hot-reload mid-flight: each reload flips the hot graph between two
	// distinguishable versions.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < reloads; i++ {
			before, err := r.Info("hot")
			if err != nil {
				t.Error(err)
				return
			}
			if err := r.Reload("hot"); err != nil {
				t.Error(err)
				return
			}
			deadline := time.Now().Add(30 * time.Second)
			for {
				gi, err := r.Info("hot")
				if err != nil {
					t.Error(err)
					return
				}
				if gi.Version > before.Version {
					break
				}
				if time.Now().After(deadline) {
					t.Error("reload never published")
					return
				}
				time.Sleep(time.Millisecond)
			}
		}
	}()
	wg.Wait()

	if f := failed.Load(); f != 0 {
		t.Fatalf("%d queries failed during hot reload", f)
	}
	if m := mixed.Load(); m != 0 {
		t.Fatalf("%d answers mixed engine versions", m)
	}
	gi, err := r.Info("hot")
	if err != nil {
		t.Fatal(err)
	}
	if gi.Version < int64(1+reloads) {
		t.Fatalf("hot graph version %d after %d reloads", gi.Version, reloads)
	}

	r.Close()

	// Swapped-out engines must fully drain and goroutines settle.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if r.Stats().Draining == 0 && runtime.NumGoroutine() <= baseline+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("leak: draining=%d goroutines=%d (baseline %d)",
				r.Stats().Draining, runtime.NumGoroutine(), baseline)
		}
		runtime.GC()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRegistrySnapshotReloadRoundTrip covers the snapshot path of the
// acceptance criteria: a graph served from a snapshot file is hot-swapped
// by overwriting the file and reloading, with no downtime and the new
// bits served afterwards.
func TestRegistrySnapshotReloadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "city.snap")
	writeSnap := func(seed int64) *Engine {
		eng, err := New(registryGraph(90, seed), WithEpsilon(0.3))
		if err != nil {
			t.Fatal(err)
		}
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.SaveSnapshot(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		return eng
	}
	v1 := writeSnap(5)

	r := NewRegistry(RegistryConfig{})
	defer r.Close()
	if err := r.Add("city", SnapshotSource(path)); err != nil {
		t.Fatal(err)
	}
	waitReady(t, r, "city")
	got, err := r.Dist("city", 3)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := v1.Dist(3)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("v1 mismatch at %d", v)
		}
	}

	v2 := writeSnap(6)
	if err := r.Reload("city"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		gi, err := r.Info("city")
		if err != nil {
			t.Fatal(err)
		}
		if gi.Version == 2 {
			break
		}
		// No downtime while the reload is in flight.
		if _, err := r.Dist("city", 3); err != nil {
			t.Fatalf("query failed mid-reload: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("reload never published")
		}
		time.Sleep(time.Millisecond)
	}
	got2, err := r.Dist("city", 3)
	if err != nil {
		t.Fatal(err)
	}
	want2, _ := v2.Dist(3)
	for v := range want2 {
		if got2[v] != want2[v] {
			t.Fatalf("v2 mismatch at %d", v)
		}
	}
}

// TestRegistryWaitReadyContext ensures WaitReady respects its context.
func TestRegistryWaitReadyContext(t *testing.T) {
	r := NewRegistry(RegistryConfig{BuildWorkers: 1})
	defer r.Close()
	block := make(chan struct{})
	defer close(block)
	src := func(ctx context.Context, opts ...Option) (Backend, error) {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return nil, fmt.Errorf("never ready")
	}
	if err := r.Add("slow", src); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := r.WaitReady(ctx, "slow"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("WaitReady: %v", err)
	}
}
