package oracle

import "context"

// Backend is the query surface the Registry serves: anything that answers
// the engine's query set over one logical graph. The monolithic *Engine is
// the canonical implementation; package shard provides a sharded one that
// stitches K per-shard engines through a boundary overlay. The registry,
// Handle, and HTTP layers only see this interface, so a sharded graph is
// registered, hot-reloaded, evicted, and queried exactly like a monolithic
// one — /graphs/{name}/dist and /path are shape-identical for clients.
//
// Implementations must be immutable after construction and safe for
// concurrent use, and must answer deterministically: the same query on the
// same built backend returns bit-identical results regardless of
// concurrency or worker count. The slices and trees returned by queries
// may be cached and shared — callers treat them as read-only.
type Backend interface {
	// N is the number of vertices of the logical graph.
	N() int
	// MemoryBytes estimates the resident size; the registry evicts
	// against the sum of these.
	MemoryBytes() int64
	// Describe reports structural facts for status endpoints.
	Describe() BackendInfo

	Dist(source int32) ([]float64, error)
	DistTo(source, target int32) (float64, error)
	MultiSource(sources []int32) ([][]float64, error)
	Nearest(sources []int32) ([]float64, error)
	Path(u, v int32) ([]int32, float64, error)
	Tree(source int32) (*Tree, error)

	Stats() Stats
}

// MatrixBackend is the optional many-to-many surface: backends that can
// answer an S×T distance matrix in one call implement it (both *Engine and
// the sharded oracle do). The registry type-asserts; a backend without it
// gets ErrUnsupported → 501 from the HTTP layer.
type MatrixBackend interface {
	// Matrix returns out[i][j] = approximate dist(sources[i], targets[j]).
	Matrix(sources, targets []int32) ([][]float64, error)
}

// OffsetBackend is the optional offset-seeded exploration surface: the
// sharded router enters a shard with the cost already paid to reach its
// boundary, so per-shard engines served remotely must expose
// NearestWithOffsets over the wire. *Engine and RemoteBackend implement
// it; the sharded Oracle does not (its own Nearest is already routed).
// The HTTP layer answers POST /graphs/{name}/nearest with offsets via
// this interface and 501s backends without it.
type OffsetBackend interface {
	// NearestWithOffsets is Nearest with a per-source starting cost:
	// out[v] = min_i offsets[i] + dist(sources[i], v).
	NearestWithOffsets(sources []int32, offsets []float64) ([]float64, error)
}

// ContextBackend is the optional context-aware query surface. Backends
// whose queries can cross a process boundary (RemoteBackend, the
// distributed shard.Router) implement it so cancellation and trace
// propagation flow with the request; the HTTP layer type-asserts and
// falls back to the plain Backend methods otherwise. The monolithic
// *Engine deliberately does not implement it — its query path is pure
// CPU with no cancellation points, and staying context-free keeps the
// warm path allocation-free.
type ContextBackend interface {
	DistContext(ctx context.Context, source int32) ([]float64, error)
	PathContext(ctx context.Context, u, v int32) ([]int32, float64, error)
}

// ContextMatrixBackend is the context-aware variant of MatrixBackend.
type ContextMatrixBackend interface {
	MatrixContext(ctx context.Context, sources, targets []int32) ([][]float64, error)
}

// distVia routes a dist query through the context-aware surface when the
// backend has one.
func distVia(ctx context.Context, be Backend, source int32) ([]float64, error) {
	if cb, ok := be.(ContextBackend); ok {
		return cb.DistContext(ctx, source)
	}
	return be.Dist(source)
}

// pathVia routes a path query through the context-aware surface when the
// backend has one.
func pathVia(ctx context.Context, be Backend, u, v int32) ([]int32, float64, error) {
	if cb, ok := be.(ContextBackend); ok {
		return cb.PathContext(ctx, u, v)
	}
	return be.Path(u, v)
}

// BackendInfo describes a resident backend for GraphInfo and the status
// endpoints.
type BackendInfo struct {
	// HopsetEdges is the total hopset size (for a sharded backend: summed
	// over shard engines plus the overlay engine).
	HopsetEdges int
	// Shards is the shard count of a sharded backend, 0 for a monolithic
	// engine.
	Shards int
}

// ShardStats is the sharded-backend section of Stats: shape of the
// partition and overlay, router traffic split, and the end-to-end stretch
// accounting. The composed bound is
//
//	(1+ε_local) · (1+ε_overlay) · (1+ε_local)
//
// — source-shard leg, overlay hop, destination-shard leg — and every
// routed answer is within it of the true distance.
type ShardStats struct {
	Shards           int `json:"shards"`
	BoundaryVertices int `json:"boundary_vertices"`
	OverlayEdges     int `json:"overlay_edges"`
	CutEdges         int `json:"cut_edges"`

	EpsilonLocal   float64 `json:"epsilon_local"`
	EpsilonOverlay float64 `json:"epsilon_overlay"`
	// StretchBound is the composed end-to-end guarantee above.
	StretchBound float64 `json:"stretch_bound"`

	// RoutedQueries crossed the overlay; LocalQueries were answered
	// entirely inside the source shard (single-shard graphs, or K = 1).
	RoutedQueries int64 `json:"routed_queries"`
	LocalQueries  int64 `json:"local_queries"`

	// RouterCache is the router's per-source cache of assembled global
	// distance vectors (distinct from the per-shard engine caches summed
	// into Stats.DistCache).
	RouterCache CacheStats `json:"router_cache"`

	// Remote is set only by the distributed scatter-gather router
	// (shard.Router): per-replica-endpoint health, traffic, and latency.
	// In-process sharded oracles leave it nil.
	Remote *RemoteStats `json:"remote,omitempty"`
}

// RemoteStats is the distributed router's section of ShardStats.
type RemoteStats struct {
	// Endpoints is one entry per distinct worker base URL, across every
	// shard placed on it.
	Endpoints []EndpointStats `json:"endpoints"`
	// Hedges counts second requests fired after the hedge delay;
	// HedgeWins how many of those answered first. Failovers counts
	// queries re-routed after a replica error.
	Hedges    int64 `json:"hedges"`
	HedgeWins int64 `json:"hedge_wins"`
	Failovers int64 `json:"failovers"`
}

// EndpointStats describes one worker endpoint as the router sees it.
type EndpointStats struct {
	URL      string `json:"url"`
	Healthy  bool   `json:"healthy"`
	Requests int64  `json:"requests"`
	Errors   int64  `json:"errors"`
	// Latency is the per-replica request latency histogram — the signal
	// the hedging delay is derived from.
	Latency LatencySnapshot `json:"latency"`
}

// Describe implements Backend for the monolithic engine.
func (e *Engine) Describe() BackendInfo {
	info := BackendInfo{}
	if h := e.Hopset(); h != nil {
		info.HopsetEdges = h.Size()
	}
	return info
}

var _ Backend = (*Engine)(nil)
