package oracle

import (
	"testing"
)

// Allocation gates for the warm (cache-hit) query path. These are the
// serve-path budgets DESIGN.md documents: a steady-state point query must
// not touch the garbage collector at all, and the multi-query surfaces
// may allocate only their result containers. The gates are ceilings (≤),
// pinned slightly above the measured values so an accidental map, closure
// capture, or interface boxing on the hot path fails loudly in CI while
// runtime-version noise does not.
func TestWarmQueryAllocs(t *testing.T) {
	g := testGraph(t, 300)
	eng, err := New(g, WithEpsilon(0.25), WithDistCache(16), WithPathReporting())
	if err != nil {
		t.Fatal(err)
	}
	sources := []int32{0, 5, 17, 42}

	// Warm every cache the gated calls will hit.
	for _, s := range sources {
		if _, err := eng.Dist(s); err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Tree(s); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := eng.MultiSource(sources); err != nil {
		t.Fatal(err)
	}

	gate := func(name string, limit float64, fn func()) {
		t.Helper()
		if a := testing.AllocsPerRun(200, fn); a > limit {
			t.Errorf("%s allocates %.1f/op on the warm path, budget %.0f", name, a, limit)
		}
	}

	// Cache-hit Dist returns the shared cached row: zero allocations,
	// gated at ≤2 for headroom across runtime versions.
	gate("Dist(warm)", 2, func() {
		if _, err := eng.Dist(sources[0]); err != nil {
			t.Fatal(err)
		}
	})
	gate("DistTo(warm)", 2, func() {
		if _, err := eng.DistTo(sources[0], 123); err != nil {
			t.Fatal(err)
		}
	})
	// All-hit MultiSource allocates exactly the out slice (missIdx is
	// lazy): 1 measured, gated at ≤2.
	gate("MultiSource(warm)", 2, func() {
		if _, err := eng.MultiSource(sources); err != nil {
			t.Fatal(err)
		}
	})
	// Cache-hit Path: the tree is shared, PathTo builds the exact-size
	// path slice in one allocation (two-pass depth measurement).
	gate("Path(warm)", 2, func() {
		if _, _, err := eng.Path(sources[0], 123); err != nil {
			t.Fatal(err)
		}
	})
}
