package oracle

import (
	"context"
	"testing"

	"repro/internal/obs"
)

// Allocation gates for the warm (cache-hit) query path. These are the
// serve-path budgets DESIGN.md documents: a steady-state point query must
// not touch the garbage collector at all, and the multi-query surfaces
// may allocate only their result containers. The gates are ceilings (≤),
// pinned slightly above the measured values so an accidental map, closure
// capture, or interface boxing on the hot path fails loudly in CI while
// runtime-version noise does not.
func TestWarmQueryAllocs(t *testing.T) {
	g := testGraph(t, 300)
	eng, err := New(g, WithEpsilon(0.25), WithDistCache(16), WithPathReporting())
	if err != nil {
		t.Fatal(err)
	}
	sources := []int32{0, 5, 17, 42}

	// Warm every cache the gated calls will hit.
	for _, s := range sources {
		if _, err := eng.Dist(s); err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Tree(s); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := eng.MultiSource(sources); err != nil {
		t.Fatal(err)
	}

	gate := func(name string, limit float64, fn func()) {
		t.Helper()
		if a := testing.AllocsPerRun(200, fn); a > limit {
			t.Errorf("%s allocates %.1f/op on the warm path, budget %.0f", name, a, limit)
		}
	}

	// Cache-hit Dist returns the shared cached row: zero allocations,
	// gated at ≤2 for headroom across runtime versions.
	gate("Dist(warm)", 2, func() {
		if _, err := eng.Dist(sources[0]); err != nil {
			t.Fatal(err)
		}
	})
	gate("DistTo(warm)", 2, func() {
		if _, err := eng.DistTo(sources[0], 123); err != nil {
			t.Fatal(err)
		}
	})
	// All-hit MultiSource allocates exactly the out slice (missIdx is
	// lazy): 1 measured, gated at ≤2.
	gate("MultiSource(warm)", 2, func() {
		if _, err := eng.MultiSource(sources); err != nil {
			t.Fatal(err)
		}
	})
	// Cache-hit Path: the tree is shared, PathTo builds the exact-size
	// path slice in one allocation (two-pass depth measurement).
	gate("Path(warm)", 2, func() {
		if _, _, err := eng.Path(sources[0], 123); err != nil {
			t.Fatal(err)
		}
	})

	// The observability hot path rides the same budgets: a recorded span
	// (start → attrs → seqlock ring write) plus a metrics counter bump
	// around a warm Dist must add zero allocations — spans are
	// caller-stack values, the ring slot is preallocated, and counters
	// are plain atomics.
	tr := obs.NewTracer("test", obs.TracerOptions{})
	var hits obs.Counter
	gate("Dist(warm, traced)", 2, func() {
		var sp obs.Span
		tr.StartRoot(&sp, "GET dist", obs.Traceparent{})
		sp.Route = "dist"
		sp.Source = int64(sources[0])
		if _, err := eng.Dist(sources[0]); err != nil {
			t.Fatal(err)
		}
		hits.Inc()
		sp.Status = 200
		sp.End()
	})
	// The inert-span path (no tracer in ctx) is what untraced requests
	// pay: nothing.
	gate("Dist(warm, untraced ctx)", 2, func() {
		var sp obs.Span
		if obs.StartChild(&sp, context.Background(), "never") {
			t.Fatal("child span started without a parent in ctx")
		}
		if _, err := eng.Dist(sources[0]); err != nil {
			t.Fatal(err)
		}
		sp.End()
	})
	// DistSWRContext fresh hits with a live span in ctx: the annotation
	// writes into the caller-stack span, so the SWR fast path keeps its
	// zero-allocation budget. ContextWith on a recorded span allocates
	// the context node once per request (budgeted: ≤2 was already the
	// Dist gate, the context adds 1 measured).
	r := NewRegistry(RegistryConfig{HotPairCache: 64})
	defer r.Close()
	if err := r.Add("g", func(ctx context.Context, opts ...Option) (Backend, error) {
		return New(g, append([]Option{WithEpsilon(0.25)}, opts...)...)
	}); err != nil {
		t.Fatal(err)
	}
	if err := r.WaitReady(context.Background(), "g"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.DistSWR("g", sources[0]); err != nil {
		t.Fatal(err)
	}
	gate("DistSWR(fresh, traced)", 3, func() {
		var sp obs.Span
		tr.StartRoot(&sp, "GET dist", obs.Traceparent{})
		ctx := obs.ContextWith(context.Background(), &sp)
		res, err := r.DistSWRContext(ctx, "g", sources[0])
		if err != nil {
			t.Fatal(err)
		}
		if res.Stale {
			t.Fatal("fresh hit reported stale")
		}
		sp.End()
	})
}
