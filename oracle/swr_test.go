package oracle

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/graph"
)

// versionedSource builds a 3-vertex path graph whose edge weights encode
// the build number: the Nth successful build answers Dist(0)[1] == N.
// Because the registry runs at most one build per entry at a time and
// these builds never fail, build number N is published as version N —
// so every served row must satisfy dist[1] == float64(version), which is
// the cross-version-mixing detector the SWR tests lean on.
func versionedSource(counter *atomic.Int64, base float64) EngineSource {
	return func(ctx context.Context, opts ...Option) (Backend, error) {
		n := counter.Add(1)
		w := base + float64(n)
		g, err := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1, W: w}, {U: 1, V: 2, W: w}})
		if err != nil {
			return nil, err
		}
		return New(g, append(opts, WithEpsilon(0.25))...)
	}
}

// TestDistSWRReloadHammer hammers DistSWR from many goroutines (run with
// -race) while the main goroutine drives hot reload after hot reload.
// Invariants: once the graph is first ready, no query ever fails, and no
// response ever mixes versions — the row's payload must match the
// version tag it carries, whether the response is fresh or stale.
func TestDistSWRReloadHammer(t *testing.T) {
	r := NewRegistry(RegistryConfig{HotPairCache: 64})
	defer r.Close()

	var builds atomic.Int64
	if err := r.Add("g", versionedSource(&builds, 0)); err != nil {
		t.Fatal(err)
	}
	waitReady(t, r, "g")

	var (
		stop     atomic.Bool
		failures atomic.Int64
		mixed    atomic.Int64
		served   atomic.Int64
		stale    atomic.Int64
	)
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(src int32) {
			defer wg.Done()
			for !stop.Load() {
				res, err := r.DistSWR("g", src)
				if err != nil {
					failures.Add(1)
					continue
				}
				served.Add(1)
				if res.Stale {
					stale.Add(1)
				}
				// dist[1] encodes the build that produced the row; it must
				// equal the version the response claims, fresh or stale.
				if res.Dist[1] != float64(res.Version) {
					mixed.Add(1)
				}
			}
		}(int32((w % 2) * 2)) // two hot sources (0 and 2; both have dist[1]==w)
	}

	// Drive reloads 2..6, waiting for each to land before the next so
	// build numbers and published versions stay in lockstep.
	for want := int64(2); want <= 6; want++ {
		if err := r.Reload("g"); err != nil {
			t.Fatalf("Reload: %v", err)
		}
		deadline := time.Now().Add(30 * time.Second)
		for {
			gi, err := r.Info("g")
			if err != nil {
				t.Fatalf("Info: %v", err)
			}
			if gi.Version >= want && !gi.Reloading {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("reload to version %d never landed", want)
			}
			time.Sleep(time.Millisecond)
		}
	}
	stop.Store(true)
	wg.Wait()

	if f := failures.Load(); f != 0 {
		t.Errorf("%d queries failed during hot reloads (want 0)", f)
	}
	if m := mixed.Load(); m != 0 {
		t.Errorf("%d responses mixed row and version (want 0)", m)
	}
	if served.Load() == 0 {
		t.Fatal("hammer served nothing")
	}
	st := r.Stats()
	if st.HotPair == nil {
		t.Fatal("HotPair stats missing")
	}
	if st.HotPair.Hits == 0 {
		t.Error("expected fresh hot-pair hits under a two-source hammer")
	}
	t.Logf("served=%d stale=%d hotpair=%+v", served.Load(), stale.Load(), *st.HotPair)
}

// TestDistSWRStaleThenFresh pins the single-threaded SWR lifecycle: a
// cached row turns stale the moment a reload publishes a new version, is
// served with the old version tag and Stale=true, and the background
// revalidation flips it fresh at the new version.
func TestDistSWRStaleThenFresh(t *testing.T) {
	r := NewRegistry(RegistryConfig{HotPairCache: 64})
	defer r.Close()
	var builds atomic.Int64
	if err := r.Add("g", versionedSource(&builds, 0)); err != nil {
		t.Fatal(err)
	}
	waitReady(t, r, "g")

	res, err := r.DistSWR("g", 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stale || res.Version != 1 || res.Dist[1] != 1 {
		t.Fatalf("first answer = %+v, want fresh v1", res)
	}

	if err := r.Reload("g"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		gi, _ := r.Info("g")
		if gi.Version == 2 && !gi.Reloading {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("reload never landed")
		}
		time.Sleep(time.Millisecond)
	}

	res, err = r.DistSWR("g", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stale || res.Version != 1 || res.Dist[1] != 1 {
		t.Fatalf("post-reload answer = %+v, want stale v1", res)
	}

	// The stale hit kicked a revalidation; it lands asynchronously.
	deadline = time.Now().Add(30 * time.Second)
	for {
		res, err = r.DistSWR("g", 0)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Stale {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("revalidation never landed")
		}
		time.Sleep(time.Millisecond)
	}
	if res.Version != 2 || res.Dist[1] != 2 {
		t.Fatalf("revalidated answer = %+v, want fresh v2", res)
	}
	st := r.Stats().HotPair
	if st.StaleHits == 0 || st.Revalidations == 0 {
		t.Fatalf("hot-pair stats = %+v, want stale hits and a revalidation", *st)
	}
}

// TestDistSWRPurgeOnRemove: removing a graph drops its hot rows, so a
// re-registration under the same name (whose version counter restarts at
// 1) can never serve the removed generation's rows as fresh.
func TestDistSWRPurgeOnRemove(t *testing.T) {
	r := NewRegistry(RegistryConfig{HotPairCache: 64})
	defer r.Close()
	var builds1 atomic.Int64
	if err := r.Add("g", versionedSource(&builds1, 0)); err != nil {
		t.Fatal(err)
	}
	waitReady(t, r, "g")
	if _, err := r.DistSWR("g", 0); err != nil { // cache row at v1, dist[1]=1
		t.Fatal(err)
	}
	if err := r.Remove("g"); err != nil {
		t.Fatal(err)
	}

	// Same name, new generation: weights offset by 100 expose aliasing.
	var builds2 atomic.Int64
	if err := r.Add("g", versionedSource(&builds2, 100)); err != nil {
		t.Fatal(err)
	}
	waitReady(t, r, "g")
	res, err := r.DistSWR("g", 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stale || res.Version != 1 || res.Dist[1] != 101 {
		t.Fatalf("post-re-add answer = %+v, want fresh v1 of the new generation (dist[1]=101)", res)
	}
}

// TestDistSWRDisabledFallsBack: without a hot-pair cache DistSWR is
// exactly Registry.Dist plus a version tag — never stale.
func TestDistSWRDisabledFallsBack(t *testing.T) {
	r := NewRegistry(RegistryConfig{})
	defer r.Close()
	var builds atomic.Int64
	if err := r.Add("g", versionedSource(&builds, 0)); err != nil {
		t.Fatal(err)
	}
	waitReady(t, r, "g")
	res, err := r.DistSWR("g", 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stale || res.Version != 1 || res.Dist[1] != 1 {
		t.Fatalf("fallback answer = %+v", res)
	}
	if _, err := r.DistSWR("missing", 0); !errors.Is(err, ErrUnknownGraph) {
		t.Fatalf("unknown graph: %v", err)
	}
}
