package oracle

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/graph"
)

// versionedSource builds a 3-vertex path graph whose edge weights encode
// the build number: the Nth successful build answers Dist(0)[1] == N.
// Because the registry runs at most one build per entry at a time and
// these builds never fail, build number N is published as version N —
// so every served row must satisfy dist[1] == float64(version), which is
// the cross-version-mixing detector the SWR tests lean on.
func versionedSource(counter *atomic.Int64, base float64) EngineSource {
	return func(ctx context.Context, opts ...Option) (Backend, error) {
		n := counter.Add(1)
		w := base + float64(n)
		g, err := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1, W: w}, {U: 1, V: 2, W: w}})
		if err != nil {
			return nil, err
		}
		return New(g, append(opts, WithEpsilon(0.25))...)
	}
}

// TestDistSWRReloadHammer hammers DistSWR from many goroutines (run with
// -race) while the main goroutine drives hot reload after hot reload.
// Invariants: once the graph is first ready, no query ever fails, and no
// response ever mixes versions — the row's payload must match the
// version tag it carries, whether the response is fresh or stale.
func TestDistSWRReloadHammer(t *testing.T) {
	r := NewRegistry(RegistryConfig{HotPairCache: 64})
	defer r.Close()

	var builds atomic.Int64
	if err := r.Add("g", versionedSource(&builds, 0)); err != nil {
		t.Fatal(err)
	}
	waitReady(t, r, "g")

	var (
		stop     atomic.Bool
		failures atomic.Int64
		mixed    atomic.Int64
		served   atomic.Int64
		stale    atomic.Int64
	)
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(src int32) {
			defer wg.Done()
			for !stop.Load() {
				res, err := r.DistSWR("g", src)
				if err != nil {
					failures.Add(1)
					continue
				}
				served.Add(1)
				if res.Stale {
					stale.Add(1)
				}
				// dist[1] encodes the build that produced the row; it must
				// equal the version the response claims, fresh or stale.
				if res.Dist[1] != float64(res.Version) {
					mixed.Add(1)
				}
			}
		}(int32((w % 2) * 2)) // two hot sources (0 and 2; both have dist[1]==w)
	}

	// Drive reloads 2..6, waiting for each to land before the next so
	// build numbers and published versions stay in lockstep.
	for want := int64(2); want <= 6; want++ {
		if err := r.Reload("g"); err != nil {
			t.Fatalf("Reload: %v", err)
		}
		deadline := time.Now().Add(30 * time.Second)
		for {
			gi, err := r.Info("g")
			if err != nil {
				t.Fatalf("Info: %v", err)
			}
			if gi.Version >= want && !gi.Reloading {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("reload to version %d never landed", want)
			}
			time.Sleep(time.Millisecond)
		}
	}
	stop.Store(true)
	wg.Wait()

	if f := failures.Load(); f != 0 {
		t.Errorf("%d queries failed during hot reloads (want 0)", f)
	}
	if m := mixed.Load(); m != 0 {
		t.Errorf("%d responses mixed row and version (want 0)", m)
	}
	if served.Load() == 0 {
		t.Fatal("hammer served nothing")
	}
	st := r.Stats()
	if st.HotPair == nil {
		t.Fatal("HotPair stats missing")
	}
	if st.HotPair.Hits == 0 {
		t.Error("expected fresh hot-pair hits under a two-source hammer")
	}
	t.Logf("served=%d stale=%d hotpair=%+v", served.Load(), stale.Load(), *st.HotPair)
}

// TestDistSWRStaleThenFresh pins the single-threaded SWR lifecycle: a
// cached row turns stale the moment a reload publishes a new version, is
// served with the old version tag and Stale=true, and the background
// revalidation flips it fresh at the new version.
func TestDistSWRStaleThenFresh(t *testing.T) {
	r := NewRegistry(RegistryConfig{HotPairCache: 64})
	defer r.Close()
	var builds atomic.Int64
	if err := r.Add("g", versionedSource(&builds, 0)); err != nil {
		t.Fatal(err)
	}
	waitReady(t, r, "g")

	res, err := r.DistSWR("g", 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stale || res.Version != 1 || res.Dist[1] != 1 {
		t.Fatalf("first answer = %+v, want fresh v1", res)
	}

	if err := r.Reload("g"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		gi, _ := r.Info("g")
		if gi.Version == 2 && !gi.Reloading {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("reload never landed")
		}
		time.Sleep(time.Millisecond)
	}

	res, err = r.DistSWR("g", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stale || res.Version != 1 || res.Dist[1] != 1 {
		t.Fatalf("post-reload answer = %+v, want stale v1", res)
	}

	// The stale hit kicked a revalidation; it lands asynchronously.
	deadline = time.Now().Add(30 * time.Second)
	for {
		res, err = r.DistSWR("g", 0)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Stale {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("revalidation never landed")
		}
		time.Sleep(time.Millisecond)
	}
	if res.Version != 2 || res.Dist[1] != 2 {
		t.Fatalf("revalidated answer = %+v, want fresh v2", res)
	}
	st := r.Stats().HotPair
	if st.StaleHits == 0 || st.Revalidations == 0 {
		t.Fatalf("hot-pair stats = %+v, want stale hits and a revalidation", *st)
	}
}

// TestDistSWRPurgeOnRemove: removing a graph drops its hot rows, so a
// re-registration under the same name (whose version counter restarts at
// 1) can never serve the removed generation's rows as fresh.
func TestDistSWRPurgeOnRemove(t *testing.T) {
	r := NewRegistry(RegistryConfig{HotPairCache: 64})
	defer r.Close()
	var builds1 atomic.Int64
	if err := r.Add("g", versionedSource(&builds1, 0)); err != nil {
		t.Fatal(err)
	}
	waitReady(t, r, "g")
	if _, err := r.DistSWR("g", 0); err != nil { // cache row at v1, dist[1]=1
		t.Fatal(err)
	}
	if err := r.Remove("g"); err != nil {
		t.Fatal(err)
	}

	// Same name, new generation: weights offset by 100 expose aliasing.
	var builds2 atomic.Int64
	if err := r.Add("g", versionedSource(&builds2, 100)); err != nil {
		t.Fatal(err)
	}
	waitReady(t, r, "g")
	res, err := r.DistSWR("g", 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stale || res.Version != 1 || res.Dist[1] != 101 {
		t.Fatalf("post-re-add answer = %+v, want fresh v1 of the new generation (dist[1]=101)", res)
	}
}

// TestDistSWRPurgeOnEvict is the regression test for the eviction half
// of hot-row hygiene: Remove purged the graph's rows but memory-budget
// eviction did not, so an evicted graph kept serving cached rows with no
// rebuild in flight to ever revalidate them — an unbounded staleness
// window, holding memory against the very budget that evicted the
// engine. Eviction must drop the rows with the engine: a query on the
// evicted graph fails not-ready (and enqueues the rebuild) instead of
// serving from the dead generation, and the rebuilt graph answers fresh.
func TestDistSWRPurgeOnEvict(t *testing.T) {
	var probeBuilds atomic.Int64
	probe, err := versionedSource(&probeBuilds, 0)(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	budget := probe.MemoryBytes() + probe.MemoryBytes()/2

	r := NewRegistry(RegistryConfig{HotPairCache: 64, MemoryBudget: budget})
	defer r.Close()
	var builds1, builds2 atomic.Int64
	if err := r.Add("g1", versionedSource(&builds1, 0)); err != nil {
		t.Fatal(err)
	}
	waitReady(t, r, "g1")
	if res, err := r.DistSWR("g1", 0); err != nil || res.Dist[1] != 1 {
		t.Fatalf("seed row: %+v, %v", res, err) // cache a v1 row
	}

	// A second graph overflows the budget; g1 (colder) is evicted.
	if err := r.Add("g2", versionedSource(&builds2, 50)); err != nil {
		t.Fatal(err)
	}
	waitReady(t, r, "g2")
	gi, err := r.Info("g1")
	if err != nil {
		t.Fatal(err)
	}
	if gi.Status != StatusEvicted {
		t.Fatalf("g1 not evicted: %+v", gi)
	}

	// The evicted graph's rows must be gone: not-ready, not a stale serve
	// from the dead generation.
	if _, err := r.DistSWR("g1", 0); !errors.Is(err, ErrGraphNotReady) {
		t.Fatalf("query on evicted graph = %v, want ErrGraphNotReady", err)
	}
	waitReady(t, r, "g1") // the failed query enqueued the rebuild
	res, err := r.DistSWR("g1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stale || res.Version != 2 || res.Dist[1] != 2 {
		t.Fatalf("post-rebuild answer = %+v, want fresh v2", res)
	}
}

// TestDistSWREvictRebuildHammer extends the reload hammer across the
// eviction lifecycle (run with -race): two graphs under a one-engine
// budget ping-pong evict/rebuild while workers hammer both through the
// SWR surface. Invariants: the only acceptable failure is
// ErrGraphNotReady (the eviction window), and no served row ever mixes
// generations — its payload must match the version it claims.
func TestDistSWREvictRebuildHammer(t *testing.T) {
	var probeBuilds atomic.Int64
	probe, err := versionedSource(&probeBuilds, 0)(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	budget := probe.MemoryBytes() + probe.MemoryBytes()/2

	r := NewRegistry(RegistryConfig{HotPairCache: 64, MemoryBudget: budget})
	defer r.Close()
	var builds1, builds2 atomic.Int64
	if err := r.Add("g1", versionedSource(&builds1, 0)); err != nil {
		t.Fatal(err)
	}
	if err := r.Add("g2", versionedSource(&builds2, 0)); err != nil {
		t.Fatal(err)
	}
	waitReady(t, r, "g1")
	waitReady(t, r, "g2")

	var (
		stop      atomic.Bool
		mixed     atomic.Int64
		served    atomic.Int64
		hardFails atomic.Int64
		notReady  atomic.Int64
	)
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := "g1"
			if w%2 == 1 {
				name = "g2"
			}
			for !stop.Load() {
				res, err := r.DistSWR(name, 0)
				if err != nil {
					if errors.Is(err, ErrGraphNotReady) {
						notReady.Add(1) // eviction window; the query enqueued the rebuild
					} else {
						hardFails.Add(1)
					}
					continue
				}
				served.Add(1)
				if res.Dist[1] != float64(res.Version) {
					mixed.Add(1)
				}
			}
		}(w)
	}

	// Run until the evict→rebuild cycle has churned several generations on
	// both graphs (each rebuild is one build-counter bump past the first).
	deadline := time.Now().Add(30 * time.Second)
	for builds1.Load() < 4 || builds2.Load() < 4 {
		if time.Now().After(deadline) {
			stop.Store(true)
			wg.Wait()
			t.Fatalf("evict/rebuild churn stalled: builds g1=%d g2=%d", builds1.Load(), builds2.Load())
		}
		time.Sleep(time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()

	if f := hardFails.Load(); f != 0 {
		t.Errorf("%d hard failures (want 0; only ErrGraphNotReady is acceptable mid-eviction)", f)
	}
	if m := mixed.Load(); m != 0 {
		t.Errorf("%d responses mixed generations (want 0)", m)
	}
	if served.Load() == 0 {
		t.Fatal("hammer served nothing")
	}
	if r.Stats().Evictions == 0 {
		t.Error("no evictions happened; the hammer did not exercise the evict path")
	}
	t.Logf("served=%d notReady=%d evictions=%d builds=(%d,%d)",
		served.Load(), notReady.Load(), r.Stats().Evictions, builds1.Load(), builds2.Load())
}

// TestDistSWRDisabledFallsBack: without a hot-pair cache DistSWR is
// exactly Registry.Dist plus a version tag — never stale.
func TestDistSWRDisabledFallsBack(t *testing.T) {
	r := NewRegistry(RegistryConfig{})
	defer r.Close()
	var builds atomic.Int64
	if err := r.Add("g", versionedSource(&builds, 0)); err != nil {
		t.Fatal(err)
	}
	waitReady(t, r, "g")
	res, err := r.DistSWR("g", 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stale || res.Version != 1 || res.Dist[1] != 1 {
		t.Fatalf("fallback answer = %+v", res)
	}
	if _, err := r.DistSWR("missing", 0); !errors.Is(err, ErrUnknownGraph) {
		t.Fatalf("unknown graph: %v", err)
	}
}
