package oracle

import (
	"bytes"
	"context"
	"encoding/json"

	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func newRegistryServer(t *testing.T) (*Registry, *httptest.Server) {
	t.Helper()
	r := NewRegistry(RegistryConfig{})
	t.Cleanup(r.Close)
	if err := r.Add("road", GraphSource(registryGraph(150, 3), WithEpsilon(0.25), WithPathReporting())); err != nil {
		t.Fatal(err)
	}
	if err := r.Add("social", GraphSource(registryGraph(100, 4), WithEpsilon(0.25))); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"road", "social"} {
		waitReady(t, r, name)
	}
	srv := httptest.NewServer(NewRegistryHandler(r))
	t.Cleanup(srv.Close)
	return r, srv
}

func TestRegistryHandlerRoutes(t *testing.T) {
	_, srv := newRegistryServer(t)

	var list struct {
		Graphs []GraphInfo   `json:"graphs"`
		Stats  RegistryStats `json:"stats"`
	}
	if code := getJSON(t, srv.URL+"/graphs", &list); code != http.StatusOK {
		t.Fatalf("GET /graphs: %d", code)
	}
	if len(list.Graphs) != 2 || list.Stats.Ready != 2 {
		t.Fatalf("list: %+v", list)
	}
	if list.Graphs[0].Name != "road" || list.Graphs[1].Name != "social" {
		t.Fatalf("not sorted by name: %+v", list.Graphs)
	}

	var dist struct {
		Graph   string   `json:"graph"`
		Version int64    `json:"version"`
		Dist    *float64 `json:"dist"`
	}
	if code := getJSON(t, srv.URL+"/graphs/road/dist?source=0&target=149", &dist); code != http.StatusOK {
		t.Fatalf("dist: %d", code)
	}
	if dist.Graph != "road" || dist.Version != 1 || dist.Dist == nil || *dist.Dist <= 0 {
		t.Fatalf("dist payload: %+v", dist)
	}

	var pr struct {
		Path   []int32  `json:"path"`
		Length *float64 `json:"length"`
	}
	if code := getJSON(t, srv.URL+"/graphs/road/path?from=0&to=42", &pr); code != http.StatusOK {
		t.Fatalf("path: %d", code)
	}
	if len(pr.Path) == 0 || pr.Length == nil {
		t.Fatalf("path payload: %+v", pr)
	}

	var st struct {
		Graph  GraphInfo `json:"graph"`
		Engine Stats     `json:"engine"`
	}
	if code := getJSON(t, srv.URL+"/graphs/road/stats", &st); code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	if st.Graph.Status != StatusReady || st.Engine.DistQueries < 1 {
		t.Fatalf("stats payload: %+v", st)
	}

	// Per-graph readiness and error mapping.
	for url, want := range map[string]int{
		"/graphs/road/ready":          http.StatusOK,
		"/graphs/nope/ready":          http.StatusNotFound,
		"/graphs/nope/dist?source=0":  http.StatusNotFound,
		"/graphs/road/dist":           http.StatusBadRequest,
		"/graphs/road/dist?source=-1": http.StatusBadRequest,
	} {
		var body map[string]any
		if code := getJSON(t, srv.URL+url, &body); code != want {
			t.Errorf("GET %s: %d, want %d (%v)", url, code, want, body)
		}
	}

	// A graph that is still building reports 503 on readiness.
	r2 := NewRegistry(RegistryConfig{BuildWorkers: 1})
	t.Cleanup(r2.Close)
	block := make(chan struct{})
	defer close(block)
	if err := r2.Add("cold", func(ctx context.Context, opts ...Option) (Backend, error) {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return nil, ctx.Err()
	}); err != nil {
		t.Fatal(err)
	}
	srv2 := httptest.NewServer(NewRegistryHandler(r2))
	t.Cleanup(srv2.Close)
	var gi GraphInfo
	if code := getJSON(t, srv2.URL+"/graphs/cold/ready", &gi); code != http.StatusServiceUnavailable {
		t.Fatalf("building readiness: %d", code)
	}
	if gi.Status != StatusBuilding {
		t.Fatalf("building status: %+v", gi)
	}
}

// TestRegistryHandlerReloadRoundTrip drives the acceptance flow over real
// HTTP: serve a snapshot-backed graph, overwrite the snapshot, POST
// /graphs/{name}/reload, and observe the new version served with zero
// failed queries in between.
func TestRegistryHandlerReloadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "city.snap")
	write := func(seed int64) {
		eng, err := New(registryGraph(90, seed), WithEpsilon(0.3))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := eng.SaveSnapshot(&buf); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write(5)

	r := NewRegistry(RegistryConfig{})
	t.Cleanup(r.Close)
	if err := r.Add("city", SnapshotSource(path)); err != nil {
		t.Fatal(err)
	}
	waitReady(t, r, "city")
	srv := httptest.NewServer(NewRegistryHandler(r))
	t.Cleanup(srv.Close)

	var before struct {
		Version int64    `json:"version"`
		Dist    *float64 `json:"dist"`
	}
	if code := getJSON(t, srv.URL+"/graphs/city/dist?source=0&target=89", &before); code != http.StatusOK {
		t.Fatalf("pre-reload dist: %d", code)
	}

	write(6)
	resp, err := http.Post(srv.URL+"/graphs/city/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var gi GraphInfo
	err = json.NewDecoder(resp.Body).Decode(&gi)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("reload status: %d (%+v)", resp.StatusCode, gi)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		var after struct {
			Version int64    `json:"version"`
			Dist    *float64 `json:"dist"`
		}
		// Queries keep succeeding throughout the reload: zero downtime.
		if code := getJSON(t, srv.URL+"/graphs/city/dist?source=0&target=89", &after); code != http.StatusOK {
			t.Fatalf("mid-reload dist: %d", code)
		}
		if after.Version == before.Version+1 {
			if after.Dist == nil || before.Dist == nil {
				t.Fatal("nil distances")
			}
			if *after.Dist == *before.Dist {
				// Same value is possible but suspicious; verify against a
				// directly built v2 engine to be sure the swap happened.
				eng, err := New(registryGraph(90, 6), WithEpsilon(0.3))
				if err != nil {
					t.Fatal(err)
				}
				want, _ := eng.DistTo(0, 89)
				if *after.Dist != want {
					t.Fatalf("post-reload dist %v, want v2's %v", *after.Dist, want)
				}
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("reload never published over HTTP")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestRegistryHandlerStatsAggregate(t *testing.T) {
	_, srv := newRegistryServer(t)
	// Warm some counters.
	var ignore map[string]any
	getJSON(t, srv.URL+"/graphs/social/dist?source=1", &ignore)

	var st RegistryStats
	if code := getJSON(t, srv.URL+"/stats", &st); code != http.StatusOK {
		t.Fatalf("GET /stats: %d", code)
	}
	if st.Graphs != 2 || st.Ready != 2 || st.BuildsDone != 2 || st.MemoryBytes <= 0 {
		t.Fatalf("aggregate stats: %+v", st)
	}
	if st.Queries < 1 {
		t.Fatalf("queries not counted: %+v", st)
	}
}
