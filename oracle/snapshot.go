package oracle

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/graphio"
	"repro/internal/core"
	"repro/internal/hopset"
)

// Snapshot format: one header line framing two length-delimited sections,
// each in its existing text format (the graphio legacy codec and
// internal/hopset.Encode):
//
//	oraclesnap 1 <scaleFactor> <graphBytes> <hopsetBytes>\n
//	<graph section><hopset section>
//
// The graph section holds the normalized graph the hopset was built for;
// scaleFactor restores distances to input units. The hopset schedule is
// re-derived from the stored parameters on load, and the decoded hopset is
// re-validated, so a snapshot is query-ready without repeating the build.

const snapshotMagic = "oraclesnap"

// SaveSnapshot persists the engine's graph and hopset so LoadSnapshot can
// revive a query-ready engine without rebuilding. Engines built with
// WithWeightReduction return ErrSnapshotUnsupported.
func (e *Engine) SaveSnapshot(w io.Writer) error {
	if err := e.ready(); err != nil {
		return err
	}
	if e.solver.Reduction() != nil {
		return ErrSnapshotUnsupported
	}
	h := e.solver.Hopset()
	var gb, hb bytes.Buffer
	if err := graphio.EncodeLegacy(&gb, h.G); err != nil {
		return err
	}
	if err := hopset.Encode(&hb, h); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s 1 %g %d %d\n", snapshotMagic, h.ScaleFactor, gb.Len(), hb.Len()); err != nil {
		return err
	}
	if _, err := w.Write(gb.Bytes()); err != nil {
		return err
	}
	_, err := w.Write(hb.Bytes())
	return err
}

// LoadSnapshot revives an engine from a SaveSnapshot stream. Build-shaping
// options (epsilon, kappa, …) are recovered from the snapshot itself;
// serving options (caches, batch window, tracker) are taken from options.
func LoadSnapshot(r io.Reader, options ...Option) (*Engine, error) {
	cfg := defaultConfig()
	for _, o := range options {
		o(&cfg)
	}
	br := bufio.NewReader(r)
	header, err := br.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("oracle: reading snapshot header: %w", err)
	}
	fields := strings.Fields(header)
	if len(fields) != 5 || fields[0] != snapshotMagic {
		return nil, fmt.Errorf("oracle: not a snapshot (header %q)", strings.TrimSpace(header))
	}
	if fields[1] != "1" {
		return nil, fmt.Errorf("oracle: unsupported snapshot version %s", fields[1])
	}
	scale, err1 := strconv.ParseFloat(fields[2], 64)
	glen, err2 := strconv.Atoi(fields[3])
	hlen, err3 := strconv.Atoi(fields[4])
	if err1 != nil || err2 != nil || err3 != nil || scale <= 0 || glen < 0 || hlen < 0 {
		return nil, fmt.Errorf("oracle: malformed snapshot header %q", strings.TrimSpace(header))
	}
	gbuf := make([]byte, glen)
	if _, err := io.ReadFull(br, gbuf); err != nil {
		return nil, fmt.Errorf("oracle: reading snapshot graph: %w", err)
	}
	g, err := graphio.DecodeLegacy(bytes.NewReader(gbuf))
	if err != nil {
		return nil, err
	}
	hbuf := make([]byte, hlen)
	if _, err := io.ReadFull(br, hbuf); err != nil {
		return nil, fmt.Errorf("oracle: reading snapshot hopset: %w", err)
	}
	h, err := hopset.Decode(bytes.NewReader(hbuf), g)
	if err != nil {
		return nil, err
	}
	h.ScaleFactor = scale
	solver, err := core.Attach(h, cfg.opts.Tracker)
	if err != nil {
		return nil, err
	}
	return newEngine(solver, cfg), nil
}
