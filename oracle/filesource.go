package oracle

import (
	"context"

	"repro/graphio"
)

// FileSource builds each engine version from the graph file at path — the
// raw-dataset counterpart of SnapshotSource, and the source behind
// cmd/serve -graph-dir. Every supported graphio format works (DIMACS .gr,
// edge lists, METIS, legacy text, .csrg, each optionally gzipped); a
// .csrg container opens zero-copy, so the registry's cold start is
// bounded by disk bandwidth plus the hopset build. The file is re-read on
// every Reload, making "replace the file, POST a reload" the same
// zero-downtime refresh path snapshots have.
//
// Replace files by rename, never by truncating in place: a served .csrg
// is a live read-only mapping, and an in-place rewrite would change
// bytes under the old engine while it still answers queries. graphio's
// EncodeFile/EncodeFileAs (and therefore cmd/graphconv and cmd/hopset
// -out-graph) already write atomically via temp-file + rename, so the
// standard tooling is safe; only hand-rolled `cp`/shell redirection over
// a served file is not.
func FileSource(path string, buildOpts ...Option) EngineSource {
	return func(ctx context.Context, opts ...Option) (Backend, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		g, _, err := graphio.LoadFile(path)
		if err != nil {
			return nil, err
		}
		return New(g, append(append([]Option{}, buildOpts...), opts...)...)
	}
}
