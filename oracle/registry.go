package oracle

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/par"
)

// Registry errors. Match with errors.Is.
var (
	// ErrUnknownGraph is wrapped by every registry call naming a graph
	// that was never added (or was removed).
	ErrUnknownGraph = errors.New("oracle: unknown graph")

	// ErrGraphNotReady is wrapped by queries against a graph whose engine
	// is not resident: still pending or building, failed, or evicted.
	ErrGraphNotReady = errors.New("oracle: graph not ready")

	// ErrDuplicateGraph is returned by Add for a name already registered.
	ErrDuplicateGraph = errors.New("oracle: graph already registered")

	// ErrRegistryClosed is returned by every call after Close.
	ErrRegistryClosed = errors.New("oracle: registry closed")
)

// GraphStatus is the lifecycle state of a registered graph:
//
//	pending → building → ready
//	                   ↘ failed
//	ready → evicted → building (on demand or explicit Reload)
//
// A hot reload does not leave ready: the current engine keeps serving
// while the replacement builds, and the swap is atomic.
type GraphStatus string

const (
	StatusPending  GraphStatus = "pending"
	StatusBuilding GraphStatus = "building"
	StatusReady    GraphStatus = "ready"
	StatusFailed   GraphStatus = "failed"
	StatusEvicted  GraphStatus = "evicted"
)

// EngineSource produces one backend version for a registered graph. It is
// invoked for the initial background build and again on every Reload, so
// it must be re-invokable: re-read the snapshot file, or rebuild from the
// retained graph. The options carry the registry's serving configuration
// plus build context/progress plumbing and must be forwarded to the
// constructor; ctx is the same context for sources that load rather than
// build. Most sources return a monolithic *Engine; package shard returns
// its sharded Oracle — the registry serves both identically.
type EngineSource func(ctx context.Context, opts ...Option) (Backend, error)

// SnapshotSource loads each engine version from a SaveSnapshot file —
// the zero-downtime refresh path: overwrite the file, POST a reload, and
// the registry swaps in the new engine once it is resident.
func SnapshotSource(path string) EngineSource {
	return func(ctx context.Context, opts ...Option) (Backend, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return LoadSnapshot(f, opts...)
	}
}

// GraphSource builds each engine version from a retained graph with the
// given build-shaping options (epsilon, path reporting, …). The registry's
// options are applied after buildOpts, so its build context and progress
// plumbing always win.
func GraphSource(g *graph.Graph, buildOpts ...Option) EngineSource {
	return func(ctx context.Context, opts ...Option) (Backend, error) {
		return New(g, append(append([]Option{}, buildOpts...), opts...)...)
	}
}

// EdgesSource is GraphSource for callers holding an edge list.
func EdgesSource(n int, edges []Edge, buildOpts ...Option) EngineSource {
	return func(ctx context.Context, opts ...Option) (Backend, error) {
		return NewFromEdges(n, edges, append(append([]Option{}, buildOpts...), opts...)...)
	}
}

// Handle is a refcounted lease on one backend version. Queries that must
// be internally consistent acquire a handle once and run every read
// through it: a concurrent hot reload publishes the next version to new
// acquirers but never swaps a backend out from under a held handle.
// Release returns the lease; the backend is retired only after the last
// lease is gone.
type Handle struct {
	eng     Backend
	version int64
	refs    atomic.Int64
	drained chan struct{}
	// onDrained is run exactly once, by whichever Release drops the last
	// reference (set at creation; used by the registry's draining gauge).
	onDrained func()
}

func newHandle(eng Backend, version int64, onDrained func()) *Handle {
	h := &Handle{eng: eng, version: version, drained: make(chan struct{}), onDrained: onDrained}
	h.refs.Store(1) // the publisher's reference
	return h
}

// Engine returns the pinned backend. Valid until Release. Callers needing
// engine-only surface (e.g. SaveSnapshot) type-assert to *Engine.
func (h *Handle) Engine() Backend { return h.eng }

// Version identifies the engine generation: it increments on every
// successful build or reload of the graph, so two answers carry the same
// Version iff they came from the same immutable engine.
func (h *Handle) Version() int64 { return h.version }

// Release returns the lease. The final release retires the engine.
func (h *Handle) Release() {
	if n := h.refs.Add(-1); n == 0 {
		close(h.drained)
		if h.onDrained != nil {
			h.onDrained()
		}
	} else if n < 0 {
		panic("oracle: Handle released twice")
	}
}

// Drained is closed once every lease on this engine version has been
// released — the moment a swapped-out engine has fully drained.
func (h *Handle) Drained() <-chan struct{} { return h.drained }

// acquire adds a lease. Callers must guarantee the publisher's reference
// is still held (the registry does, under the entry lock).
func (h *Handle) acquire() { h.refs.Add(1) }

// RegistryConfig configures a Registry. The zero value is serviceable:
// builds bounded by half the par worker budget, no memory budget, default
// engine options.
type RegistryConfig struct {
	// BuildWorkers bounds how many background builds run at once (the
	// build-worker pool). Builds parallelize internally on the
	// internal/par pool, so the default — max(1, par.Workers()/2) — keeps
	// a few builds in flight without oversubscribing the same cores.
	BuildWorkers int
	// MemoryBudget caps the summed Engine.MemoryBytes of resident
	// engines; 0 means unlimited. When a build lands the registry evicts
	// least-recently-used ready graphs (never the one that just landed,
	// never one mid-build) until under budget. Evicted graphs keep their
	// source and rebuild on demand.
	MemoryBudget int64
	// EngineOptions are serving options (caches, batch window, …) applied
	// to every engine the registry creates.
	EngineOptions []Option
	// HotPairCache enables the registry-level hot-pair result cache: up
	// to this many (graph, source) distance rows are answered without
	// acquiring a handle, and — via DistSWR — served stale across hot
	// reloads while the new engine warms in the background. 0 disables.
	HotPairCache int
	// Audit receives a sampled fraction of served answers for background
	// exact recomputation (oracle/audit.Auditor). Each sample carries a
	// retained handle lease, so audits always recompute against the
	// engine version that answered — never a reloaded successor. nil
	// disables shadow auditing. Close drains the sink.
	Audit AuditSink
}

// Registry is the multi-graph serving layer: it owns N named engines
// behind one API, builds them in the background off the request path,
// hot-swaps versions with draining, and evicts cold graphs under a memory
// budget. All methods are safe for concurrent use.
type Registry struct {
	cfg RegistryConfig
	sem chan struct{} // build-pool slots

	ctx    context.Context
	cancel context.CancelFunc

	// buildMu gates build-goroutine spawning against Close: wg.Add only
	// ever runs under buildMu with noBuilds false, so wg.Wait cannot race
	// a late Add. It is a leaf lock (nothing else is taken under it).
	buildMu  sync.Mutex
	noBuilds bool
	wg       sync.WaitGroup

	// mu is an RWMutex so the hot-pair fresh path (lookup + atomic
	// version check) shares the read lock instead of serializing every
	// query through one mutex.
	mu     sync.RWMutex
	graphs map[string]*graphEntry
	closed bool

	// hot is the hot-pair result cache (nil = disabled).
	hot *hotCache

	clock        atomic.Int64 // logical LRU clock, ticked per query
	queries      atomic.Int64
	buildsDone   atomic.Int64
	buildsFailed atomic.Int64
	reloads      atomic.Int64
	evictions    atomic.Int64
	draining     atomic.Int64
}

type graphEntry struct {
	name   string
	source EngineSource

	mu       sync.Mutex
	status   GraphStatus
	err      error // last build failure
	handle   *Handle
	version  int64 // versions published so far
	building bool  // a build (initial or reload) is in flight
	// pendingReload records a Reload that arrived while a build was in
	// flight: that build may have read the source before the caller's
	// rewrite, so another build is enqueued when it finishes.
	pendingReload bool
	progress      BuildProgress
	cancel        context.CancelFunc // cancels the in-flight build
	changed       chan struct{}      // closed+replaced on every state change

	// curVer mirrors version atomically: the hot-pair fresh check reads
	// it without e.mu, so a cached row can be classified fresh/stale in
	// two atomic loads.
	curVer atomic.Int64

	lastUsed atomic.Int64
	queries  atomic.Int64
}

// notifyLocked wakes WaitReady waiters. e.mu must be held.
func (e *graphEntry) notifyLocked() {
	close(e.changed)
	e.changed = make(chan struct{})
}

// NewRegistry returns an empty registry. Close it when done: Close cancels
// in-flight builds and waits for the build pool to wind down.
func NewRegistry(cfg RegistryConfig) *Registry {
	if cfg.BuildWorkers <= 0 {
		cfg.BuildWorkers = par.Workers() / 2
		if cfg.BuildWorkers < 1 {
			cfg.BuildWorkers = 1
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	r := &Registry{
		cfg:    cfg,
		sem:    make(chan struct{}, cfg.BuildWorkers),
		ctx:    ctx,
		cancel: cancel,
		graphs: make(map[string]*graphEntry),
	}
	if cfg.HotPairCache > 0 {
		r.hot = newHotCache(cfg.HotPairCache)
	}
	return r
}

// Add registers a graph under name and enqueues its background build (or
// snapshot load). It returns immediately; use WaitReady or Info to follow
// the pending → building → ready/failed lifecycle.
func (r *Registry) Add(name string, src EngineSource) error {
	if name == "" || src == nil {
		return errors.New("oracle: Add needs a name and a source")
	}
	e := &graphEntry{name: name, source: src, status: StatusPending, changed: make(chan struct{})}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrRegistryClosed
	}
	if _, dup := r.graphs[name]; dup {
		r.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrDuplicateGraph, name)
	}
	r.graphs[name] = e
	r.mu.Unlock()

	e.mu.Lock()
	r.scheduleBuildLocked(e)
	e.mu.Unlock()
	return nil
}

// AddReady registers an already-built backend under name, immediately
// ready. Reload re-publishes the same backend; use Add with a source for
// rebuildable graphs.
func (r *Registry) AddReady(name string, eng Backend) error {
	if eng == nil {
		return errors.New("oracle: AddReady needs an engine")
	}
	return r.Add(name, func(context.Context, ...Option) (Backend, error) { return eng, nil })
}

// Remove unregisters a graph: its in-flight build (if any) is canceled and
// its engine retires once in-flight queries drain.
func (r *Registry) Remove(name string) error {
	r.mu.Lock()
	e, ok := r.graphs[name]
	if ok {
		delete(r.graphs, name)
	}
	closed := r.closed
	r.mu.Unlock()
	if closed {
		return ErrRegistryClosed
	}
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownGraph, name)
	}
	e.mu.Lock()
	if e.cancel != nil {
		e.cancel()
	}
	old := e.handle
	e.handle = nil
	e.status = StatusEvicted
	e.notifyLocked()
	e.mu.Unlock()
	if old != nil {
		r.draining.Add(1)
		old.Release()
	}
	if r.hot != nil {
		// Drop the graph's rows: a later Add under the same name restarts
		// the version counter, which would alias stale rows as fresh.
		r.hot.purge(name)
	}
	return nil
}

// Reload enqueues a fresh build from the graph's source and atomically
// swaps it in when it lands. The current engine (if any) keeps serving
// until the swap, so a reload is zero-downtime; in-flight queries drain on
// the old version's refcount. A reload while another build is in flight
// queues one follow-up build: the in-flight build may have read the
// source before the caller's rewrite, so the contract — reload always
// re-reads the source as it is now or later — is kept by rebuilding once
// more when it finishes (multiple queued reloads coalesce into that one).
func (r *Registry) Reload(name string) error {
	e, err := r.lookup(name)
	if err != nil {
		return err
	}
	r.reloads.Add(1)
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.building {
		e.pendingReload = true
		return nil
	}
	r.scheduleBuildLocked(e)
	return nil
}

// scheduleBuildLocked enqueues a build for e. e.mu must be held; the
// registry must not be closed (checked by callers via lookup/Add). During
// shutdown the spawn is refused and the entry is left as-is.
func (r *Registry) scheduleBuildLocked(e *graphEntry) {
	r.buildMu.Lock()
	if r.noBuilds {
		r.buildMu.Unlock()
		return
	}
	r.wg.Add(1)
	r.buildMu.Unlock()
	ctx, cancel := context.WithCancel(r.ctx)
	e.building = true
	e.cancel = cancel
	e.progress = BuildProgress{}
	if e.handle == nil {
		e.status = StatusBuilding
	}
	e.notifyLocked()
	go r.runBuild(e, ctx)
}

func (r *Registry) runBuild(e *graphEntry, ctx context.Context) {
	defer r.wg.Done()
	// Claim a build-pool slot; a canceled build never starts.
	select {
	case r.sem <- struct{}{}:
		defer func() { <-r.sem }()
	case <-ctx.Done():
		r.finishBuild(e, nil, ctx.Err())
		return
	}
	opts := append(append([]Option{}, r.cfg.EngineOptions...),
		WithBuildContext(ctx),
		WithBuildProgress(func(p BuildProgress) {
			e.mu.Lock()
			e.progress = p
			e.mu.Unlock()
		}),
	)
	eng, err := e.source(ctx, opts...)
	if err == nil && eng == nil {
		err = errors.New("oracle: source returned no engine")
	}
	r.finishBuild(e, eng, err)
}

// finishBuild publishes a new engine version (or records the failure) and
// releases the previous version for draining.
func (r *Registry) finishBuild(e *graphEntry, eng Backend, err error) {
	var old *Handle
	e.mu.Lock()
	e.building = false
	e.cancel = nil
	if err != nil {
		r.buildsFailed.Add(1)
		e.err = err
		// A failed reload keeps the old engine serving.
		if e.handle == nil {
			e.status = StatusFailed
		}
	} else {
		r.buildsDone.Add(1)
		e.err = nil
		e.version++
		e.curVer.Store(e.version)
		old = e.handle
		e.handle = newHandle(eng, e.version, func() { r.draining.Add(-1) })
		e.status = StatusReady
		e.lastUsed.Store(r.clock.Add(1))
	}
	if e.pendingReload {
		// A Reload arrived mid-build; its source rewrite may postdate the
		// bits this build read, so go around once more.
		e.pendingReload = false
		r.scheduleBuildLocked(e)
	}
	e.notifyLocked()
	e.mu.Unlock()
	if old != nil {
		r.draining.Add(1)
		old.Release()
	}
	if err == nil {
		r.enforceBudget()
	}
}

// enforceBudget evicts least-recently-used ready graphs until the summed
// engine memory fits the configured budget. The most-recently-used graph
// is never evicted, so one oversized graph cannot thrash.
func (r *Registry) enforceBudget() {
	if r.cfg.MemoryBudget <= 0 {
		return
	}
	type resident struct {
		e        *graphEntry
		bytes    int64
		lastUsed int64
	}
	r.mu.Lock()
	entries := make([]*graphEntry, 0, len(r.graphs))
	for _, e := range r.graphs {
		entries = append(entries, e)
	}
	r.mu.Unlock()

	var ready []resident
	var total int64
	for _, e := range entries {
		e.mu.Lock()
		if e.handle != nil {
			b := e.handle.Engine().MemoryBytes()
			ready = append(ready, resident{e, b, e.lastUsed.Load()})
			total += b
		}
		e.mu.Unlock()
	}
	if total <= r.cfg.MemoryBudget {
		return
	}
	sort.Slice(ready, func(i, j int) bool { return ready[i].lastUsed < ready[j].lastUsed })
	for _, cand := range ready[:len(ready)-1] { // keep the MRU graph
		if total <= r.cfg.MemoryBudget {
			break
		}
		var old *Handle
		cand.e.mu.Lock()
		// Re-check under the lock: a query or reload may have landed.
		if cand.e.handle != nil && !cand.e.building && cand.e.lastUsed.Load() == cand.lastUsed {
			old = cand.e.handle
			cand.e.handle = nil
			cand.e.status = StatusEvicted
			cand.e.notifyLocked()
			total -= cand.bytes
			r.evictions.Add(1)
		}
		cand.e.mu.Unlock()
		if old != nil {
			r.draining.Add(1)
			old.Release()
			if r.hot != nil {
				// Same reason as Remove: an evicted graph's cached rows are
				// tagged with a version nothing re-validates until the next
				// rebuild lands, so they would serve stale for an unbounded
				// window (and hold memory against the very budget that
				// triggered the eviction). Drop them with the engine.
				r.hot.purge(cand.e.name)
			}
		}
	}
}

func (r *Registry) lookup(name string) (*graphEntry, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.closed {
		return nil, ErrRegistryClosed
	}
	e, ok := r.graphs[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownGraph, name)
	}
	return e, nil
}

// Acquire pins the graph's current engine version and returns a Handle.
// Reads through one handle are guaranteed to come from one immutable
// engine even across concurrent reloads. Acquiring an evicted graph
// enqueues its rebuild and returns ErrGraphNotReady; acquiring a failed
// graph returns the build error wrapped in ErrGraphNotReady.
func (r *Registry) Acquire(name string) (*Handle, error) {
	e, err := r.lookup(name)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.handle != nil {
		e.handle.acquire()
		e.lastUsed.Store(r.clock.Add(1))
		e.queries.Add(1)
		r.queries.Add(1)
		return e.handle, nil
	}
	switch {
	case e.status == StatusEvicted && !e.building:
		// Cold graph warmed by demand: rebuild in the background.
		r.scheduleBuildLocked(e)
		return nil, fmt.Errorf("%w: graph %q was evicted, rebuild enqueued", ErrGraphNotReady, name)
	case e.status == StatusFailed && e.err != nil:
		return nil, fmt.Errorf("%w: graph %q build failed: %w", ErrGraphNotReady, name, e.err)
	default:
		return nil, fmt.Errorf("%w: graph %q is %s", ErrGraphNotReady, name, e.status)
	}
}

// Dist serves Engine.Dist for the named graph.
func (r *Registry) Dist(name string, source int32) ([]float64, error) {
	h, err := r.Acquire(name)
	if err != nil {
		return nil, err
	}
	defer h.Release()
	d, err := h.Engine().Dist(source)
	if err == nil {
		r.auditDist(context.Background(), name, h, source, d)
	}
	return d, err
}

// DistTo serves Engine.DistTo for the named graph.
func (r *Registry) DistTo(name string, source, target int32) (float64, error) {
	h, err := r.Acquire(name)
	if err != nil {
		return 0, err
	}
	defer h.Release()
	return h.Engine().DistTo(source, target)
}

// Path serves Engine.Path for the named graph.
func (r *Registry) Path(name string, u, v int32) ([]int32, float64, error) {
	h, err := r.Acquire(name)
	if err != nil {
		return nil, 0, err
	}
	defer h.Release()
	path, length, err := h.Engine().Path(u, v)
	if err == nil {
		r.auditPath(context.Background(), name, h, u, v, path, length)
	}
	return path, length, err
}

// Tree serves Engine.Tree for the named graph.
func (r *Registry) Tree(name string, source int32) (*Tree, error) {
	h, err := r.Acquire(name)
	if err != nil {
		return nil, err
	}
	defer h.Release()
	return h.Engine().Tree(source)
}

// MultiSource serves Engine.MultiSource for the named graph.
func (r *Registry) MultiSource(name string, sources []int32) ([][]float64, error) {
	h, err := r.Acquire(name)
	if err != nil {
		return nil, err
	}
	defer h.Release()
	return h.Engine().MultiSource(sources)
}

// Matrix serves the many-to-many distance matrix for the named graph.
// Backends that do not implement MatrixBackend get ErrUnsupported.
func (r *Registry) Matrix(name string, sources, targets []int32) ([][]float64, error) {
	h, err := r.Acquire(name)
	if err != nil {
		return nil, err
	}
	defer h.Release()
	mb, ok := h.Engine().(MatrixBackend)
	if !ok {
		return nil, fmt.Errorf("%w: matrix", ErrUnsupported)
	}
	rows, err := mb.Matrix(sources, targets)
	if err == nil {
		r.auditMatrix(context.Background(), name, h, sources, targets, rows)
	}
	return rows, err
}

// WaitReady blocks until the named graph is ready (nil), its build fails
// (the build error), or ctx is done (ctx.Err()). A graph that fails and is
// then reloaded successfully still resolves to nil on the later build.
// Waiting counts as demand: an evicted graph's rebuild is enqueued, so
// WaitReady doubles as the warm-up call for cold graphs.
func (r *Registry) WaitReady(ctx context.Context, name string) error {
	for {
		e, err := r.lookup(name)
		if err != nil {
			return err
		}
		e.mu.Lock()
		if e.status == StatusEvicted && !e.building {
			r.scheduleBuildLocked(e)
		}
		status, berr, ch := e.status, e.err, e.changed
		e.mu.Unlock()
		switch status {
		case StatusReady:
			return nil
		case StatusFailed:
			return berr
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ch:
		}
	}
}

// GraphInfo is a point-in-time description of one registered graph.
type GraphInfo struct {
	Name    string      `json:"name"`
	Status  GraphStatus `json:"status"`
	Version int64       `json:"version"`
	// Reloading reports a build in flight while a previous version keeps
	// serving (hot reload); Status stays "ready".
	Reloading bool   `json:"reloading,omitempty"`
	Error     string `json:"error,omitempty"`
	// Progress is the latest build-progress report while building.
	Progress *BuildProgress `json:"build_progress,omitempty"`

	N           int `json:"n,omitempty"`
	HopsetEdges int `json:"hopset_edges,omitempty"`
	// Shards is the shard count of a sharded backend (0 = monolithic).
	Shards      int   `json:"shards,omitempty"`
	MemoryBytes int64 `json:"memory_bytes,omitempty"`
	Queries     int64 `json:"queries"`
	LastUsed    int64 `json:"last_used,omitempty"` // logical clock tick
}

// Info describes one graph.
func (r *Registry) Info(name string) (GraphInfo, error) {
	e, err := r.lookup(name)
	if err != nil {
		return GraphInfo{}, err
	}
	return r.info(e), nil
}

func (r *Registry) info(e *graphEntry) GraphInfo {
	e.mu.Lock()
	defer e.mu.Unlock()
	gi := GraphInfo{
		Name:      e.name,
		Status:    e.status,
		Version:   e.version,
		Reloading: e.building && e.handle != nil,
		Queries:   e.queries.Load(),
		LastUsed:  e.lastUsed.Load(),
	}
	if e.err != nil {
		gi.Error = e.err.Error()
	}
	if e.building {
		p := e.progress
		gi.Progress = &p
	}
	if e.handle != nil {
		eng := e.handle.Engine()
		gi.N = eng.N()
		d := eng.Describe()
		gi.HopsetEdges = d.HopsetEdges
		gi.Shards = d.Shards
		gi.MemoryBytes = eng.MemoryBytes()
	}
	return gi
}

// List describes every registered graph, sorted by name.
func (r *Registry) List() []GraphInfo {
	r.mu.RLock()
	entries := make([]*graphEntry, 0, len(r.graphs))
	for _, e := range r.graphs {
		entries = append(entries, e)
	}
	r.mu.RUnlock()
	out := make([]GraphInfo, 0, len(entries))
	for _, e := range entries {
		out = append(out, r.info(e))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// EngineStats returns the engine counters of a graph with a resident
// engine. Unlike Acquire it is a pure read: it does not count as a query,
// does not touch the LRU clock, and never schedules a rebuild — so
// monitoring polls cannot distort eviction order or resurrect cold
// graphs.
func (r *Registry) EngineStats(name string) (Stats, error) {
	e, err := r.lookup(name)
	if err != nil {
		return Stats{}, err
	}
	e.mu.Lock()
	h := e.handle
	if h != nil {
		h.acquire()
	}
	status := e.status
	e.mu.Unlock()
	if h == nil {
		return Stats{}, fmt.Errorf("%w: graph %q is %s", ErrGraphNotReady, name, status)
	}
	defer h.Release()
	return h.Engine().Stats(), nil
}

// RegistryStats aggregates the registry's counters across all graphs.
type RegistryStats struct {
	Graphs   int `json:"graphs"`
	Ready    int `json:"ready"`
	Building int `json:"building"`
	Failed   int `json:"failed"`
	Evicted  int `json:"evicted"`

	Queries      int64 `json:"queries"`
	BuildsDone   int64 `json:"builds_done"`
	BuildsFailed int64 `json:"builds_failed"`
	Reloads      int64 `json:"reloads"`
	Evictions    int64 `json:"evictions"`
	// Draining counts retired engine versions still pinned by in-flight
	// queries.
	Draining int64 `json:"draining"`

	MemoryBytes  int64 `json:"memory_bytes"`
	MemoryBudget int64 `json:"memory_budget,omitempty"`

	// HotPair is the hot-pair result cache snapshot (nil when disabled).
	HotPair *HotPairStats `json:"hot_pair,omitempty"`
}

// Stats returns the aggregate registry counters.
func (r *Registry) Stats() RegistryStats {
	st := RegistryStats{
		Queries:      r.queries.Load(),
		BuildsDone:   r.buildsDone.Load(),
		BuildsFailed: r.buildsFailed.Load(),
		Reloads:      r.reloads.Load(),
		Evictions:    r.evictions.Load(),
		Draining:     r.draining.Load(),
		MemoryBudget: r.cfg.MemoryBudget,
	}
	if r.hot != nil {
		hp := r.hot.stats()
		st.HotPair = &hp
	}
	for _, gi := range r.List() {
		st.Graphs++
		switch gi.Status {
		case StatusReady:
			st.Ready++
		case StatusBuilding, StatusPending:
			st.Building++
		case StatusFailed:
			st.Failed++
		case StatusEvicted:
			st.Evicted++
		}
		st.MemoryBytes += gi.MemoryBytes
	}
	return st
}

// Close cancels in-flight builds, waits for the build pool to wind down,
// and retires every engine. Queries and mutations after Close return
// ErrRegistryClosed.
func (r *Registry) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	entries := make([]*graphEntry, 0, len(r.graphs))
	for _, e := range r.graphs {
		entries = append(entries, e)
	}
	r.graphs = map[string]*graphEntry{}
	r.mu.Unlock()

	r.buildMu.Lock()
	r.noBuilds = true
	r.buildMu.Unlock()
	r.cancel()
	r.wg.Wait()
	// Drain the audit sink before retiring engines: queued samples hold
	// retained handle leases, and in-flight audits must finish (or be
	// discarded) so no audit worker touches an engine after shutdown.
	if r.cfg.Audit != nil {
		r.cfg.Audit.Drain()
	}
	for _, e := range entries {
		e.mu.Lock()
		old := e.handle
		e.handle = nil
		e.status = StatusEvicted
		e.notifyLocked()
		e.mu.Unlock()
		if old != nil {
			r.draining.Add(1)
			old.Release()
		}
	}
}
