package oracle

// The stats↔metrics parity test: every numeric leaf of the /stats JSON
// (RegistryStats and the per-graph engine Stats, recursively) must map to
// a /metrics family, and every mapped family must actually appear in a
// collector render. The mapping table is the contract; a new stats field
// without a table entry fails the walk, and a table entry whose family
// the collector stopped emitting fails the render check — so the two
// observability surfaces cannot silently drift apart.

import (
	"reflect"
	"strings"
	"testing"

	"context"

	"repro/internal/graph"
	"repro/internal/obs"
)

// statsMetricFamily maps each numeric /stats leaf (JSON path, "registry."
// or "engine." prefixed; "[]" marks slice elements, "{}" map values) to
// the /metrics family carrying the same signal.
var statsMetricFamily = map[string]string{
	"registry.graphs":                 "spo_registered_graphs",
	"registry.ready":                  "spo_graphs",
	"registry.building":               "spo_graphs",
	"registry.failed":                 "spo_graphs",
	"registry.evicted":                "spo_graphs",
	"registry.queries":                "spo_registry_queries_total",
	"registry.builds_done":            "spo_builds_total",
	"registry.builds_failed":          "spo_builds_total",
	"registry.reloads":                "spo_reloads_total",
	"registry.evictions":              "spo_evictions_total",
	"registry.draining":               "spo_draining_engines",
	"registry.memory_bytes":           "spo_registry_memory_bytes",
	"registry.memory_budget":          "spo_registry_memory_budget_bytes",
	"registry.hot_pair.entries":       "spo_hotpair_entries",
	"registry.hot_pair.hits":          "spo_hotpair_hits_total",
	"registry.hot_pair.stale_hits":    "spo_hotpair_hits_total",
	"registry.hot_pair.misses":        "spo_hotpair_misses_total",
	"registry.hot_pair.evictions":     "spo_hotpair_evictions_total",
	"registry.hot_pair.revalidations": "spo_hotpair_revalidations_total",

	"engine.dist_queries":    "spo_graph_queries_total",
	"engine.multi_queries":   "spo_graph_queries_total",
	"engine.nearest_queries": "spo_graph_queries_total",
	"engine.path_queries":    "spo_graph_queries_total",
	"engine.tree_queries":    "spo_graph_queries_total",
	"engine.matrix_queries":  "spo_graph_queries_total",

	"engine.dist_cache.hits":      "spo_graph_cache_events_total",
	"engine.dist_cache.misses":    "spo_graph_cache_events_total",
	"engine.dist_cache.evictions": "spo_graph_cache_events_total",
	"engine.dist_cache.len":       "spo_graph_cache_entries",
	"engine.tree_cache.hits":      "spo_graph_cache_events_total",
	"engine.tree_cache.misses":    "spo_graph_cache_events_total",
	"engine.tree_cache.evictions": "spo_graph_cache_events_total",
	"engine.tree_cache.len":       "spo_graph_cache_entries",

	"engine.batches":           "spo_batches_total",
	"engine.batched_queries":   "spo_batched_queries_total",
	"engine.largest_batch":     "spo_batch_largest",
	"engine.batch_window_ns":   "spo_batch_window_seconds",
	"engine.batch_wait_ns":     "spo_batch_wait_seconds_total",
	"engine.batch_occupancy[]": "spo_batch_occupancy_total",

	"engine.latency{}.count":   "spo_query_latency_seconds",
	"engine.latency{}.mean_us": "spo_query_latency_seconds",
	"engine.latency{}.p50_us":  "spo_query_latency_seconds",
	"engine.latency{}.p90_us":  "spo_query_latency_seconds",
	"engine.latency{}.p99_us":  "spo_query_latency_seconds",
	"engine.latency{}.p999_us": "spo_query_latency_seconds",
	"engine.latency{}.max_us":  "spo_query_latency_seconds",

	"engine.relax.explorations":  "spo_relax_explorations_total",
	"engine.relax.scanned_arcs":  "spo_relax_scanned_arcs_total",
	"engine.relax.dense_rounds":  "spo_relax_rounds_total",
	"engine.relax.sparse_rounds": "spo_relax_rounds_total",
	"engine.relax.batched_seeds": "spo_relax_batched_seeds_total",

	"engine.sharded.shards":            "spo_shard_partitions",
	"engine.sharded.boundary_vertices": "spo_shard_boundary_vertices",
	"engine.sharded.overlay_edges":     "spo_shard_overlay_edges",
	"engine.sharded.cut_edges":         "spo_shard_cut_edges",
	"engine.sharded.epsilon_local":     "spo_shard_epsilon",
	"engine.sharded.epsilon_overlay":   "spo_shard_epsilon",
	"engine.sharded.stretch_bound":     "spo_shard_stretch_bound",
	"engine.sharded.routed_queries":    "spo_shard_queries_total",
	"engine.sharded.local_queries":     "spo_shard_queries_total",

	"engine.sharded.router_cache.hits":      "spo_router_cache_events_total",
	"engine.sharded.router_cache.misses":    "spo_router_cache_events_total",
	"engine.sharded.router_cache.evictions": "spo_router_cache_events_total",
	"engine.sharded.router_cache.len":       "spo_router_cache_entries",

	"engine.sharded.remote.hedges":     "spo_router_hedges_total",
	"engine.sharded.remote.hedge_wins": "spo_router_hedge_wins_total",
	"engine.sharded.remote.failovers":  "spo_router_failovers_total",

	"engine.sharded.remote.endpoints[].healthy":  "spo_endpoint_up",
	"engine.sharded.remote.endpoints[].requests": "spo_endpoint_requests_total",
	"engine.sharded.remote.endpoints[].errors":   "spo_endpoint_errors_total",

	"engine.sharded.remote.endpoints[].latency.count":   "spo_endpoint_latency_seconds",
	"engine.sharded.remote.endpoints[].latency.mean_us": "spo_endpoint_latency_seconds",
	"engine.sharded.remote.endpoints[].latency.p50_us":  "spo_endpoint_latency_seconds",
	"engine.sharded.remote.endpoints[].latency.p90_us":  "spo_endpoint_latency_seconds",
	"engine.sharded.remote.endpoints[].latency.p99_us":  "spo_endpoint_latency_seconds",
	"engine.sharded.remote.endpoints[].latency.p999_us": "spo_endpoint_latency_seconds",
	"engine.sharded.remote.endpoints[].latency.max_us":  "spo_endpoint_latency_seconds",
}

// statsMetricExempt lists leaves deliberately absent from /metrics, each
// with the reason it is exempt.
var statsMetricExempt = map[string]string{
	"engine.dist_cache.cap":             "static configuration, not a signal",
	"engine.tree_cache.cap":             "static configuration, not a signal",
	"engine.sharded.router_cache.cap":   "static configuration, not a signal",
	"engine.relax.arcs_per_exploration": "derived: scanned_arcs / explorations",
}

// statsLeafPaths walks t collecting the JSON path of every numeric or
// boolean leaf field. Strings are label material, not samples, and are
// skipped.
func statsLeafPaths(t reflect.Type, prefix string, out map[string]bool) {
	switch t.Kind() {
	case reflect.Ptr:
		statsLeafPaths(t.Elem(), prefix, out)
	case reflect.Slice, reflect.Array:
		statsLeafPaths(t.Elem(), prefix+"[]", out)
	case reflect.Map:
		statsLeafPaths(t.Elem(), prefix+"{}", out)
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() {
				continue
			}
			name := strings.Split(f.Tag.Get("json"), ",")[0]
			if name == "-" {
				continue
			}
			if name == "" {
				name = f.Name
			}
			statsLeafPaths(f.Type, prefix+"."+name, out)
		}
	case reflect.Bool,
		reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64,
		reflect.Float32, reflect.Float64:
		out[prefix] = true
	}
}

func TestStatsMetricsParity(t *testing.T) {
	leaves := map[string]bool{}
	statsLeafPaths(reflect.TypeOf(RegistryStats{}), "registry", leaves)
	statsLeafPaths(reflect.TypeOf(Stats{}), "engine", leaves)

	// Direction 1: every stats leaf is either mapped to a family or
	// explicitly exempted with a reason.
	for leaf := range leaves {
		_, mapped := statsMetricFamily[leaf]
		_, exempt := statsMetricExempt[leaf]
		switch {
		case mapped && exempt:
			t.Errorf("leaf %s is both mapped and exempt", leaf)
		case !mapped && !exempt:
			t.Errorf("stats leaf %s has no /metrics family and no exemption — extend MetricsCollector (or statsMetricExempt with a reason)", leaf)
		}
	}
	// Stale table entries (field renamed or removed) fail too.
	for leaf := range statsMetricFamily {
		if !leaves[leaf] {
			t.Errorf("mapping table names %s, which is not a stats leaf anymore", leaf)
		}
	}
	for leaf := range statsMetricExempt {
		if !leaves[leaf] {
			t.Errorf("exempt table names %s, which is not a stats leaf anymore", leaf)
		}
	}

	// Direction 2: every family the table promises is actually emitted.
	// A live registry (with the hot-pair cache and a budget, so the
	// conditional registry families render) covers the registry side; a
	// fully-populated synthetic Stats covers every engine family,
	// including the sharded/remote branches a monolithic engine never
	// takes.
	r := NewRegistry(RegistryConfig{HotPairCache: 16, MemoryBudget: 1 << 40})
	defer r.Close()
	g := graph.Gnm(64, 192, graph.UniformWeights(1, 4), 7)
	if err := r.Add("g", GraphSource(g)); err != nil {
		t.Fatal(err)
	}
	if err := r.WaitReady(context.Background(), "g"); err != nil {
		t.Fatal(err)
	}

	w := obs.NewMetricWriter()
	MetricsCollector(r)(w)
	collectEngineStats(w, "synthetic", syntheticStats())

	fams, err := obs.ParseExposition(strings.NewReader(string(w.Render())))
	if err != nil {
		t.Fatalf("collector output failed to parse: %v", err)
	}
	for leaf, fam := range statsMetricFamily {
		if fams[fam] == nil {
			t.Errorf("family %s (for stats leaf %s) missing from collector output", fam, leaf)
		}
	}
}

// syntheticStats returns an engine Stats with every field non-zero, so
// each conditional collector branch emits its families.
func syntheticStats() Stats {
	snap := LatencySnapshot{Count: 3, MeanUs: 120, P50Us: 100, P90Us: 200, P99Us: 300, P999Us: 400, MaxUs: 500}
	return Stats{
		DistQueries: 1, MultiQueries: 2, NearestQueries: 3,
		PathQueries: 4, TreeQueries: 5, MatrixQueries: 6,
		DistCache:       CacheStats{Hits: 1, Misses: 2, Evictions: 3, Len: 4, Cap: 8},
		TreeCache:       CacheStats{Hits: 1, Misses: 2, Evictions: 3, Len: 4, Cap: 8},
		Batches:         2,
		BatchedQueries:  5,
		LargestBatch:    3,
		BatchWindowNano: 250_000,
		BatchWaitNano:   1_000_000,
		BatchOccupancy:  []int64{1, 1, 0, 0, 0, 0, 0},
		Latency:         map[string]LatencySnapshot{"dist": snap},
		Relax: RelaxStats{
			Explorations: 7, ScannedArcs: 700, DenseRounds: 3,
			SparseRounds: 4, ArcsPerExploration: 100, BatchedSeeds: 9,
		},
		Sharded: &ShardStats{
			Shards: 4, BoundaryVertices: 40, OverlayEdges: 120, CutEdges: 60,
			EpsilonLocal: 0.25, EpsilonOverlay: 0.25, StretchBound: 1.953125,
			RoutedQueries: 11, LocalQueries: 5,
			RouterCache: CacheStats{Hits: 1, Misses: 2, Evictions: 3, Len: 4, Cap: 8},
			Remote: &RemoteStats{
				Endpoints: []EndpointStats{{
					URL: "http://worker:8081", Healthy: true,
					Requests: 12, Errors: 1, Latency: snap,
				}},
				Hedges: 2, HedgeWins: 1, Failovers: 1,
			},
		},
	}
}
