package oracle

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/graphio"
	"repro/internal/graph"
)

// waitInfo polls Info until cond holds or the deadline passes.
func waitInfo(t *testing.T, r *Registry, name string, cond func(GraphInfo) bool) GraphInfo {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		gi, err := r.Info(name)
		if err != nil {
			t.Fatal(err)
		}
		if cond(gi) {
			return gi
		}
		if time.Now().After(deadline) {
			t.Fatalf("condition never held; last info %+v", gi)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestFileSourceReloadFailurePaths drives the two dataset failure modes a
// live service meets — source file deleted, source file truncated — each
// between reloads: the reload must fail, the previous engine version must
// keep serving bit-identical answers, and the error must surface in the
// graph's status (registry Info and the /graphs/{name} HTTP endpoint)
// until a good file and a successful reload clear it.
func TestFileSourceReloadFailurePaths(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "city.csrg")
	g := graph.Gnm(150, 600, graph.UniformWeights(1, 8), 21)
	if err := graphio.EncodeFile(path, g); err != nil {
		t.Fatal(err)
	}

	r := NewRegistry(RegistryConfig{})
	defer r.Close()
	if err := r.Add("city", FileSource(path, WithEpsilon(0.3))); err != nil {
		t.Fatal(err)
	}
	if err := r.WaitReady(context.Background(), "city"); err != nil {
		t.Fatal(err)
	}
	ref, err := r.Dist("city", 0)
	if err != nil {
		t.Fatal(err)
	}
	v1, err := r.Info("city")
	if err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(NewRegistryHandler(r))
	defer srv.Close()

	check := func(stage string) {
		t.Helper()
		gi := waitInfo(t, r, "city", func(gi GraphInfo) bool { return gi.Error != "" && !gi.Reloading })
		if gi.Status != StatusReady || gi.Version != v1.Version {
			t.Fatalf("%s: status %s version %d, want ready v%d (old engine must keep serving)",
				stage, gi.Status, gi.Version, v1.Version)
		}
		d, err := r.Dist("city", 0)
		if err != nil {
			t.Fatalf("%s: query through failed reload: %v", stage, err)
		}
		if !reflect.DeepEqual(d, ref) {
			t.Fatalf("%s: answers changed under a failed reload", stage)
		}
		// The HTTP status surface carries the same error.
		resp, err := http.Get(srv.URL + "/graphs/city")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out GraphInfo
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		if out.Error == "" || out.Status != StatusReady {
			t.Fatalf("%s: /graphs/city = %+v, want ready with a surfaced error", stage, out)
		}
	}

	// Failure 1: the dataset disappears between reloads.
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	if err := r.Reload("city"); err != nil {
		t.Fatal(err)
	}
	check("deleted")

	// Failure 2: a truncated dataset lands (replaced by rename, the only
	// safe way to swap a served container — see the FileSource contract).
	good := encodeToBytes(t, g)
	writeByRename(t, path, good[:len(good)/2])
	if err := r.Reload("city"); err != nil {
		t.Fatal(err)
	}
	check("truncated")

	// Recovery: a good file and one more reload publish a new version and
	// clear the error.
	if err := graphio.EncodeFile(path, g); err != nil {
		t.Fatal(err)
	}
	if err := r.Reload("city"); err != nil {
		t.Fatal(err)
	}
	gi := waitInfo(t, r, "city", func(gi GraphInfo) bool { return gi.Error == "" && gi.Version > v1.Version })
	if gi.Status != StatusReady {
		t.Fatalf("recovery: %+v", gi)
	}
	d, err := r.Dist("city", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d, ref) {
		t.Fatal("recovered engine deviates from the deterministic reference")
	}
}

func encodeToBytes(t *testing.T, g *graph.Graph) []byte {
	t.Helper()
	dir := t.TempDir()
	p := filepath.Join(dir, "tmp.csrg")
	if err := graphio.EncodeFile(p, g); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func writeByRename(t *testing.T, path string, data []byte) {
	t.Helper()
	tmp := path + ".next"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(tmp, path); err != nil {
		t.Fatal(err)
	}
}
