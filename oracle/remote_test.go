package oracle

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"repro/internal/graph"
)

// TestRemoteErrorRoundTrip pins the wire contract for every typed
// sentinel: an error raised inside one serve process must arrive in
// another process's RemoteBackend with errors.Is still matching —
// writeError encodes the code, RemoteBackend decodes it back. The
// expected HTTP statuses are asserted too, because the status class is
// the fallback decode for servers that predate the code field.
func TestRemoteErrorRoundTrip(t *testing.T) {
	wantStatus := map[string]int{
		"not_built":            http.StatusServiceUnavailable,
		"vertex_out_of_range":  http.StatusBadRequest,
		"need_path_reporting":  http.StatusBadRequest,
		"need_sources":         http.StatusBadRequest,
		"snapshot_unsupported": http.StatusInternalServerError,
		"unsupported":          http.StatusNotImplemented,
		"offsets_mismatch":     http.StatusBadRequest,
		"unknown_graph":        http.StatusNotFound,
		"graph_not_ready":      http.StatusServiceUnavailable,
		"duplicate_graph":      http.StatusInternalServerError,
		"registry_closed":      http.StatusServiceUnavailable,
	}
	for _, ec := range errorCodes {
		ec := ec
		t.Run(ec.code, func(t *testing.T) {
			// The server raises the sentinel wrapped in extra context, as
			// real handlers do.
			srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				writeError(w, fmt.Errorf("handler context: %w", ec.err))
			}))
			defer srv.Close()

			rb := NewRemoteBackend(srv.URL, "g", nil)
			_, err := rb.Dist(0)
			if err == nil {
				t.Fatal("remote call returned nil error")
			}
			if !errors.Is(err, ec.err) {
				t.Fatalf("errors.Is(%v, %v) = false after HTTP round trip", err, ec.err)
			}
			var re *RemoteError
			if !errors.As(err, &re) {
				t.Fatalf("round-tripped error %v is not a *RemoteError", err)
			}
			if re.Code != ec.code {
				t.Fatalf("wire code = %q, want %q", re.Code, ec.code)
			}
			if want := wantStatus[ec.code]; re.Status != want {
				t.Fatalf("status = %d, want %d", re.Status, want)
			}
			// Typed answers are definitive: identical on every replica, so
			// the router must never fail them over.
			if IsRemoteTransient(err) && wantStatus[ec.code] < 500 {
				t.Fatalf("typed %s classified transient", ec.code)
			}
		})
	}
}

// TestRemoteErrorStatusFallback covers servers that answer without a code
// field: the status class alone must still decode to the right sentinel
// (501 → ErrUnsupported, 404 → ErrUnknownGraph, 503 → ErrGraphNotReady),
// and anything else to ErrRemote.
func TestRemoteErrorStatusFallback(t *testing.T) {
	for _, tc := range []struct {
		status int
		want   error
	}{
		{http.StatusNotImplemented, ErrUnsupported},
		{http.StatusNotFound, ErrUnknownGraph},
		{http.StatusServiceUnavailable, ErrGraphNotReady},
		{http.StatusInternalServerError, ErrRemote},
		{http.StatusBadRequest, ErrRemote},
	} {
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			http.Error(w, "plain failure", tc.status)
		}))
		rb := NewRemoteBackend(srv.URL, "g", nil)
		_, err := rb.Dist(0)
		srv.Close()
		if !errors.Is(err, tc.want) {
			t.Fatalf("status %d: errors.Is(%v, %v) = false", tc.status, err, tc.want)
		}
	}
}

// TestIsRemoteTransient pins the failover classification: transport
// errors and 5xx/429 may succeed on another replica; typed 400s/501s are
// deterministic answers and must not be retried.
func TestIsRemoteTransient(t *testing.T) {
	for _, tc := range []struct {
		err  error
		want bool
	}{
		{&RemoteError{Status: 0, Msg: "dial refused"}, true},
		{&RemoteError{Status: http.StatusInternalServerError}, true},
		{&RemoteError{Status: http.StatusServiceUnavailable}, true},
		{&RemoteError{Status: http.StatusTooManyRequests}, true},
		{&RemoteError{Status: http.StatusNotImplemented}, false},
		{&RemoteError{Status: http.StatusBadRequest}, false},
		{&RemoteError{Status: http.StatusNotFound}, false},
		{fmt.Errorf("wrapped: %w", &RemoteError{Status: 0}), true},
		{errors.New("not remote at all"), false},
		{nil, false},
	} {
		if got := IsRemoteTransient(tc.err); got != tc.want {
			t.Fatalf("IsRemoteTransient(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
	// A dead server produces a transport-level RemoteError (status 0).
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	url := srv.URL
	srv.Close()
	_, err := NewRemoteBackend(url, "g", nil).Dist(0)
	if err == nil || !IsRemoteTransient(err) {
		t.Fatalf("dead-server error %v not classified transient", err)
	}
}

// TestRemoteBackendMatchesEngine drives every Backend method through a
// real registry handler and asserts the remote answers are bit-identical
// to the local engine's — the determinism-over-the-wire premise the
// distributed router is built on (float64 survives JSON exactly,
// including +Inf for unreachable vertices).
func TestRemoteBackendMatchesEngine(t *testing.T) {
	// Two components: vertex n-1 is unreachable, so Inf crosses the wire.
	g := graph.Gnm(60, 150, graph.UniformWeights(1, 9), 7)
	gg, err := graph.FromEdges(61, g.Edges)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(gg, WithEpsilon(0.3), WithPathReporting())
	if err != nil {
		t.Fatal(err)
	}

	reg := NewRegistry(RegistryConfig{})
	defer reg.Close()
	if err := reg.Add("g", func(ctx context.Context, opts ...Option) (Backend, error) {
		return eng, nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := reg.WaitReady(context.Background(), "g"); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewRegistryHandler(reg))
	defer srv.Close()
	rb := NewRemoteBackend(srv.URL, "g", nil)

	if rb.N() != eng.N() {
		t.Fatalf("N = %d, want %d", rb.N(), eng.N())
	}
	if rb.MemoryBytes() != eng.MemoryBytes() {
		t.Fatalf("MemoryBytes = %d, want %d", rb.MemoryBytes(), eng.MemoryBytes())
	}

	wantDist, err := eng.Dist(0)
	if err != nil {
		t.Fatal(err)
	}
	gotDist, err := rb.Dist(0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotDist, wantDist) {
		t.Fatal("remote Dist differs from local engine")
	}
	if !math.IsInf(gotDist[60], 1) {
		t.Fatalf("unreachable vertex crossed the wire as %v, want +Inf", gotDist[60])
	}

	for _, target := range []int32{5, 60} {
		want, err := eng.DistTo(0, target)
		if err != nil {
			t.Fatal(err)
		}
		got, err := rb.DistTo(0, target)
		if err != nil {
			t.Fatal(err)
		}
		if got != want && !(math.IsInf(got, 1) && math.IsInf(want, 1)) {
			t.Fatalf("DistTo(0,%d) = %v, want %v", target, got, want)
		}
	}

	sources := []int32{0, 7, 41}
	wantRows, err := eng.MultiSource(sources)
	if err != nil {
		t.Fatal(err)
	}
	gotRows, err := rb.MultiSource(sources)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotRows, wantRows) {
		t.Fatal("remote MultiSource differs from local engine")
	}

	wantNear, err := eng.Nearest(sources)
	if err != nil {
		t.Fatal(err)
	}
	gotNear, err := rb.Nearest(sources)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotNear, wantNear) {
		t.Fatal("remote Nearest differs from local engine")
	}

	offsets := []float64{0, 2.5, 1}
	wantOff, err := eng.NearestWithOffsets(sources, offsets)
	if err != nil {
		t.Fatal(err)
	}
	gotOff, err := rb.NearestWithOffsets(sources, offsets)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotOff, wantOff) {
		t.Fatal("remote NearestWithOffsets differs from local engine")
	}

	wantPath, wantLen, err := eng.Path(0, 41)
	if err != nil {
		t.Fatal(err)
	}
	gotPath, gotLen, err := rb.Path(0, 41)
	if err != nil {
		t.Fatal(err)
	}
	if gotLen != wantLen || !reflect.DeepEqual(gotPath, wantPath) {
		t.Fatalf("remote Path = (%v, %v), want (%v, %v)", gotPath, gotLen, wantPath, wantLen)
	}
	// Unreachable pair: both report +Inf and no path, identically.
	_, noLen, err := rb.Path(0, 60)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(noLen, 1) {
		t.Fatalf("unreachable path length = %v, want +Inf", noLen)
	}

	wantTree, err := eng.Tree(0)
	if err != nil {
		t.Fatal(err)
	}
	gotTree, err := rb.Tree(0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotTree, wantTree) {
		t.Fatal("remote Tree differs from local engine")
	}

	targets := []int32{1, 60, 30}
	wantM, err := eng.Matrix(sources, targets)
	if err != nil {
		t.Fatal(err)
	}
	gotM, err := rb.Matrix(sources, targets)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotM, wantM) {
		t.Fatal("remote Matrix differs from local engine")
	}

	info := rb.Describe()
	want := eng.Describe()
	if info.HopsetEdges != want.HopsetEdges || info.Shards != want.Shards {
		t.Fatalf("Describe = %+v, want %+v", info, want)
	}

	// Typed errors cross the wire from the real handler too, not just the
	// synthetic one: vertex out of range and unknown graph.
	if _, err := rb.Dist(10_000); !errors.Is(err, ErrVertexOutOfRange) {
		t.Fatalf("remote out-of-range error = %v, want ErrVertexOutOfRange", err)
	}
	if _, err := NewRemoteBackend(srv.URL, "nope", nil).Dist(0); !errors.Is(err, ErrUnknownGraph) {
		t.Fatalf("remote unknown-graph error = %v, want ErrUnknownGraph", err)
	}
	ok, err := rb.Ready(context.Background())
	if err != nil || !ok {
		t.Fatalf("Ready = (%v, %v), want (true, nil)", ok, err)
	}
	if err := rb.Healthz(context.Background()); err != nil {
		t.Fatalf("Healthz: %v", err)
	}
}
