package oracle

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestEngineCacheEviction(t *testing.T) {
	g := testGraph(t, 100)
	eng, err := New(g, WithDistCache(2))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []int32{0, 1, 2} { // third insert evicts source 0
		if _, err := eng.Dist(s); err != nil {
			t.Fatal(err)
		}
	}
	st := eng.Stats().DistCache
	if st.Evictions != 1 || st.Len != 2 {
		t.Errorf("dist cache after overflow = %+v", st)
	}
	if _, err := eng.Dist(0); err != nil { // miss: recompute
		t.Fatal(err)
	}
	if got := eng.Stats().DistCache.Misses; got != 4 {
		t.Errorf("misses = %d, want 4 (three cold + one evicted)", got)
	}
}

func TestFlightDeduplicates(t *testing.T) {
	var f flight[int]
	var calls atomic.Int32
	release := make(chan struct{})
	const waiters = 8
	var wg sync.WaitGroup
	results := make([]int, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := f.do(7, func() (int, error) {
				calls.Add(1)
				<-release
				return 42, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}(i)
	}
	// Let every goroutine reach do() before releasing the computation; the
	// test only requires ≥1 call and identical results, so a brief yield
	// is enough to make dedup overwhelmingly likely without flakiness.
	close(release)
	wg.Wait()
	if calls.Load() < 1 || calls.Load() > waiters {
		t.Fatalf("calls = %d", calls.Load())
	}
	for i, v := range results {
		if v != 42 {
			t.Errorf("waiter %d got %d", i, v)
		}
	}
}
