package oracle

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestLRUHitMissEvict(t *testing.T) {
	c := newLRU[int](2)
	if _, ok := c.get(1); ok {
		t.Fatal("empty cache returned a value")
	}
	c.add(1, 10)
	c.add(2, 20)
	if v, ok := c.get(1); !ok || v != 10 {
		t.Fatalf("get(1) = %v,%v", v, ok)
	}
	// 1 is now most-recent; adding 3 must evict 2.
	c.add(3, 30)
	if _, ok := c.get(2); ok {
		t.Fatal("2 should have been evicted (LRU)")
	}
	if v, ok := c.get(1); !ok || v != 10 {
		t.Fatalf("1 should survive, got %v,%v", v, ok)
	}
	if v, ok := c.get(3); !ok || v != 30 {
		t.Fatalf("get(3) = %v,%v", v, ok)
	}
	st := c.stats()
	if st.Hits != 3 || st.Misses != 2 || st.Evictions != 1 || st.Len != 2 || st.Cap != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLRUUpdateExisting(t *testing.T) {
	c := newLRU[int](2)
	c.add(1, 10)
	c.add(2, 20)
	c.add(1, 11) // update, not insert: no eviction
	if st := c.stats(); st.Evictions != 0 || st.Len != 2 {
		t.Errorf("stats after update = %+v", st)
	}
	if v, _ := c.get(1); v != 11 {
		t.Errorf("get(1) = %v after update", v)
	}
	// The update refreshed 1, so adding 3 evicts 2.
	c.add(3, 30)
	if _, ok := c.get(2); ok {
		t.Error("2 should have been evicted after 1 was refreshed")
	}
}

func TestLRUDisabled(t *testing.T) {
	c := newLRU[int](0)
	c.add(1, 10)
	if _, ok := c.get(1); ok {
		t.Fatal("disabled cache stored a value")
	}
	if st := c.stats(); st.Misses != 1 || st.Len != 0 || st.Cap != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestEngineCacheEviction(t *testing.T) {
	g := testGraph(t, 100)
	eng, err := New(g, WithDistCache(2))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []int32{0, 1, 2} { // third insert evicts source 0
		if _, err := eng.Dist(s); err != nil {
			t.Fatal(err)
		}
	}
	st := eng.Stats().DistCache
	if st.Evictions != 1 || st.Len != 2 {
		t.Errorf("dist cache after overflow = %+v", st)
	}
	if _, err := eng.Dist(0); err != nil { // miss: recompute
		t.Fatal(err)
	}
	if got := eng.Stats().DistCache.Misses; got != 4 {
		t.Errorf("misses = %d, want 4 (three cold + one evicted)", got)
	}
}

func TestFlightDeduplicates(t *testing.T) {
	var f flight[int]
	var calls atomic.Int32
	release := make(chan struct{})
	const waiters = 8
	var wg sync.WaitGroup
	results := make([]int, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := f.do(7, func() (int, error) {
				calls.Add(1)
				<-release
				return 42, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}(i)
	}
	// Let every goroutine reach do() before releasing the computation; the
	// test only requires ≥1 call and identical results, so a brief yield
	// is enough to make dedup overwhelmingly likely without flakiness.
	close(release)
	wg.Wait()
	if calls.Load() < 1 || calls.Load() > waiters {
		t.Fatalf("calls = %d", calls.Load())
	}
	for i, v := range results {
		if v != 42 {
			t.Errorf("waiter %d got %d", i, v)
		}
	}
}
