package oracle

import (
	"repro/internal/obs"
)

// batchOccupancyBuckets mirrors the batcher's fixed occupancy buckets:
// upper bounds on distinct sources per flushed batch.
var batchOccupancyBuckets = [...]string{"1", "2", "4", "8", "16", "32", "64"}

// MetricsCollector adapts a Registry's /stats counters into /metrics
// families. It is a pure read over the same snapshots /stats serves —
// the two surfaces cannot drift because neither keeps its own tally.
// Registered once per process in cmd/serve and cmd/shardserve.
func MetricsCollector(r *Registry) obs.Collector {
	return func(w *obs.MetricWriter) {
		st := r.Stats()
		w.Counter("spo_registry_queries_total", "Queries served through the registry.", float64(st.Queries))
		w.Counter("spo_builds_total", "Engine builds by result.", float64(st.BuildsDone), obs.L("result", "ok"))
		w.Counter("spo_builds_total", "Engine builds by result.", float64(st.BuildsFailed), obs.L("result", "failed"))
		w.Counter("spo_reloads_total", "Hot reloads published.", float64(st.Reloads))
		w.Counter("spo_evictions_total", "Graphs evicted under memory pressure.", float64(st.Evictions))
		w.Gauge("spo_draining_engines", "Retired engine versions still pinned by in-flight queries.", float64(st.Draining))
		w.Gauge("spo_registry_memory_bytes", "Estimated resident bytes across ready graphs.", float64(st.MemoryBytes))
		if st.MemoryBudget > 0 {
			w.Gauge("spo_registry_memory_budget_bytes", "Configured eviction budget.", float64(st.MemoryBudget))
		}
		w.Gauge("spo_graphs", "Registered graphs by status.", float64(st.Ready), obs.L("status", "ready"))
		w.Gauge("spo_graphs", "Registered graphs by status.", float64(st.Building), obs.L("status", "building"))
		w.Gauge("spo_graphs", "Registered graphs by status.", float64(st.Failed), obs.L("status", "failed"))
		w.Gauge("spo_graphs", "Registered graphs by status.", float64(st.Evicted), obs.L("status", "evicted"))
		w.Gauge("spo_registered_graphs", "Total graphs registered, across every status.", float64(st.Graphs))

		if hp := st.HotPair; hp != nil {
			w.Counter("spo_hotpair_hits_total", "Hot-pair cache hits by freshness.", float64(hp.Hits), obs.L("kind", "fresh"))
			w.Counter("spo_hotpair_hits_total", "Hot-pair cache hits by freshness.", float64(hp.StaleHits), obs.L("kind", "stale"))
			w.Counter("spo_hotpair_misses_total", "Hot-pair cache misses.", float64(hp.Misses))
			w.Counter("spo_hotpair_evictions_total", "Hot-pair cache evictions.", float64(hp.Evictions))
			w.Counter("spo_hotpair_revalidations_total", "Background row revalidations completed.", float64(hp.Revalidations))
			w.Gauge("spo_hotpair_entries", "Rows resident in the hot-pair cache.", float64(hp.Entries))
		}

		for _, gi := range r.List() {
			g := obs.L("graph", gi.Name)
			w.Gauge("spo_graph_ready", "1 when the graph is ready to serve.", boolGauge(gi.Status == StatusReady), g)
			w.Counter("spo_registry_graph_queries_total", "Registry-level queries per graph.", float64(gi.Queries), g)
			if gi.MemoryBytes > 0 {
				w.Gauge("spo_graph_memory_bytes", "Estimated resident bytes per graph.", float64(gi.MemoryBytes), g)
			}
			if gi.Status != StatusReady {
				continue
			}
			es, err := r.EngineStats(gi.Name)
			if err != nil {
				continue
			}
			collectEngineStats(w, gi.Name, es)
		}
	}
}

// collectEngineStats emits the per-graph engine families — the paper's
// work accounting (scanned arcs, relax rounds, batch occupancy) next to
// the route counters and latency summaries.
func collectEngineStats(w *obs.MetricWriter, name string, es Stats) {
	g := obs.L("graph", name)
	qhelp := "Engine queries by route."
	w.Counter("spo_graph_queries_total", qhelp, float64(es.DistQueries), g, obs.L("route", "dist"))
	w.Counter("spo_graph_queries_total", qhelp, float64(es.MultiQueries), g, obs.L("route", "multi"))
	w.Counter("spo_graph_queries_total", qhelp, float64(es.MatrixQueries), g, obs.L("route", "matrix"))
	w.Counter("spo_graph_queries_total", qhelp, float64(es.NearestQueries), g, obs.L("route", "nearest"))
	w.Counter("spo_graph_queries_total", qhelp, float64(es.PathQueries), g, obs.L("route", "path"))
	w.Counter("spo_graph_queries_total", qhelp, float64(es.TreeQueries), g, obs.L("route", "tree"))

	chelp := "Engine cache traffic by cache and event."
	for _, c := range []struct {
		kind string
		s    CacheStats
	}{{"dist", es.DistCache}, {"tree", es.TreeCache}} {
		k := obs.L("cache", c.kind)
		w.Counter("spo_graph_cache_events_total", chelp, float64(c.s.Hits), g, k, obs.L("event", "hit"))
		w.Counter("spo_graph_cache_events_total", chelp, float64(c.s.Misses), g, k, obs.L("event", "miss"))
		w.Counter("spo_graph_cache_events_total", chelp, float64(c.s.Evictions), g, k, obs.L("event", "eviction"))
		w.Gauge("spo_graph_cache_entries", "Entries resident per engine cache.", float64(c.s.Len), g, k)
	}

	w.Counter("spo_relax_explorations_total", "Query-time relaxation explorations.", float64(es.Relax.Explorations), g)
	w.Counter("spo_relax_scanned_arcs_total", "Arcs scanned by relaxation kernels — the paper's work measure.", float64(es.Relax.ScannedArcs), g)
	w.Counter("spo_relax_rounds_total", "Relaxation rounds by kernel.", float64(es.Relax.DenseRounds), g, obs.L("kernel", "dense"))
	w.Counter("spo_relax_rounds_total", "Relaxation rounds by kernel.", float64(es.Relax.SparseRounds), g, obs.L("kernel", "sparse"))
	w.Counter("spo_relax_batched_seeds_total", "Source lanes carried by batched explorations.", float64(es.Relax.BatchedSeeds), g)

	if es.BatchWindowNano > 0 {
		w.Gauge("spo_batch_window_seconds", "Configured dist-query coalescing window.", float64(es.BatchWindowNano)/1e9, g)
	}
	if es.Batches > 0 || es.BatchedQueries > 0 {
		w.Counter("spo_batches_total", "Coalesced batches flushed.", float64(es.Batches), g)
		w.Counter("spo_batched_queries_total", "Queries answered via a coalesced batch.", float64(es.BatchedQueries), g)
		w.Gauge("spo_batch_largest", "Largest batch flushed.", float64(es.LargestBatch), g)
		w.Counter("spo_batch_wait_seconds_total", "Total time coalesced queries spent parked in the batching window before their batch ran.", float64(es.BatchWaitNano)/1e9, g)
	}
	for i, c := range es.BatchOccupancy {
		if i >= len(batchOccupancyBuckets) {
			break
		}
		w.Counter("spo_batch_occupancy_total", "Flushed batches by occupancy bucket (distinct sources ≤ bucket).",
			float64(c), g, obs.L("bucket", batchOccupancyBuckets[i]))
	}

	for route, snap := range es.Latency {
		w.SummaryFromSnapshot("spo_query_latency_seconds", "Serve-side query latency by graph and route.",
			snap, g, obs.L("route", route))
	}

	if sh := es.Sharded; sh != nil {
		// Partition shape and stretch accounting: static per engine
		// version, but a hot reload can change every one of them — as
		// gauges they are the dashboard's record of what is being served.
		w.Gauge("spo_shard_partitions", "Shard count of the served partition.", float64(sh.Shards), g)
		w.Gauge("spo_shard_boundary_vertices", "Boundary vertices spanning the cut.", float64(sh.BoundaryVertices), g)
		w.Gauge("spo_shard_overlay_edges", "Edges in the boundary overlay graph.", float64(sh.OverlayEdges), g)
		w.Gauge("spo_shard_cut_edges", "Cut edges between shards.", float64(sh.CutEdges), g)
		ehelp := "Stretch parameters by component."
		w.Gauge("spo_shard_epsilon", ehelp, sh.EpsilonLocal, g, obs.L("component", "local"))
		w.Gauge("spo_shard_epsilon", ehelp, sh.EpsilonOverlay, g, obs.L("component", "overlay"))
		w.Gauge("spo_shard_stretch_bound", "Composed end-to-end stretch bound (1+εl)(1+εo)(1+εl).", sh.StretchBound, g)
		w.Counter("spo_shard_queries_total", "Sharded-router queries by disposition.", float64(sh.RoutedQueries), g, obs.L("disposition", "routed"))
		w.Counter("spo_shard_queries_total", "Sharded-router queries by disposition.", float64(sh.LocalQueries), g, obs.L("disposition", "local"))
		rchelp := "Router assembled-vector cache traffic."
		w.Counter("spo_router_cache_events_total", rchelp, float64(sh.RouterCache.Hits), g, obs.L("event", "hit"))
		w.Counter("spo_router_cache_events_total", rchelp, float64(sh.RouterCache.Misses), g, obs.L("event", "miss"))
		w.Counter("spo_router_cache_events_total", rchelp, float64(sh.RouterCache.Evictions), g, obs.L("event", "eviction"))
		w.Gauge("spo_router_cache_entries", "Rows resident in the router's assembled-vector cache.", float64(sh.RouterCache.Len), g)
		if rm := sh.Remote; rm != nil {
			w.Counter("spo_router_hedges_total", "Hedged second requests fired.", float64(rm.Hedges), g)
			w.Counter("spo_router_hedge_wins_total", "Hedged requests that answered first.", float64(rm.HedgeWins), g)
			w.Counter("spo_router_failovers_total", "Queries re-routed after a replica error.", float64(rm.Failovers), g)
			for _, ep := range rm.Endpoints {
				u := obs.L("url", ep.URL)
				w.Gauge("spo_endpoint_up", "1 when the worker endpoint is healthy.", boolGauge(ep.Healthy), g, u)
				w.Counter("spo_endpoint_requests_total", "Requests sent to the endpoint.", float64(ep.Requests), g, u)
				w.Counter("spo_endpoint_errors_total", "Requests to the endpoint that failed.", float64(ep.Errors), g, u)
				if ep.Latency.Count > 0 {
					w.SummaryFromSnapshot("spo_endpoint_latency_seconds", "Per-endpoint request latency.", ep.Latency, g, u)
				}
			}
		}
	}
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
